// Offline replay throughput bench: frames/sec of the candump -> decode ->
// chunked oracle sweep pipeline on a multi-million-frame synthetic log,
// single-thread vs a worker scaling curve.
//
// Coherence is the gate, speed is the record: every (jobs, chunk)
// configuration must render a byte-identical replay_format:1 report —
// that is the tentpole's determinism claim measured at bench scale, not
// just at unit-test scale. A second, violation-carrying log checks that
// the injected attack frame is the reported first divergence at 1 and 4
// workers. Throughput and parallel speedup are reported but not gated (a
// single-core container degenerates to ~1.0x).
//
// Usage: bench_replay [million_frames] [out.json]
// Writes a machine-readable report (default BENCH_replay.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "conform/harness.hpp"
#include "ota/ota.hpp"
#include "replay/replay.hpp"
#include "replay/synth.hpp"

using namespace ecucsp;

namespace {

struct Config {
  unsigned jobs;
  std::size_t chunk;
};

std::filesystem::path write_temp_log(const std::string& text,
                                     const char* stem) {
  const auto path =
      std::filesystem::temp_directory_path() /
      (std::string(stem) + "-" + std::to_string(::getpid()) + ".log");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t millions = 1;
  const char* out_path = "BENCH_replay.json";
  if (argc > 1) millions = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (argc > 2) out_path = argv[2];
  if (millions == 0) millions = 1;
  const std::size_t frames = millions * 1'000'000;

  const can::DbcDatabase db = can::parse_dbc(ota::ota_dbc_text());
  const conform::FrameCodec codec = conform::ota_codec(db);

  std::printf("synthesizing %zu-frame honest log...\n", frames);
  replay::SynthOptions honest_opt;
  honest_opt.seed = 42;
  honest_opt.frames = frames;
  const replay::SynthLog honest = replay::synthesize_log(codec, honest_opt);
  const auto honest_path = write_temp_log(honest.text, "bench-replay-honest");

  replay::SynthOptions attack_opt = honest_opt;
  attack_opt.attack = replay::Attack::Replay;
  attack_opt.attack_at = frames / 2;
  const replay::SynthLog attacked = replay::synthesize_log(codec, attack_opt);
  const auto attack_path = write_temp_log(attacked.text, "bench-replay-attack");

  const std::vector<Config> configs = {
      {1, 0}, {1, 1u << 16}, {2, 1u << 16}, {4, 1u << 16}, {8, 1u << 16}};

  bool coherence_ok = true;
  std::string reference_json;
  double single_fps = 0.0, best_fps = 0.0;
  std::string results;
  for (const Config& c : configs) {
    replay::ReplayOptions opt;
    opt.logs = {honest_path};
    opt.jobs = c.jobs;
    opt.chunk = c.chunk;
    const auto t0 = std::chrono::steady_clock::now();
    const replay::ReplayReport rep = replay::run_replay(opt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double fps = secs > 0 ? static_cast<double>(rep.frames) / secs : 0;
    if (c.jobs == 1 && c.chunk == 0) single_fps = fps;
    if (fps > best_fps) best_fps = fps;

    const std::string json = rep.render_json();
    if (reference_json.empty()) {
      reference_json = json;
    } else if (json != reference_json) {
      coherence_ok = false;
      std::printf("  COHERENCE MISMATCH at jobs=%u chunk=%zu\n", c.jobs,
                  c.chunk);
    }
    if (!rep.ok()) {
      coherence_ok = false;
      std::printf("  honest log rejected at jobs=%u chunk=%zu\n", c.jobs,
                  c.chunk);
    }

    if (!results.empty()) results += ',';
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\n  {\"jobs\":%u,\"chunk\":%zu,\"wall_ms\":%.1f,"
                  "\"frames_per_sec\":%.0f}",
                  c.jobs, c.chunk, secs * 1e3, fps);
    results += buf;
    std::printf("  jobs=%u chunk=%-6zu  %8.1f ms  %.2fM frames/s\n", c.jobs,
                c.chunk, secs * 1e3, fps / 1e6);
  }

  // The violation log: the injected replayed UpdReport must be the first
  // divergence R04 reports, at 1 and 4 workers, byte-identically.
  bool violation_ok = true;
  std::string violation_reference;
  for (const unsigned jobs : {1u, 4u}) {
    replay::ReplayOptions opt;
    opt.logs = {attack_path};
    opt.jobs = jobs;
    const replay::ReplayReport rep = replay::run_replay(opt);
    if (rep.ok()) violation_ok = false;
    bool found = false;
    for (const auto& o : rep.oracles) {
      if (o.name == "R04" && !o.divergences.empty() &&
          o.divergences[0].event_index == attacked.injected_index) {
        found = true;
      }
    }
    if (!found) violation_ok = false;
    const std::string json = rep.render_json();
    if (violation_reference.empty()) {
      violation_reference = json;
    } else if (json != violation_reference) {
      violation_ok = false;
    }
  }
  std::printf("violation pinning: %s (injected index %zu)\n",
              violation_ok ? "ok" : "FAILED", attacked.injected_index);

  std::filesystem::remove(honest_path);
  std::filesystem::remove(attack_path);

  const double speedup = single_fps > 0 ? best_fps / single_fps : 0;
  const bool ok = coherence_ok && violation_ok;
  std::string json = "{\"bench\":\"replay\"";
  json += ",\"frames\":" + std::to_string(frames);
  json += ",\"configs\":[" + results + "\n ]";
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"speedup_best\":%.2f", speedup);
  json += buf;
  json += ",\"coherence_ok\":";
  json += coherence_ok ? "true" : "false";
  json += ",\"violation_ok\":";
  json += violation_ok ? "true" : "false";
  json += ",\"ok\":";
  json += ok ? "true" : "false";
  json += "}\n";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  std::printf("wrote %s (speedup_best %.2fx, %s)\n", out_path, speedup,
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
