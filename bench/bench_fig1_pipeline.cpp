// Figure 1 reproduction, quantified: the workflow/toolchain stages timed
// individually — CAPL parsing, model extraction, CSPm parsing, evaluation,
// and refinement checking. This answers the practical question the paper's
// workflow raises: where does the time go in automated component-level
// security analysis?
#include <benchmark/benchmark.h>

#include "capl/parser.hpp"
#include "cspm/eval.hpp"
#include "cspm/parser.hpp"
#include "ota/ota.hpp"
#include "translate/extractor.hpp"

using namespace ecucsp;

namespace {

const can::DbcDatabase& db() {
  static const can::DbcDatabase instance =
      can::parse_dbc(std::string(ota::ota_dbc_text()));
  return instance;
}

translate::ExtractionResult extract_demo_system() {
  static const capl::CaplProgram vmg =
      capl::parse_capl(std::string(ota::vmg_capl_source()));
  static const capl::CaplProgram ecu =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  translate::ExtractorOptions vo;
  vo.node_name = "VMG";
  vo.db = &db();
  translate::ExtractorOptions eo;
  eo.node_name = "ECU";
  eo.tx_channel = "rec";
  eo.rx_channel = "send";
  eo.db = &db();
  return translate::extract_system(
      {{&vmg, vo}, {&ecu, eo}},
      {"SP02 = send.SwInventoryReq -> rec.SwReport -> SP02",
       "kept = {send.SwInventoryReq, rec.SwReport}",
       "hidden = diff({| send, rec, setTimer, cancelTimer, timeout |}, kept)",
       "assert SP02 [T= SYSTEM \\ hidden"});
}

void Stage1_ParseCapl(benchmark::State& state) {
  const std::string src{ota::vmg_capl_source()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(capl::parse_capl(src));
  }
  state.counters["src_bytes"] = static_cast<double>(src.size());
}
BENCHMARK(Stage1_ParseCapl);

void Stage2_ExtractModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_demo_system());
  }
}
BENCHMARK(Stage2_ExtractModel);

void Stage3_ParseCspm(benchmark::State& state) {
  const translate::ExtractionResult sys = extract_demo_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cspm::parse_cspm(sys.cspm));
  }
  state.counters["cspm_bytes"] = static_cast<double>(sys.cspm.size());
}
BENCHMARK(Stage3_ParseCspm);

void Stage4_EvaluateModel(benchmark::State& state) {
  const translate::ExtractionResult sys = extract_demo_system();
  for (auto _ : state) {
    Context ctx;
    cspm::Evaluator ev(ctx);
    ev.load_source(sys.cspm);
    benchmark::DoNotOptimize(ev.process("SYSTEM"));
  }
}
BENCHMARK(Stage4_EvaluateModel);

void Stage5_RefinementCheck(benchmark::State& state) {
  const translate::ExtractionResult sys = extract_demo_system();
  std::size_t states = 0;
  for (auto _ : state) {
    Context ctx;
    cspm::Evaluator ev(ctx);
    ev.load_source(sys.cspm);
    const auto results = ev.check_assertions();
    if (results.empty() || !results[0].result.passed) {
      state.SkipWithError("assertion unexpectedly failed");
      return;
    }
    states = results[0].result.stats.impl_states;
  }
  state.counters["impl_states"] = static_cast<double>(states);
}
BENCHMARK(Stage5_RefinementCheck);

}  // namespace

BENCHMARK_MAIN();
