// Extensions bench (added experiments S6/S7): the paper's future-work items
// implemented and checked.
//
//   S6 — Section VIII-A: the Update Server scope with the X.1373 message
//        types diagnose / update_check / update / update_report (E1-E5).
//   S7 — Section VII-B: the tock-CSP timing discipline and bounded-response
//        checking of the diagnosis dialogue.
//   S8 — AUTOSAR SecOC-style freshness: the replay attack a plain MAC (R05)
//        misses, and the counter-based fix.
#include <cstdio>

#include "ota/ota.hpp"
#include "security/properties.hpp"
#include "security/secoc.hpp"

using namespace ecucsp;

int main() {
  std::printf("S6: EXTENDED X.1373 SCOPE — UPDATE SERVER + VMG + ECU "
              "(paper Section VIII-A)\n\n");
  auto ext = ota::build_ota_extended_model();
  struct Row {
    const char* id;
    const char* text;
    bool expect_pass;
  };
  const Row rows[] = {
      {"E1", "installation requires prior server authorisation (down.update)",
       true},
      {"E2", "update_report reaches the server only after installation", true},
      {"E3", "the three-component chain is deadlock free", true},
      {"E4", "E1 still holds under CAN-side attack (MAC-verifying ECU)", true},
      {"E5", "E1 under attack with MAC verification disabled", false},
  };
  bool all_ok = true;
  std::printf("%-4s| %-62s| %-8s| %s\n", "id", "property", "verdict",
              "expected");
  std::printf("----+--------------------------------------------------------"
              "-------+---------+---------\n");
  for (const Row& r : rows) {
    const CheckResult result = ota::check_extended_property(*ext, r.id);
    const bool as_expected = result.passed == r.expect_pass;
    all_ok &= as_expected;
    std::printf("%-4s| %-62.62s| %-8s| %s\n", r.id, r.text,
                result.passed ? "holds" : "FAILS",
                as_expected ? "ok" : "UNEXPECTED");
    if (!result.passed && result.counterexample) {
      std::printf("     attack: %s\n",
                  result.counterexample->describe(ext->ctx).c_str());
    }
  }

  std::printf("\nS7: TOCK-CSP TIMING DISCIPLINE (paper Section VII-B)\n\n");
  auto timed = ota::build_ota_timed_model();
  std::printf("%-26s| %s\n", "bound (tocks after reqSw)",
              "urgent ECU / lazy ECU");
  std::printf("--------------------------+----------------------\n");
  for (int within = 0; within <= 3; ++within) {
    const bool urgent =
        security::check_bounded_response(timed->ctx, timed->system_urgent,
                                         timed->tock, timed->send_reqSw,
                                         timed->rec_rptSw, within)
            .passed;
    const bool lazy =
        security::check_bounded_response(timed->ctx, timed->system_lazy,
                                         timed->tock, timed->send_reqSw,
                                         timed->rec_rptSw, within)
            .passed;
    std::printf("within %-19d| %-7s/ %s\n", within,
                urgent ? "holds" : "FAILS", lazy ? "holds" : "FAILS");
    // Expected crossover: urgent meets 0; lazy needs 1.
    if (within == 0) all_ok &= urgent && !lazy;
    if (within >= 1) all_ok &= urgent && lazy;
  }
  std::printf("\nS8: SECOC-STYLE FRESHNESS vs PLAIN MAC (replay protection)\n\n");
  auto secoc = security::build_secoc_model(3);
  const CheckResult replay = security::check_no_replay(*secoc, false);
  const CheckResult fixed = security::check_no_replay(*secoc, true);
  std::printf("plain MAC receiver : %s\n",
              replay.passed ? "no replay (unexpected!)"
                            : "REPLAY ATTACK FOUND");
  if (!replay.passed) {
    std::printf("  witness: %s\n",
                replay.counterexample->describe(secoc->ctx).c_str());
  }
  std::printf("SecOC receiver     : %s (%zu states)\n",
              fixed.passed ? "replay rejected by freshness counter"
                           : "STILL VULNERABLE",
              fixed.stats.impl_states);
  all_ok &= !replay.passed && fixed.passed;

  std::printf("\n%s\n", all_ok ? "all extension experiments match expectation"
                               : "UNEXPECTED RESULTS");
  return all_ok ? 0 : 1;
}
