// Refinement-checker scaling (added experiment S2).
//
// The paper leans on FDR's ability to handle "the scale needed for the
// sophisticated ECUs now seen in vehicles" (Section VII-A); this bench
// quantifies our engine on two classic state-space families and reports
// the states/second the checker sustains, plus the relative cost of the
// three semantic models — the ablation DESIGN.md calls out.
//
//   * Chain(n):  a sequential counter, n states, linear growth.
//   * Toggles(n): n interleaved two-state components, 2^n states.
#include <benchmark/benchmark.h>

#include "refine/check.hpp"
#include "refine/compact.hpp"
#include "refine/minimize.hpp"
#include "refine/normalize.hpp"

using namespace ecucsp;

namespace {

/// A linear counter process: tick.0 -> tick.1 -> ... -> STOP.
ProcessRef chain(Context& ctx, int n) {
  std::vector<Value> domain;
  for (int i = 0; i < n; ++i) domain.push_back(Value::integer(i));
  const ChannelId tick = ctx.channel("tick", {domain});
  ProcessRef p = ctx.stop();
  for (int i = n - 1; i >= 0; --i) {
    p = ctx.prefix(ctx.event(tick, {Value::integer(i)}), p);
  }
  return p;
}

/// n independent two-state toggles: state space 2^n.
ProcessRef toggles(Context& ctx, int n) {
  std::vector<Value> domain;
  for (int i = 0; i < n; ++i) domain.push_back(Value::integer(i));
  const std::vector<Value> phase{Value::integer(0), Value::integer(1)};
  const ChannelId flip = ctx.channel("flip", {domain});
  ProcessRef out = nullptr;
  for (int i = 0; i < n; ++i) {
    const std::string name = "TGL" + std::to_string(i);
    const EventId e = ctx.event(flip, {Value::integer(i)});
    ctx.define(name,
               [e, s = ctx.sym(name)](Context& cx, std::span<const Value> args) {
                 const std::int64_t ph = args[0].as_int();
                 return cx.prefix(e, cx.var(s, {Value::integer(1 - ph)}));
               });
    const ProcessRef cell = ctx.var(name, {Value::integer(0)});
    out = out ? ctx.interleave(out, cell) : cell;
  }
  return out;
}

void ChainSelfRefinement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    Context ctx;
    const ProcessRef p = chain(ctx, n);
    const CheckResult r = check_refinement(ctx, p, p, Model::Traces);
    if (!r.passed) state.SkipWithError("self-refinement failed");
    states = r.stats.impl_states;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(ChainSelfRefinement)->RangeMultiplier(4)->Range(64, 16384);

void TogglesDeadlockFreedom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    Context ctx;
    const CheckResult r = check_deadlock_free(ctx, toggles(ctx, n));
    if (!r.passed) state.SkipWithError("unexpected deadlock");
    states = r.stats.impl_states;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(TogglesDeadlockFreedom)->DenseRange(6, 16, 2);

void SemanticModelCost(benchmark::State& state) {
  // Same check in T / F / FD — the per-model overhead ablation.
  const Model model = static_cast<Model>(state.range(0));
  const int n = 10;
  for (auto _ : state) {
    Context ctx;
    const ProcessRef p = toggles(ctx, n);
    const CheckResult r = check_refinement(ctx, p, p, model);
    if (!r.passed) state.SkipWithError("self-refinement failed");
  }
  state.SetLabel("[" + to_string(model) + "= on 2^10 states");
}
BENCHMARK(SemanticModelCost)
    ->Arg(static_cast<int>(Model::Traces))
    ->Arg(static_cast<int>(Model::Failures))
    ->Arg(static_cast<int>(Model::FailuresDivergences));

void NormalisationCost(benchmark::State& state) {
  // Spec normalisation (the FDR pre-step) in isolation.
  const int n = static_cast<int>(state.range(0));
  std::size_t nodes = 0;
  for (auto _ : state) {
    Context ctx;
    const Lts lts = compile_lts(ctx, toggles(ctx, n));
    const NormLts norm = normalize(lts, /*with_divergence=*/true);
    nodes = norm.nodes.size();
    benchmark::DoNotOptimize(norm);
  }
  state.counters["norm_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(NormalisationCost)->DenseRange(6, 12, 2);

/// A k-state cycle on one event; every state is bisimilar, so sbisim
/// collapses the component to a single state.
ProcessRef cycle(Context& ctx, int copy, int k) {
  const EventId e = ctx.event(ctx.channel("cyc" + std::to_string(copy)));
  const std::string name = "CYC" + std::to_string(copy);
  const Symbol s = ctx.sym(name);
  ctx.define(name, [e, k, s](Context& cx, std::span<const Value> args) {
    const std::int64_t j = args[0].as_int();
    return cx.prefix(e, cx.var(s, {Value::integer((j + 1) % k)}));
  });
  return ctx.var(name, {Value::integer(0)});
}

void CompressionAblation(benchmark::State& state) {
  // FDR-style *compositional* compression: minimise each component before
  // composing. Raw composition of m k-state cycles has k^m states; the
  // compressed components have one state each.
  const bool compressed = state.range(0) == 1;
  const int m = 3;
  const int k = 8;
  std::size_t states = 0;
  int fresh = 0;
  for (auto _ : state) {
    Context ctx;
    ProcessRef sys = nullptr;
    for (int i = 0; i < m; ++i) {
      ProcessRef component = cycle(ctx, i, k);
      if (compressed) {
        component =
            compress(ctx, component, "_SBISIM" + std::to_string(fresh++));
      }
      sys = sys ? ctx.interleave(sys, component) : component;
    }
    const CheckResult r = check_deadlock_free(ctx, sys);
    if (!r.passed) state.SkipWithError("unexpected deadlock");
    states = r.stats.impl_states;
  }
  state.counters["checked_states"] = static_cast<double>(states);
  state.SetLabel(compressed ? "components compressed (sbisim)" : "raw");
}
BENCHMARK(CompressionAblation)->Arg(0)->Arg(1);

/// The in-check reduction workload: n two-phase toggles whose every flip is
/// followed by a *hidden* micro-step. Interleaved raw, the product reaches
/// 2^n states (each toggle independently flip- or micro-pending); the micro
/// taus of distinct toggles are confluent, so diamond tau-priorisation
/// serialises them and bisim folds the residue to ~n states.
struct CompressWorkload {
  NormLts spec;
  CompactLts impl;
};

CompressWorkload hidden_workload(int n) {
  Context ctx;
  std::vector<Value> domain;
  for (int i = 0; i < n; ++i) domain.push_back(Value::integer(i));
  const ChannelId flip = ctx.channel("flip", {domain});
  const ChannelId micro = ctx.channel("micro", {domain});

  ProcessRef impl = nullptr;
  std::vector<EventId> hidden;
  for (int i = 0; i < n; ++i) {
    const std::string name = "HTGL" + std::to_string(i);
    const EventId f = ctx.event(flip, {Value::integer(i)});
    const EventId m = ctx.event(micro, {Value::integer(i)});
    hidden.push_back(m);
    ctx.define(name, [f, m, s = ctx.sym(name)](Context& cx,
                                               std::span<const Value>) {
      return cx.prefix(f, cx.prefix(m, cx.var(s, {})));
    });
    const ProcessRef cell = ctx.var(ctx.sym(name), {});
    impl = impl ? ctx.interleave(impl, cell) : cell;
  }
  impl = ctx.hide(impl, EventSet(std::move(hidden)));

  // RUN over the flip alphabet: one recursive state offering every flip.
  ctx.define("CRUN", [flip, n](Context& cx, std::span<const Value>) {
    ProcessRef p = nullptr;
    for (int i = 0; i < n; ++i) {
      const ProcessRef arm = cx.prefix(cx.event(flip, {Value::integer(i)}),
                                       cx.var("CRUN", {}));
      p = p ? cx.ext_choice(p, arm) : arm;
    }
    return p;
  });

  CompressWorkload w;
  w.impl = compact_from_lts(compile_lts(ctx, impl));
  w.spec = normalize(compile_lts(ctx, ctx.var("CRUN", {})),
                     /*with_divergence=*/false);
  return w;
}

void InCheckCompression(benchmark::State& state) {
  // The PR 6 *in-check* reductions (vs CompressionAblation's compositional
  // sbisim): the same product sweep at each --compress mode, reduction
  // inside the measured region. Verdicts are mode-invariant by the
  // fail-replay contract; product_states is the measurement.
  const Compression mode = static_cast<Compression>(state.range(0));
  const int n = 7;
  const CompressWorkload w = hidden_workload(n);
  const CheckResult base = check_refinement_compiled(
      w.spec, w.impl, Model::Traces, 0, nullptr, Compression::None);
  std::size_t states = 0;
  for (auto _ : state) {
    const CheckResult r = check_refinement_compiled(w.spec, w.impl,
                                                    Model::Traces, 0, nullptr,
                                                    mode);
    if (!r.passed) state.SkipWithError("refinement failed");
    states = r.stats.product_states;
  }
  state.counters["product_states"] = static_cast<double>(states);
  state.counters["reduction_factor"] =
      static_cast<double>(base.stats.product_states) /
      static_cast<double>(states == 0 ? 1 : states);
  state.SetLabel("--compress=" + std::string(to_string(mode)) + " on 2^" +
                 std::to_string(n) + " raw states");
}
BENCHMARK(InCheckCompression)
    ->Arg(static_cast<int>(Compression::None))
    ->Arg(static_cast<int>(Compression::Bisim))
    ->Arg(static_cast<int>(Compression::Diamond))
    ->Arg(static_cast<int>(Compression::Full));

void MinimizationCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::size_t before = 0, after = 0;
  for (auto _ : state) {
    Context ctx;
    const Lts lts = compile_lts(ctx, toggles(ctx, n));
    const MinimizeResult min = minimize_strong(lts);
    before = lts.state_count();
    after = min.lts.state_count();
  }
  state.counters["states_before"] = static_cast<double>(before);
  state.counters["states_after"] = static_cast<double>(after);
}
BENCHMARK(MinimizationCost)->DenseRange(6, 12, 2);

}  // namespace

BENCHMARK_MAIN();
