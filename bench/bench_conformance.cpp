// Conformance-suite throughput and coverage scaling.
//
// Sweeps the random-suite size (4 / 8 / 16 tests by default) plus the
// coverage-tour suite, measuring tests/second through the parallel
// scheduler and the planned/observed transition coverage each suite size
// buys. Results go to stdout as a table and to BENCH_conform.json as a
// machine-readable artifact (CI uploads it).
//
//   bench_conformance [jobs] [output.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "conform/suite.hpp"

using namespace ecucsp;

namespace {

struct Row {
  std::string suite;
  std::size_t tests = 0;
  double wall_ms = 0.0;
  double tests_per_sec = 0.0;
  double planned_pct = 0.0;
  double observed_pct = 0.0;
  bool ok = false;
};

Row run_once(const std::string& suite, std::size_t tests, unsigned jobs) {
  conform::ConformOptions opt;
  opt.suite = suite;
  opt.tests = tests;
  opt.seed = 1;
  opt.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  const conform::ConformReport rep = conform::run_ota_conformance(opt);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  Row r;
  r.suite = suite;
  r.tests = rep.tests.size();
  r.wall_ms = wall_ms;
  r.tests_per_sec =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(rep.tests.size()) / wall_ms
                    : 0.0;
  r.planned_pct = rep.planned_coverage_pct();
  r.observed_pct = rep.observed_coverage_pct();
  r.ok = rep.ok();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10)) : 0;
  const std::filesystem::path json_path =
      argc > 2 ? argv[2] : "BENCH_conform.json";

  std::printf("conformance bench: OTA reference ECU, %s worker(s)\n\n",
              jobs == 0 ? "all" : std::to_string(jobs).c_str());
  std::printf("%-8s %6s %10s %12s %9s %9s %5s\n", "suite", "tests", "wall_ms",
              "tests/sec", "plan%", "obs%", "ok");

  std::vector<Row> rows;
  for (std::size_t n : {4u, 8u, 16u}) {
    rows.push_back(run_once("random", n, jobs));
  }
  rows.push_back(run_once("cover", 0, jobs));
  rows.push_back(run_once("all", 8, jobs));

  bool all_ok = true;
  for (const Row& r : rows) {
    std::printf("%-8s %6zu %10.1f %12.1f %8.1f%% %8.1f%% %5s\n",
                r.suite.c_str(), r.tests, r.wall_ms, r.tests_per_sec,
                r.planned_pct, r.observed_pct, r.ok ? "yes" : "NO");
    all_ok = all_ok && r.ok;
  }

  std::FILE* f = std::fopen(json_path.string().c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path.string().c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"conformance\",\n"
               "  \"jobs\": %u,\n"
               "  \"runs\": [\n",
               jobs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"suite\": \"%s\", \"tests\": %zu, \"wall_ms\": %.3f, "
                 "\"tests_per_sec\": %.2f, \"planned_coverage_pct\": %.1f, "
                 "\"observed_coverage_pct\": %.1f, \"ok\": %s}%s\n",
                 r.suite.c_str(), r.tests, r.wall_ms, r.tests_per_sec,
                 r.planned_pct, r.observed_pct, r.ok ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"all_ok\": %s\n"
               "}\n",
               all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.string().c_str());
  return all_ok ? 0 : 1;
}
