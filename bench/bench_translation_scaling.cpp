// Model-extractor throughput (added experiment S3).
//
// Synthesises CAPL programs of growing size (message handlers with output
// bursts, timers, control flow) and measures the full translation pipeline
// — CAPL lexing + parsing + extraction + template rendering — in source
// lines per second, plus the cost of re-parsing the generated CSPm.
#include <benchmark/benchmark.h>

#include <string>

#include "capl/parser.hpp"
#include "cspm/parser.hpp"
#include "translate/extractor.hpp"

using namespace ecucsp;

namespace {

std::string synthetic_capl(int handlers, int outputs_per_handler) {
  std::string src = "variables {\n";
  for (int h = 0; h < handlers; ++h) {
    src += "  message " + std::to_string(0x100 + h) + " msg" +
           std::to_string(h) + ";\n";
  }
  src += "  msTimer tMain;\n  int counter = 0;\n}\n";
  src += "on start { output(msg0); setTimer(tMain, 10); }\n";
  src += "on timer tMain { counter = counter + 1; output(msg0); }\n";
  for (int h = 0; h < handlers; ++h) {
    src += "on message " + std::to_string(0x100 + h) + " {\n";
    src += "  if (this.byte(0) > 0) {\n";
    for (int o = 0; o < outputs_per_handler; ++o) {
      src += "    output(msg" + std::to_string((h + o + 1) % handlers) + ");\n";
    }
    src += "  } else { counter = counter - 1; }\n}\n";
  }
  return src;
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 1;
  for (const char c : s) n += c == '\n';
  return n;
}

void TranslatePipeline(benchmark::State& state) {
  const int handlers = static_cast<int>(state.range(0));
  const std::string src = synthetic_capl(handlers, 3);
  const std::size_t lines = count_lines(src);
  std::size_t cspm_bytes = 0;
  for (auto _ : state) {
    const capl::CaplProgram prog = capl::parse_capl(src);
    translate::ExtractorOptions opt;
    opt.node_name = "NODE";
    const translate::ExtractionResult r = translate::extract_model(prog, opt);
    cspm_bytes = r.cspm.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["capl_lines"] = static_cast<double>(lines);
  state.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["cspm_bytes"] = static_cast<double>(cspm_bytes);
}
BENCHMARK(TranslatePipeline)->RangeMultiplier(4)->Range(4, 256);

void ReparseGeneratedCspm(benchmark::State& state) {
  const int handlers = static_cast<int>(state.range(0));
  const capl::CaplProgram prog = capl::parse_capl(synthetic_capl(handlers, 3));
  translate::ExtractorOptions opt;
  opt.node_name = "NODE";
  const translate::ExtractionResult r = translate::extract_model(prog, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cspm::parse_cspm(r.cspm));
  }
  state.counters["cspm_bytes"] = static_cast<double>(r.cspm.size());
}
BENCHMARK(ReparseGeneratedCspm)->RangeMultiplier(4)->Range(4, 256);

}  // namespace

BENCHMARK_MAIN();
