// Intruder cost (added experiment S5).
//
// How much state space does adding a Dolev-Yao intruder cost? Compares the
// OTA model with and without the attacker, and the full NSPK/NSL protocol
// systems where the intruder's knowledge set is part of the state.
#include <benchmark/benchmark.h>

#include "ota/ota.hpp"
#include "security/intruder_factored.hpp"
#include "security/nspk.hpp"
#include "security/properties.hpp"

using namespace ecucsp;

namespace {

void OtaWithAndWithoutAttacker(benchmark::State& state) {
  const bool attacked = state.range(0) == 1;
  std::size_t states = 0, transitions = 0;
  for (auto _ : state) {
    auto model = ota::build_ota_model();
    const Lts lts = compile_lts(
        model->ctx, attacked ? model->system_attacked : model->system_plain);
    states = lts.state_count();
    transitions = lts.transition_count();
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.SetLabel(attacked ? "with attacker" : "no attacker");
}
BENCHMARK(OtaWithAndWithoutAttacker)->Arg(0)->Arg(1);

void NspkAuthenticationCheck(benchmark::State& state) {
  const bool fix = state.range(0) == 1;
  std::size_t states = 0;
  std::size_t universe = 0;
  bool passed = false;
  for (auto _ : state) {
    auto sys = security::build_nspk(fix);
    const CheckResult r = security::check_precedence(
        sys->ctx, sys->system, sys->running_ab, sys->commit_ba);
    states = r.stats.impl_states;
    universe = sys->universe_size;
    passed = r.passed;
  }
  state.counters["impl_states"] = static_cast<double>(states);
  state.counters["universe_terms"] = static_cast<double>(universe);
  state.SetLabel(fix ? (passed ? "NSL: secure" : "NSL: BROKEN?!")
                     : (passed ? "NSPK: secure?!" : "NSPK: attack found"));
}
BENCHMARK(NspkAuthenticationCheck)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void NspkAttackWitness(benchmark::State& state) {
  // Full-alphabet witness search (larger product: spec tracks all events).
  std::size_t trace_len = 0;
  for (auto _ : state) {
    auto sys = security::build_nspk(false);
    const CheckResult r = security::check_precedence_witness(
        sys->ctx, sys->system, sys->running_ab, sys->commit_ba);
    if (r.passed) state.SkipWithError("attack not found");
    trace_len = r.counterexample->trace.size() + 1;
  }
  state.counters["attack_steps"] = static_cast<double>(trace_len);
}
BENCHMARK(NspkAttackWitness)->Unit(benchmark::kMillisecond);

void ExplicitVsFactoredIntruder(benchmark::State& state) {
  // Ablation: the explicit knowledge-set intruder vs the factored
  // parallel-cell construction, compiled standalone over the same universe
  // (n nested pairs over a base alphabet).
  const bool factored = state.range(0) == 1;
  const int depth = static_cast<int>(state.range(1));
  std::size_t states = 0;
  for (auto _ : state) {
    Context ctx;
    security::TermAlgebra T(ctx);
    const Value a = T.atom("a");
    const Value b = T.atom("b");
    std::vector<Value> agents{a, b};
    std::vector<Value> universe{a, b};
    Value acc = a;
    for (int i = 0; i < depth; ++i) {
      acc = T.pair(acc, b);
      universe.push_back(acc);
    }
    security::IntruderConfig cfg;
    cfg.universe = universe;
    cfg.messages = universe;
    cfg.initial_knowledge = {b};
    cfg.hear_channel = ctx.channel("h", {agents, agents, universe});
    cfg.say_channel = ctx.channel("s", {agents, agents, universe});
    cfg.agents = agents;
    cfg.name = factored ? "BF" : "BE";
    const ProcessRef intruder =
        factored ? security::build_factored_intruder(T, cfg)
                 : security::build_intruder(T, cfg);
    states = compile_lts(ctx, intruder).state_count();
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(factored ? "factored cells" : "explicit knowledge sets");
}
BENCHMARK(ExplicitVsFactoredIntruder)
    ->Args({0, 3})
    ->Args({1, 3})
    ->Args({0, 6})
    ->Args({1, 6});

}  // namespace

BENCHMARK_MAIN();
