// Figure 2 reproduction: the case-study scope (VMG <-> target ECU) as a
// composed CSP system. Reports the state spaces of the three composition
// variants and times the requirement checks over them.
#include <benchmark/benchmark.h>

#include "ota/ota.hpp"
#include "security/properties.hpp"

using namespace ecucsp;

namespace {

void BuildModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ota::build_ota_model());
  }
}
BENCHMARK(BuildModel);

void CompileVariant(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  std::size_t states = 0, transitions = 0;
  for (auto _ : state) {
    auto model = ota::build_ota_model();
    const ProcessRef p = which == 0   ? model->system_plain
                         : which == 1 ? model->system_attacked
                                      : model->system_unprotected;
    const Lts lts = compile_lts(model->ctx, p);
    states = lts.state_count();
    transitions = lts.transition_count();
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.SetLabel(which == 0   ? "plain"
                 : which == 1 ? "attacked_mac"
                              : "attacked_open");
}
BENCHMARK(CompileVariant)->Arg(0)->Arg(1)->Arg(2);

void CheckRequirement(benchmark::State& state) {
  const auto& reqs = ota::requirements();
  const auto& req = reqs[static_cast<std::size_t>(state.range(0))];
  bool passed = false;
  for (auto _ : state) {
    auto model = ota::build_ota_model();
    passed = ota::check_requirement(*model, req.id).passed;
  }
  state.SetLabel(req.id + (passed ? " holds" : " FAILS"));
}
BENCHMARK(CheckRequirement)->DenseRange(0, 4);

void IntegrityUnderAttack(benchmark::State& state) {
  const bool mac = state.range(0) == 1;
  bool passed = false;
  for (auto _ : state) {
    auto model = ota::build_ota_model();
    passed = security::check_precedence_witness(
                 model->ctx,
                 mac ? model->system_attacked : model->system_unprotected,
                 model->send_reqApp, model->install)
                 .passed;
  }
  state.SetLabel(mac ? (passed ? "mac_ecu holds" : "mac_ecu FAILS")
                     : (passed ? "open_ecu holds?!" : "open_ecu violated"));
}
BENCHMARK(IntegrityUnderAttack)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
