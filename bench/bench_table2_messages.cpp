// Table II reproduction: X.1373 message types used in the case study.
//
// Prints the table and verifies, against the composed CSP model, that each
// message actually flows in the stated direction: VMG-originated ids occur
// on channel 'send' and ECU-originated ids on channel 'rec', in the traces
// of SYSTEM.
#include <algorithm>
#include <cstdio>

#include "ota/ota.hpp"
#include "refine/check.hpp"

using namespace ecucsp;

int main() {
  auto model = ota::build_ota_model();
  Context& ctx = model->ctx;

  // Collect the genuine-message events reachable in the plain system.
  // One full update cycle is five visible events (the install event sits
  // between reqApp and rptUpd).
  const auto traces = enumerate_traces(ctx, model->system_plain, 5);
  std::vector<EventId> seen;
  for (const auto& t : traces) {
    for (const EventId e : t) seen.push_back(e);
  }
  const auto occurs = [&](const std::string& name) {
    return std::any_of(seen.begin(), seen.end(), [&](EventId e) {
      return ctx.event_name(e) == name;
    });
  };

  std::printf("TABLE II: MESSAGE TYPES AND MESSAGES USED (ITU-T X.1373)\n\n");
  std::printf("%-9s| %-7s| %-5s| %-4s| %-36s| %s\n", "Type", "Id", "From",
              "To", "Description", "in SYSTEM traces?");
  std::printf("---------+--------+------+-----+---------------------------"
              "----------+------------------\n");
  bool all_ok = true;
  for (const ota::MessageTypeRow& row : ota::message_table()) {
    // VMG->ECU traffic rides 'send'; ECU->VMG rides 'rec'.
    const std::string event_name =
        (row.from == "VMG" ? "send." : "rec.") + row.id + ".genuine";
    const bool ok = occurs(event_name);
    all_ok &= ok;
    std::printf("%-9s| %-7s| %-5s| %-4s| %-36.36s| %s (%s)\n",
                row.type.c_str(), row.id.c_str(), row.from.c_str(),
                row.to.c_str(), row.description.c_str(), ok ? "yes" : "NO",
                event_name.c_str());
  }
  std::printf("\n%s\n",
              all_ok ? "all four Table II messages are exercised by the "
                       "composed model"
                     : "SOME MESSAGES NEVER OCCUR");
  return all_ok ? 0 : 1;
}
