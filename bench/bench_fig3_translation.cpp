// Figure 3 reproduction: the ECU implementation model (CSPm script)
// automatically generated from the application code of the simulated CAN
// network — the paper's headline artifact.
//
// Regenerates the script for both nodes of the demonstration network,
// prints it, then *closes the loop* the paper could not yet close: the
// generated script is parsed back through the CSPm front end and its
// process definitions are compiled and checked.
#include <cstdio>

#include "capl/parser.hpp"
#include "cspm/eval.hpp"
#include "ota/ota.hpp"
#include "translate/extractor.hpp"

using namespace ecucsp;

int main() {
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const capl::CaplProgram ecu_prog =
      capl::parse_capl(std::string(ota::ecu_capl_source()));

  translate::ExtractorOptions opt;
  opt.node_name = "ECU";
  opt.tx_channel = "rec";
  opt.rx_channel = "send";
  opt.db = &db;
  const translate::ExtractionResult r = translate::extract_model(ecu_prog, opt);

  std::printf("FIGURE 3: ECU IMPLEMENTATION MODEL (CSPm script)\n");
  std::printf("automatically generated from CAPL application code\n");
  std::printf("====================================================\n%s"
              "====================================================\n\n",
              r.cspm.c_str());

  std::printf("extraction summary: %zu message constructors, %zu timers, "
              "%zu abstraction notes\n",
              r.messages.size(), r.timers.size(), r.warnings.size());
  for (const std::string& w : r.warnings) std::printf("  note: %s\n", w.c_str());

  // Round trip: parse + evaluate + sanity-check the generated model.
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(r.cspm);
  const ProcessRef ecu = ev.process("ECU");
  const Lts lts = compile_lts(ctx, ecu);
  const CheckResult div = check_divergence_free(ctx, ecu);
  std::printf("\nround trip: generated script parses; ECU compiles to %zu "
              "states / %zu transitions; divergence free: %s\n",
              lts.state_count(), lts.transition_count(),
              div.passed ? "yes" : "NO");

  // The model must accept every inventory request with a report (R02 view).
  ev.load_source(
      "SPEC = send.SwInventoryReq -> rec.SwReport -> SPEC\n"
      "kept = {send.SwInventoryReq, rec.SwReport}\n"
      "assert SPEC [T= ECU \\ diff({| send, rec |}, kept)\n");
  bool ok = div.passed;
  for (const auto& a : ev.check_assertions()) {
    std::printf("assert %s : %s\n", a.description.c_str(),
                a.result.passed ? "passed" : "FAILED");
    ok &= a.result.passed;
  }
  return ok ? 0 : 1;
}
