// Attack-tree semantics (added experiment S4, paper Section IV-E).
//
// Measures (a) computing the SP-graph action-sequence semantics directly,
// (b) translating the tree to CSP and compiling its LTS, and (c) the
// equivalence check between the two — on trees of growing size, including
// an automotive-flavoured OTA attack tree.
#include <benchmark/benchmark.h>

#include "refine/check.hpp"
#include "security/attack_tree.hpp"

using namespace ecucsp;
using security::AttackTree;

namespace {

/// A balanced tree: depth d alternating OR / SEQ / AND layers.
AttackTree balanced(int depth, int& leaf_id) {
  if (depth == 0) {
    return AttackTree::leaf("act" + std::to_string(leaf_id++));
  }
  std::vector<AttackTree> kids;
  kids.push_back(balanced(depth - 1, leaf_id));
  kids.push_back(balanced(depth - 1, leaf_id));
  switch (depth % 3) {
    case 0: return AttackTree::or_any(std::move(kids));
    case 1: return AttackTree::seq(std::move(kids));
    default: return AttackTree::and_all(std::move(kids));
  }
}

/// The OTA-flavoured example: compromise the update channel.
AttackTree ota_attack_tree() {
  using AT = AttackTree;
  return AT::seq(
      {AT::leaf("recon_network"),
       AT::or_any({AT::seq({AT::leaf("spoof_vmg"), AT::leaf("forge_reqApp")}),
                   AT::seq({AT::leaf("steal_key"), AT::leaf("mac_reqApp")}),
                   AT::leaf("physical_access")}),
       AT::and_all({AT::leaf("suppress_rptUpd"), AT::leaf("hide_logs")}),
       AT::leaf("persist")});
}

void SemanticsDirect(benchmark::State& state) {
  int leaf = 0;
  const AttackTree tree = balanced(static_cast<int>(state.range(0)), leaf);
  std::size_t seqs = 0;
  for (auto _ : state) {
    seqs = tree.sequences().size();
    benchmark::DoNotOptimize(seqs);
  }
  state.counters["nodes"] = static_cast<double>(tree.size());
  state.counters["sequences"] = static_cast<double>(seqs);
}
BENCHMARK(SemanticsDirect)->DenseRange(1, 4);

void CspTranslationAndCompile(benchmark::State& state) {
  int leaf = 0;
  const AttackTree tree = balanced(static_cast<int>(state.range(0)), leaf);
  std::size_t states = 0;
  for (auto _ : state) {
    Context ctx;
    const Lts lts = compile_lts(ctx, tree.to_csp(ctx));
    states = lts.state_count();
  }
  state.counters["lts_states"] = static_cast<double>(states);
}
BENCHMARK(CspTranslationAndCompile)->DenseRange(1, 4);

void EquivalenceCheck(benchmark::State& state) {
  // The Section IV-E theorem, checked: completed CSP traces == semantics.
  int leaf = 0;
  const AttackTree tree = balanced(static_cast<int>(state.range(0)), leaf);
  bool equal = false;
  for (auto _ : state) {
    Context ctx;
    const ProcessRef p = tree.to_csp(ctx);
    std::set<std::vector<std::string>> completed;
    for (const auto& tr : enumerate_traces(ctx, p, 24)) {
      if (tr.empty() || tr.back() != TICK) continue;
      std::vector<std::string> names;
      for (std::size_t k = 0; k + 1 < tr.size(); ++k) {
        names.push_back(
            ctx.event_fields(tr[k]).at(0).to_string(ctx.symbols()));
      }
      completed.insert(std::move(names));
    }
    equal = completed == tree.sequences();
    if (!equal) state.SkipWithError("semantics mismatch");
  }
  state.SetLabel(equal ? "equivalent" : "MISMATCH");
}
BENCHMARK(EquivalenceCheck)->DenseRange(1, 3);

void OtaAttackTree(benchmark::State& state) {
  const AttackTree tree = ota_attack_tree();
  std::size_t seqs = 0;
  for (auto _ : state) {
    Context ctx;
    const ProcessRef p = tree.to_csp(ctx);
    const Lts lts = compile_lts(ctx, p);
    seqs = tree.sequences().size();
    benchmark::DoNotOptimize(lts);
  }
  state.counters["attack_sequences"] = static_cast<double>(seqs);
  state.counters["tree_nodes"] = static_cast<double>(tree.size());
}
BENCHMARK(OtaAttackTree);

}  // namespace

BENCHMARK_MAIN();
