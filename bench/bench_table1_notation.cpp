// Table I reproduction: CSPm notation for the basic CSP operators.
//
// For every row the bench (a) prints the blackboard-notation/CSPm pair as
// the paper tabulates it, (b) parses the CSPm sample through the front end,
// and (c) validates a defining semantic law of the operator with the
// refinement engine — so the table is *checked*, not just printed.
#include <cstdio>
#include <string>

#include "cspm/eval.hpp"

using namespace ecucsp;

namespace {

bool law_holds(const std::string& which) {
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(
      "channel a, b\n"
      "channel c : {0..1}\n"
      "PREFIX = a -> STOP\n"
      "INPUT = c?x -> STOP\n"
      "OUTPUT = c!0 -> STOP\n"
      "SEQ = (a -> SKIP) ; (b -> STOP)\n"
      "SEQR = a -> b -> STOP\n"
      "EXT = (a -> STOP) [] (b -> STOP)\n"
      "EXTR = (b -> STOP) [] (a -> STOP)\n"
      "INT = (a -> STOP) |~| (b -> STOP)\n"
      "APAR = (a -> b -> STOP) [ {|a, b|} || {|b|} ] (b -> STOP)\n"
      "ILV = (a -> STOP) ||| (b -> STOP)\n");
  const auto refines = [&](const char* spec, const char* impl, Model m) {
    return check_refinement(ctx, ev.process(spec), ev.process(impl), m).passed;
  };
  if (which == "prefix") {
    // exactly one event then deadlock
    const auto& ts = ctx.transitions(ev.process("PREFIX"));
    return ts.size() == 1 && ctx.transitions(ts[0].target).empty();
  }
  if (which == "input") {
    // ?x expands over the whole field domain
    return ctx.transitions(ev.process("INPUT")).size() == 2;
  }
  if (which == "output") {
    return ctx.transitions(ev.process("OUTPUT")).size() == 1;
  }
  if (which == "seq") {
    // (a -> SKIP);(b -> STOP) =T a -> b -> STOP
    return refines("SEQ", "SEQR", Model::Traces) &&
           refines("SEQR", "SEQ", Model::Traces);
  }
  if (which == "ext") {
    // [] is commutative up to failures equivalence
    return refines("EXT", "EXTR", Model::Failures) &&
           refines("EXTR", "EXT", Model::Failures);
  }
  if (which == "int") {
    // |~| refines [] in failures, but not conversely
    return refines("EXT", "INT", Model::Traces) &&
           refines("INT", "EXT", Model::Failures) &&
           !refines("EXT", "INT", Model::Failures);
  }
  if (which == "apar") {
    // left side restricted to {a,b}, right to {b}; b synchronises, so the
    // only *visible* initial event is 'a'.
    std::size_t visible = 0;
    bool only_a = true;
    for (const Transition& t : ctx.transitions(ev.process("APAR"))) {
      if (t.event == TAU) continue;
      ++visible;
      only_a &= ctx.event_name(t.event) == "a";
    }
    return visible == 1 && only_a;
  }
  if (which == "ilv") {
    // interleaving covers [] in traces, and strictly more (it allows both
    // events in sequence, which the choice cannot).
    return refines("ILV", "EXT", Model::Traces) &&
           !refines("EXT", "ILV", Model::Traces);
  }
  return false;
}

}  // namespace

int main() {
  std::printf("TABLE I: CSPM NOTATION (paper Section IV-A-2)\n\n");
  std::printf("%-24s| %-12s| %s\n", "Basic operator", "Notation",
              "semantic law");
  std::printf("------------------------+-------------+--------------\n");
  struct Row {
    const char* op;
    const char* notation;
    const char* law;
  };
  const Row rows[] = {
      {"Prefix", "P1 -> P2", "prefix"},
      {"Input", "?x", "input"},
      {"Output", "!x", "output"},
      {"Sequential composition", "P1;P2", "seq"},
      {"External Choice", "P1 [] P2", "ext"},
      {"Internal Choice", "P1 |~| P2", "int"},
      {"Alphabetised parallel", "P [A||B] Q", "apar"},
      {"Interleaving", "P1 ||| P2", "ilv"},
  };
  bool all_ok = true;
  for (const Row& r : rows) {
    const bool ok = law_holds(r.law);
    all_ok &= ok;
    std::printf("%-24s| %-12s| %s\n", r.op, r.notation,
                ok ? "verified" : "FAILED");
  }
  std::printf("\n%s\n", all_ok ? "all 8 notation rows parse and their laws "
                                 "hold in the engine"
                               : "SOME ROWS FAILED");
  return all_ok ? 0 : 1;
}
