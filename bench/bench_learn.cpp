// Active-learning throughput bench: membership queries/sec and harness
// runs/sec of the Learn–Check–Test loop across equivalence budgets.
//
// Coherence is the gate, speed is the record:
//   * hypothesis-equivalence coherence — every converged run's hypothesis
//     (ignored self-loops stripped) must be strong-bisimulation-equivalent
//     to the testable projection of the white-box model automaton, at
//     every equivalence budget and at every parallelism;
//   * report coherence — the learn_format:1 JSON is byte-identical at
//     jobs=1 and jobs=4 (x threads=2);
//   * mutation adequacy — the DropGuard mutant's learned model must fail a
//     requirement check.
// Throughput (queries/sec) is reported but not gated.
//
// Usage: bench_learn [repeat] [out.json]
// Writes a machine-readable report (default BENCH_learn.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "conform/harness.hpp"
#include "conform/requirements.hpp"
#include "learn/compile.hpp"
#include "learn/run.hpp"
#include "ota/ota.hpp"

using namespace ecucsp;

int main(int argc, char** argv) {
  std::size_t repeat = 3;
  const char* out_path = "BENCH_learn.json";
  if (argc > 1) {
    repeat = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  }
  if (argc > 2) out_path = argv[2];
  if (repeat == 0) repeat = 1;

  // The equivalence fixpoint every converged run must land on.
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const conform::FrameCodec codec = conform::ota_codec(db);
  const conform::TraceOracle model = conform::ota_model_oracle();
  const conform::SymAutomaton projection = learn::testable_projection(
      model.automaton,
      [&codec](const std::string& e) {
        return codec.concretize(e).has_value();
      },
      [](const std::string& e) { return e.starts_with("rec."); });

  struct Config {
    std::size_t eq_tests;
    std::size_t max_len;
  };
  const std::vector<Config> configs = {{16, 8}, {64, 12}, {128, 16}};

  bool equivalence_ok = true;
  std::string results;
  for (const Config& c : configs) {
    std::uint64_t queries = 0, runs = 0;
    std::size_t rounds = 0, states = 0;
    double secs = 0;
    for (std::size_t i = 0; i < repeat; ++i) {
      learn::LearnRunOptions opt;
      opt.seed = 1 + i;  // fresh seed per repetition, same fixpoint
      opt.eq_tests = c.eq_tests;
      opt.max_len = c.max_len;
      const auto t0 = std::chrono::steady_clock::now();
      const learn::LearnReport rep = learn::run_ota_learn(opt);
      secs += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
      queries += rep.membership_queries;
      runs += rep.harness_runs;
      rounds += rep.rounds_used;
      states = rep.hypothesis.state_count();
      if (!rep.converged || !rep.ok) {
        equivalence_ok = false;
        std::printf("  NOT SECURE at eq_tests=%zu seed=%llu\n", c.eq_tests,
                    static_cast<unsigned long long>(opt.seed));
        continue;
      }
      const learn::StripResult stripped = learn::strip_ignored_self_loops(
          learn::to_sym_automaton(rep.hypothesis), model.ignored);
      if (!stripped.lossless ||
          !learn::strong_bisim_equivalent(stripped.automaton, projection)) {
        equivalence_ok = false;
        std::printf("  EQUIVALENCE MISMATCH at eq_tests=%zu seed=%llu\n",
                    c.eq_tests, static_cast<unsigned long long>(opt.seed));
      }
    }
    const double qps = secs > 0 ? static_cast<double>(queries) / secs : 0;
    const double rps = secs > 0 ? static_cast<double>(runs) / secs : 0;
    if (!results.empty()) results += ',';
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "\n  {\"eq_tests\":%zu,\"max_len\":%zu,\"runs\":%zu,"
                  "\"rounds\":%zu,\"states\":%zu,\"queries\":%llu,"
                  "\"harness_runs\":%llu,\"wall_ms\":%.1f,"
                  "\"queries_per_sec\":%.0f,\"harness_runs_per_sec\":%.0f}",
                  c.eq_tests, c.max_len, repeat, rounds, states,
                  static_cast<unsigned long long>(queries),
                  static_cast<unsigned long long>(runs), secs * 1e3, qps, rps);
    results += buf;
    std::printf(
        "  eq_tests=%-4zu max_len=%-3zu %8.1f ms  %7.0f queries/s  "
        "%7.0f harness runs/s\n",
        c.eq_tests, c.max_len, secs * 1e3, qps, rps);
  }

  // Parallel report coherence: byte-identical JSON at different jobs.
  bool coherence_ok = true;
  {
    learn::LearnRunOptions a;
    a.jobs = 1;
    a.threads = 1;
    learn::LearnRunOptions b;
    b.jobs = 4;
    b.threads = 2;
    if (learn::render_json(learn::run_ota_learn(a)) !=
        learn::render_json(learn::run_ota_learn(b))) {
      coherence_ok = false;
      std::printf("  REPORT MISMATCH jobs=1 vs jobs=4\n");
    }
  }

  // Mutation adequacy: the DropGuard mutant must be caught.
  bool mutant_ok = false;
  {
    learn::LearnRunOptions opt;
    opt.mutate = 1;
    const learn::LearnReport rep = learn::run_ota_learn(opt);
    if (rep.converged && !rep.ok) {
      for (const learn::LearnCheckReport& c : rep.checks) {
        if (c.verdict == "FAIL" && c.replay.starts_with("rejected@")) {
          mutant_ok = true;
        }
      }
    }
  }
  std::printf("mutant kill: %s\n", mutant_ok ? "ok" : "FAILED");

  const bool ok = equivalence_ok && coherence_ok && mutant_ok;
  std::string json = "{\"bench\":\"learn\"";
  json += ",\"repeat\":" + std::to_string(repeat);
  json += ",\"configs\":[" + results + "\n ]";
  json += ",\"equivalence_ok\":";
  json += equivalence_ok ? "true" : "false";
  json += ",\"coherence_ok\":";
  json += coherence_ok ? "true" : "false";
  json += ",\"mutant_ok\":";
  json += mutant_ok ? "true" : "false";
  json += ",\"ok\":";
  json += ok ? "true" : "false";
  json += "}\n";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  std::printf("wrote %s (%s)\n", out_path, ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
