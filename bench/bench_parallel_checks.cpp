// Parallel batch-verification bench: the OTA requirement suite (Table III
// x attacker models, plus the extended Update Server properties) run
// through the src/verify scheduler at increasing worker counts.
//
// The requirement models themselves are tiny — the paper's point is that
// the *number* of independent checks grows multiplicatively (requirements x
// attacker models x variants) — so each task is dilated with hidden
// independent cyclers (see ota_batch.hpp) to give it FDR-realistic state
// counts without changing any verdict. The bench verifies on every run
// that all worker counts produce byte-identical outcomes in submission
// order, then reports the wall-clock speedup of N workers over 1.
//
// Note: the achievable speedup is capped by the machine's core count; on a
// single-core container every configuration degenerates to ~1.0x.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

using namespace ecucsp;
using namespace ecucsp::verify;

namespace {

std::vector<CheckTask> build_suite(std::size_t dilation) {
  OtaMatrixOptions opts;
  opts.dilation = dilation;
  std::vector<CheckTask> tasks = ota_requirement_matrix(opts);
  for (CheckTask& t : ota_extended_batch(opts)) tasks.push_back(std::move(t));
  return tasks;
}

/// Verdict fingerprint: everything that must be scheduling-invariant
/// (status, counterexample, state counts) — i.e. all fields except timing.
std::vector<std::string> fingerprint(const BatchResult& batch) {
  std::vector<std::string> out;
  out.reserve(batch.outcomes.size());
  for (const TaskOutcome& o : batch.outcomes) {
    out.push_back(o.name + "|" + std::string(to_string(o.status)) + "|" +
                  o.counterexample + "|" + std::to_string(o.stats.impl_states));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Tune dilation so a full single-threaded sweep takes on the order of a
  // second: enough work for parallelism to matter, short enough for CI.
  const std::size_t dilation =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::vector<CheckTask> suite = build_suite(dilation);

  std::printf("OTA requirement batch: %zu checks, dilation %zu\n\n",
              suite.size(), dilation);
  std::printf("%-6s| %-10s| %-10s| %-8s| %s\n", "jobs", "wall (ms)",
              "cpu (ms)", "speedup", "verdicts");
  std::printf("------+-----------+-----------+---------+---------\n");

  std::vector<std::string> reference;
  double wall_1 = 0.0;
  bool ok = true;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    VerifyScheduler sched({.jobs = jobs});
    const BatchResult batch = sched.run(suite);
    const double wall_ms = batch.wall.count() / 1e6;
    if (jobs == 1) {
      wall_1 = wall_ms;
      reference = fingerprint(batch);
    }
    const bool deterministic = fingerprint(batch) == reference;
    const bool as_expected = batch.all_as_expected();
    ok &= deterministic && as_expected;
    std::printf("%-6u| %9.1f | %9.1f | %6.2fx | %s%s\n", jobs, wall_ms,
                batch.cpu.count() / 1e6, wall_1 / wall_ms,
                as_expected ? "as expected" : "WRONG VERDICTS",
                deterministic ? "" : ", NONDETERMINISTIC");
  }

  std::printf("\n%s\n", ok ? "all worker counts agree with the sequential "
                             "reference in submission order"
                           : "MISMATCH between worker counts");
  return ok ? 0 : 1;
}
