// Serving-layer bench: what the coalescing daemon buys a fleet of clients
// that keep asking the same questions.
//
// Four phases over the in-process VerifyService (no socket — this measures
// the serving core, not the kernel's loopback). "Distinct" loads are
// channel-renamed copies of one dilated model: structurally different to
// every cache tier, identical in cost.
//
//   cold-distinct      N distinct requests, empty memo/store: every one
//                      is a full engine sweep
//   warm-distinct      the same N again on the same service: every one is
//                      a response-memo hit
//   uncoalesced-fleet  N *fresh* distinct requests submitted one at a
//                      time: N sweeps of unshared work — what N clients
//                      pay when nothing lets them share a flight
//   identical-burst    N copies of ONE unseen request submitted
//                      concurrently on a fresh service: single-flight
//                      folds them into ONE sweep
//
// Coherence gate (exit 1 on violation): the warm phase must return
// byte-identical verdict blocks to the cold phase, request for request,
// and every burst response must be byte-identical to a solo engine sweep
// of the same request. Perf gate: identical-burst must beat
// uncoalesced-fleet by >= 10x. Results go to stdout as a table and to
// BENCH_serve.json.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "serve/service.hpp"

using namespace ecucsp;
using namespace ecucsp::serve;

namespace {

/// `cyclers` disjoint-alphabet two-state processes interleaved: 3^cyclers
/// product states — a dial for per-check cost. The variant is baked into
/// every channel name, so different variants are structurally distinct
/// models to EVERY dedup tier (request digest, response memo, verification
/// store) while costing exactly the same to sweep.
std::string dilated_script(unsigned cyclers, unsigned variant) {
  const std::string v = "v" + std::to_string(variant);
  std::string decl = "channel";
  std::string procs;
  std::string sys = "SYS =";
  for (unsigned i = 0; i < cyclers; ++i) {
    const std::string n = std::to_string(i) + v;
    decl += (i ? ", " : " ") + ("p" + n) + ", q" + n;
    procs += "C" + n + " = p" + n + " -> q" + n + " -> C" + n + "\n";
    sys += (i ? " ||| C" : " C") + n;
  }
  return decl + "\n" + procs + sys + "\nassert SYS :[deadlock free [F]]\n";
}

CheckRequest request_for(unsigned cyclers, unsigned variant,
                         std::uint64_t id) {
  CheckRequest req;
  req.id = id;
  req.sources = {dilated_script(cyclers, variant)};
  return req;
}

/// Submits requests against a service and collects responses + wall time.
struct Run {
  std::vector<CheckResponse> responses;  // indexed by request order
  double wall_ms = 0;

  double checks_per_sec() const {
    return wall_ms > 0 ? 1000.0 * static_cast<double>(responses.size()) / wall_ms
                       : 0;
  }
  double quantile_ms(double q) const {
    std::vector<std::uint64_t> ns;
    ns.reserve(responses.size());
    for (const CheckResponse& r : responses) ns.push_back(r.wall_ns);
    if (ns.empty()) return 0;
    std::sort(ns.begin(), ns.end());
    const std::size_t i = std::min(
        ns.size() - 1, static_cast<std::size_t>(q * static_cast<double>(ns.size())));
    return static_cast<double>(ns[i]) / 1e6;
  }
};

Run run_requests(VerifyService& service, const std::vector<CheckRequest>& reqs,
                 bool serial) {
  Run run;
  run.responses.resize(reqs.size());
  std::mutex m;
  std::condition_variable cv;
  std::size_t landed = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    service.submit(reqs[i], [&, i](CheckResponse r) {
      std::lock_guard lk(m);
      run.responses[i] = std::move(r);
      ++landed;
      cv.notify_all();
    });
    if (serial) {
      std::unique_lock lk(m);
      cv.wait(lk, [&] { return landed == i + 1; });
    }
  }
  {
    std::unique_lock lk(m);
    cv.wait(lk, [&] { return landed == reqs.size(); });
  }
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return run;
}

struct Phase {
  std::string name;
  double wall_ms;
  std::size_t checks;
  double cps;
  double p50_ms;
  double p99_ms;
  std::uint64_t engine_runs;
  std::uint64_t memo_hits;
  std::uint64_t coalesced;
  std::size_t store_hits;  // responses served from the verification store
};

Phase phase_of(const char* name, const Run& run, const VerifyService& service,
               const Phase* prev_same_service) {
  Phase p;
  p.name = name;
  p.wall_ms = run.wall_ms;
  p.checks = run.responses.size();
  p.cps = run.checks_per_sec();
  p.p50_ms = run.quantile_ms(0.50);
  p.p99_ms = run.quantile_ms(0.99);
  p.engine_runs = service.stats().engine_runs.load();
  p.memo_hits = service.stats().memo_hits.load();
  p.coalesced = service.stats().coalesced.load();
  p.store_hits = 0;
  for (const CheckResponse& r : run.responses) {
    p.store_hits += r.from_cache && !r.memo_hit;
  }
  if (prev_same_service) {  // report per-phase deltas, not running totals
    p.engine_runs -= prev_same_service->engine_runs;
    p.memo_hits -= prev_same_service->memo_hits;
    p.coalesced -= prev_same_service->coalesced;
  }
  return p;
}

void emit_json(const std::filesystem::path& path, unsigned jobs,
               unsigned cyclers, std::size_t n,
               const std::vector<Phase>& phases, double coalesce_speedup,
               bool coherence_ok, bool speedup_ok) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serve\",\n"
               "  \"serve_format\": %u,\n"
               "  \"jobs\": %u,\n"
               "  \"cyclers\": %u,\n"
               "  \"requests_per_phase\": %zu,\n"
               "  \"phases\": [\n",
               kServeFormatVersion, jobs, cyclers, n);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& p = phases[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"wall_ms\": %.3f, \"checks_per_sec\": %.1f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"engine_runs\": %llu, "
        "\"memo_hits\": %llu, \"coalesced\": %llu, \"store_hits\": %zu}%s\n",
        p.name.c_str(), p.wall_ms, p.cps, p.p50_ms, p.p99_ms,
        static_cast<unsigned long long>(p.engine_runs),
        static_cast<unsigned long long>(p.memo_hits),
        static_cast<unsigned long long>(p.coalesced), p.store_hits,
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"coalesce_speedup\": %.2f,\n"
               "  \"coalesce_speedup_ok\": %s,\n"
               "  \"coherence_ok\": %s\n"
               "}\n",
               coalesce_speedup, speedup_ok ? "true" : "false",
               coherence_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // bench_serve [requests] [cyclers] [jobs] [output.json]
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const unsigned cyclers =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 9;
  const unsigned jobs =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10)) : 4;
  const std::filesystem::path json_path =
      argc > 4 ? argv[4] : "BENCH_serve.json";

  std::printf(
      "serve bench: %zu requests/phase, %u interleaved cyclers (3^%u product "
      "states per check), %u worker(s)\n\n",
      n, cyclers, cyclers, jobs);

  bool coherence_ok = true;
  std::vector<Phase> phases;

  // Variants 0..n-1: the cold/warm load. Variants n..2n-1: fresh work for
  // the uncoalesced baseline. Variant 2n: the burst request, unseen until
  // the burst phase.
  std::vector<CheckRequest> distinct, fleet, identical;
  for (std::size_t i = 0; i < n; ++i) {
    distinct.push_back(request_for(cyclers, static_cast<unsigned>(i), i + 1));
    fleet.push_back(request_for(cyclers, static_cast<unsigned>(n + i), i + 1));
    identical.push_back(request_for(cyclers, static_cast<unsigned>(2 * n), i + 1));
  }

  // --- cold-distinct then warm-distinct, one service -----------------------
  std::vector<std::string> cold_blocks;
  {
    ServiceOptions opts;
    opts.jobs = jobs;
    VerifyService service(opts);

    const Run cold = run_requests(service, distinct, /*serial=*/false);
    phases.push_back(phase_of("cold-distinct", cold, service, nullptr));
    if (phases.back().engine_runs != n || phases.back().store_hits != 0) {
      std::fprintf(stderr,
                   "FAIL [cold-distinct]: %llu engine runs / %zu store hits "
                   "for %zu distinct requests\n",
                   static_cast<unsigned long long>(phases.back().engine_runs),
                   phases.back().store_hits, n);
      coherence_ok = false;
    }
    for (const CheckResponse& r : cold.responses) {
      if (r.status != ServeStatus::Passed) {
        std::fprintf(stderr, "FAIL [cold-distinct]: unexpected verdict\n");
        coherence_ok = false;
      }
      cold_blocks.push_back(r.verdict_block());
    }

    const Run warm = run_requests(service, distinct, /*serial=*/false);
    phases.push_back(phase_of("warm-distinct", warm, service, &phases[0]));
    if (phases.back().engine_runs != 0 || phases.back().memo_hits != n) {
      std::fprintf(stderr, "FAIL [warm-distinct]: engine touched on a warm memo\n");
      coherence_ok = false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (warm.responses[i].verdict_block() != cold_blocks[i]) {
        std::fprintf(stderr,
                     "FAIL [warm-distinct]: request %zu not byte-identical to cold\n", i);
        coherence_ok = false;
      }
    }
  }

  // --- uncoalesced-fleet: n sweeps of unshared work, one at a time ---------
  VerifyService* oracle = nullptr;  // reused below for the ground-truth sweep
  ServiceOptions fleet_opts;
  fleet_opts.jobs = jobs;
  VerifyService fleet_service(fleet_opts);
  {
    const Run serial = run_requests(fleet_service, fleet, /*serial=*/true);
    phases.push_back(phase_of("uncoalesced-fleet", serial, fleet_service, nullptr));
    if (phases.back().engine_runs != n || phases.back().store_hits != 0) {
      std::fprintf(stderr, "FAIL [uncoalesced-fleet]: work was unexpectedly shared\n");
      coherence_ok = false;
    }
    oracle = &fleet_service;
  }

  // --- identical-burst: all n at once, single-flight folds them ------------
  std::vector<std::string> burst_blocks;
  {
    ServiceOptions opts;
    opts.jobs = jobs;
    VerifyService service(opts);
    const Run burst = run_requests(service, identical, /*serial=*/false);
    phases.push_back(phase_of("identical-burst", burst, service, nullptr));
    const Phase& p = phases.back();
    if (p.engine_runs + p.memo_hits + p.coalesced < n ||
        p.engine_runs >= std::max<std::size_t>(n / 2, 2)) {
      std::fprintf(stderr, "FAIL [identical-burst]: burst not coalesced (%llu runs)\n",
                   static_cast<unsigned long long>(p.engine_runs));
      coherence_ok = false;
    }
    for (const CheckResponse& r : burst.responses) {
      burst_blocks.push_back(r.verdict_block());
    }
  }  // burst service torn down — its caches leave the ambient scope

  // Ground truth: a solo engine sweep of the burst request on a service
  // that has never seen it (the fleet service, whose cache is ambient
  // again now). Every burst response must match it byte for byte.
  {
    const CheckResponse solo = oracle->serve(identical[0]);
    if (solo.from_cache || solo.memo_hit) {
      std::fprintf(stderr, "FAIL [oracle]: ground-truth sweep was cached\n");
      coherence_ok = false;
    }
    for (const std::string& block : burst_blocks) {
      if (block != solo.verdict_block()) {
        std::fprintf(stderr,
                     "FAIL [identical-burst]: served verdict differs from a solo sweep\n");
        coherence_ok = false;
        break;
      }
    }
  }

  const double coalesce_speedup = phases[3].wall_ms > 0
                                      ? phases[2].wall_ms / phases[3].wall_ms
                                      : 0;
  const bool speedup_ok = coalesce_speedup >= 10.0;

  std::printf("%-17s| %9s | %10s | %8s | %8s | %5s | %5s | %5s | %5s\n",
              "phase", "wall (ms)", "checks/s", "p50 (ms)", "p99 (ms)", "runs",
              "memo", "coal", "store");
  std::printf(
      "-----------------+-----------+------------+----------+----------+-------"
      "+-------+-------+------\n");
  for (const Phase& p : phases) {
    std::printf(
        "%-17s| %9.1f | %10.1f | %8.2f | %8.2f | %5llu | %5llu | %5llu | %5zu\n",
        p.name.c_str(), p.wall_ms, p.cps, p.p50_ms, p.p99_ms,
        static_cast<unsigned long long>(p.engine_runs),
        static_cast<unsigned long long>(p.memo_hits),
        static_cast<unsigned long long>(p.coalesced), p.store_hits);
  }
  std::printf("\ncoalesce speedup (serial vs burst): %.1fx (gate: >= 10x) %s\n",
              coalesce_speedup, speedup_ok ? "OK" : "FAIL");
  std::printf("%s\n", coherence_ok
                          ? "all phases byte-identical where required"
                          : "COHERENCE FAILURE");

  emit_json(json_path, jobs, cyclers, n, phases, coalesce_speedup,
            coherence_ok, speedup_ok);
  std::printf("wrote %s\n", json_path.string().c_str());

  return (coherence_ok && speedup_ok) ? 0 : 1;
}
