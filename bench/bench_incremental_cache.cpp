// Incremental-verification bench: cold vs warm sweeps of the dilated OTA
// requirement x attacker matrix through the persistent store.
//
// This is the perf artifact for the paper's edit-recheck loop: engineers
// re-run the same requirement matrix after every model edit, so the cost
// that matters is the *unchanged-rerun* cost. Four sweeps over the same
// dilated suite:
//
//   uncached     no cache installed (the pre-store baseline)
//   cold         empty cache: every cell explores, then stores
//   warm-memory  same process: every cell served from the in-process tier
//   warm-disk    memory tier dropped: every cell decoded from disk
//
// Every sweep must agree on verdicts and counterexamples cell for cell;
// the bench fails (exit 1) on any mismatch, on a warm miss, or on a warm
// LTS recompilation — the same coherence contract the CI job enforces.
// Results go to stdout as a table and to BENCH_cache.json as a
// machine-readable perf trajectory artifact.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "store/cache.hpp"
#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

using namespace ecucsp;
using namespace ecucsp::verify;

namespace {

std::vector<CheckTask> build_suite(std::size_t dilation) {
  OtaMatrixOptions opts;
  opts.dilation = dilation;
  std::vector<CheckTask> tasks = ota_requirement_matrix(opts);
  for (CheckTask& t : ota_extended_batch(opts)) tasks.push_back(std::move(t));
  return tasks;
}

/// Cache-invariant outcome fingerprint: verdict + counterexample + semantic
/// LTS sizes (not product-BFS progress, not timing).
std::vector<std::string> fingerprint(const BatchResult& batch) {
  std::vector<std::string> out;
  out.reserve(batch.outcomes.size());
  for (const TaskOutcome& o : batch.outcomes) {
    out.push_back(o.name + "|" + std::string(to_string(o.status)) + "|" +
                  o.counterexample + "|" +
                  std::to_string(o.stats.impl_states) + "|" +
                  std::to_string(o.stats.impl_transitions));
  }
  return out;
}

struct Sweep {
  std::string phase;
  double wall_ms = 0;
  double cpu_ms = 0;
  std::size_t cached_cells = 0;
  std::uint64_t verdict_hits = 0;
  std::uint64_t verdict_misses = 0;
  std::uint64_t lts_misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t disk_bytes_written = 0;
};

Sweep measure(const std::string& phase, const std::vector<CheckTask>& suite,
              unsigned jobs, store::VerificationCache* cache,
              std::vector<std::string>* print, bool* ok,
              const std::vector<std::string>& reference) {
  // Stats deltas, so one cache instance can serve several sweeps.
  const auto before_vh = cache ? cache->stats().verdict_hits.load() : 0;
  const auto before_vm = cache ? cache->stats().verdict_misses.load() : 0;
  const auto before_lm = cache ? cache->stats().lts_misses.load() : 0;
  const auto before_st = cache ? cache->stats().stores.load() : 0;
  const auto before_bw =
      cache && cache->disk() ? cache->disk()->stats().bytes_written.load() : 0;

  const BatchResult batch = VerifyScheduler({.jobs = jobs}).run(suite);

  Sweep s;
  s.phase = phase;
  s.wall_ms = batch.wall.count() / 1e6;
  s.cpu_ms = batch.cpu.count() / 1e6;
  for (const TaskOutcome& o : batch.outcomes) s.cached_cells += o.cached;
  if (cache) {
    s.verdict_hits = cache->stats().verdict_hits.load() - before_vh;
    s.verdict_misses = cache->stats().verdict_misses.load() - before_vm;
    s.lts_misses = cache->stats().lts_misses.load() - before_lm;
    s.stores = cache->stats().stores.load() - before_st;
    if (cache->disk()) {
      s.disk_bytes_written =
          cache->disk()->stats().bytes_written.load() - before_bw;
    }
  }

  *print = fingerprint(batch);
  if (!batch.all_as_expected()) {
    std::fprintf(stderr, "FAIL [%s]: unexpected verdicts\n", phase.c_str());
    *ok = false;
  }
  if (!reference.empty() && *print != reference) {
    std::fprintf(stderr, "FAIL [%s]: outcomes differ from the uncached reference\n",
                 phase.c_str());
    *ok = false;
  }
  return s;
}

void emit_json(const std::filesystem::path& path, std::size_t dilation,
               unsigned jobs, std::size_t checks,
               const std::vector<Sweep>& sweeps, double speedup_mem,
               double speedup_disk, bool ok) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"incremental_cache\",\n"
               "  \"suite\": \"ota_matrix+extended\",\n"
               "  \"dilation\": %zu,\n"
               "  \"jobs\": %u,\n"
               "  \"checks\": %zu,\n"
               "  \"runs\": [\n",
               dilation, jobs, checks);
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const Sweep& s = sweeps[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"wall_ms\": %.3f, \"cpu_ms\": %.3f, "
        "\"cached_cells\": %zu, \"verdict_hits\": %llu, "
        "\"verdict_misses\": %llu, \"lts_misses\": %llu, \"stores\": %llu, "
        "\"disk_bytes_written\": %llu}%s\n",
        s.phase.c_str(), s.wall_ms, s.cpu_ms, s.cached_cells,
        static_cast<unsigned long long>(s.verdict_hits),
        static_cast<unsigned long long>(s.verdict_misses),
        static_cast<unsigned long long>(s.lts_misses),
        static_cast<unsigned long long>(s.stores),
        static_cast<unsigned long long>(s.disk_bytes_written),
        i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"speedup_warm_memory_vs_cold\": %.2f,\n"
               "  \"speedup_warm_disk_vs_cold\": %.2f,\n"
               "  \"coherent\": %s\n"
               "}\n",
               speedup_mem, speedup_disk, ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // bench_incremental_cache [dilation] [jobs] [output.json]
  const std::size_t dilation =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const unsigned jobs =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 1;
  const std::filesystem::path json_path =
      argc > 3 ? argv[3] : "BENCH_cache.json";

  const std::vector<CheckTask> suite = build_suite(dilation);
  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() /
      ("ecucsp_bench_cache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(cache_dir);

  std::printf(
      "incremental cache bench: %zu checks, dilation %zu (~3^%zu states per "
      "cell), %u worker(s)\n\n",
      suite.size(), dilation, dilation, jobs);

  bool ok = true;
  std::vector<Sweep> sweeps;
  std::vector<std::string> reference, print;

  // Baseline: no cache installed at all.
  sweeps.push_back(measure("uncached", suite, jobs, nullptr, &reference, &ok, {}));

  {
    store::VerificationCache cache(cache_dir);
    ScopedCheckCache installed(&cache);

    sweeps.push_back(measure("cold", suite, jobs, &cache, &print, &ok, reference));
    if (sweeps.back().cached_cells != 0) {
      std::fprintf(stderr, "FAIL [cold]: cells served from an empty cache\n");
      ok = false;
    }

    sweeps.push_back(
        measure("warm-memory", suite, jobs, &cache, &print, &ok, reference));
    Sweep& mem = sweeps.back();
    if (mem.cached_cells != suite.size() || mem.verdict_misses != 0 ||
        mem.lts_misses != 0 || mem.stores != 0) {
      std::fprintf(stderr,
                   "FAIL [warm-memory]: %zu/%zu cells cached, %llu misses, "
                   "%llu recompilations, %llu stores\n",
                   mem.cached_cells, suite.size(),
                   static_cast<unsigned long long>(mem.verdict_misses),
                   static_cast<unsigned long long>(mem.lts_misses),
                   static_cast<unsigned long long>(mem.stores));
      ok = false;
    }

    cache.clear_memory();  // simulated process restart over a warm directory
    sweeps.push_back(
        measure("warm-disk", suite, jobs, &cache, &print, &ok, reference));
    Sweep& disk = sweeps.back();
    if (disk.cached_cells != suite.size() || disk.verdict_misses != 0 ||
        disk.lts_misses != 0) {
      std::fprintf(stderr, "FAIL [warm-disk]: %zu/%zu cells cached\n",
                   disk.cached_cells, suite.size());
      ok = false;
    }
  }

  const double speedup_mem = sweeps[1].wall_ms / sweeps[2].wall_ms;
  const double speedup_disk = sweeps[1].wall_ms / sweeps[3].wall_ms;

  std::printf("%-12s| %10s | %10s | %6s | %6s | %6s | %6s\n", "phase",
              "wall (ms)", "cpu (ms)", "cached", "miss", "lts-m", "stores");
  std::printf("------------+------------+------------+--------+--------+--------+-------\n");
  for (const Sweep& s : sweeps) {
    std::printf("%-12s| %10.1f | %10.1f | %6zu | %6llu | %6llu | %6llu\n",
                s.phase.c_str(), s.wall_ms, s.cpu_ms, s.cached_cells,
                static_cast<unsigned long long>(s.verdict_misses),
                static_cast<unsigned long long>(s.lts_misses),
                static_cast<unsigned long long>(s.stores));
  }
  std::printf(
      "\nwarm/cold speedup: %.1fx (memory tier), %.1fx (disk tier); "
      "%s\n",
      speedup_mem, speedup_disk,
      ok ? "all sweeps byte-identical to the uncached reference"
         : "COHERENCE FAILURE");

  emit_json(json_path, dilation, jobs, suite.size(), sweeps, speedup_mem,
            speedup_disk, ok);
  std::printf("wrote %s\n", json_path.string().c_str());

  std::filesystem::remove_all(cache_dir);
  return ok ? 0 : 1;
}
