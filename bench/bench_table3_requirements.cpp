// Table III reproduction: the secure-update requirements R01-R05, each
// formalised as a CSP specification and discharged by the refinement
// engine, plus the negative control (the unprotected ECU violating the
// integrity property with the forged-reqApp counterexample).
#include <cstdio>

#include "ota/ota.hpp"
#include "security/properties.hpp"

using namespace ecucsp;

int main() {
  auto model = ota::build_ota_model();
  Context& ctx = model->ctx;

  std::printf("TABLE III: SECURE UPDATE SYSTEM REQUIREMENTS (X.1373)\n\n");
  std::printf("%-4s| %-64s| %-8s| %s\n", "ID", "Requirement", "verdict",
              "states");
  std::printf("----+-----------------------------------------------------"
              "------------+---------+-------\n");
  bool all_ok = true;
  for (const ota::Requirement& r : ota::requirements()) {
    const CheckResult result = ota::check_requirement(*model, r.id);
    all_ok &= result.passed;
    std::printf("%-4s| %-64.64s| %-8s| %zu\n", r.id.c_str(), r.text.c_str(),
                result.passed ? "holds" : "FAILS",
                result.stats.product_states ? result.stats.product_states
                                            : result.stats.impl_states);
  }

  std::printf("\nnegative control: drop R05 (no MAC verification) and "
              "re-check integrity under attack\n");
  const CheckResult broken = security::check_precedence_witness(
      ctx, model->system_unprotected, model->send_reqApp, model->install);
  std::printf("  unprotected ECU: %s\n",
              broken.passed ? "unexpectedly holds" : "violated, as expected");
  if (!broken.passed) {
    std::printf("  counterexample: %s\n",
                broken.counterexample->describe(ctx).c_str());
  }
  const bool control_ok = !broken.passed;
  std::printf("\n%s\n", all_ok && control_ok
                            ? "R01-R05 hold on the secured model; dropping "
                              "R05 is detected"
                            : "UNEXPECTED VERDICTS");
  return all_ok && control_ok ? 0 : 1;
}
