// In-check parallel refinement bench: the PR 5 wave engine timed in
// isolation at 1/2/4/8 exploration threads.
//
// Unlike bench_parallel_checks (many small independent checks across
// scheduler workers), this measures a *single large* product-space sweep —
// the case task-level parallelism cannot help with. The model is K
// interleaved visible three-phase cyclers (state space ~3^K):
//   * the passing workload checks RUN(alphabet) [T= cyclers — a full sweep
//     of the product with no violation to cut it short;
//   * the failing workload corrupts one cycler after L full loops, so the
//     BFS must clear ~3L waves of the full product before the canonical
//     (shortest, lexicographically least) counterexample appears.
// LTS compilation and spec normalisation happen once, on this thread, and
// are excluded from the timings — check_refinement_compiled is all that is
// measured.
//
// Every thread count is asserted byte-identical to the threads=1 reference
// (verdict, vacuity, counterexample trace/event, product_states); the
// process exits 1 on any mismatch. Speedup is reported but not gated: on a
// single-core container every curve degenerates to ~1.0x.
//
// A second workload measures the PR 6 state-space reductions: K cyclers
// whose phase steps each take a *hidden* micro-step (tau after every
// visible event). Unreduced, the interleaving reaches 6^K product states
// (every cycler independently visible- or micro-pending); the hidden
// micro-steps of distinct cyclers are strongly confluent, so diamond
// tau-priorisation serialises them and bisim folds the remainder — the
// same semantics in ~3^K states. The bench sweeps the workload at
// --compress none/bisim/diamond/full on 8 threads, reports the wall-clock
// and reduction-factor curve, asserts verdict/counterexample coherence
// against none, and gates "reduction_ok" on the acceptance threshold: full
// must check >= 10x more raw product states per sweep than it visits.
//
// Usage: bench_parallel_refinement [cyclers] [out.json]
// Writes a machine-readable report (default BENCH_refine_parallel.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "refine/check.hpp"
#include "refine/compact.hpp"
#include "refine/lts.hpp"
#include "refine/normalize.hpp"

using namespace ecucsp;

namespace {

constexpr std::int64_t kLoops = 6;  // corrupt cycler K-1 after 6 full cycles

struct Workload {
  NormLts spec;
  Lts impl;
};

/// RUN over the cycler alphabet: one recursive state offering every event.
ProcessRef run_spec(Context& ctx, ChannelId cyc, std::int64_t cyclers) {
  ctx.define("BENCH_RUN", [cyc, cyclers](Context& cx, std::span<const Value>) {
    ProcessRef p = cx.stop();
    bool first = true;
    for (std::int64_t id = 0; id < cyclers; ++id) {
      for (std::int64_t phase = 0; phase < 3; ++phase) {
        const ProcessRef arm =
            cx.prefix(cx.event(cyc, {Value::integer(id), Value::integer(phase)}),
                      cx.var("BENCH_RUN", {}));
        p = first ? arm : cx.ext_choice(p, arm);
        first = false;
      }
    }
    return p;
  });
  return ctx.var("BENCH_RUN", {});
}

/// id's endless three-phase cycler.
ProcessRef plain_cycler(Context& ctx, std::int64_t id) {
  return ctx.var("BENCH_CYC", {Value::integer(id), Value::integer(0)});
}

Workload build(std::int64_t cyclers, bool corrupt_last) {
  Context ctx;
  std::vector<Value> ids, phases;
  for (std::int64_t i = 0; i < cyclers; ++i) ids.push_back(Value::integer(i));
  for (int p = 0; p < 3; ++p) phases.push_back(Value::integer(p));
  const ChannelId cyc = ctx.channel("bench_cyc", {ids, phases});
  const ChannelId bad = ctx.channel("bench_bad");

  ctx.define("BENCH_CYC", [cyc](Context& cx, std::span<const Value> args) {
    const std::int64_t phase = args[1].as_int();
    return cx.prefix(cx.event(cyc, {args[0], Value::integer(phase)}),
                     cx.var("BENCH_CYC", {args[0], Value::integer((phase + 1) % 3)}));
  });
  // The corrupt variant counts its loops and eventually performs the
  // forbidden bench_bad event — the workload's deep, unique violation.
  ctx.define("BENCH_CNT", [cyc, bad, cyclers](Context& cx,
                                              std::span<const Value> args) {
    const std::int64_t loop = args[0].as_int();
    const std::int64_t phase = args[1].as_int();
    if (loop >= kLoops) return cx.prefix(cx.event(bad), cx.stop());
    const std::int64_t nphase = (phase + 1) % 3;
    return cx.prefix(
        cx.event(cyc, {Value::integer(cyclers - 1), Value::integer(phase)}),
        cx.var("BENCH_CNT", {Value::integer(loop + (nphase == 0 ? 1 : 0)),
                             Value::integer(nphase)}));
  });

  const std::int64_t plain = corrupt_last ? cyclers - 1 : cyclers;
  ProcessRef impl = plain_cycler(ctx, 0);
  for (std::int64_t i = 1; i < plain; ++i)
    impl = ctx.interleave(impl, plain_cycler(ctx, i));
  if (corrupt_last)
    impl = ctx.interleave(
        impl, ctx.var("BENCH_CNT", {Value::integer(0), Value::integer(0)}));

  const ProcessRef spec = run_spec(ctx, cyc, cyclers);
  Workload w;
  w.impl = compile_lts(ctx, impl);
  w.spec = normalize(compile_lts(ctx, spec), /*with_divergence=*/false);
  return w;
}

/// The compression workload: cyclers whose every visible phase step is
/// followed by a hidden micro-step. Hiding makes the micro-steps tau, and
/// taus of distinct interleaved cyclers commute — exactly the structure
/// diamond's confluence priorisation eliminates.
Workload build_hidden(std::int64_t cyclers, bool corrupt_last) {
  Context ctx;
  std::vector<Value> ids, phases;
  for (std::int64_t i = 0; i < cyclers; ++i) ids.push_back(Value::integer(i));
  for (int p = 0; p < 3; ++p) phases.push_back(Value::integer(p));
  const ChannelId cyc = ctx.channel("bench_cyc", {ids, phases});
  const ChannelId mic = ctx.channel("bench_mic", {ids});
  const ChannelId bad = ctx.channel("bench_bad");

  ctx.define("BENCH_HCYC", [cyc, mic](Context& cx,
                                      std::span<const Value> args) {
    const std::int64_t phase = args[1].as_int();
    return cx.prefix(
        cx.event(cyc, {args[0], Value::integer(phase)}),
        cx.prefix(cx.event(mic, {args[0]}),
                  cx.var("BENCH_HCYC",
                         {args[0], Value::integer((phase + 1) % 3)})));
  });
  ctx.define("BENCH_HCNT", [cyc, mic, bad, cyclers](
                               Context& cx, std::span<const Value> args) {
    const std::int64_t loop = args[0].as_int();
    const std::int64_t phase = args[1].as_int();
    if (loop >= kLoops) return cx.prefix(cx.event(bad), cx.stop());
    const Value id = Value::integer(cyclers - 1);
    const std::int64_t nphase = (phase + 1) % 3;
    return cx.prefix(
        cx.event(cyc, {id, Value::integer(phase)}),
        cx.prefix(cx.event(mic, {id}),
                  cx.var("BENCH_HCNT",
                         {Value::integer(loop + (nphase == 0 ? 1 : 0)),
                          Value::integer(nphase)})));
  });

  const std::int64_t plain = corrupt_last ? cyclers - 1 : cyclers;
  ProcessRef impl = ctx.var("BENCH_HCYC", {Value::integer(0), Value::integer(0)});
  for (std::int64_t i = 1; i < plain; ++i)
    impl = ctx.interleave(
        impl, ctx.var("BENCH_HCYC", {Value::integer(i), Value::integer(0)}));
  if (corrupt_last)
    impl = ctx.interleave(
        impl, ctx.var("BENCH_HCNT", {Value::integer(0), Value::integer(0)}));

  std::vector<EventId> micro;
  for (std::int64_t i = 0; i < cyclers; ++i)
    micro.push_back(ctx.event(mic, {Value::integer(i)}));
  impl = ctx.hide(impl, EventSet(std::move(micro)));

  const ProcessRef spec = run_spec(ctx, cyc, cyclers);
  Workload w;
  w.impl = compile_lts(ctx, impl);
  w.spec = normalize(compile_lts(ctx, spec), /*with_divergence=*/false);
  return w;
}

double time_ms(const Workload& w, unsigned threads, CheckResult& out) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    out = check_refinement_compiled(w.spec, w.impl, Model::Traces, threads);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::string cx_key(const CheckResult& r) {
  if (!r.counterexample) return "-";
  std::string key = std::to_string(static_cast<int>(r.counterexample->kind));
  for (const EventId e : r.counterexample->trace)
    key += "," + std::to_string(e);
  key += "!" + std::to_string(r.counterexample->event);
  return key;
}

bool coherent(const CheckResult& ref, const CheckResult& got) {
  return ref.passed == got.passed && ref.vacuous == got.vacuous &&
         ref.stats.product_states == got.stats.product_states &&
         cx_key(ref) == cx_key(got);
}

/// Verdict-level coherence only: compressed PASS sweeps legitimately visit
/// fewer product states, so unlike the thread curve the state counts are
/// not compared (they are the measurement).
bool verdict_coherent(const CheckResult& ref, const CheckResult& got) {
  return ref.passed == got.passed && ref.vacuous == got.vacuous &&
         cx_key(ref) == cx_key(got);
}

/// One compressed sweep: reduction + product walk, all inside the timer —
/// the honest end-to-end cost a check pays for the mode.
double time_compressed_ms(const Workload& w, const CompactLts& impl,
                          Compression mode, unsigned threads,
                          CheckResult& out) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    out = check_refinement_compiled(w.spec, impl, Model::Traces, threads,
                                    nullptr, mode);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t cyclers = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 9;
  const char* out_path = argc > 2 ? argv[2] : "BENCH_refine_parallel.json";
  if (cyclers < 2) {
    std::fprintf(stderr, "need at least 2 cyclers\n");
    return 2;
  }

  const Workload pass = build(cyclers, /*corrupt_last=*/false);
  const Workload fail = build(cyclers, /*corrupt_last=*/true);
  std::printf("single-product wave-engine bench: %ld cyclers\n", (long)cyclers);
  std::printf("  pass sweep: %zu impl states, %zu transitions\n",
              pass.impl.state_count(), pass.impl.transition_count());
  std::printf("  fail sweep: %zu impl states, violation after %ld loops\n\n",
              fail.impl.state_count(), (long)kLoops);

  std::printf("%-8s| %-12s| %-12s| %-8s| %s\n", "threads", "pass (ms)",
              "fail (ms)", "speedup", "verdicts");
  std::printf("--------+-------------+-------------+---------+---------\n");

  CheckResult pass_ref, fail_ref;
  double pass_1 = 0.0, fail_1 = 0.0;
  bool ok = true;
  std::string rows;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    CheckResult p, f;
    const double pms = time_ms(pass, threads, p);
    const double fms = time_ms(fail, threads, f);
    if (threads == 1) {
      pass_ref = p;
      fail_ref = f;
      pass_1 = pms;
      fail_1 = fms;
      if (!p.passed || f.passed || !f.counterexample) {
        std::fprintf(stderr, "workload verdicts wrong at threads=1\n");
        return 1;
      }
    }
    const bool same = coherent(pass_ref, p) && coherent(fail_ref, f);
    ok &= same;
    const double speedup = (pass_1 + fail_1) / (pms + fms);
    std::printf("%-8u| %11.1f | %11.1f | %6.2fx | %s\n", threads, pms, fms,
                speedup, same ? "coherent" : "MISMATCH");
    if (!rows.empty()) rows += ",";
    rows += "{\"threads\":" + std::to_string(threads) +
            ",\"pass_ms\":" + std::to_string(pms) +
            ",\"fail_ms\":" + std::to_string(fms) +
            ",\"speedup\":" + std::to_string(speedup) +
            ",\"coherent\":" + (same ? "true" : "false") + "}";
  }

  // --- compression curve: hidden-micro-step cyclers at 8 threads ------------
  // 6^K unreduced product states and a ~2^K reduction factor, so cap K at 5:
  // 7776 unreduced states fold to ~243, a ~32x factor that clears the >= 10x
  // acceptance bar while staying cheap enough for unoptimised CI legs.
  const std::int64_t kc = std::min<std::int64_t>(cyclers, 5);
  const Workload hpass = build_hidden(kc, /*corrupt_last=*/false);
  const Workload hfail = build_hidden(kc, /*corrupt_last=*/true);
  const CompactLts hpass_impl = compact_from_lts(hpass.impl);
  const CompactLts hfail_impl = compact_from_lts(hfail.impl);
  constexpr unsigned kCompressThreads = 8;

  std::printf("\nstate-space reduction bench: %ld hidden-micro cyclers, "
              "%u threads\n", (long)kc, kCompressThreads);
  std::printf("%-8s| %-12s| %-12s| %-14s| %-10s| %s\n", "mode", "pass (ms)",
              "fail (ms)", "product states", "reduction", "verdicts");
  std::printf(
      "--------+-------------+-------------+---------------+-----------+"
      "---------\n");

  CheckResult hp_ref, hf_ref;
  std::size_t none_product = 0;
  double reduction_full = 1.0;
  std::string crows;
  for (const Compression mode : {Compression::None, Compression::Bisim,
                                 Compression::Diamond, Compression::Full}) {
    CheckResult p, f;
    const double pms =
        time_compressed_ms(hpass, hpass_impl, mode, kCompressThreads, p);
    const double fms =
        time_compressed_ms(hfail, hfail_impl, mode, kCompressThreads, f);
    if (mode == Compression::None) {
      hp_ref = p;
      hf_ref = f;
      none_product = p.stats.product_states;
      if (!p.passed || f.passed || !f.counterexample) {
        std::fprintf(stderr, "compression workload verdicts wrong at none\n");
        return 1;
      }
    }
    const bool same = verdict_coherent(hp_ref, p) && verdict_coherent(hf_ref, f);
    ok &= same;
    const double reduction = p.stats.product_states == 0
                                 ? 1.0
                                 : static_cast<double>(none_product) /
                                       static_cast<double>(p.stats.product_states);
    if (mode == Compression::Full) reduction_full = reduction;
    std::printf("%-8s| %11.1f | %11.1f | %13zu | %8.1fx | %s\n",
                std::string(to_string(mode)).c_str(), pms, fms,
                p.stats.product_states, reduction,
                same ? "coherent" : "MISMATCH");
    if (!crows.empty()) crows += ",";
    crows += "{\"mode\":\"" + std::string(to_string(mode)) + "\"" +
             ",\"pass_ms\":" + std::to_string(pms) +
             ",\"fail_ms\":" + std::to_string(fms) +
             ",\"pass_product_states\":" + std::to_string(p.stats.product_states) +
             ",\"reduction_factor\":" + std::to_string(reduction) +
             ",\"coherent\":" + (same ? "true" : "false") + "}";
  }
  // The ISSUE acceptance bar: full compression must let the same sweep
  // stand in for >= 10x as many raw product states.
  const bool reduction_ok = reduction_full >= 10.0;
  std::printf("full-mode reduction factor %.1fx (>= 10x required): %s\n",
              reduction_full, reduction_ok ? "ok" : "TOO LOW");

  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  std::fprintf(out,
               "{\"bench_format\":1,\"bench\":\"refine_parallel\","
               "\"cyclers\":%ld,\"pass_product_states\":%zu,"
               "\"fail_product_states\":%zu,\"runs\":[%s],"
               "\"compress_cyclers\":%ld,"
               "\"compress_unreduced_product_states\":%zu,"
               "\"compress_runs\":[%s],"
               "\"reduction_factor\":%.3f,\"reduction_ok\":%s,"
               "\"coherent\":%s}\n",
               (long)cyclers, pass_ref.stats.product_states,
               fail_ref.stats.product_states, rows.c_str(), (long)kc,
               none_product, crows.c_str(), reduction_full,
               reduction_ok ? "true" : "false",
               ok && reduction_ok ? "true" : "false");
  std::fclose(out);

  std::printf("\n%s; report written to %s\n",
              ok && reduction_ok
                  ? "all thread counts and compression modes coherent"
                  : "MISMATCH or insufficient reduction",
              out_path);
  return ok && reduction_ok ? 0 : 1;
}
