// Golden-file tests for the diagnostic renderers: the human caret format
// and the JSON schema are byte-stable contracts (editors and CI parse
// them), so both are pinned against checked-in goldens. Regenerate with
//   ECUCSP_UPDATE_GOLDEN=1 ctest -R lint_render
// after an intentional format change, and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

namespace ecucsp::lint {
namespace {

std::filesystem::path golden_dir() { return ECUCSP_GOLDEN_DIR; }

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_matches_golden(const std::string& actual, const char* name) {
  const std::filesystem::path path = golden_dir() / name;
  if (std::getenv("ECUCSP_UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot update golden " << path;
    return;
  }
  ASSERT_TRUE(std::filesystem::exists(path))
      << "golden " << path << " missing; run with ECUCSP_UPDATE_GOLDEN=1";
  EXPECT_EQ(actual, read_file(path)) << "output drifted from golden " << name
                                     << "; if intentional, regenerate with "
                                        "ECUCSP_UPDATE_GOLDEN=1 and review";
}

/// A fixed scenario covering the renderer's edge cases: two files, a
/// multi-character underline, a tab-indented source line, a note, and a
/// whole-file (line 0) diagnostic.
struct Scenario {
  std::vector<Diagnostic> diags;
  SourceMap sources;
};

Scenario scenario() {
  Scenario s;
  s.sources["vmg.can"] =
      "variables {\n"
      "  message Ghost tx;\n"
      "\toutput(tx);\n";
  s.sources["model.csp"] = "channel a\nP = a -> Q\n";
  // Deliberately inserted out of report order (and one exact duplicate):
  // finalize() must sort and dedupe before rendering.
  s.diags.push_back({"S001", Severity::Error, "model.csp", {2, 10, 1},
                     "use of undefined name 'Q'"});
  s.diags.push_back({"C002", Severity::Error, "vmg.can", {2, 11, 5},
                     "message 'Ghost' is not defined in the CANdb"});
  s.diags.push_back({"C002", Severity::Error, "vmg.can", {2, 11, 5},
                     "message 'Ghost' is not defined in the CANdb"});
  s.diags.push_back({"C007", Severity::Warning, "vmg.can", {3, 9, 2},
                     "tab-indented span stays aligned"});
  s.diags.push_back({"E001", Severity::Error, "broken.dbc", {0, 1, 1},
                     "unexpected end of input"});
  s.diags.push_back({"S003", Severity::Note, "model.csp", {2, 1, 1},
                     "a note-severity diagnostic"});
  // A flow diagnostic with a source→sink chain (lint_format 2).
  Diagnostic taint{"T001", Severity::Warning, "vmg.can", {3, 2, 6},
                   "received data reaches the bus without validation"};
  taint.chain.push_back({{2, 11, 5}, "value read from received frame"});
  taint.chain.push_back({{3, 2, 6}, "frame 'tx' reaches the bus via output()"});
  s.diags.push_back(std::move(taint));
  DiagnosticSink sink;
  for (Diagnostic& d : s.diags) sink.add(std::move(d));
  sink.finalize();
  s.diags = sink.diagnostics();
  return s;
}

TEST(LintRender, TextMatchesGolden) {
  const Scenario s = scenario();
  expect_matches_golden(render_text(s.diags, s.sources), "lint_report.txt");
}

TEST(LintRender, JsonMatchesGolden) {
  const Scenario s = scenario();
  expect_matches_golden(render_json(s.diags), "lint_report.json");
}

TEST(LintRender, OrderingIsDeterministic) {
  // Same diagnostics, reversed insertion order: identical report.
  const Scenario fwd = scenario();
  DiagnosticSink rev;
  for (auto it = fwd.diags.rbegin(); it != fwd.diags.rend(); ++it) {
    rev.add(*it);
  }
  rev.finalize();
  EXPECT_EQ(render_text(rev.diagnostics(), fwd.sources),
            render_text(fwd.diags, fwd.sources));
  EXPECT_EQ(render_json(rev.diagnostics()), render_json(fwd.diags));
}

TEST(LintRender, FinalizeDropsExactDuplicates) {
  const Scenario s = scenario();
  int c002 = 0;
  for (const Diagnostic& d : s.diags) c002 += d.rule == "C002";
  EXPECT_EQ(c002, 1);  // inserted twice, reported once
}

TEST(LintRender, CaretPaddingPreservesTabs) {
  const Scenario s = scenario();
  const std::string text = render_text(s.diags, s.sources);
  // The caret line under "\toutput(tx);" must start with a tab so the
  // underline tracks the source whatever tab width the terminal uses.
  EXPECT_NE(text.find("| \t"), std::string::npos);
}

TEST(LintRender, WholeFileDiagnosticsRenderWithoutCarets) {
  const Scenario s = scenario();
  const std::string text = render_text(s.diags, s.sources);
  // Line 0 => no location suffix and no caret block for that entry.
  EXPECT_NE(text.find("broken.dbc: error: unexpected end of input [E001]\n"),
            std::string::npos);
}

TEST(LintRender, SummaryLineCountsBySeverity) {
  const Scenario s = scenario();
  EXPECT_EQ(summary_line(s.diags), "3 error(s), 2 warning(s), 1 note(s)");
}

TEST(LintRender, JsonEscapesControlAndQuoteCharacters) {
  std::vector<Diagnostic> diags;
  diags.push_back({"E001", Severity::Error, "a\"b.csp", {1, 1, 1},
                   "line\nbreak\tand \"quote\""});
  const std::string json = render_json(diags);
  EXPECT_NE(json.find("a\\\"b.csp"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\tand \\\"quote\\\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // one trailing newline only
}

}  // namespace
}  // namespace ecucsp::lint
