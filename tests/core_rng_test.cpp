// Regression pins for the splitmix64 factoring (core/rng.hpp).
//
// sim::Environment, conform suite generation and replay::synthesize_log each
// carried a private copy of the same mixer; this PR collapsed them onto
// core::splitmix64. Every constant below was captured from a build *before*
// the factoring, so these tests prove the refactor is byte-preserving: the
// same seeds produce the same jitter streams, the same generated suites and
// the same synthetic candump logs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "capl/parser.hpp"
#include "conform/generate.hpp"
#include "conform/harness.hpp"
#include "conform/requirements.hpp"
#include "core/rng.hpp"
#include "ota/ota.hpp"
#include "replay/synth.hpp"
#include "sim/environment.hpp"
#include "store/digest.hpp"

namespace {

using namespace ecucsp;

TEST(CoreRng, SplitmixStreamMatchesPreFactoringEnvironment) {
  // Environment(100, 42).rng() x 4, captured pre-factoring.
  sim::Environment env(100, 42);
  EXPECT_EQ(env.rng(), 2949826092126892291ULL);
  EXPECT_EQ(env.rng(), 5139283748462763858ULL);
  EXPECT_EQ(env.rng(), 6349198060258255764ULL);
  EXPECT_EQ(env.rng(), 701532786141963250ULL);

  // The same stream must fall out of core::splitmix64 over core::seed_state.
  std::uint64_t state = core::seed_state(42);
  EXPECT_EQ(core::splitmix64(state), 2949826092126892291ULL);
  EXPECT_EQ(core::splitmix64(state), 5139283748462763858ULL);
  EXPECT_EQ(core::splitmix64(state), 6349198060258255764ULL);
  EXPECT_EQ(core::splitmix64(state), 701532786141963250ULL);
}

TEST(CoreRng, ConformWrapperMatchesPreFactoringStream) {
  // conform::splitmix64 from state 7 x 4, captured pre-factoring.
  std::uint64_t state = 7;
  EXPECT_EQ(conform::splitmix64(state), 7191089600892374487ULL);
  EXPECT_EQ(conform::splitmix64(state), 309689372594955804ULL);
  EXPECT_EQ(conform::splitmix64(state), 16616101746815609346ULL);
  EXPECT_EQ(conform::splitmix64(state), 10753165928301472203ULL);
  EXPECT_EQ(state, 8709371129873690715ULL);

  // And it is the same function as core's.
  std::uint64_t a = 7, b = 7;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(conform::splitmix64(a), core::splitmix64(b));
  }
}

TEST(CoreRng, Mix64IsStatelessSplitmixStep) {
  std::uint64_t state = 123456789;
  const std::uint64_t stepped = core::splitmix64(state);
  EXPECT_EQ(core::mix64(123456789), stepped);
  // mix64 must not depend on hidden state: same input, same output.
  EXPECT_EQ(core::mix64(123456789), core::mix64(123456789));
}

TEST(CoreRng, SeededHarnessObservationUnchanged) {
  // Faithful ECU, seed 5, planned [SwInventoryReq, UpdApplyReq]: the
  // observation captured pre-factoring. Exercises Environment::rng()'s use
  // in stimulus-timing jitter end to end.
  const auto db = can::parse_dbc(ota::ota_dbc_text());
  const auto codec = conform::ota_codec(db);
  const auto ecu = capl::parse_capl(ota::ecu_capl_source());
  conform::HarnessOptions opt;
  opt.seed = 5;
  const auto run = conform::run_conformance_test(
      ecu, nullptr, db, codec,
      {"send.SwInventoryReq", "send.UpdApplyReq"}, opt);
  const std::vector<std::string> want = {
      "send.SwInventoryReq", "rec.SwReport", "send.UpdApplyReq",
      "rec.UpdReport"};
  EXPECT_EQ(run.observed, want);
}

TEST(CoreRng, SeededRandomSuiteUnchanged) {
  // generate_random(model, seed 9, tests 2, max_len 6) with the standard
  // plannable predicate, captured pre-factoring.
  const auto db = can::parse_dbc(ota::ota_dbc_text());
  const auto codec = conform::ota_codec(db);
  const auto oracle = conform::ota_model_oracle();

  conform::GeneratorOptions gopt;
  gopt.seed = 9;
  gopt.tests = 2;
  gopt.max_len = 6;
  gopt.plannable = [&](const std::string& e) {
    return codec.concretize(e).has_value() || e.starts_with("rec.");
  };
  const auto suite = conform::generate_random(oracle.automaton, gopt);
  ASSERT_EQ(suite.size(), 2u);

  EXPECT_EQ(suite[0].name, "random-0");
  EXPECT_EQ(suite[0].seed, 11279159836807902036ULL);
  const std::vector<std::string> want0 = {
      "send.SwInventoryReq", "rec.SwReport",       "send.UpdApplyReq",
      "send.UpdApplyReq",    "send.SwInventoryReq", "rec.SwReport"};
  EXPECT_EQ(suite[0].events, want0);

  EXPECT_EQ(suite[1].name, "random-1");
  EXPECT_EQ(suite[1].seed, 16569933224131224581ULL);
  const std::vector<std::string> want1 = {
      "send.SwInventoryReq", "rec.SwReport", "send.SwInventoryReq",
      "rec.SwReport",        "send.UpdApplyReq", "send.SwInventoryReq"};
  EXPECT_EQ(suite[1].events, want1);
}

TEST(CoreRng, SeededSyntheticLogUnchanged) {
  // synthesize_log(codec, {seed 3, frames 12}), captured pre-factoring.
  const auto db = can::parse_dbc(ota::ota_dbc_text());
  const auto codec = conform::ota_codec(db);
  replay::SynthOptions opt;
  opt.seed = 3;
  opt.frames = 12;
  const auto log = replay::synthesize_log(codec, opt);
  EXPECT_EQ(log.frames, 13u);
  EXPECT_EQ(log.events.size(), 13u);
  EXPECT_EQ(store::digest_bytes(log.text).hex(),
            "fa18fe997ba08b945b42c68b71306f42");
}

}  // namespace
