// Table-driven corpus test: every lint rule has at least one minimal input
// that triggers it (with the right id, severity and source line) and the
// clean negatives stay silent. The corpus lives in tests/lint_corpus/; each
// positive case is written to produce exactly one diagnostic, so a new
// finding leaking into an unrelated case fails loudly here.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "lint/lint.hpp"

namespace ecucsp::lint {
namespace {

std::filesystem::path corpus_dir() { return ECUCSP_LINT_CORPUS_DIR; }

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "missing corpus file " << p;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Build the request the CLI would build for one corpus file: CAPL cases
/// are checked against the shared corpus.dbc, DBC and CSPm cases stand
/// alone.
LintRequest request_for(const std::string& file) {
  const std::filesystem::path path = corpus_dir() / file;
  LintRequest req;
  const std::string ext = path.extension().string();
  if (ext == ".can") {
    req.capl.push_back({file, slurp(path)});
    req.dbc = SourceFile{"corpus.dbc", slurp(corpus_dir() / "corpus.dbc")};
  } else if (ext == ".dbc") {
    req.dbc = SourceFile{file, slurp(path)};
  } else {
    req.cspm.push_back({file, slurp(path)});
  }
  return req;
}

struct CorpusCase {
  const char* file;
  const char* rule;
  int line;  // expected span line; 0 = don't check (file-level E001)
};

const CorpusCase kPositive[] = {
    {"C001_duplicate_handler.can", "C001", 10},
    {"C002_unknown_message.can", "C002", 2},
    {"C003_unknown_signal.can", "C003", 3},
    {"C004_signal_overflow.can", "C004", 3},
    {"C005_byte_index_range.can", "C005", 3},
    {"C006_unreachable_code.can", "C006", 4},
    {"C007_undefined_name.can", "C007", 3},
    {"C008_this_outside_handler.can", "C008", 3},
    {"C009_duplicate_variable.can", "C009", 4},
    {"D001_signal_exceeds_dlc.dbc", "D001", 4},
    {"D002_signal_overlap.dbc", "D002", 5},
    {"D003_duplicate_message_id.dbc", "D003", 6},
    {"D004_duplicate_signal.dbc", "D004", 5},
    {"E001_parse_error.csp", "E001", 0},
    {"S001_undefined_name.csp", "S001", 3},
    {"S002_not_a_channel.csp", "S002", 3},
    {"S003_unused_definition.csp", "S003", 3},
    {"S004_unguarded_recursion.csp", "S004", 3},
    {"S005_vacuous_refinement.csp", "S005", 6},
    {"S006_unused_channel.csp", "S006", 3},
    {"T001_taint_to_bus.can", "T001", 6},
    {"T002_mac_bypass.can", "T002", 5},
    {"T003_stale_freshness.can", "T003", 5},
};

TEST(LintCorpus, EveryPositiveCaseFiresItsRuleAndNothingElse) {
  for (const CorpusCase& c : kPositive) {
    SCOPED_TRACE(c.file);
    const LintReport report = run_lint(request_for(c.file));
    ASSERT_EQ(report.diagnostics.size(), 1u)
        << render_text(report.diagnostics, report.sources);
    const Diagnostic& d = report.diagnostics.front();
    EXPECT_EQ(d.rule, c.rule);
    EXPECT_EQ(d.file, c.file);
    if (c.line > 0) {
      EXPECT_EQ(d.span.line, c.line);
    }
    EXPECT_GE(d.span.column, 1);
    EXPECT_GE(d.span.length, 1);
    // Flow rules must carry a complete source→sink chain; point rules none.
    if (c.rule[0] == 'T') {
      EXPECT_GE(d.chain.size(), 2u) << "flow rule without a source→sink chain";
      for (const ChainStep& step : d.chain) {
        EXPECT_GE(step.span.line, 1);
        EXPECT_FALSE(step.note.empty());
      }
    } else {
      EXPECT_TRUE(d.chain.empty());
    }
    // Severity comes straight from the catalogue.
    const RuleInfo* info = find_rule(d.rule);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(d.severity, info->severity);
    EXPECT_EQ(report.has_errors(), info->severity == Severity::Error);
  }
}

TEST(LintCorpus, CleanNegativesStaySilent) {
  for (const char* file :
       {"clean.can", "clean_taint.can", "corpus.dbc", "clean.csp"}) {
    SCOPED_TRACE(file);
    const LintReport report = run_lint(request_for(file));
    EXPECT_TRUE(report.diagnostics.empty())
        << render_text(report.diagnostics, report.sources);
  }
}

TEST(LintCorpus, CatalogueIsFullyCovered) {
  // A rule added to the catalogue without a corpus case fails here, keeping
  // the corpus honest as the rule set grows.
  std::set<std::string> covered;
  for (const CorpusCase& c : kPositive) covered.insert(c.rule);
  for (const RuleInfo& r : all_rules()) {
    EXPECT_TRUE(covered.count(std::string(r.id)))
        << "rule " << r.id << " has no corpus case";
  }
  EXPECT_EQ(covered.size(), all_rules().size());
}

TEST(LintCorpus, SourcesAreCapturedForRendering) {
  const LintReport report = run_lint(request_for("C004_signal_overflow.can"));
  ASSERT_EQ(report.diagnostics.size(), 1u);
  // Both inputs end up in the source map so the renderer can show carets.
  EXPECT_EQ(report.sources.count("C004_signal_overflow.can"), 1u);
  EXPECT_EQ(report.sources.count("corpus.dbc"), 1u);
  const std::string text =
      render_text(report.diagnostics, report.sources);
  EXPECT_NE(text.find("this.Small = 99;"), std::string::npos);
  EXPECT_NE(text.find("[C004]"), std::string::npos);
}

}  // namespace
}  // namespace ecucsp::lint
