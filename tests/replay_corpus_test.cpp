// Malformed-log corpus tests: every hostile input in tests/replay_corpus/
// must produce recorded diagnostics — never a crash, never a silent skip —
// with strict and lenient runs differing only in the documented fields,
// and the aggregate JSON report pinned against a checked-in golden.
// Regenerate the golden after an intentional format change with
//   ECUCSP_UPDATE_GOLDEN=1 ctest -R replay_corpus
// and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "replay/replay.hpp"

namespace ecucsp::replay {
namespace {

std::filesystem::path corpus_dir() { return ECUCSP_REPLAY_CORPUS_DIR; }
std::filesystem::path golden_dir() { return ECUCSP_GOLDEN_DIR; }

ReplayReport replay_file(const std::string& name, bool strict = false,
                         unsigned jobs = 1, std::size_t chunk = 16) {
  ReplayOptions opt;
  opt.logs = {corpus_dir() / name};
  opt.strict = strict;
  opt.jobs = jobs;
  opt.chunk = chunk;
  return run_replay(opt);
}

std::string replace_all(std::string s, const std::string& from,
                        const std::string& to) {
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

/// Blank out the two fields strict mode is allowed to change.
std::string mask_strictness(const std::string& json) {
  std::string s = replace_all(json, "\"strict\":true", "\"strict\":?");
  s = replace_all(s, "\"strict\":false", "\"strict\":?");
  s = replace_all(s, "\"ok\":true", "\"ok\":?");
  return replace_all(s, "\"ok\":false", "\"ok\":?");
}

struct Expectation {
  const char* file;
  std::size_t errors;    // exact Error diagnostic count
  std::size_t warnings;  // exact Warning diagnostic count
  std::size_t frames;    // records surviving ingestion
};

// The pinned corpus matrix. Counts are exact: a parser change that starts
// silently skipping (or doubly reporting) a malformed line fails here.
const Expectation kCorpus[] = {
    {"truncated.log", 3, 0, 3},
    {"bad_hex.log", 4, 0, 3},
    {"out_of_order.log", 0, 1, 4},
    {"unknown_id.log", 2, 0, 6},  // unknown ids ingest, then fail decode
    {"empty.log", 1, 0, 0},
    {"fd_remote.log", 3, 0, 4},
};

TEST(ReplayCorpus, EveryFileYieldsRecordedDiagnosticsNeverACrash) {
  for (const Expectation& e : kCorpus) {
    SCOPED_TRACE(e.file);
    const ReplayReport rep = replay_file(e.file);
    std::size_t errors = 0, warnings = 0;
    for (const LogDiagnostic& d : rep.diagnostics) {
      (d.severity == DiagSeverity::Error ? errors : warnings)++;
      EXPECT_FALSE(d.message.empty());
    }
    EXPECT_EQ(errors, e.errors) << rep.render_text();
    EXPECT_EQ(warnings, e.warnings) << rep.render_text();
    EXPECT_EQ(rep.diagnostic_count, e.errors + e.warnings);
    EXPECT_EQ(rep.frames, e.frames);
  }
}

TEST(ReplayCorpus, StrictAndLenientDifferOnlyInTheDocumentedFields) {
  for (const Expectation& e : kCorpus) {
    SCOPED_TRACE(e.file);
    const ReplayReport lenient = replay_file(e.file, /*strict=*/false);
    const ReplayReport strict = replay_file(e.file, /*strict=*/true);
    // Diagnostics present => strict fails, lenient doesn't (oracle verdicts
    // permitting); either way the reports agree everywhere else.
    EXPECT_FALSE(strict.ok());
    EXPECT_EQ(mask_strictness(lenient.render_json()),
              mask_strictness(strict.render_json()));
    if (lenient.ok()) {
      EXPECT_NE(lenient.render_json(), strict.render_json());
    }
  }
}

TEST(ReplayCorpus, WorkerAndChunkGeometryNeverChangesTheReport) {
  for (const Expectation& e : kCorpus) {
    SCOPED_TRACE(e.file);
    const std::string reference = replay_file(e.file, false, 1, 16).render_json();
    EXPECT_EQ(replay_file(e.file, false, 4, 16).render_json(), reference);
    EXPECT_EQ(replay_file(e.file, false, 4, 4096).render_json(), reference);
    EXPECT_EQ(replay_file(e.file, false, 2, 0).render_json(), reference);
  }
}

TEST(ReplayCorpus, MiniLogIsCleanAndViolationPinsItsInjectedFrame) {
  const ReplayReport mini = replay_file("mini.log", /*strict=*/true);
  EXPECT_TRUE(mini.ok()) << mini.render_text();
  EXPECT_EQ(mini.frames, 40u);
  EXPECT_EQ(mini.diagnostic_count, 0u);

  // violation.log is mini.log with a spurious UpdReport spliced in as line
  // 21 / event 20 — R04 must point at exactly that frame.
  const ReplayReport bad = replay_file("violation.log");
  EXPECT_FALSE(bad.ok());
  bool pinned = false;
  for (const OracleReport& o : bad.oracles) {
    if (o.name != "R04") continue;
    ASSERT_FALSE(o.divergences.empty());
    EXPECT_EQ(o.divergences[0].event_index, 20u);
    EXPECT_EQ(o.divergences[0].frame.line, 21u);
    EXPECT_EQ(o.divergences[0].event, "rec.UpdReport");
    pinned = true;
  }
  EXPECT_TRUE(pinned);
}

// --- golden ------------------------------------------------------------------

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ReplayCorpus, AggregateReportMatchesGolden) {
  // Every corpus file's lenient JSON, in a fixed order, with the absolute
  // corpus directory normalised out so the golden is machine-independent.
  std::string actual;
  std::vector<std::string> files;
  for (const Expectation& e : kCorpus) files.push_back(e.file);
  files.push_back("mini.log");
  files.push_back("violation.log");
  for (const std::string& f : files) {
    actual += "=== " + f + " ===\n";
    actual += replay_file(f).render_json();
  }
  actual = replace_all(actual, corpus_dir().string(), "<corpus>");

  const std::filesystem::path path = golden_dir() / "replay_corpus.json";
  if (std::getenv("ECUCSP_UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot update golden " << path;
    return;
  }
  ASSERT_TRUE(std::filesystem::exists(path))
      << "golden " << path << " missing; run with ECUCSP_UPDATE_GOLDEN=1";
  EXPECT_EQ(actual, read_file(path))
      << "output drifted from golden replay_corpus.json; if intentional, "
         "regenerate with ECUCSP_UPDATE_GOLDEN=1 and review";
}

}  // namespace
}  // namespace ecucsp::replay
