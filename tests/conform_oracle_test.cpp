// Property tests for the conformance trace oracle.
//
// The oracle is correct iff it decides exactly the trace set of the process
// it was compiled from. Two differential properties pin that down against
// the independent engines in refine/check.hpp:
//
//   * soundness: every trace enumerate_traces() lists for a random term is
//     accepted by the term's own oracle;
//   * completeness-of-rejection: a one-event mutation of such a trace is
//     accepted iff is_trace_of() says the mutant is genuinely still a trace
//     (mutations can land back inside the language), and on rejection the
//     oracle's divergence index equals is_trace_of's accepted prefix.
//
// Random terms come from the same seeded generator family as
// refine_props_test / refine_diff_test, so failures reproduce by seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "conform/generate.hpp"
#include "conform/oracle.hpp"
#include "conform/requirements.hpp"
#include "refine/check.hpp"

namespace ecucsp {
namespace {

using conform::OracleVerdict;
using conform::TraceOracle;
using conform::compile_oracle;

struct Gen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;

  Gen(Context& c, unsigned seed) : ctx(c), rng(seed) {
    for (const char* name : {"a", "b", "c"}) {
      alphabet.push_back(ctx.event(ctx.channel(name)));
    }
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  ProcessRef process(int depth) {
    switch (std::uniform_int_distribution<int>(0, depth <= 0 ? 1 : 7)(rng)) {
      case 0:
        return ctx.stop();
      case 1:
        return ctx.prefix(event(),
                          depth <= 0 ? ctx.stop() : process(depth - 1));
      case 2:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 3:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 5:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 6:
        return ctx.hide(process(depth - 1), event_set());
      default:
        return ctx.sliding(process(depth - 1), process(depth - 1));
    }
  }
};

std::vector<std::string> rendered(const Context& ctx,
                                  const std::vector<EventId>& trace) {
  std::vector<std::string> out;
  out.reserve(trace.size());
  for (EventId e : trace) out.push_back(ctx.event_name(e));
  return out;
}

class OracleProps : public ::testing::TestWithParam<unsigned> {};

TEST_P(OracleProps, AcceptsEveryTraceOfItsOwnTerm) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  const TraceOracle oracle = compile_oracle(
      ctx, "self", p, EventSet(gen.alphabet), /*strict=*/true);
  for (const auto& t : enumerate_traces(ctx, p, 5)) {
    if (std::find(t.begin(), t.end(), TICK) != t.end()) continue;
    const OracleVerdict v = oracle.judge(rendered(ctx, t));
    EXPECT_TRUE(v.accepted)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t)
        << " rejected at #" << v.divergence_index << ": " << v.reason;
  }
}

TEST_P(OracleProps, MutationVerdictMatchesIsTraceOf) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  const TraceOracle oracle = compile_oracle(
      ctx, "self", p, EventSet(gen.alphabet), /*strict=*/true);
  const auto traces = enumerate_traces(ctx, p, 4);
  std::size_t done = 0;
  for (const auto& t : traces) {
    if (t.empty() ||
        std::find(t.begin(), t.end(), TICK) != t.end()) {
      continue;
    }
    if (++done > 24) break;
    std::vector<EventId> mutant = t;
    const std::size_t pos = std::uniform_int_distribution<std::size_t>(
        0, mutant.size() - 1)(gen.rng);
    mutant[pos] = gen.event();

    const TraceMembership ref = is_trace_of(ctx, p, mutant);
    const OracleVerdict v = oracle.judge(rendered(ctx, mutant));
    EXPECT_EQ(ref.member, v.accepted)
        << "seed=" << GetParam() << " mutant=" << format_trace(ctx, mutant);
    if (!ref.member && !v.accepted) {
      EXPECT_EQ(v.divergence_index, ref.accepted_prefix)
          << "seed=" << GetParam() << " mutant=" << format_trace(ctx, mutant);
      EXPECT_EQ(v.event, ctx.event_name(mutant[v.divergence_index]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProps, ::testing::Range(0u, 16u));

// --- directed unit tests ----------------------------------------------------

TraceOracle toy_oracle() {
  TraceOracle o;
  o.name = "toy";
  o.alphabet = {"x", "y"};
  o.automaton.add_edge(0, "x", 1);
  o.automaton.add_edge(1, "y", 0);
  o.automaton.sort_edges();
  return o;
}

TEST(Oracle, EmptyTraceAccepted) {
  EXPECT_TRUE(toy_oracle().judge({}).accepted);
}

TEST(Oracle, IgnoredEventsAreInvisible) {
  TraceOracle o = toy_oracle();
  o.strict = true;
  o.ignored = {"noise"};
  EXPECT_TRUE(o.judge({"x", "noise", "y", "noise"}).accepted);
}

TEST(Oracle, LenientOracleSkipsForeignEvents) {
  const OracleVerdict v = toy_oracle().judge({"x", "foreign", "y"});
  EXPECT_TRUE(v.accepted);
}

TEST(Oracle, StrictOracleRejectsForeignEvents) {
  TraceOracle o = toy_oracle();
  o.strict = true;
  const OracleVerdict v = o.judge({"x", "foreign", "y"});
  ASSERT_FALSE(v.accepted);
  EXPECT_EQ(v.divergence_index, 1u);
  EXPECT_EQ(v.event, "foreign");
  EXPECT_EQ(v.reason, "event outside the oracle alphabet");
}

TEST(Oracle, RejectionReportsWhatTheSpecOffered) {
  const OracleVerdict v = toy_oracle().judge({"x", "x"});
  ASSERT_FALSE(v.accepted);
  EXPECT_EQ(v.divergence_index, 1u);
  EXPECT_EQ(v.event, "x");
  EXPECT_EQ(v.offered, std::vector<std::string>{"y"});
  EXPECT_EQ(v.reason, "spec offers no such event here");
}

TEST(Oracle, AlphabetEventTheSpecNeverAllowsRejects) {
  // "y" is in the alphabet but state 0 has no y-edge: an alphabet event
  // must match an edge, never be skipped.
  const OracleVerdict v = toy_oracle().judge({"y"});
  ASSERT_FALSE(v.accepted);
  EXPECT_EQ(v.divergence_index, 0u);
}

// --- resumable cursors (the offline replay contract) -------------------------

std::vector<std::string> seeded_ota_trace(std::uint64_t seed,
                                          std::size_t len) {
  static const std::vector<std::string> vocab = {
      "send.SwInventoryReq", "rec.SwReport", "send.UpdApplyReq",
      "send.UpdApplyReqBad", "rec.UpdReport", "foreign.Noise"};
  std::vector<std::string> out;
  out.reserve(len);
  std::uint64_t rng = seed;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(vocab[conform::splitmix64(rng) % vocab.size()]);
  }
  return out;
}

TEST(OracleCursor, SplitAtEveryIndexEqualsOneShot) {
  // Judging [0, k) then resuming [k, n) must reproduce one-shot judge()
  // exactly, for every split point k — the invariant that makes chunked
  // replay sweeps verdict-preserving at any chunk geometry.
  for (conform::TraceOracle& oracle : conform::ota_requirement_oracles()) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto events = seeded_ota_trace(seed * 977, 40);
      const OracleVerdict want = oracle.judge(events);
      for (std::size_t k = 0; k <= events.size(); ++k) {
        conform::OracleCursor cur = oracle.start();
        OracleVerdict got = oracle.judge_resume(cur, events, k);
        if (got.accepted) {
          EXPECT_EQ(cur.next, k);
          got = oracle.judge_resume(cur, events);
        }
        ASSERT_EQ(got.accepted, want.accepted)
            << oracle.name << " seed " << seed << " split " << k;
        if (!want.accepted) {
          EXPECT_EQ(got.divergence_index, want.divergence_index);
          EXPECT_EQ(got.event, want.event);
          EXPECT_EQ(got.reason, want.reason);
          EXPECT_EQ(got.offered, want.offered);
          // The cursor parks AT the offending event with the node intact.
          EXPECT_EQ(cur.next, want.divergence_index);
        }
      }
    }
  }
}

TEST(OracleCursor, RejectionLeavesCursorAtOffendingEvent) {
  const TraceOracle o = toy_oracle();
  conform::OracleCursor cur = o.start();
  const OracleVerdict v = o.judge_resume(cur, {"x", "x", "y"});
  ASSERT_FALSE(v.accepted);
  EXPECT_EQ(cur.next, 1u);
  EXPECT_EQ(cur.node, 1u);  // node unchanged by the rejected event

  // Skip-and-continue: stepping over the offender resumes cleanly, and the
  // remainder ("y" from node 1) is accepted.
  ++cur.next;
  EXPECT_TRUE(o.judge_resume(cur, {"x", "x", "y"}).accepted);
  EXPECT_EQ(cur.next, 3u);
  EXPECT_EQ(cur.node, 0u);
}

TEST(OracleSession, SteppedWalkEqualsOneShotJudge) {
  // The learner-facing session: stepping a trace one event at a time must
  // reproduce judge() byte for byte — same verdict, divergence index,
  // event, offered set and reason — and stay sticky-dead after rejection.
  for (conform::TraceOracle& oracle : conform::ota_requirement_oracles()) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto events = seeded_ota_trace(seed * 1409, 40);
      const OracleVerdict want = oracle.judge(events);
      conform::OracleSession session(oracle);
      bool alive = true;
      for (const std::string& e : events) alive = session.step(e);
      ASSERT_EQ(session.alive(), want.accepted)
          << oracle.name << " seed " << seed;
      EXPECT_EQ(alive, want.accepted);
      EXPECT_EQ(session.cursor().next, events.size());
      if (!want.accepted) {
        const OracleVerdict& got = session.verdict();
        EXPECT_EQ(got.divergence_index, want.divergence_index);
        EXPECT_EQ(got.event, want.event);
        EXPECT_EQ(got.offered, want.offered);
        EXPECT_EQ(got.reason, want.reason);
        // The node does not advance on refusal, so the session's offered
        // set is still the divergence-point offer.
        EXPECT_EQ(session.offered(), want.offered);
      }
      // reset() rewinds to a fresh session.
      session.reset();
      EXPECT_TRUE(session.alive());
      EXPECT_EQ(session.cursor(), oracle.start());
    }
  }
}

TEST(OracleSession, OfferedSetTracksCurrentNode) {
  const TraceOracle o = toy_oracle();
  conform::OracleSession s(o);
  EXPECT_EQ(s.offered(), std::vector<std::string>{"x"});
  EXPECT_TRUE(s.step("x"));
  EXPECT_EQ(s.offered(), std::vector<std::string>{"y"});
  EXPECT_TRUE(s.step("y"));
  EXPECT_EQ(s.offered(), std::vector<std::string>{"x"});
  // Refusal: offered set freezes at the divergence node.
  EXPECT_FALSE(s.step("y"));
  EXPECT_FALSE(s.alive());
  EXPECT_EQ(s.offered(), std::vector<std::string>{"x"});
  // Sticky: even an event the node would accept cannot revive the session.
  EXPECT_FALSE(s.step("x"));
}

TEST(OracleCursor, SkipAndContinueEnumeratesEveryDivergence) {
  // A trace with three spurious UpdReports: repeated judge/skip cycles
  // surface each one, in order, against R04's counting automaton.
  const std::vector<std::string> events = {
      "rec.UpdReport",                      // 0: nothing outstanding
      "send.UpdApplyReq", "rec.UpdReport",  // 1, 2: a legitimate pair
      "rec.UpdReport",                      // 3: spurious again
      "send.UpdApplyReq", "rec.UpdReport",  // 4, 5: legitimate
      "rec.UpdReport",                      // 6: spurious
  };
  conform::TraceOracle r04 = conform::requirement_oracle("R04");
  std::vector<std::size_t> indices;
  conform::OracleCursor cur = r04.start();
  for (;;) {
    const OracleVerdict v = r04.judge_resume(cur, events);
    if (v.accepted) break;
    indices.push_back(v.divergence_index);
    ++cur.next;
  }
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 3, 6}));
}

}  // namespace
}  // namespace ecucsp
