#include <gtest/gtest.h>

#include "can/asc.hpp"
#include "can/bus.hpp"
#include "can/dbc.hpp"
#include "can/frame.hpp"
#include "can/signal.hpp"

namespace ecucsp::can {
namespace {

// --- frames -----------------------------------------------------------------

TEST(CanFrame, ByteAccessorsAreBoundsSafe) {
  CanFrame f;
  f.set_byte(0, 0xAB);
  f.set_byte(7, 0xCD);
  f.set_byte(12, 0xFF);  // ignored
  EXPECT_EQ(f.byte(0), 0xAB);
  EXPECT_EQ(f.byte(7), 0xCD);
  EXPECT_EQ(f.byte(12), 0);
}

TEST(CanFrame, ArbitrationLowerIdWins) {
  CanFrame hi;
  hi.id = 0x100;
  CanFrame lo;
  lo.id = 0x0FF;
  EXPECT_TRUE(lo.wins_arbitration_over(hi));
  EXPECT_FALSE(hi.wins_arbitration_over(lo));
}

TEST(CanFrame, StandardBeatsExtendedAtSameId) {
  CanFrame std_frame;
  std_frame.id = 0x100;
  CanFrame ext_frame;
  ext_frame.id = 0x100;
  ext_frame.extended = true;
  EXPECT_TRUE(std_frame.wins_arbitration_over(ext_frame));
}

TEST(CanFrame, ToStringShowsIdDlcAndPayload) {
  CanFrame f;
  f.id = 0x1A0;
  f.dlc = 2;
  f.set_byte(0, 0x01);
  f.set_byte(1, 0xFE);
  EXPECT_EQ(f.to_string(), "0x1A0 [2] 01 FE");
}

// --- signal codec ------------------------------------------------------------

TEST(Signal, IntelRoundTrip) {
  SignalSpec spec;
  spec.name = "speed";
  spec.start_bit = 8;
  spec.length = 12;
  spec.byte_order = ByteOrder::Intel;
  std::array<std::uint8_t, 8> data{};
  encode_raw(data, spec, 0xABC);
  EXPECT_EQ(decode_raw(data, spec), 0xABCu);
  // Bits outside the signal untouched.
  EXPECT_EQ(data[0], 0);
}

TEST(Signal, MotorolaRoundTrip) {
  SignalSpec spec;
  spec.name = "rpm";
  spec.start_bit = 7;  // MSB of byte 0
  spec.length = 16;
  spec.byte_order = ByteOrder::Motorola;
  std::array<std::uint8_t, 8> data{};
  encode_raw(data, spec, 0x1234);
  EXPECT_EQ(decode_raw(data, spec), 0x1234u);
  EXPECT_EQ(data[0], 0x12);
  EXPECT_EQ(data[1], 0x34);
}

TEST(Signal, PhysicalScaling) {
  SignalSpec spec;
  spec.name = "temp";
  spec.start_bit = 0;
  spec.length = 8;
  spec.factor = 0.5;
  spec.offset = -40.0;
  std::array<std::uint8_t, 8> data{};
  encode_physical(data, spec, 25.0);  // raw = (25+40)/0.5 = 130
  EXPECT_EQ(decode_raw(data, spec), 130u);
  EXPECT_DOUBLE_EQ(decode_physical(data, spec), 25.0);
}

TEST(Signal, SignedDecodingSignExtends) {
  SignalSpec spec;
  spec.name = "delta";
  spec.start_bit = 0;
  spec.length = 8;
  spec.is_signed = true;
  std::array<std::uint8_t, 8> data{};
  encode_physical(data, spec, -5.0);
  EXPECT_DOUBLE_EQ(decode_physical(data, spec), -5.0);
}

TEST(Signal, EncodeMasksOverlongValues) {
  SignalSpec spec;
  spec.name = "nibble";
  spec.start_bit = 0;
  spec.length = 4;
  std::array<std::uint8_t, 8> data{};
  encode_raw(data, spec, 0xFF);
  EXPECT_EQ(decode_raw(data, spec), 0xFu);
}

TEST(Signal, OutOfPayloadThrows) {
  SignalSpec spec;
  spec.name = "bad";
  spec.start_bit = 60;
  spec.length = 8;
  std::array<std::uint8_t, 8> data{};
  EXPECT_THROW(decode_raw(data, spec), std::out_of_range);
}

TEST(Signal, ZeroLengthRejected) {
  SignalSpec spec;
  spec.length = 0;
  std::array<std::uint8_t, 8> data{};
  EXPECT_THROW(decode_raw(data, spec), std::invalid_argument);
}

class SignalSweep : public ::testing::TestWithParam<int> {};

TEST_P(SignalSweep, RoundTripAtEveryStartBitIntel) {
  SignalSpec spec;
  spec.name = "s";
  spec.start_bit = static_cast<std::uint16_t>(GetParam());
  spec.length = 8;
  spec.byte_order = ByteOrder::Intel;
  std::array<std::uint8_t, 8> data{};
  for (std::uint64_t v : {0ULL, 1ULL, 0x55ULL, 0xAAULL, 0xFFULL}) {
    encode_raw(data, spec, v);
    EXPECT_EQ(decode_raw(data, spec), v) << "start=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(StartBits, SignalSweep, ::testing::Range(0, 57));

// --- dbc parsing --------------------------------------------------------------

constexpr const char* kDemoDbc = R"(VERSION "1.0"

BU_: VMG TargetECU

BO_ 256 SwInventoryReq: 2 VMG
 SG_ ReqType : 0|8@1+ (1,0) [0|255] "" TargetECU
 SG_ SessionId : 8|8@1+ (1,0) [0|255] "" TargetECU

BO_ 257 SwReport: 4 TargetECU
 SG_ Status : 0|8@1+ (1,0) [0|3] "" VMG
 SG_ SwVersion : 8|16@1+ (1,0) [0|65535] "" VMG

VAL_ 257 Status 0 "ok" 1 "updating" 2 "failed" ;
CM_ BO_ 257 "Software diagnosis report";
CM_ SG_ 257 Status "Result of software diagnosis";
)";

TEST(Dbc, ParsesVersionNodesAndMessages) {
  const DbcDatabase db = parse_dbc(kDemoDbc);
  EXPECT_EQ(db.version, "1.0");
  EXPECT_EQ(db.nodes, (std::vector<std::string>{"VMG", "TargetECU"}));
  ASSERT_EQ(db.messages.size(), 2u);
  EXPECT_EQ(db.messages[0].name, "SwInventoryReq");
  EXPECT_EQ(db.messages[0].id, 256u);
  EXPECT_EQ(db.messages[0].dlc, 2u);
  EXPECT_EQ(db.messages[0].sender, "VMG");
}

TEST(Dbc, ParsesSignals) {
  const DbcDatabase db = parse_dbc(kDemoDbc);
  const DbcMessage* m = db.find_message("SwReport");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->signals.size(), 2u);
  const DbcSignal* v = m->find_signal("SwVersion");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->spec.start_bit, 8u);
  EXPECT_EQ(v->spec.length, 16u);
  EXPECT_EQ(v->spec.byte_order, ByteOrder::Intel);
  EXPECT_FALSE(v->spec.is_signed);
  EXPECT_EQ(v->receivers, (std::vector<std::string>{"VMG"}));
}

TEST(Dbc, ParsesValueTables) {
  const DbcDatabase db = parse_dbc(kDemoDbc);
  const DbcSignal* s = db.find_message("SwReport")->find_signal("Status");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->value_table.size(), 3u);
  EXPECT_EQ(s->value_table.at(2), "failed");
}

TEST(Dbc, ParsesComments) {
  const DbcDatabase db = parse_dbc(kDemoDbc);
  EXPECT_EQ(db.find_message("SwReport")->comment,
            "Software diagnosis report");
  EXPECT_EQ(db.find_message("SwReport")->find_signal("Status")->comment,
            "Result of software diagnosis");
}

TEST(Dbc, FindByIdAndName) {
  const DbcDatabase db = parse_dbc(kDemoDbc);
  EXPECT_EQ(db.find_message(256u), db.find_message("SwInventoryReq"));
  EXPECT_EQ(db.find_message(999u), nullptr);
  EXPECT_EQ(db.find_message("nope"), nullptr);
}

TEST(Dbc, ExtendedIdBitIsStripped) {
  const DbcDatabase db = parse_dbc(
      "BO_ 2566844672 BigMsg: 8 N\n");  // 0x99000100 with bit31 set
  ASSERT_EQ(db.messages.size(), 1u);
  EXPECT_EQ(db.messages[0].id, 2566844672u & MAX_EXTENDED_ID);
}

TEST(Dbc, SignalOutsideMessageThrows) {
  EXPECT_THROW(parse_dbc("SG_ S : 0|8@1+ (1,0) [0|255] \"\" N\n"),
               DbcParseError);
}

TEST(Dbc, MalformedSignalThrows) {
  EXPECT_THROW(parse_dbc("BO_ 10 M: 8 N\n SG_ S : xx\n"), DbcParseError);
}

TEST(Dbc, UnknownRecordsAreTolerated) {
  const DbcDatabase db = parse_dbc(
      "NS_:\n BA_DEF_\nBS_:\nBO_ 5 M: 8 N\n");
  EXPECT_EQ(db.messages.size(), 1u);
}

TEST(Dbc, SignalCodecIntegration) {
  const DbcDatabase db = parse_dbc(kDemoDbc);
  const DbcSignal* v = db.find_message("SwReport")->find_signal("SwVersion");
  CanFrame f;
  f.id = 257;
  encode_physical(f.data, v->spec, 0x0203);
  EXPECT_EQ(f.byte(1), 0x03);
  EXPECT_EQ(f.byte(2), 0x02);
  EXPECT_DOUBLE_EQ(decode_physical(f.data, v->spec), double(0x0203));
}

// --- bus ------------------------------------------------------------------------

TEST(CanBus, DeliversToAllListeners) {
  CanBus bus;
  int count = 0;
  bus.add_listener([&](const CanFrame&, int) { ++count; });
  bus.add_listener([&](const CanFrame&, int) { ++count; });
  CanFrame f;
  f.id = 0x10;
  bus.transmit(f, 0);
  EXPECT_TRUE(bus.deliver_one(100));
  EXPECT_EQ(count, 2);
}

TEST(CanBus, ArbitrationPicksLowestId) {
  CanBus bus;
  std::vector<CanId> delivered;
  bus.add_listener([&](const CanFrame& f, int) { delivered.push_back(f.id); });
  CanFrame a;
  a.id = 0x300;
  CanFrame b;
  b.id = 0x100;
  CanFrame c;
  c.id = 0x200;
  bus.transmit(a, 0);
  bus.transmit(b, 0);
  bus.transmit(c, 0);
  while (bus.deliver_one(0)) {
  }
  EXPECT_EQ(delivered, (std::vector<CanId>{0x100, 0x200, 0x300}));
}

TEST(CanBus, FifoTiebreakOnEqualIds) {
  CanBus bus;
  std::vector<std::uint8_t> order;
  bus.add_listener([&](const CanFrame& f, int) { order.push_back(f.byte(0)); });
  for (std::uint8_t i = 1; i <= 3; ++i) {
    CanFrame f;
    f.id = 0x55;
    f.set_byte(0, i);
    bus.transmit(f, 0);
  }
  while (bus.deliver_one(0)) {
  }
  EXPECT_EQ(order, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(CanBus, TraceRecordsTimestampedFrames) {
  CanBus bus;
  CanFrame f;
  f.id = 0x42;
  bus.transmit(f, 0);
  bus.deliver_one(12345);
  ASSERT_EQ(bus.trace().size(), 1u);
  EXPECT_EQ(bus.trace()[0].timestamp_us, 12345u);
}

TEST(CanBus, IdleWhenDrained) {
  CanBus bus;
  EXPECT_TRUE(bus.idle());
  CanFrame f;
  bus.transmit(f, 0);
  EXPECT_FALSE(bus.idle());
  bus.deliver_one(0);
  EXPECT_TRUE(bus.idle());
}


// --- ASC measurement logs ------------------------------------------------------

TEST(Asc, WritesHeaderAndRecords) {
  CanFrame f;
  f.id = 0x1A0;
  f.dlc = 2;
  f.set_byte(0, 0xAB);
  f.set_byte(1, 0x01);
  f.timestamp_us = 1230;
  const std::string log = write_asc({f});
  EXPECT_NE(log.find("base hex"), std::string::npos);
  EXPECT_NE(log.find("Begin TriggerBlock"), std::string::npos);
  EXPECT_NE(log.find("0.001230"), std::string::npos);
  EXPECT_NE(log.find("1A0"), std::string::npos);
  EXPECT_NE(log.find("AB 01"), std::string::npos);
}

TEST(Asc, RoundTripsFrames) {
  std::vector<CanFrame> frames;
  for (int i = 0; i < 5; ++i) {
    CanFrame f;
    f.id = static_cast<CanId>(0x100 + i);
    f.dlc = static_cast<std::uint8_t>(i);
    for (int b = 0; b < i; ++b) f.set_byte(b, static_cast<std::uint8_t>(b * 3));
    f.timestamp_us = static_cast<std::uint64_t>(i) * 100;
    frames.push_back(f);
  }
  const std::vector<CanFrame> back = parse_asc(write_asc(frames));
  ASSERT_EQ(back.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(back[i].id, frames[i].id);
    EXPECT_EQ(back[i].dlc, frames[i].dlc);
    EXPECT_EQ(back[i].data, frames[i].data);
    EXPECT_EQ(back[i].timestamp_us, frames[i].timestamp_us);
  }
}

TEST(Asc, ExtendedIdsKeepTheSuffix) {
  CanFrame f;
  f.id = 0x18DAF110;
  f.extended = true;
  f.dlc = 0;
  const std::string log = write_asc({f});
  EXPECT_NE(log.find("18DAF110x"), std::string::npos);
  const auto back = parse_asc(log);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].extended);
  EXPECT_EQ(back[0].id, 0x18DAF110u);
}

TEST(Asc, SkipsHeaderLinesAndRejectsGarbageRecords) {
  EXPECT_TRUE(parse_asc("date something\nno frames here\n").empty());
  EXPECT_THROW(parse_asc("   0.1 1 100 Rx d 99 00\n"), AscParseError);
  EXPECT_THROW(parse_asc("   0.1 1 100 Rx d 4 00\n"), AscParseError);
}

}  // namespace
}  // namespace ecucsp::can
