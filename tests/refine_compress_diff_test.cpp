// Differential proof that --compress is unobservable in the verdict.
//
// The compression contract mirrors the --threads one: for any term pair,
// any model and any unary check, verdicts, counterexamples (kind, trace,
// event, acceptance, rendered text) and vacuity flags must be byte-identical
// at none / bisim / diamond / full, at every thread count — only wall clock
// and exploration stats may change (fewer product states is the point, so
// stats are deliberately NOT compared here). These tests drive seeded
// random CSP term pairs through every check at each (mode, threads)
// configuration and compare against the (none, 1) reference field by field.
//
// Also here:
//   * the cache-coherence property the "compression is not in the cache
//     key" decision rests on: a verdict stored under one mode must hit,
//     with identical payload, under any other — in both directions;
//   * regressions for the reductions' sharp edges: τ-cycles (SCC
//     contraction must keep divergence), bisimilar duplicate branches
//     (quotienting must not perturb the canonical counterexample), and
//     post-tick/Omega terminal classes (bisim must not merge deadlock with
//     successful termination).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "refine/check.hpp"
#include "store/cache.hpp"

namespace ecucsp {
namespace {

constexpr Compression kModes[] = {Compression::None, Compression::Bisim,
                                  Compression::Diamond, Compression::Full};
constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

// Same shape as the refine_props_test generator: a seeded PRNG over a
// four-event alphabet, depth-bounded, covering every process constructor.
struct TermGen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;

  TermGen(Context& c, unsigned seed) : ctx(c), rng(seed) {
    for (const char* name : {"a", "b", "c", "d"}) {
      alphabet.push_back(ctx.event(ctx.channel(name)));
    }
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  ProcessRef process(int depth) {
    const int max_pick = depth <= 0 ? 2 : 10;
    switch (std::uniform_int_distribution<int>(0, max_pick)(rng)) {
      case 0:
        return ctx.stop();
      case 1:
        return ctx.prefix(event(),
                          depth <= 0 ? ctx.stop() : process(depth - 1));
      case 2:
        return ctx.skip();
      case 3:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 5:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 6:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 7:
        return ctx.hide(process(depth - 1), event_set());
      case 8: {
        const EventId from = event();
        const EventId to = event();
        return ctx.rename(process(depth - 1), {{from, to}});
      }
      case 9:
        return ctx.sliding(process(depth - 1), process(depth - 1));
      default:
        return ctx.seq(process(depth - 1), process(depth - 1));
    }
  }
};

/// The compression-invariant surface of a result: everything except the
/// exploration stats (which legitimately shrink on a compressed PASS).
void expect_same_verdict(const Context& ctx, const CheckResult& ref,
                         const CheckResult& got, const std::string& where) {
  EXPECT_EQ(ref.passed, got.passed) << where;
  EXPECT_EQ(ref.vacuous, got.vacuous) << where;
  ASSERT_EQ(ref.counterexample.has_value(), got.counterexample.has_value())
      << where;
  if (ref.counterexample) {
    const Counterexample& r = *ref.counterexample;
    const Counterexample& g = *got.counterexample;
    EXPECT_EQ(r.kind, g.kind) << where;
    EXPECT_EQ(r.trace, g.trace) << where;
    EXPECT_EQ(r.event, g.event) << where;
    EXPECT_EQ(r.impl_acceptance, g.impl_acceptance) << where;
    EXPECT_EQ(r.describe(ctx), g.describe(ctx)) << where;
    // A violation is replayed on the uncompressed machines, so failing runs
    // are byte-identical in the stats too.
    EXPECT_EQ(ref.stats.impl_states, got.stats.impl_states) << where;
    EXPECT_EQ(ref.stats.impl_transitions, got.stats.impl_transitions) << where;
    EXPECT_EQ(ref.stats.product_states, got.stats.product_states) << where;
  }
}

class CompressDiff : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompressDiff, RefinementIdenticalAtEveryModeAndThreadCount) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < 2; ++i) {
    const ProcessRef spec = gen.process(3);
    const ProcessRef impl = gen.process(3);
    for (const Model m :
         {Model::Traces, Model::Failures, Model::FailuresDivergences}) {
      const CheckResult ref = check_refinement(ctx, spec, impl, m, 1u << 22,
                                               nullptr, 1, Compression::None);
      for (const Compression mode : kModes) {
        for (const unsigned t : kThreadCounts) {
          const CheckResult got =
              check_refinement(ctx, spec, impl, m, 1u << 22, nullptr, t, mode);
          expect_same_verdict(
              ctx, ref, got,
              "seed=" + std::to_string(GetParam()) +
                  " term=" + std::to_string(i) + " model=" + to_string(m) +
                  " mode=" + std::string(to_string(mode)) +
                  " threads=" + std::to_string(t));
        }
      }
    }
  }
}

TEST_P(CompressDiff, UnaryChecksIdenticalAtEveryModeAndThreadCount) {
  Context ctx;
  TermGen gen(ctx, GetParam() + 5000);
  for (int i = 0; i < 2; ++i) {
    const ProcessRef p = gen.process(3);
    const auto run = [&](Compression mode, unsigned t) {
      return std::vector<CheckResult>{
          check_deadlock_free(ctx, p, 1u << 22, nullptr, t, mode),
          check_divergence_free(ctx, p, 1u << 22, nullptr, t, mode),
          check_deterministic(ctx, p, 1u << 22, nullptr, t, mode)};
    };
    const std::vector<CheckResult> ref = run(Compression::None, 1);
    for (const Compression mode : kModes) {
      for (const unsigned t : kThreadCounts) {
        const std::vector<CheckResult> got = run(mode, t);
        for (std::size_t k = 0; k < ref.size(); ++k) {
          expect_same_verdict(
              ctx, ref[k], got[k],
              "seed=" + std::to_string(GetParam()) +
                  " term=" + std::to_string(i) + " check=" + std::to_string(k) +
                  " mode=" + std::string(to_string(mode)) +
                  " threads=" + std::to_string(t));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressDiff, ::testing::Range(0u, 8u));

// --- cache coherence across compression levels ------------------------------

TEST(CompressCache, VerdictStoredUnderOneModeHitsUnderEveryOther) {
  // The PR 2 cache digests deliberately exclude the compression mode (like
  // the thread count): the fail-replay contract makes verdicts
  // configuration-invariant, so a hit from a differently-compressed run
  // must be indistinguishable from a recomputation. Exercise both
  // directions: store at none / hit at full, and store at full / hit at
  // none — for a passing, a failing and a vacuous check.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  struct Case {
    const char* name;
    ProcessRef spec;
    ProcessRef impl;
  };
  const std::vector<Case> cases = {
      {"pass", ctx.prefix(a, ctx.prefix(b, ctx.stop())),
       ctx.prefix(a, ctx.prefix(b, ctx.stop()))},
      {"fail", ctx.prefix(a, ctx.stop()),
       ctx.prefix(a, ctx.prefix(b, ctx.stop()))},
      {"vacuous", ctx.prefix(a, ctx.stop()), ctx.stop()},
  };

  for (const auto& [first, second] :
       {std::pair{Compression::None, Compression::Full},
        std::pair{Compression::Full, Compression::None}}) {
    for (const Case& c : cases) {
      store::VerificationCache cache(std::nullopt);  // memory tier only
      const ScopedCheckCache installed(&cache);
      const CheckResult stored = check_refinement(
          ctx, c.spec, c.impl, Model::Failures, 1u << 22, nullptr, 1, first);
      EXPECT_FALSE(stored.from_cache);
      const CheckResult hit = check_refinement(
          ctx, c.spec, c.impl, Model::Failures, 1u << 22, nullptr, 1, second);
      const std::string where = std::string(c.name) + " " +
                                std::string(to_string(first)) + "->" +
                                std::string(to_string(second));
      EXPECT_TRUE(hit.from_cache) << where;
      EXPECT_EQ(stored.passed, hit.passed) << where;
      EXPECT_EQ(stored.vacuous, hit.vacuous) << where;
      ASSERT_EQ(stored.counterexample.has_value(),
                hit.counterexample.has_value())
          << where;
      if (stored.counterexample) {
        EXPECT_EQ(stored.counterexample->describe(ctx),
                  hit.counterexample->describe(ctx))
            << where;
      }
    }
  }
}

// --- reduction sharp-edge regressions ---------------------------------------

class CompressRegression : public ::testing::Test {
 protected:
  CompressRegression() {
    a = ctx.event(ctx.channel("a"));
    b = ctx.event(ctx.channel("b"));
    c = ctx.event(ctx.channel("c"));
  }
  Context ctx;
  EventId a, b, c;
};

TEST_F(CompressRegression, TauCycleDivergenceSurvivesSccContraction) {
  // (a -> T) \ {a} is one big τ-cycle; diamond contracts the SCC to a
  // single state which must keep a τ self-loop, or the divergence check
  // (and the FD model) would silently pass.
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef p = ctx.prefix(b, ctx.hide(ctx.var("T"), EventSet{a}));
  const CheckResult ref = check_divergence_free(ctx, p, 1u << 22, nullptr, 1,
                                                Compression::None);
  ASSERT_FALSE(ref.passed);
  ASSERT_EQ(ref.counterexample->kind, Counterexample::Kind::Divergence);
  for (const Compression mode : kModes) {
    const CheckResult got =
        check_divergence_free(ctx, p, 1u << 22, nullptr, 1, mode);
    ASSERT_FALSE(got.passed) << to_string(mode);
    EXPECT_EQ(got.counterexample->describe(ctx),
              ref.counterexample->describe(ctx))
        << to_string(mode);

    // And the FD refinement that hinges on it.
    const ProcessRef spec = ctx.prefix(b, ctx.stop());
    const CheckResult fd =
        check_refinement(ctx, spec, p, Model::FailuresDivergences, 1u << 22,
                         nullptr, 1, mode);
    ASSERT_FALSE(fd.passed) << to_string(mode);
    EXPECT_EQ(fd.counterexample->kind,
              Counterexample::Kind::DivergenceViolation)
        << to_string(mode);
  }
}

TEST_F(CompressRegression, QuotientedDuplicateBranchesKeepTheCanonicalCx) {
  // IMPL offers the violating continuation twice through strongly bisimilar
  // branches; bisim merges them. The counterexample must still be the one
  // the uncompressed engine picks (minimal trace <a>, event b) because a
  // compressed FAIL is replayed on the uncompressed machine.
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.prefix(
      a, ctx.ext_choice(ctx.prefix(b, ctx.prefix(c, ctx.stop())),
                        ctx.prefix(b, ctx.prefix(c, ctx.stop()))));
  const CheckResult ref = check_refinement(ctx, spec, impl, Model::Traces,
                                           1u << 22, nullptr, 1,
                                           Compression::None);
  ASSERT_FALSE(ref.passed);
  for (const Compression mode : kModes) {
    for (const unsigned t : kThreadCounts) {
      const CheckResult got = check_refinement(ctx, spec, impl, Model::Traces,
                                               1u << 22, nullptr, t, mode);
      ASSERT_FALSE(got.passed)
          << to_string(mode) << " threads=" << t;
      EXPECT_EQ(got.counterexample->trace, ref.counterexample->trace)
          << to_string(mode) << " threads=" << t;
      EXPECT_EQ(got.counterexample->event, ref.counterexample->event)
          << to_string(mode) << " threads=" << t;
      EXPECT_EQ(got.stats.impl_states, ref.stats.impl_states)
          << to_string(mode) << " threads=" << t;
    }
  }
}

TEST_F(CompressRegression, BisimMustNotMergeDeadlockWithTermination) {
  // STOP and SKIP's Omega state are both transition-less, hence strongly
  // bisimilar by raw signatures — but semantically opposite: one deadlocks,
  // one terminated successfully. The terminal-class partition seed keeps
  // them apart; merging them would turn this deadlock FAIL into a PASS.
  const ProcessRef p =
      ctx.int_choice(ctx.skip(), ctx.prefix(a, ctx.stop()));
  const CheckResult ref =
      check_deadlock_free(ctx, p, 1u << 22, nullptr, 1, Compression::None);
  ASSERT_FALSE(ref.passed);
  for (const Compression mode : kModes) {
    const CheckResult got =
        check_deadlock_free(ctx, p, 1u << 22, nullptr, 1, mode);
    ASSERT_FALSE(got.passed) << to_string(mode);
    EXPECT_EQ(got.counterexample->describe(ctx),
              ref.counterexample->describe(ctx))
        << to_string(mode);
  }
}

TEST_F(CompressRegression, ConfluencePruningKeepsFailuresSemantics) {
  // (a -> STOP) |~| (a -> STOP [] b -> STOP): the initial τ choice is NOT
  // strongly confluent (the two branches differ in refusals), so diamond
  // must not prioritise it — doing so would lose the {a}-only acceptance
  // and flip this Failures check.
  const ProcessRef spec = ctx.int_choice(
      ctx.prefix(a, ctx.stop()),
      ctx.ext_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop())));
  const ProcessRef impl_ok = ctx.prefix(a, ctx.stop());
  const ProcessRef impl_bad = ctx.prefix(b, ctx.stop());
  for (const Compression mode : kModes) {
    EXPECT_TRUE(check_refinement(ctx, spec, impl_ok, Model::Failures, 1u << 22,
                                 nullptr, 1, mode)
                    .passed)
        << to_string(mode);
    const CheckResult bad = check_refinement(ctx, spec, impl_bad,
                                             Model::Failures, 1u << 22,
                                             nullptr, 1, mode);
    ASSERT_FALSE(bad.passed) << to_string(mode);
    EXPECT_EQ(bad.counterexample->kind,
              Counterexample::Kind::AcceptanceViolation)
        << to_string(mode);
  }
}

TEST_F(CompressRegression, AmbientCompressionIsPickedUpAndRestored) {
  // Compression::Ambient defers to the scoped setting, mirroring threads=0.
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const CheckResult ref = check_refinement(ctx, spec, impl, Model::Traces,
                                           1u << 22, nullptr, 1,
                                           Compression::None);
  {
    const ScopedCheckCompression ambient(Compression::Full);
    EXPECT_EQ(check_compression(), Compression::Full);
    const CheckResult got =
        check_refinement(ctx, spec, impl, Model::Traces);  // Ambient
    expect_same_verdict(ctx, ref, got, "ambient=full");
  }
  EXPECT_EQ(check_compression(), Compression::None);  // restored
}

}  // namespace
}  // namespace ecucsp
