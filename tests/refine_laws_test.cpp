// Property-based tests: the algebraic laws of CSP, checked on randomly
// generated finite process terms via the refinement engine itself.
//
// Each law is verified as semantic equivalence (mutual refinement) in the
// model where it is valid. The generator is seeded, so failures reproduce.
#include <gtest/gtest.h>

#include <random>

#include "refine/check.hpp"

namespace ecucsp {
namespace {

struct Gen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;

  explicit Gen(Context& c, unsigned seed) : ctx(c), rng(seed) {
    alphabet = {ctx.event(ctx.channel("a")), ctx.event(ctx.channel("b")),
                ctx.event(ctx.channel("c"))};
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  /// A random closed finite process of bounded depth.
  ProcessRef process(int depth) {
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 2 : 11);
    switch (pick(rng)) {
      case 10:
        return ctx.interrupt(process(depth - 1), process(depth - 1));
      case 11:
        return ctx.sliding(process(depth - 1), process(depth - 1));
      case 0:
        return ctx.stop();
      case 1:
        return ctx.skip();
      case 2:
        return ctx.prefix(event(), depth <= 0 ? ctx.stop() : process(depth - 1));
      case 3:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 5:
        return ctx.seq(process(depth - 1), process(depth - 1));
      case 6:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 7:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 8:
        return ctx.hide(process(depth - 1), event_set());
      default: {
        const EventId from = event();
        const EventId to = event();
        return ctx.rename(process(depth - 1), {{from, to}});
      }
    }
  }
};

bool equivalent(Context& ctx, ProcessRef p, ProcessRef q, Model m) {
  return check_refinement(ctx, p, q, m).passed &&
         check_refinement(ctx, q, p, m).passed;
}

class CspLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(CspLaws, RefinementIsReflexiveInAllModels) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  for (Model m : {Model::Traces, Model::Failures, Model::FailuresDivergences}) {
    EXPECT_TRUE(check_refinement(ctx, p, p, m).passed)
        << "seed=" << GetParam() << " model=" << to_string(m);
  }
}

TEST_P(CspLaws, ExternalChoiceIsCommutativeAndAssociative) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  const ProcessRef r = gen.process(2);
  EXPECT_TRUE(equivalent(ctx, ctx.ext_choice(p, q), ctx.ext_choice(q, p),
                         Model::Failures));
  EXPECT_TRUE(equivalent(ctx, ctx.ext_choice(ctx.ext_choice(p, q), r),
                         ctx.ext_choice(p, ctx.ext_choice(q, r)),
                         Model::Failures));
}

TEST_P(CspLaws, InternalChoiceIsCommutativeAndIdempotent) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  EXPECT_TRUE(equivalent(ctx, ctx.int_choice(p, q), ctx.int_choice(q, p),
                         Model::Failures));
  EXPECT_TRUE(equivalent(ctx, ctx.int_choice(p, p), p, Model::Failures));
}

TEST_P(CspLaws, ExternalChoiceUnitIsStop) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  EXPECT_TRUE(equivalent(ctx, ctx.ext_choice(p, ctx.stop()), p, Model::Failures));
}

TEST_P(CspLaws, ChoicesAgreeInTracesModel) {
  // In the traces model, internal and external choice are indistinguishable.
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  EXPECT_TRUE(equivalent(ctx, ctx.ext_choice(p, q), ctx.int_choice(p, q),
                         Model::Traces));
}

TEST_P(CspLaws, SkipIsLeftUnitOfSequencing) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  EXPECT_TRUE(equivalent(ctx, ctx.seq(ctx.skip(), p), p, Model::Failures));
}

TEST_P(CspLaws, SkipIsRightUnitOfSequencingForTraces) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  EXPECT_TRUE(equivalent(ctx, ctx.seq(p, ctx.skip()), p, Model::Traces));
}

TEST_P(CspLaws, StopIsLeftZeroOfSequencing) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  EXPECT_TRUE(
      equivalent(ctx, ctx.seq(ctx.stop(), p), ctx.stop(), Model::Failures));
}

TEST_P(CspLaws, ParallelIsCommutative) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  const EventSet sync = gen.event_set();
  EXPECT_TRUE(equivalent(ctx, ctx.par(p, sync, q), ctx.par(q, sync, p),
                         Model::Failures));
}

TEST_P(CspLaws, InterleaveWithSkipIsIdentityForTraces) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  EXPECT_TRUE(
      equivalent(ctx, ctx.interleave(p, ctx.skip()), p, Model::Traces));
}

TEST_P(CspLaws, FullSynchronyWithRunIsIdentityForTraces) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const EventSet sigma = EventSet(gen.alphabet);
  const ProcessRef p = gen.process(3);
  // P [|Sigma|] RUN(Sigma) =T P, except termination: RUN never ticks, so
  // compare with tick hidden behind sequencing-free processes only.
  // Use the safer law: traces(P [|Sigma|] RUN) == traces(P) with tick removed;
  // we approximate by checking refinement one way (the composition can do no
  // more than P).
  EXPECT_TRUE(check_refinement(ctx, p, ctx.par(p, sigma, ctx.run(sigma)),
                               Model::Traces)
                  .passed);
}

TEST_P(CspLaws, HidingDistributesOverInternalChoice) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  const EventSet h = gen.event_set();
  EXPECT_TRUE(equivalent(ctx, ctx.hide(ctx.int_choice(p, q), h),
                         ctx.int_choice(ctx.hide(p, h), ctx.hide(q, h)),
                         Model::Failures));
}

TEST_P(CspLaws, HidingEverythingLeavesOnlyTermination) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  const ProcessRef hidden = ctx.hide(p, EventSet(gen.alphabet));
  // traces(P \ Sigma) contains only <> and possibly <tick>: SKIP |~| STOP
  // is the most general such process in the traces model.
  EXPECT_TRUE(check_refinement(ctx, ctx.int_choice(ctx.skip(), ctx.stop()),
                               hidden, Model::Traces)
                  .passed);
}

TEST_P(CspLaws, IdentityRenamingIsNeutral) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  std::vector<RenamePair> identity;
  for (EventId e : gen.alphabet) identity.push_back({e, e});
  EXPECT_TRUE(equivalent(ctx, ctx.rename(p, identity), p, Model::Failures));
}

TEST_P(CspLaws, InterruptByStopIsNeutral) {
  // P /\ STOP = P in both traces and failures: STOP can never take over.
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  EXPECT_TRUE(
      equivalent(ctx, ctx.interrupt(p, ctx.stop()), p, Model::Failures));
}

TEST_P(CspLaws, SlidingFromStopIsItsRightOperand) {
  // STOP [> Q = Q in failures: the only behaviour is the silent slide.
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef q = gen.process(3);
  EXPECT_TRUE(equivalent(ctx, ctx.sliding(ctx.stop(), q), q, Model::Failures));
}

TEST_P(CspLaws, SlidingCoversBothOperandsInTraces) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  const ProcessRef slide = ctx.sliding(p, q);
  EXPECT_TRUE(check_refinement(ctx, slide, p, Model::Traces).passed);
  EXPECT_TRUE(check_refinement(ctx, slide, q, Model::Traces).passed);
}

TEST_P(CspLaws, InterruptCoversItsLeftOperandInTraces) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  EXPECT_TRUE(
      check_refinement(ctx, ctx.interrupt(p, q), p, Model::Traces).passed);
}

TEST_P(CspLaws, TraceRefinementIsTransitiveOnRandomTriples) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  const ProcessRef r = gen.process(2);
  const bool pq = check_refinement(ctx, p, q, Model::Traces).passed;
  const bool qr = check_refinement(ctx, q, r, Model::Traces).passed;
  if (pq && qr) {
    EXPECT_TRUE(check_refinement(ctx, p, r, Model::Traces).passed)
        << "seed=" << GetParam();
  }
}

TEST_P(CspLaws, FailuresRefinementImpliesTraceRefinement) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  if (check_refinement(ctx, p, q, Model::Failures).passed) {
    EXPECT_TRUE(check_refinement(ctx, p, q, Model::Traces).passed)
        << "seed=" << GetParam();
  }
}

TEST_P(CspLaws, DeterministicProcessesAreFailuresEquivalentToThemselves) {
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  if (check_deterministic(ctx, p).passed) {
    EXPECT_TRUE(equivalent(ctx, p, p, Model::FailuresDivergences));
  }
}

TEST_P(CspLaws, EnumeratedTracesMatchRefinementVerdicts) {
  // Cross-validate the two trace engines: if traces(q) ⊆ traces(p) by
  // explicit enumeration (up to a bound beyond both LTS diameters), the
  // refinement check must agree.
  Context ctx;
  Gen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  const auto tp = enumerate_traces(ctx, p, 8);
  const auto tq = enumerate_traces(ctx, q, 8);
  const bool subset = std::includes(tp.begin(), tp.end(), tq.begin(), tq.end());
  const bool refines = check_refinement(ctx, p, q, Model::Traces).passed;
  EXPECT_EQ(subset, refines) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CspLaws, ::testing::Range(0u, 25u));

}  // namespace
}  // namespace ecucsp
