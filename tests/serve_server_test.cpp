// End-to-end daemon contract over a real Unix-domain socket: binary and
// JSON framings answer identically, the /stats surface is live JSON, a
// disconnecting client never takes down the daemon or the shared flight,
// pipelined identical requests coalesce, and request_stop() drains run()
// to a clean exit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace ecucsp;
using namespace ecucsp::serve;

namespace {

constexpr const char* kScript =
    "channel a, b\n"
    "P = a -> b -> P\n"
    "SPEC = a -> b -> SPEC\n"
    "assert SPEC [T= P\n"
    "assert P :[deadlock free [F]]\n";

constexpr const char* kFailingScript =
    "channel a, b\n"
    "P = a -> b -> P\n"
    "SPEC = a -> SPEC\n"
    "assert SPEC [T= P\n";

/// One daemon on a unique socket path, served from a background thread.
class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/ecucsp-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++) + ".sock";
    ServiceOptions sopts;
    sopts.jobs = 2;
    service_ = std::make_unique<VerifyService>(sopts);
    ServerOptions opts;
    opts.unix_path = path_;
    opts.drain_timeout = std::chrono::milliseconds(5000);
    server_ = std::make_unique<Server>(*service_, opts);
    server_->listen();
    thread_ = std::thread([this] { clean_ = server_->run(); });
  }

  void TearDown() override {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
    server_.reset();
    service_.reset();
  }

  CheckRequest request(const char* script, std::uint64_t id,
                       std::uint32_t index = 0) {
    CheckRequest req;
    req.id = id;
    req.assertion_index = index;
    req.sources = {script};
    return req;
  }

  static inline int counter_ = 0;
  std::string path_;
  std::unique_ptr<VerifyService> service_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  bool clean_ = false;
};

TEST_F(ServerFixture, BinaryAndJsonFramingsAnswerIdentically) {
  Client binary = Client::connect_unix(path_);
  const CheckResponse rb = binary.check(request(kScript, 1), /*json=*/false);
  EXPECT_EQ(rb.status, ServeStatus::Passed);
  EXPECT_EQ(rb.id, 1u);
  EXPECT_FALSE(rb.digest_hex.empty());

  Client json = Client::connect_unix(path_);
  const CheckResponse rj = json.check(request(kScript, 2), /*json=*/true);
  EXPECT_EQ(rj.id, 2u);
  // Same request digest, so the deterministic surface matches byte for
  // byte whatever framing or serving path (fresh vs memo) answered.
  EXPECT_EQ(rj.verdict_block(), rb.verdict_block());
}

TEST_F(ServerFixture, FailedCheckCarriesCounterexampleBytes) {
  Client c = Client::connect_unix(path_);
  const CheckResponse r = c.check(request(kFailingScript, 5));
  EXPECT_EQ(r.status, ServeStatus::Failed);
  EXPECT_FALSE(r.counterexample.empty());

  // A second identical request (memo path) returns identical bytes.
  Client c2 = Client::connect_unix(path_);
  const CheckResponse again = c2.check(request(kFailingScript, 6));
  EXPECT_EQ(again.verdict_block(), r.verdict_block());
  EXPECT_EQ(again.counterexample, r.counterexample);
  EXPECT_TRUE(again.from_cache);
}

TEST_F(ServerFixture, StatsSurfaceIsLiveJson) {
  Client c = Client::connect_unix(path_);
  ASSERT_TRUE(c.ping());
  (void)c.check(request(kScript, 1));
  const std::string stats = c.stats();
  EXPECT_NE(stats.find("\"serve_format\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"received\":"), std::string::npos);
  EXPECT_NE(stats.find("\"coalesced\":"), std::string::npos);
  EXPECT_NE(stats.find("\"latency_ms\":"), std::string::npos);
  // The JSON framing serves the same object.
  const std::string stats_json = c.stats(/*json=*/true);
  EXPECT_NE(stats_json.find("\"serve_format\":1"), std::string::npos);
}

TEST_F(ServerFixture, PipelinedIdenticalRequestsCoalesce) {
  // All requests written before any response is read — they overlap inside
  // the daemon and share one flight (or hit the memo once one lands; both
  // paths must agree byte-for-byte).
  Client c = Client::connect_unix(path_);
  constexpr int K = 8;
  for (int i = 1; i <= K; ++i) {
    c.send(encode(request(kScript, i), false));
  }
  std::string block;
  for (int i = 0; i < K; ++i) {
    Msg msg = c.recv();
    ASSERT_EQ(msg.type, MsgType::CheckResponse);
    EXPECT_EQ(msg.response.status, ServeStatus::Passed);
    if (block.empty()) {
      block = msg.response.verdict_block();
    } else {
      EXPECT_EQ(msg.response.verdict_block(), block);
    }
  }
  EXPECT_LT(service_->stats().engine_runs.load(), static_cast<std::uint64_t>(K));
  EXPECT_GE(service_->stats().coalesced.load() +
                service_->stats().memo_hits.load(),
            static_cast<std::uint64_t>(K - 1));
}

TEST_F(ServerFixture, DisconnectedClientNeverTakesDownDaemonOrFlight) {
  {
    // Fire a request and vanish before the verdict can be delivered.
    Client ghost = Client::connect_unix(path_);
    ghost.send(encode(request(kScript, 9), false));
  }  // socket closed here, flight possibly still running

  // The daemon must still answer everyone else, including the same digest.
  Client c = Client::connect_unix(path_);
  const CheckResponse r = c.check(request(kScript, 10));
  EXPECT_EQ(r.status, ServeStatus::Passed);
  ASSERT_TRUE(c.ping());
}

TEST_F(ServerFixture, MalformedStreamClosesOnlyThatConnection) {
  Client bad = Client::connect_unix(path_);
  const std::vector<std::uint8_t> garbage = {0x00, 0xFF, 0x13, 0x37};
  bad.send(garbage);
  EXPECT_THROW((void)bad.recv(), std::runtime_error);  // daemon hung up

  Client good = Client::connect_unix(path_);
  EXPECT_TRUE(good.ping());
}

TEST_F(ServerFixture, RequestStopDrainsCleanly) {
  Client c = Client::connect_unix(path_);
  (void)c.check(request(kScript, 1));
  server_->request_stop();
  thread_.join();
  EXPECT_TRUE(clean_) << "an idle daemon must drain without cancellations";
}

}  // namespace
