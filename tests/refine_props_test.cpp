// Property-based tests, second wave: algebraic laws of CSP checked on
// randomly generated terms, complementing refine_laws_test.cpp with the
// unit/zero/distribution laws and the monotonicity (pre-congruence)
// properties the verify scheduler's determinism argument leans on.
//
// The generator is a small seeded PRNG over a four-event alphabet; every
// assertion message carries the seed so failures reproduce exactly. Each
// law runs across TERMS_PER_SEED terms x 50 seeds = 200 generated terms.
//
// Tick discipline: laws stated over "tick-free" terms (no SKIP, no
// sequencing) are exactly the ones distributed termination would break —
// e.g. P ||| STOP = P fails for P = SKIP because STOP never agrees to
// terminate. The generator has a tick_free mode for those laws.
#include <gtest/gtest.h>

#include <random>

#include "refine/check.hpp"

namespace ecucsp {
namespace {

constexpr int TERMS_PER_SEED = 4;  // x 50 seeds = 200 terms per law

struct TermGen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;
  bool tick_free = false;

  TermGen(Context& c, unsigned seed, bool tick_free_mode = false)
      : ctx(c), rng(seed), tick_free(tick_free_mode) {
    for (const char* name : {"a", "b", "c", "d"}) {
      alphabet.push_back(ctx.event(ctx.channel(name)));
    }
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  ProcessRef process(int depth) {
    // Leaves only at depth 0; SKIP/seq excluded in tick-free mode.
    const int max_pick = depth <= 0 ? (tick_free ? 1 : 2) : (tick_free ? 8 : 10);
    switch (std::uniform_int_distribution<int>(0, max_pick)(rng)) {
      case 0:
        return ctx.stop();
      case 1:
        return ctx.prefix(event(),
                          depth <= 0 ? ctx.stop() : process(depth - 1));
      case 2:
        return tick_free ? ctx.ext_choice(process(depth - 1), process(depth - 1))
                         : ctx.skip();
      case 3:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 5:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 6:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 7:
        return ctx.hide(process(depth - 1), event_set());
      case 8: {
        const EventId from = event();
        const EventId to = event();
        return ctx.rename(process(depth - 1), {{from, to}});
      }
      case 9:
        return ctx.sliding(process(depth - 1), process(depth - 1));
      default:
        return ctx.seq(process(depth - 1), process(depth - 1));
    }
  }
};

bool equiv(Context& ctx, ProcessRef p, ProcessRef q, Model m) {
  return check_refinement(ctx, p, q, m).passed &&
         check_refinement(ctx, q, p, m).passed;
}

class RefineProps : public ::testing::TestWithParam<unsigned> {};

TEST_P(RefineProps, ExternalChoiceIsIdempotent) {
  // P [] P =T P; also =F (both copies resolve identically, so the refusals
  // of the choice are exactly P's).
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(3);
    EXPECT_TRUE(equiv(ctx, ctx.ext_choice(p, p), p, Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
    EXPECT_TRUE(equiv(ctx, ctx.ext_choice(p, p), p, Model::Failures))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, InterleaveUnitIsStopForTickFreeTerms) {
  // P ||| STOP =T P for tick-free P. (With termination the law fails:
  // SKIP ||| STOP cannot tick, so SKIP's <tick> trace disappears.)
  Context ctx;
  TermGen gen(ctx, GetParam(), /*tick_free=*/true);
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(3);
    EXPECT_TRUE(equiv(ctx, ctx.interleave(p, ctx.stop()), p, Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, InterleaveIsCommutative) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    EXPECT_TRUE(
        equiv(ctx, ctx.interleave(p, q), ctx.interleave(q, p), Model::Failures))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, InterleaveIsAssociative) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const ProcessRef r = gen.process(2);
    EXPECT_TRUE(equiv(ctx, ctx.interleave(ctx.interleave(p, q), r),
                      ctx.interleave(p, ctx.interleave(q, r)), Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, ExternalChoiceIsCommutativeInTraces) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    EXPECT_TRUE(
        equiv(ctx, ctx.ext_choice(p, q), ctx.ext_choice(q, p), Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, ExternalChoiceIsAssociativeInTraces) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const ProcessRef r = gen.process(2);
    EXPECT_TRUE(equiv(ctx, ctx.ext_choice(ctx.ext_choice(p, q), r),
                      ctx.ext_choice(p, ctx.ext_choice(q, r)), Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, HidingNothingIsIdentity) {
  // P \ {} = P in every model: no event is renamed to tau.
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(3);
    const ProcessRef hidden = ctx.hide(p, EventSet{});
    EXPECT_TRUE(equiv(ctx, hidden, p, Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
    EXPECT_TRUE(equiv(ctx, hidden, p, Model::Failures))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, HidingComposesAsUnion) {
  // (P \ A) \ B =T P \ (A u B).
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const EventSet a = gen.event_set();
    const EventSet b = gen.event_set();
    EXPECT_TRUE(equiv(ctx, ctx.hide(ctx.hide(p, a), b),
                      ctx.hide(p, a.set_union(b)), Model::Traces))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, PrefixDistributesOverInternalChoice) {
  // a -> (P |~| Q) =F (a -> P) |~| (a -> Q).
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const EventId a = gen.event();
    EXPECT_TRUE(equiv(ctx, ctx.prefix(a, ctx.int_choice(p, q)),
                      ctx.int_choice(ctx.prefix(a, p), ctx.prefix(a, q)),
                      Model::Failures))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, InternalChoiceIsAssociative) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const ProcessRef r = gen.process(2);
    EXPECT_TRUE(equiv(ctx, ctx.int_choice(ctx.int_choice(p, q), r),
                      ctx.int_choice(p, ctx.int_choice(q, r)),
                      Model::Failures))
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, InternalChoiceRefinesBothOperands) {
  // P |~| Q is refined by P and by Q in every model (resolution of the
  // choice), and conversely refines neither unless they are equivalent.
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const ProcessRef both = ctx.int_choice(p, q);
    for (Model m : {Model::Traces, Model::Failures}) {
      EXPECT_TRUE(check_refinement(ctx, both, p, m).passed)
          << "seed=" << GetParam() << " term=" << i << " model=" << to_string(m);
      EXPECT_TRUE(check_refinement(ctx, both, q, m).passed)
          << "seed=" << GetParam() << " term=" << i << " model=" << to_string(m);
    }
  }
}

TEST_P(RefineProps, RunIsTheTopOfTraceRefinement) {
  // TOP = ([] e:Sigma @ e -> TOP) [> SKIP is the top of the traces order:
  // its traces are Sigma* plus every member of Sigma* extended with tick.
  // The recursion matters — plain RUN(Sigma) [> SKIP loses the slide option
  // after the first event (P [> Q continues as P', not P' [> Q), so it
  // misses traces like <a, tick>. (RUN ||| SKIP would not work either:
  // interleaving terminates only when both sides do, and RUN never ticks.)
  Context ctx;
  TermGen gen(ctx, GetParam());
  ctx.define("PROPS_TOP", [&gen](Context& cx, std::span<const Value>) {
    std::vector<ProcessRef> branches;
    for (const EventId e : gen.alphabet) {
      branches.push_back(cx.prefix(e, cx.var("PROPS_TOP")));
    }
    return cx.sliding(cx.ext_choice(branches), cx.skip());
  });
  const ProcessRef top = ctx.var("PROPS_TOP");
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(3);
    EXPECT_TRUE(check_refinement(ctx, top, p, Model::Traces).passed)
        << "seed=" << GetParam() << " term=" << i;
  }
}

TEST_P(RefineProps, ExternalChoiceIsMonotone) {
  // Refinement is a pre-congruence: P [=F Q implies P [] R [=F Q [] R.
  // This is the compositionality fact that lets the batch scheduler check
  // components independently.
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const ProcessRef r = gen.process(2);
    if (check_refinement(ctx, p, q, Model::Failures).passed) {
      EXPECT_TRUE(check_refinement(ctx, ctx.ext_choice(p, r),
                                   ctx.ext_choice(q, r), Model::Failures)
                      .passed)
          << "seed=" << GetParam() << " term=" << i;
    }
  }
}

TEST_P(RefineProps, InterleaveIsMonotoneInTraces) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const ProcessRef r = gen.process(2);
    if (check_refinement(ctx, p, q, Model::Traces).passed) {
      EXPECT_TRUE(check_refinement(ctx, ctx.interleave(p, r),
                                   ctx.interleave(q, r), Model::Traces)
                      .passed)
          << "seed=" << GetParam() << " term=" << i;
    }
  }
}

TEST_P(RefineProps, HidingIsMonotoneInTraces) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < TERMS_PER_SEED; ++i) {
    const ProcessRef p = gen.process(2);
    const ProcessRef q = gen.process(2);
    const EventSet h = gen.event_set();
    if (check_refinement(ctx, p, q, Model::Traces).passed) {
      EXPECT_TRUE(
          check_refinement(ctx, ctx.hide(p, h), ctx.hide(q, h), Model::Traces)
              .passed)
          << "seed=" << GetParam() << " term=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineProps, ::testing::Range(0u, 50u));

// --- regression pins for counterexample extraction corner cases -------------
//
// These pin the empty-trace / immediate-refusal behaviour the property
// suites exercise implicitly: a violation in the very first state must
// produce an empty counterexample trace (not a bogus event), and the
// describe() rendering must stay stable for it.

TEST(CounterexampleCorners, ImmediateTraceViolationHasEmptyTrace) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const CheckResult r = check_refinement(
      ctx, ctx.stop(), ctx.prefix(a, ctx.stop()), Model::Traces);
  ASSERT_FALSE(r.passed);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::TraceViolation);
  EXPECT_TRUE(r.counterexample->trace.empty());
  EXPECT_EQ(r.counterexample->event, a);
  EXPECT_EQ(r.counterexample->describe(ctx),
            "trace violation: after <> the implementation performs 'a', "
            "which the specification forbids");
}

TEST(CounterexampleCorners, ImmediateRefusalHasEmptyTraceAndAcceptance) {
  // Spec insists on offering 'a'; STOP refuses everything at once.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const CheckResult r = check_refinement(ctx, ctx.prefix(a, ctx.stop()),
                                         ctx.stop(), Model::Failures);
  ASSERT_FALSE(r.passed);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::AcceptanceViolation);
  EXPECT_TRUE(r.counterexample->trace.empty());
  EXPECT_TRUE(r.counterexample->impl_acceptance.empty());
}

TEST(CounterexampleCorners, ImmediateDeadlockHasEmptyTrace) {
  Context ctx;
  const CheckResult r = check_deadlock_free(ctx, ctx.stop());
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::Deadlock);
  EXPECT_TRUE(r.counterexample->trace.empty());
}

TEST(CounterexampleCorners, ImmediateDivergenceHasEmptyTrace) {
  // (a -> P) \ {a} diverges from the very first state.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  ctx.define("LOOP_PROPS", [a](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("LOOP_PROPS"));
  });
  const ProcessRef diverging = ctx.hide(ctx.var("LOOP_PROPS"), EventSet{a});
  const CheckResult r = check_divergence_free(ctx, diverging);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::Divergence);
  EXPECT_TRUE(r.counterexample->trace.empty());
}

TEST(CounterexampleCorners, ImmediateNondeterminismHasEmptyTrace) {
  // a -> STOP |~| b -> STOP is unstable-nondeterministic at the root.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const CheckResult r = check_deterministic(
      ctx, ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop())));
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::Nondeterminism);
  EXPECT_TRUE(r.counterexample->trace.empty());
}

}  // namespace
}  // namespace ecucsp
