// Differential property tests pinning the offline replay checker to the
// live TraceOracle semantics: seeded random event traces are rendered to
// synthetic candump logs, replayed offline at every --jobs x --chunk
// combination, and the verdicts, divergence indices and full JSON reports
// must be byte-identical to each other and equal to direct
// TraceOracle::judge / judge_resume runs over the same events. This is the
// tentpole's determinism contract: chunked parallel sweeping is invisible
// in the output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "can/dbc.hpp"
#include "conform/generate.hpp"
#include "conform/harness.hpp"
#include "conform/requirements.hpp"
#include "ota/ota.hpp"
#include "replay/replay.hpp"
#include "replay/synth.hpp"

namespace ecucsp::replay {
namespace {

const std::vector<std::string>& vocab() {
  static const std::vector<std::string> v = {
      "send.SwInventoryReq", "rec.SwReport", "send.UpdApplyReq",
      "send.UpdApplyReqBad", "rec.UpdReport"};
  return v;
}

std::vector<std::string> random_trace(std::uint64_t& rng, std::size_t len) {
  std::vector<std::string> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(vocab()[conform::splitmix64(rng) % vocab().size()]);
  }
  return out;
}

struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& text) {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("replay-diff-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".log");
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  ~TempFile() { std::filesystem::remove(path); }
};

/// The reference multi-divergence walk: judge, record, skip the offending
/// event, resume — the exact discipline the chunked sweep composes.
struct SkipWalk {
  std::vector<std::size_t> indices;
  bool truncated = false;
};

SkipWalk skip_walk(const conform::TraceOracle& oracle,
                   const std::vector<std::string>& events, std::size_t cap) {
  SkipWalk out;
  conform::OracleCursor cur = oracle.start();
  for (;;) {
    const conform::OracleVerdict v = oracle.judge_resume(cur, events);
    if (v.accepted) break;
    if (out.indices.size() < cap) {
      out.indices.push_back(v.divergence_index);
      ++cur.next;  // step over the offending event, node unchanged
    } else {
      out.truncated = true;
      break;
    }
  }
  return out;
}

class ReplayDiffTest : public ::testing::Test {
 protected:
  ReplayDiffTest()
      : db_(can::parse_dbc(ota::ota_dbc_text())),
        codec_(conform::ota_codec(db_)) {}

  ReplayReport replay_file(const std::filesystem::path& log, unsigned jobs,
                           std::size_t chunk, std::size_t max_diverge = 1,
                           std::vector<std::string> specs = {}) {
    ReplayOptions opt;
    opt.logs = {log};
    opt.jobs = jobs;
    opt.chunk = chunk;
    opt.max_diverge = max_diverge;
    opt.specs = std::move(specs);
    return run_replay(opt);
  }

  can::DbcDatabase db_;
  conform::FrameCodec codec_;
};

TEST_F(ReplayDiffTest, OfflineVerdictsMatchDirectOracleAtEveryJobsByChunk) {
  const std::vector<conform::TraceOracle> oracles =
      conform::ota_requirement_oracles();
  const unsigned jobs_grid[] = {1, 2, 4};
  const std::size_t chunk_grid[] = {16, 4096, 0};

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::uint64_t rng = seed;
    const std::size_t len = 20 + conform::splitmix64(rng) % 300;
    const std::vector<std::string> events = random_trace(rng, len);
    const TempFile log(render_candump(codec_, events, "can0", 1'000'000));

    std::string reference_json;
    for (const unsigned jobs : jobs_grid) {
      for (const std::size_t chunk : chunk_grid) {
        const ReplayReport rep = replay_file(log.path, jobs, chunk);
        SCOPED_TRACE("seed " + std::to_string(seed) + " jobs " +
                     std::to_string(jobs) + " chunk " + std::to_string(chunk));

        // The whole rendered report is byte-identical across the grid.
        const std::string json = rep.render_json();
        if (reference_json.empty()) {
          reference_json = json;
        } else {
          ASSERT_EQ(json, reference_json);
        }

        // And it equals the live oracle judging the same event list.
        ASSERT_EQ(rep.events, events.size());
        ASSERT_EQ(rep.oracles.size(), oracles.size());
        for (std::size_t oi = 0; oi < oracles.size(); ++oi) {
          const conform::OracleVerdict want = oracles[oi].judge(events);
          const OracleReport& got = rep.oracles[oi];
          ASSERT_EQ(got.name, oracles[oi].name);
          ASSERT_EQ(got.accepted, want.accepted);
          if (!want.accepted) {
            ASSERT_FALSE(got.divergences.empty());
            EXPECT_EQ(got.divergences[0].event_index, want.divergence_index);
            EXPECT_EQ(got.divergences[0].event, want.event);
            EXPECT_EQ(got.divergences[0].reason, want.reason);
            EXPECT_EQ(got.divergences[0].offered, want.offered);
            // Provenance: the divergent frame is the log line the event
            // came from (one frame per line, one event per frame here).
            EXPECT_EQ(got.divergences[0].frame.line,
                      static_cast<std::uint32_t>(want.divergence_index + 1));
          }
        }
      }
    }
  }
}

TEST_F(ReplayDiffTest, MultiDivergenceMatchesSkipAndContinueReference) {
  const std::vector<conform::TraceOracle> oracles =
      conform::ota_requirement_oracles();
  constexpr std::size_t kCap = 4;

  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    std::uint64_t rng = seed;
    const std::vector<std::string> events = random_trace(rng, 200);
    const TempFile log(render_candump(codec_, events, "can0", 1'000'000));

    std::string reference_json;
    for (const unsigned jobs : {1u, 4u}) {
      for (const std::size_t chunk : {16u, 0u}) {
        const ReplayReport rep = replay_file(log.path, jobs, chunk, kCap);
        SCOPED_TRACE("seed " + std::to_string(seed) + " jobs " +
                     std::to_string(jobs) + " chunk " + std::to_string(chunk));
        const std::string json = rep.render_json();
        if (reference_json.empty()) {
          reference_json = json;
        } else {
          ASSERT_EQ(json, reference_json);
        }
        for (std::size_t oi = 0; oi < oracles.size(); ++oi) {
          const SkipWalk want = skip_walk(oracles[oi], events, kCap);
          const OracleReport& got = rep.oracles[oi];
          ASSERT_EQ(got.divergences.size(), want.indices.size());
          for (std::size_t k = 0; k < want.indices.size(); ++k) {
            EXPECT_EQ(got.divergences[k].event_index, want.indices[k]);
          }
          EXPECT_EQ(got.truncated, want.truncated);
        }
      }
    }
  }
}

TEST_F(ReplayDiffTest, StrictModelOracleMatchesOffline) {
  // One seed through the CAPL-extracted strict model oracle: the offline
  // path must reproduce the live verdict including the strict
  // outside-alphabet semantics.
  const conform::TraceOracle model = conform::ota_model_oracle();
  std::uint64_t rng = 424242;
  const std::vector<std::string> events = random_trace(rng, 60);
  const TempFile log(render_candump(codec_, events, "can0", 1'000'000));

  const conform::OracleVerdict want = model.judge(events);
  std::string reference_json;
  for (const unsigned jobs : {1u, 4u}) {
    const ReplayReport rep = replay_file(log.path, jobs, 16, 1, {"model"});
    const std::string json = rep.render_json();
    if (reference_json.empty()) {
      reference_json = json;
    } else {
      ASSERT_EQ(json, reference_json);
    }
    ASSERT_EQ(rep.oracles.size(), 1u);
    ASSERT_EQ(rep.oracles[0].accepted, want.accepted);
    if (!want.accepted) {
      ASSERT_FALSE(rep.oracles[0].divergences.empty());
      EXPECT_EQ(rep.oracles[0].divergences[0].event_index,
                want.divergence_index);
      EXPECT_EQ(rep.oracles[0].divergences[0].reason, want.reason);
    }
  }
}

TEST_F(ReplayDiffTest, ChunkResumeEqualsOneShotOnLongSynthTraces) {
  // A longer honest + attacked pair through extreme chunkings: the verdict
  // (and the injected index) cannot depend on the chunk geometry.
  SynthOptions sopt;
  sopt.seed = 3;
  sopt.frames = 5000;
  sopt.attack = Attack::Masquerade;
  sopt.attack_at = 2500;
  const SynthLog synth = synthesize_log(codec_, sopt);
  const TempFile log(synth.text);

  std::string reference_json;
  for (const std::size_t chunk : {1u, 7u, 1024u, 0u}) {
    const ReplayReport rep = replay_file(log.path, 4, chunk);
    const std::string json = rep.render_json();
    if (reference_json.empty()) {
      reference_json = json;
    } else {
      ASSERT_EQ(json, reference_json) << "chunk " << chunk;
    }
    EXPECT_FALSE(rep.ok());
    for (const OracleReport& o : rep.oracles) {
      if (o.name == "R04") {
        ASSERT_FALSE(o.divergences.empty());
        EXPECT_EQ(o.divergences[0].event_index, synth.injected_index);
      }
    }
  }
}

}  // namespace
}  // namespace ecucsp::replay
