#include <gtest/gtest.h>

#include "core/value.hpp"

namespace ecucsp {
namespace {

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  const Symbol a = t.intern("reqSw");
  const Symbol b = t.intern("rptSw");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, t.intern("reqSw"));
  EXPECT_EQ(t.name(a), "reqSw");
  EXPECT_EQ(t.name(b), "rptSw");
  EXPECT_EQ(t.size(), 2u);
}

TEST(Value, IntRoundTrip) {
  const Value v = Value::integer(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_THROW(v.as_sym(), std::logic_error);
  EXPECT_THROW(v.as_tuple(), std::logic_error);
}

TEST(Value, SymbolRoundTrip) {
  SymbolTable t;
  const Value v = Value::symbol(t.intern("ecu"));
  EXPECT_TRUE(v.is_sym());
  EXPECT_EQ(t.name(v.as_sym()), "ecu");
  EXPECT_THROW(v.as_int(), std::logic_error);
}

TEST(Value, TupleRoundTrip) {
  const Value v = Value::tuple({Value::integer(1), Value::integer(2)});
  ASSERT_TRUE(v.is_tuple());
  EXPECT_EQ(v.as_tuple().size(), 2u);
  EXPECT_EQ(v.as_tuple()[1].as_int(), 2);
}

TEST(Value, EqualityIsStructural) {
  const Value a = Value::tuple({Value::integer(1), Value::integer(2)});
  const Value b = Value::tuple({Value::integer(1), Value::integer(2)});
  const Value c = Value::tuple({Value::integer(1), Value::integer(3)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, KindsCompareDisjoint) {
  // Int < Sym < Tuple by Kind ordering; values never compare equal across
  // kinds even with the same payload bits.
  const Value i = Value::integer(0);
  const Value s = Value::symbol(0);
  EXPECT_NE(i, s);
  EXPECT_TRUE(i < s);
}

TEST(Value, TotalOrderOnTuples) {
  const Value a = Value::tuple({Value::integer(1)});
  const Value b = Value::tuple({Value::integer(1), Value::integer(0)});
  const Value c = Value::tuple({Value::integer(2)});
  EXPECT_TRUE(a < b);  // prefix is smaller
  EXPECT_TRUE(b < c);  // elementwise dominates length
  EXPECT_TRUE(a < c);
}

TEST(Value, ToStringRendersNestedTuples) {
  SymbolTable t;
  const Value v = Value::tuple(
      {Value::symbol(t.intern("enc")),
       Value::tuple({Value::symbol(t.intern("k")), Value::integer(7)})});
  EXPECT_EQ(v.to_string(t), "<enc, <k, 7>>");
}

TEST(Value, DefaultConstructedIsIntZero) {
  const Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 0);
  EXPECT_EQ(v, Value::integer(0));
}

TEST(Value, HashValuesDependsOnOrder) {
  const std::vector<Value> a{Value::integer(1), Value::integer(2)};
  const std::vector<Value> b{Value::integer(2), Value::integer(1)};
  EXPECT_NE(hash_values(a), hash_values(b));
}

}  // namespace
}  // namespace ecucsp
