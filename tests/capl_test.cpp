#include <gtest/gtest.h>

#include "capl/interp.hpp"
#include "capl/parser.hpp"

namespace ecucsp::capl {
namespace {

// --- parsing ------------------------------------------------------------------

TEST(CaplParser, FourBlockKinds) {
  const CaplProgram p = parse_capl(R"(
    includes { "common.cin" }
    variables {
      message 0x100 msgReq;
      int counter = 0;
    }
    on start { output(msgReq); }
    void helper(int x) { counter = x; }
  )");
  EXPECT_EQ(p.includes, (std::vector<std::string>{"common.cin"}));
  ASSERT_EQ(p.variables.size(), 2u);
  EXPECT_EQ(p.variables[0].msg_id, 0x100);
  ASSERT_EQ(p.handlers.size(), 1u);
  EXPECT_EQ(p.handlers[0].kind, EventHandler::Kind::Start);
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].params.size(), 1u);
}

TEST(CaplParser, OnMessageVariants) {
  const CaplProgram p = parse_capl(R"(
    on message 0x200 { }
    on message SwReport { }
    on message * { }
  )");
  ASSERT_EQ(p.handlers.size(), 3u);
  EXPECT_EQ(p.handlers[0].msg_id, 0x200);
  EXPECT_EQ(p.handlers[1].target, "SwReport");
  EXPECT_TRUE(p.handlers[2].any_message);
}

TEST(CaplParser, OnTimerAndOnKey) {
  const CaplProgram p = parse_capl(R"(
    on timer tRetry { }
    on key 'a' { }
  )");
  ASSERT_EQ(p.handlers.size(), 2u);
  EXPECT_EQ(p.handlers[0].kind, EventHandler::Kind::Timer);
  EXPECT_EQ(p.handlers[0].target, "tRetry");
  EXPECT_EQ(p.handlers[1].kind, EventHandler::Kind::Key);
  EXPECT_EQ(p.handlers[1].target, "a");
}

TEST(CaplParser, HexAndDecimalNumbers) {
  const CaplProgram p = parse_capl("variables { int a = 0x1F; int b = 31; }");
  ASSERT_EQ(p.variables.size(), 2u);
  EXPECT_EQ(p.variables[0].init->number, 31);
  EXPECT_EQ(p.variables[1].init->number, 31);
}

TEST(CaplParser, ControlFlowStatements) {
  const CaplProgram p = parse_capl(R"(
    void f(int n) {
      int total = 0;
      for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { total += i; } else { total -= 1; }
      }
      while (total > 100) { total = total / 2; break; }
      return;
    }
  )");
  ASSERT_EQ(p.functions.size(), 1u);
}

TEST(CaplParser, ThisByteAccess) {
  const CaplProgram p = parse_capl(
      "on message 0x1 { int x; x = this.byte(0) + this.word(2); }");
  ASSERT_EQ(p.handlers.size(), 1u);
}

TEST(CaplParser, ErrorsHaveLocations) {
  try {
    parse_capl("on start {\n  output(;\n}");
    FAIL() << "expected CaplError";
  } catch (const CaplError& e) {
    EXPECT_EQ(e.line, 2);
  }
}

TEST(CaplParser, MissingSemicolonRejected) {
  EXPECT_THROW(parse_capl("on start { int x = 1 }"), CaplError);
}

// --- interpretation --------------------------------------------------------------

CaplProgram g_prog;  // keep-alive storage for nodes in each test

CaplNode make_node(const std::string& src, const can::DbcDatabase* db = nullptr) {
  g_prog = parse_capl(src);
  return CaplNode("dut", g_prog, db);
}

TEST(CaplInterp, GlobalInitialisers) {
  auto node = make_node("variables { int a = 2 + 3 * 4; int b = a; }");
  EXPECT_EQ(node.global("a")->i, 14);
  EXPECT_EQ(node.global("b")->i, 14);
}

TEST(CaplInterp, FunctionsComputeValues) {
  auto node = make_node(R"(
    int square(int x) { return x * x; }
    int sum(int n) {
      int total = 0;
      for (int i = 1; i <= n; i++) { total += i; }
      return total;
    }
  )");
  EXPECT_EQ(node.call_function("square", {RtValue::of_int(9)}).i, 81);
  EXPECT_EQ(node.call_function("sum", {RtValue::of_int(10)}).i, 55);
}

TEST(CaplInterp, WhileAndBreak) {
  auto node = make_node(R"(
    int firstPow2Above(int n) {
      int p = 1;
      while (1) {
        if (p > n) { break; }
        p = p * 2;
      }
      return p;
    }
  )");
  EXPECT_EQ(node.call_function("firstPow2Above", {RtValue::of_int(100)}).i, 128);
}

TEST(CaplInterp, BitOperations) {
  auto node = make_node(
      "int mix(int a, int b) { return ((a << 4) | (b & 0xF)) ^ 0xFF; }");
  EXPECT_EQ(node.call_function("mix", {RtValue::of_int(0xA), RtValue::of_int(0x5)}).i,
            (0xA5 ^ 0xFF));
}

TEST(CaplInterp, OnStartOutputsMessage) {
  sim::Environment env;
  auto node = make_node(R"(
    variables { message 0x321 msgHello; }
    on start {
      msgHello.byte(0) = 0xAB;
      msgHello.dlc = 1;
      output(msgHello);
    }
  )");
  env.attach(node);
  env.run();
  ASSERT_EQ(env.bus().trace().size(), 1u);
  EXPECT_EQ(env.bus().trace()[0].id, 0x321u);
  EXPECT_EQ(env.bus().trace()[0].byte(0), 0xAB);
  EXPECT_EQ(env.bus().trace()[0].dlc, 1);
}

TEST(CaplInterp, MessageHandlerRepliesAndThisWorks) {
  sim::Environment env;
  auto vmg = make_node(R"(
    variables { message 0x100 msgReq; }
    on start { msgReq.byte(0) = 7; output(msgReq); }
  )");
  static CaplProgram ecu_prog;
  ecu_prog = parse_capl(R"(
    variables { message 0x101 msgRsp; }
    on message 0x100 {
      msgRsp.byte(0) = this.byte(0) + 1;
      output(msgRsp);
    }
  )");
  CaplNode ecu("ecu", ecu_prog);
  env.attach(vmg);
  env.attach(ecu);
  env.run();
  ASSERT_EQ(env.bus().trace().size(), 2u);
  EXPECT_EQ(env.bus().trace()[1].id, 0x101u);
  EXPECT_EQ(env.bus().trace()[1].byte(0), 8);
}

TEST(CaplInterp, TimersFireAndCancel) {
  sim::Environment env;
  auto node = make_node(R"(
    variables {
      msTimer tPing;
      msTimer tNever;
      int fired = 0;
    }
    on start {
      setTimer(tPing, 5);
      setTimer(tNever, 1000);
      cancelTimer(tNever);
    }
    on timer tPing {
      fired = fired + 1;
      if (fired < 3) { setTimer(tPing, 5); }
    }
    on timer tNever { fired = 100; }
  )");
  env.attach(node);
  env.run(2'000'000);
  EXPECT_EQ(node.global("fired")->i, 3);
}

TEST(CaplInterp, WriteGoesToEnvironmentLog) {
  sim::Environment env;
  auto node = make_node(R"(
    on start { write("status %d of %d", 2, 3); }
  )");
  env.attach(node);
  env.run();
  ASSERT_EQ(env.log().size(), 1u);
  EXPECT_EQ(env.log()[0].text, "status 2 of 3");
}

TEST(CaplInterp, KeyEventDispatch) {
  sim::Environment env;
  auto node = make_node(R"(
    variables { int pressed = 0; }
    on key 'x' { pressed = 1; }
  )");
  env.attach(node);
  node.press_key('x');
  EXPECT_EQ(node.global("pressed")->i, 1);
  node.press_key('y');
  EXPECT_EQ(node.global("pressed")->i, 1);
}

TEST(CaplInterp, DbcSignalAccess) {
  const can::DbcDatabase db = can::parse_dbc(R"(
BO_ 512 Report: 4 ECU
 SG_ Status : 0|8@1+ (1,0) [0|255] "" VMG
 SG_ Version : 8|16@1+ (1,0) [0|65535] "" VMG
)");
  sim::Environment env;
  auto node = make_node(R"(
    variables { message Report msgOut; int seen = 0; }
    on start {
      msgOut.Status = 2;
      msgOut.Version = 0x0304;
      output(msgOut);
    }
    on message 0x200 { seen = this.Status; }
  )",
                        &db);
  env.attach(node);
  env.run();
  ASSERT_EQ(env.bus().trace().size(), 1u);
  EXPECT_EQ(env.bus().trace()[0].id, 512u);
  EXPECT_EQ(env.bus().trace()[0].byte(0), 2);
  EXPECT_EQ(env.bus().trace()[0].byte(1), 0x04);
  EXPECT_EQ(env.bus().trace()[0].byte(2), 0x03);
}

TEST(CaplInterp, MessageNameResolutionNeedsDb) {
  EXPECT_THROW(make_node("variables { message NotInDb m; }"), CaplError);
}

TEST(CaplInterp, UnknownFunctionThrows) {
  sim::Environment env;
  auto node = make_node("on start { frobnicate(1); }");
  env.attach(node);
  EXPECT_THROW(env.run(), CaplError);
}

TEST(CaplInterp, DivisionByZeroThrows) {
  auto node = make_node("int f(int x) { return 1 / x; }");
  EXPECT_THROW(node.call_function("f", {RtValue::of_int(0)}), CaplError);
}

TEST(CaplInterp, RunawayLoopGuard) {
  auto node = make_node("void f() { while (1) { } }");
  EXPECT_THROW(node.call_function("f", {}), CaplError);
}

TEST(CaplFormat, FormatsDxsAndPercent) {
  EXPECT_EQ(capl_format("a=%d b=%x c=%% d=%d",
                        {RtValue::of_int(10), RtValue::of_int(255),
                         RtValue::of_int(-1)}),
            "a=10 b=ff c=% d=-1");
}

TEST(CaplFormat, MissingArgumentsLeaveSpecifier) {
  EXPECT_EQ(capl_format("x=%d y=%d", {RtValue::of_int(1)}), "x=1 y=%d");
}


TEST(CaplParser, SwitchStatement) {
  const CaplProgram p = parse_capl(R"(
    int classify(int x) {
      switch (x) {
        case 0: return 10;
        case 'a': return 20;
        default: return 30;
      }
    }
  )");
  ASSERT_EQ(p.functions.size(), 1u);
}

TEST(CaplParser, SwitchRequiresCaseOrDefault) {
  EXPECT_THROW(parse_capl("void f() { switch (1) { return; } }"), CaplError);
}

TEST(CaplInterp, SwitchSelectsMatchingCase) {
  auto node = make_node(R"(
    int classify(int x) {
      switch (x) {
        case 1: return 100;
        case 2: return 200;
        default: return -1;
      }
    }
  )");
  EXPECT_EQ(node.call_function("classify", {RtValue::of_int(1)}).i, 100);
  EXPECT_EQ(node.call_function("classify", {RtValue::of_int(2)}).i, 200);
  EXPECT_EQ(node.call_function("classify", {RtValue::of_int(9)}).i, -1);
}

TEST(CaplInterp, SwitchFallThroughAndBreak) {
  auto node = make_node(R"(
    int tally(int x) {
      int total = 0;
      switch (x) {
        case 1: total += 1;
        case 2: total += 2; break;
        case 3: total += 4;
      }
      return total;
    }
  )");
  EXPECT_EQ(node.call_function("tally", {RtValue::of_int(1)}).i, 3);  // 1+2
  EXPECT_EQ(node.call_function("tally", {RtValue::of_int(2)}).i, 2);
  EXPECT_EQ(node.call_function("tally", {RtValue::of_int(3)}).i, 4);
  EXPECT_EQ(node.call_function("tally", {RtValue::of_int(7)}).i, 0);  // no default
}

TEST(CaplInterp, SwitchOnCharLiteral) {
  auto node = make_node(R"(
    int keycode(int c) {
      switch (c) {
        case 'u': return 1;
        case 'd': return 2;
      }
      return 0;
    }
  )");
  EXPECT_EQ(node.call_function("keycode", {RtValue::of_int('u')}).i, 1);
  EXPECT_EQ(node.call_function("keycode", {RtValue::of_int('d')}).i, 2);
}

}  // namespace
}  // namespace ecucsp::capl
