#include <gtest/gtest.h>

#include "capl/parser.hpp"
#include "cspm/eval.hpp"
#include "cspm/parser.hpp"
#include "translate/dbc_to_cspm.hpp"
#include "translate/extractor.hpp"

namespace ecucsp::translate {
namespace {

using capl::parse_capl;

// Reference CAPL sources mirroring the paper's demonstration network
// (Section VI): a VMG that requests a software inventory and an ECU that
// answers it.
constexpr const char* kVmgSource = R"(
variables {
  message 0x100 reqSw;   // software inventory request (Table II)
  message 0x103 reqApp;  // apply update module
}
on start {
  output(reqSw);
}
on message 0x101 {       // rptSw: result of software diagnosis
  output(reqApp);
}
on message 0x104 {       // rptUpd: result of applying update
  write("update complete");
}
)";

constexpr const char* kEcuSource = R"(
variables {
  message 0x101 rptSw;
  message 0x104 rptUpd;
}
on message 0x100 {       // reqSw
  output(rptSw);
}
on message 0x103 {       // reqApp
  output(rptUpd);
}
)";

ExtractorOptions vmg_options() {
  ExtractorOptions o;
  o.node_name = "VMG";
  o.tx_channel = "send";
  o.rx_channel = "rec";
  return o;
}

ExtractorOptions ecu_options() {
  ExtractorOptions o;
  o.node_name = "ECU";
  o.tx_channel = "rec";  // ECU transmits on the ECU->VMG channel
  o.rx_channel = "send";
  return o;
}

TEST(Extractor, CollectsMessageConstructors) {
  const capl::CaplProgram p = parse_capl(kVmgSource);
  const ExtractionResult r = extract_model(p, vmg_options());
  // Declared variables first, then handler targets.
  EXPECT_EQ(r.messages,
            (std::vector<std::string>{"reqSw", "reqApp", "msg0x101",
                                      "msg0x104"}));
}

TEST(Extractor, EmitsDatatypeAndChannels) {
  const capl::CaplProgram p = parse_capl(kVmgSource);
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("datatype MsgId = reqSw | reqApp"), std::string::npos);
  EXPECT_NE(r.cspm.find("channel send, rec : MsgId"), std::string::npos);
}

TEST(Extractor, OnStartBecomesEntryProcess) {
  const capl::CaplProgram p = parse_capl(kVmgSource);
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("VMG = send.reqSw -> (VMG_RUN)"), std::string::npos);
}

TEST(Extractor, OnMessageBecomesReceiveBranch) {
  const capl::CaplProgram p = parse_capl(kVmgSource);
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("rec.msg0x101 -> (send.reqApp -> (VMG_RUN))"),
            std::string::npos);
}

TEST(Extractor, GeneratedModelParsesAndEvaluates) {
  const capl::CaplProgram p = parse_capl(kVmgSource);
  const ExtractionResult r = extract_model(p, vmg_options());
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(r.cspm);
  const ProcessRef vmg = ev.process("VMG");
  const auto& ts = ctx.transitions(vmg);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ctx.event_name(ts[0].event), "send.reqSw");
}

TEST(Extractor, DbcNamesAreUsedWhenAvailable) {
  const can::DbcDatabase db = can::parse_dbc(
      "BO_ 256 SwInventoryReq: 8 VMG\nBO_ 257 SwReport: 8 ECU\n");
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x100 m; }
    on start { output(m); }
    on message 0x101 { }
  )");
  ExtractorOptions o = vmg_options();
  o.db = &db;
  const ExtractionResult r = extract_model(p, o);
  EXPECT_EQ(r.messages, (std::vector<std::string>{"SwInventoryReq",
                                                  "SwReport"}));
  EXPECT_NE(r.cspm.find("send.SwInventoryReq"), std::string::npos);
}

TEST(Extractor, TimersBecomeTimeoutEvents) {
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x1 m; msTimer tRetry; }
    on start { setTimer(tRetry, 500); }
    on timer tRetry { output(m); setTimer(tRetry, 500); }
  )");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_EQ(r.timers, (std::vector<std::string>{"VMG_tRetry"}));
  EXPECT_NE(r.cspm.find("datatype TimerId = VMG_tRetry"), std::string::npos);
  EXPECT_NE(r.cspm.find("setTimer.VMG_tRetry"), std::string::npos);
  EXPECT_NE(r.cspm.find("timeout.VMG_tRetry -> (send.m -> "), std::string::npos);
  // The timer abstraction is reported.
  bool noted = false;
  for (const std::string& w : r.warnings) {
    noted = noted || w.find("timeout") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(Extractor, IfBecomesInternalChoice) {
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x1 a; message 0x2 b; int x = 0; }
    on message 0x3 {
      if (x > 0) { output(a); } else { output(b); }
    }
  )");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("|~|"), std::string::npos);
  EXPECT_NE(r.cspm.find("send.a"), std::string::npos);
  EXPECT_NE(r.cspm.find("send.b"), std::string::npos);
}

TEST(Extractor, LoopBecomesAuxiliaryRecursion) {
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x1 m; }
    on start {
      for (int i = 0; i < 3; i++) { output(m); }
    }
  )");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("VMG_LOOP0 = SKIP |~|"), std::string::npos);
}

TEST(Extractor, FunctionsAreInlined) {
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x1 m; }
    void burst() { output(m); output(m); }
    on start { burst(); }
  )");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("send.m -> (send.m -> (SKIP))"), std::string::npos);
}

TEST(Extractor, UnhandledMessagesAreIgnoredNotRefused) {
  const capl::CaplProgram p = parse_capl(kVmgSource);
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("diff(MsgId, {msg0x101, msg0x104})"),
            std::string::npos);
}

TEST(Extractor, KeyHandlersBecomeKeyEvents) {
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x1 m; }
    on key 'u' { output(m); }
  )");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_EQ(r.keys, (std::vector<std::string>{"k_u"}));
  EXPECT_NE(r.cspm.find("key.k_u -> (send.m -> "), std::string::npos);
}

TEST(Extractor, NodeWithoutBehaviourIsStop) {
  const capl::CaplProgram p = parse_capl("variables { int x; }");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("VMG_RUN = STOP"), std::string::npos);
}

// --- system composition -------------------------------------------------------

TEST(ExtractSystem, ComposedModelChecksAgainstPaperSpec) {
  // The flagship end-to-end pipeline (Fig. 1): CAPL -> CSPm -> refinement.
  const capl::CaplProgram vmg = parse_capl(kVmgSource);
  const capl::CaplProgram ecu = parse_capl(kEcuSource);
  ExtractionResult sys = extract_system(
      {{&vmg, vmg_options()}, {&ecu, ecu_options()}},
      {"-- paper Section V-B security property SP02; constructor names are",
       "-- unified across nodes by extract_system's shared id map",
       "SP02 = send.reqSw -> rec.rptSw -> SP02p",
       "SP02p = send.reqApp -> rec.rptUpd -> SP02p",
       "assert SP02 [T= SYSTEM"});
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(sys.cspm);
  const auto results = ev.check_assertions();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].result.passed)
      << results[0].result.counterexample->describe(ctx) << "\n"
      << sys.cspm;
}

TEST(ExtractSystem, SystemIsDeadlockFreeInScope) {
  const capl::CaplProgram vmg = parse_capl(kVmgSource);
  const capl::CaplProgram ecu = parse_capl(kEcuSource);
  ExtractionResult sys =
      extract_system({{&vmg, vmg_options()}, {&ecu, ecu_options()}},
                     {"assert SYSTEM :[divergence free]"});
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(sys.cspm);
  const auto results = ev.check_assertions();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].result.passed);
}

TEST(ExtractSystem, MergedDeclarationsAreUnique) {
  const capl::CaplProgram vmg = parse_capl(kVmgSource);
  const capl::CaplProgram ecu = parse_capl(kEcuSource);
  const ExtractionResult sys =
      extract_system({{&vmg, vmg_options()}, {&ecu, ecu_options()}});
  // One datatype declaration with each constructor exactly once.
  EXPECT_EQ(sys.cspm.find("datatype MsgId"),
            sys.cspm.rfind("datatype MsgId"));
  const std::size_t first = sys.cspm.find("reqSw |");
  EXPECT_NE(first, std::string::npos);
}


TEST(ExtractSystem, CanIdsUnifyAcrossNodesWithoutDbc) {
  // One node declares 0x100 as 'reqSw'; the peer only handles it by id.
  // The composition must give both the same MsgId constructor, or the
  // handler would never synchronise with the transmission.
  const capl::CaplProgram tx = capl::parse_capl(
      "variables { message 0x100 reqSw; }\non start { output(reqSw); }\n");
  const capl::CaplProgram rx = capl::parse_capl(
      "variables { message 0x101 rptSw; }\non message 0x100 { output(rptSw); }\n");
  ExtractorOptions txo = vmg_options();
  ExtractorOptions rxo = ecu_options();
  const ExtractionResult sys = extract_system({{&tx, txo}, {&rx, rxo}});
  EXPECT_EQ(sys.messages, (std::vector<std::string>{"reqSw", "rptSw"}));
  EXPECT_NE(sys.cspm.find("send.reqSw -> (rec.rptSw"), std::string::npos)
      << sys.cspm;
}


TEST(Extractor, SwitchBecomesInternalChoiceOverArms) {
  const capl::CaplProgram p = parse_capl(R"(
    variables { message 0x1 a; message 0x2 b; int mode = 0; }
    on message 0x3 {
      switch (mode) {
        case 0: output(a); break;
        case 1: output(b); break;
      }
    }
  )");
  const ExtractionResult r = extract_model(p, vmg_options());
  EXPECT_NE(r.cspm.find("send.a"), std::string::npos);
  EXPECT_NE(r.cspm.find("send.b"), std::string::npos);
  EXPECT_NE(r.cspm.find("|~| SKIP"), std::string::npos);
  // The generated model still parses and evaluates.
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(r.cspm);
  EXPECT_NE(ev.process("VMG"), nullptr);
}

// --- dbc -> cspm ------------------------------------------------------------------

TEST(DbcToCspm, EmitsDatatypesNametypesAndChannels) {
  const can::DbcDatabase db = can::parse_dbc(R"(
BO_ 256 SwInventoryReq: 2 VMG
 SG_ ReqType : 0|8@1+ (1,0) [0|3] "" ECU
BO_ 257 SwReport: 4 ECU
 SG_ Status : 0|2@1+ (1,0) [0|3] "" VMG
 SG_ Version : 8|8@1+ (1,0) [0|255] "" VMG
)");
  const std::string out = dbc_to_cspm(db);
  EXPECT_NE(out.find("datatype MsgId = SwInventoryReq | SwReport"),
            std::string::npos);
  EXPECT_NE(out.find("nametype SwReport_Status = {0..3}"), std::string::npos);
  EXPECT_NE(out.find("channel can_SwReport : SwReport_Status.SwReport_Version"),
            std::string::npos);
}

TEST(DbcToCspm, GeneratedDeclarationsParse) {
  const can::DbcDatabase db = can::parse_dbc(R"(
BO_ 5 Ping: 1 A
 SG_ Seq : 0|4@1+ (1,0) [0|15] "" B
)");
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(dbc_to_cspm(db));
  EXPECT_TRUE(ctx.find_channel("can_Ping").has_value());
  EXPECT_EQ(ctx.events_of(*ctx.find_channel("can_Ping")).size(), 16u);
}

TEST(DbcToCspm, WideSignalsAreClamped) {
  const can::DbcDatabase db = can::parse_dbc(R"(
BO_ 9 Wide: 8 A
 SG_ Big : 0|32@1+ (1,0) [0|0] "" B
)");
  DbcCspmOptions o;
  o.max_domain = 16;
  const std::string out = dbc_to_cspm(db, o);
  EXPECT_NE(out.find("{0..15}"), std::string::npos);
  EXPECT_NE(out.find("clamped"), std::string::npos);
}

TEST(DbcToCspm, MessageWithoutSignalsGetsBareChannel) {
  const can::DbcDatabase db = can::parse_dbc("BO_ 7 Heartbeat: 0 A\n");
  const std::string out = dbc_to_cspm(db);
  EXPECT_NE(out.find("channel can_Heartbeat\n"), std::string::npos);
}

}  // namespace
}  // namespace ecucsp::translate
