#include <gtest/gtest.h>

#include "security/attack_tree.hpp"
#include "security/intruder.hpp"
#include "security/intruder_factored.hpp"
#include "security/mac.hpp"
#include "security/nspk.hpp"
#include "security/properties.hpp"
#include "security/secoc.hpp"
#include "security/terms.hpp"

namespace ecucsp::security {
namespace {

// --- toy MAC ------------------------------------------------------------------

TEST(Mac, DeterministicAndKeyDependent) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  const MacTag t1 = compute_mac(0xDEADBEEF, payload);
  EXPECT_EQ(t1, compute_mac(0xDEADBEEF, payload));
  EXPECT_NE(t1, compute_mac(0xDEADBEF0, payload));
}

TEST(Mac, PayloadSensitivity) {
  const std::vector<std::uint8_t> p1{1, 2, 3};
  const std::vector<std::uint8_t> p2{1, 2, 4};
  EXPECT_NE(compute_mac(7, p1), compute_mac(7, p2));
}

TEST(Mac, VerifyAcceptsAndRejects) {
  const std::vector<std::uint8_t> payload{9, 8, 7};
  const MacTag tag = compute_mac(42, payload);
  EXPECT_TRUE(verify_mac(42, payload, tag));
  EXPECT_FALSE(verify_mac(42, payload, tag ^ 1));
  EXPECT_FALSE(verify_mac(43, payload, tag));
}

TEST(Mac, EmptyPayload) {
  EXPECT_TRUE(verify_mac(1, {}, compute_mac(1, {})));
}

// --- term algebra ----------------------------------------------------------------

class TermsTest : public ::testing::Test {
 protected:
  Context ctx;
  TermAlgebra T{ctx};
};

TEST_F(TermsTest, ConstructorsAndRecognisers) {
  const Value k = T.atom("k");
  const Value m = T.atom("m");
  EXPECT_TRUE(T.is_pair(T.pair(k, m)));
  EXPECT_TRUE(T.is_senc(T.senc(k, m)));
  EXPECT_TRUE(T.is_aenc(T.aenc(T.pk(k), m)));
  EXPECT_TRUE(T.is_mac(T.mac(k, m)));
  EXPECT_TRUE(T.is_pk(T.pk(k)));
  EXPECT_TRUE(T.is_sk(T.sk(k)));
  EXPECT_FALSE(T.is_pair(T.senc(k, m)));
  EXPECT_FALSE(T.is_senc(k));
  EXPECT_EQ(T.arg(T.pair(k, m), 0), k);
  EXPECT_EQ(T.arg(T.pair(k, m), 1), m);
}

TEST_F(TermsTest, UnpairingIsUnrestricted) {
  const Value x = T.atom("x");
  const Value y = T.atom("y");
  const auto closure = T.close({T.pair(x, y)}, {});
  EXPECT_TRUE(closure.contains(x));
  EXPECT_TRUE(closure.contains(y));
}

TEST_F(TermsTest, SymmetricDecryptionNeedsTheKey) {
  const Value k = T.atom("k");
  const Value m = T.atom("m");
  const Value ct = T.senc(k, m);
  EXPECT_FALSE(T.close({ct}, {}).contains(m));
  EXPECT_TRUE(T.close({ct, k}, {}).contains(m));
}

TEST_F(TermsTest, AsymmetricDecryptionNeedsTheSecretKey) {
  const Value alice = T.atom("alice");
  const Value m = T.atom("m");
  const Value ct = T.aenc(T.pk(alice), m);
  EXPECT_FALSE(T.close({ct, T.pk(alice)}, {}).contains(m));
  EXPECT_TRUE(T.close({ct, T.sk(alice)}, {}).contains(m));
}

TEST_F(TermsTest, MacsAreOneWay) {
  const Value k = T.atom("k");
  const Value m = T.atom("m");
  EXPECT_FALSE(T.close({T.mac(k, m)}, {}).contains(m));
  EXPECT_FALSE(T.close({T.mac(k, m), k}, {}).contains(m));
}

TEST_F(TermsTest, CompositionIsBoundedByUniverse) {
  const Value x = T.atom("x");
  const Value y = T.atom("y");
  const Value p = T.pair(x, y);
  EXPECT_FALSE(T.close({x, y}, {}).contains(p));
  EXPECT_TRUE(T.close({x, y}, {p}).contains(p));
}

TEST_F(TermsTest, ClosureChainsRules) {
  // From senc(k, pair(k2, m)) + k, derive m2 = senc(k2, m) decryption chain.
  const Value k = T.atom("k");
  const Value k2 = T.atom("k2");
  const Value m = T.atom("m");
  const Value outer = T.senc(k, T.pair(k2, T.senc(k2, m)));
  const auto closure = T.close({outer, k}, {});
  EXPECT_TRUE(closure.contains(m));
}

TEST_F(TermsTest, DerivableWrapper) {
  const Value x = T.atom("x");
  const Value y = T.atom("y");
  EXPECT_TRUE(T.derivable({T.pair(x, y)}, {}, x));
  EXPECT_FALSE(T.derivable({x}, {}, y));
}

// --- attack trees -----------------------------------------------------------------

TEST(AttackTree, LeafSemantics) {
  const AttackTree t = AttackTree::leaf("spoof");
  EXPECT_EQ(t.sequences(),
            (std::set<std::vector<std::string>>{{"spoof"}}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(AttackTree, SeqConcatenates) {
  const AttackTree t = AttackTree::seq(
      {AttackTree::leaf("a"), AttackTree::leaf("b"), AttackTree::leaf("c")});
  EXPECT_EQ(t.sequences(),
            (std::set<std::vector<std::string>>{{"a", "b", "c"}}));
}

TEST(AttackTree, OrUnions) {
  const AttackTree t =
      AttackTree::or_any({AttackTree::leaf("usb"), AttackTree::leaf("ota")});
  EXPECT_EQ(t.sequences(),
            (std::set<std::vector<std::string>>{{"usb"}, {"ota"}}));
}

TEST(AttackTree, AndInterleaves) {
  const AttackTree t =
      AttackTree::and_all({AttackTree::leaf("a"), AttackTree::leaf("b")});
  EXPECT_EQ(t.sequences(),
            (std::set<std::vector<std::string>>{{"a", "b"}, {"b", "a"}}));
}

TEST(AttackTree, PaperSemanticsCompose) {
  // (a . (b || c)) has sequences abc and acb.
  const AttackTree t = AttackTree::seq(
      {AttackTree::leaf("a"),
       AttackTree::and_all({AttackTree::leaf("b"), AttackTree::leaf("c")})});
  EXPECT_EQ(t.sequences(), (std::set<std::vector<std::string>>{
                               {"a", "b", "c"}, {"a", "c", "b"}}));
}

TEST(AttackTree, EmptyCombinatorsRejected) {
  EXPECT_THROW(AttackTree::seq({}), std::invalid_argument);
  EXPECT_THROW(AttackTree::and_all({}), std::invalid_argument);
  EXPECT_THROW(AttackTree::or_any({}), std::invalid_argument);
}

/// The paper's Section IV-E equivalence: the CSP translation's *completed*
/// traces (maximal, tick-terminated) coincide with the SP-graph semantics.
class AttackTreeEquivalence : public ::testing::TestWithParam<int> {
 protected:
  static AttackTree sample(int which) {
    using AT = AttackTree;
    switch (which) {
      case 0: return AT::leaf("x");
      case 1: return AT::seq({AT::leaf("a"), AT::leaf("b")});
      case 2: return AT::or_any({AT::leaf("a"), AT::leaf("b")});
      case 3: return AT::and_all({AT::leaf("a"), AT::leaf("b")});
      case 4:
        return AT::seq({AT::leaf("recon"),
                        AT::or_any({AT::leaf("usb"), AT::leaf("ota")}),
                        AT::leaf("install")});
      case 5:
        return AT::and_all(
            {AT::seq({AT::leaf("a"), AT::leaf("b")}), AT::leaf("c")});
      case 6:
        return AT::or_any(
            {AT::seq({AT::leaf("a"), AT::leaf("b")}),
             AT::and_all({AT::leaf("c"), AT::leaf("d")})});
      default:
        return AT::seq(
            {AT::or_any({AT::leaf("a"), AT::leaf("b")}),
             AT::and_all({AT::leaf("c"), AT::leaf("d")}), AT::leaf("e")});
    }
  }
};

TEST_P(AttackTreeEquivalence, CspTranslationMatchesSemantics) {
  const AttackTree tree = sample(GetParam());
  Context ctx;
  const ProcessRef p = tree.to_csp(ctx);
  // Completed traces: those the enumeration reports with a trailing tick.
  std::set<std::vector<std::string>> completed;
  for (const auto& trace : enumerate_traces(ctx, p, 16)) {
    if (trace.empty() || trace.back() != TICK) continue;
    std::vector<std::string> names;
    for (std::size_t k = 0; k + 1 < trace.size(); ++k) {
      const auto& fields = ctx.event_fields(trace[k]);
      names.push_back(fields.at(0).to_string(ctx.symbols()));
    }
    completed.insert(std::move(names));
  }
  EXPECT_EQ(completed, tree.sequences()) << "sample " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Samples, AttackTreeEquivalence, ::testing::Range(0, 8));

// --- property builders ---------------------------------------------------------------

class PropertiesTest : public ::testing::Test {
 protected:
  PropertiesTest() {
    req = ctx.event(ctx.channel("req"));
    rsp = ctx.event(ctx.channel("rsp"));
    other = ctx.event(ctx.channel("other"));
  }
  Context ctx;
  EventId req, rsp, other;
};

TEST_F(PropertiesTest, ResponsePropertyHolds) {
  ctx.define("GOOD", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(req, cx.prefix(other, cx.prefix(rsp, cx.var("GOOD"))));
  });
  EXPECT_TRUE(check_response(ctx, ctx.var("GOOD"), req, rsp).passed);
}

TEST_F(PropertiesTest, ResponsePropertyCatchesDoubleRequest) {
  ctx.define("BAD", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(req, cx.prefix(req, cx.prefix(rsp, cx.var("BAD"))));
  });
  const CheckResult r = check_response(ctx, ctx.var("BAD"), req, rsp);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->event, req);
}

TEST_F(PropertiesTest, PrecedenceHoldsAndFails) {
  const ProcessRef good = ctx.prefix(req, ctx.prefix(rsp, ctx.stop()));
  const ProcessRef bad = ctx.prefix(rsp, ctx.prefix(req, ctx.stop()));
  EXPECT_TRUE(check_precedence(ctx, good, req, rsp).passed);
  EXPECT_FALSE(check_precedence(ctx, bad, req, rsp).passed);
}

TEST_F(PropertiesTest, PrecedenceWitnessGivesFullTrace) {
  const ProcessRef bad =
      ctx.prefix(other, ctx.prefix(rsp, ctx.stop()));
  const CheckResult r = check_precedence_witness(ctx, bad, req, rsp);
  ASSERT_FALSE(r.passed);
  // The witness keeps the unrelated 'other' event.
  EXPECT_EQ(r.counterexample->trace, (std::vector<EventId>{other}));
  EXPECT_EQ(r.counterexample->event, rsp);
}

TEST_F(PropertiesTest, NeverPropertyDetectsLeak) {
  const ProcessRef leaky = ctx.prefix(other, ctx.prefix(req, ctx.stop()));
  EXPECT_TRUE(check_never(ctx, leaky, rsp).passed);
  EXPECT_FALSE(check_never(ctx, leaky, req).passed);
}

// --- intruder + protocol ----------------------------------------------------------------

TEST(Intruder, LearnsOverheardMessagesAndReplays) {
  Context ctx;
  TermAlgebra T(ctx);
  const Value a = T.atom("a");
  const Value b = T.atom("b");
  const Value secret = T.atom("secret");
  const std::vector<Value> agents{a, b};
  const std::vector<Value> messages{secret};

  IntruderConfig cfg;
  cfg.universe = {secret, a, b};
  cfg.messages = messages;
  cfg.hear_channel = ctx.channel("hear", {agents, agents, messages});
  cfg.say_channel = ctx.channel("say", {agents, agents, messages});
  cfg.agents = agents;
  const ProcessRef intruder = build_intruder(T, cfg);

  // Initially, nothing can be said.
  for (const Transition& t : ctx.transitions(intruder)) {
    EXPECT_EQ(ctx.event_channel(t.event), cfg.hear_channel);
  }
  // After hearing the secret once, it can be replayed with spoofed sender.
  const EventId heard = ctx.event(cfg.hear_channel, {a, b, secret});
  ProcessRef after = nullptr;
  for (const Transition& t : ctx.transitions(intruder)) {
    if (t.event == heard) after = t.target;
  }
  ASSERT_NE(after, nullptr);
  bool can_spoof = false;
  for (const Transition& t : ctx.transitions(after)) {
    if (t.event == ctx.event(cfg.say_channel, {b, a, secret})) {
      can_spoof = true;
    }
  }
  EXPECT_TRUE(can_spoof);
}

TEST(Intruder, CannotSayUnderivableMessages) {
  Context ctx;
  TermAlgebra T(ctx);
  const Value a = T.atom("a");
  const Value k = T.atom("k");
  const Value m = T.atom("m");
  const Value ct = T.senc(k, m);
  const std::vector<Value> agents{a};
  const std::vector<Value> messages{ct, m};

  IntruderConfig cfg;
  cfg.universe = {ct, m, k, a};
  cfg.messages = messages;
  cfg.initial_knowledge = {ct};  // has the ciphertext but not the key
  cfg.hear_channel = ctx.channel("hear2", {agents, agents, messages});
  cfg.say_channel = ctx.channel("say2", {agents, agents, messages});
  cfg.agents = agents;
  const ProcessRef intruder = build_intruder(T, cfg);

  const EventId say_plain = ctx.event(cfg.say_channel, {a, a, m});
  const EventId say_ct = ctx.event(cfg.say_channel, {a, a, ct});
  bool plain = false;
  bool cipher = false;
  for (const Transition& t : ctx.transitions(intruder)) {
    plain |= t.event == say_plain;
    cipher |= t.event == say_ct;
  }
  EXPECT_FALSE(plain);
  EXPECT_TRUE(cipher);
}

TEST(Nspk, LoweAttackIsFound) {
  auto sys = build_nspk(/*lowe_fix=*/false);
  const CheckResult r = check_precedence(sys->ctx, sys->system,
                                         sys->running_ab, sys->commit_ba);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->event, sys->commit_ba);
}

TEST(Nspk, LoweAttackWitnessShowsManInTheMiddle) {
  auto sys = build_nspk(false);
  const CheckResult r = check_precedence_witness(
      sys->ctx, sys->system, sys->running_ab, sys->commit_ba);
  ASSERT_FALSE(r.passed);
  // The attack starts with A innocently contacting the intruder.
  ASSERT_FALSE(r.counterexample->trace.empty());
  EXPECT_EQ(sys->ctx.event_name(r.counterexample->trace[0]), "running.a.i");
}

TEST(Nspk, LoweFixRestoresAuthentication) {
  auto sys = build_nspk(/*lowe_fix=*/true);
  const CheckResult r = check_precedence(sys->ctx, sys->system,
                                         sys->running_ab, sys->commit_ba);
  EXPECT_TRUE(r.passed);
}

TEST(Nspk, NonceNaStaysConfidentialFromPassiveObservation) {
  // In NSL, with only honest runs a->b, the intruder never derives nb.
  // (Checked indirectly: b's commit to a requires the full handshake.)
  auto sys = build_nspk(true);
  // Sanity: the system is divergence free (finite behaviour, no taus loops).
  EXPECT_TRUE(check_divergence_free(sys->ctx, sys->system).passed);
}


// --- SecOC-style freshness (replay protection) ------------------------------------

TEST(SecOc, PlainMacIsVulnerableToReplay) {
  auto model = build_secoc_model(3);
  const CheckResult r = check_no_replay(*model, /*secoc_variant=*/false);
  ASSERT_FALSE(r.passed);
  // The witness is a double-accept of one transmission.
  EXPECT_EQ(model->ctx.event_name(r.counterexample->event), "accept.0.0");
  ASSERT_FALSE(r.counterexample->trace.empty());
  EXPECT_EQ(r.counterexample->trace.back(), model->accept0);
}

TEST(SecOc, FreshnessCounterStopsReplay) {
  auto model = build_secoc_model(3);
  EXPECT_TRUE(check_no_replay(*model, /*secoc_variant=*/true).passed);
}

TEST(SecOc, AttackerCannotForgeMacs) {
  // Even the MAC-only receiver never accepts a frame that was never sent:
  // accept.c.n requires the genuine snd first (origin authentication holds;
  // only freshness fails).
  auto model = build_secoc_model(2);
  const CheckResult r = check_precedence(model->ctx, model->system_mac_only,
                                         model->send0, model->accept0);
  EXPECT_TRUE(r.passed);
}

TEST(SecOc, CounterRangeScalesTheModel) {
  auto small = build_secoc_model(2);
  auto larger = build_secoc_model(4);
  const CheckResult rs = check_no_replay(*small, true);
  const CheckResult rl = check_no_replay(*larger, true);
  EXPECT_TRUE(rs.passed);
  EXPECT_TRUE(rl.passed);
  EXPECT_GT(rl.stats.impl_states, rs.stats.impl_states);
}

TEST(SecOc, SecOcSystemIsDivergenceFree) {
  auto model = build_secoc_model(2);
  EXPECT_TRUE(check_divergence_free(model->ctx, model->system_secoc).passed);
}


// --- factored (parallel-cell) intruder ----------------------------------------------

class FactoredIntruderTest : public ::testing::TestWithParam<int> {
 protected:
  /// Builds matching explicit/factored intruders over a parameterised
  /// universe and returns both.
  struct Pair {
    ProcessRef explicit_i;
    ProcessRef factored_i;
    FactoredIntruderStats stats;
  };
  Pair build(Context& ctx, int which) {
    TermAlgebra T(ctx);
    const Value a = T.atom("a");
    const Value b = T.atom("b");
    const Value k = T.atom("k");
    const Value n = T.atom("n");
    std::vector<Value> agents{a, b};
    std::vector<Value> universe;
    std::set<Value> init;
    switch (which) {
      case 0:  // pairing only
        universe = {a, b, n, T.pair(a, n), T.pair(n, b)};
        init = {a, b};
        break;
      case 1:  // symmetric encryption, key known
        universe = {k, n, T.senc(k, n)};
        init = {k};
        break;
      case 2:  // symmetric encryption, key NOT known
        universe = {k, n, T.senc(k, n)};
        init = {};
        break;
      default:  // nested: mac + pair + senc
        universe = {k, n, a, T.pair(n, a), T.senc(k, T.pair(n, a)),
                    T.mac(k, n)};
        init = {k, a};
        break;
    }
    // Everything communicable keeps the comparison total.
    IntruderConfig cfg;
    cfg.universe = universe;
    cfg.messages = universe;
    cfg.initial_knowledge = init;
    cfg.hear_channel = ctx.channel("fhear", {agents, agents, universe});
    cfg.say_channel = ctx.channel("fsay", {agents, agents, universe});
    cfg.agents = agents;
    cfg.name = "EXPL" + std::to_string(which);
    Pair out;
    out.explicit_i = build_intruder(T, cfg);
    IntruderConfig cfg2 = cfg;
    cfg2.name = "FACT" + std::to_string(which);
    out.factored_i = build_factored_intruder(T, cfg2, &out.stats);
    return out;
  }
};

TEST_P(FactoredIntruderTest, TraceEquivalentToExplicitIntruder) {
  Context ctx;
  const Pair p = build(ctx, GetParam());
  EXPECT_TRUE(
      check_refinement(ctx, p.explicit_i, p.factored_i, Model::Traces).passed)
      << "factored exceeds explicit (universe " << GetParam() << ")";
  EXPECT_TRUE(
      check_refinement(ctx, p.factored_i, p.explicit_i, Model::Traces).passed)
      << "explicit exceeds factored (universe " << GetParam() << ")";
}

TEST_P(FactoredIntruderTest, InferenceChainsAreDivergenceFree) {
  // Hidden infer events must not loop: each rule instance fires at most
  // once per trace.
  Context ctx;
  const Pair p = build(ctx, GetParam());
  EXPECT_TRUE(check_divergence_free(ctx, p.factored_i).passed);
}

INSTANTIATE_TEST_SUITE_P(Universes, FactoredIntruderTest,
                         ::testing::Range(0, 4));

TEST(FactoredIntruder, RuleInstancesMatchTermStructure) {
  Context ctx;
  TermAlgebra T(ctx);
  const Value a = T.atom("a");
  const Value b = T.atom("b");
  std::vector<Value> agents{a};
  std::vector<Value> universe{a, b, T.pair(a, b)};
  IntruderConfig cfg;
  cfg.universe = universe;
  cfg.messages = universe;
  cfg.hear_channel = ctx.channel("rhear", {agents, agents, universe});
  cfg.say_channel = ctx.channel("rsay", {agents, agents, universe});
  cfg.agents = agents;
  cfg.name = "RULES";
  FactoredIntruderStats st;
  build_factored_intruder(T, cfg, &st);
  EXPECT_EQ(st.fact_cells, 3u);
  EXPECT_EQ(st.rule_instances, 3u);  // unpair-left, unpair-right, pair
}

}  // namespace
}  // namespace ecucsp::security
