// Wire-protocol contract: both framings round-trip every field, the frame
// reassembler survives arbitrary fragmentation and interleaving, malformed
// input is a ProtocolError (never a guess), and the request digest keys on
// exactly the semantic inputs — the deadline is excluded by design.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace ecucsp;
using namespace ecucsp::serve;

namespace {

CheckRequest sample_request() {
  CheckRequest req;
  req.id = 0x0123456789abcdefull;
  req.assertion_index = 3;
  req.max_states = 1ull << 20;
  req.timeout_ms = 2500;
  req.sources = {"channel a\nP = a -> P\nassert P :[deadlock free [F]]\n",
                 "-- second script, with \"quotes\" and \\ backslashes\n"};
  return req;
}

CheckResponse sample_response() {
  CheckResponse resp;
  resp.id = 77;
  resp.status = ServeStatus::Failed;
  resp.vacuous = false;
  resp.from_cache = true;
  resp.coalesced = true;
  resp.memo_hit = false;
  resp.retry_after_ms = 0;
  resp.states = 12345;
  resp.transitions = 67890;
  resp.wall_ns = 5'000'000;
  resp.digest_hex = "0123456789abcdef0123456789abcdef";
  resp.counterexample = "SPEC [T= IMPL: <send.reqSw, rec.rptSw> then attack";
  resp.error = "";
  return resp;
}

Msg decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameBuffer fb;
  fb.feed(bytes.data(), bytes.size());
  auto msg = fb.next();
  EXPECT_TRUE(msg.has_value());
  EXPECT_FALSE(fb.next().has_value());
  return std::move(*msg);
}

TEST(ServeProtocolTest, BinaryRequestRoundTrip) {
  const CheckRequest req = sample_request();
  const Msg msg = decode_one(encode(req, /*json=*/false));
  EXPECT_EQ(msg.type, MsgType::CheckRequest);
  EXPECT_FALSE(msg.json);
  EXPECT_EQ(msg.check.id, req.id);
  EXPECT_EQ(msg.check.assertion_index, req.assertion_index);
  EXPECT_EQ(msg.check.max_states, req.max_states);
  EXPECT_EQ(msg.check.timeout_ms, req.timeout_ms);
  EXPECT_EQ(msg.check.sources, req.sources);
}

TEST(ServeProtocolTest, JsonRequestRoundTrip) {
  const CheckRequest req = sample_request();
  const std::vector<std::uint8_t> bytes = encode(req, /*json=*/true);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.front(), '{');
  EXPECT_EQ(bytes.back(), '\n');
  const Msg msg = decode_one(bytes);
  EXPECT_EQ(msg.type, MsgType::CheckRequest);
  EXPECT_TRUE(msg.json);
  EXPECT_EQ(msg.check.id, req.id);
  EXPECT_EQ(msg.check.sources, req.sources);
  EXPECT_EQ(msg.check.timeout_ms, req.timeout_ms);
}

TEST(ServeProtocolTest, ResponseRoundTripBothFramings) {
  const CheckResponse resp = sample_response();
  for (const bool json : {false, true}) {
    const Msg msg = decode_one(encode(resp, json));
    EXPECT_EQ(msg.type, MsgType::CheckResponse);
    EXPECT_EQ(msg.json, json);
    EXPECT_EQ(msg.response.id, resp.id);
    EXPECT_EQ(msg.response.status, resp.status);
    EXPECT_EQ(msg.response.from_cache, resp.from_cache);
    EXPECT_EQ(msg.response.coalesced, resp.coalesced);
    EXPECT_EQ(msg.response.memo_hit, resp.memo_hit);
    EXPECT_EQ(msg.response.states, resp.states);
    EXPECT_EQ(msg.response.transitions, resp.transitions);
    EXPECT_EQ(msg.response.digest_hex, resp.digest_hex);
    EXPECT_EQ(msg.response.counterexample, resp.counterexample);
    // The byte-identity surface survives the wire in both framings.
    EXPECT_EQ(msg.response.verdict_block(), resp.verdict_block());
  }
}

TEST(ServeProtocolTest, ControlMessagesRoundTrip) {
  for (const bool json : {false, true}) {
    EXPECT_EQ(decode_one(encode_ping(json)).type, MsgType::Ping);
    EXPECT_EQ(decode_one(encode_pong(json)).type, MsgType::Pong);
    EXPECT_EQ(decode_one(encode_stats_request(json)).type,
              MsgType::StatsRequest);
    const Msg stats =
        decode_one(encode_stats_response("{\"serve_format\":1}", json));
    EXPECT_EQ(stats.type, MsgType::StatsResponse);
    EXPECT_EQ(stats.stats_json, "{\"serve_format\":1}");
  }
}

TEST(ServeProtocolTest, FrameBufferReassemblesByteByByte) {
  const std::vector<std::uint8_t> bytes = encode(sample_request(), false);
  FrameBuffer fb;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    fb.feed(&bytes[i], 1);
    EXPECT_FALSE(fb.next().has_value()) << "complete at byte " << i;
  }
  fb.feed(&bytes.back(), 1);
  auto msg = fb.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->check.sources, sample_request().sources);
}

TEST(ServeProtocolTest, FramingsInterleaveOnOneStream) {
  std::vector<std::uint8_t> stream;
  const auto append = [&stream](const std::vector<std::uint8_t>& b) {
    stream.insert(stream.end(), b.begin(), b.end());
  };
  append(encode(sample_request(), false));
  append(encode_ping(true));
  append(encode(sample_response(), true));
  append(encode_pong(false));

  FrameBuffer fb;
  fb.feed(stream.data(), stream.size());
  auto m1 = fb.next();
  ASSERT_TRUE(m1 && m1->type == MsgType::CheckRequest && !m1->json);
  auto m2 = fb.next();
  ASSERT_TRUE(m2 && m2->type == MsgType::Ping && m2->json);
  auto m3 = fb.next();
  ASSERT_TRUE(m3 && m3->type == MsgType::CheckResponse && m3->json);
  auto m4 = fb.next();
  ASSERT_TRUE(m4 && m4->type == MsgType::Pong && !m4->json);
  EXPECT_FALSE(fb.next().has_value());
}

TEST(ServeProtocolTest, GarbageIsAProtocolError) {
  FrameBuffer fb;
  const std::uint8_t garbage[] = {0x00, 0x01, 0x02};
  EXPECT_THROW(
      {
        fb.feed(garbage, sizeof garbage);
        fb.next();
      },
      ProtocolError);
}

TEST(ServeProtocolTest, OversizedFrameIsRejectedWithoutAllocating) {
  FrameBuffer fb(/*max_frame=*/64);
  // A binary header claiming a 16 MiB payload must be rejected from the
  // six header bytes alone.
  const std::uint8_t header[] = {0xEC, 0x01, 0x00, 0x00, 0x00, 0x01};
  fb.feed(header, sizeof header);
  EXPECT_THROW(fb.next(), ProtocolError);
}

TEST(ServeProtocolTest, MalformedJsonLineIsAProtocolError) {
  FrameBuffer fb;
  const std::string line = "{\"op\":\"check\", busted\n";
  fb.feed(line.data(), line.size());
  EXPECT_THROW(fb.next(), ProtocolError);
}

TEST(ServeProtocolTest, RequestDigestKeysOnSemanticInputsOnly) {
  const CheckRequest base = sample_request();
  const store::Digest d0 = request_digest(base);

  // Same semantics, different correlation id / deadline: same flight.
  CheckRequest same = base;
  same.id = 999;
  same.timeout_ms = 1;
  EXPECT_EQ(request_digest(same), d0);

  CheckRequest other_index = base;
  other_index.assertion_index += 1;
  EXPECT_NE(request_digest(other_index), d0);

  CheckRequest other_budget = base;
  other_budget.max_states /= 2;
  EXPECT_NE(request_digest(other_budget), d0);

  CheckRequest other_source = base;
  other_source.sources[0] += " ";
  EXPECT_NE(request_digest(other_source), d0);

  // Source *boundaries* matter: ["ab"] and ["a","b"] are different loads.
  CheckRequest split = base;
  split.sources = {base.sources[0] + base.sources[1]};
  EXPECT_NE(request_digest(split), d0);
}

TEST(ServeProtocolTest, VerdictBlockExcludesTransportFields) {
  CheckResponse a = sample_response();
  CheckResponse b = a;
  b.id = 1;
  b.wall_ns = 42;
  b.from_cache = !a.from_cache;
  b.coalesced = !a.coalesced;
  b.memo_hit = !a.memo_hit;
  EXPECT_EQ(a.verdict_block(), b.verdict_block());

  CheckResponse c = a;
  c.counterexample += "!";
  EXPECT_NE(a.verdict_block(), c.verdict_block());
  CheckResponse d = a;
  d.status = ServeStatus::Passed;
  EXPECT_NE(a.verdict_block(), d.verdict_block());
  CheckResponse e = a;
  e.vacuous = !a.vacuous;
  EXPECT_NE(a.verdict_block(), e.verdict_block());
}

}  // namespace
