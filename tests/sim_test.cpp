#include <gtest/gtest.h>

#include "sim/environment.hpp"

namespace ecucsp::sim {
namespace {

TEST(Scheduler, RunsTasksInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_in(300, [&] { order.push_back(3); });
  s.schedule_in(100, [&] { order.push_back(1); });
  s.schedule_in(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300u);
}

TEST(Scheduler, SimultaneousTasksRunFifo) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_in(50, [&] { order.push_back(1); });
  s.schedule_in(50, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto id = s.schedule_in(10, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelUnknownIdIsNoOp) {
  Scheduler s;
  s.cancel(9999);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, TasksMayScheduleMoreTasks) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) s.schedule_in(10, tick);
  };
  s.schedule_in(10, tick);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 50u);
}

TEST(Scheduler, RunRespectsDeadline) {
  Scheduler s;
  int count = 0;
  s.schedule_in(100, [&] { ++count; });
  s.schedule_in(200, [&] { ++count; });
  s.run(150);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(s.empty());
}

// --- environment -----------------------------------------------------------

class Echo : public Node {
 public:
  explicit Echo(std::string name, can::CanId listen, can::CanId reply)
      : Node(std::move(name)), listen_(listen), reply_(reply) {}

  void on_message(const can::CanFrame& f) override {
    if (f.id != listen_) return;
    ++received;
    can::CanFrame out;
    out.id = reply_;
    output(out);
  }

  int received = 0;

 private:
  can::CanId listen_;
  can::CanId reply_;
};

class Kickoff : public Node {
 public:
  explicit Kickoff(can::CanId id) : Node("kickoff"), id_(id) {}
  void on_start() override {
    can::CanFrame f;
    f.id = id_;
    output(f);
    write("sent kickoff");
  }
  void on_message(const can::CanFrame& f) override { last_seen = f.id; }
  can::CanId last_seen = 0;

 private:
  can::CanId id_;
};

TEST(Environment, RequestReplyRoundTrip) {
  Environment env;
  Kickoff k(0x100);
  Echo e("echo", 0x100, 0x200);
  env.attach(k);
  env.attach(e);
  env.run();
  EXPECT_EQ(e.received, 1);
  EXPECT_EQ(k.last_seen, 0x200u);
  ASSERT_EQ(env.bus().trace().size(), 2u);
  EXPECT_EQ(env.bus().trace()[0].id, 0x100u);
  EXPECT_EQ(env.bus().trace()[1].id, 0x200u);
}

TEST(Environment, SenderDoesNotHearItself) {
  Environment env;
  Echo a("a", 0x1, 0x1);  // would loop forever if self-delivered
  env.attach(a);
  can::CanFrame f;
  f.id = 0x1;
  // Inject from a foreign endpoint.
  env.bus().transmit(f, /*sender=*/-1);
  env.scheduler().schedule_in(0, [&] { env.bus().deliver_one(0); });
  env.run(10'000);
  EXPECT_EQ(a.received, 1);  // echoed once, own echo not re-received
}

TEST(Environment, LogCapturesNodeWrites) {
  Environment env;
  Kickoff k(0x7);
  env.attach(k);
  env.run();
  ASSERT_FALSE(env.log().empty());
  EXPECT_EQ(env.log()[0].node, "kickoff");
  EXPECT_EQ(env.log()[0].text, "sent kickoff");
}

TEST(Environment, BusDeliveryConsumesSimTime) {
  Environment env(/*bus_window_us=*/250);
  Kickoff k(0x5);
  Echo e("echo", 0x5, 0x6);
  env.attach(k);
  env.attach(e);
  env.run();
  ASSERT_EQ(env.bus().trace().size(), 2u);
  EXPECT_EQ(env.bus().trace()[0].timestamp_us, 250u);
  EXPECT_EQ(env.bus().trace()[1].timestamp_us, 500u);
}

TEST(Environment, DetachedNodeOutputThrows) {
  Echo e("stray", 0, 0);
  can::CanFrame f;
  // Force the protected call through on_message by... calling directly.
  EXPECT_THROW(e.on_message(f), std::logic_error);
}

// --- determinism under a caller-provided seed -------------------------------

TEST(Environment, RngMatchesSplitmix64Reference) {
  Environment env(100, 7);
  std::uint64_t state = 7 + 0x9e3779b97f4a7c15ULL;
  auto reference = [&state] {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < 100; ++i) EXPECT_EQ(env.rng(), reference());
}

// Regression for the conformance harness's core guarantee: two environments
// with the same seed, driven identically, produce byte-identical bus traces
// (frame contents *and* delivery timestamps — CanFrame::operator== covers
// both).
TEST(Environment, SameSeedSameDrivingGivesByteIdenticalTraces) {
  auto run = [](std::uint64_t seed) {
    Environment env(100, seed);
    Echo e("echo", 0x100, 0x200);
    env.attach(e);
    std::uint64_t at = 0;
    for (int i = 0; i < 8; ++i) {
      at += 500 + env.rng() % 400;
      can::CanFrame f;
      f.id = 0x100;
      f.set_byte(0, static_cast<std::uint8_t>(env.rng()));
      env.scheduler().schedule_at(at, [&env, f] { env.inject(f); });
    }
    env.run();
    return env.bus().trace();
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);  // 8 stimuli + 8 echoes
  // A different seed shifts stimulus times and payloads: the seed is the
  // run's only degree of freedom, and it is a real one.
  const auto c = run(43);
  EXPECT_NE(a, c);
}

TEST(Environment, StepHonoursDeadlineAndDrains) {
  Environment env;
  int ran = 0;
  env.scheduler().schedule_at(100, [&] { ++ran; });
  env.scheduler().schedule_at(1000, [&] { ++ran; });
  env.start();
  EXPECT_TRUE(env.step(500));  // the task at t=100 is due
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(env.step(500));  // the task at t=1000 lies beyond the deadline
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(env.step(2000));
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(env.step(2000));  // drained
  env.finish();
}

}  // namespace
}  // namespace ecucsp::sim
