#include <gtest/gtest.h>

#include "capl/interp.hpp"
#include "capl/parser.hpp"
#include "cspm/eval.hpp"
#include "ota/ota.hpp"
#include "security/properties.hpp"
#include "translate/conformance.hpp"
#include "translate/extractor.hpp"

namespace ecucsp::ota {
namespace {

TEST(OtaTables, MessageTableMatchesPaperTable2) {
  const auto& rows = message_table();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].id, "reqSw");
  EXPECT_EQ(rows[0].from, "VMG");
  EXPECT_EQ(rows[1].id, "rptSw");
  EXPECT_EQ(rows[1].from, "ECU");
  EXPECT_EQ(rows[2].id, "reqApp");
  EXPECT_EQ(rows[3].id, "rptUpd");
}

TEST(OtaTables, RequirementsMatchPaperTable3) {
  const auto& rows = requirements();
  ASSERT_EQ(rows.size(), 5u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].id, "R0" + std::to_string(i + 1));
  }
  EXPECT_NE(rows[4].text.find("shared keys"), std::string::npos);
}

class OtaModelTest : public ::testing::Test {
 protected:
  OtaModelTest() : model(build_ota_model()) {}
  std::unique_ptr<OtaModel> model;
};

TEST_F(OtaModelTest, AllRequirementsHoldOnTheSecuredSystem) {
  for (const Requirement& r : requirements()) {
    const CheckResult result = check_requirement(*model, r.id);
    EXPECT_TRUE(result.passed)
        << r.id << ": "
        << (result.counterexample
                ? result.counterexample->describe(model->ctx)
                : std::string());
  }
}

TEST_F(OtaModelTest, UnknownRequirementThrows) {
  EXPECT_THROW(check_requirement(*model, "R99"), std::out_of_range);
}

TEST_F(OtaModelTest, PlainSystemFollowsTheUpdateCycle) {
  // The paper's SP02-style view: the composed system's first two genuine
  // events are reqSw then rptSw.
  Context& ctx = model->ctx;
  const auto traces = enumerate_traces(ctx, model->system_plain, 2);
  for (const auto& t : traces) {
    if (t.size() >= 1) {
      EXPECT_EQ(t[0], model->send_reqSw);
    }
    if (t.size() >= 2) {
      EXPECT_EQ(t[1], model->rec_rptSw);
    }
  }
}

TEST_F(OtaModelTest, PlainSystemIsDeadlockAndDivergenceFree) {
  EXPECT_TRUE(check_deadlock_free(model->ctx, model->system_plain).passed);
  EXPECT_TRUE(check_divergence_free(model->ctx, model->system_plain).passed);
}

TEST_F(OtaModelTest, MacProtectedSystemSurvivesTheAttacker) {
  const CheckResult r = security::check_precedence_witness(
      model->ctx, model->system_attacked, model->send_reqApp, model->install);
  EXPECT_TRUE(r.passed);
}

TEST_F(OtaModelTest, UnprotectedSystemIsVulnerable) {
  const CheckResult r = security::check_precedence_witness(
      model->ctx, model->system_unprotected, model->send_reqApp,
      model->install);
  ASSERT_FALSE(r.passed);
  // The canonical attack: forge the update request, ECU installs it.
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->event, model->install);
  ASSERT_FALSE(r.counterexample->trace.empty());
  EXPECT_EQ(r.counterexample->trace.back(), model->forged_reqApp);
}

TEST_F(OtaModelTest, AttackerCannotForgeValidMacs) {
  // In the attacked MAC system, genuine events still require the VMG:
  // no trace reaches install without send.reqApp.genuine.
  const CheckResult r = security::check_precedence(
      model->ctx, model->system_attacked, model->send_reqApp, model->install);
  EXPECT_TRUE(r.passed);
}

// --- the CAPL reference implementation behaves like the model -------------------

TEST(OtaCapl, SimulationRunsTheFullUpdateDialogue) {
  const can::DbcDatabase db = can::parse_dbc(std::string(ota_dbc_text()));
  const capl::CaplProgram vmg_prog =
      capl::parse_capl(std::string(vmg_capl_source()));
  const capl::CaplProgram ecu_prog =
      capl::parse_capl(std::string(ecu_capl_source()));

  sim::Environment env;
  capl::CaplNode vmg("VMG", vmg_prog, &db);
  capl::CaplNode ecu("TargetECU", ecu_prog, &db);
  env.attach(vmg);
  env.attach(ecu);
  env.run(5'000'000);

  // Frames on the bus: reqSw (0x100), rptSw (0x101), reqApp (0x103),
  // rptUpd (0x104) — possibly with retransmitted requests.
  std::vector<can::CanId> ids;
  for (const can::CanFrame& f : env.bus().trace()) ids.push_back(f.id);
  ASSERT_GE(ids.size(), 4u);
  EXPECT_EQ(ids[0], 0x100u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), 0x101u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 0x103u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 0x104u), ids.end());
  EXPECT_EQ(ecu.global("installs")->i, 1);
}

TEST(OtaCapl, EcuRejectsBadMacInSimulation) {
  const can::DbcDatabase db = can::parse_dbc(std::string(ota_dbc_text()));
  const capl::CaplProgram ecu_prog =
      capl::parse_capl(std::string(ecu_capl_source()));

  sim::Environment env;
  capl::CaplNode ecu("TargetECU", ecu_prog, &db);
  env.attach(ecu);

  // Inject a forged update request with a wrong MAC tag from outside.
  can::CanFrame forged;
  forged.id = 0x103;
  forged.set_byte(0, 1);
  forged.set_byte(7, 0x00);  // wrong tag
  env.bus().transmit(forged, -1);
  env.scheduler().schedule_in(0, [&] { env.bus().deliver_one(0); });
  env.run(1'000'000);

  EXPECT_EQ(ecu.global("installs")->i, 0);
  EXPECT_TRUE(env.bus().trace().size() == 1);  // no rptUpd reply
}

TEST(OtaCapl, ExtractedModelsRefineTheHandWrittenSpec) {
  // Close the loop: translate the reference CAPL programs and check the
  // composed model against an SP02-style property (Fig. 1 end to end).
  const can::DbcDatabase db = can::parse_dbc(std::string(ota_dbc_text()));
  const capl::CaplProgram vmg_prog =
      capl::parse_capl(std::string(vmg_capl_source()));
  const capl::CaplProgram ecu_prog =
      capl::parse_capl(std::string(ecu_capl_source()));

  translate::ExtractorOptions vmg_opt;
  vmg_opt.node_name = "VMG";
  vmg_opt.tx_channel = "send";
  vmg_opt.rx_channel = "rec";
  vmg_opt.db = &db;
  translate::ExtractorOptions ecu_opt;
  ecu_opt.node_name = "ECU";
  ecu_opt.tx_channel = "rec";
  ecu_opt.rx_channel = "send";
  ecu_opt.db = &db;

  const translate::ExtractionResult sys = translate::extract_system(
      {{&vmg_prog, vmg_opt}, {&ecu_prog, ecu_opt}},
      {"-- The paper's SP02 (Section V-B): every software inventory request",
       "-- is answered by a software report, in strict alternation.",
       "SP02 = send.SwInventoryReq -> rec.SwReport -> SP02",
       "kept = {send.SwInventoryReq, rec.SwReport}",
       "hidden = diff({| send, rec, setTimer, cancelTimer, timeout |}, kept)",
       "assert SP02 [T= SYSTEM \\ hidden"});
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(sys.cspm);
  const auto results = ev.check_assertions();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].result.passed)
      << (results[0].result.counterexample
              ? results[0].result.counterexample->describe(ctx)
              : "")
      << "\n"
      << sys.cspm;
}


// --- extended scope: the Update Server (paper Section VIII-A) -------------------

class OtaExtendedTest : public ::testing::Test {
 protected:
  OtaExtendedTest() : model(build_ota_extended_model()) {}
  std::unique_ptr<OtaExtendedModel> model;
};

TEST_F(OtaExtendedTest, EndToEndPropertiesHold) {
  for (const char* id : {"E1", "E2", "E3", "E4"}) {
    const CheckResult r = check_extended_property(*model, id);
    EXPECT_TRUE(r.passed)
        << id << ": "
        << (r.counterexample ? r.counterexample->describe(model->ctx)
                             : std::string());
  }
}

TEST_F(OtaExtendedTest, DroppingMacBreaksServerAuthorisation) {
  const CheckResult r = check_extended_property(*model, "E5");
  ASSERT_FALSE(r.passed);
  // The forged CAN frame bypasses the whole server dialogue.
  EXPECT_EQ(r.counterexample->event, model->install);
  ASSERT_FALSE(r.counterexample->trace.empty());
  EXPECT_EQ(r.counterexample->trace.back(), model->forged_reqApp);
}

TEST_F(OtaExtendedTest, ServerDialogueFollowsX1373Order) {
  // First four genuine events of the full chain, in order.
  const auto traces = enumerate_traces(model->ctx, model->system, 4);
  for (const auto& t : traces) {
    if (t.size() >= 1) {
      EXPECT_EQ(t[0], model->down_diagnose);
    }
    if (t.size() >= 2) {
      EXPECT_EQ(t[1], model->send_reqSw);
    }
    if (t.size() >= 3) {
      EXPECT_EQ(t[2], model->rec_rptSw);
    }
    if (t.size() >= 4) {
      EXPECT_EQ(t[3], model->up_update_check);
    }
  }
}

TEST_F(OtaExtendedTest, UnknownPropertyThrows) {
  EXPECT_THROW(check_extended_property(*model, "E9"), std::out_of_range);
}

TEST_F(OtaExtendedTest, ExtendedSystemIsDivergenceFree) {
  EXPECT_TRUE(check_divergence_free(model->ctx, model->system_attacked).passed);
}


// --- timed scope: tock-CSP (paper Section VII-B) ----------------------------------

class OtaTimedTest : public ::testing::TestWithParam<int> {
 protected:
  OtaTimedTest() : model(build_ota_timed_model()) {}
  std::unique_ptr<OtaTimedModel> model;
};

TEST_F(OtaTimedTest, UrgentEcuAnswersWithinZeroTocks) {
  const CheckResult r = security::check_bounded_response(
      model->ctx, model->system_urgent, model->tock, model->send_reqSw,
      model->rec_rptSw, /*within=*/0);
  EXPECT_TRUE(r.passed)
      << (r.counterexample ? r.counterexample->describe(model->ctx) : "");
}

TEST_F(OtaTimedTest, LazyEcuViolatesZeroTockBound) {
  const CheckResult r = security::check_bounded_response(
      model->ctx, model->system_lazy, model->tock, model->send_reqSw,
      model->rec_rptSw, 0);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->event, model->tock);
}

TEST_P(OtaTimedTest, LazyEcuMeetsEveryBoundFromOne) {
  const CheckResult r = security::check_bounded_response(
      model->ctx, model->system_lazy, model->tock, model->send_reqSw,
      model->rec_rptSw, GetParam());
  EXPECT_TRUE(r.passed)
      << "within=" << GetParam() << ": "
      << (r.counterexample ? r.counterexample->describe(model->ctx) : "");
}

INSTANTIATE_TEST_SUITE_P(Bounds, OtaTimedTest, ::testing::Range(1, 5));

TEST_F(OtaTimedTest, TimedSystemsAreDeadlockFree) {
  EXPECT_TRUE(check_deadlock_free(model->ctx, model->system_urgent).passed);
  EXPECT_TRUE(check_deadlock_free(model->ctx, model->system_lazy).passed);
}

TEST_F(OtaTimedTest, TimeCanAlwaysAdvanceEventually) {
  // No timestop: from every reachable state some trace leads to a tock.
  // Approximated by divergence-freedom of the system with everything but
  // tock hidden (an infinite tock-free loop would diverge).
  Context& ctx = model->ctx;
  for (const ProcessRef sys : {model->system_urgent, model->system_lazy}) {
    const ProcessRef only_tock = security::project(ctx, sys, EventSet{model->tock});
    EXPECT_TRUE(check_divergence_free(ctx, only_tock).passed);
  }
}


// --- conformance: execution vs extracted model -----------------------------------

class OtaConformanceTest : public ::testing::Test {
 protected:
  OtaConformanceTest()
      : db(can::parse_dbc(std::string(ota_dbc_text()))),
        vmg_prog(capl::parse_capl(std::string(vmg_capl_source()))),
        ecu_prog(capl::parse_capl(std::string(ecu_capl_source()))) {
    translate::ExtractorOptions vmg_opt;
    vmg_opt.node_name = "VMG";
    vmg_opt.db = &db;
    translate::ExtractorOptions ecu_opt;
    ecu_opt.node_name = "ECU";
    ecu_opt.tx_channel = "rec";
    ecu_opt.rx_channel = "send";
    ecu_opt.db = &db;
    const translate::ExtractionResult sys =
        translate::extract_system({{&vmg_prog, vmg_opt}, {&ecu_prog, ecu_opt}});
    ev.load_source(sys.cspm);
    model = ev.process("SYSTEM");

    translate::map_ids_from_dbc(options, db);
    options.tx_ids = {0x100, 0x103};  // VMG-transmitted ids ride 'send'
  }

  can::DbcDatabase db;
  capl::CaplProgram vmg_prog;
  capl::CaplProgram ecu_prog;
  Context ctx;
  cspm::Evaluator ev{ctx};
  ProcessRef model = nullptr;
  translate::ConformanceOptions options;
};

TEST_F(OtaConformanceTest, SimulatedExecutionConformsToExtractedModel) {
  sim::Environment env;
  capl::CaplNode vmg("VMG", vmg_prog, &db);
  capl::CaplNode ecu("TargetECU", ecu_prog, &db);
  env.attach(vmg);
  env.attach(ecu);
  env.run(5'000'000);
  const auto result = translate::check_conformance(
      ctx, model, env.bus().trace(), options);
  EXPECT_TRUE(result.conforms) << result.describe(ctx);
  EXPECT_GE(result.abstract_events.size(), 4u);
}

TEST_F(OtaConformanceTest, MutatedExecutionIsRejected) {
  // A log where the ECU "answers" before any request violates the model.
  can::CanFrame rpt;
  rpt.id = 0x101;  // SwReport
  const auto result = translate::check_conformance(ctx, model, {rpt}, options);
  ASSERT_FALSE(result.conforms);
  EXPECT_EQ(result.membership.accepted_prefix, 0u);
  // The model's only initial network event is the inventory request.
  EXPECT_EQ(result.membership.offered.size(), 1u);
  EXPECT_EQ(ctx.event_name(*result.membership.offered.begin()),
            "send.SwInventoryReq");
  EXPECT_NE(result.describe(ctx).find("DEVIATES"), std::string::npos);
}

TEST_F(OtaConformanceTest, UnmappedIdThrows) {
  can::CanFrame stray;
  stray.id = 0x7FF;
  EXPECT_THROW(translate::abstract_trace(ctx, {stray}, options), ModelError);
}

}  // namespace
}  // namespace ecucsp::ota
