// Two-tier cache and object-store tests: persistence, promotion, key
// invalidation and corruption recovery.
//
// The store is an accelerator, never a correctness dependency — so the
// properties pinned here are mostly about *failing safe*: a corrupted or
// truncated object is a miss (and is dropped so it cannot poison later
// runs), a key covers everything that could change a verdict, and nothing
// per-process leaks into a key (two Contexts agree on every key).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "refine/check.hpp"
#include "refine/lts.hpp"
#include "store/cache.hpp"
#include "store/object_store.hpp"
#include "store/serialize.hpp"
#include "store/term_digest.hpp"

namespace ecucsp::store {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    dir_ = fs::temp_directory_path() /
           ("ecucsp_store_test_" + std::string(tag) + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

std::vector<std::uint8_t> bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

fs::path object_path(const fs::path& dir, const Digest& key) {
  const std::string hex = key.hex();
  return dir / "objects" / hex.substr(0, 2) / hex.substr(2);
}

// --- ObjectStore -------------------------------------------------------------

TEST(ObjectStore, PutGetDropRoundTrip) {
  TempDir tmp("roundtrip");
  ObjectStore os(tmp.path());
  const Digest key = digest_bytes("key");

  EXPECT_FALSE(os.get(key).has_value());  // miss before put, dir absent
  ASSERT_TRUE(os.put(key, bytes("blob contents")));
  const auto got = os.get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes("blob contents"));

  os.drop(key);
  EXPECT_FALSE(os.get(key).has_value());
  EXPECT_EQ(os.stats().hits.load(), 1u);
  EXPECT_EQ(os.stats().misses.load(), 2u);
  EXPECT_EQ(os.stats().corrupt_dropped.load(), 1u);
}

TEST(ObjectStore, OverwriteIsIdempotent) {
  TempDir tmp("overwrite");
  ObjectStore os(tmp.path());
  const Digest key = digest_bytes("k");
  ASSERT_TRUE(os.put(key, bytes("v1")));
  ASSERT_TRUE(os.put(key, bytes("v1")));  // same content, atomic replace
  EXPECT_EQ(*os.get(key), bytes("v1"));
  // No stray temp files left behind.
  std::size_t files = 0;
  for (const auto& e : fs::recursive_directory_iterator(tmp.path())) {
    if (e.is_regular_file()) ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(ObjectStore, MissingDirectoryIsJustAMiss) {
  ObjectStore os(fs::path("/definitely/not/a/real/dir"));
  EXPECT_FALSE(os.get(digest_bytes("x")).has_value());
}

TEST(ObjectStore, TrimEvictsOldestFirst) {
  TempDir tmp("trim");
  ObjectStore os(tmp.path());
  const Digest oldest = digest_bytes("oldest");
  const Digest middle = digest_bytes("middle");
  const Digest newest = digest_bytes("newest");
  const std::vector<std::uint8_t> blob(100, 0xAB);
  ASSERT_TRUE(os.put(oldest, blob));
  ASSERT_TRUE(os.put(middle, blob));
  ASSERT_TRUE(os.put(newest, blob));
  // Spread the mtimes explicitly — filesystem timestamp granularity would
  // otherwise make the LRU order a coin flip.
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(object_path(tmp.path(), oldest), now - std::chrono::hours(2));
  fs::last_write_time(object_path(tmp.path(), middle), now - std::chrono::hours(1));
  fs::last_write_time(object_path(tmp.path(), newest), now);

  EXPECT_EQ(os.trim(1000), 0u);  // under budget: nothing happens
  EXPECT_EQ(os.trim(250), 1u);   // 300 bytes stored, drop exactly the oldest
  EXPECT_FALSE(os.get(oldest).has_value());
  EXPECT_TRUE(os.get(middle).has_value());
  EXPECT_TRUE(os.get(newest).has_value());
  EXPECT_EQ(os.trim(0), 2u);
  EXPECT_FALSE(os.get(middle).has_value());
  EXPECT_FALSE(os.get(newest).has_value());
}

// --- key derivation ----------------------------------------------------------

/// A tiny spec/impl pair built fresh in any Context.
struct Terms {
  Context ctx;
  ProcessRef spec;
  ProcessRef impl;

  Terms() {
    const EventId a = ctx.event(ctx.channel("a"));
    const EventId b = ctx.event(ctx.channel("b"));
    spec = ctx.prefix(a, ctx.stop());
    impl = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  }
};

TEST(CacheKeys, StableAcrossContexts) {
  Terms one, two;
  EXPECT_EQ(VerificationCache::check_key(one.ctx, one.spec, one.impl,
                                         CheckOp::Refinement, Model::Failures,
                                         1 << 20),
            VerificationCache::check_key(two.ctx, two.spec, two.impl,
                                         CheckOp::Refinement, Model::Failures,
                                         1 << 20));
  EXPECT_EQ(VerificationCache::lts_key(one.ctx, one.impl, 1 << 20),
            VerificationCache::lts_key(two.ctx, two.impl, 1 << 20));
}

TEST(CacheKeys, EveryParameterInvalidates) {
  Terms t;
  const Digest base = VerificationCache::check_key(
      t.ctx, t.spec, t.impl, CheckOp::Refinement, Model::Traces, 1 << 20);
  // Different term.
  EXPECT_NE(base,
            VerificationCache::check_key(t.ctx, t.spec, t.spec,
                                         CheckOp::Refinement, Model::Traces,
                                         1 << 20));
  // Swapped roles: spec/impl are positional, A [T= B is not B [T= A.
  EXPECT_NE(base,
            VerificationCache::check_key(t.ctx, t.impl, t.spec,
                                         CheckOp::Refinement, Model::Traces,
                                         1 << 20));
  // Different model.
  EXPECT_NE(base,
            VerificationCache::check_key(t.ctx, t.spec, t.impl,
                                         CheckOp::Refinement, Model::Failures,
                                         1 << 20));
  // Different state budget (a budget-limited verdict is not a verdict).
  EXPECT_NE(base,
            VerificationCache::check_key(t.ctx, t.spec, t.impl,
                                         CheckOp::Refinement, Model::Traces,
                                         1 << 21));
  // Unary ops on the same impl are distinct questions.
  const Digest dl = VerificationCache::check_key(
      t.ctx, nullptr, t.impl, CheckOp::DeadlockFree, Model::Traces, 1 << 20);
  const Digest det = VerificationCache::check_key(
      t.ctx, nullptr, t.impl, CheckOp::Deterministic, Model::Traces, 1 << 20);
  EXPECT_NE(dl, det);
  EXPECT_NE(dl, base);
  // Verdict and LTS tiers never collide on the same term.
  EXPECT_NE(VerificationCache::lts_key(t.ctx, t.impl, 1 << 20), base);
  EXPECT_NE(VerificationCache::lts_key(t.ctx, t.impl, 1 << 20),
            VerificationCache::lts_key(t.ctx, t.impl, 1 << 21));
}

// --- VerificationCache tiers -------------------------------------------------

TEST(VerificationCacheTest, MemoryOnlyStoreThenHit) {
  VerificationCache cache;  // no dir: tier 1 only
  EXPECT_EQ(cache.disk(), nullptr);
  Terms t;
  EXPECT_FALSE(cache
                   .lookup_check(t.ctx, t.spec, t.impl, CheckOp::Refinement,
                                 Model::Traces, 1 << 20)
                   .has_value());

  const CheckResult res =
      check_refinement(t.ctx, t.spec, t.impl, Model::Traces, 1 << 20);
  cache.store_check(t.ctx, t.spec, t.impl, CheckOp::Refinement, Model::Traces,
                    1 << 20, res);

  // Hit from a *different* Context: the blob decodes into the caller.
  Terms u;
  const auto hit = cache.lookup_check(u.ctx, u.spec, u.impl,
                                      CheckOp::Refinement, Model::Traces,
                                      1 << 20);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->passed, res.passed);
  ASSERT_EQ(hit->counterexample.has_value(), res.counterexample.has_value());
  if (res.counterexample) {
    EXPECT_EQ(hit->counterexample->describe(u.ctx),
              res.counterexample->describe(t.ctx));
  }
  EXPECT_EQ(cache.stats().verdict_hits.load(), 1u);
  EXPECT_EQ(cache.stats().verdict_misses.load(), 1u);
  EXPECT_EQ(cache.stats().memory_hits.load(), 1u);
  EXPECT_EQ(cache.stats().stores.load(), 1u);
}

TEST(VerificationCacheTest, DiskTierSurvivesClearAndNewInstance) {
  TempDir tmp("disk_tier");
  Terms t;
  const Lts lts = compile_lts(t.ctx, t.impl);

  {
    VerificationCache cache(tmp.path());
    ASSERT_NE(cache.disk(), nullptr);
    cache.store_lts(t.ctx, t.impl, 1 << 20, lts);

    // Simulated process restart: memory gone, disk warm.
    cache.clear_memory();
    Terms u;
    const auto hit = cache.lookup_lts(u.ctx, u.impl, 1 << 20);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->state_count(), lts.state_count());
    EXPECT_EQ(cache.stats().disk_hits.load(), 1u);

    // The disk hit was promoted: the next lookup is served from memory.
    Terms v;
    ASSERT_TRUE(cache.lookup_lts(v.ctx, v.impl, 1 << 20).has_value());
    EXPECT_EQ(cache.stats().memory_hits.load(), 1u);
  }

  // A genuinely fresh cache instance over the same directory also hits.
  VerificationCache reopened(tmp.path());
  Terms w;
  ASSERT_TRUE(reopened.lookup_lts(w.ctx, w.impl, 1 << 20).has_value());
  EXPECT_EQ(reopened.stats().disk_hits.load(), 1u);
}

TEST(VerificationCacheTest, CorruptedObjectIsEvictedNotServed) {
  TempDir tmp("corrupt");
  Terms t;
  VerificationCache cache(tmp.path());
  const CheckResult res =
      check_refinement(t.ctx, t.spec, t.impl, Model::Traces, 1 << 20);
  cache.store_check(t.ctx, t.spec, t.impl, CheckOp::Refinement, Model::Traces,
                    1 << 20, res);

  const Digest key = VerificationCache::check_key(
      t.ctx, t.spec, t.impl, CheckOp::Refinement, Model::Traces, 1 << 20);
  const fs::path obj = object_path(tmp.path(), key);
  ASSERT_TRUE(fs::exists(obj));

  // Overwrite with garbage; a fresh cache (cold memory) must treat it as a
  // miss, drop it, and keep working.
  {
    std::ofstream out(obj, std::ios::binary | std::ios::trunc);
    out << "not an envelope at all";
  }
  VerificationCache fresh(tmp.path());
  EXPECT_FALSE(fresh
                   .lookup_check(t.ctx, t.spec, t.impl, CheckOp::Refinement,
                                 Model::Traces, 1 << 20)
                   .has_value());
  EXPECT_EQ(fresh.stats().decode_failures.load(), 1u);
  EXPECT_FALSE(fs::exists(obj)) << "corrupt object not dropped";

  // And a re-store repopulates cleanly.
  fresh.store_check(t.ctx, t.spec, t.impl, CheckOp::Refinement, Model::Traces,
                    1 << 20, res);
  EXPECT_TRUE(fresh
                  .lookup_check(t.ctx, t.spec, t.impl, CheckOp::Refinement,
                                Model::Traces, 1 << 20)
                  .has_value());
}

TEST(VerificationCacheTest, TruncatedObjectIsEvictedNotServed) {
  TempDir tmp("truncate");
  Terms t;
  VerificationCache cache(tmp.path());
  const Lts lts = compile_lts(t.ctx, t.impl);
  cache.store_lts(t.ctx, t.impl, 1 << 20, lts);

  const Digest key = VerificationCache::lts_key(t.ctx, t.impl, 1 << 20);
  const fs::path obj = object_path(tmp.path(), key);
  ASSERT_TRUE(fs::exists(obj));
  const auto full = fs::file_size(obj);
  fs::resize_file(obj, full / 2);  // simulated torn write / disk-full tail

  VerificationCache fresh(tmp.path());
  EXPECT_FALSE(fresh.lookup_lts(t.ctx, t.impl, 1 << 20).has_value());
  EXPECT_EQ(fresh.stats().decode_failures.load(), 1u);
  EXPECT_FALSE(fs::exists(obj));
}

TEST(VerificationCacheTest, ForeignFormatVersionIsAMiss) {
  // An object written by a hypothetical future format version: valid file,
  // wrong envelope version. Must miss, not crash, not decode.
  TempDir tmp("version");
  Terms t;
  VerificationCache cache(tmp.path());
  const Lts lts = compile_lts(t.ctx, t.impl);
  cache.store_lts(t.ctx, t.impl, 1 << 20, lts);

  const Digest key = VerificationCache::lts_key(t.ctx, t.impl, 1 << 20);
  const fs::path obj = object_path(tmp.path(), key);
  std::ifstream in(obj, std::ios::binary);
  std::vector<char> blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();
  blob[4] = static_cast<char>(kStoreFormatVersion + 1);  // version varint
  {
    std::ofstream out(obj, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  VerificationCache fresh(tmp.path());
  EXPECT_FALSE(fresh.lookup_lts(t.ctx, t.impl, 1 << 20).has_value());
  EXPECT_EQ(fresh.stats().decode_failures.load(), 1u);
}

TEST(VerificationCacheTest, TrimDelegatesToDisk) {
  TempDir tmp("cache_trim");
  Terms t;
  VerificationCache cache(tmp.path());
  const Lts lts = compile_lts(t.ctx, t.impl);
  cache.store_lts(t.ctx, t.impl, 1 << 20, lts);
  cache.store_lts(t.ctx, t.spec, 1 << 20, compile_lts(t.ctx, t.spec));
  EXPECT_GT(cache.trim(0), 0u);

  VerificationCache memory_only;
  EXPECT_EQ(memory_only.trim(0), 0u);
}

TEST(VerificationCacheTest, EndToEndThroughCheckEntryPoints) {
  // Install the cache globally and let check_refinement do the plumbing:
  // second identical call is served from cache, bit-for-bit.
  VerificationCache cache;
  ScopedCheckCache installed(&cache);

  Terms t;
  const CheckResult cold =
      check_refinement(t.ctx, t.spec, t.impl, Model::Failures, 1 << 20);
  EXPECT_FALSE(cold.from_cache);

  Terms u;
  const CheckResult warm =
      check_refinement(u.ctx, u.spec, u.impl, Model::Failures, 1 << 20);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.passed, cold.passed);
  ASSERT_EQ(warm.counterexample.has_value(), cold.counterexample.has_value());
  if (cold.counterexample) {
    EXPECT_EQ(warm.counterexample->describe(u.ctx),
              cold.counterexample->describe(t.ctx));
  }
  EXPECT_GE(cache.stats().verdict_hits.load(), 1u);

  // The unary checks go through the same hook.
  const CheckResult dl_cold = check_deadlock_free(t.ctx, t.impl, 1 << 20);
  const CheckResult dl_warm = check_deadlock_free(u.ctx, u.impl, 1 << 20);
  EXPECT_FALSE(dl_cold.from_cache);
  EXPECT_TRUE(dl_warm.from_cache);
  EXPECT_EQ(dl_warm.passed, dl_cold.passed);
}

}  // namespace
}  // namespace ecucsp::store
