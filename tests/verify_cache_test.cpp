// Incremental verification: the cache under the batch scheduler and under
// the extract→evaluate→check pipeline.
//
// These are the subsystem's acceptance properties in test form:
//   * a warm rerun of the unchanged OTA requirement x attacker matrix hits
//     every cell and recompiles zero LTSes, at any worker count;
//   * cached verdicts are byte-identical to the uncached sequential
//     reference (fingerprint equality, counterexamples included);
//   * the disk tier carries hits across a simulated process restart;
//   * editing one CAPL handler invalidates exactly the cells whose terms
//     unfold through the edited node — the untouched node's checks still
//     hit (the paper's edit-one-ECU, recheck-the-matrix loop made cheap).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "capl/parser.hpp"
#include "cspm/eval.hpp"
#include "refine/check.hpp"
#include "store/cache.hpp"
#include "translate/extractor.hpp"
#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::verify {
namespace {

std::vector<CheckTask> full_suite() {
  std::vector<CheckTask> tasks = ota_requirement_matrix();
  for (CheckTask& t : ota_extended_batch()) tasks.push_back(std::move(t));
  return tasks;
}

/// Everything that must be cache-invariant: verdict, counterexample text,
/// and the semantic LTS sizes. Timing and the cached flag are excluded by
/// design; so is product_states, which on a failing check records how far
/// the BFS got before the violation — a function of transition *order*,
/// which is allowed to differ between a fresh compile and an equivalent
/// cached artifact (commutative choice operands are canonicalised by
/// digest, not by layout).
std::vector<std::string> fingerprint(const BatchResult& batch) {
  std::vector<std::string> out;
  out.reserve(batch.outcomes.size());
  for (const TaskOutcome& o : batch.outcomes) {
    out.push_back(o.name + "|" + std::string(to_string(o.status)) + "|" +
                  o.counterexample + "|" +
                  std::to_string(o.stats.impl_states) + "|" +
                  std::to_string(o.stats.impl_transitions));
  }
  return out;
}

std::size_t cached_count(const BatchResult& batch) {
  std::size_t n = 0;
  for (const TaskOutcome& o : batch.outcomes) n += o.cached ? 1 : 0;
  return n;
}

TEST(VerifyCache, WarmMatrixHitsEveryCellAtAnyJobCount) {
  const std::vector<CheckTask> suite = full_suite();

  // Uncached sequential reference.
  const BatchResult reference = VerifyScheduler({.jobs = 1}).run(suite);
  ASSERT_TRUE(reference.all_as_expected());
  EXPECT_EQ(cached_count(reference), 0u);

  store::VerificationCache cache;  // memory tier only
  ScopedCheckCache installed(&cache);

  const BatchResult cold = VerifyScheduler({.jobs = 4}).run(suite);
  EXPECT_EQ(fingerprint(cold), fingerprint(reference));

  for (const unsigned jobs : {1u, 4u}) {
    const BatchResult warm = VerifyScheduler({.jobs = jobs}).run(suite);
    EXPECT_EQ(fingerprint(warm), fingerprint(reference)) << "jobs=" << jobs;
    EXPECT_EQ(cached_count(warm), suite.size()) << "jobs=" << jobs;
  }

  // Zero LTS recompilations while warm: every lookup during the warm runs
  // was answered, so the miss counters did not move after the cold run.
  const auto verdict_misses = cache.stats().verdict_misses.load();
  const auto lts_misses = cache.stats().lts_misses.load();
  VerifyScheduler({.jobs = 4}).run(suite);
  EXPECT_EQ(cache.stats().verdict_misses.load(), verdict_misses);
  EXPECT_EQ(cache.stats().lts_misses.load(), lts_misses);
}

TEST(VerifyCache, DiskTierCarriesHitsAcrossRestart) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ecucsp_verify_cache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  const std::vector<CheckTask> suite = full_suite();
  std::vector<std::string> cold_print;
  {
    store::VerificationCache cache(dir);
    ScopedCheckCache installed(&cache);
    cold_print = fingerprint(VerifyScheduler({.jobs = 4}).run(suite));
  }
  {
    // "Restarted process": a brand-new cache over the same directory.
    store::VerificationCache cache(dir);
    ScopedCheckCache installed(&cache);
    const BatchResult warm = VerifyScheduler({.jobs = 4}).run(suite);
    EXPECT_EQ(fingerprint(warm), cold_print);
    EXPECT_EQ(cached_count(warm), suite.size());
    EXPECT_EQ(cache.stats().lts_misses.load(), 0u);
    EXPECT_EQ(cache.stats().stores.load(), 0u);  // nothing recomputed
    EXPECT_GE(cache.stats().disk_hits.load(), suite.size());
  }
  std::filesystem::remove_all(dir);
}

// --- CAPL edit -> selective invalidation -------------------------------------

constexpr const char* kVmgSource = R"(
variables {
  message 0x100 reqSw;
  message 0x103 reqApp;
}
on start { output(reqSw); }
on message 0x101 { output(reqApp); }
on message 0x104 { }
)";

constexpr const char* kEcuSource = R"(
variables {
  message 0x101 rptSw;
  message 0x104 rptUpd;
}
on message 0x100 { output(rptSw); }
on message 0x103 { output(rptUpd); }
)";

// The same ECU with one handler body edited (the update-apply handler now
// reports twice). Same messages, same channels — only the 0x103 handler's
// behaviour changed.
constexpr const char* kEcuSourceEdited = R"(
variables {
  message 0x101 rptSw;
  message 0x104 rptUpd;
}
on message 0x100 { output(rptSw); }
on message 0x103 { output(rptUpd); output(rptUpd); }
)";

/// Extract the two-node system and return the generated CSPm script.
std::string extract(const char* vmg_src, const char* ecu_src) {
  const capl::CaplProgram vmg = capl::parse_capl(vmg_src);
  const capl::CaplProgram ecu = capl::parse_capl(ecu_src);
  std::vector<translate::SystemNode> nodes(2);
  nodes[0].program = &vmg;
  nodes[0].options.node_name = "VMG";
  nodes[0].options.tx_channel = "send";
  nodes[0].options.rx_channel = "rec";
  nodes[1].program = &ecu;
  nodes[1].options.node_name = "ECU";
  nodes[1].options.tx_channel = "rec";
  nodes[1].options.rx_channel = "send";
  return translate::extract_system(nodes).cspm;
}

/// Run deadlock-freedom on both node processes of `script` under the
/// installed cache; returns {VMG served from cache, ECU served from cache}.
std::pair<bool, bool> check_nodes(const std::string& script) {
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(script);
  const CheckResult vmg = check_deadlock_free(ctx, ev.process("VMG"), 1 << 18);
  const CheckResult ecu = check_deadlock_free(ctx, ev.process("ECU"), 1 << 18);
  return {vmg.from_cache, ecu.from_cache};
}

TEST(VerifyCache, EditedCaplHandlerInvalidatesOnlyItsOwnCells) {
  store::VerificationCache cache;
  ScopedCheckCache installed(&cache);

  // Cold: both nodes computed.
  const auto cold = check_nodes(extract(kVmgSource, kEcuSource));
  EXPECT_FALSE(cold.first);
  EXPECT_FALSE(cold.second);

  // Unchanged rerun (fresh Context, fresh Evaluator): both cached.
  const auto warm = check_nodes(extract(kVmgSource, kEcuSource));
  EXPECT_TRUE(warm.first);
  EXPECT_TRUE(warm.second);

  // Edit one ECU handler: the ECU cell recomputes, the VMG cell still hits.
  const auto edited = check_nodes(extract(kVmgSource, kEcuSourceEdited));
  EXPECT_TRUE(edited.first) << "untouched node lost its cache hit";
  EXPECT_FALSE(edited.second) << "edited node served a stale verdict";

  // And the edited model is itself cached now.
  const auto warm2 = check_nodes(extract(kVmgSource, kEcuSourceEdited));
  EXPECT_TRUE(warm2.first);
  EXPECT_TRUE(warm2.second);
}

TEST(VerifyCache, ExtractionFingerprintTracksTheEdit) {
  // The translate-layer identity the store correlates with: unchanged
  // sources reproduce the fingerprint, an edited handler changes it.
  const capl::CaplProgram ecu = capl::parse_capl(kEcuSource);
  const capl::CaplProgram ecu_again = capl::parse_capl(kEcuSource);
  const capl::CaplProgram edited = capl::parse_capl(kEcuSourceEdited);
  translate::ExtractorOptions opt;
  opt.node_name = "ECU";
  const std::string f1 = translate::extract_model(ecu, opt).fingerprint;
  const std::string f2 = translate::extract_model(ecu_again, opt).fingerprint;
  const std::string f3 = translate::extract_model(edited, opt).fingerprint;
  EXPECT_EQ(f1.size(), 32u);
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, f3);
}

}  // namespace
}  // namespace ecucsp::verify
