#include <gtest/gtest.h>

#include "cspm/parser.hpp"
#include "cspm/printer.hpp"

namespace ecucsp::cspm {
namespace {

/// Parse an expression and render it back (canonical, fully parenthesised).
std::string round1(std::string_view src) {
  return print_expr(*parse_cspm_expression(src));
}

TEST(CspmParser, PrefixBindsTighterThanChoice) {
  EXPECT_EQ(round1("a -> P [] b -> Q"), "(a -> P) [] (b -> Q)");
  // Check associativity shape explicitly via the AST.
  const ExprPtr e = parse_cspm_expression("a -> P [] b -> Q");
  ASSERT_EQ(e->kind, ExprKind::ExtChoice);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::Prefix);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::Prefix);
}

TEST(CspmParser, PrefixIsRightAssociative) {
  const ExprPtr e = parse_cspm_expression("a -> b -> STOP");
  ASSERT_EQ(e->kind, ExprKind::Prefix);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::Prefix);
}

TEST(CspmParser, ChoiceBindsTighterThanParallel) {
  const ExprPtr e = parse_cspm_expression("P [] Q ||| R");
  ASSERT_EQ(e->kind, ExprKind::Interleave);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::ExtChoice);
}

TEST(CspmParser, SequenceBindsTighterThanHiding) {
  const ExprPtr e = parse_cspm_expression("P ; Q \\ {a}");
  ASSERT_EQ(e->kind, ExprKind::Hide);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::Seq);
}

TEST(CspmParser, CommunicationFields) {
  const ExprPtr e = parse_cspm_expression("c?x:S!y.0 -> STOP");
  ASSERT_EQ(e->kind, ExprKind::Prefix);
  // Head is c; fields are ?x:S and !(y.0).
  EXPECT_EQ(e->head->kind, ExprKind::Name);
  ASSERT_EQ(e->fields.size(), 2u);
  EXPECT_EQ(e->fields[0].kind, CommField::Kind::Input);
  EXPECT_EQ(e->fields[0].var, "x");
  ASSERT_NE(e->fields[0].restriction, nullptr);
  EXPECT_EQ(e->fields[1].kind, CommField::Kind::Output);
}

TEST(CspmParser, DottedHeadInPrefix) {
  const ExprPtr e = parse_cspm_expression("send.reqSw -> STOP");
  ASSERT_EQ(e->kind, ExprKind::Prefix);
  EXPECT_EQ(e->head->kind, ExprKind::Dot);
}

TEST(CspmParser, SyncParallelCarriesSyncSet) {
  const ExprPtr e = parse_cspm_expression("P [| {| c |} |] Q");
  ASSERT_EQ(e->kind, ExprKind::SyncPar);
  ASSERT_EQ(e->kids.size(), 3u);
  EXPECT_EQ(e->kids[2]->kind, ExprKind::ChanSet);
}

TEST(CspmParser, AlphabetisedParallel) {
  const ExprPtr e = parse_cspm_expression("P [ {|a|} || {|b|} ] Q");
  ASSERT_EQ(e->kind, ExprKind::AlphaPar);
  ASSERT_EQ(e->kids.size(), 4u);
}

TEST(CspmParser, RenamingPostfix) {
  const ExprPtr e = parse_cspm_expression("P [[ a <- b, c.0 <- d.1 ]]");
  ASSERT_EQ(e->kind, ExprKind::Rename);
  EXPECT_EQ(e->renames.size(), 2u);
}

TEST(CspmParser, ReplicatedExternalChoice) {
  const ExprPtr e = parse_cspm_expression("[] x:{0..2} @ c!x -> STOP");
  ASSERT_EQ(e->kind, ExprKind::Replicated);
  EXPECT_EQ(e->rep_op, ExprKind::ExtChoice);
  ASSERT_EQ(e->gens.size(), 1u);
  EXPECT_EQ(e->gens[0].var, "x");
}

TEST(CspmParser, ReplicatedSyncParallel) {
  const ExprPtr e = parse_cspm_expression("[| {|m|} |] i:{0..1} @ N(i)");
  ASSERT_EQ(e->kind, ExprKind::Replicated);
  EXPECT_EQ(e->rep_op, ExprKind::SyncPar);
  ASSERT_EQ(e->kids.size(), 2u);  // body + sync
}

TEST(CspmParser, GuardExpression) {
  const ExprPtr e = parse_cspm_expression("x > 0 & c!x -> STOP");
  ASSERT_EQ(e->kind, ExprKind::Guard);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::BinOp);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::Prefix);
}

TEST(CspmParser, IfThenElse) {
  const ExprPtr e = parse_cspm_expression("if x == 0 then STOP else SKIP");
  ASSERT_EQ(e->kind, ExprKind::If);
  ASSERT_EQ(e->kids.size(), 3u);
}

TEST(CspmParser, LetWithin) {
  const ExprPtr e =
      parse_cspm_expression("let n = 3 f(x) = x + n within f(2)");
  ASSERT_EQ(e->kind, ExprKind::Let);
  ASSERT_EQ(e->bindings.size(), 2u);
  EXPECT_EQ(e->bindings[0].name, "n");
  EXPECT_EQ(e->bindings[1].params.size(), 1u);
}

TEST(CspmParser, ArithmeticPrecedence) {
  EXPECT_EQ(round1("1 + 2 * 3"), "1 + (2 * 3)");
  EXPECT_EQ(round1("(1 + 2) * 3"), "(1 + 2) * 3");
}

TEST(CspmParser, ChannelDeclarations) {
  const Script s = parse_cspm(
      "channel done\n"
      "channel send, rec : Msg\n"
      "channel data : Msg.{0..3}\n");
  ASSERT_EQ(s.channels.size(), 3u);
  EXPECT_TRUE(s.channels[0].field_types.empty());
  EXPECT_EQ(s.channels[1].names, (std::vector<std::string>{"send", "rec"}));
  EXPECT_EQ(s.channels[2].field_types.size(), 2u);
}

TEST(CspmParser, DatatypeDeclaration) {
  const Script s = parse_cspm("datatype Msg = reqSw | rptSw | reqApp | rptUpd");
  ASSERT_EQ(s.datatypes.size(), 1u);
  EXPECT_EQ(s.datatypes[0].constructors.size(), 4u);
}

TEST(CspmParser, NametypeDeclaration) {
  const Script s = parse_cspm("nametype Small = {0..7}");
  ASSERT_EQ(s.nametypes.size(), 1u);
  EXPECT_EQ(s.nametypes[0].type->kind, ExprKind::SetRange);
}

TEST(CspmParser, DefinitionsWithParams) {
  const Script s = parse_cspm("P = a -> P\nCNT(n) = n > 0 & tick -> CNT(n - 1)");
  ASSERT_EQ(s.definitions.size(), 2u);
  EXPECT_TRUE(s.definitions[0].params.empty());
  EXPECT_EQ(s.definitions[1].params, (std::vector<std::string>{"n"}));
}

TEST(CspmParser, RefinementAssertions) {
  const Script s = parse_cspm(
      "assert SPEC [T= IMPL\n"
      "assert SPEC [F= IMPL\n"
      "assert SPEC [FD= IMPL\n");
  ASSERT_EQ(s.assertions.size(), 3u);
  EXPECT_EQ(s.assertions[0].kind, AssertionAst::Kind::RefinesT);
  EXPECT_EQ(s.assertions[1].kind, AssertionAst::Kind::RefinesF);
  EXPECT_EQ(s.assertions[2].kind, AssertionAst::Kind::RefinesFD);
}

TEST(CspmParser, PropertyAssertions) {
  const Script s = parse_cspm(
      "assert P :[deadlock free [F]]\n"
      "assert P :[divergence free]\n"
      "assert P :[deterministic [FD]]\n");
  ASSERT_EQ(s.assertions.size(), 3u);
  EXPECT_EQ(s.assertions[0].kind, AssertionAst::Kind::DeadlockFree);
  EXPECT_EQ(s.assertions[1].kind, AssertionAst::Kind::DivergenceFree);
  EXPECT_EQ(s.assertions[2].kind, AssertionAst::Kind::Deterministic);
}

TEST(CspmParser, ErrorsCarryLocation) {
  try {
    parse_cspm("P = \n  ->");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line, 2);
  }
}

TEST(CspmParser, DanglingCommFieldsRejected) {
  EXPECT_THROW(parse_cspm_expression("c?x"), ParseError);
}

TEST(CspmParser, PrinterRoundTripIsStable) {
  const char* samples[] = {
      "a -> (P [] Q)",
      "(P [] Q) ||| (R |~| S)",
      "c?x!0 -> (P ; SKIP)",
      "P [| {| c, d |} |] Q",
      "[] x:{0..2} @ c!x -> STOP",
      "if x == 0 then STOP else (a -> SKIP)",
      "P [[ a <- b ]] \\ {| c |}",
  };
  for (const char* src : samples) {
    const std::string once = print_expr(*parse_cspm_expression(src));
    const std::string twice = print_expr(*parse_cspm_expression(once));
    EXPECT_EQ(once, twice) << "source: " << src;
  }
}

TEST(CspmParser, FullScriptRoundTrip) {
  const std::string src =
      "datatype Msg = reqSw | rptSw\n"
      "channel send, rec : Msg\n"
      "SP02 = send.reqSw -> rec.rptSw -> SP02\n"
      "assert SP02 [T= SP02\n";
  const std::string once = print_script(parse_cspm(src));
  const std::string twice = print_script(parse_cspm(once));
  EXPECT_EQ(once, twice);
}


TEST(CspmParser, SetComprehension) {
  const ExprPtr e = parse_cspm_expression("{x + 1 | x <- S, x > 0}");
  ASSERT_EQ(e->kind, ExprKind::SetComp);
  EXPECT_EQ(e->gens.size(), 1u);
  EXPECT_EQ(e->kids.size(), 2u);  // element + one condition
  EXPECT_EQ(round1("{x | x <- S}"), "{x | x <- S}");
}

TEST(CspmParser, SetComprehensionNeedsGenerator) {
  EXPECT_THROW(parse_cspm_expression("{x | x > 0}"), ParseError);
}

TEST(CspmParser, InterruptAndSlidingParse) {
  const ExprPtr e = parse_cspm_expression("P /\\ Q [> R");
  // Left-associative at the same level: (P /\ Q) [> R.
  ASSERT_EQ(e->kind, ExprKind::SlidingE);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::InterruptE);
  EXPECT_EQ(round1("P /\\ Q"), "P /\\ Q");
}

}  // namespace
}  // namespace ecucsp::cspm
