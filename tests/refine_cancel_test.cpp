// Cooperative cancellation inside the normalisation/minimisation passes.
//
// The verify scheduler's per-check timeouts only work if every long pass
// polls its CancelToken: compile_lts always has, and this PR threads the
// token through normalize(), minimize_strong() and compress() too. These
// tests build synthetic LTSes large enough that each pass runs for many
// milliseconds and assert that (a) a pre-expired deadline aborts at entry,
// (b) a short deadline aborts mid-run, and (c) a cross-thread
// request_cancel() lands.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/event.hpp"
#include "refine/lts.hpp"
#include "refine/minimize.hpp"
#include "refine/normalize.hpp"

namespace ecucsp {
namespace {

constexpr EventId kA = FIRST_USER_EVENT;
constexpr EventId kB = FIRST_USER_EVENT + 1;

/// A long chain with alternating events and a tau sprinkled at every third
/// state — enough states that normalisation takes well over any deadline
/// used below, with a poll every 64 subset expansions.
Lts big_chain(std::size_t states) {
  Lts lts;
  lts.root = 0;
  lts.succ.resize(states);
  for (std::size_t s = 0; s + 1 < states; ++s) {
    const auto t = static_cast<StateId>(s + 1);
    lts.succ[s].push_back({s % 3 == 2 ? TAU : (s % 2 == 0 ? kA : kB), t});
    if (s % 5 == 0) lts.succ[s].push_back({kB, t});
  }
  return lts;
}

TEST(RefineCancel, ExpiredDeadlineAbortsNormalizeAtEntry) {
  const Lts lts = big_chain(1'000);
  CancelToken token;
  token.set_deadline(CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_THROW(normalize(lts, false, &token), CheckCancelled);
}

TEST(RefineCancel, ShortDeadlineAbortsNormalizeMidRun) {
  // ~2M states: far more than any machine normalises in 5ms, so the
  // deadline must fire from inside the subset construction loop.
  const Lts lts = big_chain(2'000'000);
  CancelToken token;
  token.set_timeout(std::chrono::milliseconds(5));
  try {
    normalize(lts, true, &token);
    FAIL() << "normalize outran a 5ms deadline on a 2M-state LTS";
  } catch (const CheckCancelled& e) {
    EXPECT_EQ(e.reason(), CheckCancelled::Reason::DeadlineExceeded);
  }
}

TEST(RefineCancel, CrossThreadCancelAbortsMinimizeMidRun) {
  const Lts lts = big_chain(2'000'000);
  CancelToken token;
  std::thread killer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.request_cancel();
  });
  try {
    minimize_strong(lts, &token);
    // Partition refinement may legitimately finish before the 2ms nap on
    // a fast machine; only a thrown CheckCancelled is checked for reason.
  } catch (const CheckCancelled& e) {
    EXPECT_EQ(e.reason(), CheckCancelled::Reason::Cancelled);
  }
  killer.join();
  // Whether or not the pass finished first, the flag must now be set and
  // any further pass must abort immediately.
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_THROW(minimize_strong(lts, &token), CheckCancelled);
}

TEST(RefineCancel, CompressForwardsTheToken) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  // A 200k-event prefix chain: compile_lts alone takes long enough for a
  // 1ms deadline to fire inside compress().
  std::vector<EventId> seq;
  seq.reserve(200'000);
  for (std::size_t i = 0; i < 200'000; ++i) seq.push_back(i % 2 ? a : b);
  const ProcessRef p = ctx.prefix_seq(seq, ctx.stop());
  CancelToken token;
  token.set_timeout(std::chrono::milliseconds(1));
  EXPECT_THROW(compress(ctx, p, "big", 1u << 22, &token), CheckCancelled);
}

TEST(RefineCancel, NoTokenRunsToCompletion) {
  const Lts lts = big_chain(2'000);
  const NormLts norm = normalize(lts, false, nullptr);
  EXPECT_GT(norm.nodes.size(), 0u);
  const MinimizeResult min = minimize_strong(lts, nullptr);
  EXPECT_GT(min.lts.state_count(), 0u);
}

}  // namespace
}  // namespace ecucsp
