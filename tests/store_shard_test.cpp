// Sharded persistent store: shards > 1 split the disk tier into
// shard-NN/ subtrees by a deterministic function of the key digest, so
// independent daemon workers (or processes) contend on different
// directories — while every digest, blob and verdict stays byte-identical
// to the single-directory layout. Pinned here:
//
//   * shard_of() is pure, stable, in range, and identity for shards == 1;
//   * shards == 1 preserves the legacy <dir>/objects layout exactly;
//   * shards > 1 place each object under the shard shard_of() names;
//   * a fresh process opening the directory with the same shard count
//     finds every object (cold-restart hits);
//   * scan_stored_counterexamples harvests attacks from BOTH layouts;
//   * trim() spreads the byte budget across shards.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "refine/check.hpp"
#include "refine/lts.hpp"
#include "store/cache.hpp"

namespace ecucsp::store {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    dir_ = fs::temp_directory_path() /
           ("ecucsp_shard_test_" + std::string(tag) + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

/// spec = a -> STOP, impl = a -> b -> STOP: the refinement FAILS with the
/// attack trace <a, b> — exactly what the scan harvests.
struct Terms {
  Context ctx;
  ProcessRef spec;
  ProcessRef impl;

  Terms() {
    const EventId a = ctx.event(ctx.channel("a"));
    const EventId b = ctx.event(ctx.channel("b"));
    spec = ctx.prefix(a, ctx.stop());
    impl = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  }
};

fs::path sharded_object_path(const fs::path& dir, const Digest& key,
                             unsigned shards) {
  const std::string hex = key.hex();
  fs::path root = dir;
  if (shards > 1) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "shard-%02u",
                  VerificationCache::shard_of(key, shards));
    root /= buf;
  }
  return root / "objects" / hex.substr(0, 2) / hex.substr(2);
}

TEST(ShardMap, DeterministicInRangeAndIdentityForOne) {
  for (std::uint64_t hi : {0ull, 1ull, 7ull, 0xdeadbeefull, ~0ull}) {
    const Digest key{hi, ~hi};
    EXPECT_EQ(VerificationCache::shard_of(key, 1), 0u);
    for (unsigned shards : {2u, 4u, 16u}) {
      const unsigned s = VerificationCache::shard_of(key, shards);
      EXPECT_LT(s, shards);
      // Pure function of the digest bits: same answer every time, in any
      // process — this is what makes the on-disk layout portable.
      EXPECT_EQ(s, VerificationCache::shard_of(key, shards));
    }
  }
  // The mapping actually spreads: 16 distinct digests over 4 shards must
  // touch more than one shard.
  unsigned touched = 0;
  bool seen[4] = {};
  for (std::uint64_t i = 0; i < 16; ++i) {
    const unsigned s = VerificationCache::shard_of(Digest{i, 0}, 4);
    if (!seen[s]) {
      seen[s] = true;
      ++touched;
    }
  }
  EXPECT_GT(touched, 1u);
}

TEST(ShardedCache, SingleShardKeepsLegacyLayout) {
  TempDir tmp("legacy");
  Terms t;
  VerificationCache cache(tmp.path(), 1);
  EXPECT_EQ(cache.shard_count(), 1u);
  cache.store_lts(t.ctx, t.impl, 1 << 16, compile_lts(t.ctx, t.impl));

  const Digest key = VerificationCache::lts_key(t.ctx, t.impl, 1 << 16);
  EXPECT_TRUE(fs::exists(sharded_object_path(tmp.path(), key, 1)));
  for (const auto& e : fs::directory_iterator(tmp.path())) {
    EXPECT_NE(e.path().filename().string().substr(0, 6), "shard-")
        << "one shard must not invent shard directories";
  }
}

TEST(ShardedCache, ObjectsLandInTheShardTheDigestNames) {
  TempDir tmp("layout");
  constexpr unsigned kShards = 4;
  Terms t;
  VerificationCache cache(tmp.path(), kShards);
  EXPECT_EQ(cache.shard_count(), kShards);

  // Different state budgets give different keys, scattering objects over
  // the shards; every one must land exactly where shard_of() points.
  const Lts lts = compile_lts(t.ctx, t.impl);
  for (unsigned bit = 10; bit < 18; ++bit) {
    cache.store_lts(t.ctx, t.impl, 1u << bit, lts);
    const Digest key = VerificationCache::lts_key(t.ctx, t.impl, 1u << bit);
    EXPECT_TRUE(fs::exists(sharded_object_path(tmp.path(), key, kShards)))
        << "budget 2^" << bit << " missing from shard "
        << VerificationCache::shard_of(key, kShards);
  }
}

TEST(ShardedCache, FreshProcessWithSameShardCountFindsEverything) {
  TempDir tmp("reopen");
  Terms t;
  const CheckResult res =
      check_refinement(t.ctx, t.spec, t.impl, Model::Traces, 1 << 16);
  ASSERT_FALSE(res.passed);
  {
    VerificationCache writer(tmp.path(), 4);
    writer.store_check(t.ctx, t.spec, t.impl, CheckOp::Refinement,
                       Model::Traces, 1 << 16, res);
    writer.store_lts(t.ctx, t.impl, 1 << 16, compile_lts(t.ctx, t.impl));
  }

  // Simulated restart: a brand-new instance (cold memory tier) over the
  // same directory and shard count serves both objects from disk.
  VerificationCache reader(tmp.path(), 4);
  Terms u;
  const auto verdict = reader.lookup_check(
      u.ctx, u.spec, u.impl, CheckOp::Refinement, Model::Traces, 1 << 16);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(verdict->passed);
  ASSERT_TRUE(verdict->counterexample.has_value());
  EXPECT_TRUE(reader.lookup_lts(u.ctx, u.impl, 1 << 16).has_value());
  EXPECT_EQ(reader.stats().disk_hits.load(), 2u);
}

TEST(ShardedCache, ScanHarvestsCounterexamplesFromBothLayouts) {
  Terms t;
  const CheckResult res =
      check_refinement(t.ctx, t.spec, t.impl, Model::Traces, 1 << 16);
  ASSERT_FALSE(res.passed);

  for (const unsigned shards : {1u, 4u}) {
    TempDir tmp(shards == 1 ? "scan1" : "scan4");
    VerificationCache cache(tmp.path(), shards);
    cache.store_check(t.ctx, t.spec, t.impl, CheckOp::Refinement,
                      Model::Traces, 1 << 16, res);

    Context fresh_ctx;
    (void)fresh_ctx.event(fresh_ctx.channel("a"));
    (void)fresh_ctx.event(fresh_ctx.channel("b"));
    const auto attacks = scan_stored_counterexamples(tmp.path(), fresh_ctx);
    ASSERT_EQ(attacks.size(), 1u) << shards << " shard(s)";
    EXPECT_EQ(attacks[0], (std::vector<std::string>{"a", "b"}))
        << "the attack step must survive the " << shards << "-shard layout";
  }
}

TEST(ShardedCache, TrimSpreadsTheBudgetAcrossShards) {
  TempDir tmp("trim");
  Terms t;
  VerificationCache cache(tmp.path(), 4);
  const Lts lts = compile_lts(t.ctx, t.impl);
  for (unsigned bit = 10; bit < 18; ++bit) {
    cache.store_lts(t.ctx, t.impl, 1u << bit, lts);
  }
  // Budget 0: every shard evicts everything it holds.
  EXPECT_EQ(cache.trim(0), 8u);
  for (const auto& e : fs::recursive_directory_iterator(tmp.path())) {
    EXPECT_FALSE(e.is_regular_file()) << "left behind: " << e.path();
  }
}

}  // namespace
}  // namespace ecucsp::store
