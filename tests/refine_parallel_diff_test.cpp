// Differential stress tests for the parallel in-check refinement engine.
//
// The wave engine's whole contract is that --threads is unobservable: for
// any term pair and any model, verdicts, counterexamples (kind, trace,
// event, acceptance, rendered text), vacuity flags and the deterministic
// stats must be byte-identical at 1/2/4/8 threads. These tests drive seeded
// random CSP term pairs (the refine_props_test generator) through every
// model and every unary check at each thread count and compare against the
// threads=1 reference field by field.
//
// Also here: the regression tests for canonical counterexample selection —
// shortest product-BFS depth first, ties between same-wave violations
// broken by lexicographic trace order then event id — pinned on terms with
// multiple minimal-length failures, where a scan-order-dependent engine
// would be free to report either one.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "refine/check.hpp"

namespace ecucsp {
namespace {

constexpr unsigned kThreadCounts[] = {2, 4, 8};

// Same shape as the refine_props_test generator: a seeded PRNG over a
// four-event alphabet, depth-bounded, covering every process constructor.
struct TermGen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;

  TermGen(Context& c, unsigned seed) : ctx(c), rng(seed) {
    for (const char* name : {"a", "b", "c", "d"}) {
      alphabet.push_back(ctx.event(ctx.channel(name)));
    }
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  ProcessRef process(int depth) {
    const int max_pick = depth <= 0 ? 2 : 10;
    switch (std::uniform_int_distribution<int>(0, max_pick)(rng)) {
      case 0:
        return ctx.stop();
      case 1:
        return ctx.prefix(event(),
                          depth <= 0 ? ctx.stop() : process(depth - 1));
      case 2:
        return ctx.skip();
      case 3:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 5:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 6:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 7:
        return ctx.hide(process(depth - 1), event_set());
      case 8: {
        const EventId from = event();
        const EventId to = event();
        return ctx.rename(process(depth - 1), {{from, to}});
      }
      case 9:
        return ctx.sliding(process(depth - 1), process(depth - 1));
      default:
        return ctx.seq(process(depth - 1), process(depth - 1));
    }
  }
};

/// Field-by-field equality of two results, including the rendered
/// counterexample text — "byte-identical" taken literally.
void expect_identical(const Context& ctx, const CheckResult& ref,
                      const CheckResult& got, const std::string& where) {
  EXPECT_EQ(ref.passed, got.passed) << where;
  EXPECT_EQ(ref.vacuous, got.vacuous) << where;
  EXPECT_EQ(ref.stats.impl_states, got.stats.impl_states) << where;
  EXPECT_EQ(ref.stats.impl_transitions, got.stats.impl_transitions) << where;
  EXPECT_EQ(ref.stats.spec_states, got.stats.spec_states) << where;
  EXPECT_EQ(ref.stats.spec_norm_nodes, got.stats.spec_norm_nodes) << where;
  EXPECT_EQ(ref.stats.product_states, got.stats.product_states) << where;
  ASSERT_EQ(ref.counterexample.has_value(), got.counterexample.has_value())
      << where;
  if (ref.counterexample) {
    const Counterexample& r = *ref.counterexample;
    const Counterexample& g = *got.counterexample;
    EXPECT_EQ(r.kind, g.kind) << where;
    EXPECT_EQ(r.trace, g.trace) << where;
    EXPECT_EQ(r.event, g.event) << where;
    EXPECT_EQ(r.impl_acceptance, g.impl_acceptance) << where;
    EXPECT_EQ(r.describe(ctx), g.describe(ctx)) << where;
  }
}

class ParallelDiff : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelDiff, RefinementIdenticalAtEveryThreadCount) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < 3; ++i) {
    const ProcessRef spec = gen.process(3);
    const ProcessRef impl = gen.process(3);
    for (const Model m :
         {Model::Traces, Model::Failures, Model::FailuresDivergences}) {
      const CheckResult ref =
          check_refinement(ctx, spec, impl, m, 1u << 22, nullptr, 1);
      for (const unsigned t : kThreadCounts) {
        const CheckResult got =
            check_refinement(ctx, spec, impl, m, 1u << 22, nullptr, t);
        expect_identical(ctx, ref, got,
                         "seed=" + std::to_string(GetParam()) +
                             " term=" + std::to_string(i) +
                             " model=" + to_string(m) +
                             " threads=" + std::to_string(t));
      }
    }
  }
}

TEST_P(ParallelDiff, UnaryChecksIdenticalAtEveryThreadCount) {
  Context ctx;
  TermGen gen(ctx, GetParam() + 1000);
  for (int i = 0; i < 3; ++i) {
    const ProcessRef p = gen.process(3);
    const auto run = [&](unsigned t) {
      return std::vector<CheckResult>{
          check_deadlock_free(ctx, p, 1u << 22, nullptr, t),
          check_divergence_free(ctx, p, 1u << 22, nullptr, t),
          check_deterministic(ctx, p, 1u << 22, nullptr, t)};
    };
    const std::vector<CheckResult> ref = run(1);
    for (const unsigned t : kThreadCounts) {
      const std::vector<CheckResult> got = run(t);
      for (std::size_t k = 0; k < ref.size(); ++k) {
        expect_identical(ctx, ref[k], got[k],
                         "seed=" + std::to_string(GetParam()) +
                             " term=" + std::to_string(i) +
                             " check=" + std::to_string(k) +
                             " threads=" + std::to_string(t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDiff, ::testing::Range(0u, 12u));

// --- canonical counterexample selection regressions -------------------------

class CanonicalCx : public ::testing::Test {
 protected:
  CanonicalCx() {
    a = ctx.event(ctx.channel("a"));
    b = ctx.event(ctx.channel("b"));
    c = ctx.event(ctx.channel("c"));
  }
  Context ctx;
  EventId a, b, c;
};

TEST_F(CanonicalCx, SameStateTieBreaksOnEventIdNotScanOrder) {
  // SPEC = a -> a -> STOP; IMPL = a -> (c -> STOP [] b -> STOP).
  // After <a> both branches violate in the same wave. The implementation
  // lists c first, so a scan-order engine would report c; the canonical
  // pick is the lexicographically smaller event b — at every thread count.
  const ProcessRef spec = ctx.prefix(a, ctx.prefix(a, ctx.stop()));
  const ProcessRef impl = ctx.prefix(
      a, ctx.ext_choice(ctx.prefix(c, ctx.stop()), ctx.prefix(b, ctx.stop())));
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    const CheckResult r =
        check_refinement(ctx, spec, impl, Model::Traces, 1u << 22, nullptr, t);
    ASSERT_FALSE(r.passed) << "threads=" << t;
    ASSERT_TRUE(r.counterexample) << "threads=" << t;
    EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::TraceViolation);
    EXPECT_EQ(r.counterexample->trace, std::vector<EventId>{a})
        << "threads=" << t;
    EXPECT_EQ(r.counterexample->event, b) << "threads=" << t;
  }
}

TEST_F(CanonicalCx, MultipleMinimalLengthFailuresPickLexSmallestTrace) {
  // SPEC = (a -> a -> STOP) [] (b -> a -> STOP);
  // IMPL = (a -> c -> STOP) [] (b -> b -> STOP).
  // Two violations at minimal length 1: after <a> the event c, after <b>
  // the event b. Same wave, different product states — the shortest-trace
  // guarantee alone cannot separate them. The canonical pick is the
  // lexicographically smaller trace <a>, hence event c.
  const ProcessRef spec =
      ctx.ext_choice(ctx.prefix(a, ctx.prefix(a, ctx.stop())),
                     ctx.prefix(b, ctx.prefix(a, ctx.stop())));
  const ProcessRef impl =
      ctx.ext_choice(ctx.prefix(a, ctx.prefix(c, ctx.stop())),
                     ctx.prefix(b, ctx.prefix(b, ctx.stop())));
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    const CheckResult r =
        check_refinement(ctx, spec, impl, Model::Traces, 1u << 22, nullptr, t);
    ASSERT_FALSE(r.passed) << "threads=" << t;
    ASSERT_TRUE(r.counterexample) << "threads=" << t;
    EXPECT_EQ(r.counterexample->trace, std::vector<EventId>{a})
        << "threads=" << t;
    EXPECT_EQ(r.counterexample->event, c) << "threads=" << t;
  }
}

TEST_F(CanonicalCx, ShortestViolationWinsOverDeeperOnes) {
  // SPEC = b -> a -> a -> STOP | IMPL = b -> a -> (b -> STOP [] a -> c -> STOP):
  // a violation (b) at depth 2 and another (c) at depth 3 — the wave
  // engine must stop at the first violating wave and never report c.
  const ProcessRef spec =
      ctx.prefix(b, ctx.prefix(a, ctx.prefix(a, ctx.stop())));
  const ProcessRef impl = ctx.prefix(
      b, ctx.prefix(a, ctx.ext_choice(
                           ctx.prefix(b, ctx.stop()),
                           ctx.prefix(a, ctx.prefix(c, ctx.stop())))));
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    const CheckResult r =
        check_refinement(ctx, spec, impl, Model::Traces, 1u << 22, nullptr, t);
    ASSERT_FALSE(r.passed) << "threads=" << t;
    const std::vector<EventId> want{b, a};
    EXPECT_EQ(r.counterexample->trace, want) << "threads=" << t;
    EXPECT_EQ(r.counterexample->event, b) << "threads=" << t;
  }
}

// --- targeted cross-thread cases the random generator may not hit ----------

TEST_F(CanonicalCx, VacuousPassIsFlaggedAtEveryThreadCount) {
  // SPEC = a -> STOP constrains {a}; IMPL = STOP never reaches it. The
  // vacuity verdict must not depend on the thread count (the PR 3 flag is
  // computed after the parallel sweep, from deterministic inputs).
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.stop();
  for (const unsigned t : {1u, 4u, 8u}) {
    const CheckResult r = check_refinement(ctx, spec, impl, Model::Traces,
                                           1u << 22, nullptr, t);
    EXPECT_TRUE(r.passed) << "threads=" << t;
    EXPECT_TRUE(r.vacuous) << "threads=" << t;
  }
}

TEST_F(CanonicalCx, FdDivergenceViolationIdenticalAcrossThreads) {
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef spec = ctx.prefix(b, ctx.stop());
  const ProcessRef impl =
      ctx.prefix(b, ctx.hide(ctx.var("T"), EventSet{a}));
  const CheckResult ref = check_refinement(
      ctx, spec, impl, Model::FailuresDivergences, 1u << 22, nullptr, 1);
  ASSERT_FALSE(ref.passed);
  ASSERT_EQ(ref.counterexample->kind,
            Counterexample::Kind::DivergenceViolation);
  for (const unsigned t : {2u, 4u, 8u}) {
    const CheckResult got = check_refinement(
        ctx, spec, impl, Model::FailuresDivergences, 1u << 22, nullptr, t);
    expect_identical(ctx, ref, got, "threads=" + std::to_string(t));
  }
}

TEST_F(CanonicalCx, AmbientThreadSettingIsPickedUpByDefaultArgument) {
  // threads=0 defers to the ambient setting; installing 8 via the scoped
  // guard must give the same result as passing 8 explicitly (and as 1).
  const ProcessRef spec = ctx.prefix(a, ctx.prefix(a, ctx.stop()));
  const ProcessRef impl = ctx.prefix(
      a, ctx.ext_choice(ctx.prefix(c, ctx.stop()), ctx.prefix(b, ctx.stop())));
  const CheckResult ref =
      check_refinement(ctx, spec, impl, Model::Traces, 1u << 22, nullptr, 1);
  {
    const ScopedCheckThreads ambient(8);
    EXPECT_EQ(check_threads(), 8u);
    const CheckResult got =
        check_refinement(ctx, spec, impl, Model::Traces);  // threads = 0
    expect_identical(ctx, ref, got, "ambient=8");
  }
  EXPECT_EQ(check_threads(), 1u);  // restored
}

}  // namespace
}  // namespace ecucsp
