#include <gtest/gtest.h>

#include "translate/stencil.hpp"

namespace ecucsp::stencil {
namespace {

TEST(Stencil, LiteralTextPassesThrough) {
  EXPECT_EQ(Template("plain text").render({}), "plain text");
}

TEST(Stencil, SimpleSubstitution) {
  EXPECT_EQ(Template("channel $name$ : $type$")
                .render({{"name", std::string("send")},
                         {"type", std::string("Msg")}}),
            "channel send : Msg");
}

TEST(Stencil, MissingAttributeRendersEmpty) {
  EXPECT_EQ(Template("[$gone$]").render({}), "[]");
}

TEST(Stencil, ListWithSeparator) {
  EXPECT_EQ(Template("datatype M = $ctors; separator=\" | \"$")
                .render({{"ctors", std::vector<std::string>{"a", "b", "c"}}}),
            "datatype M = a | b | c");
}

TEST(Stencil, ListWithoutSeparatorConcatenates) {
  EXPECT_EQ(Template("$xs$").render(
                {{"xs", std::vector<std::string>{"1", "2", "3"}}}),
            "123");
}

TEST(Stencil, EscapedDollar) {
  EXPECT_EQ(Template("cost: $$5 and $n$").render({{"n", std::string("x")}}),
            "cost: $5 and x");
}

TEST(Stencil, MultiplePlaceholdersAndReuse) {
  Template t("$a$-$b$-$a$");
  EXPECT_EQ(t.render({{"a", std::string("x")}, {"b", std::string("y")}}),
            "x-y-x");
  EXPECT_EQ(t.placeholders(),
            (std::vector<std::string>{"a", "b", "a"}));
}

TEST(Stencil, UnterminatedPlaceholderThrows) {
  EXPECT_THROW(Template("oops $name"), TemplateError);
}

TEST(Stencil, EmptyPlaceholderThrows) {
  EXPECT_THROW(Template("$$$ $"), TemplateError);  // "$$" ok, then "$ $" empty
}

TEST(Stencil, UnknownOptionThrows) {
  EXPECT_THROW(Template("$xs; frobnicate=\"z\"$"), TemplateError);
}

TEST(Stencil, UnquotedSeparatorThrows) {
  EXPECT_THROW(Template("$xs; separator=,$"), TemplateError);
}

TEST(Stencil, GroupLookup) {
  TemplateGroup g;
  g.define("def", "$name$ = $body$");
  EXPECT_TRUE(g.contains("def"));
  EXPECT_FALSE(g.contains("nope"));
  EXPECT_EQ(g.render("def", {{"name", std::string("P")},
                             {"body", std::string("STOP")}}),
            "P = STOP");
  EXPECT_THROW(g.render("nope", {}), TemplateError);
}

TEST(Stencil, GroupRedefinitionReplaces) {
  TemplateGroup g;
  g.define("t", "one");
  g.define("t", "two");
  EXPECT_EQ(g.render("t", {}), "two");
}

}  // namespace
}  // namespace ecucsp::stencil
