// Structural digest tests: the properties the verification store's keys
// depend on.
//
// The store is only sound if a term's digest is a pure function of the
// *model* — not of the Context it was built in, the order channels were
// interned, the order the arena allocated nodes, or what the digester
// happened to hash earlier. Each of those accidents has a dedicated
// regression here, because each one produced (or would produce) silent
// cache misses: same model, different key, cold run forever.
#include <gtest/gtest.h>

#include "core/context.hpp"
#include "store/digest.hpp"
#include "store/term_digest.hpp"

namespace ecucsp::store {
namespace {

// --- Digest / Hasher primitives ---------------------------------------------

TEST(Digest, HexRoundTrip) {
  const Digest d = digest_bytes("hello");
  EXPECT_EQ(d.hex().size(), 32u);
  Digest back;
  ASSERT_TRUE(Digest::parse(d.hex(), back));
  EXPECT_EQ(d, back);
}

TEST(Digest, ParseRejectsMalformedInput) {
  Digest out;
  EXPECT_FALSE(Digest::parse("", out));
  EXPECT_FALSE(Digest::parse("abc", out));                                // short
  EXPECT_FALSE(Digest::parse(std::string(33, 'a'), out));                 // long
  EXPECT_FALSE(Digest::parse("g" + std::string(31, '0'), out));           // non-hex
  EXPECT_TRUE(Digest::parse(std::string(32, '0'), out));
  EXPECT_EQ(out, Digest{});
}

TEST(Digest, OrderingIsLexicographicOnLanes) {
  const Digest a{1, 99};
  const Digest b{2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(Digest({1, 0}) < Digest({1, 1}));
}

TEST(Digest, BytesAreDeterministicAndDiscriminating) {
  EXPECT_EQ(digest_bytes("model"), digest_bytes("model"));
  EXPECT_NE(digest_bytes("model"), digest_bytes("Model"));
  EXPECT_NE(digest_bytes(""), digest_bytes(std::string_view("\0", 1)));
}

TEST(Hasher, FramingPreventsConcatenationCollisions) {
  // "a","b" vs "ab": without length framing these would hash the same
  // byte stream.
  Hasher split, joined;
  split.str("a").str("b");
  joined.str("ab");
  EXPECT_NE(split.finish(), joined.finish());

  // The same integer fed at different widths must differ (tag bytes).
  Hasher narrow, wide;
  narrow.u8(7);
  wide.u64(7);
  EXPECT_NE(narrow.finish(), wide.finish());
}

// --- cross-Context stability -------------------------------------------------

/// a -> b -> STOP, built in a Context that interned `extra` channels first
/// so all the EventIds differ from a plainly-built Context.
Digest digest_ab(int extra_channels_first) {
  Context ctx;
  for (int i = 0; i < extra_channels_first; ++i) {
    ctx.event(ctx.channel("noise" + std::to_string(i)));
  }
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  return digest_term(ctx, ctx.prefix(a, ctx.prefix(b, ctx.stop())));
}

TEST(TermDigest, StableAcrossContextsAndInterningOrder) {
  const Digest base = digest_ab(0);
  EXPECT_EQ(base, digest_ab(0));
  EXPECT_EQ(base, digest_ab(5));  // EventIds shifted, names unchanged
}

TEST(TermDigest, DiscriminatesStructure) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  TermDigester d(ctx);
  EXPECT_NE(d.term(ctx.stop()), d.term(ctx.skip()));
  EXPECT_NE(d.term(ctx.prefix(a, ctx.stop())), d.term(ctx.prefix(b, ctx.stop())));
  EXPECT_NE(d.term(ctx.prefix(a, ctx.stop())), d.term(ctx.prefix(a, ctx.skip())));
  // Channel names, not ids: same id pattern with renamed channel differs.
  Context other;
  const EventId a2 = other.event(other.channel("aa"));
  EXPECT_NE(d.term(ctx.prefix(a, ctx.stop())),
            digest_term(other, other.prefix(a2, other.stop())));
}

TEST(TermDigest, EventDigestCoversFieldValues) {
  Context ctx;
  const ChannelId c = ctx.channel(
      "c", {{Value::integer(0), Value::integer(1), Value::integer(2)}});
  TermDigester d(ctx);
  EXPECT_NE(d.event(ctx.event(c, {Value::integer(0)})),
            d.event(ctx.event(c, {Value::integer(1)})));
  EXPECT_EQ(d.event(ctx.event(c, {Value::integer(2)})),
            d.event(ctx.event(c, {Value::integer(2)})));
}

// --- operand order of commutative operators ----------------------------------

TEST(TermDigest, ChoiceIsOperandOrderIndependent) {
  // Context::ext_choice/int_choice canonicalise operand order by arena
  // pointer — an allocation accident that varies run to run under ASLR.
  // The digest must collapse both orders, and must equal the digest of the
  // same choice built in a Context whose arena laid the nodes out the
  // other way around (forced here by building the operands in swapped
  // order so the hash-cons table hands back the same nodes either way).
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p = ctx.prefix(a, ctx.stop());
  const ProcessRef q = ctx.prefix(b, ctx.stop());
  TermDigester d(ctx);
  EXPECT_EQ(d.term(ctx.ext_choice(p, q)), d.term(ctx.ext_choice(q, p)));
  EXPECT_EQ(d.term(ctx.int_choice(p, q)), d.term(ctx.int_choice(q, p)));

  // Cross-Context with reversed construction order (reversed arena layout).
  Context rev;
  const EventId b2 = rev.event(rev.channel("b"));
  const EventId a2 = rev.event(rev.channel("a"));
  const ProcessRef q2 = rev.prefix(b2, rev.stop());
  const ProcessRef p2 = rev.prefix(a2, rev.stop());
  EXPECT_EQ(d.term(ctx.ext_choice(p, q)),
            digest_term(rev, rev.ext_choice(p2, q2)));
}

TEST(TermDigest, NonCommutativeOperatorsKeepOperandOrder) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p = ctx.prefix(a, ctx.skip());
  const ProcessRef q = ctx.prefix(b, ctx.skip());
  TermDigester d(ctx);
  EXPECT_NE(d.term(ctx.seq(p, q)), d.term(ctx.seq(q, p)));
  EXPECT_NE(d.term(ctx.interrupt(p, q)), d.term(ctx.interrupt(q, p)));
  EXPECT_NE(d.term(ctx.sliding(p, q)), d.term(ctx.sliding(q, p)));
}

TEST(TermDigest, ChoiceOfDistinctPairsStillDiscriminates) {
  // Order independence must not collapse genuinely different choices.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef pa = ctx.prefix(a, ctx.stop());
  const ProcessRef pb = ctx.prefix(b, ctx.stop());
  const ProcessRef pc = ctx.prefix(c, ctx.stop());
  TermDigester d(ctx);
  EXPECT_NE(d.term(ctx.ext_choice(pa, pb)), d.term(ctx.ext_choice(pa, pc)));
  EXPECT_NE(d.term(ctx.ext_choice(pa, pb)), d.term(ctx.int_choice(pa, pb)));
}

TEST(TermDigest, EventSetDigestIgnoresInterningOrder) {
  // Par alphabets are EventSets sorted by EventId — an interning accident.
  // Two Contexts that interned {a, b} in opposite orders must produce the
  // same alphabet digest.
  auto build = [](bool a_first) {
    Context ctx;
    EventId a, b;
    if (a_first) {
      a = ctx.event(ctx.channel("a"));
      b = ctx.event(ctx.channel("b"));
    } else {
      b = ctx.event(ctx.channel("b"));
      a = ctx.event(ctx.channel("a"));
    }
    const ProcessRef p = ctx.prefix(a, ctx.skip());
    const ProcessRef q = ctx.prefix(b, ctx.skip());
    return digest_term(ctx, ctx.par(p, EventSet{a, b}, q));
  };
  EXPECT_EQ(build(true), build(false));
}

// --- recursion ---------------------------------------------------------------

TEST(TermDigest, RecursionTerminatesAndDiscriminatesBodies) {
  auto recursive = [](std::string_view name, std::string_view chan) {
    Context ctx;
    const EventId e = ctx.event(ctx.channel(chan));
    ctx.define(name, [e, n = std::string(name)](Context& cx,
                                                std::span<const Value>) {
      return cx.prefix(e, cx.var(n));
    });
    return digest_term(ctx, ctx.var(name));
  };
  EXPECT_EQ(recursive("P", "a"), recursive("P", "a"));
  EXPECT_NE(recursive("P", "a"), recursive("P", "b"));  // body differs
  EXPECT_NE(recursive("P", "a"), recursive("Q", "a"));  // name differs
}

TEST(TermDigest, RecursionDistinguishesArguments) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  ctx.define("P", [a](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.stop());
  });
  TermDigester d(ctx);
  EXPECT_NE(d.term(ctx.var("P", {Value::integer(0)})),
            d.term(ctx.var("P", {Value::integer(1)})));
}

TEST(TermDigest, MemoIsHistoryIndependent) {
  // Digesting a subterm standalone first must not change what a later
  // digest of an enclosing recursive term sees: inside an open binder a
  // node that references the binder digests as a back-reference, and a
  // memoised standalone digest (which unfolds instead) must never be
  // substituted there.
  auto build = [](Context& ctx, EventId a, EventId b) {
    // P = a -> (b -> P [] a -> STOP); the inner choice references P.
    ctx.define("P", [a, b](Context& cx, std::span<const Value>) {
      return cx.prefix(
          a, cx.ext_choice(cx.prefix(b, cx.var("P")),
                           cx.prefix(a, cx.stop())));
    });
    return ctx.var("P");
  };

  Context warm_ctx;
  const EventId wa = warm_ctx.event(warm_ctx.channel("a"));
  const EventId wb = warm_ctx.event(warm_ctx.channel("b"));
  const ProcessRef warm_p = build(warm_ctx, wa, wb);
  TermDigester warm(warm_ctx);
  // Warm the memo with every node of the unfolded body *before* digesting
  // the recursive entry point.
  warm.term(warm_ctx.resolve(warm_p->var_name(), {}));
  const Digest warmed = warm.term(warm_p);

  Context cold_ctx;
  const EventId ca = cold_ctx.event(cold_ctx.channel("a"));
  const EventId cb = cold_ctx.event(cold_ctx.channel("b"));
  const Digest cold = digest_term(cold_ctx, build(cold_ctx, ca, cb));

  EXPECT_EQ(warmed, cold);
}

TEST(TermDigest, RepeatedDigestsAgreeWithFreshDigester) {
  // The memo is an optimisation only: a digester that has seen arbitrary
  // terms must agree with a one-shot digest for every term.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  ctx.define("LOOP", [a, b](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("LOOP")));
  });
  const ProcessRef terms[] = {
      ctx.stop(),
      ctx.prefix(a, ctx.stop()),
      ctx.ext_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.skip())),
      ctx.var("LOOP"),
      ctx.hide(ctx.var("LOOP"), EventSet{a}),
      ctx.par(ctx.prefix(a, ctx.skip()), EventSet{a}, ctx.prefix(a, ctx.stop())),
  };
  TermDigester shared(ctx);
  for (const ProcessRef t : terms) {
    EXPECT_EQ(shared.term(t), digest_term(ctx, t));
    EXPECT_EQ(shared.term(t), shared.term(t));
  }
}

TEST(TermDigest, HideAlphabetIsPartOfTheDigest) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  TermDigester d(ctx);
  EXPECT_NE(d.term(ctx.hide(p, EventSet{a})), d.term(ctx.hide(p, EventSet{b})));
  EXPECT_NE(d.term(ctx.hide(p, EventSet{a})), d.term(p));
}

TEST(TermDigest, RenameMapIsPartOfTheDigest) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef p = ctx.prefix(a, ctx.stop());
  TermDigester d(ctx);
  EXPECT_NE(d.term(ctx.rename(p, {{a, b}})), d.term(ctx.rename(p, {{a, c}})));
  EXPECT_EQ(d.term(ctx.rename(p, {{a, b}})), d.term(ctx.rename(p, {{a, b}})));
}

}  // namespace
}  // namespace ecucsp::store
