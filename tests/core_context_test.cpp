#include <gtest/gtest.h>

#include <algorithm>

#include "core/context.hpp"

namespace ecucsp {
namespace {

/// Sorted event names of all outgoing transitions.
std::vector<std::string> initials_of(Context& ctx, ProcessRef p) {
  std::vector<std::string> out;
  for (const Transition& t : ctx.transitions(p)) {
    out.push_back(ctx.event_name(t.event));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class ContextTest : public ::testing::Test {
 protected:
  Context ctx;
};

TEST_F(ContextTest, ChannelDeclarationAndLookup) {
  const ChannelId a = ctx.channel("a");
  EXPECT_EQ(ctx.find_channel("a"), a);
  EXPECT_EQ(ctx.find_channel("missing"), std::nullopt);
  // Identical re-declaration is idempotent.
  EXPECT_EQ(ctx.channel("a"), a);
}

TEST_F(ContextTest, ChannelRedeclarationWithDifferentTypeThrows) {
  ctx.channel("c", {{Value::integer(0), Value::integer(1)}});
  EXPECT_THROW(ctx.channel("c", {{Value::integer(0)}}), ModelError);
}

TEST_F(ContextTest, EventInterningIsStable) {
  const ChannelId c = ctx.channel("c", {{Value::integer(0), Value::integer(1)}});
  const EventId e0 = ctx.event(c, {Value::integer(0)});
  const EventId e1 = ctx.event(c, {Value::integer(1)});
  EXPECT_NE(e0, e1);
  EXPECT_EQ(ctx.event(c, {Value::integer(0)}), e0);
  EXPECT_GE(e0, FIRST_USER_EVENT);
}

TEST_F(ContextTest, EventOutsideDomainThrows) {
  const ChannelId c = ctx.channel("c", {{Value::integer(0)}});
  EXPECT_THROW(ctx.event(c, {Value::integer(9)}), ModelError);
  EXPECT_THROW(ctx.event(c, {}), ModelError);  // wrong arity
}

TEST_F(ContextTest, EventsOfEnumeratesCartesianProduct) {
  const ChannelId c = ctx.channel(
      "msg", {{Value::integer(0), Value::integer(1)},
              {Value::integer(10), Value::integer(11), Value::integer(12)}});
  EXPECT_EQ(ctx.events_of(c).size(), 6u);
}

TEST_F(ContextTest, EventNameRendersDottedForm) {
  SymbolTable& sy = ctx.symbols();
  const ChannelId c =
      ctx.channel("send", {{Value::symbol(sy.intern("reqSw"))}});
  const EventId e = ctx.event(c, {Value::symbol(sy.intern("reqSw"))});
  EXPECT_EQ(ctx.event_name(e), "send.reqSw");
  EXPECT_EQ(ctx.event_name(TAU), "tau");
  EXPECT_EQ(ctx.event_name(TICK), "tick");
}

TEST_F(ContextTest, HashConsingSharesStructure) {
  const EventId a = ctx.event(ctx.channel("a"));
  const ProcessRef p1 = ctx.prefix(a, ctx.stop());
  const ProcessRef p2 = ctx.prefix(a, ctx.stop());
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(ctx.ext_choice(p1, ctx.skip()), ctx.ext_choice(ctx.skip(), p2));
}

TEST_F(ContextTest, PrefixOnReservedEventThrows) {
  EXPECT_THROW(ctx.prefix(TAU, ctx.stop()), ModelError);
  EXPECT_THROW(ctx.prefix(TICK, ctx.stop()), ModelError);
}

TEST_F(ContextTest, StopHasNoTransitions) {
  EXPECT_TRUE(ctx.transitions(ctx.stop()).empty());
  EXPECT_TRUE(ctx.transitions(ctx.omega()).empty());
}

TEST_F(ContextTest, SkipTicksToOmega) {
  const auto& ts = ctx.transitions(ctx.skip());
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, TICK);
  EXPECT_EQ(ts[0].target, ctx.omega());
}

TEST_F(ContextTest, PrefixFiresItsEvent) {
  const EventId a = ctx.event(ctx.channel("a"));
  const auto& ts = ctx.transitions(ctx.prefix(a, ctx.skip()));
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, a);
  EXPECT_EQ(ts[0].target, ctx.skip());
}

TEST_F(ContextTest, PrefixSeqBuildsChain) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const std::vector<EventId> evs{a, b};
  ProcessRef p = ctx.prefix_seq(evs, ctx.stop());
  EXPECT_EQ(p, ctx.prefix(a, ctx.prefix(b, ctx.stop())));
}

TEST_F(ContextTest, ExternalChoiceOffersBothSides) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p =
      ctx.ext_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  EXPECT_EQ(initials_of(ctx, p), (std::vector<std::string>{"a", "b"}));
}

TEST_F(ContextTest, ExternalChoiceTauKeepsChoicePending) {
  // (a->STOP |~| b->STOP) [] c->STOP: the internal choice's taus must not
  // discard the right operand.
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef inner =
      ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  const ProcessRef p = ctx.ext_choice(inner, ctx.prefix(c, ctx.stop()));
  const auto& ts = ctx.transitions(p);
  std::size_t taus = 0;
  for (const Transition& t : ts) {
    if (t.event == TAU) {
      ++taus;
      // After the tau the external choice is still offered.
      EXPECT_EQ(t.target->op(), Op::ExtChoice);
    }
  }
  EXPECT_EQ(taus, 2u);
}

TEST_F(ContextTest, InternalChoiceHasTwoTaus) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p =
      ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].event, TAU);
  EXPECT_EQ(ts[1].event, TAU);
}

TEST_F(ContextTest, SequentialCompositionHandsOverOnTick) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  // (a -> SKIP) ; (b -> STOP)
  ProcessRef p = ctx.seq(ctx.prefix(a, ctx.skip()), ctx.prefix(b, ctx.stop()));
  auto ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, a);
  // Now at SKIP;(b->STOP): the tick is internalised.
  ts = ctx.transitions(ts[0].target);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, TAU);
  ts = ctx.transitions(ts[0].target);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, b);
}

TEST_F(ContextTest, ParallelSynchronisesOnSharedEvents) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  // (a -> b -> STOP) [|{a}|] (a -> STOP): a is joint, b is free afterwards.
  const ProcessRef left = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const ProcessRef right = ctx.prefix(a, ctx.stop());
  const ProcessRef p = ctx.par(left, EventSet{a}, right);
  auto ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, a);
  EXPECT_EQ(initials_of(ctx, ts[0].target), (std::vector<std::string>{"b"}));
}

TEST_F(ContextTest, ParallelBlocksUnmatchedSyncEvent) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  // (a -> STOP) [|{a,b}|] (b -> STOP) deadlocks immediately.
  const ProcessRef p = ctx.par(ctx.prefix(a, ctx.stop()), EventSet{a, b},
                               ctx.prefix(b, ctx.stop()));
  EXPECT_TRUE(ctx.transitions(p).empty());
}

TEST_F(ContextTest, InterleavingRunsIndependently) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p =
      ctx.interleave(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  EXPECT_EQ(initials_of(ctx, p), (std::vector<std::string>{"a", "b"}));
}

TEST_F(ContextTest, DistributedTermination) {
  // SKIP ||| SKIP must tick exactly once, after both sides retire.
  const ProcessRef p = ctx.interleave(ctx.skip(), ctx.skip());
  auto ts = ctx.transitions(p);
  // Both sides retire via tau.
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].event, TAU);
  EXPECT_EQ(ts[1].event, TAU);
  auto ts2 = ctx.transitions(ts[0].target);
  ASSERT_EQ(ts2.size(), 1u);
  EXPECT_EQ(ts2[0].event, TAU);
  auto ts3 = ctx.transitions(ts2[0].target);
  ASSERT_EQ(ts3.size(), 1u);
  EXPECT_EQ(ts3[0].event, TICK);
}

TEST_F(ContextTest, SyncSetWithReservedEventThrows) {
  EXPECT_THROW(ctx.par(ctx.stop(), EventSet{TAU}, ctx.stop()), ModelError);
  EXPECT_THROW(ctx.par(ctx.stop(), EventSet{TICK}, ctx.stop()), ModelError);
}

TEST_F(ContextTest, HidingMakesEventsInternal) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p =
      ctx.hide(ctx.prefix(a, ctx.prefix(b, ctx.stop())), EventSet{a});
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, TAU);
  EXPECT_EQ(initials_of(ctx, ts[0].target), (std::vector<std::string>{"b"}));
}

TEST_F(ContextTest, HidingTickThrows) {
  EXPECT_THROW(ctx.hide(ctx.skip(), EventSet{TICK}), ModelError);
}

TEST_F(ContextTest, RenamingMapsEvents) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p = ctx.rename(ctx.prefix(a, ctx.stop()), {{a, b}});
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, b);
}

TEST_F(ContextTest, RelationalRenamingForks) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef p = ctx.rename(ctx.prefix(a, ctx.stop()), {{a, b}, {a, c}});
  EXPECT_EQ(initials_of(ctx, p), (std::vector<std::string>{"b", "c"}));
}

TEST_F(ContextTest, NamedRecursionUnfolds) {
  const EventId a = ctx.event(ctx.channel("a"));
  ctx.define("P", [a](Context& c, std::span<const Value>) {
    return c.prefix(a, c.var("P"));
  });
  ProcessRef p = ctx.var("P");
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].event, a);
  // The recursion ties back to the same canonical state.
  EXPECT_EQ(ctx.canonical(ts[0].target), ctx.canonical(p));
}

TEST_F(ContextTest, ParameterisedDefinitionsAreMemoised) {
  const ChannelId c = ctx.channel(
      "count", {{Value::integer(0), Value::integer(1), Value::integer(2)}});
  ctx.define("CNT", [c](Context& cx, std::span<const Value> args) {
    const std::int64_t n = args[0].as_int();
    if (n == 0) return cx.stop();
    return cx.prefix(cx.event(c, {Value::integer(n)}),
                     cx.var("CNT", {Value::integer(n - 1)}));
  });
  ProcessRef p = ctx.var("CNT", {Value::integer(2)});
  auto ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ctx.event_name(ts[0].event), "count.2");
  ts = ctx.transitions(ts[0].target);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ctx.event_name(ts[0].event), "count.1");
  EXPECT_TRUE(ctx.transitions(ts[0].target).empty());
}

TEST_F(ContextTest, UndefinedProcessThrows) {
  EXPECT_THROW(ctx.transitions(ctx.var("NOPE")), ModelError);
}

TEST_F(ContextTest, UnguardedRecursionIsDetected) {
  ctx.define("LOOP", [](Context& c, std::span<const Value>) {
    return c.var("LOOP");
  });
  EXPECT_THROW(ctx.transitions(ctx.var("LOOP")), ModelError);
}

TEST_F(ContextTest, UnguardedMutualRecursionIsDetected) {
  ctx.define("A", [](Context& c, std::span<const Value>) { return c.var("B"); });
  ctx.define("B", [](Context& c, std::span<const Value>) { return c.var("A"); });
  EXPECT_THROW(ctx.canonical(ctx.var("A")), ModelError);
}

TEST_F(ContextTest, RunAcceptsItsAlphabetForever) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  ProcessRef r = ctx.run(EventSet{a, b});
  const auto& ts = ctx.transitions(r);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ctx.canonical(ts[0].target), ctx.canonical(r));
}

TEST_F(ContextTest, TransitionsAreMemoised) {
  const EventId a = ctx.event(ctx.channel("a"));
  const ProcessRef p = ctx.prefix(a, ctx.stop());
  const auto* first = &ctx.transitions(p);
  const auto* second = &ctx.transitions(p);
  EXPECT_EQ(first, second);
}


TEST_F(ContextTest, InterruptTransfersControlOnVisibleEvent) {
  const EventId a = ctx.event(ctx.channel("ia"));
  const EventId b = ctx.event(ctx.channel("ib"));
  // (a -> a -> STOP) /\ (b -> STOP): b may fire at any point and wins.
  const ProcessRef p = ctx.interrupt(ctx.prefix(a, ctx.prefix(a, ctx.stop())),
                                     ctx.prefix(b, ctx.stop()));
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 2u);
  for (const Transition& t : ts) {
    if (t.event == b) {
      EXPECT_EQ(t.target, ctx.stop());  // control transferred for good
    } else {
      EXPECT_EQ(t.event, a);
      EXPECT_EQ(t.target->op(), Op::Interrupt);  // interrupt still armed
    }
  }
}

TEST_F(ContextTest, InterruptTerminationWins) {
  const EventId b = ctx.event(ctx.channel("ib2"));
  const ProcessRef p = ctx.interrupt(ctx.skip(), ctx.prefix(b, ctx.stop()));
  bool saw_tick = false;
  for (const Transition& t : ctx.transitions(p)) {
    if (t.event == TICK) {
      saw_tick = true;
      EXPECT_EQ(t.target, ctx.omega());
    }
  }
  EXPECT_TRUE(saw_tick);
}

TEST_F(ContextTest, SlidingOffersLeftAndSlidesRight) {
  const EventId a = ctx.event(ctx.channel("sa"));
  const EventId b = ctx.event(ctx.channel("sb"));
  const ProcessRef q = ctx.prefix(b, ctx.stop());
  const ProcessRef p = ctx.sliding(ctx.prefix(a, ctx.skip()), q);
  bool saw_a = false;
  bool saw_slide = false;
  for (const Transition& t : ctx.transitions(p)) {
    if (t.event == a) {
      saw_a = true;
      EXPECT_EQ(t.target, ctx.skip());  // a resolves towards P
    }
    if (t.event == TAU) {
      saw_slide = true;
      EXPECT_EQ(t.target, q);  // the silent timeout
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_slide);
}

}  // namespace
}  // namespace ecucsp
