// Cache ↔ parallel-engine interaction: the thread count is deliberately NOT
// part of the PR 2 cache key, because the wave engine's results are
// byte-identical at any thread count. These tests pin the consequences:
//   * a cache warmed by the sequential engine is hit — not invalidated — by
//     the parallel engine, and vice versa;
//   * the hit is identical (verdict, counterexample, vacuity) to a fresh
//     parallel exploration at every thread count;
//   * the disk tier carries sequential-warmed verdicts to a parallel engine
//     in a fresh "process" (a reopened VerificationCache on the same dir);
//   * the unary checks share the same property.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "refine/check.hpp"
#include "store/cache.hpp"

namespace ecucsp {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction (the
/// store_cache_test idiom).
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    dir_ = fs::temp_directory_path() /
           ("ecucsp_parcache_test_" + std::string(tag) + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

// A failing refinement with a non-trivial counterexample: SPEC accepts only
// a·b, IMPL offers a·a — trace violation <a> then a.
ProcessRef failing_spec(Context& ctx) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  return ctx.prefix(a, ctx.prefix(b, ctx.stop()));
}
ProcessRef failing_impl(Context& ctx) {
  const EventId a = ctx.event(ctx.channel("a"));
  return ctx.prefix(a, ctx.prefix(a, ctx.stop()));
}
// A passing pair over the same alphabet.
ProcessRef passing_spec(Context& ctx) {
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  return ctx.ext_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
}
ProcessRef passing_impl(Context& ctx) {
  const EventId a = ctx.event(ctx.channel("a"));
  return ctx.prefix(a, ctx.stop());
}

std::string cx_text(const Context& ctx, const CheckResult& r) {
  return r.counterexample ? r.counterexample->describe(ctx) : std::string();
}

void expect_same_verdict(const Context& ctx, const CheckResult& want,
                         const CheckResult& got, const std::string& where) {
  EXPECT_EQ(got.passed, want.passed) << where;
  EXPECT_EQ(got.vacuous, want.vacuous) << where;
  EXPECT_EQ(cx_text(ctx, got), cx_text(ctx, want)) << where;
}

TEST(ParallelCache, SequentialWarmIsHitByParallelEngine) {
  store::VerificationCache cache;  // memory tier only
  ScopedCheckCache installed(&cache);
  Context ctx;

  const CheckResult warm = check_refinement(
      ctx, failing_spec(ctx), failing_impl(ctx), Model::Traces, 1u << 22,
      nullptr, /*threads=*/1);
  ASSERT_FALSE(warm.passed);
  ASSERT_FALSE(warm.from_cache);

  for (const unsigned threads : {2u, 4u, 8u}) {
    const CheckResult hit = check_refinement(
        ctx, failing_spec(ctx), failing_impl(ctx), Model::Traces, 1u << 22,
        nullptr, threads);
    EXPECT_TRUE(hit.from_cache) << "threads=" << threads;
    expect_same_verdict(ctx, warm, hit,
                        "threads=" + std::to_string(threads));
  }
  EXPECT_EQ(cache.stats().verdict_misses.load(), 1u);
}

TEST(ParallelCache, ParallelWarmIsHitBySequentialEngine) {
  store::VerificationCache cache;
  ScopedCheckCache installed(&cache);
  Context ctx;

  const CheckResult warm = check_refinement(
      ctx, passing_spec(ctx), passing_impl(ctx), Model::Failures, 1u << 22,
      nullptr, /*threads=*/4);
  ASSERT_FALSE(warm.from_cache);

  const CheckResult hit = check_refinement(
      ctx, passing_spec(ctx), passing_impl(ctx), Model::Failures, 1u << 22,
      nullptr, /*threads=*/1);
  EXPECT_TRUE(hit.from_cache);
  expect_same_verdict(ctx, warm, hit, "sequential hit");

  // And the cached verdict equals a genuinely fresh parallel exploration.
  Context fresh;
  const CheckResult reference = check_refinement(
      fresh, passing_spec(fresh), passing_impl(fresh), Model::Failures,
      1u << 22, nullptr, /*threads=*/4);
  EXPECT_EQ(reference.passed, hit.passed);
  EXPECT_EQ(reference.vacuous, hit.vacuous);
}

TEST(ParallelCache, DiskTierCarriesSequentialVerdictToParallelRestart) {
  TempDir tmp("restart");
  Context ctx;
  CheckResult warm;
  {
    store::VerificationCache cache(tmp.path());
    ScopedCheckCache installed(&cache);
    warm = check_refinement(ctx, failing_spec(ctx), failing_impl(ctx),
                            Model::FailuresDivergences, 1u << 22, nullptr,
                            /*threads=*/1);
    ASSERT_FALSE(warm.passed);
  }

  // "Restart": a fresh cache instance over the same directory, queried by
  // the parallel engine. The verdict must come off disk, not re-explore.
  store::VerificationCache reopened(tmp.path());
  ScopedCheckCache installed(&reopened);
  const CheckResult hit = check_refinement(
      ctx, failing_spec(ctx), failing_impl(ctx), Model::FailuresDivergences,
      1u << 22, nullptr, /*threads=*/4);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(reopened.stats().disk_hits.load(), 1u);
  expect_same_verdict(ctx, warm, hit, "disk hit");
}

TEST(ParallelCache, UnaryChecksShareVerdictsAcrossEngines) {
  store::VerificationCache cache;
  ScopedCheckCache installed(&cache);
  Context ctx;

  // Deadlocking process: a → STOP.
  const EventId a = ctx.event(ctx.channel("a"));
  const ProcessRef p = ctx.prefix(a, ctx.stop());

  const CheckResult warm =
      check_deadlock_free(ctx, p, 1u << 22, nullptr, /*threads=*/4);
  ASSERT_FALSE(warm.passed);
  ASSERT_FALSE(warm.from_cache);

  const CheckResult hit =
      check_deadlock_free(ctx, p, 1u << 22, nullptr, /*threads=*/1);
  EXPECT_TRUE(hit.from_cache);
  expect_same_verdict(ctx, warm, hit, "deadlock hit");

  // Same term, different question: deterministic must miss (CheckOp is part
  // of the key), whatever the thread count.
  const CheckResult det =
      check_deterministic(ctx, p, 1u << 22, nullptr, /*threads=*/2);
  EXPECT_FALSE(det.from_cache);
  EXPECT_TRUE(det.passed);
}

}  // namespace
}  // namespace ecucsp
