// Scheduler determinism, timeout and cancellation tests.
//
// The contracts pinned here are the ones README documents for src/verify:
//   * verdicts, counterexamples and stats are byte-identical whatever the
//     worker count (one fresh Context per task => scheduling cannot leak);
//   * outcomes come back in submission order;
//   * a diverging/huge check with a tiny timeout returns TimedOut without
//     stalling the pool, leaking a thread, or disturbing its neighbours;
//   * cancellation is cooperative and immediate for queued tasks.
// The CI thread-sanitizer job runs this binary to police data races.
#include <gtest/gtest.h>

#include <thread>

#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::verify {
namespace {

/// An effectively infinite-state impl: COUNT(n) = a -> COUNT(n+1). Forces
/// compile_lts to run until the state budget or a deadline stops it.
ProcessRef unbounded_counter(Context& ctx) {
  const EventId a = ctx.event(ctx.channel("a"));
  ctx.define("COUNT", [a](Context& cx, std::span<const Value> args) {
    const std::int64_t n = args[0].as_int();
    return cx.prefix(a, cx.var("COUNT", {Value::integer(n + 1)}));
  });
  return ctx.var("COUNT", {Value::integer(0)});
}

CheckTask simple_refinement(std::string name, bool should_pass) {
  CheckTask t;
  t.name = std::move(name);
  t.kind = CheckKind::Refinement;
  t.model = Model::Traces;
  t.spec = [should_pass](Context& ctx) {
    const EventId a = ctx.event(ctx.channel("a"));
    const EventId b = ctx.event(ctx.channel("b"));
    return should_pass ? ctx.prefix(a, ctx.prefix(b, ctx.stop()))
                       : ctx.prefix(a, ctx.stop());
  };
  t.impl = [](Context& ctx) {
    const EventId a = ctx.event(ctx.channel("a"));
    const EventId b = ctx.event(ctx.channel("b"));
    return ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  };
  t.expected = should_pass;
  return t;
}

std::vector<std::string> fingerprint(const BatchResult& batch) {
  std::vector<std::string> out;
  for (const TaskOutcome& o : batch.outcomes) {
    out.push_back(o.name + "|" + std::string(to_string(o.status)) + "|" +
                  o.counterexample + "|" +
                  std::to_string(o.stats.impl_states) + "|" +
                  std::to_string(o.stats.impl_transitions));
  }
  return out;
}

TEST(VerifyScheduler, SameVerdictsAndCounterexamplesAtAnyWorkerCount) {
  // The full OTA matrix plus factory tasks, at 1 and 8 workers.
  std::vector<CheckTask> tasks = ota_requirement_matrix();
  for (CheckTask& t : ota_extended_batch()) tasks.push_back(std::move(t));
  tasks.push_back(simple_refinement("pass", true));
  tasks.push_back(simple_refinement("fail", false));

  VerifyScheduler one({.jobs = 1});
  VerifyScheduler eight({.jobs = 8});
  const BatchResult r1 = one.run(tasks);
  const BatchResult r8 = eight.run(tasks);

  ASSERT_EQ(r1.outcomes.size(), tasks.size());
  EXPECT_EQ(fingerprint(r1), fingerprint(r8));
  EXPECT_TRUE(r1.all_as_expected());
  EXPECT_TRUE(r8.all_as_expected());
  // Submission order is preserved regardless of completion order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(r8.outcomes[i].name, tasks[i].name);
  }
}

TEST(VerifyScheduler, RepeatedRunsOnOnePoolAreIdentical) {
  VerifyScheduler sched({.jobs = 4});
  const std::vector<CheckTask> tasks = ota_requirement_matrix();
  const BatchResult a = sched.run(tasks);
  const BatchResult b = sched.run(tasks);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(VerifyScheduler, TimeoutReturnsTimedOutWithoutStallingThePool) {
  // Task 0 explores an unbounded process under a 50 ms deadline; its
  // neighbours must be untouched and the batch must complete promptly.
  std::vector<CheckTask> tasks;
  CheckTask diverging;
  diverging.name = "diverging";
  diverging.kind = CheckKind::DeadlockFree;
  diverging.impl = unbounded_counter;
  diverging.timeout = std::chrono::milliseconds(50);
  tasks.push_back(std::move(diverging));
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(simple_refinement("ok " + std::to_string(i), true));
  }

  VerifyScheduler sched({.jobs = 2});
  const BatchResult batch = sched.run(tasks);

  ASSERT_EQ(batch.outcomes.size(), tasks.size());
  EXPECT_EQ(batch.outcomes[0].status, TaskStatus::TimedOut);
  EXPECT_FALSE(batch.outcomes[0].error.empty());
  for (std::size_t i = 1; i < batch.outcomes.size(); ++i) {
    EXPECT_EQ(batch.outcomes[i].status, TaskStatus::Passed) << i;
  }
  // The deadline is cooperative but must not overshoot by orders of
  // magnitude: the whole batch should finish in well under the state
  // budget's natural runtime (minutes). Allow generous CI slack.
  EXPECT_LT(batch.wall, std::chrono::seconds(30));
  // The pool survives for another batch.
  const BatchResult again = sched.run({simple_refinement("after", true)});
  EXPECT_EQ(again.outcomes[0].status, TaskStatus::Passed);
}

TEST(VerifyScheduler, DefaultTimeoutAppliesToTasksWithoutTheirOwn) {
  CheckTask diverging;
  diverging.name = "diverging";
  diverging.kind = CheckKind::DivergenceFree;
  diverging.impl = unbounded_counter;  // no per-task timeout
  VerifyScheduler sched(
      {.jobs = 2, .default_timeout = std::chrono::milliseconds(50)});
  const BatchResult batch = sched.run({std::move(diverging)});
  EXPECT_EQ(batch.outcomes[0].status, TaskStatus::TimedOut);
}

TEST(VerifyScheduler, StateBudgetMapsToStateLimitStatus) {
  CheckTask big;
  big.name = "big";
  big.kind = CheckKind::DeadlockFree;
  big.impl = unbounded_counter;
  big.max_states = 1000;
  VerifyScheduler sched({.jobs = 1});
  const BatchResult batch = sched.run({std::move(big)});
  EXPECT_EQ(batch.outcomes[0].status, TaskStatus::StateLimit);
  EXPECT_NE(batch.outcomes[0].error.find("state limit"), std::string::npos);
}

TEST(VerifyScheduler, ThrowingFactoryMapsToErrorStatus) {
  CheckTask bad;
  bad.name = "bad";
  bad.kind = CheckKind::Refinement;
  bad.spec = [](Context& ctx) { return ctx.stop(); };
  // An undefined process variable: resolution throws during compilation.
  bad.impl = [](Context& ctx) { return ctx.var("NO_SUCH_PROCESS"); };
  VerifyScheduler sched({.jobs = 2});
  const BatchResult batch = sched.run({std::move(bad)});
  EXPECT_EQ(batch.outcomes[0].status, TaskStatus::Error);
  EXPECT_FALSE(batch.outcomes[0].error.empty());
}

TEST(VerifyScheduler, CancelAllCancelsQueuedTasks) {
  // One worker, several slow-ish tasks: cancel from another thread while
  // the first is in flight; later tasks must come back Cancelled (or, if
  // the race resolves late, at least never hang the run).
  std::vector<CheckTask> tasks;
  for (int i = 0; i < 4; ++i) {
    CheckTask t;
    t.name = "slow " + std::to_string(i);
    t.kind = CheckKind::DeadlockFree;
    t.impl = unbounded_counter;
    t.max_states = 200000;  // a few hundred ms each, bounded either way
    tasks.push_back(std::move(t));
  }
  VerifyScheduler sched({.jobs = 1});
  std::jthread canceller([&sched] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sched.cancel_all();
  });
  const BatchResult batch = sched.run(tasks);
  ASSERT_EQ(batch.outcomes.size(), tasks.size());
  // The tail of the queue was cancelled before it started.
  EXPECT_EQ(batch.outcomes.back().status, TaskStatus::Cancelled);
}

TEST(VerifyScheduler, CsmpSourceTasksRunPerAssertion) {
  const std::string script =
      "channel ping, pong\n"
      "SPEC = ping -> pong -> SPEC\n"
      "IMPL = ping -> pong -> IMPL\n"
      "BAD = pong -> BAD\n"
      "assert SPEC [T= IMPL\n"
      "assert SPEC [T= BAD\n";
  std::vector<CheckTask> tasks(2);
  for (std::size_t i = 0; i < 2; ++i) {
    tasks[i].name = "assert #" + std::to_string(i);
    tasks[i].sources = {script};
    tasks[i].assertion_index = i;
  }
  VerifyScheduler sched({.jobs = 2});
  const BatchResult batch = sched.run(tasks);
  EXPECT_EQ(batch.outcomes[0].status, TaskStatus::Passed);
  EXPECT_EQ(batch.outcomes[1].status, TaskStatus::Failed);
  EXPECT_NE(batch.outcomes[1].counterexample.find("pong"), std::string::npos);
}

TEST(VerifyScheduler, EmptyBatchCompletesImmediately) {
  VerifyScheduler sched({.jobs = 4});
  const BatchResult batch = sched.run({});
  EXPECT_TRUE(batch.outcomes.empty());
  EXPECT_TRUE(batch.all_passed());
}

TEST(RunTask, PreArmedCancelledTokenSkipsTheCheck) {
  CancelToken token;
  token.request_cancel();
  const TaskOutcome out = run_task(simple_refinement("skipped", true), token);
  EXPECT_EQ(out.status, TaskStatus::Cancelled);
}

TEST(RunTask, ExpiredDeadlineFiresBeforeExploration) {
  CancelToken token;
  token.set_deadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  CheckTask t;
  t.name = "expired";
  t.kind = CheckKind::DeadlockFree;
  t.impl = unbounded_counter;
  const TaskOutcome out = run_task(t, token);
  EXPECT_EQ(out.status, TaskStatus::TimedOut);
}

TEST(VerifyScheduler, AlphabetMismatchInjectionMakesPassesVacuous) {
  // Fault injection for the vacuity detector: renaming the system under
  // test onto a fresh primed alphabet (the effect of an extractor that
  // mis-maps every channel) must never produce a clean PASS. Every cell
  // that still passes does so vacuously — and an honest run has no
  // vacuous cells at all.
  VerifyScheduler sched({.jobs = 2});
  const BatchResult honest = sched.run(ota_requirement_matrix());
  for (const TaskOutcome& o : honest.outcomes) {
    EXPECT_FALSE(o.vacuous) << o.name;
  }

  const BatchResult injected =
      sched.run(ota_requirement_matrix({.inject_alphabet_mismatch = true}));
  std::size_t vacuous_passes = 0;
  for (const TaskOutcome& o : injected.outcomes) {
    if (o.status == TaskStatus::Passed) {
      EXPECT_TRUE(o.vacuous) << "clean PASS under injection: " << o.name;
      ++vacuous_passes;
    } else {
      EXPECT_FALSE(o.vacuous) << o.name;
    }
  }
  EXPECT_GT(vacuous_passes, 0u);
}

TEST(RunBoolBatch, AnswersArriveInSubmissionOrderAtAnyWorkerCount) {
  // The learner's membership-query path: answers must line up with the
  // query vector regardless of jobs, and be identical across pools.
  std::vector<std::function<bool(CancelToken&)>> queries;
  for (std::size_t i = 0; i < 64; ++i) {
    queries.emplace_back([i](CancelToken&) { return i % 3 == 0; });
  }
  std::vector<bool> first;
  for (unsigned jobs : {1u, 2u, 4u}) {
    VerifyScheduler sched({.jobs = jobs});
    const std::vector<bool> got = run_bool_batch(sched, queries, "member");
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], i % 3 == 0) << i;
    }
    if (first.empty()) first = got;
    EXPECT_EQ(got, first);
  }
}

TEST(RunBoolBatch, ThrowingQuerySurfacesAsRuntimeError) {
  // A query that cannot produce a boolean must abort the batch loudly —
  // a silently mis-recorded membership answer would corrupt the learner's
  // hypothesis with no diagnostic.
  std::vector<std::function<bool(CancelToken&)>> queries;
  queries.emplace_back([](CancelToken&) { return true; });
  queries.emplace_back(
      [](CancelToken&) -> bool { throw std::runtime_error("oracle died"); });
  VerifyScheduler sched({.jobs = 2});
  EXPECT_THROW(run_bool_batch(sched, queries), std::runtime_error);
}

TEST(CancelToken, PollThrowsAfterRequestCancel) {
  CancelToken token;
  EXPECT_NO_THROW(token.poll());
  token.request_cancel();
  EXPECT_THROW(token.poll(), CheckCancelled);
  try {
    token.poll();
  } catch (const CheckCancelled& c) {
    EXPECT_EQ(c.reason(), CheckCancelled::Reason::Cancelled);
  }
}

}  // namespace
}  // namespace ecucsp::verify
