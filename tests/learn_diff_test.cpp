// The differential battery proving the Learn–Check–Test loop correct.
//
// Three pillars:
//   * white-box ground truth — every seeded requirement automaton (R01–R05)
//     and the extracted OTA model automaton is learned back through an
//     AutomatonOracle driven to *guaranteed* convergence by the exact
//     product-BFS equivalence oracle, and the hypothesis must be
//     strong-bisimulation-equivalent to its target (via minimize_strong);
//   * black-box fixpoint — learning the simulated ECU through the harness
//     converges to exactly the testable projection of the model automaton
//     (response edges win over stimuli under the quiescence discipline,
//     ignored forged frames strip as self-loops);
//   * determinism — run_ota_learn's verdicts, text and JSON reports are
//     byte-identical across --jobs x --threads in {1,2,4}^2.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "conform/harness.hpp"
#include "conform/requirements.hpp"
#include "learn/cache.hpp"
#include "learn/compile.hpp"
#include "learn/equiv.hpp"
#include "learn/learner.hpp"
#include "learn/oracle.hpp"
#include "learn/run.hpp"
#include "ota/ota.hpp"

namespace ecucsp::learn {
namespace {

std::vector<std::string> sorted_alphabet(const conform::TraceOracle& oracle) {
  // The oracle's declared alphabet; events it never allows are legitimate
  // learning symbols that must map to DEAD everywhere.
  return {oracle.alphabet.begin(), oracle.alphabet.end()};
}

/// Learn `target` back through a membership oracle, driven by the exact
/// equivalence oracle. Returns the converged hypothesis automaton.
conform::SymAutomaton learn_exactly(const conform::SymAutomaton& target,
                                    const std::vector<std::string>& sigma,
                                    std::size_t max_iterations = 64) {
  AutomatonOracle oracle(target, sigma);
  TreeLearner learner(oracle);
  conform::SymAutomaton hyp = to_sym_automaton(learner.hypothesis());
  for (std::size_t i = 0; i < max_iterations; ++i) {
    const auto cex = exact_counterexample(target, hyp, sigma);
    if (!cex) return hyp;
    EXPECT_TRUE(learner.refine(*cex))
        << "exact counterexample rejected by the learner";
    while (learner.refine(*cex)) {
    }
    hyp = to_sym_automaton(learner.hypothesis());
  }
  ADD_FAILURE() << "learning did not converge within " << max_iterations
                << " iterations";
  return hyp;
}

TEST(LearnDiff, RequirementAutomataLearnBackToBisimEquivalence) {
  for (const conform::TraceOracle& r : conform::ota_requirement_oracles()) {
    SCOPED_TRACE(r.name);
    const std::vector<std::string> sigma = sorted_alphabet(r);
    const conform::SymAutomaton learned = learn_exactly(r.automaton, sigma);
    EXPECT_TRUE(strong_bisim_equivalent(learned, r.automaton));
    EXPECT_EQ(exact_counterexample(r.automaton, learned, sigma), std::nullopt);
  }
}

TEST(LearnDiff, ModelAutomatonLearnsBackToBisimEquivalence) {
  const conform::TraceOracle model = conform::ota_model_oracle();
  const std::set<std::string> events = model.automaton.event_alphabet();
  const std::vector<std::string> sigma(events.begin(), events.end());
  const conform::SymAutomaton learned = learn_exactly(model.automaton, sigma);
  EXPECT_TRUE(strong_bisim_equivalent(learned, model.automaton));
  // One state per Myhill-Nerode class: the learned automaton never exceeds
  // the target's state count.
  EXPECT_LE(learned.state_count(), model.automaton.state_count());
}

TEST(LearnDiff, ApproximateEquivalenceMatchesExactOnModelAutomaton) {
  // The approximate (suite-based) equivalence path must reach the same
  // fixpoint as the exact product-BFS on a small white-box target.
  const conform::TraceOracle model = conform::ota_model_oracle();
  const std::set<std::string> events = model.automaton.event_alphabet();
  const std::vector<std::string> sigma(events.begin(), events.end());
  AutomatonOracle oracle(model.automaton, sigma);
  TreeLearner learner(oracle);
  Hypothesis hyp = learner.hypothesis();
  bool converged = false;
  for (std::size_t round = 0; round < 16; ++round) {
    EquivOptions eq;
    eq.seed = 7;
    eq.round = round;
    const auto cex = approximate_counterexample(oracle, hyp, eq);
    if (!cex) {
      converged = true;
      break;
    }
    while (learner.refine(*cex)) {
    }
    hyp = learner.hypothesis();
  }
  ASSERT_TRUE(converged);
  EXPECT_TRUE(strong_bisim_equivalent(to_sym_automaton(hyp), model.automaton));
}

TEST(LearnDiff, EcuLearningConvergesToTestableProjectionOfModel) {
  // Black-box half: the hypothesis learned from the *simulated* ECU, with
  // the ignored forged-frame self-loops stripped, is strong-bisim
  // equivalent to the testable projection of the white-box model automaton.
  const LearnReport rep = run_ota_learn({});
  ASSERT_TRUE(rep.converged);
  ASSERT_TRUE(rep.ok);

  const can::DbcDatabase db =
      can::parse_dbc(std::string(ota::ota_dbc_text()));
  const conform::FrameCodec codec = conform::ota_codec(db);
  const conform::TraceOracle model = conform::ota_model_oracle();
  const conform::SymAutomaton projection = testable_projection(
      model.automaton,
      [&codec](const std::string& e) {
        return codec.concretize(e).has_value();
      },
      [](const std::string& e) { return e.starts_with("rec."); });

  const StripResult stripped = strip_ignored_self_loops(
      to_sym_automaton(rep.hypothesis), model.ignored);
  ASSERT_TRUE(stripped.lossless)
      << "faithful ECU must not react to ignored events";
  EXPECT_TRUE(strong_bisim_equivalent(stripped.automaton, projection));

  const std::set<std::string> events = projection.event_alphabet();
  const std::vector<std::string> sigma(events.begin(), events.end());
  EXPECT_EQ(exact_counterexample(projection, stripped.automaton, sigma),
            std::nullopt);
}

TEST(LearnDiff, ReportsByteIdenticalAcrossJobsAndThreads) {
  LearnRunOptions base;
  base.seed = 3;
  base.jobs = 1;
  base.threads = 1;
  const LearnReport ref = run_ota_learn(base);
  const std::string ref_json = render_json(ref);
  const std::string ref_text = render_text(ref);
  ASSERT_TRUE(ref.converged);
  for (unsigned jobs : {1u, 2u, 4u}) {
    for (unsigned threads : {1u, 2u, 4u}) {
      if (jobs == 1 && threads == 1) continue;
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " threads=" + std::to_string(threads));
      LearnRunOptions opt = base;
      opt.jobs = jobs;
      opt.threads = threads;
      const LearnReport rep = run_ota_learn(opt);
      EXPECT_EQ(render_json(rep), ref_json);
      EXPECT_EQ(render_text(rep), ref_text);
    }
  }
}

TEST(LearnDiff, MutantReportByteIdenticalAcrossJobs) {
  LearnRunOptions a;
  a.mutate = 1;
  a.jobs = 1;
  LearnRunOptions b = a;
  b.jobs = 4;
  b.threads = 2;
  EXPECT_EQ(render_json(run_ota_learn(a)), render_json(run_ota_learn(b)));
}

TEST(LearnDiff, HypothesisSurvivesCacheRoundTrip) {
  const LearnReport rep = run_ota_learn({});
  const auto blob = encode_hypothesis(rep.hypothesis);
  const auto back = decode_hypothesis(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->alphabet, rep.hypothesis.alphabet);
  EXPECT_EQ(back->root, rep.hypothesis.root);
  EXPECT_EQ(back->succ, rep.hypothesis.succ);
  EXPECT_EQ(back->access, rep.hypothesis.access);

  // Corruption is a miss, never a crash.
  auto corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x5a;
  EXPECT_EQ(decode_hypothesis(corrupt), std::nullopt);
  EXPECT_EQ(decode_hypothesis({blob.data(), blob.size() - 3}), std::nullopt);
}

TEST(LearnDiff, CacheKeyDigestSeparatesParameters) {
  LearnCacheKey key;
  key.ecu_source = "on message X {}";
  key.seed = 1;
  key.rounds = 16;
  key.eq_tests = 64;
  key.max_len = 12;
  key.alphabet = {"a", "b"};
  const auto base = key.digest();

  LearnCacheKey other = key;
  other.seed = 2;
  EXPECT_NE(other.digest(), base);
  other = key;
  other.ecu_source = "on message Y {}";
  EXPECT_NE(other.digest(), base);
  other = key;
  other.alphabet = {"a", "c"};
  EXPECT_NE(other.digest(), base);
  EXPECT_EQ(LearnCacheKey(key).digest(), base);
}

}  // namespace
}  // namespace ecucsp::learn
