// Differential tests: three independent engines answer the same question
// and must agree.
//
//   * is_trace_of (tau-closed LTS walk)        vs
//   * check_refinement in the traces model     vs
//   * enumerate_traces (explicit enumeration)
//
// The bridge is the classic one: a finite trace t is a trace of P iff the
// prefix-closed process T_t = e1 -> e2 -> ... -> STOP trace-refines against
// P as spec, because traces(T_t) = prefixes(t) and trace sets are
// prefix-closed. Random terms come from the same seeded generator family as
// refine_props_test, so failures reproduce by seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "refine/check.hpp"

namespace ecucsp {
namespace {

struct DiffGen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;

  DiffGen(Context& c, unsigned seed) : ctx(c), rng(seed) {
    for (const char* name : {"a", "b", "c"}) {
      alphabet.push_back(ctx.event(ctx.channel(name)));
    }
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  /// Random visible trace over the alphabet (never contains tau/tick).
  std::vector<EventId> trace(std::size_t max_len) {
    std::vector<EventId> out;
    const std::size_t len =
        std::uniform_int_distribution<std::size_t>(0, max_len)(rng);
    for (std::size_t i = 0; i < len; ++i) out.push_back(event());
    return out;
  }

  ProcessRef process(int depth) {
    switch (std::uniform_int_distribution<int>(0, depth <= 0 ? 1 : 8)(rng)) {
      case 0:
        return ctx.stop();
      case 1:
        return ctx.prefix(event(),
                          depth <= 0 ? ctx.stop() : process(depth - 1));
      case 2:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 3:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 5:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 6:
        return ctx.hide(process(depth - 1), event_set());
      case 7:
        return ctx.sliding(process(depth - 1), process(depth - 1));
      default: {
        const EventId from = event();
        const EventId to = event();
        return ctx.rename(process(depth - 1), {{from, to}});
      }
    }
  }
};

/// T_t: the linear process whose traces are exactly the prefixes of t.
ProcessRef linear(Context& ctx, const std::vector<EventId>& t) {
  return ctx.prefix_seq(t, ctx.stop());
}

class RefineDiff : public ::testing::TestWithParam<unsigned> {};

TEST_P(RefineDiff, MembershipAgreesWithRefinementOnRandomTraces) {
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  for (int i = 0; i < 12; ++i) {
    const std::vector<EventId> t = gen.trace(4);
    const bool member = is_trace_of(ctx, p, t).member;
    const bool refines =
        check_refinement(ctx, p, linear(ctx, t), Model::Traces).passed;
    EXPECT_EQ(member, refines)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t);
  }
}

TEST_P(RefineDiff, MembershipAgreesWithEnumerationOnEnumeratedTraces) {
  // Every enumerated trace must be a member; tick-ending traces are the
  // boundary case (is_trace_of walks tick like any visible event).
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  for (const std::vector<EventId>& t : enumerate_traces(ctx, p, 6)) {
    EXPECT_TRUE(is_trace_of(ctx, p, t).member)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t);
  }
}

TEST_P(RefineDiff, NonMemberDiagnosticsAreConsistent) {
  // For a rejected trace: the accepted prefix must itself be a member, the
  // prefix extended by the failing event must not, and the failing event
  // must not be in the offered set.
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  for (int i = 0; i < 12; ++i) {
    const std::vector<EventId> t = gen.trace(4);
    const TraceMembership m = is_trace_of(ctx, p, t);
    if (m.member) continue;
    ASSERT_LT(m.accepted_prefix, t.size());
    const std::vector<EventId> prefix(t.begin(),
                                      t.begin() + m.accepted_prefix);
    EXPECT_TRUE(is_trace_of(ctx, p, prefix).member)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t);
    std::vector<EventId> one_more = prefix;
    one_more.push_back(t[m.accepted_prefix]);
    EXPECT_FALSE(is_trace_of(ctx, p, one_more).member)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t);
    EXPECT_FALSE(m.offered.contains(t[m.accepted_prefix]))
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t);
  }
}

TEST_P(RefineDiff, EveryOfferedEventExtendsTheAcceptedPrefix) {
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(3);
  for (int i = 0; i < 8; ++i) {
    const std::vector<EventId> t = gen.trace(3);
    const TraceMembership m = is_trace_of(ctx, p, t);
    if (m.member) continue;
    const std::vector<EventId> prefix(t.begin(),
                                      t.begin() + m.accepted_prefix);
    for (const EventId e : m.offered) {
      std::vector<EventId> extended = prefix;
      extended.push_back(e);
      EXPECT_TRUE(is_trace_of(ctx, p, extended).member)
          << "seed=" << GetParam() << " offered=" << ctx.event_name(e);
    }
  }
}

TEST_P(RefineDiff, PrefixClosedSpecFromEnumeratedTraceIsRefined) {
  // Round trip through the refinement engine: every enumerated trace of P
  // yields a linear spec that P's own traces cover.
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  auto traces = enumerate_traces(ctx, p, 5);
  // Sample a handful; the full set can be large.
  for (std::size_t i = 0; i < traces.size(); i += std::max<std::size_t>(1, traces.size() / 8)) {
    EXPECT_TRUE(
        check_refinement(ctx, p, linear(ctx, traces[i]), Model::Traces).passed)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, traces[i]);
  }
}

TEST_P(RefineDiff, DeterministicProcessesEquateTracesAndFailures) {
  // For deterministic P and Q, failures equivalence collapses to trace
  // equivalence — the failures of a deterministic process are determined by
  // its traces. (Refinement itself does NOT collapse: a deterministic spec
  // may still forbid refusals a trace-refining deterministic impl has.)
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const ProcessRef q = gen.process(2);
  if (!check_deterministic(ctx, p).passed ||
      !check_deterministic(ctx, q).passed) {
    return;
  }
  const bool trace_equiv = check_refinement(ctx, p, q, Model::Traces).passed &&
                           check_refinement(ctx, q, p, Model::Traces).passed;
  const bool failures_equiv =
      check_refinement(ctx, p, q, Model::Failures).passed &&
      check_refinement(ctx, q, p, Model::Failures).passed;
  EXPECT_EQ(trace_equiv, failures_equiv) << "seed=" << GetParam();
}

TEST_P(RefineDiff, MembershipIsInvariantUnderTauPadding) {
  // Hiding an event never performed leaves membership untouched; this
  // exercises the tau-closure path of is_trace_of against a tau-free twin.
  Context ctx;
  DiffGen gen(ctx, GetParam());
  const ProcessRef p = gen.process(2);
  const EventId d = ctx.event(ctx.channel("d"));
  const ProcessRef padded = ctx.hide(
      ctx.interleave(p, ctx.prefix(d, ctx.stop())), EventSet{d});
  for (int i = 0; i < 8; ++i) {
    const std::vector<EventId> t = gen.trace(3);
    EXPECT_EQ(is_trace_of(ctx, p, t).member, is_trace_of(ctx, padded, t).member)
        << "seed=" << GetParam() << " trace=" << format_trace(ctx, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineDiff, ::testing::Range(0u, 40u));

}  // namespace
}  // namespace ecucsp
