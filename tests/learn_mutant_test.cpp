// Mutation adequacy of the Learn–Check–Test loop: every seeded CAPL mutant
// of the reference ECU must be *caught by checking the learned model* — at
// least one R01–R05 refinement check fails on the hypothesis learned from
// the mutant where the faithful ECU passes, and each failing check's
// counterexample replays to a rejection on the requirement's own trace
// oracle. This is the loop's end-to-end soundness witness: learning does
// not smooth over implementation faults, and the verdicts it produces are
// confirmed by an independent judge.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "capl/parser.hpp"
#include "conform/mutate.hpp"
#include "conform/oracle.hpp"
#include "conform/requirements.hpp"
#include "learn/run.hpp"
#include "ota/ota.hpp"

namespace ecucsp::learn {
namespace {

std::map<std::string, std::string> verdicts_of(const LearnReport& rep) {
  std::map<std::string, std::string> out;
  for (const LearnCheckReport& c : rep.checks) out[c.name] = c.verdict;
  return out;
}

TEST(LearnMutant, FaithfulEcuPassesEveryRequirement) {
  const LearnReport rep = run_ota_learn({});
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.converged);
  EXPECT_FALSE(rep.mutation.has_value());
  const auto v = verdicts_of(rep);
  EXPECT_EQ(v.at("R01"), "SKIP");
  EXPECT_EQ(v.at("R02"), "PASS");
  EXPECT_EQ(v.at("R03"), "PASS");
  EXPECT_EQ(v.at("R04"), "PASS");
  EXPECT_EQ(v.at("R05"), "PASS");
}

TEST(LearnMutant, EverySeededMutantIsKilledAndReplaysCleanly) {
  const capl::CaplProgram ecu =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  const std::size_t points = conform::count_mutation_points(ecu);
  ASSERT_GT(points, 0u);

  const std::map<std::string, std::string> faithful =
      verdicts_of(run_ota_learn({}));

  for (std::uint64_t m = 0; m < points; ++m) {
    SCOPED_TRACE("mutant " + std::to_string(m));
    LearnRunOptions opt;
    opt.mutate = m;
    const LearnReport rep = run_ota_learn(opt);
    EXPECT_TRUE(rep.converged);
    EXPECT_FALSE(rep.ok);
    ASSERT_TRUE(rep.mutation.has_value());

    std::size_t fresh_fails = 0;
    for (const LearnCheckReport& c : rep.checks) {
      if (c.verdict != "FAIL") continue;
      if (faithful.at(c.name) != "PASS") continue;
      ++fresh_fails;
      // The refinement counterexample must be concrete and reconfirmed by
      // the requirement's trace oracle, rejecting at the reported index.
      ASSERT_FALSE(c.counterexample.empty());
      const conform::TraceOracle oracle = conform::requirement_oracle(c.name);
      const conform::OracleVerdict v = oracle.judge(c.counterexample);
      EXPECT_FALSE(v.accepted);
      EXPECT_EQ("rejected@" + std::to_string(v.divergence_index), c.replay);
      // Stepping the same trace through a session reaches the same death.
      conform::OracleSession session(oracle);
      bool alive = true;
      for (const std::string& e : c.counterexample) alive = session.step(e);
      EXPECT_FALSE(alive);
      EXPECT_EQ(session.verdict().divergence_index, v.divergence_index);
    }
    EXPECT_GT(fresh_fails, 0u)
        << "mutant must fail a requirement the faithful ECU passes";
  }
}

TEST(LearnMutant, MutantKillMapIsStable) {
  // The seeded kill map itself is part of the contract: which requirement
  // catches which fault pins the alignment between mutation operators and
  // the Table III properties.
  const std::map<std::uint64_t, std::set<std::string>> expected = {
      {0, {"R03", "R04", "R05"}},  // RetargetOutput: rptSw -> rptUpd
      {1, {"R03", "R04", "R05"}},  // DropGuard: MAC check removed
      {2, {"R02"}},                // RetargetOutput: rptUpd -> rptSw
  };
  for (const auto& [seed, fails] : expected) {
    SCOPED_TRACE("mutant " + std::to_string(seed));
    LearnRunOptions opt;
    opt.mutate = seed;
    const LearnReport rep = run_ota_learn(opt);
    std::set<std::string> got;
    for (const LearnCheckReport& c : rep.checks) {
      if (c.verdict == "FAIL") got.insert(c.name);
    }
    EXPECT_EQ(got, fails);
  }
}

TEST(LearnMutant, DropGuardMutantAcceptsForgedApply) {
  // The paper's headline fault: without the MAC guard the ECU applies a
  // forged update. The learned model must contain the attack trace
  // <send.UpdApplyReqBad, rec.UpdReport>, and R05 must reject it.
  LearnRunOptions opt;
  opt.mutate = 1;  // DropGuard
  const LearnReport rep = run_ota_learn(opt);
  ASSERT_TRUE(rep.mutation.has_value());
  EXPECT_NE(rep.mutation->description.find("DropGuard"), std::string::npos);
  const Word attack = {"send.UpdApplyReqBad", "rec.UpdReport"};
  EXPECT_TRUE(rep.hypothesis.member(attack))
      << "learned mutant model must exhibit the forged-apply attack";
  // And the faithful model must not.
  const LearnReport faithful = run_ota_learn({});
  EXPECT_FALSE(faithful.hypothesis.member(attack));
}

}  // namespace
}  // namespace ecucsp::learn
