// Nested parallelism: the PR 1 batch scheduler driving the PR 5 in-check
// wave engine, with the jobs × threads ≤ hardware budget in between.
//
// The acceptance properties in test form:
//   * the budget clamp holds for every requested (jobs, threads) combination,
//     and the effective thread count is installed as the ambient
//     check_threads() for exactly the duration of run();
//   * the full OTA requirement × attacker matrix yields byte-identical
//     reports at every (jobs, threads) in {1,2,4} × {1,2,4};
//   * custom tasks that call the engine with an explicit per-call thread
//     count inside scheduler workers still match the sequential reference;
//   * a mid-flight cancel_all() unwinds a deep nested-parallel batch to
//     terminal statuses without deadlocking or leaking workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "refine/check.hpp"
#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::verify {
namespace {

std::vector<CheckTask> full_suite() {
  std::vector<CheckTask> tasks = ota_requirement_matrix();
  for (CheckTask& t : ota_extended_batch()) tasks.push_back(std::move(t));
  return tasks;
}

/// Everything the budget must not be able to perturb: verdict,
/// counterexample text, vacuity, and all the deterministic stats. The wave
/// engine guarantees product_states is thread-invariant too, so unlike the
/// cache fingerprint this one pins it.
std::vector<std::string> fingerprint(const BatchResult& batch) {
  std::vector<std::string> out;
  out.reserve(batch.outcomes.size());
  for (const TaskOutcome& o : batch.outcomes) {
    out.push_back(o.name + "|" + std::string(to_string(o.status)) + "|" +
                  o.counterexample + "|" + (o.vacuous ? "V" : "-") + "|" +
                  std::to_string(o.stats.impl_states) + "|" +
                  std::to_string(o.stats.impl_transitions) + "|" +
                  std::to_string(o.stats.spec_states) + "|" +
                  std::to_string(o.stats.spec_norm_nodes) + "|" +
                  std::to_string(o.stats.product_states));
  }
  return out;
}

TEST(NestedParallel, BudgetClampKeepsJobsTimesThreadsOnTheMachine) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const unsigned jobs : {1u, 2u, 4u}) {
    for (const unsigned threads : {0u, 1u, 2u, 4u, 64u}) {
      VerifyScheduler sched({.jobs = jobs, .threads = threads});
      const unsigned per_job = std::max(1u, hw / sched.jobs());
      const unsigned expected =
          threads == 0 ? per_job : std::max(1u, std::min(threads, per_job));
      EXPECT_EQ(sched.threads(), expected)
          << "jobs=" << jobs << " threads=" << threads;
      // jobs × threads never exceeds the hardware, modulo the floor of one
      // thread per worker that keeps degenerate requests runnable.
      EXPECT_LE(sched.jobs() * sched.threads(), std::max(hw, sched.jobs()))
          << "jobs=" << jobs << " threads=" << threads;
    }
  }
}

TEST(NestedParallel, AmbientThreadsInstalledForTheBatchAndRestored) {
  ASSERT_EQ(check_threads(), 1u) << "test requires the default ambient";

  VerifyScheduler sched({.jobs = 2, .threads = 2});
  std::atomic<unsigned> seen{0};

  CheckTask probe;
  probe.name = "ambient-probe";
  probe.custom = [&seen](CancelToken&) -> RenderedCheck {
    // What a factory/CSPm/custom task's engine calls would resolve to.
    seen.store(check_threads(), std::memory_order_relaxed);
    Context ctx;
    const EventId a = ctx.event(ctx.channel("a"));
    const ProcessRef p = ctx.prefix(a, ctx.stop());
    return render(ctx, check_refinement(ctx, p, p, Model::Traces));
  };
  probe.expected = true;

  const BatchResult batch = sched.run({probe});
  ASSERT_TRUE(batch.all_as_expected());
  EXPECT_EQ(seen.load(), sched.threads());
  // run() returned: the scheduler's ScopedCheckThreads must have unwound.
  EXPECT_EQ(check_threads(), 1u);
}

TEST(NestedParallel, MatrixIdenticalAcrossEveryJobsThreadsCombination) {
  const std::vector<CheckTask> suite = full_suite();

  const BatchResult reference = VerifyScheduler({.jobs = 1, .threads = 1}).run(suite);
  ASSERT_TRUE(reference.all_as_expected());
  const std::vector<std::string> want = fingerprint(reference);

  for (const unsigned jobs : {1u, 2u, 4u}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      if (jobs == 1 && threads == 1) continue;
      VerifyScheduler sched({.jobs = jobs, .threads = threads});
      const BatchResult got = sched.run(suite);
      EXPECT_TRUE(got.all_as_expected())
          << "jobs=" << jobs << " threads=" << threads;
      EXPECT_EQ(fingerprint(got), want)
          << "jobs=" << jobs << " threads=" << threads;
    }
  }
}

TEST(NestedParallel, MatrixVerdictsIdenticalUnderFullCompression) {
  // The compression dimension of the determinism contract: the full OTA
  // requirement × attacker matrix must produce the same verdicts,
  // counterexamples and vacuity flags at --compress=full as at none, at
  // every (jobs, threads). Exploration stats are excluded — shrinking them
  // is what the compression is for — so this fingerprints the invariant
  // surface only.
  const auto verdicts = [](const BatchResult& batch) {
    std::vector<std::string> out;
    out.reserve(batch.outcomes.size());
    for (const TaskOutcome& o : batch.outcomes) {
      out.push_back(o.name + "|" + std::string(to_string(o.status)) + "|" +
                    o.counterexample + "|" + (o.vacuous ? "V" : "-"));
    }
    return out;
  };
  const std::vector<CheckTask> suite = full_suite();

  const BatchResult reference =
      VerifyScheduler({.jobs = 1, .threads = 1}).run(suite);
  ASSERT_TRUE(reference.all_as_expected());
  const std::vector<std::string> want = verdicts(reference);

  for (const unsigned jobs : {1u, 2u}) {
    for (const unsigned threads : {1u, 2u}) {
      VerifyScheduler sched({.jobs = jobs,
                             .threads = threads,
                             .compression = Compression::Full});
      const BatchResult got = sched.run(suite);
      EXPECT_TRUE(got.all_as_expected())
          << "jobs=" << jobs << " threads=" << threads;
      EXPECT_EQ(verdicts(got), want)
          << "jobs=" << jobs << " threads=" << threads;
    }
  }
}

TEST(NestedParallel, ExplicitPerCallThreadsInsideWorkersMatchSequential) {
  // Custom tasks may bypass the ambient budget with an explicit per-call
  // thread count; verdicts must still be byte-identical. Two such tasks run
  // concurrently on two workers, so this also soaks two wave teams live at
  // once (the sharded visited-sets must not interfere across instances).
  auto make = [](std::string name, bool should_pass) {
    CheckTask t;
    t.name = std::move(name);
    t.expected = should_pass;
    t.custom = [should_pass](CancelToken& token) -> RenderedCheck {
      Context ctx;
      const EventId a = ctx.event(ctx.channel("a"));
      const EventId b = ctx.event(ctx.channel("b"));
      const ProcessRef spec = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
      const ProcessRef impl =
          should_pass ? ctx.prefix(a, ctx.prefix(b, ctx.stop()))
                      : ctx.prefix(a, ctx.prefix(a, ctx.stop()));
      return render(ctx, check_refinement(ctx, spec, impl, Model::Failures,
                                          1u << 22, &token, /*threads=*/4));
    };
    return t;
  };

  std::vector<CheckTask> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(make("pass-" + std::to_string(i), true));
    tasks.push_back(make("fail-" + std::to_string(i), false));
  }

  const BatchResult reference = VerifyScheduler({.jobs = 1}).run(tasks);
  ASSERT_TRUE(reference.all_as_expected());

  const BatchResult nested = VerifyScheduler({.jobs = 2}).run(tasks);
  EXPECT_TRUE(nested.all_as_expected());
  EXPECT_EQ(fingerprint(nested), fingerprint(reference));
}

TEST(NestedParallel, MidFlightCancellationUnwindsWithoutDeadlockOrLeak) {
  // Dilated matrix: enough product-space work that cancel_all() lands while
  // wave teams are mid-exploration on multiple workers at once.
  const std::vector<CheckTask> suite =
      ota_requirement_matrix({.dilation = 5});

  VerifyScheduler sched({.jobs = 2, .threads = 2});
  std::jthread killer([&sched] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sched.cancel_all();
  });

  const BatchResult batch = sched.run(suite);
  killer.join();

  // Every task reached a terminal status — nothing hung. Do NOT assert
  // all_as_expected: whichever tasks finished before the cancellation keep
  // their real verdicts, the rest come back Cancelled.
  ASSERT_EQ(batch.outcomes.size(), suite.size());
  for (const TaskOutcome& o : batch.outcomes) {
    EXPECT_TRUE(o.status == TaskStatus::Passed ||
                o.status == TaskStatus::Failed ||
                o.status == TaskStatus::Cancelled ||
                o.status == TaskStatus::TimedOut)
        << o.name << ": " << to_string(o.status);
  }

  // The pool survived: a follow-up nested-parallel batch on the same
  // scheduler runs to completion with correct verdicts (no leaked tokens,
  // no worker stuck at a wave barrier).
  const BatchResult probe = sched.run(full_suite());
  EXPECT_TRUE(probe.all_as_expected());
}

}  // namespace
}  // namespace ecucsp::verify
