#include <gtest/gtest.h>

#include "cspm/eval.hpp"
#include "cspm/parser.hpp"

namespace ecucsp::cspm {
namespace {

class CspmEvalTest : public ::testing::Test {
 protected:
  Context ctx;
  Evaluator ev{ctx};
};

TEST_F(CspmEvalTest, ArithmeticAndBooleans) {
  ev.load_source("");
  EXPECT_EQ(ev.evaluate_expression("1 + 2 * 3").integer, 7);
  EXPECT_EQ(ev.evaluate_expression("(10 - 4) / 3").integer, 2);
  EXPECT_EQ(ev.evaluate_expression("-7 % 3").integer, 2);  // mathematical mod
  EXPECT_TRUE(ev.evaluate_expression("1 < 2 and not (3 == 4)").boolean);
  EXPECT_TRUE(ev.evaluate_expression("false or 2 >= 2").boolean);
}

TEST_F(CspmEvalTest, SetsAndBuiltins) {
  ev.load_source("");
  EXPECT_EQ(ev.evaluate_expression("card({0..4})").integer, 5);
  EXPECT_EQ(ev.evaluate_expression("card(union({1,2},{2,3}))").integer, 3);
  EXPECT_EQ(ev.evaluate_expression("card(inter({1,2},{2,3}))").integer, 1);
  EXPECT_EQ(ev.evaluate_expression("card(diff({1,2},{2,3}))").integer, 1);
  EXPECT_TRUE(ev.evaluate_expression("member(2, {1,2,3})").boolean);
  EXPECT_FALSE(ev.evaluate_expression("member(9, {1,2,3})").boolean);
  EXPECT_TRUE(ev.evaluate_expression("empty({})").boolean);
}

TEST_F(CspmEvalTest, IfAndLet) {
  ev.load_source("");
  EXPECT_EQ(ev.evaluate_expression("if 1 < 2 then 10 else 20").integer, 10);
  EXPECT_EQ(ev.evaluate_expression("let x = 4 within x * x").integer, 16);
  EXPECT_EQ(
      ev.evaluate_expression("let sq(x) = x * x within sq(3) + sq(4)").integer,
      25);
}

TEST_F(CspmEvalTest, DatatypeMembersAreBound) {
  ev.load_source("datatype Msg = reqSw | rptSw | reqApp | rptUpd");
  EXPECT_EQ(ev.evaluate_expression("card(Msg)").integer, 4);
  EXPECT_TRUE(ev.evaluate_expression("member(reqSw, Msg)").boolean);
  EXPECT_TRUE(ev.evaluate_expression("reqSw == reqSw").boolean);
  EXPECT_FALSE(ev.evaluate_expression("reqSw == rptSw").boolean);
}

TEST_F(CspmEvalTest, NametypeBindsASet) {
  ev.load_source("nametype Small = {0..3}");
  EXPECT_EQ(ev.evaluate_expression("card(Small)").integer, 4);
}

TEST_F(CspmEvalTest, ChannelDeclarationCreatesCoreChannel) {
  ev.load_source(
      "datatype Msg = reqSw | rptSw\n"
      "channel send, rec : Msg\n");
  EXPECT_TRUE(ctx.find_channel("send").has_value());
  EXPECT_TRUE(ctx.find_channel("rec").has_value());
  EXPECT_EQ(ctx.events_of(*ctx.find_channel("send")).size(), 2u);
}

TEST_F(CspmEvalTest, SimplePrefixProcess) {
  ev.load_source(
      "channel a, b\n"
      "P = a -> b -> STOP\n");
  const ProcessRef p = ev.process("P");
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ctx.event_name(ts[0].event), "a");
}

TEST_F(CspmEvalTest, RecursiveProcessTiesTheKnot) {
  ev.load_source(
      "channel a\n"
      "P = a -> P\n");
  const ProcessRef p = ev.process("P");
  const auto& ts = ctx.transitions(p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ctx.canonical(ts[0].target), ctx.canonical(p));
}

TEST_F(CspmEvalTest, MutualRecursion) {
  ev.load_source(
      "channel a, b\n"
      "P = a -> Q\n"
      "Q = b -> P\n");
  const Lts lts = compile_lts(ctx, ev.process("P"));
  EXPECT_EQ(lts.state_count(), 2u);
}

TEST_F(CspmEvalTest, ParameterisedRecursion) {
  ev.load_source(
      "channel tickc\n"
      "CNT(n) = n > 0 & tickc -> CNT(n - 1)\n"
      "TOP = CNT(3)\n");
  const auto traces = enumerate_traces(ctx, ev.process("TOP"), 10);
  // Longest trace has exactly three ticks.
  std::size_t longest = 0;
  for (const auto& t : traces) longest = std::max(longest, t.size());
  EXPECT_EQ(longest, 3u);
}

TEST_F(CspmEvalTest, InputExpandsToExternalChoice) {
  ev.load_source(
      "datatype Msg = reqSw | rptSw\n"
      "channel c : Msg\n"
      "P = c?x -> STOP\n");
  const auto& ts = ctx.transitions(ev.process("P"));
  EXPECT_EQ(ts.size(), 2u);
}

TEST_F(CspmEvalTest, InputRestrictionNarrowsTheChoice) {
  ev.load_source(
      "channel c : {0..9}\n"
      "P = c?x:{0..2} -> STOP\n");
  EXPECT_EQ(ctx.transitions(ev.process("P")).size(), 3u);
}

TEST_F(CspmEvalTest, InputBinderUsableInContinuation) {
  ev.load_source(
      "channel c : {0..2}\n"
      "channel d : {0..4}\n"
      "P = c?x -> d!x + 1 -> STOP\n");
  const ProcessRef p = ev.process("P");
  // Take the branch c.2 and expect d.3 next.
  for (const Transition& t : ctx.transitions(p)) {
    if (ctx.event_name(t.event) == "c.2") {
      const auto& next = ctx.transitions(t.target);
      ASSERT_EQ(next.size(), 1u);
      EXPECT_EQ(ctx.event_name(next[0].event), "d.3");
    }
  }
}

TEST_F(CspmEvalTest, GuardBlocksWhenFalse) {
  ev.load_source(
      "channel a\n"
      "P(n) = n > 0 & a -> STOP\n"
      "GOOD = P(1)\n"
      "BAD = P(0)\n");
  EXPECT_EQ(ctx.transitions(ev.process("GOOD")).size(), 1u);
  EXPECT_TRUE(ctx.transitions(ev.process("BAD")).empty());
}

TEST_F(CspmEvalTest, SynchronisedParallel) {
  ev.load_source(
      "channel a, b\n"
      "P = a -> b -> STOP\n"
      "Q = a -> STOP\n"
      "SYS = P [| {| a |} |] Q\n");
  const auto& ts = ctx.transitions(ev.process("SYS"));
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ctx.event_name(ts[0].event), "a");
}

TEST_F(CspmEvalTest, AlphabetisedParallelRestrictsSides) {
  ev.load_source(
      "channel a, b, c\n"
      "P = a -> c -> STOP\n"
      "Q = b -> c -> STOP\n"
      "SYS = P [ {|a, c|} || {|b, c|} ] Q\n");
  // a and b interleave; c synchronises.
  const ProcessRef sys = ev.process("SYS");
  const auto traces = enumerate_traces(ctx, sys, 4);
  const EventId a = ctx.event("a");
  const EventId b = ctx.event("b");
  const EventId c = ctx.event("c");
  const auto has = [&](std::vector<EventId> t) {
    return std::find(traces.begin(), traces.end(), t) != traces.end();
  };
  EXPECT_TRUE(has({a, b, c}));
  EXPECT_TRUE(has({b, a, c}));
  EXPECT_FALSE(has({a, c}));  // c needs both sides ready
}

TEST_F(CspmEvalTest, HidingRemovesEvents) {
  ev.load_source(
      "channel a, b\n"
      "P = a -> b -> STOP\n"
      "H = P \\ {| a |}\n");
  const auto traces = enumerate_traces(ctx, ev.process("H"), 4);
  for (const auto& t : traces) {
    for (EventId e : t) EXPECT_NE(ctx.event_name(e), "a");
  }
}

TEST_F(CspmEvalTest, RenamingChannelWide) {
  ev.load_source(
      "datatype Msg = reqSw | rptSw\n"
      "channel c, d : Msg\n"
      "P = c?x -> STOP\n"
      "R = P [[ c <- d ]]\n");
  const auto& ts = ctx.transitions(ev.process("R"));
  ASSERT_EQ(ts.size(), 2u);
  for (const Transition& t : ts) {
    EXPECT_EQ(ctx.event_name(t.event).substr(0, 2), "d.");
  }
}

TEST_F(CspmEvalTest, ReplicatedExternalChoice) {
  ev.load_source(
      "channel c : {0..3}\n"
      "P = [] x:{0..3} @ c!x -> STOP\n");
  EXPECT_EQ(ctx.transitions(ev.process("P")).size(), 4u);
}

TEST_F(CspmEvalTest, ReplicatedInterleave) {
  ev.load_source(
      "channel c : {0..2}\n"
      "P = ||| x:{0..2} @ c!x -> SKIP\n");
  EXPECT_EQ(ctx.transitions(ev.process("P")).size(), 3u);
}

TEST_F(CspmEvalTest, SequentialCompositionAndSkip) {
  ev.load_source(
      "channel a, b\n"
      "P = (a -> SKIP) ; (b -> SKIP)\n");
  const auto traces = enumerate_traces(ctx, ev.process("P"), 4);
  const EventId a = ctx.event("a");
  const EventId b = ctx.event("b");
  EXPECT_TRUE(std::find(traces.begin(), traces.end(),
                        std::vector<EventId>{a, b, TICK}) != traces.end());
}

TEST_F(CspmEvalTest, PaperSP02ScriptEndToEnd) {
  // The full Section V-B example: SP02 refined by VMG || ECU.
  ev.load_source(
      "datatype Msg = reqSw | rptSw\n"
      "channel send, rec : Msg\n"
      "SP02 = send.reqSw -> rec.rptSw -> SP02\n"
      "VMG = send.reqSw -> rec.rptSw -> VMG\n"
      "ECU = send.reqSw -> rec.rptSw -> ECU\n"
      "SYSTEM = VMG [| {| send, rec |} |] ECU\n"
      "assert SP02 [T= SYSTEM\n"
      "assert SYSTEM :[deadlock free [F]]\n"
      "assert SYSTEM :[divergence free]\n"
      "assert SYSTEM :[deterministic]\n");
  const auto results = ev.check_assertions();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.result.passed) << r.description;
  }
}

TEST_F(CspmEvalTest, FailedAssertionProducesCounterexample) {
  ev.load_source(
      "channel a, b\n"
      "SPEC = a -> SPEC\n"
      "IMPL = a -> b -> IMPL\n"
      "assert SPEC [T= IMPL\n");
  const auto results = ev.check_assertions();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].result.passed);
  ASSERT_TRUE(results[0].result.counterexample.has_value());
  EXPECT_EQ(ctx.event_name(results[0].result.counterexample->event), "b");
}

TEST_F(CspmEvalTest, TypeErrorsAreReported) {
  ev.load_source("channel a\nP = a -> STOP\n");
  EXPECT_THROW(ev.evaluate_expression("P + 1"), EvalError);
  EXPECT_THROW(ev.evaluate_expression("1 -> STOP"), EvalError);
  EXPECT_THROW(ev.evaluate_expression("card(5)"), EvalError);
  EXPECT_THROW(ev.evaluate_expression("nosuchname"), EvalError);
}

TEST_F(CspmEvalTest, EventOutsideDomainFails) {
  ev.load_source("channel c : {0..2}\nP = c!7 -> STOP\n");
  EXPECT_THROW(ev.process("P"), ModelError);
}

TEST_F(CspmEvalTest, MultipleScriptsShareAContext) {
  ev.load_source(
      "datatype Msg = reqSw | rptSw\n"
      "channel send : Msg\n"
      "IMPL = send.reqSw -> IMPL\n");
  ev.load_source("SPEC = send?x -> SPEC\nassert SPEC [T= IMPL\n");
  const auto results = ev.check_assertions();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].result.passed);
}

TEST_F(CspmEvalTest, TupleValues) {
  ev.load_source("");
  const CVal v = ev.evaluate_expression("(1, 2)");
  ASSERT_EQ(v.kind, CVal::Kind::Data);
  EXPECT_TRUE(v.data.is_tuple());
}


TEST_F(CspmEvalTest, InterruptOperator) {
  ev.load_source(
      "channel work, alarm\n"
      "P = (work -> work -> STOP) /\\ (alarm -> STOP)\n");
  const auto traces = enumerate_traces(ctx, ev.process("P"), 3);
  const EventId w = ctx.event("work");
  const EventId al = ctx.event("alarm");
  const auto has = [&](std::vector<EventId> t) {
    return std::find(traces.begin(), traces.end(), t) != traces.end();
  };
  EXPECT_TRUE(has({w, al}));       // interrupted mid-way
  EXPECT_TRUE(has({w, w}));        // ran to completion
  EXPECT_FALSE(has({al, w}));      // after the alarm, work is gone
}

TEST_F(CspmEvalTest, SlidingChoiceOperator) {
  ev.load_source(
      "channel fast, slow\n"
      "P = (fast -> STOP) [> (slow -> STOP)\n");
  const auto traces = enumerate_traces(ctx, ev.process("P"), 2);
  const EventId f = ctx.event("fast");
  const EventId sl = ctx.event("slow");
  const auto has = [&](std::vector<EventId> t) {
    return std::find(traces.begin(), traces.end(), t) != traces.end();
  };
  EXPECT_TRUE(has({f}));
  EXPECT_TRUE(has({sl}));
  EXPECT_FALSE(has({f, sl}));
}


TEST_F(CspmEvalTest, SetComprehension) {
  ev.load_source("");
  EXPECT_EQ(ev.evaluate_expression("card({x * 2 | x <- {0..4}})").integer, 5);
  EXPECT_EQ(
      ev.evaluate_expression("card({x | x <- {0..9}, x % 2 == 0})").integer,
      5);
  EXPECT_TRUE(ev.evaluate_expression(
                    "member(12, {x * y | x <- {2,3}, y <- {4,5}, x < y})")
                  .boolean);
  // Empty result and empty generator domain.
  EXPECT_TRUE(
      ev.evaluate_expression("empty({x | x <- {0..5}, x > 9})").boolean);
}

TEST_F(CspmEvalTest, SetComprehensionOverDatatype) {
  ev.load_source("datatype Msg = reqSw | rptSw | reqApp | rptUpd");
  EXPECT_EQ(
      ev.evaluate_expression("card({m | m <- Msg, m != reqSw})").integer, 3);
}

TEST_F(CspmEvalTest, SetComprehensionInProcessContext) {
  ev.load_source(
      "channel c : {0..9}\n"
      "P = [] x:{y | y <- {0..9}, y % 3 == 0} @ c!x -> STOP\n");
  EXPECT_EQ(ctx.transitions(ev.process("P")).size(), 4u);  // 0,3,6,9
}

TEST_F(CspmEvalTest, UnboundedParameterRecursionIsAnErrorNotACrash) {
  // Each distinct instantiation unfolds eagerly (only an already-in-progress
  // key is tied lazily), so COUNT(n) = a -> COUNT(n+1) would chase n to
  // infinity and overflow the C++ stack. The evaluator must refuse with a
  // diagnosable error instead; the verify scheduler maps it to TaskStatus::
  // Error and keeps the worker alive.
  ev.load_source(
      "channel a\n"
      "COUNT(n) = a -> COUNT(n+1)\n");
  EXPECT_THROW(ev.evaluate_expression("COUNT(0)"), EvalError);
}

}  // namespace
}  // namespace ecucsp::cspm
