#include <gtest/gtest.h>

#include <random>

#include "refine/dot.hpp"
#include "refine/minimize.hpp"

namespace ecucsp {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  MinimizeTest() {
    a = ctx.event(ctx.channel("a"));
    b = ctx.event(ctx.channel("b"));
    c = ctx.event(ctx.channel("c"));
  }
  Context ctx;
  EventId a, b, c;
};

TEST_F(MinimizeTest, BisimilarBranchesCollapse) {
  // a -> b -> STOP [] c -> b -> (STOP \ {a}): hiding over STOP is
  // behaviourally STOP but a structurally distinct term, so the LTS has two
  // bisimilar-but-distinct state pairs that minimisation must merge.
  const ProcessRef stop_variant = ctx.hide(ctx.stop(), EventSet{a});
  const ProcessRef p =
      ctx.ext_choice(ctx.prefix(a, ctx.prefix(b, ctx.stop())),
                     ctx.prefix(c, ctx.prefix(b, stop_variant)));
  const Lts lts = compile_lts(ctx, p);
  ASSERT_EQ(lts.state_count(), 5u);
  const MinimizeResult min = minimize_strong(lts);
  EXPECT_EQ(min.lts.state_count(), 3u);  // root, b-prefix, dead
}

TEST_F(MinimizeTest, MinimalLtsIsFixpoint) {
  ctx.define("P", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("P")));
  });
  const Lts lts = compile_lts(ctx, ctx.var("P"));
  const MinimizeResult once = minimize_strong(lts);
  const MinimizeResult twice = minimize_strong(once.lts);
  EXPECT_EQ(once.lts.state_count(), twice.lts.state_count());
}

TEST_F(MinimizeTest, DistinguishableStatesStaySeparate) {
  // a -> b -> STOP: all three states have different futures.
  const Lts lts = compile_lts(ctx, ctx.prefix(a, ctx.prefix(b, ctx.stop())));
  EXPECT_EQ(minimize_strong(lts).lts.state_count(), 3u);
}

TEST_F(MinimizeTest, RootMapsToQuotientRoot) {
  const Lts lts = compile_lts(ctx, ctx.prefix(a, ctx.stop()));
  const MinimizeResult min = minimize_strong(lts);
  EXPECT_EQ(min.block_of[lts.root], min.lts.root);
  EXPECT_EQ(min.original_states, lts.state_count());
}

TEST_F(MinimizeTest, LtsToProcessReproducesBehaviour) {
  const ProcessRef p = ctx.ext_choice(
      ctx.prefix(a, ctx.int_choice(ctx.prefix(b, ctx.stop()), ctx.skip())),
      ctx.prefix(c, ctx.skip()));
  const Lts lts = compile_lts(ctx, p);
  const ProcessRef wrapped = lts_to_process(ctx, lts, "_WRAP1");
  for (const Model m :
       {Model::Traces, Model::Failures, Model::FailuresDivergences}) {
    EXPECT_TRUE(check_refinement(ctx, p, wrapped, m).passed) << to_string(m);
    EXPECT_TRUE(check_refinement(ctx, wrapped, p, m).passed) << to_string(m);
  }
}

TEST_F(MinimizeTest, CompressPreservesSemantics) {
  // Random processes: compress(P) must be equivalent to P in all models.
  std::mt19937 rng(7);
  std::vector<EventId> alpha{a, b, c};
  const std::function<ProcessRef(int)> gen = [&](int depth) -> ProcessRef {
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 6);
    switch (pick(rng)) {
      case 0: return ctx.stop();
      case 1: return ctx.skip();
      case 2: return ctx.prefix(alpha[rng() % 3], gen(depth - 1));
      case 3: return ctx.ext_choice(gen(depth - 1), gen(depth - 1));
      case 4: return ctx.int_choice(gen(depth - 1), gen(depth - 1));
      case 5: return ctx.seq(gen(depth - 1), gen(depth - 1));
      default: return ctx.interleave(gen(depth - 1), gen(depth - 1));
    }
  };
  for (int i = 0; i < 12; ++i) {
    const ProcessRef p = gen(3);
    const ProcessRef q = compress(ctx, p, "_CMP" + std::to_string(i));
    for (const Model m :
         {Model::Traces, Model::Failures, Model::FailuresDivergences}) {
      EXPECT_TRUE(check_refinement(ctx, p, q, m).passed)
          << "iter " << i << " model " << to_string(m);
      EXPECT_TRUE(check_refinement(ctx, q, p, m).passed)
          << "iter " << i << " model " << to_string(m);
    }
  }
}

TEST_F(MinimizeTest, CompressShrinksRedundantStructure) {
  // Interleaving two identical cyclic processes has bisimilar interior
  // states that compress.
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef p = ctx.interleave(ctx.var("T"), ctx.var("T"));
  const Lts lts = compile_lts(ctx, p);
  const MinimizeResult min = minimize_strong(lts);
  EXPECT_EQ(min.lts.state_count(), 1u);  // all states do 'a' forever
  EXPECT_GE(min.original_states, 1u);
}

// --- dot export ----------------------------------------------------------------

TEST_F(MinimizeTest, LtsDotContainsStatesAndLabels) {
  const Lts lts = compile_lts(ctx, ctx.prefix(a, ctx.prefix(b, ctx.stop())));
  const std::string dot = lts_to_dot(ctx, lts);
  EXPECT_NE(dot.find("digraph lts"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // root marker
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

TEST_F(MinimizeTest, DotTauStyling) {
  const ProcessRef p = ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.stop());
  const std::string dot = lts_to_dot(ctx, compile_lts(ctx, p));
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  DotOptions no_tau;
  no_tau.show_tau = false;
  const std::string dot2 = lts_to_dot(ctx, compile_lts(ctx, p), no_tau);
  EXPECT_EQ(dot2.find("style=dashed"), std::string::npos);
}

TEST_F(MinimizeTest, DotRefusesHugeGraphs) {
  DotOptions opts;
  opts.max_states = 2;
  const Lts lts = compile_lts(ctx, ctx.prefix(a, ctx.prefix(b, ctx.stop())));
  EXPECT_THROW(lts_to_dot(ctx, lts, opts), std::length_error);
}

TEST_F(MinimizeTest, CounterexampleDotShowsViolation) {
  const CheckResult r = check_refinement(
      ctx, ctx.prefix(a, ctx.stop()),
      ctx.prefix(a, ctx.prefix(b, ctx.stop())), Model::Traces);
  ASSERT_FALSE(r.passed);
  const std::string dot = counterexample_to_dot(ctx, *r.counterexample);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("violation"), std::string::npos);
}

}  // namespace
}  // namespace ecucsp
