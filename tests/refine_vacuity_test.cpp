// Vacuity detection on refinement checks: a PASS where the implementation
// never reaches any event the specification actually constrains (allowed in
// some spec states but not all) proves nothing about the property — the
// classic symptom of an extractor that mis-mapped its channels. The engine
// flags such passes with CheckResult::vacuous.
#include <gtest/gtest.h>

#include "refine/check.hpp"

namespace ecucsp {
namespace {

class VacuityTest : public ::testing::Test {
 protected:
  VacuityTest() {
    a = ctx.event(ctx.channel("a"));
    b = ctx.event(ctx.channel("b"));
  }

  Context ctx;
  EventId a, b;
};

TEST_F(VacuityTest, PassWithoutTouchingConstrainedEventsIsVacuous) {
  // SPEC = a -> STOP constrains 'a' (allowed initially, forbidden after);
  // IMPL = STOP trivially trace-refines it while never going near 'a'.
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const CheckResult r =
      check_refinement(ctx, spec, ctx.stop(), Model::Traces);
  EXPECT_TRUE(r.passed);
  EXPECT_TRUE(r.vacuous);
}

TEST_F(VacuityTest, PassThatExercisesTheSpecIsNotVacuous) {
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.prefix(a, ctx.stop());
  const CheckResult r = check_refinement(ctx, spec, impl, Model::Traces);
  EXPECT_TRUE(r.passed);
  EXPECT_FALSE(r.vacuous);
}

TEST_F(VacuityTest, FailedChecksAreNeverVacuous) {
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.prefix(b, ctx.stop());
  const CheckResult r = check_refinement(ctx, spec, impl, Model::Traces);
  EXPECT_FALSE(r.passed);
  EXPECT_FALSE(r.vacuous);
}

TEST_F(VacuityTest, UnconstrainingSpecCannotBeVacuouslyPassed) {
  // REC = a -> REC allows 'a' in its only state: constrained(SPEC) is
  // empty, so even IMPL = STOP is a genuine (if weak) pass, not a vacuous
  // one — there is nothing the impl could have failed to exercise.
  ctx.define("REC", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("REC"));
  });
  const CheckResult r =
      check_refinement(ctx, ctx.var("REC"), ctx.stop(), Model::Traces);
  EXPECT_TRUE(r.passed);
  EXPECT_FALSE(r.vacuous);
}

TEST_F(VacuityTest, VacuityIsDetectedInTheFailuresModelToo) {
  // (a -> STOP) |~| STOP may refuse everything, so STOP passes [F= — but
  // still without ever reaching the constrained event 'a'.
  const ProcessRef spec =
      ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.stop());
  const CheckResult r =
      check_refinement(ctx, spec, ctx.stop(), Model::Failures);
  EXPECT_TRUE(r.passed);
  EXPECT_TRUE(r.vacuous);
}

TEST_F(VacuityTest, ImplReachingOneConstrainedEventSuffices) {
  // SPEC = a -> b -> STOP constrains both events; an impl that performs
  // only the first still touches the constrained set, so the pass stands.
  const ProcessRef spec = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const ProcessRef impl = ctx.prefix(a, ctx.stop());
  const CheckResult r = check_refinement(ctx, spec, impl, Model::Traces);
  EXPECT_TRUE(r.passed);
  EXPECT_FALSE(r.vacuous);
}

TEST_F(VacuityTest, UnaryChecksNeverReportVacuity) {
  ctx.define("LOOP", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("LOOP"));
  });
  const CheckResult r = check_deadlock_free(ctx, ctx.var("LOOP"));
  EXPECT_TRUE(r.passed);
  EXPECT_FALSE(r.vacuous);
}

}  // namespace
}  // namespace ecucsp
