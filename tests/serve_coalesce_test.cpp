// Single-flight coalescing contract (the heart of the serve layer):
//
//   * K concurrent identical submissions cause exactly ONE engine
//     invocation, and all K callers receive byte-identical verdicts —
//     counterexample bytes, vacuity, from_cache flags, the lot — across
//     the whole jobs x threads grid {1,2,4}^2;
//   * a waiter departing mid-flight (its callback goes nowhere) never
//     aborts the shared check: the flight's CancelToken stays unfired and
//     every remaining waiter is answered;
//   * distinct keys do NOT coalesce;
//   * the response memo answers post-completion identical requests without
//     another engine run, byte-identically;
//   * drain cancels in-flight work cooperatively and rejects new intake.
//
// Tasks are latch-gated custom-mode CheckTasks under controlled digests, so
// "concurrent" is deterministic: the leader blocks inside the engine until
// every sharer has provably joined the flight.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

using namespace ecucsp;
using namespace ecucsp::serve;

namespace {

/// A turnstile the gated task blocks on until the test opens it.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;             // tasks currently blocked (or past) the gate
  std::atomic<int> runs{0};    // engine invocations — the coalescing meter
  std::atomic<bool> saw_cancel{false};

  void open_up() {
    {
      std::lock_guard lk(m);
      open = true;
    }
    cv.notify_all();
  }
  void wait_entered(int n) {
    std::unique_lock lk(m);
    cv.wait(lk, [&] { return entered >= n; });
  }
};

/// Custom-mode task: counts the invocation, parks on the gate, then
/// produces a deterministic FAILED verdict with a counterexample.
verify::CheckTask gated_task(Gate& gate) {
  verify::CheckTask task;
  task.name = "gated";
  task.custom = [&gate](CancelToken& token) {
    gate.runs.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock lk(gate.m);
      ++gate.entered;
      gate.cv.notify_all();
      gate.cv.wait(lk, [&gate] { return gate.open; });
    }
    gate.saw_cancel.store(token.cancel_requested(), std::memory_order_relaxed);
    token.poll_now();  // unwind as Cancelled if drain fired the token
    verify::RenderedCheck rc;
    rc.result.passed = false;
    rc.result.stats.impl_states = 7;
    rc.result.stats.impl_transitions = 9;
    rc.counterexample = "gated spec [T= impl: <send.req, rec.rpt> then boom";
    return rc;
  };
  return task;
}

/// Collects callbacks and lets the test block until N have landed.
struct Collector {
  std::mutex m;
  std::condition_variable cv;
  std::vector<CheckResponse> got;

  VerifyService::Callback sink() {
    return [this](CheckResponse r) {
      {
        std::lock_guard lk(m);
        got.push_back(std::move(r));
      }
      cv.notify_all();
    };
  }
  void wait(std::size_t n) {
    std::unique_lock lk(m);
    cv.wait(lk, [&] { return got.size() >= n; });
  }
};

store::Digest key_of(std::uint64_t n) { return store::Digest{n, ~n}; }

TEST(ServeCoalesceTest, KIdenticalSubmissionsOneEngineRunAcrossGrid) {
  constexpr int K = 6;
  for (const unsigned jobs : {1u, 2u, 4u}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      ServiceOptions opts;
      opts.jobs = jobs;
      opts.threads = threads;
      opts.memo_capacity = 0;  // isolate single-flight from the memo
      VerifyService service(opts);

      Gate gate;
      Collector out;
      for (int i = 0; i < K; ++i) {
        service.submit_keyed(key_of(1), gated_task(gate), i + 1, out.sink());
      }
      gate.wait_entered(1);  // the leader is inside the engine
      EXPECT_EQ(service.in_flight(), 1u)
          << "jobs=" << jobs << " threads=" << threads;
      gate.open_up();
      out.wait(K);

      EXPECT_EQ(gate.runs.load(), 1)
          << "jobs=" << jobs << " threads=" << threads;
      EXPECT_EQ(service.stats().engine_runs.load(), 1u);
      EXPECT_EQ(service.stats().coalesced.load(),
                static_cast<std::uint64_t>(K - 1));

      // All K sharers: byte-identical verdicts, counterexamples included,
      // same transport flags, distinct correlation ids.
      ASSERT_EQ(out.got.size(), static_cast<std::size_t>(K));
      const std::string block = out.got[0].verdict_block();
      std::vector<bool> seen(K + 1, false);
      for (const CheckResponse& r : out.got) {
        EXPECT_EQ(r.status, ServeStatus::Failed);
        EXPECT_EQ(r.verdict_block(), block);
        EXPECT_EQ(r.counterexample,
                  "gated spec [T= impl: <send.req, rec.rpt> then boom");
        EXPECT_FALSE(r.from_cache);
        EXPECT_FALSE(r.memo_hit);
        EXPECT_TRUE(r.coalesced);
        ASSERT_GE(r.id, 1u);
        ASSERT_LE(r.id, static_cast<std::uint64_t>(K));
        EXPECT_FALSE(seen[r.id]) << "duplicate response for id " << r.id;
        seen[r.id] = true;
      }
    }
  }
}

TEST(ServeCoalesceTest, DistinctKeysDoNotCoalesce) {
  ServiceOptions opts;
  opts.jobs = 4;
  opts.memo_capacity = 0;
  VerifyService service(opts);

  Gate gate;
  Collector out;
  constexpr int N = 4;
  for (int i = 0; i < N; ++i) {
    service.submit_keyed(key_of(100 + i), gated_task(gate), i + 1, out.sink());
  }
  gate.wait_entered(N);  // all four run concurrently — nothing coalesced
  gate.open_up();
  out.wait(N);
  EXPECT_EQ(gate.runs.load(), N);
  EXPECT_EQ(service.stats().coalesced.load(), 0u);
  for (const CheckResponse& r : out.got) EXPECT_FALSE(r.coalesced);
}

TEST(ServeCoalesceTest, DepartedWaiterNeverAbortsTheSharedFlight) {
  ServiceOptions opts;
  opts.jobs = 2;
  opts.memo_capacity = 0;
  VerifyService service(opts);

  Gate gate;
  Collector out;
  std::atomic<int> dropped{0};
  service.submit_keyed(key_of(2), gated_task(gate), 1, out.sink());
  gate.wait_entered(1);
  // Two more sharers; the middle one "disconnects": its callback only
  // counts — exactly what the server does for a vanished connection.
  service.submit_keyed(key_of(2), gated_task(gate), 2,
                       [&dropped](CheckResponse) { ++dropped; });
  service.submit_keyed(key_of(2), gated_task(gate), 3, out.sink());
  gate.open_up();
  out.wait(2);

  EXPECT_EQ(gate.runs.load(), 1);
  EXPECT_FALSE(gate.saw_cancel.load())
      << "a departing waiter must not fire the flight's CancelToken";
  EXPECT_EQ(dropped.load(), 1);
  for (const CheckResponse& r : out.got) {
    EXPECT_EQ(r.status, ServeStatus::Failed);
    EXPECT_TRUE(r.coalesced);
  }
}

TEST(ServeCoalesceTest, MemoAnswersRepeatsWithoutEngineByteIdentically) {
  ServiceOptions opts;
  opts.jobs = 2;
  opts.memo_capacity = 64;
  VerifyService service(opts);

  Gate gate;
  gate.open_up();  // no need to hold anything back here
  Collector first;
  service.submit_keyed(key_of(3), gated_task(gate), 1, first.sink());
  first.wait(1);
  ASSERT_EQ(gate.runs.load(), 1);

  Collector repeat;
  service.submit_keyed(key_of(3), gated_task(gate), 2, repeat.sink());
  repeat.wait(1);
  EXPECT_EQ(gate.runs.load(), 1) << "memo hit must not touch the engine";
  EXPECT_EQ(service.stats().memo_hits.load(), 1u);
  EXPECT_TRUE(repeat.got[0].memo_hit);
  EXPECT_TRUE(repeat.got[0].from_cache);
  EXPECT_EQ(repeat.got[0].id, 2u);
  EXPECT_EQ(repeat.got[0].verdict_block(), first.got[0].verdict_block());
}

TEST(ServeCoalesceTest, DrainCancelsInFlightAndRejectsNewIntake) {
  ServiceOptions opts;
  opts.jobs = 1;
  opts.memo_capacity = 0;
  VerifyService service(opts);

  // A task that can ONLY finish by cancellation: drain must both fire the
  // flight's token and wait for the cooperative unwinding.
  std::atomic<bool> entered{false};
  verify::CheckTask task;
  task.name = "spin-until-cancelled";
  task.custom = [&entered](CancelToken& token) -> verify::RenderedCheck {
    entered.store(true, std::memory_order_relaxed);
    while (!token.cancel_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    token.poll_now();  // throws CheckCancelled
    return {};
  };
  Collector out;
  service.submit_keyed(key_of(4), std::move(task), 1, out.sink());
  while (!entered.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  service.begin_drain();
  Gate gate;
  Collector rejected;
  service.submit_keyed(key_of(5), gated_task(gate), 2, rejected.sink());
  rejected.wait(1);
  EXPECT_EQ(rejected.got[0].status, ServeStatus::ShuttingDown);

  const bool clean = service.drain(std::chrono::milliseconds(0));
  EXPECT_FALSE(clean) << "a 0ms budget with work in flight means cancellation";
  out.wait(1);
  EXPECT_EQ(out.got[0].status, ServeStatus::Cancelled);
  EXPECT_EQ(service.in_flight(), 0u);
}

TEST(ServeCoalesceTest, BadRequestAndOverloadAreRejections) {
  ServiceOptions opts;
  opts.jobs = 1;
  opts.max_queue = 1;  // capacity 2: one running + one queued
  opts.memo_capacity = 0;
  VerifyService service(opts);

  Collector bad;
  service.submit(CheckRequest{}, bad.sink());  // no sources
  bad.wait(1);
  EXPECT_EQ(bad.got[0].status, ServeStatus::BadRequest);

  Gate gate;
  Collector out;
  service.submit_keyed(key_of(6), gated_task(gate), 1, out.sink());
  gate.wait_entered(1);
  service.submit_keyed(key_of(7), gated_task(gate), 2, out.sink());

  Collector shed;
  service.submit_keyed(key_of(8), gated_task(gate), 3, shed.sink());
  shed.wait(1);
  EXPECT_EQ(shed.got[0].status, ServeStatus::Overloaded);
  EXPECT_GE(shed.got[0].retry_after_ms, 50u);
  EXPECT_EQ(service.stats().shed.load(), 1u);

  // Coalesced waiters bypass admission even at full capacity.
  Collector waiter;
  service.submit_keyed(key_of(6), gated_task(gate), 4, waiter.sink());
  gate.open_up();
  out.wait(2);
  waiter.wait(1);
  EXPECT_TRUE(waiter.got[0].coalesced);
  EXPECT_EQ(waiter.got[0].status, ServeStatus::Failed);
}

}  // namespace
