#include <gtest/gtest.h>

#include "cspm/lexer.hpp"

namespace ecucsp::cspm {
namespace {

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(CspmLexer, EmptyInputYieldsEnd) {
  EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::End}));
  EXPECT_EQ(kinds("   \n\t  "), (std::vector<Tok>{Tok::End}));
}

TEST(CspmLexer, KeywordsAndIdentifiers) {
  EXPECT_EQ(kinds("channel STOP SKIP foo Bar_1 x'"),
            (std::vector<Tok>{Tok::KwChannel, Tok::KwStop, Tok::KwSkip,
                              Tok::Ident, Tok::Ident, Tok::Ident, Tok::End}));
}

TEST(CspmLexer, NumbersCarryValues) {
  const auto toks = lex("0 42 1234");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].number, 0);
  EXPECT_EQ(toks[1].number, 42);
  EXPECT_EQ(toks[2].number, 1234);
}

TEST(CspmLexer, ProcessOperators) {
  EXPECT_EQ(kinds("-> [] |~| ||| ; \\"),
            (std::vector<Tok>{Tok::Arrow, Tok::ExtChoice, Tok::IntChoice,
                              Tok::Interleave, Tok::Semi, Tok::Backslash,
                              Tok::End}));
}

TEST(CspmLexer, BracketsDisambiguated) {
  EXPECT_EQ(kinds("[| |] [[ ]] {| |} [ ] ||"),
            (std::vector<Tok>{Tok::LSync, Tok::RSync, Tok::LRenameB,
                              Tok::RRenameB, Tok::LBraceBar, Tok::RBraceBar,
                              Tok::LBracket, Tok::RBracket, Tok::ParSplit,
                              Tok::End}));
}

TEST(CspmLexer, RefinementOperators) {
  EXPECT_EQ(kinds("[T= [F= [FD="),
            (std::vector<Tok>{Tok::RefinesT, Tok::RefinesF, Tok::RefinesFD,
                              Tok::End}));
}

TEST(CspmLexer, RefinementVsBracketLookahead) {
  // '[T=' must not lex when the '=' is missing.
  EXPECT_EQ(kinds("[T]"), (std::vector<Tok>{Tok::LBracket, Tok::Ident,
                                            Tok::RBracket, Tok::End}));
}

TEST(CspmLexer, ComparisonOperators) {
  EXPECT_EQ(kinds("== != <= >= < >"),
            (std::vector<Tok>{Tok::EqEq, Tok::NotEq, Tok::LessEq,
                              Tok::GreaterEq, Tok::Less, Tok::Greater,
                              Tok::End}));
}

TEST(CspmLexer, CommunicationTokens) {
  EXPECT_EQ(kinds("c?x!y.z"),
            (std::vector<Tok>{Tok::Ident, Tok::Question, Tok::Ident, Tok::Bang,
                              Tok::Ident, Tok::Dot, Tok::Ident, Tok::End}));
}

TEST(CspmLexer, DotDotVersusDot) {
  EXPECT_EQ(kinds("{0..3}"),
            (std::vector<Tok>{Tok::LBrace, Tok::Number, Tok::DotDot,
                              Tok::Number, Tok::RBrace, Tok::End}));
}

TEST(CspmLexer, LineCommentsAreSkipped) {
  EXPECT_EQ(kinds("a -- comment -> b\nc"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::End}));
}

TEST(CspmLexer, NestedBlockComments) {
  EXPECT_EQ(kinds("a {- one {- two -} still -} b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::End}));
}

TEST(CspmLexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("a {- never closed"), LexError);
}

TEST(CspmLexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("a $ b"), LexError);
}

TEST(CspmLexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(CspmLexer, AssertionPropertyTokens) {
  EXPECT_EQ(kinds("P :[deadlock free [F]]"),
            (std::vector<Tok>{Tok::Ident, Tok::ColonLBracket, Tok::Ident,
                              Tok::Ident, Tok::LBracket, Tok::Ident,
                              Tok::RRenameB, Tok::End}));
}

TEST(CspmLexer, MinusVersusArrow) {
  EXPECT_EQ(kinds("a - b -> c <- d"),
            (std::vector<Tok>{Tok::Ident, Tok::Minus, Tok::Ident, Tok::Arrow,
                              Tok::Ident, Tok::LArrow, Tok::Ident, Tok::End}));
}

}  // namespace
}  // namespace ecucsp::cspm
