// Property tests for the arena-backed CompactLts core (refine/compact.hpp).
//
// The compact form is the representation every check sweeps, so its
// conversion must be lossless and canonical:
//   * compact_from_lts / compact_to_lts round-trips the structure exactly —
//     same root, same states, same per-row transition order (the order
//     byte-compatibility of --compress=none rests on this);
//   * the interned alphabet is a bijection onto the set of events the LTS
//     actually uses, and local ids depend only on that *set* — never on the
//     insertion/edge order the compiler happened to produce;
//   * derived flags (post-tick, Omega, deadlock) and divergent_states match
//     the definitions the historical engine computed from Lts directly.
// Plus structural sanity of compress_compact: mode none is the identity on
// the arrays, every reduced machine is well-formed and fully reachable, and
// reachable divergence is preserved (the verdict-level guarantees live in
// refine_compress_diff_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "refine/check.hpp"
#include "refine/compact.hpp"
#include "refine/lts.hpp"
#include "refine/normalize.hpp"

namespace ecucsp {
namespace {

/// Seeded random term generator (same shape as refine_props_test): depth
/// bounded, four-event alphabet, every constructor reachable.
struct TermGen {
  Context& ctx;
  std::mt19937 rng;
  std::vector<EventId> alphabet;

  TermGen(Context& c, unsigned seed) : ctx(c), rng(seed) {
    for (const char* name : {"a", "b", "c", "d"}) {
      alphabet.push_back(ctx.event(ctx.channel(name)));
    }
  }

  EventId event() {
    return alphabet[std::uniform_int_distribution<std::size_t>(
        0, alphabet.size() - 1)(rng)];
  }

  EventSet event_set() {
    std::vector<EventId> out;
    for (EventId e : alphabet) {
      if (std::uniform_int_distribution<int>(0, 1)(rng)) out.push_back(e);
    }
    return EventSet(std::move(out));
  }

  ProcessRef process(int depth) {
    const int max_pick = depth <= 0 ? 2 : 10;
    switch (std::uniform_int_distribution<int>(0, max_pick)(rng)) {
      case 0:
        return ctx.stop();
      case 1:
        return ctx.prefix(event(),
                          depth <= 0 ? ctx.stop() : process(depth - 1));
      case 2:
        return ctx.skip();
      case 3:
        return ctx.ext_choice(process(depth - 1), process(depth - 1));
      case 4:
        return ctx.int_choice(process(depth - 1), process(depth - 1));
      case 5:
        return ctx.par(process(depth - 1), event_set(), process(depth - 1));
      case 6:
        return ctx.interleave(process(depth - 1), process(depth - 1));
      case 7:
        return ctx.hide(process(depth - 1), event_set());
      case 8: {
        const EventId from = event();
        const EventId to = event();
        return ctx.rename(process(depth - 1), {{from, to}});
      }
      case 9:
        return ctx.sliding(process(depth - 1), process(depth - 1));
      default:
        return ctx.seq(process(depth - 1), process(depth - 1));
    }
  }
};

/// Structural equality of Lts transition tables (term_of is diagnostics
/// only and is deliberately not round-tripped).
void expect_same_structure(const Lts& a, const Lts& b,
                           const std::string& where) {
  ASSERT_EQ(a.root, b.root) << where;
  ASSERT_EQ(a.state_count(), b.state_count()) << where;
  for (StateId s = 0; s < a.state_count(); ++s) {
    ASSERT_EQ(a.succ[s].size(), b.succ[s].size()) << where << " state " << s;
    for (std::size_t i = 0; i < a.succ[s].size(); ++i) {
      EXPECT_EQ(a.succ[s][i].event, b.succ[s][i].event)
          << where << " state " << s << " edge " << i;
      EXPECT_EQ(a.succ[s][i].target, b.succ[s][i].target)
          << where << " state " << s << " edge " << i;
    }
  }
}

class CompactRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompactRoundTrip, ConversionIsLosslessAndOrderPreserving) {
  Context ctx;
  TermGen gen(ctx, GetParam());
  for (int i = 0; i < 4; ++i) {
    const Lts lts = compile_lts(ctx, gen.process(3));
    const CompactLts compact = compact_from_lts(lts);

    // State/transition bijection.
    ASSERT_EQ(compact.state_count(), lts.state_count());
    ASSERT_EQ(compact.transition_count(), lts.transition_count());
    ASSERT_EQ(compact.root, lts.root);

    // Per-row: same events in the same order, with the same targets, after
    // mapping local ids back through the alphabet table.
    for (StateId s = 0; s < lts.state_count(); ++s) {
      ASSERT_EQ(compact.degree(s), lts.succ[s].size()) << "state " << s;
      for (std::size_t k = 0; k < lts.succ[s].size(); ++k) {
        const std::uint32_t at = compact.begin(s) + static_cast<std::uint32_t>(k);
        EXPECT_EQ(compact.global_event(compact.events[at]),
                  lts.succ[s][k].event)
            << "state " << s << " edge " << k;
        EXPECT_EQ(compact.targets[at], lts.succ[s][k].target)
            << "state " << s << " edge " << k;
      }
    }

    // Full round-trip through compact_to_lts.
    expect_same_structure(lts, compact_to_lts(compact),
                          "seed=" + std::to_string(GetParam()) +
                              " term=" + std::to_string(i));
  }
}

TEST_P(CompactRoundTrip, AlphabetIsABijectionOnTheUsedEventSet) {
  Context ctx;
  TermGen gen(ctx, GetParam() + 100);
  for (int i = 0; i < 4; ++i) {
    const Lts lts = compile_lts(ctx, gen.process(3));
    const CompactLts compact = compact_from_lts(lts);

    std::vector<EventId> used;
    for (StateId s = 0; s < lts.state_count(); ++s) {
      for (const LtsTransition& t : lts.succ[s]) used.push_back(t.event);
    }
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());

    // The table IS the sorted used set (bijection in both directions)...
    ASSERT_EQ(compact.alphabet, used);
    // ...and local_event/global_event invert each other over it.
    for (LocalEvent le = 0; le < compact.alphabet.size(); ++le) {
      EXPECT_EQ(compact.local_event(compact.global_event(le)), le);
    }
    for (const EventId e : used) {
      EXPECT_EQ(compact.global_event(compact.local_event(e)), e);
    }
    // Events outside the machine's alphabet have no interned id.
    EXPECT_EQ(compact.local_event(ctx.event(ctx.channel("never_used"))),
              NO_LOCAL_EVENT);
  }
}

TEST(CompactLtsTest, InternedIdsDependOnlyOnTheEventSetNotInsertionOrder) {
  // Two structurally different machines over the same event set, with the
  // events introduced in opposite orders, must produce identical alphabet
  // tables — the interning is a function of the set alone.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const EventId c = ctx.event(ctx.channel("c"));

  Lts forward;  // root --a--> 1 --b--> 2 --c--> 2
  forward.root = 0;
  forward.succ = {{{a, 1}}, {{b, 2}}, {{c, 2}}};

  Lts backward;  // root --c--> 1 --b--> 2 --a--> 2, edges discovered c,b,a
  backward.root = 0;
  backward.succ = {{{c, 1}}, {{b, 2}}, {{a, 2}}};

  const CompactLts cf = compact_from_lts(forward);
  const CompactLts cb = compact_from_lts(backward);
  EXPECT_EQ(cf.alphabet, cb.alphabet);
  for (const EventId e : {a, b, c}) {
    EXPECT_EQ(cf.local_event(e), cb.local_event(e)) << "event " << e;
  }

  // Permuting the edges *within* one row does not change the mapping either.
  Lts shuffled;
  shuffled.root = 0;
  shuffled.succ = {{{c, 1}, {a, 1}, {b, 1}}, {}};
  Lts ordered;
  ordered.root = 0;
  ordered.succ = {{{a, 1}, {b, 1}, {c, 1}}, {}};
  EXPECT_EQ(compact_from_lts(shuffled).alphabet,
            compact_from_lts(ordered).alphabet);
  EXPECT_EQ(compact_from_lts(shuffled).local_event(b),
            compact_from_lts(ordered).local_event(b));
}

TEST(CompactLtsTest, FlagsMatchTheHistoricalDefinitions) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  // SKIP ; a -> STOP: exercises tick, post-tick and a genuine deadlock.
  const ProcessRef p = ctx.seq(ctx.skip(), ctx.prefix(a, ctx.stop()));
  const Lts lts = compile_lts(ctx, p);
  const CompactLts compact = compact_from_lts(lts);

  std::vector<bool> post_tick(lts.state_count(), false);
  for (StateId s = 0; s < lts.state_count(); ++s) {
    for (const LtsTransition& t : lts.succ[s]) {
      if (t.event == TICK) post_tick[t.target] = true;
    }
  }
  bool saw_deadlock = false;
  for (StateId s = 0; s < lts.state_count(); ++s) {
    EXPECT_EQ(compact.is_post_tick(s), post_tick[s]) << "state " << s;
    const bool omega = s < lts.term_of.size() && lts.term_of[s] &&
                       lts.term_of[s]->op() == Op::Omega;
    EXPECT_EQ(compact.is_omega(s), omega) << "state " << s;
    EXPECT_EQ(compact.is_deadlock(s),
              lts.succ[s].empty() && !post_tick[s] && !omega)
        << "state " << s;
    saw_deadlock = saw_deadlock || compact.is_deadlock(s);
  }
  EXPECT_TRUE(saw_deadlock) << "a -> STOP must end in a real deadlock state";
}

TEST(CompactLtsTest, CompiledStructuresOutliveTheirContext) {
  // The check_refinement_compiled contract: compiled Lts/NormLts are plain
  // data, usable after the owning Context dies. term_of pointers dangle at
  // that point, so conversion and the flags must come from the omega record
  // captured at compile time — never from the terms. (Regression for a
  // use-after-free TSan caught in compact_from_lts; the sanitizer legs are
  // what give this test its teeth.)
  std::optional<Lts> impl;
  std::optional<NormLts> spec;
  {
    Context ctx;
    const EventId a = ctx.event(ctx.channel("a"));
    // a -> SKIP: compiles to a genuine Omega state.
    const ProcessRef p = ctx.prefix(a, ctx.skip());
    impl = compile_lts(ctx, p);
    spec = normalize(compile_lts(ctx, p), /*with_divergence=*/false);
  }  // Context destroyed; every term_of pointer is now dangling.

  const CompactLts compact = compact_from_lts(*impl);
  bool saw_omega = false;
  for (StateId s = 0; s < compact.state_count(); ++s) {
    saw_omega = saw_omega || compact.is_omega(s);
  }
  EXPECT_TRUE(saw_omega) << "the compile-time omega record must survive";

  // The Lts convenience overload converts internally — the exact path that
  // must not touch the dead terms.
  EXPECT_TRUE(check_refinement_compiled(*spec, *impl, Model::Traces).passed);
  for (const Compression mode : {Compression::None, Compression::Full}) {
    const CheckResult r =
        check_refinement_compiled(*spec, compact, Model::Traces, 1, nullptr, mode);
    EXPECT_TRUE(r.passed) << to_string(mode);
  }
}

TEST(CompactLtsTest, DivergentStatesMatchesTauCycleReachability) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  // b -> (a -> T) \ {a}: the root is not divergent, the hidden loop is.
  ctx.define("T", [a](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef p = ctx.prefix(b, ctx.hide(ctx.var("T"), EventSet{a}));
  const CompactLts compact = compact_from_lts(compile_lts(ctx, p));
  const std::vector<bool> div = compact.divergent_states();

  ASSERT_EQ(div.size(), compact.state_count());
  EXPECT_FALSE(div[compact.root]) << "nothing diverges before the b";
  EXPECT_TRUE(std::any_of(div.begin(), div.end(), [](bool d) { return d; }))
      << "the hidden a-loop must be flagged divergent";
  // Every state that can take a tau into a divergent state is divergent too.
  for (StateId s = 0; s < compact.state_count(); ++s) {
    for (std::uint32_t k = compact.begin(s); k < compact.end(s); ++k) {
      if (compact.events[k] == compact.tau && div[compact.targets[k]]) {
        EXPECT_TRUE(div[s]) << "tau-predecessor " << s << " must inherit";
      }
    }
  }
}

class CompressStructure : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompressStructure, ModeNoneIsTheIdentityOnTheArrays) {
  Context ctx;
  TermGen gen(ctx, GetParam() + 200);
  const CompactLts compact =
      compact_from_lts(compile_lts(ctx, gen.process(3)));
  ReductionStats stats;
  const CompactLts same = compress_compact(compact, Compression::None, &stats);
  EXPECT_EQ(same.root, compact.root);
  EXPECT_EQ(same.offsets, compact.offsets);
  EXPECT_EQ(same.events, compact.events);
  EXPECT_EQ(same.targets, compact.targets);
  EXPECT_EQ(same.alphabet, compact.alphabet);
  EXPECT_EQ(same.flags, compact.flags);
  EXPECT_EQ(stats.states_in, stats.states_out);
  EXPECT_EQ(stats.transitions_in, stats.transitions_out);
}

TEST_P(CompressStructure, ReducedMachinesAreWellFormedAndNoLarger) {
  Context ctx;
  TermGen gen(ctx, GetParam() + 300);
  for (int i = 0; i < 3; ++i) {
    const CompactLts compact =
        compact_from_lts(compile_lts(ctx, gen.process(3)));
    const bool diverges_somewhere = [&] {
      const std::vector<bool> d = compact.divergent_states();
      return std::find(d.begin(), d.end(), true) != d.end();
    }();
    for (const Compression mode :
         {Compression::Bisim, Compression::Diamond, Compression::Full}) {
      ReductionStats stats;
      const CompactLts red = compress_compact(compact, mode, &stats);
      const std::string where = "seed=" + std::to_string(GetParam()) +
                                " term=" + std::to_string(i) +
                                " mode=" + std::string(to_string(mode));
      // Never grows; stats agree with the machines.
      EXPECT_LE(red.state_count(), compact.state_count()) << where;
      EXPECT_EQ(stats.states_in, compact.state_count()) << where;
      EXPECT_EQ(stats.states_out, red.state_count()) << where;
      EXPECT_EQ(red.alphabet, compact.alphabet) << where;

      // Well-formed CSR: root and all targets in range, offsets monotone.
      ASSERT_LT(red.root, red.state_count()) << where;
      ASSERT_EQ(red.offsets.size(), red.state_count() + 1) << where;
      for (StateId s = 0; s < red.state_count(); ++s) {
        ASSERT_LE(red.begin(s), red.end(s)) << where;
        for (std::uint32_t k = red.begin(s); k < red.end(s); ++k) {
          ASSERT_LT(red.targets[k], red.state_count()) << where;
          ASSERT_LT(red.events[k], red.alphabet.size()) << where;
        }
      }

      // Everything is reachable from the root (finalize restricts).
      std::vector<bool> seen(red.state_count(), false);
      std::vector<StateId> work{red.root};
      seen[red.root] = true;
      while (!work.empty()) {
        const StateId s = work.back();
        work.pop_back();
        for (std::uint32_t k = red.begin(s); k < red.end(s); ++k) {
          if (!seen[red.targets[k]]) {
            seen[red.targets[k]] = true;
            work.push_back(red.targets[k]);
          }
        }
      }
      EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool v) { return v; }))
          << where;

      // Reachable divergence is preserved in both directions.
      const std::vector<bool> rd = red.divergent_states();
      EXPECT_EQ(std::find(rd.begin(), rd.end(), true) != rd.end(),
                diverges_somewhere)
          << where;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactRoundTrip, ::testing::Range(0u, 10u));
INSTANTIATE_TEST_SUITE_P(Seeds, CompressStructure, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace ecucsp
