#include <gtest/gtest.h>

#include "refine/check.hpp"
#include "refine/lts.hpp"
#include "refine/normalize.hpp"

namespace ecucsp {
namespace {

class RefineTest : public ::testing::Test {
 protected:
  RefineTest() {
    a = ctx.event(ctx.channel("a"));
    b = ctx.event(ctx.channel("b"));
    c = ctx.event(ctx.channel("c"));
  }

  Context ctx;
  EventId a, b, c;
};

// --- LTS compilation --------------------------------------------------------

TEST_F(RefineTest, CompileLtsCountsStates) {
  // a -> b -> STOP: three states, two transitions.
  const Lts lts = compile_lts(ctx, ctx.prefix(a, ctx.prefix(b, ctx.stop())));
  EXPECT_EQ(lts.state_count(), 3u);
  EXPECT_EQ(lts.transition_count(), 2u);
}

TEST_F(RefineTest, CompileLtsSharesRecursiveStates) {
  ctx.define("P", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("P")));
  });
  const Lts lts = compile_lts(ctx, ctx.var("P"));
  EXPECT_EQ(lts.state_count(), 2u);  // the loop folds back
}

TEST_F(RefineTest, CompileLtsHonoursStateLimit) {
  const ChannelId n = ctx.channel("n", {[] {
    std::vector<Value> d;
    for (int i = 0; i < 1000; ++i) d.push_back(Value::integer(i));
    return d;
  }()});
  ctx.define("BIG", [n](Context& cx, std::span<const Value> args) {
    const std::int64_t k = args[0].as_int();
    if (k >= 999) return cx.stop();
    return cx.prefix(cx.event(n, {Value::integer(k)}),
                     cx.var("BIG", {Value::integer(k + 1)}));
  });
  EXPECT_THROW(compile_lts(ctx, ctx.var("BIG", {Value::integer(0)}), 10),
               StateLimitExceeded);
}

TEST_F(RefineTest, DivergentStatesFindsTauCycle) {
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef div = ctx.hide(ctx.var("T"), EventSet{a});
  const Lts lts = compile_lts(ctx, div);
  const auto d = lts.divergent_states();
  EXPECT_TRUE(d[lts.root]);
}

TEST_F(RefineTest, StraightLineIsNotDivergent) {
  const Lts lts = compile_lts(ctx, ctx.prefix(a, ctx.skip()));
  for (bool d : lts.divergent_states()) EXPECT_FALSE(d);
}

// --- normalisation ----------------------------------------------------------

TEST_F(RefineTest, NormalizeMergesNondeterministicBranches) {
  // a->b->STOP [] a->c->STOP normalises to one 'a' edge into a merged node.
  const ProcessRef p = ctx.ext_choice(ctx.prefix(a, ctx.prefix(b, ctx.stop())),
                                      ctx.prefix(a, ctx.prefix(c, ctx.stop())));
  const NormLts norm = normalize(compile_lts(ctx, p), false);
  const NormNode& root = norm.nodes[norm.root];
  ASSERT_EQ(root.succ.size(), 1u);
  const NormNode& after_a = norm.nodes[root.succ[0].second];
  EXPECT_EQ(after_a.initials, (EventSet{b, c}));
  // Two minimal acceptances: {b} and {c} — the process is nondeterministic.
  EXPECT_EQ(after_a.min_acceptances.size(), 2u);
}

TEST_F(RefineTest, NormalizeComputesMinimalAcceptances) {
  // (a->STOP [] b->STOP) |~| a->STOP: acceptances {a,b} and {a};
  // only {a} is subset-minimal.
  const ProcessRef p = ctx.int_choice(
      ctx.ext_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop())),
      ctx.prefix(a, ctx.stop()));
  const NormLts norm = normalize(compile_lts(ctx, p), false);
  const NormNode& root = norm.nodes[norm.root];
  ASSERT_EQ(root.min_acceptances.size(), 1u);
  EXPECT_EQ(root.min_acceptances[0], (EventSet{a}));
}

TEST_F(RefineTest, SuccessorLookupIsByEvent) {
  const ProcessRef p = ctx.ext_choice(ctx.prefix(a, ctx.stop()),
                                      ctx.prefix(b, ctx.skip()));
  const NormLts norm = normalize(compile_lts(ctx, p), false);
  const NormNode& root = norm.nodes[norm.root];
  EXPECT_NE(root.successor(a), NORM_NONE);
  EXPECT_NE(root.successor(b), NORM_NONE);
  EXPECT_EQ(root.successor(c), NORM_NONE);
}

// --- trace refinement ---------------------------------------------------------

TEST_F(RefineTest, TraceRefinementPrefixClosure) {
  const ProcessRef spec = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const ProcessRef impl = ctx.prefix(a, ctx.stop());
  EXPECT_TRUE(check_refinement(ctx, spec, impl, Model::Traces).passed);
}

TEST_F(RefineTest, TraceRefinementCatchesForbiddenEvent) {
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const CheckResult r = check_refinement(ctx, spec, impl, Model::Traces);
  ASSERT_FALSE(r.passed);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::TraceViolation);
  EXPECT_EQ(r.counterexample->trace, (std::vector<EventId>{a}));
  EXPECT_EQ(r.counterexample->event, b);
  EXPECT_NE(r.counterexample->describe(ctx).find("forbids"), std::string::npos);
}

TEST_F(RefineTest, PaperSP02IntegrityProperty) {
  // The paper's security process SP02: every reqSw is answered by rptSw.
  //   SP02 = send.reqSw -> rec.rptSw -> SP02
  // The composed VMG||ECU system must trace-refine SP02.
  SymbolTable& sy = ctx.symbols();
  const Value reqSw = Value::symbol(sy.intern("reqSw"));
  const Value rptSw = Value::symbol(sy.intern("rptSw"));
  const ChannelId send = ctx.channel("send", {{reqSw, rptSw}});
  const ChannelId rec = ctx.channel("rec", {{reqSw, rptSw}});
  const EventId send_req = ctx.event(send, {reqSw});
  const EventId rec_rpt = ctx.event(rec, {rptSw});

  ctx.define("SP02", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req, cx.prefix(rec_rpt, cx.var("SP02")));
  });
  // VMG = send.reqSw -> rec.rptSw -> VMG; ECU = send.reqSw -> rec.rptSw -> ECU
  // SYSTEM = VMG [|{send.reqSw, rec.rptSw}|] ECU
  ctx.define("VMG", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req, cx.prefix(rec_rpt, cx.var("VMG")));
  });
  ctx.define("ECU", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req, cx.prefix(rec_rpt, cx.var("ECU")));
  });
  const ProcessRef system =
      ctx.par(ctx.var("VMG"), EventSet{send_req, rec_rpt}, ctx.var("ECU"));
  EXPECT_TRUE(check_refinement(ctx, ctx.var("SP02"), system, Model::Traces).passed);

  // A faulty ECU that may skip the response violates SP02.
  ctx.define("BADECU", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req,
                     cx.ext_choice(cx.prefix(rec_rpt, cx.var("BADECU")),
                                   cx.prefix(send_req, cx.var("BADECU"))));
  });
  const CheckResult bad = check_refinement(ctx, ctx.var("SP02"),
                                           ctx.var("BADECU"), Model::Traces);
  ASSERT_FALSE(bad.passed);
  EXPECT_EQ(bad.counterexample->trace, (std::vector<EventId>{send_req}));
  EXPECT_EQ(bad.counterexample->event, send_req);
}

TEST_F(RefineTest, HiddenEventsDoNotAppearInTraces) {
  const ProcessRef impl =
      ctx.hide(ctx.prefix(a, ctx.prefix(b, ctx.stop())), EventSet{a});
  const ProcessRef spec = ctx.prefix(b, ctx.stop());
  EXPECT_TRUE(check_refinement(ctx, spec, impl, Model::Traces).passed);
  EXPECT_TRUE(check_refinement(ctx, impl, spec, Model::Traces).passed);
}

TEST_F(RefineTest, TickParticipatesInTraces) {
  // SKIP is not a trace refinement of STOP extended with nothing: STOP's
  // traces are {<>}, SKIP's are {<>, <tick>}.
  const CheckResult r = check_refinement(ctx, ctx.stop(), ctx.skip(), Model::Traces);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->event, TICK);
}

// --- failures refinement ---------------------------------------------------------

TEST_F(RefineTest, InternalChoiceDoesNotFailureRefineExternal) {
  const ProcessRef ext =
      ctx.ext_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  const ProcessRef internal =
      ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  // Same traces...
  EXPECT_TRUE(check_refinement(ctx, ext, internal, Model::Traces).passed);
  // ...but the internal choice may refuse 'a', which ext never does.
  const CheckResult r = check_refinement(ctx, ext, internal, Model::Failures);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::AcceptanceViolation);
  EXPECT_TRUE(r.counterexample->trace.empty());
  // The converse direction holds.
  EXPECT_TRUE(check_refinement(ctx, internal, ext, Model::Failures).passed);
}

TEST_F(RefineTest, ChaosFailureRefinesEverythingOverItsAlphabet) {
  const ProcessRef chaos = ctx.chaos(EventSet{a, b});
  const ProcessRef impl = ctx.ext_choice(ctx.prefix(a, ctx.stop()),
                                         ctx.prefix(b, ctx.prefix(a, ctx.stop())));
  EXPECT_TRUE(check_refinement(ctx, chaos, impl, Model::Failures).passed);
}

TEST_F(RefineTest, StableFailuresIgnoresDivergence) {
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef div = ctx.hide(ctx.var("T"), EventSet{a});
  const ProcessRef spec = ctx.run(EventSet{b});
  // div has no stable states and no visible traces: passes in F...
  EXPECT_TRUE(check_refinement(ctx, spec, div, Model::Failures).passed);
  // ...but not in FD.
  const CheckResult r =
      check_refinement(ctx, spec, div, Model::FailuresDivergences);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::DivergenceViolation);
}

TEST_F(RefineTest, DivergentSpecPermitsEverythingBelow) {
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef div_spec = ctx.hide(ctx.var("T"), EventSet{a});
  const ProcessRef impl = ctx.prefix(b, ctx.stop());
  EXPECT_TRUE(
      check_refinement(ctx, div_spec, impl, Model::FailuresDivergences).passed);
}

TEST_F(RefineTest, FailuresRefinementReflexive) {
  const ProcessRef p = ctx.int_choice(
      ctx.ext_choice(ctx.prefix(a, ctx.skip()), ctx.prefix(b, ctx.stop())),
      ctx.prefix(c, ctx.stop()));
  for (Model m : {Model::Traces, Model::Failures, Model::FailuresDivergences}) {
    EXPECT_TRUE(check_refinement(ctx, p, p, m).passed) << to_string(m);
  }
}

// --- deadlock / divergence / determinism -------------------------------------------

TEST_F(RefineTest, DeadlockFound) {
  const CheckResult r = check_deadlock_free(ctx, ctx.prefix(a, ctx.stop()));
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::Deadlock);
  EXPECT_EQ(r.counterexample->trace, (std::vector<EventId>{a}));
}

TEST_F(RefineTest, SuccessfulTerminationIsNotDeadlock) {
  EXPECT_TRUE(check_deadlock_free(ctx, ctx.prefix(a, ctx.skip())).passed);
  EXPECT_TRUE(check_deadlock_free(ctx, ctx.skip()).passed);
}

TEST_F(RefineTest, CyclicProcessIsDeadlockFree) {
  ctx.define("P", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("P"));
  });
  EXPECT_TRUE(check_deadlock_free(ctx, ctx.var("P")).passed);
}

TEST_F(RefineTest, MismatchedSynchronisationDeadlocks) {
  const ProcessRef p = ctx.par(ctx.prefix(a, ctx.prefix(b, ctx.stop())),
                               EventSet{a, b},
                               ctx.prefix(b, ctx.prefix(a, ctx.stop())));
  const CheckResult r = check_deadlock_free(ctx, p);
  ASSERT_FALSE(r.passed);
  EXPECT_TRUE(r.counterexample->trace.empty());
}

TEST_F(RefineTest, DivergenceDetected) {
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const ProcessRef p = ctx.prefix(b, ctx.hide(ctx.var("T"), EventSet{a}));
  const CheckResult r = check_divergence_free(ctx, p);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::Divergence);
  EXPECT_EQ(r.counterexample->trace, (std::vector<EventId>{b}));
}

TEST_F(RefineTest, FiniteProcessIsDivergenceFree) {
  EXPECT_TRUE(check_divergence_free(ctx, ctx.prefix(a, ctx.skip())).passed);
}

TEST_F(RefineTest, DeterministicProcessPasses) {
  ctx.define("P", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("P")));
  });
  EXPECT_TRUE(check_deterministic(ctx, ctx.var("P")).passed);
}

TEST_F(RefineTest, InternalChoiceIsNondeterministic) {
  const ProcessRef p = ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.stop());
  const CheckResult r = check_deterministic(ctx, p);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->kind, Counterexample::Kind::Nondeterminism);
  EXPECT_EQ(r.counterexample->event, a);
}

TEST_F(RefineTest, AmbiguousPrefixIsNondeterministic) {
  // a->b->STOP [] a->c->STOP: after <a> the process may refuse b.
  const ProcessRef p = ctx.ext_choice(ctx.prefix(a, ctx.prefix(b, ctx.stop())),
                                      ctx.prefix(a, ctx.prefix(c, ctx.stop())));
  const CheckResult r = check_deterministic(ctx, p);
  ASSERT_FALSE(r.passed);
  EXPECT_EQ(r.counterexample->trace, (std::vector<EventId>{a}));
}

TEST_F(RefineTest, DivergenceImpliesNondeterminism) {
  ctx.define("T", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("T"));
  });
  const CheckResult r =
      check_deterministic(ctx, ctx.hide(ctx.var("T"), EventSet{a}));
  EXPECT_FALSE(r.passed);
}

// --- trace enumeration -------------------------------------------------------------

TEST_F(RefineTest, EnumerateTracesIsPrefixClosed) {
  const ProcessRef p = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const auto traces = enumerate_traces(ctx, p, 4);
  EXPECT_EQ(traces.size(), 3u);  // <>, <a>, <a,b>
}

TEST_F(RefineTest, EnumerateTracesRespectsBound) {
  ctx.define("P", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.var("P"));
  });
  const auto traces = enumerate_traces(ctx, ctx.var("P"), 3);
  EXPECT_EQ(traces.size(), 4u);  // lengths 0..3
}


TEST_F(RefineTest, TraceMembershipAcceptsAndRejects) {
  ctx.define("P", [this](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("P")));
  });
  const ProcessRef p = ctx.var("P");
  EXPECT_TRUE(is_trace_of(ctx, p, {}).member);
  EXPECT_TRUE(is_trace_of(ctx, p, {a, b, a}).member);
  const TraceMembership miss = is_trace_of(ctx, p, {a, a});
  EXPECT_FALSE(miss.member);
  EXPECT_EQ(miss.accepted_prefix, 1u);
  EXPECT_EQ(miss.offered, (EventSet{b}));
}

TEST_F(RefineTest, TraceMembershipSeesThroughTau) {
  // (a -> STOP) |~| (b -> STOP): both <a> and <b> are traces.
  const ProcessRef p =
      ctx.int_choice(ctx.prefix(a, ctx.stop()), ctx.prefix(b, ctx.stop()));
  EXPECT_TRUE(is_trace_of(ctx, p, {a}).member);
  EXPECT_TRUE(is_trace_of(ctx, p, {b}).member);
  EXPECT_FALSE(is_trace_of(ctx, p, {a, b}).member);
}

TEST_F(RefineTest, TraceMembershipMatchesEnumeration) {
  const ProcessRef p = ctx.interleave(ctx.prefix(a, ctx.prefix(b, ctx.stop())),
                                      ctx.prefix(c, ctx.skip()));
  for (const auto& t : enumerate_traces(ctx, p, 5)) {
    EXPECT_TRUE(is_trace_of(ctx, p, t).member) << format_trace(ctx, t);
  }
}

TEST_F(RefineTest, FormatTraceReadable) {
  EXPECT_EQ(format_trace(ctx, {a, b}), "<a, b>");
  EXPECT_EQ(format_trace(ctx, {}), "<>");
}

TEST_F(RefineTest, StatsArePopulated) {
  const ProcessRef p = ctx.prefix(a, ctx.prefix(b, ctx.stop()));
  const CheckResult r = check_refinement(ctx, p, p, Model::Failures);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.stats.impl_states, 3u);
  EXPECT_GT(r.stats.spec_norm_nodes, 0u);
  EXPECT_GT(r.stats.product_states, 0u);
}

}  // namespace
}  // namespace ecucsp
