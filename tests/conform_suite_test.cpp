// End-to-end conformance-suite tests on the OTA case study.
//
// The faithful reference ECU must pass every suite with full planned
// transition coverage; seeded fault injection (CAPL mutation, alphabet
// mismatch) must produce pinned failures that map back to CAPL source
// spans; and reports must be deterministic for a fixed seed at any job
// count. The last section round-trips counterexamples through the PR 2
// verification store: a failed check sealed to disk comes back out of
// scan_stored_counterexamples and replays as a concrete test.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "capl/parser.hpp"
#include "conform/mutate.hpp"
#include "conform/suite.hpp"
#include "ota/ota.hpp"
#include "store/cache.hpp"

namespace ecucsp {
namespace {

namespace fs = std::filesystem;

conform::ConformOptions base_options() {
  conform::ConformOptions opt;
  opt.suite = "all";
  opt.seed = 7;
  opt.tests = 6;
  opt.jobs = 2;
  return opt;
}

TEST(ConformSuite, FaithfulEcuPassesEverythingWithFullPlannedCoverage) {
  const conform::ConformReport rep =
      conform::run_ota_conformance(base_options());
  EXPECT_TRUE(rep.ok()) << conform::render_text(rep);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.timed_out, 0u);
  EXPECT_GT(rep.tests.size(), 4u);  // cover + random + cex + dialogues
  EXPECT_GT(rep.model_states, 1u);
  EXPECT_GT(rep.plannable_transitions, 0u);
  EXPECT_EQ(rep.planned_covered, rep.plannable_transitions);
  EXPECT_DOUBLE_EQ(rep.planned_coverage_pct(), 100.0);
  for (const auto& t : rep.tests) {
    EXPECT_EQ(t.status, "PASS") << t.name << ": " << t.reason;
    EXPECT_FALSE(t.observed.empty()) << t.name;
  }
}

TEST(ConformSuite, ReportIsDeterministicAcrossJobCounts) {
  conform::ConformOptions opt = base_options();
  opt.jobs = 1;
  const std::string serial =
      conform::render_json(conform::run_ota_conformance(opt),
                           /*with_timing=*/false);
  opt.jobs = 4;
  const std::string parallel =
      conform::render_json(conform::run_ota_conformance(opt),
                           /*with_timing=*/false);
  // jobs is reported, so mask it out before the byte comparison.
  auto mask_jobs = [](std::string s) {
    const auto pos = s.find("\"jobs\":");
    const auto end = s.find(',', pos);
    return s.erase(pos, end - pos);
  };
  EXPECT_EQ(mask_jobs(serial), mask_jobs(parallel));
}

TEST(ConformSuite, SeededMutantsAreCaughtAndMappedToCaplSpans) {
  // Every mutation point of the reference ECU must be killed by the suite.
  capl::CaplProgram probe =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  const std::size_t points = conform::count_mutation_points(probe);
  ASSERT_GT(points, 0u);
  for (std::uint64_t seed = 0; seed < points; ++seed) {
    conform::ConformOptions opt = base_options();
    opt.mutate_seed = seed;
    const conform::ConformReport rep = conform::run_ota_conformance(opt);
    EXPECT_FALSE(rep.ok()) << "mutant " << seed << " survived: "
                           << rep.mutation;
    EXPECT_GE(rep.failed, 1u) << "mutant " << seed;
    EXPECT_FALSE(rep.mutation.empty());
    EXPECT_NE(rep.mutation_span.find("ECU:"), std::string::npos)
        << rep.mutation_span;
    bool failure_has_span = false;
    for (const auto& t : rep.tests) {
      if (t.status != "FAIL") continue;
      EXPECT_FALSE(t.oracle.empty()) << t.name;
      EXPECT_GE(t.divergence_index, 0) << t.name;
      if (!t.capl_spans.empty()) failure_has_span = true;
    }
    EXPECT_TRUE(failure_has_span)
        << "mutant " << seed << ": no failure mapped to a CAPL span\n"
        << conform::render_text(rep);
  }
}

TEST(ConformSuite, AlphabetMismatchIsPinnedByTheStrictModelOracle) {
  conform::ConformOptions opt = base_options();
  opt.inject_alphabet_mismatch = true;
  const conform::ConformReport rep = conform::run_ota_conformance(opt);
  EXPECT_FALSE(rep.ok());
  bool pinned = false;
  for (const auto& t : rep.tests) {
    if (t.status == "FAIL" && t.oracle == "model-ecu" &&
        t.reason == "event outside the oracle alphabet") {
      pinned = true;
    }
  }
  EXPECT_TRUE(pinned) << conform::render_text(rep);
}

TEST(ConformSuite, MutationPointsAreStableAndDescribed) {
  capl::CaplProgram prog =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  const std::size_t points = conform::count_mutation_points(prog);
  for (std::uint64_t seed = 0; seed < 2 * points; ++seed) {
    capl::CaplProgram victim =
        capl::parse_capl(std::string(ota::ecu_capl_source()));
    const conform::MutationInfo m = conform::mutate_program(victim, seed);
    EXPECT_FALSE(m.description.empty());
    EXPECT_FALSE(m.handler.empty());
    EXPECT_GT(m.line, 0);
  }
}

// --- counterexample replay through the verification store -------------------

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("ecucsp-conform-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ConformSuite, StoredCounterexamplesRoundTripThroughTheStore) {
  TempDir dir;
  // Seed the store with the R05-on-unprotected failure, the paper's
  // headline attack trace.
  {
    auto model = ota::build_ota_model();
    store::VerificationCache cache(dir.path);
    const CheckResult r = ota::check_requirement_on(
        *model, "R05", model->system_unprotected);
    ASSERT_FALSE(r.passed);
    ASSERT_TRUE(r.counterexample.has_value());
    cache.store_check(model->ctx, nullptr, model->system_unprotected,
                      CheckOp::Refinement, Model::Traces, 1u << 20, r);
  }
  // A fresh Context decodes it back to an event-name trace.
  {
    auto model = ota::build_ota_model();
    const auto traces =
        store::scan_stored_counterexamples(dir.path, model->ctx);
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_FALSE(traces[0].empty());
  }
  // And the conformance suite replays it as a concrete test.
  conform::ConformOptions opt = base_options();
  opt.suite = "counterexamples";
  opt.cache_dir = dir.path;
  const conform::ConformReport rep = conform::run_ota_conformance(opt);
  std::size_t replays = 0;
  for (const auto& t : rep.tests) {
    if (t.strategy == "counterexample") ++replays;
  }
  EXPECT_GE(replays, 1u);
  // The MAC'd reference ECU shrugs the replayed attack off: every replay
  // must PASS (forged frames are ignored, no spurious UpdReport).
  EXPECT_TRUE(rep.ok()) << conform::render_text(rep);
}

TEST(ConformSuite, ScanOfMissingOrForeignDirectoriesIsEmpty) {
  auto model = ota::build_ota_model();
  EXPECT_TRUE(store::scan_stored_counterexamples("/ecucsp/no/such/dir",
                                                 model->ctx)
                  .empty());
  TempDir dir;
  fs::create_directories(dir.path / "objects" / "ab");
  std::FILE* f = std::fopen(
      (dir.path / "objects" / "ab" / "cdef").string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a sealed envelope", f);
  std::fclose(f);
  EXPECT_TRUE(store::scan_stored_counterexamples(dir.path, model->ctx).empty());
}

}  // namespace
}  // namespace ecucsp
