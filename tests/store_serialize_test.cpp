// Serialization-format tests: encode→decode identity and hostile-input
// behaviour for the store's sealed envelopes.
//
// The store's contract is that a load either returns exactly what was
// stored or throws SerializeError (which the cache layer converts into a
// miss) — it never crashes, never returns a mangled artifact. That is
// checked both constructively (round trips, including randomised LTSes and
// verdicts) and destructively (every truncation point, every single-byte
// corruption, plain garbage).
#include <gtest/gtest.h>

#include <random>

#include "refine/check.hpp"
#include "refine/lts.hpp"
#include "store/serialize.hpp"

namespace ecucsp::store {
namespace {

// --- primitive wire formats --------------------------------------------------

TEST(Serialize, VarintRoundTripAtBoundaries) {
  const std::uint64_t values[] = {0,       1,        127,        128,
                                  16383,   16384,    (1u << 21), 0xFFFFFFFFu,
                                  ~0ull >> 1, ~0ull};
  ByteWriter w;
  for (const std::uint64_t v : values) w.uv(v);
  ByteReader r(w.bytes());
  for (const std::uint64_t v : values) EXPECT_EQ(r.uv(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, ZigzagRoundTripAtBoundaries) {
  const std::int64_t values[] = {0,  1,  -1, 63, -64, 64, -65,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  ByteWriter w;
  for (const std::int64_t v : values) w.iv(v);
  ByteReader r(w.bytes());
  for (const std::int64_t v : values) EXPECT_EQ(r.iv(), v);
}

TEST(Serialize, SmallNegativesEncodeSmall) {
  // Zigzag's point: -1 must not cost ten bytes.
  ByteWriter w;
  w.iv(-1);
  EXPECT_EQ(w.bytes().size(), 1u);
}

TEST(Serialize, StringRoundTripAndTruncation) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string(300, 'x'));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(300, 'x'));

  // A length prefix promising more bytes than remain must throw, not read
  // out of bounds.
  ByteWriter bad;
  bad.uv(100);
  bad.u8('x');
  ByteReader br(bad.bytes());
  EXPECT_THROW(br.str(), SerializeError);
}

TEST(Serialize, ReaderThrowsOnTruncatedVarint) {
  const std::uint8_t cont = 0x80;  // continuation bit set, stream ends
  ByteReader r(std::span<const std::uint8_t>(&cont, 1));
  EXPECT_THROW(r.uv(), SerializeError);
}

// --- envelopes ---------------------------------------------------------------

std::vector<std::uint8_t> payload_bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Seal, RoundTrip) {
  const auto blob = seal(ArtifactKind::Verdict, payload_bytes("verdict body"));
  const auto back = unseal(ArtifactKind::Verdict, blob);
  EXPECT_EQ(std::string(back.begin(), back.end()), "verdict body");
}

TEST(Seal, KindMismatchThrows) {
  const auto blob = seal(ArtifactKind::Verdict, payload_bytes("x"));
  EXPECT_THROW(unseal(ArtifactKind::Lts, blob), SerializeError);
}

TEST(Seal, EveryTruncationThrows) {
  const auto blob = seal(ArtifactKind::Lts, payload_bytes("some payload"));
  for (std::size_t n = 0; n < blob.size(); ++n) {
    EXPECT_THROW(
        unseal(ArtifactKind::Lts,
               std::span<const std::uint8_t>(blob.data(), n)),
        SerializeError)
        << "prefix of " << n << " bytes accepted";
  }
}

TEST(Seal, TrailingGarbageThrows) {
  auto blob = seal(ArtifactKind::Lts, payload_bytes("p"));
  blob.push_back(0);
  EXPECT_THROW(unseal(ArtifactKind::Lts, blob), SerializeError);
}

TEST(Seal, SingleByteCorruptionNeverYieldsAlteredPayload) {
  const std::string payload = "the payload the digest protects";
  const auto blob = seal(ArtifactKind::Verdict, payload_bytes(payload));
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (const std::uint8_t delta : {0x01, 0x80}) {
      auto mangled = blob;
      mangled[i] ^= delta;
      // Either the envelope detects the flip (the normal case) or the flip
      // was somewhere harmless enough that the original payload survives —
      // but a *different* payload must never come back.
      try {
        const auto back = unseal(ArtifactKind::Verdict, mangled);
        EXPECT_EQ(std::string(back.begin(), back.end()), payload)
            << "byte " << i << " flip returned an altered payload";
      } catch (const SerializeError&) {
      }
    }
  }
}

TEST(Seal, GarbageInputThrows) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 64; ++round) {
    std::vector<std::uint8_t> junk(rng() % 200);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    // Random bytes essentially never start with the magic; if they do, the
    // digest check rejects them.
    EXPECT_THROW(unseal(ArtifactKind::Lts, junk), SerializeError);
  }
}

// --- events and values -------------------------------------------------------

TEST(SerializeEvent, RoundTripsAcrossContexts) {
  Context src;
  const ChannelId c = src.channel(
      "data", {{Value::integer(1), Value::integer(2), Value::symbol(src.sym("ok"))}});
  const EventId e = src.event(c, {Value::integer(2)});

  ByteWriter w;
  encode_event(w, src, TAU);
  encode_event(w, src, TICK);
  encode_event(w, src, e);

  Context dst;
  dst.channel("data",
              {{Value::integer(1), Value::integer(2), Value::symbol(dst.sym("ok"))}});
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_event(r, dst), TAU);
  EXPECT_EQ(decode_event(r, dst), TICK);
  const EventId back = decode_event(r, dst);
  EXPECT_EQ(dst.event_name(back), src.event_name(e));
}

TEST(SerializeEvent, UnknownChannelThrows) {
  Context src;
  const EventId e = src.event(src.channel("only_here"));
  ByteWriter w;
  encode_event(w, src, e);
  Context dst;  // channel never declared
  ByteReader r(w.bytes());
  EXPECT_THROW(decode_event(r, dst), SerializeError);
}

TEST(SerializeEvent, OutOfDomainFieldThrows) {
  Context src;
  const ChannelId c = src.channel("v", {{Value::integer(1), Value::integer(2)}});
  ByteWriter w;
  encode_event(w, src, src.event(c, {Value::integer(2)}));
  // The destination's channel domain no longer contains 2 — the model
  // changed shape, so the cached artifact must be rejected, not coerced.
  Context dst;
  dst.channel("v", {{Value::integer(1)}});
  ByteReader r(w.bytes());
  EXPECT_THROW(decode_event(r, dst), SerializeError);
}

// --- LTS round trips ---------------------------------------------------------

/// Builds dst's channels to mirror src's tiny test alphabet.
void declare_alphabet(Context& ctx, int channels) {
  for (int i = 0; i < channels; ++i) ctx.channel("ch" + std::to_string(i));
}

TEST(SerializeLts, CompiledLtsRoundTripsIntoFreshContext) {
  Context src;
  const EventId a = src.event(src.channel("ch0"));
  const EventId b = src.event(src.channel("ch1"));
  src.define("P", [a, b](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("P")));
  });
  const Lts lts = compile_lts(src, src.var("P"));
  const auto blob = seal_lts(src, lts);

  Context dst;
  declare_alphabet(dst, 2);
  const Lts back = unseal_lts(blob, dst);
  ASSERT_EQ(back.state_count(), lts.state_count());
  EXPECT_EQ(back.root, lts.root);
  EXPECT_EQ(back.transition_count(), lts.transition_count());
  for (StateId s = 0; s < lts.state_count(); ++s) {
    ASSERT_EQ(back.succ[s].size(), lts.succ[s].size());
    for (std::size_t i = 0; i < lts.succ[s].size(); ++i) {
      EXPECT_EQ(back.succ[s][i].target, lts.succ[s][i].target);
      EXPECT_EQ(dst.event_name(back.succ[s][i].event),
                src.event_name(lts.succ[s][i].event));
    }
  }
}

TEST(SerializeLts, OmegaStatesSurvive) {
  Context src;
  const EventId a = src.event(src.channel("ch0"));
  const Lts lts = compile_lts(src, src.prefix(a, src.skip()));
  const auto blob = seal_lts(src, lts);
  Context dst;
  declare_alphabet(dst, 1);
  const Lts back = unseal_lts(blob, dst);
  ASSERT_EQ(back.state_count(), lts.state_count());
  for (StateId s = 0; s < lts.state_count(); ++s) {
    const bool was_omega = lts.term_of[s] && lts.term_of[s]->op() == Op::Omega;
    const bool is_omega = back.term_of[s] && back.term_of[s]->op() == Op::Omega;
    EXPECT_EQ(was_omega, is_omega) << "state " << s;
  }
}

TEST(SerializeLts, RandomisedRoundTripProperty) {
  // Seeded random LTSes straight through encode→decode; events live in one
  // shared Context so EventIds compare directly.
  std::mt19937_64 rng(20260805);
  Context ctx;
  std::vector<EventId> alphabet;
  for (int i = 0; i < 5; ++i) alphabet.push_back(ctx.event(ctx.channel("ch" + std::to_string(i))));

  for (int round = 0; round < 50; ++round) {
    const std::size_t states = 1 + rng() % 40;
    Lts lts;
    lts.succ.resize(states);
    lts.term_of.assign(states, ctx.stop());
    lts.root = static_cast<StateId>(rng() % states);
    for (std::size_t s = 0; s < states; ++s) {
      if (rng() % 4 == 0) lts.term_of[s] = ctx.omega();
      const std::size_t degree = rng() % 5;
      for (std::size_t t = 0; t < degree; ++t) {
        lts.succ[s].push_back(
            LtsTransition{alphabet[rng() % alphabet.size()],
                          static_cast<StateId>(rng() % states)});
      }
    }

    const auto blob = seal_lts(ctx, lts);
    const Lts back = unseal_lts(blob, ctx);
    ASSERT_EQ(back.state_count(), lts.state_count());
    EXPECT_EQ(back.root, lts.root);
    for (std::size_t s = 0; s < states; ++s) {
      ASSERT_EQ(back.succ[s].size(), lts.succ[s].size()) << "state " << s;
      for (std::size_t i = 0; i < lts.succ[s].size(); ++i) {
        EXPECT_EQ(back.succ[s][i].event, lts.succ[s][i].event);
        EXPECT_EQ(back.succ[s][i].target, lts.succ[s][i].target);
      }
      EXPECT_EQ(back.term_of[s]->op() == Op::Omega,
                lts.term_of[s]->op() == Op::Omega);
    }

    // And the destructive side: truncations of this random artifact throw.
    for (std::size_t cut : {blob.size() / 3, blob.size() / 2, blob.size() - 1}) {
      EXPECT_THROW(
          unseal_lts(std::span<const std::uint8_t>(blob.data(), cut), ctx),
          SerializeError);
    }
  }
}

TEST(SerializeLts, RejectsDanglingReferences) {
  // Hand-mangle a valid payload so it survives the digest but violates the
  // structural invariants: decode must bound-check, not index blindly.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("ch0"));
  Lts lts;
  lts.succ.resize(2);
  lts.term_of.assign(2, ctx.stop());
  lts.root = 0;
  lts.succ[0].push_back(LtsTransition{a, 1});

  // Re-encode with an out-of-range transition target.
  Lts bad = lts;
  bad.succ[0][0].target = 7;
  EXPECT_THROW(unseal_lts(seal_lts(ctx, bad), ctx), SerializeError);

  Lts bad_root = lts;
  bad_root.root = 9;
  EXPECT_THROW(unseal_lts(seal_lts(ctx, bad_root), ctx), SerializeError);
}

// --- verdict round trips -----------------------------------------------------

TEST(SerializeCheck, PassingVerdictRoundTrips) {
  Context ctx;
  CheckResult res;
  res.passed = true;
  res.stats = {.impl_states = 12,
               .impl_transitions = 30,
               .spec_states = 4,
               .spec_norm_nodes = 5,
               .product_states = 48};
  const CheckResult back = unseal_check(seal_check(ctx, res), ctx);
  EXPECT_TRUE(back.passed);
  EXPECT_FALSE(back.counterexample.has_value());
  EXPECT_EQ(back.stats.impl_states, 12u);
  EXPECT_EQ(back.stats.product_states, 48u);
  // from_cache is transient and must come back unset.
  EXPECT_FALSE(back.from_cache);
}

TEST(SerializeCheck, VacuousFlagRoundTrips) {
  // Format v2 carries the vacuity bit: a vacuous PASS must not come back
  // from the store looking like a meaningful one.
  Context ctx;
  CheckResult res;
  res.passed = true;
  res.vacuous = true;
  const CheckResult back = unseal_check(seal_check(ctx, res), ctx);
  EXPECT_TRUE(back.passed);
  EXPECT_TRUE(back.vacuous);

  res.vacuous = false;
  EXPECT_FALSE(unseal_check(seal_check(ctx, res), ctx).vacuous);
}

TEST(SerializeCheck, PrunedFlagRoundTrips) {
  // Format v3 carries the pruned bit: a verdict certified by the static
  // pruner keeps its provenance across the store.
  Context ctx;
  CheckResult res;
  res.passed = true;
  res.vacuous = true;
  res.pruned = true;
  const CheckResult back = unseal_check(seal_check(ctx, res), ctx);
  EXPECT_TRUE(back.passed);
  EXPECT_TRUE(back.vacuous);
  EXPECT_TRUE(back.pruned);

  res.pruned = false;
  EXPECT_FALSE(unseal_check(seal_check(ctx, res), ctx).pruned);
}

TEST(SerializeCheck, CounterexampleRoundTripsAcrossContexts) {
  // A real failing refinement, serialized and decoded into a fresh Context:
  // the rendered counterexample must be byte-identical.
  Context src;
  const EventId a = src.event(src.channel("a"));
  const EventId b = src.event(src.channel("b"));
  const ProcessRef spec = src.prefix(a, src.stop());
  const ProcessRef impl = src.prefix(a, src.prefix(b, src.stop()));
  const CheckResult res = check_refinement(src, spec, impl, Model::Traces);
  ASSERT_FALSE(res.passed);
  ASSERT_TRUE(res.counterexample.has_value());

  Context dst;
  dst.channel("a");
  dst.channel("b");
  const CheckResult back = unseal_check(seal_check(src, res), dst);
  ASSERT_TRUE(back.counterexample.has_value());
  EXPECT_EQ(back.passed, res.passed);
  EXPECT_EQ(back.counterexample->kind, res.counterexample->kind);
  EXPECT_EQ(back.counterexample->describe(dst),
            res.counterexample->describe(src));
  EXPECT_EQ(back.stats.impl_states, res.stats.impl_states);
}

TEST(SerializeCheck, RandomisedVerdictRoundTripProperty) {
  std::mt19937_64 rng(42);
  Context ctx;
  std::vector<EventId> alphabet;
  for (int i = 0; i < 4; ++i) alphabet.push_back(ctx.event(ctx.channel("e" + std::to_string(i))));

  for (int round = 0; round < 50; ++round) {
    CheckResult res;
    res.passed = rng() % 2 == 0;
    if (!res.passed) {
      Counterexample c;
      c.kind = static_cast<Counterexample::Kind>(
          rng() % (static_cast<unsigned>(Counterexample::Kind::Nondeterminism) + 1));
      const std::size_t len = rng() % 8;
      for (std::size_t i = 0; i < len; ++i) c.trace.push_back(alphabet[rng() % alphabet.size()]);
      c.event = alphabet[rng() % alphabet.size()];
      std::vector<EventId> acc;
      for (const EventId e : alphabet) {
        if (rng() % 2) acc.push_back(e);
      }
      c.impl_acceptance = EventSet(std::move(acc));
      res.counterexample = std::move(c);
    }
    res.stats.impl_states = rng() % 1000;
    res.stats.impl_transitions = rng() % 1000;
    res.stats.spec_states = rng() % 1000;
    res.stats.spec_norm_nodes = rng() % 1000;
    res.stats.product_states = rng() % 1000;

    const CheckResult back = unseal_check(seal_check(ctx, res), ctx);
    EXPECT_EQ(back.passed, res.passed);
    ASSERT_EQ(back.counterexample.has_value(), res.counterexample.has_value());
    if (res.counterexample) {
      EXPECT_EQ(back.counterexample->kind, res.counterexample->kind);
      EXPECT_EQ(back.counterexample->trace, res.counterexample->trace);
      EXPECT_EQ(back.counterexample->event, res.counterexample->event);
      EXPECT_EQ(back.counterexample->impl_acceptance,
                res.counterexample->impl_acceptance);
    }
    EXPECT_EQ(back.stats.impl_states, res.stats.impl_states);
    EXPECT_EQ(back.stats.product_states, res.stats.product_states);
  }
}

TEST(SerializeCheck, KindAndVersionAreEnforced) {
  Context ctx;
  CheckResult res;
  res.passed = true;
  const auto blob = seal_check(ctx, res);
  // A verdict blob fed to the LTS loader is rejected by the envelope.
  EXPECT_THROW(unseal_lts(blob, ctx), SerializeError);
}

}  // namespace
}  // namespace ecucsp::store
