// --prune=static: the verify layer's static certification of vacuous-PASS
// cells (src/verify/prune.hpp). The contract under test is soundness by
// cross-validation: every cell the pruner certifies must, when actually run,
// produce the identical verdict and vacuity flag — and cells it cannot
// certify (every FAIL, every meaningful PASS) must run untouched.
#include <gtest/gtest.h>

#include "cspm/eval.hpp"
#include "ota/ota.hpp"
#include "security/properties.hpp"
#include "verify/ota_batch.hpp"
#include "verify/prune.hpp"
#include "verify/scheduler.hpp"

using namespace ecucsp;
using namespace ecucsp::verify;

namespace {

/// A divergent process with empty visible alphabet: (c -> X) \ {c}. The
/// canonical shape an alphabet-mismatched extraction degenerates to under
/// projection.
ProcessRef silent_loop(Context& ctx, EventId c) {
  ctx.define("_SILENT_", [c](Context& cx, std::span<const Value>) {
    return cx.prefix(c, cx.var("_SILENT_"));
  });
  return ctx.hide(ctx.var("_SILENT_"), EventSet{c});
}

}  // namespace

// --- predict_vacuous_pass unit behaviour -------------------------------------

TEST(PrunePredict, CertifiesSilentImplAgainstResponseSpec) {
  Context ctx;
  const EventId req = ctx.event(ctx.channel("req"));
  const EventId resp = ctx.event(ctx.channel("resp"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef spec = security::response_spec(ctx, req, resp);
  const ProcessRef impl = silent_loop(ctx, c);

  ASSERT_TRUE(predict_vacuous_pass(ctx, spec, impl, Model::Traces, 1u << 20));

  // Cross-validate: the dynamic sweep agrees bit for bit.
  const CheckResult dynamic =
      check_refinement(ctx, spec, impl, Model::Traces, 1u << 20);
  EXPECT_TRUE(dynamic.passed);
  EXPECT_TRUE(dynamic.vacuous);
  const CheckResult statically = pruned_pass();
  EXPECT_EQ(statically.passed, dynamic.passed);
  EXPECT_EQ(statically.vacuous, dynamic.vacuous);
  EXPECT_TRUE(statically.pruned);
  EXPECT_FALSE(dynamic.pruned);  // the engine itself never sets it
}

TEST(PrunePredict, AbstainsOutsideTheTracesModel) {
  // A silent divergent impl *fails* failures/FD refinement of the response
  // spec, so pruning there would flip a verdict; the predictor must refuse.
  Context ctx;
  const EventId req = ctx.event(ctx.channel("req"));
  const EventId resp = ctx.event(ctx.channel("resp"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef spec = security::response_spec(ctx, req, resp);
  const ProcessRef impl = silent_loop(ctx, c);
  EXPECT_FALSE(
      predict_vacuous_pass(ctx, spec, impl, Model::Failures, 1u << 20));
  EXPECT_FALSE(predict_vacuous_pass(ctx, spec, impl,
                                    Model::FailuresDivergences, 1u << 20));
}

TEST(PrunePredict, AbstainsWhenImplReachesAConstrainedEvent) {
  // The impl genuinely exercises the spec: the cell must run for real.
  Context ctx;
  const EventId req = ctx.event(ctx.channel("req"));
  const EventId resp = ctx.event(ctx.channel("resp"));
  const ProcessRef spec = security::response_spec(ctx, req, resp);
  const ProcessRef impl = ctx.prefix(req, ctx.prefix(resp, ctx.stop()));
  EXPECT_FALSE(predict_vacuous_pass(ctx, spec, impl, Model::Traces, 1u << 20));
}

TEST(PrunePredict, AbstainsOnFailingCells) {
  // reach = {b} is disjoint from constrained = {a}, but b is not allowed in
  // every spec state (allowed_inter is empty) — and indeed the check FAILS.
  // The subset-of-allowed_inter condition is what keeps this cell unpruned.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef spec = ctx.prefix(a, ctx.stop());
  const ProcessRef impl = ctx.prefix(b, ctx.stop());
  EXPECT_FALSE(predict_vacuous_pass(ctx, spec, impl, Model::Traces, 1u << 20));
  EXPECT_FALSE(check_refinement(ctx, spec, impl, Model::Traces).passed);
}

TEST(PrunePredict, AbstainsWhenSpecConstrainsNothing) {
  // RUN(Sigma) has a single normal state: constrained = {} and the dynamic
  // sweep would not flag vacuity, so the predictor must not either.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId c = ctx.event(ctx.channel("c"));
  const ProcessRef spec = ctx.run(EventSet{a, c});
  const ProcessRef impl = silent_loop(ctx, c);
  EXPECT_FALSE(predict_vacuous_pass(ctx, spec, impl, Model::Traces, 1u << 20));
}

// --- task-level integration --------------------------------------------------

TEST(PruneTask, FactoryModeTaskReportsPrunedOutcome) {
  CheckTask t;
  t.name = "pruned refinement";
  t.prune = true;
  t.spec = [](Context& ctx) {
    return security::response_spec(ctx, ctx.event(ctx.channel("req")),
                                   ctx.event(ctx.channel("resp")));
  };
  t.impl = [](Context& ctx) {
    return silent_loop(ctx, ctx.event(ctx.channel("c")));
  };
  CancelToken token;
  const TaskOutcome out = run_task(t, token);
  EXPECT_EQ(out.status, TaskStatus::Passed);
  EXPECT_TRUE(out.pruned);
  EXPECT_TRUE(out.vacuous);
  EXPECT_EQ(out.stats.product_states, 0u);

  // The same task unpruned: identical verdict, real exploration.
  t.prune = false;
  const TaskOutcome ran = run_task(t, token);
  EXPECT_EQ(ran.status, TaskStatus::Passed);
  EXPECT_TRUE(ran.vacuous);
  EXPECT_FALSE(ran.pruned);
}

TEST(PruneTask, CspmModeTaskReportsPrunedOutcome) {
  const std::string script =
      "channel req, resp, c\n"
      "SPEC = req -> resp -> SPEC\n"
      "IMPL = (c -> STOP) \\ {| c |}\n"
      "assert SPEC [T= IMPL\n";
  CheckTask t;
  t.name = "cspm pruned";
  t.sources = {script};
  t.assertion_index = 0;
  t.prune = true;
  CancelToken token;
  const TaskOutcome out = run_task(t, token);
  EXPECT_EQ(out.status, TaskStatus::Passed);
  EXPECT_TRUE(out.pruned);
  EXPECT_TRUE(out.vacuous);

  t.prune = false;
  const TaskOutcome ran = run_task(t, token);
  EXPECT_EQ(ran.status, TaskStatus::Passed);
  EXPECT_TRUE(ran.vacuous);
  EXPECT_FALSE(ran.pruned);
}

TEST(PruneTask, CertifiesWhereExplorationExhaustsItsBudget) {
  // Recursion *through* a hide stacks a fresh \H wrapper on every unfolding
  // — the compiled state space is infinite even though traces(IMPL) = {<>}.
  // Term-level reachability works on the (finite, hash-consed) term DAG, so
  // the pruner proves the vacuous PASS that exploration cannot: the one
  // place --prune=static is stronger than running the check, rather than
  // merely faster.
  const std::string script =
      "channel req, resp, c\n"
      "SPEC = req -> resp -> SPEC\n"
      "IMPL = (c -> IMPL) \\ {| c |}\n"
      "assert SPEC [T= IMPL\n";
  CheckTask t;
  t.name = "cspm infinite unfolding";
  t.sources = {script};
  t.assertion_index = 0;
  t.max_states = 4096;  // keep the doomed exploration quick
  t.prune = false;
  CancelToken token;
  EXPECT_EQ(run_task(t, token).status, TaskStatus::StateLimit);

  t.prune = true;
  const TaskOutcome out = run_task(t, token);
  EXPECT_EQ(out.status, TaskStatus::Passed);
  EXPECT_TRUE(out.pruned);
  EXPECT_TRUE(out.vacuous);
}

TEST(PruneTask, AssertionTermsExposeRefinementsOnly) {
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(
      "channel a\n"
      "P = a -> STOP\n"
      "assert P [T= P\n"
      "assert P :[deadlock free]\n");
  const auto refines = ev.assertion_terms(0);
  ASSERT_TRUE(refines.has_value());
  EXPECT_EQ(refines->model, Model::Traces);
  EXPECT_NE(refines->spec, nullptr);
  EXPECT_NE(refines->impl, nullptr);
  EXPECT_FALSE(ev.assertion_terms(1).has_value());
}

// --- matrix-level cross-validation -------------------------------------------

namespace {

/// Run the full OTA matrix twice — pruned and unpruned — and require
/// identical verdicts and vacuity flags in every cell. Returns the number
/// of cells the pruned run certified statically.
std::size_t cross_validate_matrix(OtaMatrixOptions opts) {
  OtaMatrixOptions unpruned = opts;
  unpruned.prune = false;
  OtaMatrixOptions pruned = opts;
  pruned.prune = true;

  VerifyScheduler sched({.jobs = 2});
  const BatchResult base = sched.run(ota_requirement_matrix(unpruned));
  const BatchResult fast = sched.run(ota_requirement_matrix(pruned));
  EXPECT_EQ(base.outcomes.size(), fast.outcomes.size());

  std::size_t pruned_cells = 0;
  for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
    const TaskOutcome& b = base.outcomes[i];
    const TaskOutcome& f = fast.outcomes[i];
    EXPECT_EQ(b.name, f.name);
    EXPECT_EQ(b.status, f.status) << b.name;
    EXPECT_EQ(b.vacuous, f.vacuous) << b.name;
    EXPECT_FALSE(b.pruned) << b.name;
    if (f.pruned) {
      ++pruned_cells;
      EXPECT_EQ(f.status, TaskStatus::Passed) << b.name;
      EXPECT_TRUE(f.vacuous) << b.name;
    }
  }
  return pruned_cells;
}

}  // namespace

TEST(PruneMatrix, RealMatrixHasNothingToPrune) {
  // Every cell of the genuine OTA matrix is meaningful (its system reaches
  // constrained events), so --prune=static must leave all 15 untouched.
  EXPECT_EQ(cross_validate_matrix({}), 0u);
}

TEST(PruneMatrix, MismatchedMatrixPrunesAllVacuousCells) {
  // Under the alphabet-mismatch fault injection R02..R05 pass vacuously in
  // all three attacker variants; the pruner must certify every one of those
  // 12 cells — with verdicts identical to the dynamic runs — and must leave
  // the three genuinely failing R01 cells alone.
  OtaMatrixOptions opts;
  opts.inject_alphabet_mismatch = true;
  EXPECT_EQ(cross_validate_matrix(opts), 12u);
}
