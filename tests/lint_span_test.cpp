// Regression tests pinning source spans on multi-line inputs: the CAPL
// parser's statement/expression lines and columns, the CSPm lexer's token
// coordinates (and the columns the parser copies into the AST), and the
// DBC parser's per-message/per-signal line numbers. The lint renderer's
// carets are only as good as these.
#include <gtest/gtest.h>

#include "can/dbc.hpp"
#include "capl/parser.hpp"
#include "cspm/lexer.hpp"
#include "cspm/parser.hpp"

namespace ecucsp {
namespace {

// --- CAPL --------------------------------------------------------------------

TEST(CaplSpans, TopLevelDeclarationsCarryLineAndColumn) {
  const capl::CaplProgram prog = capl::parse_capl(
      "variables {\n"
      "  int x;\n"
      "  message 0x100 tx;\n"
      "}\n"
      "\n"
      "on start {\n"
      "  x = 1;\n"
      "}\n"
      "\n"
      "void helper(int n) {\n"
      "  x = n;\n"
      "}\n");
  ASSERT_EQ(prog.variables.size(), 2u);
  EXPECT_EQ(prog.variables[0].line, 2);
  EXPECT_EQ(prog.variables[0].column, 3);
  EXPECT_EQ(prog.variables[1].line, 3);
  EXPECT_EQ(prog.variables[1].column, 3);
  ASSERT_EQ(prog.handlers.size(), 1u);
  EXPECT_EQ(prog.handlers[0].line, 6);
  EXPECT_EQ(prog.handlers[0].column, 1);
  ASSERT_EQ(prog.functions.size(), 1u);
  EXPECT_EQ(prog.functions[0].line, 10);
  EXPECT_EQ(prog.functions[0].column, 1);
}

TEST(CaplSpans, StatementsAndExpressionsPointAtTheirFirstToken) {
  const capl::CaplProgram prog = capl::parse_capl(
      "variables {\n"
      "  int x;\n"
      "  int y;\n"
      "}\n"
      "on start {\n"
      "  x = 1 + y;\n"
      "  if (x)\n"
      "    y = 2;\n"
      "}\n");
  const capl::CaplStmt* body = prog.handlers.at(0).body.get();
  ASSERT_EQ(body->kind, capl::CStmtKind::Block);
  ASSERT_EQ(body->body.size(), 2u);

  const capl::CaplStmt* assign = body->body[0].get();
  EXPECT_EQ(assign->line, 6);
  EXPECT_EQ(assign->column, 3);
  // "x = 1 + y": the sum inherits its left operand's position, names point
  // at their own first character.
  const capl::CaplExpr* sum = assign->value.get();
  ASSERT_EQ(sum->kind, capl::CExprKind::Binary);
  EXPECT_EQ(sum->line, 6);
  EXPECT_EQ(sum->column, 7);
  ASSERT_EQ(sum->args.size(), 2u);
  EXPECT_EQ(sum->args[1]->line, 6);
  EXPECT_EQ(sum->args[1]->column, 11);

  const capl::CaplStmt* iff = body->body[1].get();
  EXPECT_EQ(iff->line, 7);
  EXPECT_EQ(iff->column, 3);
  ASSERT_NE(iff->then_branch, nullptr);
  EXPECT_EQ(iff->then_branch->line, 8);
  EXPECT_EQ(iff->then_branch->column, 5);
}

TEST(CaplSpans, MemberAndByteAccessInheritTheObjectPosition) {
  const capl::CaplProgram prog = capl::parse_capl(
      "variables {\n"
      "  message 0x100 tx;\n"
      "}\n"
      "on start {\n"
      "  tx.Seq = 3;\n"
      "  output(tx.byte(0));\n"
      "}\n");
  const capl::CaplStmt* body = prog.handlers.at(0).body.get();
  const capl::CaplExpr* member = body->body.at(0)->lvalue.get();
  ASSERT_EQ(member->kind, capl::CExprKind::Member);
  EXPECT_EQ(member->line, 5);
  EXPECT_EQ(member->column, 3);  // the whole postfix chain starts at 'tx'
  const capl::CaplExpr* byte_acc = body->body.at(1)->expr->args.at(0).get();
  ASSERT_EQ(byte_acc->kind, capl::CExprKind::ByteAccess);
  EXPECT_EQ(byte_acc->line, 6);
  EXPECT_EQ(byte_acc->column, 10);
}

TEST(CaplSpans, ParseErrorsCarryLineAndColumn) {
  try {
    capl::parse_capl("on start {\n  x = ;\n}\n");
    FAIL() << "expected CaplError";
  } catch (const capl::CaplError& e) {
    EXPECT_EQ(e.line, 2);
    EXPECT_GT(e.column, 0);
  }
}

// --- CSPm --------------------------------------------------------------------

TEST(CspmSpans, LexerTracksLineAndColumnAcrossLines) {
  const auto toks = cspm::lex("channel a\n  P = a -> Q\n");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, cspm::Tok::KwChannel);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks[1].column, 9);
  EXPECT_EQ(toks[2].text, "P");
  EXPECT_EQ(toks[2].line, 2);
  EXPECT_EQ(toks[2].column, 3);
  EXPECT_EQ(toks[4].text, "a");
  EXPECT_EQ(toks[4].column, 7);
  EXPECT_EQ(toks[5].kind, cspm::Tok::Arrow);
  EXPECT_EQ(toks[5].column, 9);
  EXPECT_EQ(toks[6].text, "Q");
  EXPECT_EQ(toks[6].column, 12);
}

TEST(CspmSpans, CommentsDoNotShiftFollowingTokens) {
  const auto toks = cspm::lex("-- remark\n{- block\n   comment -} P\n");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "P");
  EXPECT_EQ(toks[0].line, 3);
  EXPECT_EQ(toks[0].column, 15);
}

TEST(CspmSpans, AstExpressionsKeepTokenCoordinates) {
  const cspm::Script s = cspm::parse_cspm(
      "channel a\n"
      "channel b\n"
      "P = a -> b -> STOP\n");
  ASSERT_EQ(s.channels.size(), 2u);
  EXPECT_EQ(s.channels[0].line, 1);
  EXPECT_EQ(s.channels[1].line, 2);
  ASSERT_EQ(s.definitions.size(), 1u);
  EXPECT_EQ(s.definitions[0].line, 3);
  const cspm::Expr* prefix = s.definitions[0].body.get();
  ASSERT_EQ(prefix->kind, cspm::ExprKind::Prefix);
  ASSERT_NE(prefix->head, nullptr);
  EXPECT_EQ(prefix->head->line, 3);
  EXPECT_EQ(prefix->head->column, 5);
  const cspm::Expr* second = prefix->kids.at(0).get();
  ASSERT_EQ(second->kind, cspm::ExprKind::Prefix);
  EXPECT_EQ(second->head->column, 10);
}

TEST(CspmSpans, LexErrorsCarryLineAndColumn) {
  try {
    cspm::lex("channel a\n  $\n");
    FAIL() << "expected LexError";
  } catch (const cspm::LexError& e) {
    EXPECT_EQ(e.line, 2);
    EXPECT_EQ(e.column, 3);
  }
}

// --- DBC ---------------------------------------------------------------------

TEST(DbcSpans, MessagesAndSignalsRememberTheirLine) {
  const can::DbcDatabase db = can::parse_dbc(
      "VERSION \"1.0\"\n"
      "\n"
      "BO_ 256 Ping: 8 NodeA\n"
      " SG_ Seq : 0|8@1+ (1,0) [0|255] \"\" NodeB\n"
      "\n"
      "BO_ 257 Pong: 8 NodeB\n"
      " SG_ Ack : 0|8@1+ (1,0) [0|255] \"\" NodeA\n");
  ASSERT_EQ(db.messages.size(), 2u);
  EXPECT_EQ(db.messages[0].line, 3);
  ASSERT_EQ(db.messages[0].signals.size(), 1u);
  EXPECT_EQ(db.messages[0].signals[0].line, 4);
  EXPECT_EQ(db.messages[1].line, 6);
  EXPECT_EQ(db.messages[1].signals[0].line, 7);
}

}  // namespace
}  // namespace ecucsp
