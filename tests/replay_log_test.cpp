// Unit tests for candump ingestion and the synthetic log generator: the
// per-line codec's accept/reject matrix, format round-trips, mmap'd file
// reading, parallel-scan line accounting, the multi-file timestamp merge,
// and the ground-truth regression "the injected attack frame is exactly
// the first divergence the replay reports".
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "can/candump.hpp"
#include "can/dbc.hpp"
#include "conform/harness.hpp"
#include "ota/ota.hpp"
#include "replay/log.hpp"
#include "replay/replay.hpp"
#include "replay/synth.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::replay {
namespace {

std::filesystem::path temp_path(const char* stem) {
  static int counter = 0;
  return std::filesystem::temp_directory_path() /
         (std::string(stem) + "-" + std::to_string(::getpid()) + "-" +
          std::to_string(counter++));
}

struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& text, const char* stem = "replay-test") {
    path = temp_path(stem);
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  ~TempFile() { std::filesystem::remove(path); }
};

// --- per-line codec ----------------------------------------------------------

TEST(CandumpLine, ParsesStandardFrame) {
  const auto rec = can::parse_candump_line("(1736455225.123456) can0 123#DEADBEEF");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp_us, 1736455225123456ull);
  EXPECT_EQ(rec->channel, "can0");
  EXPECT_EQ(rec->frame.id, 0x123u);
  EXPECT_FALSE(rec->frame.extended);
  EXPECT_EQ(rec->frame.dlc, 4);
  EXPECT_EQ(rec->frame.byte(0), 0xDE);
  EXPECT_EQ(rec->frame.byte(3), 0xEF);
  EXPECT_EQ(rec->frame.timestamp_us, rec->timestamp_us);
}

TEST(CandumpLine, ParsesExtendedAndEmptyPayload) {
  const auto ext =
      can::parse_candump_line("(1.000001) vcan1 18FF10F3#0102030405060708");
  ASSERT_TRUE(ext.has_value());
  EXPECT_TRUE(ext->frame.extended);
  EXPECT_EQ(ext->frame.id, 0x18FF10F3u);
  EXPECT_EQ(ext->frame.dlc, 8);

  const auto empty = can::parse_candump_line("(2.5) can0 7FF#");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->frame.dlc, 0);
  EXPECT_EQ(empty->timestamp_us, 2'500'000ull);
  EXPECT_FALSE(empty->frame.extended);
}

TEST(CandumpLine, RejectsMalformedInput) {
  const char* bad[] = {
      "",                                   // empty
      "(1.0) can0",                         // missing frame token
      "(1.0)",                              // missing interface
      "1.0 can0 123#00",                    // no parens
      "(abc) can0 123#00",                  // bad timestamp
      "(1.0) can0 123#00 extra",            // trailing content
      "(1.0) can0 ZZZ#00",                  // bad id hex
      "(1.0) can0 123456789#00",            // id too long
      "(1.0) can0 20000000#00",             // beyond 29 bits
      "(1.0) can0 123#0",                   // odd payload hex
      "(1.0) can0 123#0102030405060708AA",  // > 8 bytes
      "(1.0) can0 123#GG",                  // bad payload hex
      "(1.0) can0 123##1AABB",              // CAN FD
      "(1.0) can0 123#R",                   // remote
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(can::parse_candump_line(line, &error).has_value())
        << "accepted: " << line;
    EXPECT_FALSE(error.empty()) << "no error message for: " << line;
  }
}

TEST(CandumpLine, FormatRoundTrips) {
  can::CanFrame f;
  f.id = 0x103;
  f.dlc = 8;
  f.set_byte(0, 1);
  f.set_byte(7, 0xA4);
  const std::string line = can::format_candump_line(1736455225123456ull, "can0", f);
  EXPECT_EQ(line, "(1736455225.123456) can0 103#01000000000000A4");
  const auto back = can::parse_candump_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->frame, [&] {
    can::CanFrame want = f;
    want.timestamp_us = 1736455225123456ull;
    return want;
  }());
  EXPECT_EQ(back->channel, "can0");

  can::CanFrame ext;
  ext.id = 0x18FF10F3;
  ext.extended = true;
  ext.dlc = 2;
  ext.set_byte(0, 0xAB);
  const std::string eline = can::format_candump_line(5, "vcan0", ext);
  EXPECT_EQ(eline, "(0.000005) vcan0 18FF10F3#AB00");
  EXPECT_TRUE(can::parse_candump_line(eline).has_value());
}

// --- file ingestion ----------------------------------------------------------

TEST(MappedFile, MapsRegularFilesAndThrowsOnMissing) {
  const TempFile f("hello candump\n");
  const MappedFile mf(f.path);
  EXPECT_EQ(mf.view(), "hello candump\n");
  EXPECT_THROW(MappedFile("/ecucsp/no/such/file.log"), std::runtime_error);
}

TEST(MappedFile, EmptyFileYieldsEmptyView) {
  const TempFile f("");
  const MappedFile mf(f.path);
  EXPECT_TRUE(mf.view().empty());
}

TEST(ScanCandump, RecordsDiagnosticsWithLineAndOffset) {
  const std::string text =
      "(1.000000) can0 100#00\n"
      "garbage line\n"
      "\n"
      "# a comment\n"
      "(1.000500) can0 101#00\n";
  ParsedLog log;
  scan_candump(text, 0, log);
  EXPECT_EQ(log.lines, 5u);
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.records[0].line, 1u);
  EXPECT_EQ(log.records[1].line, 5u);
  EXPECT_EQ(log.records[1].byte_offset, text.find("(1.000500)"));
  ASSERT_EQ(log.diagnostics.size(), 1u);
  EXPECT_EQ(log.diagnostics[0].line, 2u);
  EXPECT_EQ(log.diagnostics[0].byte_offset, text.find("garbage"));
  EXPECT_EQ(log.diagnostics[0].severity, DiagSeverity::Error);
}

TEST(ScanCandump, ParallelScanMatchesSequential) {
  // Big enough to split into several chunks at any worker count.
  std::string text;
  for (int i = 0; i < 5000; ++i) {
    text += "(" + std::to_string(100 + i / 1000) + "." +
            std::to_string(100000 + i % 1000) + ") can0 100#00\n";
    if (i % 37 == 0) text += "not a frame\n";
  }
  ParsedLog seq;
  scan_candump(text, 0, seq);

  verify::VerifyScheduler sched{{.jobs = 4}};
  ParsedLog par;
  scan_candump(text, 0, par, &sched);

  ASSERT_EQ(par.records.size(), seq.records.size());
  for (std::size_t i = 0; i < seq.records.size(); ++i) {
    EXPECT_EQ(par.records[i].line, seq.records[i].line) << i;
    EXPECT_EQ(par.records[i].byte_offset, seq.records[i].byte_offset) << i;
    EXPECT_EQ(par.records[i].frame, seq.records[i].frame) << i;
  }
  ASSERT_EQ(par.diagnostics.size(), seq.diagnostics.size());
  for (std::size_t i = 0; i < seq.diagnostics.size(); ++i) {
    EXPECT_EQ(par.diagnostics[i].line, seq.diagnostics[i].line) << i;
    EXPECT_EQ(par.diagnostics[i].message, seq.diagnostics[i].message) << i;
  }
  EXPECT_EQ(par.lines, seq.lines);
}

TEST(FinalizeMerge, MergesFilesByTimestampStably) {
  ParsedLog log;
  scan_candump("(2.000000) can0 100#00\n(4.000000) can0 101#00\n", 0, log);
  scan_candump("(1.000000) can1 103#01000000000000A4\n"
               "(2.000000) can1 104#00\n",
               1, log);
  finalize_merge(log);
  ASSERT_EQ(log.records.size(), 4u);
  EXPECT_EQ(log.records[0].file, 1u);  // t=1
  // Tie at t=2: file 0 scanned first stays first.
  EXPECT_EQ(log.records[1].file, 0u);
  EXPECT_EQ(log.records[2].file, 1u);
  EXPECT_EQ(log.records[3].file, 0u);  // t=4
  ASSERT_EQ(log.channels.size(), 2u);
  EXPECT_EQ(log.channels[log.records[0].channel], "can1");
  EXPECT_EQ(log.diagnostic_count, 0u);
}

TEST(FinalizeMerge, FlagsTimestampRegressionAsWarning) {
  ParsedLog log;
  scan_candump("(2.000000) can0 100#00\n"
               "(1.500000) can0 101#00\n"
               "(3.000000) can0 100#00\n",
               0, log);
  finalize_merge(log);
  ASSERT_EQ(log.diagnostics.size(), 1u);
  EXPECT_EQ(log.diagnostics[0].severity, DiagSeverity::Warning);
  EXPECT_EQ(log.diagnostics[0].line, 2u);
  EXPECT_EQ(log.records.size(), 3u);  // kept, resorted
  EXPECT_EQ(log.records[0].frame.timestamp_us, 1'500'000ull);
}

// --- synthetic logs ----------------------------------------------------------

class SynthTest : public ::testing::Test {
 protected:
  SynthTest()
      : db_(can::parse_dbc(ota::ota_dbc_text())),
        codec_(conform::ota_codec(db_)) {}
  can::DbcDatabase db_;
  conform::FrameCodec codec_;
};

TEST_F(SynthTest, FrameForEventInvertsAbstraction) {
  for (const char* event :
       {"send.SwInventoryReq", "rec.SwReport", "send.UpdApplyReq",
        "send.UpdApplyReqBad", "rec.UpdReport"}) {
    const auto frame = frame_for_event(codec_, event);
    ASSERT_TRUE(frame.has_value()) << event;
    EXPECT_EQ(codec_.abstract_frame(*frame), event);
  }
  EXPECT_FALSE(frame_for_event(codec_, "send.NoSuchMsg").has_value());
  EXPECT_FALSE(frame_for_event(codec_, "rec.UpdApplyReq").has_value())
      << "wrong direction must not concretize";
  EXPECT_FALSE(frame_for_event(codec_, "junk").has_value());
}

TEST_F(SynthTest, HonestLogPassesEveryOracleAndRoundTrips) {
  SynthOptions opt;
  opt.seed = 7;
  opt.frames = 500;
  const SynthLog synth = synthesize_log(codec_, opt);
  EXPECT_GE(synth.frames, opt.frames);
  EXPECT_EQ(synth.injected_index, SynthLog::npos);
  EXPECT_EQ(synth.events.size(), synth.frames);

  // Identical options => identical log (the generator is seeded).
  EXPECT_EQ(synthesize_log(codec_, opt).text, synth.text);

  const TempFile f(synth.text, "synth-honest");
  ReplayOptions ropt;
  ropt.logs = {f.path};
  ropt.strict = true;
  const ReplayReport rep = run_replay(ropt);
  EXPECT_TRUE(rep.ok()) << rep.render_text();
  EXPECT_EQ(rep.frames, synth.frames);
  EXPECT_EQ(rep.events, synth.events.size());
  EXPECT_EQ(rep.diagnostic_count, 0u);
}

TEST_F(SynthTest, InjectedAttackIsTheFirstDivergence) {
  for (const Attack attack : {Attack::Replay, Attack::Masquerade}) {
    SynthOptions opt;
    opt.seed = 11;
    opt.frames = 400;
    opt.attack = attack;
    opt.attack_at = 200;
    const SynthLog synth = synthesize_log(codec_, opt);
    ASSERT_NE(synth.injected_index, SynthLog::npos);
    EXPECT_GE(synth.injected_index, opt.attack_at);
    EXPECT_EQ(synth.events[synth.injected_index], "rec.UpdReport");

    const TempFile f(synth.text, "synth-attack");
    ReplayOptions ropt;
    ropt.logs = {f.path};
    const ReplayReport rep = run_replay(ropt);
    EXPECT_FALSE(rep.ok());
    bool r04_pinned = false;
    for (const OracleReport& o : rep.oracles) {
      if (o.name != "R04") {
        continue;
      }
      ASSERT_FALSE(o.divergences.empty());
      EXPECT_EQ(o.divergences[0].event_index, synth.injected_index)
          << rep.render_text();
      EXPECT_EQ(o.divergences[0].event, "rec.UpdReport");
      r04_pinned = true;
    }
    EXPECT_TRUE(r04_pinned);
  }
}

TEST_F(SynthTest, RenderCandumpRealisesEveryEvent) {
  const std::vector<std::string> events = {
      "send.SwInventoryReq", "rec.SwReport", "send.UpdApplyReq",
      "rec.UpdReport", "send.UpdApplyReqBad"};
  const std::string text = render_candump(codec_, events, "can0", 1'000'000);
  ParsedLog log;
  scan_candump(text, 0, log);
  finalize_merge(log);
  ASSERT_EQ(log.records.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(codec_.abstract_frame(log.records[i].frame), events[i]);
  }
  EXPECT_THROW(render_candump(codec_, {"rec.Nonsense"}, "can0", 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecucsp::replay
