// The flow-analysis framework under the T0xx rules: CFG construction, the
// worklist solvers, term-level CSPm reachability, interprocedural taint,
// suppression baselines, and the deterministic report order.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "capl/parser.hpp"
#include "can/dbc.hpp"
#include "conform/mutate.hpp"
#include "core/context.hpp"
#include "lint/baseline.hpp"
#include "lint/cfg.hpp"
#include "lint/cspm_reach.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "ota/ota.hpp"

using namespace ecucsp;
using namespace ecucsp::lint;

namespace {

std::vector<Diagnostic> taint_diagnostics(std::string_view capl,
                                          const can::DbcDatabase* db) {
  const capl::CaplProgram prog = capl::parse_capl(capl);
  DiagnosticSink sink;
  lint_capl_taint(prog, db, "test.can", sink);
  sink.finalize();
  return sink.diagnostics();
}

bool has_rule(const std::vector<Diagnostic>& diags, std::string_view rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

}  // namespace

// --- CFG construction --------------------------------------------------------

TEST(Cfg, IfElseProducesLabelledBranchEdges) {
  const capl::CaplProgram prog = capl::parse_capl(
      "on message Ping {\n"
      "  if (this.byte(0) > 3) { output(this); } else { this.byte(0) = 0; }\n"
      "}\n");
  ASSERT_EQ(prog.handlers.size(), 1u);
  const Cfg cfg = build_cfg(prog.handlers[0].body.get());

  std::size_t branches = 0;
  for (std::size_t i = 0; i < cfg.node_count(); ++i) {
    if (cfg.node(i).kind != CfgNode::Kind::Branch) continue;
    ++branches;
    ASSERT_EQ(cfg.successors(i).size(), 2u);
    EXPECT_EQ(cfg.successors(i)[0].label, CfgEdgeLabel::True);
    EXPECT_EQ(cfg.successors(i)[1].label, CfgEdgeLabel::False);
    EXPECT_NE(cfg.node(i).cond, nullptr);
  }
  EXPECT_EQ(branches, 1u);
}

TEST(Cfg, WhileLoopFormsBackEdge) {
  const capl::CaplProgram prog = capl::parse_capl(
      "void spin() {\n"
      "  int i = 0;\n"
      "  while (i < 8) { i = i + 1; }\n"
      "}\n");
  ASSERT_EQ(prog.functions.size(), 1u);
  const Cfg cfg = build_cfg(prog.functions[0].body.get());

  // Some node must lead back to an earlier node (the loop edge), and the
  // exit must be reachable from the branch's False side.
  bool back_edge = false;
  for (std::size_t i = 0; i < cfg.node_count(); ++i) {
    for (const CfgEdge& e : cfg.successors(i)) back_edge |= e.to <= i && i > cfg.exit();
  }
  EXPECT_TRUE(back_edge);
}

TEST(Cfg, ProgramCfgResolvesCallGraph) {
  const capl::CaplProgram prog = capl::parse_capl(
      "void record(int v) { }\n"
      "on message Ping { record(this.byte(0)); }\n");
  const ProgramCfg pcfg = build_program_cfg(prog);
  // Handlers first, then functions.
  ASSERT_EQ(pcfg.procs.size(), 2u);
  EXPECT_NE(pcfg.procs[0].handler, nullptr);
  EXPECT_NE(pcfg.procs[1].function, nullptr);
  ASSERT_TRUE(pcfg.function_index.count("record"));
  const std::size_t fn = pcfg.function_index.at("record");
  ASSERT_EQ(pcfg.callees_of[0], std::vector<std::size_t>{fn});
  ASSERT_EQ(pcfg.callers_of[fn], std::vector<std::size_t>{0});
  ASSERT_EQ(pcfg.procs[0].calls.size(), 1u);
  EXPECT_EQ(pcfg.procs[0].calls[0].callee, "record");
}

// --- the worklist solver -----------------------------------------------------

TEST(Dataflow, WorklistPopsLowestIndexOnce) {
  Worklist w(5);
  w.push(3);
  w.push(1);
  w.push(3);  // duplicate while queued: ignored
  EXPECT_EQ(w.pop(), 1u);
  EXPECT_EQ(w.pop(), 3u);
  EXPECT_TRUE(w.empty());
  w.push(3);  // re-queueable after pop
  EXPECT_EQ(w.pop(), 3u);
}

TEST(Dataflow, SolveEquationsReachesFixpointOnCycles) {
  // X0 = {a} ∪ X2, X1 = X0, X2 = X1 — a cycle; all three converge to {a}.
  const std::vector<std::vector<std::size_t>> deps = {{1}, {2}, {0}};
  using Set = std::set<char>;
  const auto result = solve_equations<Set>(
      3, deps, [](Set& into, const Set& from) { return join_union(into, from); },
      [](std::size_t i, const std::vector<Set>& x) {
        Set v = x[(i + 2) % 3];
        if (i == 0) v.insert('a');
        return v;
      });
  for (const Set& s : result) EXPECT_EQ(s, Set{'a'});
}

// --- term-level CSPm reachability --------------------------------------------

TEST(CspmReach, CoversPrefixHideRenameAndRecursion) {
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const EventId c = ctx.event(ctx.channel("c"));

  // P = a -> b -> P: reach {a, b}.
  ctx.define("P", [a, b](Context& cx, std::span<const Value>) {
    return cx.prefix(a, cx.prefix(b, cx.var("P")));
  });
  EXPECT_EQ(reachable_events_over(ctx, ctx.var("P")), (EventSet{a, b}));

  // Hiding subtracts: P \ {b} reaches only {a}.
  EXPECT_EQ(reachable_events_over(ctx, ctx.hide(ctx.var("P"), EventSet{b})),
            EventSet{a});

  // Renaming maps: P[b <- c] reaches {a, c}.
  EXPECT_EQ(reachable_events_over(
                ctx, ctx.rename(ctx.var("P"), {RenamePair{b, c}})),
            (EventSet{a, c}));

  // SKIP contributes TICK (termination is an observable the pruner must
  // account for); STOP contributes nothing.
  EXPECT_EQ(reachable_events_over(ctx, ctx.skip()), EventSet{TICK});
  EXPECT_EQ(reachable_events_over(ctx, ctx.stop()), EventSet{});
}

TEST(CspmReach, IsASupersetOfTheCompiledAlphabet) {
  // External choice with an unreachable-in-practice arm still counts: the
  // result over-approximates, never under-approximates.
  Context ctx;
  const EventId a = ctx.event(ctx.channel("a"));
  const EventId b = ctx.event(ctx.channel("b"));
  const ProcessRef p =
      ctx.ext_choice(ctx.prefix(a, ctx.stop()),
                     ctx.hide(ctx.prefix(b, ctx.stop()), EventSet{b}));
  const EventSet reach = reachable_events_over(ctx, p);
  EXPECT_TRUE(EventSet{a}.subset_of(reach));
}

// --- interprocedural taint ---------------------------------------------------

TEST(Taint, FlowsThroughUserFunctionToBus) {
  // The tainted payload reaches output() only inside the callee; the report
  // lands at the *call site* with the full source→sink chain.
  const auto diags = taint_diagnostics(
      "variables { message Pong reply; }\n"
      "void forward(int v) {\n"
      "  reply.byte(0) = v;\n"
      "  output(reply);\n"
      "}\n"
      "on message Ping {\n"
      "  forward(this.byte(0));\n"
      "}\n",
      nullptr);
  ASSERT_TRUE(has_rule(diags, "T001"));
  const auto it = std::find_if(diags.begin(), diags.end(),
                               [](const Diagnostic& d) { return d.rule == "T001"; });
  EXPECT_EQ(it->span.line, 7);  // the call site in the handler
  ASSERT_GE(it->chain.size(), 2u);
  EXPECT_EQ(it->chain.front().span.line, 7);  // source: the tainted read
  EXPECT_EQ(it->chain.back().span.line, 4);   // sink: output() in the callee
}

TEST(Taint, ValidationInCallerSuppressesCalleeSink) {
  const auto diags = taint_diagnostics(
      "variables { message Pong reply; }\n"
      "void forward(int v) {\n"
      "  reply.byte(0) = v;\n"
      "  output(reply);\n"
      "}\n"
      "on message Ping {\n"
      "  if (this.byte(0) < 16) {\n"
      "    forward(this.byte(0));\n"
      "  }\n"
      "}\n",
      nullptr);
  EXPECT_FALSE(has_rule(diags, "T001"));
}

// --- mutation check: the paper's MAC-drop fault ------------------------------

TEST(Taint, DropGuardMutantOnEcuMacCheckTripsT002) {
  // The shipped OTA ECU is taint-clean: its UpdApplyReq handler verifies the
  // MacTag before acting. Dropping that guard (conform::mutate_program's
  // DropGuard operator — the paper's unprotected ECU) must flip the handler
  // to a T002 finding.
  const can::DbcDatabase db = can::parse_dbc(ota::ota_dbc_text());
  {
    const capl::CaplProgram clean = capl::parse_capl(ota::ecu_capl_source());
    DiagnosticSink sink;
    lint_capl_taint(clean, &db, "<ota:ecu.can>", sink);
    sink.finalize();
    EXPECT_FALSE(has_rule(sink.diagnostics(), "T002"));
  }

  bool found_drop_guard = false;
  const std::size_t points = [] {
    capl::CaplProgram p = capl::parse_capl(ota::ecu_capl_source());
    return conform::count_mutation_points(p);
  }();
  for (std::size_t seed = 0; seed < points; ++seed) {
    capl::CaplProgram mutant = capl::parse_capl(ota::ecu_capl_source());
    const conform::MutationInfo info = conform::mutate_program(mutant, seed);
    if (info.description.find("DropGuard") == std::string::npos) continue;
    found_drop_guard = true;
    DiagnosticSink sink;
    lint_capl_taint(mutant, &db, "<ota:ecu.can>", sink);
    sink.finalize();
    EXPECT_TRUE(has_rule(sink.diagnostics(), "T002"))
        << info.description << " at line " << info.line;
  }
  EXPECT_TRUE(found_drop_guard);
}

// --- report-order regression (multi-file, shuffled insertion) ----------------

TEST(Diagnostics, ReportOrderIsInvariantUnderInsertionOrder) {
  // The sink's finalize() sorts with std::sort, which is unstable — the
  // comparator must therefore be a strict total order over *all* fields so
  // near-duplicates (same position, different rule/message/severity) cannot
  // swap between runs or analyzer orderings.
  std::vector<Diagnostic> diags;
  diags.push_back({"C002", Severity::Error, "b.can", {3, 1, 2}, "beta"});
  diags.push_back({"C001", Severity::Warning, "a.can", {3, 1, 2}, "alpha"});
  diags.push_back({"C001", Severity::Warning, "a.can", {3, 1, 2}, "alpha"});
  diags.push_back({"C001", Severity::Error, "a.can", {3, 1, 2}, "alpha"});
  diags.push_back({"T001", Severity::Warning, "a.can", {3, 1, 2}, "alpha",
                   {{{1, 2, 3}, "src"}}});
  diags.push_back({"T001", Severity::Warning, "a.can", {3, 1, 2}, "alpha",
                   {{{1, 2, 3}, "src"}, {{2, 2, 3}, "sink"}}});

  std::vector<Diagnostic> reference;
  std::mt19937 rng(7);
  for (int round = 0; round < 16; ++round) {
    std::vector<Diagnostic> shuffled = diags;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    DiagnosticSink sink;
    for (Diagnostic& d : shuffled) sink.add(std::move(d));
    sink.finalize();
    if (round == 0) {
      reference = sink.diagnostics();
      // The exact duplicate is dropped; all distinct variants survive.
      EXPECT_EQ(reference.size(), diags.size() - 1);
    } else {
      EXPECT_EQ(render_json(sink.diagnostics()), render_json(reference));
    }
  }
}

// --- suppression baselines ---------------------------------------------------

TEST(Baseline, RoundTripsAndFilters) {
  std::vector<Diagnostic> diags;
  diags.push_back({"C001", Severity::Warning, "a.can", {3, 1, 2}, "alpha"});
  diags.push_back({"C002", Severity::Error, "b.can", {9, 4, 1}, "beta"});
  const Baseline base = Baseline::from_diagnostics(diags);
  EXPECT_EQ(base.size(), 2u);

  const Baseline back = Baseline::parse(base.serialize());
  EXPECT_EQ(back.serialize(), base.serialize());
  EXPECT_TRUE(back.contains(diags[0]));

  // Moving a finding within its file keeps it suppressed; a new message or
  // file does not.
  Diagnostic moved = diags[0];
  moved.span.line = 99;
  EXPECT_TRUE(back.contains(moved));
  Diagnostic renamed = diags[0];
  renamed.message = "gamma";
  EXPECT_FALSE(back.contains(renamed));

  std::vector<Diagnostic> extended = diags;
  extended.push_back({"T001", Severity::Warning, "c.can", {1, 1, 1}, "new"});
  const auto filtered = filter_baselined(extended, back);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].rule, "T001");
}

TEST(Baseline, ParseRejectsMalformedLines) {
  EXPECT_THROW(Baseline::parse("not a fingerprint\n"), std::runtime_error);
  // Comments, blank lines and CRLF endings are fine.
  const Baseline b = Baseline::parse("# header\n\nC001\ta.can\tmsg\r\n");
  EXPECT_EQ(b.size(), 1u);
}
