// ecucsp_replay: offline runtime verification of logged CAN traffic.
//
//   $ ./ecucsp_replay fleet.log                       # R01..R05, text report
//   $ ./ecucsp_replay --log a.log --log b.log --json  # merged multi-channel
//   $ ./ecucsp_replay fleet.log --spec R04 --jobs 8 --max-diverge 10
//
// Ingests candump -L logs (mmap'd, tolerant of malformed lines — every bad
// line becomes a diagnostic, never an abort), merges them into one
// timestamp-ordered stream, decodes frames to CSP events through the DBC
// codec, and sweeps the requirement oracles over the trace in parallel
// chunks. Verdicts and divergence indices are byte-identical at any --jobs
// and --chunk; the first divergence is reported with the offending frame's
// timestamp, channel, raw bytes and byte offset.
//
// Exit code 0 when every oracle accepts (and, under --strict, the ingest
// was clean), 1 on any violation, 2 for usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "replay/replay.hpp"

using namespace ecucsp;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [log...]\n"
      "Checks logged CAN traffic (candump -L format) against the OTA spec\n"
      "oracles offline. Verdicts are independent of --jobs and --chunk.\n"
      "  --log FILE      a candump log (repeatable; bare args work too)\n"
      "  --dbc FILE      DBC database (default: built-in X.1373 OTA)\n"
      "  --spec S        R01..R05 | model | all (repeatable;\n"
      "                  default R01..R05)\n"
      "  --jobs N        parallel workers (0 = all cores)\n"
      "  --chunk N       events per sweep chunk (0 = whole log;\n"
      "                  default 65536)\n"
      "  --max-diverge N divergences reported per oracle (default 1)\n"
      "  --max-states N  model-oracle compile budget (default 2^20)\n"
      "  --strict        ingest diagnostics fail the run\n"
      "  --lenient       diagnostics are reported but don't fail (default)\n"
      "  --json          deterministic replay_format:1 report on stdout\n",
      argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  replay::ReplayOptions opt;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    // Every value option accepts both `--opt V` and `--opt=V`.
    std::string head;
    const char* inline_value = nullptr;
    if (std::strncmp(arg, "--", 2) == 0) {
      if (const char* eq = std::strchr(arg, '=')) {
        head.assign(arg, eq);
        inline_value = eq + 1;
        arg = head.c_str();
      }
    }
    auto value = [&]() -> const char* {
      if (inline_value) return inline_value;
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (std::strcmp(arg, "--log") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opt.logs.emplace_back(v);
    } else if (std::strcmp(arg, "--dbc") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opt.dbc = std::filesystem::path(v);
    } else if (std::strcmp(arg, "--spec") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opt.specs.emplace_back(v);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.jobs = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--chunk") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.chunk = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--max-diverge") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.max_diverge = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--max-states") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.max_states = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--strict") == 0) {
      opt.strict = true;
    } else if (std::strcmp(arg, "--lenient") == 0) {
      opt.strict = false;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      return usage(argv[0]);
    } else {
      opt.logs.emplace_back(arg);
    }
  }
  if (opt.logs.empty()) {
    std::fprintf(stderr, "no log files given\n");
    return usage(argv[0]);
  }

  try {
    const replay::ReplayReport rep = replay::run_replay(opt);
    if (json) {
      std::fputs(rep.render_json().c_str(), stdout);
    } else {
      std::fputs(rep.render_text().c_str(), stdout);
    }
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecucsp_replay: %s\n", e.what());
    return 2;
  }
}
