// ecucsp_extract: the model extractor as a command-line tool — the
// counterpart of ecucsp_check, together covering the paper's Figure 1
// toolchain from the shell:
//
//   $ ./ecucsp_extract --dbc net.dbc VMG:send:rec=vmg.can ECU:rec:send=ecu.can > model.csp
//   $ ./ecucsp_check model.csp specs.csp
//
// Each node argument is NAME:TX:RX=FILE (the channels the node transmits and
// receives on). One node emits a standalone model; several emit a composed
// SYSTEM. '--assert LINE' appends assertion (or any other) lines verbatim.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "capl/parser.hpp"
#include "lint/lint.hpp"
#include "translate/dbc_to_cspm.hpp"
#include "translate/extractor.hpp"

using namespace ecucsp;

namespace {

std::string slurp(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    throw std::runtime_error("cannot read '" + path + "': not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad() || out.fail()) {
    throw std::runtime_error("read error on '" + path + "'");
  }
  return out.str();
}

struct NodeArg {
  std::string name = "NODE";
  std::string tx = "send";
  std::string rx = "rec";
  std::string file;
};

NodeArg parse_node_arg(const std::string& arg) {
  NodeArg out;
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos) {
    out.file = arg;
    return out;
  }
  out.file = arg.substr(eq + 1);
  std::string head = arg.substr(0, eq);
  const std::size_t c1 = head.find(':');
  if (c1 == std::string::npos) {
    out.name = head;
    return out;
  }
  out.name = head.substr(0, c1);
  const std::size_t c2 = head.find(':', c1 + 1);
  if (c2 == std::string::npos) {
    throw std::runtime_error("node spec needs NAME:TX:RX=FILE, got " + arg);
  }
  out.tx = head.substr(c1 + 1, c2 - c1 - 1);
  out.rx = head.substr(c2 + 1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<NodeArg> nodes;
  std::vector<std::string> extra_lines;
  std::string dbc_path;
  bool emit_dbc_decls = false;
  bool emit_fingerprint = false;
  bool no_lint = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dbc") == 0 && i + 1 < argc) {
      dbc_path = argv[++i];
    } else if (std::strcmp(argv[i], "--assert") == 0 && i + 1 < argc) {
      extra_lines.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--dbc-decls") == 0) {
      emit_dbc_decls = true;
    } else if (std::strcmp(argv[i], "--fingerprint") == 0) {
      emit_fingerprint = true;
    } else if (std::strcmp(argv[i], "--no-lint") == 0) {
      no_lint = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--dbc FILE] [--dbc-decls] [--fingerprint] [--no-lint] "
          "[--assert LINE]... NAME:TX:RX=FILE...\n"
          "  --fingerprint  prefix the output with a comment carrying the\n"
          "                 content digest of the generated script (the\n"
          "                 identity the verification cache keys on)\n"
          "  --no-lint      skip the fail-fast static-analysis pre-flight\n"
          "                 over the CAPL inputs and the CANdb\n",
          argv[0]);
      return 0;
    } else {
      try {
        nodes.push_back(parse_node_arg(argv[i]));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
  }
  if (nodes.empty()) {
    std::fprintf(stderr, "error: no CAPL input files (try --help)\n");
    return 2;
  }

  try {
    const std::string dbc_text = dbc_path.empty() ? "" : slurp(dbc_path);
    std::vector<std::string> capl_texts;
    capl_texts.reserve(nodes.size());
    for (const NodeArg& n : nodes) capl_texts.push_back(slurp(n.file));

    // Fail-fast pre-flight: a handler for a frame the CANdb does not know,
    // an inconsistent database, or plain parse errors all stop the
    // extraction here, before any model is generated.
    if (!no_lint) {
      lint::LintRequest lreq;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        lreq.capl.push_back({nodes[i].file, capl_texts[i]});
      }
      if (!dbc_path.empty()) lreq.dbc = lint::SourceFile{dbc_path, dbc_text};
      const lint::LintReport rep = lint::run_lint(lreq);
      if (!rep.diagnostics.empty()) {
        std::fputs(lint::render_text(rep.diagnostics, rep.sources).c_str(),
                   stderr);
      }
      if (rep.has_errors()) {
        std::fprintf(stderr,
                     "error: lint found %s; fix the inputs or rerun with "
                     "--no-lint\n",
                     lint::summary_line(rep.diagnostics).c_str());
        return 2;
      }
    }

    can::DbcDatabase db;
    if (!dbc_path.empty()) db = can::parse_dbc(dbc_text);

    std::vector<capl::CaplProgram> programs;
    programs.reserve(nodes.size());
    for (const std::string& text : capl_texts) {
      programs.push_back(capl::parse_capl(text));
    }

    translate::ExtractionResult result;
    if (nodes.size() == 1) {
      translate::ExtractorOptions opt;
      opt.node_name = nodes[0].name;
      opt.tx_channel = nodes[0].tx;
      opt.rx_channel = nodes[0].rx;
      if (!dbc_path.empty()) opt.db = &db;
      result = translate::extract_model(programs[0], opt);
      for (const std::string& l : extra_lines) result.cspm += l + "\n";
    } else {
      std::vector<translate::SystemNode> sys;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        translate::SystemNode sn;
        sn.program = &programs[i];
        sn.options.node_name = nodes[i].name;
        sn.options.tx_channel = nodes[i].tx;
        sn.options.rx_channel = nodes[i].rx;
        if (!dbc_path.empty()) sn.options.db = &db;
        sys.push_back(sn);
      }
      result = translate::extract_system(sys, extra_lines);
    }

    if (emit_fingerprint) {
      std::printf("-- ecucsp-fingerprint: %s\n", result.fingerprint.c_str());
    }
    if (emit_dbc_decls && !dbc_path.empty()) {
      std::fputs(translate::dbc_to_cspm(db).c_str(), stdout);
      std::fputs("\n", stdout);
    }
    std::fputs(result.cspm.c_str(), stdout);
    for (const std::string& w : result.warnings) {
      std::fprintf(stderr, "note: %s\n", w.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
