// ecucsp_serve: the long-running verification daemon.
//
//   $ ./ecucsp_serve --sock /tmp/ecucsp.sock --jobs 8
//         --cache-dir /var/cache/ecucsp --shards 16      (one command line)
//   $ ./ecucsp_serve --tcp 7777 --jobs 4 --threads 2 --compress diamond
//
// Accepts CheckRequests (length-prefixed binary frames or JSON lines — see
// src/serve/protocol.hpp) over a Unix or loopback TCP socket, coalesces
// identical concurrent requests into single engine sweeps, answers from
// the response memo / verification store when it can, and sheds load with
// Overloaded + Retry-After once jobs + queue capacity is full. SIGINT or
// SIGTERM starts a graceful drain bounded by --drain-timeout; exit code 0
// means every in-flight check finished (nothing was cancelled).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "refine/compact.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace ecucsp;

namespace {

serve::Server* g_server = nullptr;

/// Async-signal-safe: request_stop is an atomic store plus one pipe write.
void on_signal(int) {
  if (g_server) g_server->request_stop();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--sock PATH | --tcp PORT) [options]\n"
      "Long-running CSPm verification daemon with request coalescing.\n"
      "  --sock PATH        listen on a Unix-domain socket at PATH\n"
      "  --tcp PORT         listen on 127.0.0.1:PORT\n"
      "  --jobs N           scheduler workers (0 = all cores; default 0)\n"
      "  --threads N        in-check exploration threads per flight\n"
      "                     (jobs x threads clamped to the hardware)\n"
      "  --compress M       none | bisim | diamond | full (default none)\n"
      "  --cache-dir D      persistent verification store directory\n"
      "  --shards N         store shards (default 1; see ecucsp_check)\n"
      "  --max-queue N      flights allowed to queue behind the running\n"
      "                     ones before load is shed (default 8 x jobs)\n"
      "  --memo N           response-memo entries (default 4096; 0 = off)\n"
      "  --timeout MS       default per-check deadline for requests that\n"
      "                     carry none (default: none)\n"
      "  --max-states N     server-side ceiling on request state budgets\n"
      "  --drain-timeout MS grace for in-flight checks on SIGINT/SIGTERM\n"
      "                     before they are cancelled (default 10000)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions service_opts;
  serve::ServerOptions server_opts;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sock") == 0 && i + 1 < argc) {
      server_opts.unix_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc) {
      server_opts.tcp_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      service_opts.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      service_opts.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--compress") == 0 && i + 1 < argc) {
      const auto mode = parse_compression(argv[++i]);
      if (!mode) return usage(argv[0]);
      service_opts.compression = *mode;
    } else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      service_opts.cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      service_opts.cache_shards = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      service_opts.max_queue = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--memo") == 0 && i + 1 < argc) {
      service_opts.memo_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      service_opts.default_timeout_ms =
          static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-states") == 0 && i + 1 < argc) {
      service_opts.max_states_limit =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--drain-timeout") == 0 && i + 1 < argc) {
      server_opts.drain_timeout = std::chrono::milliseconds(std::atol(argv[++i]));
    } else {
      return usage(argv[0]);
    }
  }
  if (!server_opts.unix_path && !server_opts.tcp_port) return usage(argv[0]);

  // A client that disconnects mid-write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  try {
    serve::VerifyService service(service_opts);
    serve::Server server(service, server_opts);
    server.listen();
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::printf(
        "ecucsp_serve: listening on %s (%u worker(s), %u thread(s)/check, "
        "capacity %zu, %u shard(s))\n",
        server.bound_description().c_str(), service.jobs(), service.threads(),
        service.capacity(), service.cache().shard_count());
    std::fflush(stdout);

    const bool clean = server.run();
    g_server = nullptr;
    std::printf("ecucsp_serve: drained %s\n",
                clean ? "cleanly" : "with cancellations");
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
