// The paper's full case study (Section V): X.1373 OTA software update.
//
// Checks requirements R01-R05 (Table III) on the composed VMG||ECU model,
// then demonstrates the attack on an ECU that skips MAC verification and
// the counterexample trace FDR-style checking feeds back to designers.
//
//   $ ./ota_update
#include <cstdio>

#include "ota/ota.hpp"
#include "security/properties.hpp"

using namespace ecucsp;

int main() {
  auto model = ota::build_ota_model();
  Context& ctx = model->ctx;

  std::printf("X.1373 OTA software update case study (paper Section V)\n");
  std::printf("scope: VMG <-> Target ECU over CAN (Figure 2)\n\n");

  std::printf("%-4s| %-66s| verdict\n", "req", "requirement (Table III)");
  std::printf("----+-------------------------------------------------------"
              "------------+--------\n");
  for (const ota::Requirement& r : ota::requirements()) {
    const CheckResult result = ota::check_requirement(*model, r.id);
    std::printf("%-4s| %-66.66s| %s\n", r.id.c_str(), r.text.c_str(),
                result.passed ? "holds" : "VIOLATED");
  }

  std::printf("\n== the value of R05 (shared-key MACs) ==\n");
  std::printf("Attacker model: may inject any forged message at any time "
              "(Dolev-Yao, no key).\n\n");

  const CheckResult secure = security::check_precedence_witness(
      ctx, model->system_attacked, model->send_reqApp, model->install);
  std::printf("MAC-verifying ECU under attack   : %s\n",
              secure.passed ? "install only after genuine reqApp (secure)"
                            : "VULNERABLE");

  const CheckResult broken = security::check_precedence_witness(
      ctx, model->system_unprotected, model->send_reqApp, model->install);
  std::printf("non-verifying  ECU under attack  : %s\n",
              broken.passed ? "secure (unexpected!)" : "VULNERABLE");
  if (!broken.passed) {
    std::printf("\n  counterexample fed back to the designers (Figure 1):\n");
    std::printf("  %s\n", broken.counterexample->describe(ctx).c_str());
    std::printf("\n  reading: the attacker forges an apply-update request; "
                "without MAC\n  verification the ECU installs an update no "
                "VMG ever authorised.\n");
  }

  std::printf("\nstate spaces: plain=%zu, attacked(MAC)=%zu, "
              "attacked(open)=%zu states\n",
              check_deadlock_free(ctx, model->system_plain).stats.impl_states,
              secure.stats.impl_states, broken.stats.impl_states);
  return 0;
}
