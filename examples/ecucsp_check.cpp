// ecucsp_check: a command-line refinement checker for CSPm scripts — the
// library's stand-in for invoking FDR on a .csp file.
//
//   $ ./ecucsp_check model.csp [more.csp ...]
//
// Loads each script into one shared Context (so an extracted implementation
// model and a hand-written specification file can be checked together) and
// runs every 'assert'. Exit code 0 iff all assertions pass.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cspm/eval.hpp"

using namespace ecucsp;

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <script.csp> [script2.csp ...]\n"
                 "Runs every 'assert' in the given CSPm scripts.\n",
                 argv[0]);
    return 2;
  }
  Context ctx;
  cspm::Evaluator ev(ctx);
  try {
    for (int i = 1; i < argc; ++i) {
      ev.load_source(slurp(argv[i]));
      std::printf("loaded %s\n", argv[i]);
    }
    const auto results = ev.check_assertions();
    if (results.empty()) {
      std::printf("no assertions found\n");
      return 0;
    }
    int failures = 0;
    for (const cspm::AssertionResult& r : results) {
      std::printf("assert %-58.58s ", r.description.c_str());
      if (r.result.passed) {
        std::printf("passed  (%zu states)\n", r.result.stats.impl_states);
      } else {
        ++failures;
        std::printf("FAILED\n  %s\n",
                    r.result.counterexample->describe(ctx).c_str());
      }
    }
    std::printf("%zu assertion(s), %d failure(s)\n", results.size(), failures);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
