// ecucsp_check: a command-line refinement checker — the library's stand-in
// for invoking FDR on a .csp file, now with FDR-cluster-style batching and
// a persistent verification cache.
//
//   $ ./ecucsp_check model.csp [more.csp ...]         # sequential, one Context
//   $ ./ecucsp_check --jobs 8 model.csp [more.csp...] # one worker per assert
//   $ ./ecucsp_check --jobs 8 --matrix                # built-in OTA R01-R05
//                                                     #   x attacker matrix
//   $ ./ecucsp_check --matrix --cache-dir .ecucsp-cache --cache-stats
//
// Sequential mode loads every script into one shared Context (so an
// extracted implementation model and a hand-written specification file can
// be checked together) and runs every 'assert' in order. With --jobs N the
// assertions become independent CheckTasks: each worker re-loads the
// scripts into its own fresh Context and runs exactly one assertion, which
// is safe because Contexts are never shared across tasks (core/context.hpp)
// and scripts are pure declarations. --matrix instead runs the paper's
// Table III requirement suite against all three attacker models in
// parallel. Exit code 0 iff all checks come out as expected.
//
// Caching: --cache-dir DIR (or the ECUCSP_CACHE_DIR environment variable)
// installs a persistent content-addressed store consulted by every check;
// a rerun of unchanged models serves each verdict from disk without any
// state-space exploration. An in-memory tier is always installed so
// repeated sub-terms within one run compile once even without a directory;
// --no-cache disables both.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cspm/eval.hpp"
#include "lint/lint.hpp"
#include "refine/parallel.hpp"
#include "store/cache.hpp"
#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

using namespace ecucsp;

namespace {

std::string slurp(const char* path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    throw std::runtime_error(std::string("cannot read '") + path +
                             "': not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot open '") + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad() || out.fail()) {
    throw std::runtime_error(std::string("read error on '") + path + "'");
  }
  return out.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <script.csp> [script2.csp ...]\n"
      "       %s [options] --matrix\n"
      "Runs every 'assert' in the given CSPm scripts, or the built-in OTA\n"
      "requirement x attacker matrix.\n"
      "  --jobs N        run checks in parallel on N workers (0 = all cores;\n"
      "                  default: sequential single-Context mode)\n"
      "  --threads N     explore each check's state space on N threads\n"
      "                  (0 = all cores; default 1). With --jobs the product\n"
      "                  jobs x threads is clamped to the hardware. Results\n"
      "                  are byte-identical at any value.\n"
      "  --compress M    (or --compress=M) reduce component state spaces\n"
      "                  before each product sweep: none | bisim | diamond |\n"
      "                  full (default none).\n"
      "                  Verdicts, counterexamples and vacuity flags are\n"
      "                  byte-identical at every level; only wall clock and\n"
      "                  exploration stats change.\n"
      "  --timeout MS    per-check wall-clock budget in milliseconds\n"
      "  --max-states N  per-check state budget (default 2^22)\n"
      "  --dilate K      (--matrix) interleave K hidden cyclers per cell,\n"
      "                  growing each state space ~3^K without changing\n"
      "                  verdicts\n"
      "  --cache-dir D   persist verdicts and compiled LTSes under D\n"
      "                  (default: $ECUCSP_CACHE_DIR if set)\n"
      "  --shards N      split the cache into N digest-addressed shards\n"
      "                  (default 1 = the flat layout; must match the shard\n"
      "                  count the directory was written with, e.g. by\n"
      "                  ecucsp_serve --shards N)\n"
      "  --no-cache      disable the verification cache entirely\n"
      "  --cache-stats   print cache counters after the run\n"
      "  --no-lint       skip the fail-fast static-analysis pre-flight over\n"
      "                  the input scripts\n"
      "  --inject-alphabet-mismatch\n"
      "                  (--matrix) fault injection: rename the system under\n"
      "                  test onto a primed alphabet so passing cells become\n"
      "                  vacuous — exercises the vacuity detector\n"
      "  --prune=M       static pruning of vacuous-PASS cells: none | static\n"
      "                  (default none). 'static' certifies cells whose\n"
      "                  implementation can never reach a constrained event\n"
      "                  and skips their exploration; verdicts and vacuity\n"
      "                  flags are byte-identical to an unpruned run, and\n"
      "                  pruned cells are marked (pruned)\n",
      argv0, argv0);
  return 2;
}

int report(const verify::BatchResult& batch) {
  int unexpected = 0;
  std::size_t cached = 0;
  for (const verify::TaskOutcome& o : batch.outcomes) {
    if (o.cached) ++cached;
    std::printf("check %-58.58s %s  (%zu states, %.1f ms)%s%s%s%s\n",
                o.name.c_str(),
                std::string(verify::to_string(o.status)).c_str(),
                o.stats.impl_states, o.wall.count() / 1e6,
                o.cached ? "  (cached)" : "",
                o.pruned ? "  (pruned)" : "",
                o.vacuous ? "  VACUOUS" : "",
                o.as_expected() ? "" : "  UNEXPECTED");
    if (o.vacuous) {
      std::printf(
          "  warning: vacuous pass — the implementation never reaches any "
          "event this spec constrains\n");
    }
    if (!o.counterexample.empty()) std::printf("  %s\n", o.counterexample.c_str());
    if (!o.error.empty()) std::printf("  %s\n", o.error.c_str());
    if (!o.as_expected()) ++unexpected;
  }
  std::printf(
      "%zu check(s): %zu passed, %zu failed, %zu timed out, %zu error(s), "
      "%zu cached; wall %.1f ms, cpu %.1f ms, speedup %.2fx\n",
      batch.outcomes.size(), batch.count(verify::TaskStatus::Passed),
      batch.count(verify::TaskStatus::Failed),
      batch.count(verify::TaskStatus::TimedOut),
      batch.count(verify::TaskStatus::Error) +
          batch.count(verify::TaskStatus::StateLimit),
      cached, batch.wall.count() / 1e6, batch.cpu.count() / 1e6,
      batch.speedup());
  return unexpected == 0 ? 0 : 1;
}

void print_cache_stats(const store::VerificationCache& cache) {
  const store::CacheStats& s = cache.stats();
  std::printf(
      "cache: %llu verdict hit(s), %llu verdict miss(es), %llu LTS hit(s), "
      "%llu LTS miss(es), %llu store(s), %llu decode failure(s)\n",
      static_cast<unsigned long long>(s.verdict_hits.load()),
      static_cast<unsigned long long>(s.verdict_misses.load()),
      static_cast<unsigned long long>(s.lts_hits.load()),
      static_cast<unsigned long long>(s.lts_misses.load()),
      static_cast<unsigned long long>(s.stores.load()),
      static_cast<unsigned long long>(s.decode_failures.load()));
  std::printf("cache: %llu from memory, %llu from disk\n",
              static_cast<unsigned long long>(s.memory_hits.load()),
              static_cast<unsigned long long>(s.disk_hits.load()));
  for (unsigned i = 0; i < cache.shard_count(); ++i) {
    const store::ObjectStore* disk = cache.disk(i);
    if (!disk) break;  // memory-only: no shard has a disk tier
    const store::ObjectStoreStats& d = disk->stats();
    std::printf(
        "cache: disk dir %s: %llu read(s) (%llu bytes), %llu write(s) "
        "(%llu bytes), %llu corrupt object(s) dropped\n",
        disk->dir().string().c_str(),
        static_cast<unsigned long long>(d.hits.load()),
        static_cast<unsigned long long>(d.bytes_read.load()),
        static_cast<unsigned long long>(d.puts.load()),
        static_cast<unsigned long long>(d.bytes_written.load()),
        static_cast<unsigned long long>(d.corrupt_dropped.load()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool parallel = false;
  bool matrix = false;
  bool no_cache = false;
  bool cache_stats = false;
  bool no_lint = false;
  bool inject_mismatch = false;
  bool prune = false;
  unsigned jobs = 1;
  std::optional<unsigned> threads;
  Compression compress = Compression::None;
  std::optional<std::chrono::milliseconds> timeout;
  std::size_t max_states = 1u << 22;
  std::size_t dilation = 0;
  std::optional<std::filesystem::path> cache_dir;
  unsigned cache_shards = 1;
  std::vector<const char*> paths;

  // Read once at startup before any thread exists, so the mt-unsafety of
  // getenv cannot bite.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("ECUCSP_CACHE_DIR"); env && *env) {
    cache_dir = env;
  }

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      parallel = true;
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--compress") == 0 && i + 1 < argc) {
      const auto mode = parse_compression(argv[++i]);
      if (!mode) return usage(argv[0]);
      compress = *mode;
    } else if (std::strncmp(argv[i], "--compress=", 11) == 0) {
      const auto mode = parse_compression(argv[i] + 11);
      if (!mode) return usage(argv[0]);
      compress = *mode;
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout = std::chrono::milliseconds(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-states") == 0 && i + 1 < argc) {
      max_states = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--dilate") == 0 && i + 1 < argc) {
      dilation = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cache_shards = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      no_cache = true;
    } else if (std::strcmp(argv[i], "--cache-stats") == 0) {
      cache_stats = true;
    } else if (std::strcmp(argv[i], "--matrix") == 0) {
      matrix = true;
    } else if (std::strcmp(argv[i], "--no-lint") == 0) {
      no_lint = true;
    } else if (std::strcmp(argv[i], "--inject-alphabet-mismatch") == 0) {
      inject_mismatch = true;
    } else if (std::strncmp(argv[i], "--prune=", 8) == 0) {
      const char* mode = argv[i] + 8;
      if (std::strcmp(mode, "static") == 0) {
        prune = true;
      } else if (std::strcmp(mode, "none") == 0) {
        prune = false;
      } else {
        return usage(argv[0]);
      }
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (!matrix && paths.empty()) return usage(argv[0]);

  // The cache outlives the scheduler (workers may still be storing results
  // while the batch drains), and Scoped installation guarantees the global
  // hook never dangles past main.
  std::optional<store::VerificationCache> cache;
  std::optional<ScopedCheckCache> installed;
  if (!no_cache) {
    cache.emplace(cache_dir, cache_shards);
    installed.emplace(&*cache);
  }

  try {
    // Fail-fast pre-flight: undefined names, misused channels and vacuous
    // assertion shapes are reported before any LTS is compiled.
    if (!no_lint && !paths.empty()) {
      lint::LintRequest lreq;
      for (const char* p : paths) lreq.cspm.push_back({p, slurp(p)});
      const lint::LintReport rep = lint::run_lint(lreq);
      if (!rep.diagnostics.empty()) {
        std::fputs(lint::render_text(rep.diagnostics, rep.sources).c_str(),
                   stderr);
      }
      if (rep.has_errors()) {
        std::fprintf(stderr,
                     "error: lint found %s; fix the scripts or rerun with "
                     "--no-lint\n",
                     lint::summary_line(rep.diagnostics).c_str());
        return 2;
      }
    }

    int exit_code = 0;
    if (matrix) {
      verify::OtaMatrixOptions opts;
      opts.timeout = timeout;
      opts.max_states = max_states;
      opts.dilation = dilation;
      opts.inject_alphabet_mismatch = inject_mismatch;
      opts.prune = prune;
      std::vector<verify::CheckTask> tasks =
          verify::ota_requirement_matrix(opts);
      for (verify::CheckTask& t : verify::ota_extended_batch(opts)) {
        tasks.push_back(std::move(t));
      }
      verify::VerifyScheduler sched({.jobs = parallel ? jobs : 1,
                                     .threads = threads.value_or(1),
                                     .compression = compress});
      std::printf(
          "OTA requirement x attacker matrix on %u worker(s), "
          "%u thread(s)/check\n",
          sched.jobs(), sched.threads());
      exit_code = report(sched.run(tasks));
    } else if (parallel) {
      // One task per assertion; every worker re-loads the scripts into its
      // own Context. Count the assertions with a throwaway evaluator first.
      std::vector<std::string> sources;
      for (const char* p : paths) sources.push_back(slurp(p));
      std::size_t n_asserts = 0;
      {
        Context ctx;
        cspm::Evaluator ev(ctx);
        for (const std::string& s : sources) ev.load_source(s);
        n_asserts = ev.assertion_count();
      }
      if (n_asserts == 0) {
        std::printf("no assertions found\n");
        return 0;
      }
      std::vector<verify::CheckTask> tasks(n_asserts);
      for (std::size_t i = 0; i < n_asserts; ++i) {
        tasks[i].name = "assert #" + std::to_string(i + 1);
        tasks[i].sources = sources;
        tasks[i].assertion_index = i;
        tasks[i].timeout = timeout;
        tasks[i].max_states = max_states;
        tasks[i].prune = prune;
        // A user assertion is expected to hold, so a failure (or timeout)
        // drives the exit code just as it does in sequential mode.
        tasks[i].expected = true;
      }
      verify::VerifyScheduler sched({.jobs = jobs,
                                     .threads = threads.value_or(1),
                                     .compression = compress});
      std::printf("%zu assertion(s) on %u worker(s), %u thread(s)/check\n",
                  n_asserts, sched.jobs(), sched.threads());
      exit_code = report(sched.run(tasks));
    } else {
      // Sequential legacy mode: one shared Context, assertions in order.
      // --threads still applies inside each check: assertions run one at a
      // time, but each product sweep fans out (0 = all cores).
      const ScopedCheckThreads nested(
          threads
              ? (*threads != 0
                     ? *threads
                     : std::max(1u, std::thread::hardware_concurrency()))
              : 1u);
      const ScopedCheckCompression reduced(compress);
      Context ctx;
      cspm::Evaluator ev(ctx);
      for (const char* p : paths) {
        ev.load_source(slurp(p));
        std::printf("loaded %s\n", p);
      }
      const auto results = ev.check_assertions(max_states);
      if (results.empty()) {
        std::printf("no assertions found\n");
        return 0;
      }
      int failures = 0;
      for (const cspm::AssertionResult& r : results) {
        std::printf("assert %-58.58s ", r.description.c_str());
        if (r.result.passed) {
          std::printf("passed  (%zu states)%s%s\n", r.result.stats.impl_states,
                      r.result.from_cache ? "  (cached)" : "",
                      r.result.vacuous ? "  VACUOUS" : "");
          if (r.result.vacuous) {
            std::printf(
                "  warning: vacuous pass — the implementation never reaches "
                "any event this spec constrains\n");
          }
        } else {
          ++failures;
          std::printf("FAILED%s\n  %s\n",
                      r.result.from_cache ? "  (cached)" : "",
                      r.result.counterexample->describe(ctx).c_str());
        }
      }
      std::printf("%zu assertion(s), %d failure(s)\n", results.size(),
                  failures);
      exit_code = failures == 0 ? 0 : 1;
    }
    if (cache_stats && cache) print_cache_stats(*cache);
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
