// ecucsp_check: a command-line refinement checker — the library's stand-in
// for invoking FDR on a .csp file, now with FDR-cluster-style batching.
//
//   $ ./ecucsp_check model.csp [more.csp ...]         # sequential, one Context
//   $ ./ecucsp_check --jobs 8 model.csp [more.csp...] # one worker per assert
//   $ ./ecucsp_check --jobs 8 --matrix                # built-in OTA R01-R05
//                                                     #   x attacker matrix
//
// Sequential mode loads every script into one shared Context (so an
// extracted implementation model and a hand-written specification file can
// be checked together) and runs every 'assert' in order. With --jobs N the
// assertions become independent CheckTasks: each worker re-loads the
// scripts into its own fresh Context and runs exactly one assertion, which
// is safe because Contexts are never shared across tasks (core/context.hpp)
// and scripts are pure declarations. --matrix instead runs the paper's
// Table III requirement suite against all three attacker models in
// parallel. Exit code 0 iff all checks come out as expected.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cspm/eval.hpp"
#include "verify/ota_batch.hpp"
#include "verify/scheduler.hpp"

using namespace ecucsp;

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <script.csp> [script2.csp ...]\n"
      "       %s [options] --matrix\n"
      "Runs every 'assert' in the given CSPm scripts, or the built-in OTA\n"
      "requirement x attacker matrix.\n"
      "  --jobs N       run checks in parallel on N workers (0 = all cores;\n"
      "                 default: sequential single-Context mode)\n"
      "  --timeout MS   per-check wall-clock budget in milliseconds\n"
      "  --max-states N per-check state budget (default 2^22)\n",
      argv0, argv0);
  return 2;
}

int report(const verify::BatchResult& batch) {
  int unexpected = 0;
  for (const verify::TaskOutcome& o : batch.outcomes) {
    std::printf("check %-58.58s %s  (%zu states, %.1f ms)%s\n", o.name.c_str(),
                std::string(verify::to_string(o.status)).c_str(),
                o.stats.impl_states, o.wall.count() / 1e6,
                o.as_expected() ? "" : "  UNEXPECTED");
    if (!o.counterexample.empty()) std::printf("  %s\n", o.counterexample.c_str());
    if (!o.error.empty()) std::printf("  %s\n", o.error.c_str());
    if (!o.as_expected()) ++unexpected;
  }
  std::printf(
      "%zu check(s): %zu passed, %zu failed, %zu timed out, %zu error(s); "
      "wall %.1f ms, cpu %.1f ms, speedup %.2fx\n",
      batch.outcomes.size(), batch.count(verify::TaskStatus::Passed),
      batch.count(verify::TaskStatus::Failed),
      batch.count(verify::TaskStatus::TimedOut),
      batch.count(verify::TaskStatus::Error) +
          batch.count(verify::TaskStatus::StateLimit),
      batch.wall.count() / 1e6, batch.cpu.count() / 1e6, batch.speedup());
  return unexpected == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool parallel = false;
  bool matrix = false;
  unsigned jobs = 1;
  std::optional<std::chrono::milliseconds> timeout;
  std::size_t max_states = 1u << 22;
  std::vector<const char*> paths;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      parallel = true;
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout = std::chrono::milliseconds(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-states") == 0 && i + 1 < argc) {
      max_states = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--matrix") == 0) {
      matrix = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (!matrix && paths.empty()) return usage(argv[0]);

  try {
    if (matrix) {
      verify::OtaMatrixOptions opts;
      opts.timeout = timeout;
      opts.max_states = max_states;
      std::vector<verify::CheckTask> tasks =
          verify::ota_requirement_matrix(opts);
      for (verify::CheckTask& t : verify::ota_extended_batch(opts)) {
        tasks.push_back(std::move(t));
      }
      verify::VerifyScheduler sched({.jobs = parallel ? jobs : 1});
      std::printf("OTA requirement x attacker matrix on %u worker(s)\n",
                  sched.jobs());
      return report(sched.run(tasks));
    }

    if (parallel) {
      // One task per assertion; every worker re-loads the scripts into its
      // own Context. Count the assertions with a throwaway evaluator first.
      std::vector<std::string> sources;
      for (const char* p : paths) sources.push_back(slurp(p));
      std::size_t n_asserts = 0;
      {
        Context ctx;
        cspm::Evaluator ev(ctx);
        for (const std::string& s : sources) ev.load_source(s);
        n_asserts = ev.assertion_count();
      }
      if (n_asserts == 0) {
        std::printf("no assertions found\n");
        return 0;
      }
      std::vector<verify::CheckTask> tasks(n_asserts);
      for (std::size_t i = 0; i < n_asserts; ++i) {
        tasks[i].name = "assert #" + std::to_string(i + 1);
        tasks[i].sources = sources;
        tasks[i].assertion_index = i;
        tasks[i].timeout = timeout;
        tasks[i].max_states = max_states;
        // A user assertion is expected to hold, so a failure (or timeout)
        // drives the exit code just as it does in sequential mode.
        tasks[i].expected = true;
      }
      verify::VerifyScheduler sched({.jobs = jobs});
      std::printf("%zu assertion(s) on %u worker(s)\n", n_asserts,
                  sched.jobs());
      return report(sched.run(tasks));
    }

    // Sequential legacy mode: one shared Context, assertions in order.
    Context ctx;
    cspm::Evaluator ev(ctx);
    for (const char* p : paths) {
      ev.load_source(slurp(p));
      std::printf("loaded %s\n", p);
    }
    const auto results = ev.check_assertions(max_states);
    if (results.empty()) {
      std::printf("no assertions found\n");
      return 0;
    }
    int failures = 0;
    for (const cspm::AssertionResult& r : results) {
      std::printf("assert %-58.58s ", r.description.c_str());
      if (r.result.passed) {
        std::printf("passed  (%zu states)\n", r.result.stats.impl_states);
      } else {
        ++failures;
        std::printf("FAILED\n  %s\n",
                    r.result.counterexample->describe(ctx).c_str());
      }
    }
    std::printf("%zu assertion(s), %d failure(s)\n", results.size(), failures);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
