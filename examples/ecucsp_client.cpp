// ecucsp_client: command-line client for the ecucsp_serve daemon.
//
//   $ ./ecucsp_client --sock /tmp/ecucsp.sock model.csp          # assert #1
//   $ ./ecucsp_client --sock S --asserts 3 model.csp             # #1..#3
//   $ ./ecucsp_client --sock S --fanout 32 model.csp             # 32 identical
//   $ ./ecucsp_client --sock S --each a.csp b.csp c.csp          # 3 distinct
//   $ ./ecucsp_client --sock S --stats                           # /stats JSON
//
// Verdict lines are printed in the same shape as `ecucsp_check --jobs`
// ("check assert #N <status>  (S states, T ms)"), so a served verdict can
// be byte-compared against the standalone checker once timings and
// transport annotations ((cached)/(coalesced)/(memo)) are stripped.
// Fan-out modes pipeline every request before reading any response —
// that is what drives the daemon's single-flight coalescing from outside.
//
// Exit codes: 0 all checks passed; 1 a check failed (or errored/timed
// out); 2 usage or connection error; 3 the daemon rejected a request
// (overloaded / shutting down / bad request).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"

using namespace ecucsp;

namespace {

std::string slurp(const char* path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    throw std::runtime_error(std::string("cannot read '") + path +
                             "': not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot open '") + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--sock PATH | --tcp PORT) [options] [script.csp ...]\n"
      "  --sock PATH     connect to a Unix-domain socket\n"
      "  --tcp PORT      connect to 127.0.0.1:PORT\n"
      "  --assert N      check assertion #N (1-based; default 1)\n"
      "  --asserts N     check assertions #1..#N as pipelined requests\n"
      "  --fanout K      send K identical copies of the request, all\n"
      "                  before reading any response (coalescing driver)\n"
      "  --each          one request per script file (distinct load)\n"
      "  --timeout MS    per-request deadline\n"
      "  --max-states N  per-request state budget\n"
      "  --json          speak the JSON-lines framing instead of binary\n"
      "  --stats         fetch and print the daemon's /stats JSON\n"
      "  --ping          liveness probe\n",
      argv0);
  return 2;
}

struct Printed {
  serve::ServeStatus status;
};

/// ecucsp_check-compatible verdict line plus transport annotations.
void print_response(const std::string& name, const serve::CheckResponse& r) {
  if (serve::is_rejection(r.status)) {
    std::printf("check %-58.58s %s  (retry after %u ms)\n  %s\n", name.c_str(),
                std::string(serve::to_string(r.status)).c_str(),
                r.retry_after_ms, r.error.c_str());
    return;
  }
  std::printf("check %-58.58s %s  (%zu states, %.1f ms)%s%s%s\n", name.c_str(),
              std::string(serve::to_string(r.status)).c_str(),
              static_cast<std::size_t>(r.states), r.wall_ns / 1e6,
              r.from_cache ? "  (cached)" : "",
              r.coalesced ? "  (coalesced)" : "", r.vacuous ? "  VACUOUS" : "");
  if (r.vacuous) {
    std::printf(
        "  warning: vacuous pass — the implementation never reaches any "
        "event this spec constrains\n");
  }
  if (!r.counterexample.empty()) std::printf("  %s\n", r.counterexample.c_str());
  if (!r.error.empty()) std::printf("  %s\n", r.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> sock;
  std::optional<std::uint16_t> tcp;
  std::uint32_t assert_index = 0;  // 0-based on the wire
  std::uint32_t asserts = 0;
  std::size_t fanout = 1;
  bool each = false;
  bool json = false;
  bool want_stats = false;
  bool want_ping = false;
  std::uint32_t timeout_ms = 0;
  std::uint64_t max_states = 1ull << 22;
  std::vector<const char*> paths;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sock") == 0 && i + 1 < argc) {
      sock = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc) {
      tcp = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--assert") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) return usage(argv[0]);
      assert_index = static_cast<std::uint32_t>(n - 1);
    } else if (std::strcmp(argv[i], "--asserts") == 0 && i + 1 < argc) {
      asserts = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--fanout") == 0 && i + 1 < argc) {
      fanout = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (fanout == 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--each") == 0) {
      each = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      want_ping = true;
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout_ms = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-states") == 0 && i + 1 < argc) {
      max_states = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (!sock && !tcp) return usage(argv[0]);
  if (paths.empty() && !want_stats && !want_ping) return usage(argv[0]);

  try {
    serve::Client client = sock ? serve::Client::connect_unix(*sock)
                                : serve::Client::connect_tcp("127.0.0.1", *tcp);

    if (want_ping && !client.ping(json)) {
      std::fprintf(stderr, "error: daemon did not answer ping\n");
      return 2;
    }

    int exit_code = 0;
    if (!paths.empty()) {
      // Build the request list: one per assertion of the combined scripts,
      // one per script (--each), and/or K identical copies (--fanout).
      struct Pending {
        std::string name;
        serve::CheckRequest req;
      };
      std::vector<Pending> pending;
      std::uint64_t next_id = 1;
      auto add = [&](std::vector<std::string> sources, std::uint32_t index,
                     const std::string& name) {
        for (std::size_t k = 0; k < fanout; ++k) {
          Pending p;
          p.name = name;
          p.req.id = next_id++;
          p.req.assertion_index = index;
          p.req.max_states = max_states;
          p.req.timeout_ms = timeout_ms;
          p.req.sources = sources;
          pending.push_back(std::move(p));
        }
      };
      if (each) {
        for (const char* path : paths) {
          add({slurp(path)}, assert_index,
              "assert #" + std::to_string(assert_index + 1) + " " +
                  std::filesystem::path(path).filename().string());
        }
      } else {
        std::vector<std::string> sources;
        for (const char* path : paths) sources.push_back(slurp(path));
        const std::uint32_t first = asserts != 0 ? 0 : assert_index;
        const std::uint32_t last = asserts != 0 ? asserts - 1 : assert_index;
        for (std::uint32_t a = first; a <= last; ++a) {
          add(sources, a, "assert #" + std::to_string(a + 1));
        }
      }

      // Pipeline: every request hits the daemon before any response is
      // read, so identical ones overlap and coalesce server-side.
      for (const Pending& p : pending) {
        client.send(serve::encode(p.req, json));
      }
      std::map<std::uint64_t, serve::CheckResponse> responses;
      while (responses.size() < pending.size()) {
        serve::Msg msg = client.recv();
        if (msg.type != serve::MsgType::CheckResponse) continue;
        responses.emplace(msg.response.id, std::move(msg.response));
      }
      // Print in request order regardless of completion order.
      std::size_t rejected = 0, not_passed = 0;
      for (const Pending& p : pending) {
        const serve::CheckResponse& r = responses.at(p.req.id);
        print_response(p.name, r);
        if (serve::is_rejection(r.status)) {
          ++rejected;
        } else if (r.status != serve::ServeStatus::Passed &&
                   r.status != serve::ServeStatus::Failed) {
          ++not_passed;
        } else if (r.status == serve::ServeStatus::Failed) {
          ++not_passed;
        }
      }
      std::fprintf(stderr, "%zu request(s): %zu answered, %zu rejected\n",
                   pending.size(), pending.size() - rejected, rejected);
      if (rejected > 0) {
        exit_code = 3;
      } else if (not_passed > 0) {
        exit_code = 1;
      }
    }

    if (want_stats) std::printf("%s\n", client.stats(json).c_str());
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
