// The paper's Figure 1 workflow, end to end:
//
//   CAPL source + CANdb --> model extractor --> CSPm script
//     --> CSPm evaluator --> refinement checker --> verdict/counterexample
//
// Uses the reference VMG/ECU CAPL programs that also run on the simulated
// bus (see can_simulation.cpp) — the same artifact checked both ways.
//
//   $ ./pipeline_end_to_end
#include <cstdio>

#include "capl/parser.hpp"
#include "cspm/eval.hpp"
#include "ota/ota.hpp"
#include "translate/dbc_to_cspm.hpp"
#include "translate/extractor.hpp"

using namespace ecucsp;

int main() {
  // --- stage 1: the development artifacts (CANoe substitute) ---------------
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const capl::CaplProgram vmg = capl::parse_capl(std::string(ota::vmg_capl_source()));
  const capl::CaplProgram ecu = capl::parse_capl(std::string(ota::ecu_capl_source()));
  std::printf("[1] parsed CAPL: VMG (%zu handlers), ECU (%zu handlers); "
              "CANdb: %zu messages\n",
              vmg.handlers.size(), ecu.handlers.size(), db.messages.size());

  // --- stage 2: model extraction (lexer -> parser -> AST -> templates) -----
  translate::ExtractorOptions vmg_opt;
  vmg_opt.node_name = "VMG";
  vmg_opt.db = &db;
  translate::ExtractorOptions ecu_opt;
  ecu_opt.node_name = "ECU";
  ecu_opt.tx_channel = "rec";  // ECU transmits on the ECU->VMG channel
  ecu_opt.rx_channel = "send";
  ecu_opt.db = &db;

  const translate::ExtractionResult sys = translate::extract_system(
      {{&vmg, vmg_opt}, {&ecu, ecu_opt}},
      {"-- security property SP02 (paper Section V-B)",
       "SP02 = send.SwInventoryReq -> rec.SwReport -> SP02",
       "kept = {send.SwInventoryReq, rec.SwReport}",
       "hidden = diff({| send, rec, setTimer, cancelTimer, timeout |}, kept)",
       "assert SP02 [T= SYSTEM \\ hidden",
       "assert SYSTEM :[divergence free]"});

  std::printf("[2] extracted composed CSPm model (%zu message constructors, "
              "%zu warnings)\n",
              sys.messages.size(), sys.warnings.size());
  for (const std::string& w : sys.warnings) {
    std::printf("    abstraction: %s\n", w.c_str());
  }
  std::printf("\n----- generated CSPm script (cf. paper Figure 3) -----\n%s"
              "------------------------------------------------------\n\n",
              sys.cspm.c_str());

  // --- stage 3: CANdb -> CSPm declarations (paper Section VIII-A) ----------
  std::printf("[3] CANdb-derived CSPm declarations:\n%s\n",
              translate::dbc_to_cspm(db).c_str());

  // --- stage 4: evaluate and check (the FDR substitute) --------------------
  Context ctx;
  cspm::Evaluator ev(ctx);
  ev.load_source(sys.cspm);
  std::printf("[4] running the script's assertions:\n");
  bool all_passed = true;
  for (const cspm::AssertionResult& r : ev.check_assertions()) {
    std::printf("    assert %-60.60s : %s\n", r.description.c_str(),
                r.result.passed ? "passed" : "FAILED");
    if (!r.result.passed) {
      all_passed = false;
      std::printf("      counterexample: %s\n",
                  r.result.counterexample->describe(ctx).c_str());
    }
  }
  std::printf("\n[5] verdict: %s\n",
              all_passed ? "implementation refines its security specification"
                         : "security flaw found - see counterexample above");
  return all_passed ? 0 : 1;
}
