// ecucsp_learn: active automata learning of the simulated (black-box) ECU.
//
//   $ ./ecucsp_learn                       # learn the faithful ECU, text
//   $ ./ecucsp_learn --json                # machine-readable learn_format:1
//   $ ./ecucsp_learn --mutate 1            # learn a seeded mutant; the
//                                          # requirement battery must FAIL
//
// The tool treats the simulated ECU purely as a membership oracle: words
// over the abstract OTA alphabet are concretised to CAN frames, injected
// through the conformance harness, and the abstracted bus observation
// answers "is this word a trace?". A discrimination-tree learner builds a
// hypothesis automaton, conformance suites over the hypothesis approximate
// equivalence queries, and once the loop converges the Table III security
// requirements R01-R05 are refinement-checked against the *learned* model —
// security checking without any CAPL source on the checking side.
//
// Exit code 0 when learning converged and every requirement check passed,
// 1 when any check failed (or learning did not converge), 2 for usage
// errors. Reports are byte-identical for a fixed --seed at any
// --jobs x --threads (timing opt-in via --timing).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "learn/run.hpp"

using namespace ecucsp;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Learns a model of the simulated ECU via membership queries through\n"
      "the conformance harness, then checks R01-R05 against the learned\n"
      "model.\n"
      "  --seed N        learning + harness base seed (default 1)\n"
      "  --jobs N        parallel membership-query workers (0 = all cores)\n"
      "  --threads N     in-check exploration threads per refinement check\n"
      "                  (jobs x threads is clamped to the hardware)\n"
      "  --rounds N      max equivalence rounds (default 16)\n"
      "  --eq-tests N    per-round equivalence tests per family (default 64)\n"
      "  --max-len N     equivalence word length cap (default 12)\n"
      "  --timeout MS    per-refinement-check wall-clock budget\n"
      "  --max-states N  refinement state budget (default 2^20)\n"
      "  --json          machine-readable learn_format:1 report on stdout\n"
      "  --timing        include wall-clock fields in the JSON report\n"
      "  --mutate SEED   learn a seeded ECU mutant instead of the faithful\n"
      "                  ECU -- the requirement battery must catch it\n"
      "  --cache-dir D   persist learned models + verdicts; also replays\n"
      "                  counterexamples stored by ecucsp_check as\n"
      "                  equivalence probes\n",
      argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  learn::LearnRunOptions opt;
  bool json = false;
  bool timing = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    // Every value option accepts both `--opt V` and `--opt=V`.
    std::string head;
    const char* inline_value = nullptr;
    if (std::strncmp(arg, "--", 2) == 0) {
      if (const char* eq = std::strchr(arg, '=')) {
        head.assign(arg, eq);
        inline_value = eq + 1;
        arg = head.c_str();
      }
    }
    auto value = [&]() -> const char* {
      if (inline_value) return inline_value;
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (std::strcmp(arg, "--seed") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, opt.seed)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.jobs = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--threads") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.threads = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--rounds") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.rounds = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--eq-tests") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.eq_tests = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--max-len") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.max_len = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--timeout") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.timeout = std::chrono::milliseconds(n);
    } else if (std::strcmp(arg, "--max-states") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.max_states = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--timing") == 0) {
      timing = true;
    } else if (std::strcmp(arg, "--mutate") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.mutate = n;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opt.cache_dir = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      return usage(argv[0]);
    }
  }

  try {
    const learn::LearnReport rep = learn::run_ota_learn(opt);
    if (json) {
      std::printf("%s\n", learn::render_json(rep, timing).c_str());
    } else {
      std::fputs(learn::render_text(rep).c_str(), stdout);
    }
    return rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecucsp_learn: %s\n", e.what());
    return 2;
  }
}
