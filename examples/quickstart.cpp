// Quickstart: build CSP processes with the C++ API, run refinement checks,
// and read counterexamples — the library's core loop in ~80 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "core/context.hpp"
#include "refine/check.hpp"

using namespace ecucsp;

int main() {
  Context ctx;

  // Declare a channel carrying the X.1373 message names (paper, Table II).
  SymbolTable& sy = ctx.symbols();
  const Value reqSw = Value::symbol(sy.intern("reqSw"));
  const Value rptSw = Value::symbol(sy.intern("rptSw"));
  const ChannelId send = ctx.channel("send", {{reqSw, rptSw}});
  const ChannelId rec = ctx.channel("rec", {{reqSw, rptSw}});
  const EventId send_req = ctx.event(send, {reqSw});
  const EventId rec_rpt = ctx.event(rec, {rptSw});

  // The paper's security property SP02 (Section V-B): every software
  // inventory request is answered by a report.
  //   SP02 = send.reqSw -> rec.rptSw -> SP02
  ctx.define("SP02", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req, cx.prefix(rec_rpt, cx.var("SP02")));
  });

  // A well-behaved system: VMG and ECU in lock step.
  ctx.define("SYSTEM", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req, cx.prefix(rec_rpt, cx.var("SYSTEM")));
  });

  // A faulty system that may issue a second request before the reply.
  ctx.define("FAULTY", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(send_req,
                     cx.ext_choice(cx.prefix(rec_rpt, cx.var("FAULTY")),
                                   cx.prefix(send_req, cx.var("FAULTY"))));
  });

  std::printf("== trace refinement (the FDR assertion SPEC [T= IMPL) ==\n");
  for (const char* impl : {"SYSTEM", "FAULTY"}) {
    const CheckResult r = check_refinement(ctx, ctx.var("SP02"), ctx.var(impl),
                                           Model::Traces);
    std::printf("SP02 [T= %-6s : %s", impl, r.passed ? "passed" : "FAILED");
    if (!r.passed) {
      std::printf("\n    counterexample: %s",
                  r.counterexample->describe(ctx).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n== behavioural health checks ==\n");
  const ProcessRef system = ctx.var("SYSTEM");
  std::printf("SYSTEM :[deadlock free]    : %s\n",
              check_deadlock_free(ctx, system).passed ? "passed" : "FAILED");
  std::printf("SYSTEM :[divergence free]  : %s\n",
              check_divergence_free(ctx, system).passed ? "passed" : "FAILED");
  std::printf("SYSTEM :[deterministic]    : %s\n",
              check_deterministic(ctx, system).passed ? "passed" : "FAILED");

  // The three semantic models compared on one nondeterministic example.
  std::printf("\n== semantic models: traces vs failures ==\n");
  const ProcessRef ext = ctx.ext_choice(ctx.prefix(send_req, ctx.stop()),
                                        ctx.prefix(rec_rpt, ctx.stop()));
  const ProcessRef internal = ctx.int_choice(ctx.prefix(send_req, ctx.stop()),
                                             ctx.prefix(rec_rpt, ctx.stop()));
  std::printf("ext [T= int : %s   (same traces)\n",
              check_refinement(ctx, ext, internal, Model::Traces).passed
                  ? "passed"
                  : "FAILED");
  const CheckResult f = check_refinement(ctx, ext, internal, Model::Failures);
  std::printf("ext [F= int : %s   (internal choice may refuse)\n",
              f.passed ? "passed" : "FAILED");
  if (!f.passed) {
    std::printf("    %s\n", f.counterexample->describe(ctx).c_str());
  }
  return 0;
}
