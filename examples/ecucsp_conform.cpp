// ecucsp_conform: model-based conformance testing of the simulated ECU.
//
//   $ ./ecucsp_conform                         # full suite, text report
//   $ ./ecucsp_conform --suite cover --json    # coverage tours, JSON report
//   $ ./ecucsp_conform --mutate 3              # seeded ECU fault injection
//
// The tool compiles the CSP model extracted from the reference CAPL ECU
// into a trace oracle, generates abstract test suites from the same
// automaton (seeded random walks, transition-coverage tours, replays of
// counterexamples from live spec checks and the verification store), then
// executes every test against the *simulated* ECU by mapping CSP events to
// CAN frames. Each observed bus trace is judged by the model oracle, the
// composed-system oracle and the Table III requirement oracles; failures
// are mapped back to CAPL handler source spans.
//
// Exit code 0 when every test passes, 1 when any fails (or times out or
// errors), 2 for usage errors. Reports are deterministic for a fixed
// --seed at any --jobs (timing fields aside).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "conform/suite.hpp"

using namespace ecucsp;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Generates conformance tests from the OTA CSP models and runs them\n"
      "against the simulated ECU, judging every run with the spec oracle.\n"
      "  --suite S       random | cover | counterexamples | all (default all)\n"
      "  --seed N        generation + harness seed (default 1)\n"
      "  --tests N       random-suite size (default 16)\n"
      "  --max-len N     random walk length cap (default 12)\n"
      "  --jobs N        parallel test workers (0 = all cores)\n"
      "  --threads N     in-check exploration threads per oracle check\n"
      "                  (0 = hardware/jobs; default 1; jobs x threads is\n"
      "                  clamped to the hardware)\n"
      "  --compress M    (or --compress=M) reduce oracle state spaces\n"
      "                  before each sweep:\n"
      "                  none | bisim | diamond | full (default none);\n"
      "                  reports are identical at every level\n"
      "  --timeout MS    per-test wall-clock budget (default 10000)\n"
      "  --max-states N  oracle compilation state budget (default 2^20)\n"
      "  --json          machine-readable report on stdout\n"
      "  --mutate SEED   execute a seeded ECU mutant (the spec side stays\n"
      "                  faithful) -- the suite must catch it\n"
      "  --inject-alphabet-mismatch\n"
      "                  desynchronise the frame abstraction from the model\n"
      "                  alphabet; the strict model oracle must pin it\n"
      "  --cache-dir D   replay counterexamples stored by ecucsp_check\n",
      argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  conform::ConformOptions opt;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    // Every value option accepts both `--opt V` and `--opt=V`.
    std::string head;
    const char* inline_value = nullptr;
    if (std::strncmp(arg, "--", 2) == 0) {
      if (const char* eq = std::strchr(arg, '=')) {
        head.assign(arg, eq);
        inline_value = eq + 1;
        arg = head.c_str();
      }
    }
    auto value = [&]() -> const char* {
      if (inline_value) return inline_value;
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (std::strcmp(arg, "--suite") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opt.suite = v;
      if (opt.suite != "random" && opt.suite != "cover" &&
          opt.suite != "counterexamples" && opt.suite != "all") {
        std::fprintf(stderr, "unknown suite '%s'\n", v);
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, opt.seed)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--tests") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.tests = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--max-len") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.max_len = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.jobs = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--threads") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.threads = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--compress") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      const auto mode = ecucsp::parse_compression(v);
      if (!mode) {
        std::fprintf(stderr, "unknown compression mode '%s'\n", v);
        return usage(argv[0]);
      }
      opt.compress = *mode;
    } else if (std::strcmp(arg, "--timeout") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.timeout = std::chrono::milliseconds(n);
    } else if (std::strcmp(arg, "--max-states") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opt.max_states = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--mutate") == 0) {
      const char* v = value();
      if (!v || !parse_u64(v, n)) return usage(argv[0]);
      opt.mutate_seed = n;
    } else if (std::strcmp(arg, "--inject-alphabet-mismatch") == 0) {
      opt.inject_alphabet_mismatch = true;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opt.cache_dir = std::filesystem::path(v);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      return usage(argv[0]);
    }
  }

  try {
    const conform::ConformReport rep = conform::run_ota_conformance(opt);
    if (json) {
      std::printf("%s\n", conform::render_json(rep).c_str());
    } else {
      std::fputs(conform::render_text(rep).c_str(), stdout);
    }
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecucsp_conform: %s\n", e.what());
    return 2;
  }
}
