// Run the reference CAPL VMG/ECU programs on the simulated CAN bus — the
// "simulated CANbus network ... implemented in CANoe" of the paper's
// Section VI, here executed by the library's CAPL interpreter and
// discrete-event scheduler. Prints the bus trace and the nodes' write() log.
//
//   $ ./can_simulation
#include <cstdio>

#include "can/asc.hpp"
#include "capl/interp.hpp"
#include "capl/parser.hpp"
#include "ota/ota.hpp"
#include "security/mac.hpp"

using namespace ecucsp;

int main() {
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const capl::CaplProgram vmg_prog =
      capl::parse_capl(std::string(ota::vmg_capl_source()));
  const capl::CaplProgram ecu_prog =
      capl::parse_capl(std::string(ota::ecu_capl_source()));

  sim::Environment env(/*bus_window_us=*/100);
  capl::CaplNode vmg("VMG", vmg_prog, &db);
  capl::CaplNode ecu("TargetECU", ecu_prog, &db);
  env.attach(vmg);
  env.attach(ecu);

  std::printf("starting measurement (CANoe substitute)...\n\n");
  env.run(/*until_us=*/2'000'000);

  std::printf("%-10s %-10s %s\n", "time [us]", "msg", "frame");
  std::printf("---------- ---------- -------------------------------\n");
  for (const can::CanFrame& f : env.bus().trace()) {
    const can::DbcMessage* m = db.find_message(f.id);
    std::printf("%-10llu %-10s %s\n",
                static_cast<unsigned long long>(f.timestamp_us),
                m ? m->name.c_str() : "?", f.to_string().c_str());
  }

  std::printf("\nnode log (CAPL write()):\n");
  for (const sim::LogLine& l : env.log()) {
    std::printf("  [%8llu us] %-9s %s\n",
                static_cast<unsigned long long>(l.time_us), l.node.c_str(),
                l.text.c_str());
  }

  std::printf("\nECU installed %lld update module(s)\n",
              static_cast<long long>(ecu.global("installs")->i));

  // Write the measurement as a Vector ASC log, the CANoe artifact format.
  std::printf("\n--- measurement as .asc log ---\n%s",
              can::write_asc(env.bus().trace()).c_str());

  // Demonstrate the C++-level toy MAC used by richer simulations.
  const std::vector<std::uint8_t> payload{0x01, 0x02, 0x03};
  const security::MacTag tag = security::compute_mac(0xA5, payload);
  std::printf("\ntoy MAC demo: tag(key=0xA5, payload 01 02 03) = %08X, "
              "verify=%s, tamper-verify=%s\n",
              tag, security::verify_mac(0xA5, payload, tag) ? "ok" : "fail",
              security::verify_mac(0xA5, payload, tag ^ 1) ? "ok" : "fail");
  return 0;
}
