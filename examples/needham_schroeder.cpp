// The motivating story of the paper's Section II-B: the Needham-Schroeder
// public-key protocol was used for 18 years before CSP-based analysis
// (Lowe 1995) exposed the man-in-the-middle attack. This example
// rediscovers that attack with the library's Dolev-Yao intruder, then
// verifies Lowe's fix.
//
//   $ ./needham_schroeder
#include <cstdio>

#include "security/nspk.hpp"
#include "security/properties.hpp"

using namespace ecucsp;
using namespace ecucsp::security;

int main() {
  std::printf("Needham-Schroeder public-key protocol (1978)\n");
  std::printf("  Msg1. A -> B : {Na, A}pk(B)\n");
  std::printf("  Msg2. B -> A : {Na, Nb}pk(A)\n");
  std::printf("  Msg3. A -> B : {Nb}pk(B)\n\n");

  {
    auto sys = build_nspk(/*lowe_fix=*/false);
    std::printf("small system: initiator a, responder b, intruder i\n");
    std::printf("message universe: %zu terms (%zu communicable)\n\n",
                sys->universe_size, sys->message_count);

    std::printf("authentication check: commit.b.a requires running.a.b\n");
    const CheckResult r = check_precedence_witness(
        sys->ctx, sys->system, sys->running_ab, sys->commit_ba);
    if (r.passed) {
      std::printf("  unexpectedly secure?!\n");
      return 1;
    }
    std::printf("  VIOLATED — Lowe's attack, found automatically:\n\n");
    int step = 1;
    for (const EventId e : r.counterexample->trace) {
      std::printf("   %2d. %s\n", step++, sys->ctx.event_name(e).c_str());
    }
    std::printf("   %2d. %s   <-- b commits to a, but a never ran with b\n\n",
                step, sys->ctx.event_name(r.counterexample->event).c_str());
    std::printf("  (states explored: %zu)\n\n", r.stats.product_states);
  }

  {
    std::printf("Lowe's fix (NSL): Msg2 becomes {Na, Nb, B}pk(A)\n");
    auto sys = build_nspk(/*lowe_fix=*/true);
    const CheckResult r = check_precedence_witness(
        sys->ctx, sys->system, sys->running_ab, sys->commit_ba);
    std::printf("  authentication: %s (states explored: %zu)\n",
                r.passed ? "holds" : "STILL BROKEN", r.stats.product_states);
    return r.passed ? 0 : 1;
  }
}
