// ecucsp_lint: cross-layer static analysis for the extract-then-verify
// toolchain. Lints CAPL handler programs against the CANdb they target,
// the CANdb itself, and CSPm models — before any LTS is ever compiled.
//
//   $ ./ecucsp_lint --dbc net.dbc vmg.can ecu.can model.csp
//   $ ./ecucsp_lint --json bad.csp
//   $ ./ecucsp_lint --ota            # the built-in OTA case study
//   $ ./ecucsp_lint --list-rules
//
// Inputs are classified by extension (.can/.capl -> CAPL, .dbc -> CANdb,
// .csp/.cspm -> CSPm); --capl/--dbc/--cspm force a classification. Exit
// codes: 0 clean (warnings allowed), 1 findings of error severity (or any
// finding under --werror), 2 usage or I/O failure.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "capl/parser.hpp"
#include "lint/baseline.hpp"
#include "lint/lint.hpp"
#include "ota/ota.hpp"
#include "translate/extractor.hpp"

using namespace ecucsp;

namespace {

std::string slurp(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    throw std::runtime_error("cannot read '" + path + "': not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad() || out.fail()) {
    throw std::runtime_error("read error on '" + path + "'");
  }
  return out.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <file>...\n"
      "Static analysis for CAPL (.can/.capl), CANdb (.dbc) and CSPm\n"
      "(.csp/.cspm) inputs; CAPL checks cross-reference the database when\n"
      "one is given.\n"
      "  --capl FILE   treat FILE as CAPL regardless of extension\n"
      "  --dbc FILE    treat FILE as the CANdb (at most one)\n"
      "  --cspm FILE   treat FILE as CSPm\n"
      "  --json        machine-readable report on stdout\n"
      "  --werror      any finding (warnings included) fails the run\n"
      "  --baseline F  suppress the findings fingerprinted in baseline file\n"
      "                F; only new findings are reported / fail the run\n"
      "  --write-baseline F\n"
      "                write the current findings to F as a baseline and\n"
      "                exit 0 (adopt-the-linter mode)\n"
      "  --ota         lint the built-in OTA case study (embedded CAPL +\n"
      "                CANdb + the CSPm model extracted from them)\n"
      "  --list-rules  print the rule catalogue and exit\n",
      argv0);
  return 2;
}

int list_rules() {
  for (const lint::RuleInfo& r : lint::all_rules()) {
    std::printf("%-5.*s %-8.*s %.*s\n", int(r.id.size()), r.id.data(),
                int(lint::to_string(r.severity).size()),
                lint::to_string(r.severity).data(), int(r.summary.size()),
                r.summary.data());
  }
  return 0;
}

/// The embedded OTA case study, end to end: both CAPL nodes, the CANdb,
/// and the CSPm system model freshly extracted from them — the same gate
/// CI runs to keep the shipped sources lint-clean.
lint::LintRequest ota_request() {
  lint::LintRequest req;
  req.capl.push_back({"<ota:vmg.can>", std::string(ota::vmg_capl_source())});
  req.capl.push_back({"<ota:ecu.can>", std::string(ota::ecu_capl_source())});
  req.dbc = lint::SourceFile{"<ota:net.dbc>", std::string(ota::ota_dbc_text())};

  const can::DbcDatabase db = can::parse_dbc(ota::ota_dbc_text());
  const capl::CaplProgram vmg = capl::parse_capl(ota::vmg_capl_source());
  const capl::CaplProgram ecu = capl::parse_capl(ota::ecu_capl_source());
  std::vector<translate::SystemNode> nodes(2);
  nodes[0].program = &vmg;
  nodes[0].options.node_name = "VMG";
  nodes[0].options.db = &db;
  nodes[1].program = &ecu;
  nodes[1].options.node_name = "ECU";
  nodes[1].options.db = &db;
  const translate::ExtractionResult extracted =
      translate::extract_system(nodes, {});
  req.cspm.push_back({"<ota:system.csp>", extracted.cspm});
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool ota = false;
  const char* baseline_path = nullptr;
  const char* write_baseline_path = nullptr;
  lint::LintRequest req;

  for (int i = 1; i < argc; ++i) {
    const auto flag_with_file = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* f = flag_with_file("--capl")) {
      req.capl.push_back({f, {}});
    } else if (const char* f = flag_with_file("--cspm")) {
      req.cspm.push_back({f, {}});
    } else if (const char* f = flag_with_file("--dbc")) {
      if (req.dbc) {
        std::fprintf(stderr, "error: more than one CANdb given\n");
        return 2;
      }
      req.dbc = lint::SourceFile{f, {}};
    } else if (const char* f = flag_with_file("--baseline")) {
      baseline_path = f;
    } else if (const char* f = flag_with_file("--write-baseline")) {
      write_baseline_path = f;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--ota") == 0) {
      ota = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      return list_rules();
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      const std::filesystem::path p(argv[i]);
      const std::string ext = p.extension().string();
      if (ext == ".can" || ext == ".capl") {
        req.capl.push_back({argv[i], {}});
      } else if (ext == ".dbc") {
        if (req.dbc) {
          std::fprintf(stderr, "error: more than one CANdb given\n");
          return 2;
        }
        req.dbc = lint::SourceFile{argv[i], {}};
      } else if (ext == ".csp" || ext == ".cspm") {
        req.cspm.push_back({argv[i], {}});
      } else {
        std::fprintf(stderr,
                     "error: cannot classify '%s' (use --capl/--dbc/--cspm)\n",
                     argv[i]);
        return 2;
      }
    }
  }

  try {
    if (ota) {
      if (!req.capl.empty() || req.dbc || !req.cspm.empty()) {
        std::fprintf(stderr, "error: --ota takes no input files\n");
        return 2;
      }
      req = ota_request();
    } else {
      if (req.capl.empty() && !req.dbc && req.cspm.empty()) {
        return usage(argv[0]);
      }
      for (auto& f : req.capl) f.text = slurp(f.path);
      if (req.dbc) req.dbc->text = slurp(req.dbc->path);
      for (auto& f : req.cspm) f.text = slurp(f.path);
    }

    lint::LintReport report = lint::run_lint(req);
    if (write_baseline_path) {
      const lint::Baseline base =
          lint::Baseline::from_diagnostics(report.diagnostics);
      std::ofstream out(write_baseline_path, std::ios::binary);
      out << base.serialize();
      if (!out) {
        std::fprintf(stderr, "error: cannot write baseline '%s'\n",
                     write_baseline_path);
        return 2;
      }
      std::printf("wrote %zu baseline entr%s to %s\n", base.size(),
                  base.size() == 1 ? "y" : "ies", write_baseline_path);
      return 0;
    }
    if (baseline_path) {
      const lint::Baseline base = lint::Baseline::parse(slurp(baseline_path));
      report.diagnostics =
          lint::filter_baselined(std::move(report.diagnostics), base);
    }
    if (json) {
      std::fputs(lint::render_json(report.diagnostics).c_str(), stdout);
    } else {
      std::fputs(lint::render_text(report.diagnostics, report.sources).c_str(),
                 stdout);
      std::printf("%s\n", lint::summary_line(report.diagnostics).c_str());
    }
    if (report.has_errors()) return 1;
    if (werror && !report.diagnostics.empty()) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
