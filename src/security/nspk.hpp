// The Needham-Schroeder public-key protocol, as a CSP small-system model.
//
// The paper's Section II-B motivates formal checking with exactly this
// protocol: "the security weakness was only exposed 18 years later through
// formal analysis using CSP" (Lowe, 1995). This module builds the classic
// small system — one initiator A, one responder B, a Dolev-Yao intruder
// with its own identity I — for either the original protocol or Lowe's
// fixed variant (which adds the responder's identity to message 2).
//
//   Msg1. A -> B : aenc(pk(B), <Na, A>)
//   Msg2. B -> A : aenc(pk(A), <Na, Nb>)        (fix: <Na, <Nb, B>>)
//   Msg3. A -> B : aenc(pk(B), Nb)
//
// Authentication is expressed with running/commit signal events: the
// responder's commit.b.a must be preceded by the initiator's running.a.b.
#pragma once

#include <memory>
#include <string>

#include "core/context.hpp"
#include "security/intruder.hpp"
#include "security/terms.hpp"

namespace ecucsp::security {

struct NspkSystem {
  NspkSystem() : terms(ctx) {}
  NspkSystem(const NspkSystem&) = delete;
  NspkSystem& operator=(const NspkSystem&) = delete;

  Context ctx;
  TermAlgebra terms;
  ProcessRef system = nullptr;  // (A ||| B) [|{snd,rcv}|] INTRUDER
  EventId running_ab = 0;       // initiator a running with responder b
  EventId commit_ba = 0;        // responder b committing to initiator a
  std::size_t universe_size = 0;
  std::size_t message_count = 0;
};

/// Build the small system. `lowe_fix` selects NSL (true) or the flawed
/// original (false).
std::unique_ptr<NspkSystem> build_nspk(bool lowe_fix);

}  // namespace ecucsp::security
