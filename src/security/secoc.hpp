// An AUTOSAR SecOC-style authenticated CAN messaging model.
//
// The OTA case study's MAC (R05) authenticates *origin* but not *freshness*:
// a Dolev-Yao attacker that records a genuine MAC'd frame can replay it
// verbatim, and the plain MAC verifies again. SecOC counters this with a
// monotonic freshness value included under the MAC. This module models both
// schemes over a small value domain and lets the refinement engine exhibit
// the replay attack and verify the fix — the paper's workflow applied to a
// second, real automotive mechanism.
//
// Model: a sender transmits commands cmd in {0..1}; frames are
//   frame.cmd.ctr.tag   with ctr in {0..N-1}, tag in {goodTag, badTag}
// where goodTag abstracts "MAC over (cmd, ctr) under the shared key".
// The attacker can (a) inject frames with badTag (it lacks the key), and
// (b) replay any previously transmitted genuine frame. The receiver either
//   * checks the tag only                       (plain MAC, replay-prone), or
//   * checks the tag and strict ctr monotonicity (SecOC, replay-proof).
// The integrity property: every accepted command was sent (at most) once by
// the genuine sender — i.e. #accepts <= #sends, expressed as a spec where
// accept.i must be preceded by a *distinct* send.i.
#pragma once

#include <memory>

#include "core/context.hpp"
#include "refine/check.hpp"

namespace ecucsp::security {

struct SecOcModel {
  SecOcModel() = default;
  SecOcModel(const SecOcModel&) = delete;
  SecOcModel& operator=(const SecOcModel&) = delete;

  Context ctx;

  EventId send0 = 0;    // genuine sender transmits (ctr = 0 instance)
  EventId accept0 = 0;  // receiver accepts the ctr = 0 frame
  EventSet sends;       // all genuine transmissions
  EventSet accepts;     // all receiver accept events

  ProcessRef system_mac_only = nullptr;  // tag check only
  ProcessRef system_secoc = nullptr;     // tag + freshness check

  std::size_t counter_range = 0;
};

/// Build both variants with `counters` freshness values (>= 2).
std::unique_ptr<SecOcModel> build_secoc_model(int counters = 3);

/// The no-replay property: each genuine transmission is accepted at most
/// once. Checked as SPEC [T= projection onto {send.*, accept.*} where SPEC
/// interleaves one send->accept cell per (cmd, ctr) instance.
CheckResult check_no_replay(SecOcModel& model, bool secoc_variant,
                            std::size_t max_states = 1u << 22);

}  // namespace ecucsp::security
