#include "security/intruder.hpp"

#include <algorithm>

namespace ecucsp::security {

namespace {

Value encode_knowledge(const std::set<Value>& knowledge) {
  return Value::tuple({knowledge.begin(), knowledge.end()});
}

std::set<Value> decode_knowledge(const Value& v) {
  const auto& items = v.as_tuple();
  return {items.begin(), items.end()};
}

}  // namespace

ProcessRef build_intruder(const TermAlgebra& terms, const IntruderConfig& cfg) {
  Context& ctx = terms.context();
  const std::string name = cfg.name;

  // The definition unfolds lazily: each distinct knowledge set becomes one
  // memoised process. Capture what we need by value.
  const IntruderConfig config = cfg;
  const TermAlgebra algebra = terms;

  ctx.define(name, [config, algebra, name](Context& cx,
                                           std::span<const Value> args) {
    const std::set<Value> knowledge = decode_knowledge(args[0]);

    std::vector<ProcessRef> branches;

    // Overhear any transmission: learn the payload.
    for (const Value& from : config.agents) {
      for (const Value& to : config.agents) {
        for (const Value& m : config.messages) {
          const EventId hear = cx.event(config.hear_channel, {from, to, m});
          std::set<Value> grown = knowledge;
          grown.insert(m);
          const Value next =
              encode_knowledge(algebra.close(std::move(grown), config.universe));
          branches.push_back(cx.prefix(hear, cx.var(name, {next})));
        }
      }
    }

    // Inject any derivable message with any claimed sender to any recipient.
    for (const Value& m : config.messages) {
      if (!knowledge.contains(m)) continue;
      for (const Value& from : config.agents) {
        for (const Value& to : config.agents) {
          const EventId say = cx.event(config.say_channel, {from, to, m});
          branches.push_back(cx.prefix(say, cx.var(name, {args[0]})));
        }
      }
    }

    return cx.ext_choice(branches);
  });

  const Value initial = encode_knowledge(
      terms.close({cfg.initial_knowledge.begin(), cfg.initial_knowledge.end()},
                  cfg.universe));
  return ctx.var(name, {initial});
}

}  // namespace ecucsp::security
