#include "security/intruder_factored.hpp"

#include <algorithm>
#include <map>

namespace ecucsp::security {

namespace {

struct Rule {
  std::vector<std::size_t> premises;  // fact indices
  std::size_t conclusion = 0;
};

}  // namespace

ProcessRef build_factored_intruder(const TermAlgebra& terms,
                                   const IntruderConfig& cfg,
                                   FactoredIntruderStats* stats) {
  Context& ctx = terms.context();

  // Index the fact universe.
  std::vector<Value> facts = cfg.universe;
  std::sort(facts.begin(), facts.end());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  std::map<Value, std::size_t> index;
  for (std::size_t i = 0; i < facts.size(); ++i) index.emplace(facts[i], i);
  const auto find = [&](const Value& v) -> std::ptrdiff_t {
    const auto it = index.find(v);
    return it == index.end() ? -1 : static_cast<std::ptrdiff_t>(it->second);
  };

  // Instantiate the Dolev-Yao deduction rules over the universe.
  std::vector<Rule> rules;
  const auto add_rule = [&](std::vector<std::ptrdiff_t> prem,
                            std::ptrdiff_t concl) {
    if (concl < 0) return;
    Rule r;
    for (const std::ptrdiff_t p : prem) {
      if (p < 0) return;  // a premise outside the universe: rule inapplicable
      r.premises.push_back(static_cast<std::size_t>(p));
    }
    r.conclusion = static_cast<std::size_t>(concl);
    // Degenerate rules (conclusion among premises) would be no-ops.
    for (const std::size_t p : r.premises) {
      if (p == r.conclusion) return;
    }
    rules.push_back(std::move(r));
  };
  for (const Value& f : facts) {
    if (terms.is_pair(f)) {
      const std::ptrdiff_t self = find(f);
      const std::ptrdiff_t a = find(terms.arg(f, 0));
      const std::ptrdiff_t b = find(terms.arg(f, 1));
      add_rule({self}, a);       // unpair left
      add_rule({self}, b);       // unpair right
      add_rule({a, b}, self);    // pair
    } else if (terms.is_senc(f)) {
      const std::ptrdiff_t self = find(f);
      const std::ptrdiff_t k = find(terms.arg(f, 0));
      const std::ptrdiff_t m = find(terms.arg(f, 1));
      add_rule({self, k}, m);    // decrypt
      add_rule({k, m}, self);    // encrypt
    } else if (terms.is_aenc(f)) {
      const std::ptrdiff_t self = find(f);
      const Value& pub = terms.arg(f, 0);
      const std::ptrdiff_t k = find(pub);
      const std::ptrdiff_t m = find(terms.arg(f, 1));
      add_rule({k, m}, self);    // encrypt with the public key
      if (terms.is_pk(pub)) {
        const std::ptrdiff_t sk = find(terms.sk(terms.arg(pub, 0)));
        add_rule({self, sk}, m);  // decrypt with the secret key
      }
    } else if (terms.is_mac(f)) {
      const std::ptrdiff_t k = find(terms.arg(f, 0));
      const std::ptrdiff_t m = find(terms.arg(f, 1));
      add_rule({k, m}, find(f));  // MACs compose but never decompose
    }
  }
  if (stats) {
    stats->fact_cells = facts.size();
    stats->rule_instances = rules.size();
  }

  // The internal inference channel: one event per rule instance.
  std::vector<Value> rule_ids;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_ids.push_back(Value::integer(static_cast<std::int64_t>(i)));
  }
  const ChannelId infer =
      ctx.channel(cfg.name + "_infer",
                  rule_ids.empty() ? std::vector<std::vector<Value>>{}
                                   : std::vector<std::vector<Value>>{rule_ids});

  // Message facts participate in network traffic.
  std::map<std::size_t, bool> is_message;
  for (const Value& m : cfg.messages) {
    if (const auto it = index.find(m); it != index.end()) {
      is_message[it->second] = true;
    }
  }

  // Per-fact rule participation.
  std::vector<std::vector<std::size_t>> concluding(facts.size());
  std::vector<std::vector<std::size_t>> premising(facts.size());
  for (std::size_t r = 0; r < rules.size(); ++r) {
    concluding[rules[r].conclusion].push_back(r);
    for (const std::size_t p : rules[r].premises) premising[p].push_back(r);
  }

  // One parameterised definition drives every cell: args = (fact, knows).
  const std::string cell_name = cfg.name + "_CELL";
  const IntruderConfig config = cfg;  // captured by value
  ctx.define(cell_name, [config, infer, facts, is_message, concluding,
                         premising, cell_name](Context& cx,
                                               std::span<const Value> args) {
    const auto fi = static_cast<std::size_t>(args[0].as_int());
    const bool knows = args[1].as_int() != 0;
    const Value knows_state[2] = {Value::integer(args[0].as_int()),
                                  Value::integer(1)};
    const ProcessRef to_knows =
        cx.var(cell_name, {knows_state[0], knows_state[1]});
    const ProcessRef self =
        cx.var(cell_name, {knows_state[0], Value::integer(knows ? 1 : 0)});

    std::vector<ProcessRef> branches;
    if (is_message.count(fi)) {
      for (const Value& from : config.agents) {
        for (const Value& to : config.agents) {
          branches.push_back(cx.prefix(
              cx.event(config.hear_channel, {from, to, facts[fi]}), to_knows));
          if (knows) {
            branches.push_back(cx.prefix(
                cx.event(config.say_channel, {from, to, facts[fi]}), self));
          }
        }
      }
    }
    if (!knows) {
      for (const std::size_t r : concluding[fi]) {
        branches.push_back(cx.prefix(
            cx.event(infer, {Value::integer(static_cast<std::int64_t>(r))}),
            to_knows));
      }
    } else {
      for (const std::size_t r : premising[fi]) {
        branches.push_back(cx.prefix(
            cx.event(infer, {Value::integer(static_cast<std::int64_t>(r))}),
            self));
      }
    }
    return cx.ext_choice(branches);
  });

  // Alphabet of each cell: its network events plus its inference events.
  const auto alphabet_of = [&](std::size_t fi) {
    std::vector<EventId> out;
    if (is_message.count(fi)) {
      for (const Value& from : cfg.agents) {
        for (const Value& to : cfg.agents) {
          out.push_back(ctx.event(cfg.hear_channel, {from, to, facts[fi]}));
          out.push_back(ctx.event(cfg.say_channel, {from, to, facts[fi]}));
        }
      }
    }
    for (const std::size_t r : concluding[fi]) {
      out.push_back(ctx.event(infer, {Value::integer(static_cast<std::int64_t>(r))}));
    }
    for (const std::size_t r : premising[fi]) {
      out.push_back(ctx.event(infer, {Value::integer(static_cast<std::int64_t>(r))}));
    }
    return EventSet(std::move(out));
  };

  // Compose the cells in alphabetised parallel.
  ProcessRef composed = nullptr;
  EventSet acc_alpha;
  for (std::size_t fi = 0; fi < facts.size(); ++fi) {
    const bool known = cfg.initial_knowledge.contains(facts[fi]);
    const ProcessRef cell =
        ctx.var(cell_name, {Value::integer(static_cast<std::int64_t>(fi)),
                            Value::integer(known ? 1 : 0)});
    const EventSet alpha = alphabet_of(fi);
    if (!composed) {
      composed = cell;
      acc_alpha = alpha;
    } else {
      composed = ctx.par(composed, acc_alpha.set_intersection(alpha), cell);
      acc_alpha = acc_alpha.set_union(alpha);
    }
  }
  if (!composed) return ctx.stop();

  // Inferences are the intruder's private reasoning.
  return ctx.hide(composed, ctx.events_of(infer));
}

}  // namespace ecucsp::security
