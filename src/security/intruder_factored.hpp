// The factored ("lazy") Dolev-Yao intruder, after Roscoe/Casper.
//
// The explicit intruder of intruder.hpp carries its whole knowledge set in
// one process parameter, so its state count is the number of reachable
// *closed knowledge sets*. The classic scalable alternative factors the
// intruder into one two-state cell per derivable fact:
//
//   CELL(f) in {Ignorant, Knows}
//     hear.*.*.f         : -> Knows            (overhearing, messages only)
//   say.*.*.f            : Knows -> Knows      (injection, messages only)
//   infer.r              : premises stay Knows, conclusion Ignorant -> Knows
//
// and composes the cells in alphabetised parallel, hiding the internal
// `infer` events. Each deduction-rule instance fires at most once along a
// trace (its conclusion cell then blocks it), so the hidden inferences
// cannot introduce divergence. The composition is trace-equivalent to the
// explicit intruder over the same universe — tests/security_test.cpp checks
// this mechanically on several universes.
//
// Honest scaling note (see bench_intruder_statespace): compiled standalone,
// the factored intruder's LTS is the product of its cells and can be
// *larger* than the explicit intruder's, whose eager closure collapses many
// knowledge sets. The construction's practical advantage in FDR comes from
// combining it with the `chase` operator (eagerly committing to taus),
// which this engine does not implement; we provide the factored form for
// fidelity to the literature and as a mechanically-verified equivalence.
#pragma once

#include "security/intruder.hpp"

namespace ecucsp::security {

struct FactoredIntruderStats {
  std::size_t fact_cells = 0;
  std::size_t rule_instances = 0;
};

/// Build the factored intruder for the same configuration consumed by
/// build_intruder(). `stats`, when non-null, receives the construction
/// sizes for benchmarks.
ProcessRef build_factored_intruder(const TermAlgebra& terms,
                                   const IntruderConfig& cfg,
                                   FactoredIntruderStats* stats = nullptr);

}  // namespace ecucsp::security
