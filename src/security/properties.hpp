// Reusable security-property specification builders.
//
// Each builder returns a CSP specification process (and, where needed, the
// projection of the system under test) so that the property becomes an
// ordinary refinement check — the paper's method of "capturing security
// properties as abstract CSP models" (Section V-B).
#pragma once

#include <string>

#include "core/context.hpp"
#include "refine/check.hpp"

namespace ecucsp::security {

/// Integrity / responsiveness (the paper's SP02): every occurrence of
/// `request` is answered by `response` before the next request.
///   SP = request -> response -> SP
/// Check with: check_refinement(ctx, spec, project(system), Traces) where
/// the system is projected to {request, response}.
ProcessRef response_spec(Context& ctx, EventId request, EventId response);

/// Precedence / authentication: `post` may only occur after `pre` has
/// occurred (Lowe-style running/commit authentication when pre=running,
/// post=commit).
ProcessRef precedence_spec(Context& ctx, EventId pre, EventId post);

/// Confidentiality: the `leak` event never occurs.
ProcessRef never_spec(Context& ctx, EventId leak, const EventSet& alphabet);

/// Timed (tock-CSP) bounded response, the paper's Section VII-B route to
/// time: over the projected alphabet {tock, request, response}, once a
/// request has occurred, at most `within` tock events may pass before the
/// response; requests are only observed one at a time. Check against
/// project(system, {tock, request, response}) in the traces model.
ProcessRef bounded_response_spec(Context& ctx, EventId tock, EventId request,
                                 EventId response, int within);

CheckResult check_bounded_response(Context& ctx, ProcessRef system,
                                   EventId tock, EventId request,
                                   EventId response, int within,
                                   std::size_t max_states = 1u << 22,
                                   CancelToken* cancel = nullptr);

/// Project `system` onto `keep`: hide every other currently-interned event.
/// (Trace-model projection; hiding may introduce divergence, which the
/// traces model ignores — use for [T= checks.)
ProcessRef project(Context& ctx, ProcessRef system, const EventSet& keep);

/// The exact (spec, impl-to-sweep) pair a property wrapper hands to
/// check_refinement — exposed so static analyses (the verify layer's
/// --prune=static predictor) can reason about the very terms the check
/// would run, not a reconstruction of them. All parts here are Traces-model
/// refinements.
struct PropertyParts {
  ProcessRef spec = nullptr;
  ProcessRef impl = nullptr;  // projected system, or the system itself
};

PropertyParts response_parts(Context& ctx, ProcessRef system, EventId request,
                             EventId response);
PropertyParts precedence_witness_parts(Context& ctx, ProcessRef system,
                                       EventId pre, EventId post);

/// Convenience wrappers running the projection + refinement in one step.
/// Every wrapper forwards its optional CancelToken into the underlying
/// refinement check, so batch schedulers can impose deadlines without a
/// separate warm-up compilation. check_response / check_precedence_witness
/// are defined as check_refinement over their *_parts above.
CheckResult check_response(Context& ctx, ProcessRef system, EventId request,
                           EventId response, std::size_t max_states = 1u << 22,
                           CancelToken* cancel = nullptr);
CheckResult check_precedence(Context& ctx, ProcessRef system, EventId pre,
                             EventId post, std::size_t max_states = 1u << 22,
                             CancelToken* cancel = nullptr);

/// Like check_precedence, but checks against the *unprojected* system so a
/// failure's counterexample is the complete event trace — the attack
/// scenario fed "back to software designers" in the paper's Figure 1.
CheckResult check_precedence_witness(Context& ctx, ProcessRef system,
                                     EventId pre, EventId post,
                                     std::size_t max_states = 1u << 22,
                                     CancelToken* cancel = nullptr);
CheckResult check_never(Context& ctx, ProcessRef system, EventId leak,
                        std::size_t max_states = 1u << 22,
                        CancelToken* cancel = nullptr);

}  // namespace ecucsp::security
