#include "security/secoc.hpp"

#include "security/intruder.hpp"
#include "security/properties.hpp"
#include "security/terms.hpp"

namespace ecucsp::security {

std::unique_ptr<SecOcModel> build_secoc_model(int counters) {
  auto model = std::make_unique<SecOcModel>();
  Context& ctx = model->ctx;
  TermAlgebra T(ctx);
  model->counter_range = static_cast<std::size_t>(counters);

  const Value s = T.atom("s");  // sender
  const Value r = T.atom("r");  // receiver
  const Value i = T.atom("i");  // intruder identity
  const Value key = T.atom("k");
  const Value bad = T.atom("badTag");
  const std::vector<Value> agents{s, r, i};

  std::vector<Value> cmds{Value::integer(0), Value::integer(1)};
  std::vector<Value> ctrs;
  for (int n = 0; n < counters; ++n) ctrs.push_back(Value::integer(n));

  // Frames: pair(payload, tag) with payload = pair(cmd, ctr) and tag either
  // mac(k, payload) (genuine) or the badTag atom (forgery).
  std::vector<Value> payloads, good_frames, forged_frames, messages, universe;
  for (const Value& c : cmds) {
    for (const Value& n : ctrs) {
      const Value p = T.pair(c, n);
      payloads.push_back(p);
      good_frames.push_back(T.pair(p, T.mac(key, p)));
      forged_frames.push_back(T.pair(p, bad));
    }
  }
  messages = good_frames;
  messages.insert(messages.end(), forged_frames.begin(), forged_frames.end());
  universe = messages;
  universe.insert(universe.end(), payloads.begin(), payloads.end());
  for (const Value& p : payloads) universe.push_back(T.mac(key, p));
  universe.insert(universe.end(), cmds.begin(), cmds.end());
  universe.insert(universe.end(), ctrs.begin(), ctrs.end());
  universe.push_back(bad);
  universe.insert(universe.end(), agents.begin(), agents.end());

  const ChannelId snd = ctx.channel("snd", {agents, agents, messages});
  const ChannelId rcv = ctx.channel("rcv", {agents, agents, messages});
  const ChannelId accept = ctx.channel("accept", {cmds, ctrs});

  // Captured by value: this lambda is stored inside deferred process
  // definitions that outlive this function's locals.
  const auto good_frame = [T, key](const Value& c, const Value& n) {
    const Value p = T.pair(c, n);
    return T.pair(p, T.mac(key, p));
  };

  // --- sender: one frame per counter value, counter strictly increasing ----
  ctx.define("SECOC_SND", [=](Context& cx, std::span<const Value> args) {
    const std::int64_t n = args[0].as_int();
    if (n >= counters) return cx.stop();
    std::vector<ProcessRef> branches;
    for (const Value& c : cmds) {
      const EventId e = cx.event(snd, {s, r, good_frame(c, Value::integer(n))});
      branches.push_back(
          cx.prefix(e, cx.var("SECOC_SND", {Value::integer(n + 1)})));
    }
    return cx.ext_choice(branches);
  });

  // --- receivers -------------------------------------------------------------
  // args[0] == last accepted counter (-1 initially); the MAC-only variant
  // ignores it.
  const auto receiver = [=](bool check_freshness, const char* name) {
    return [=](Context& cx, std::span<const Value> args) {
      const std::int64_t last = args[0].as_int();
      std::vector<ProcessRef> branches;
      for (const Value& c : cmds) {
        for (const Value& n : ctrs) {
          // Genuine tag: verify, optionally check freshness, accept.
          const EventId rx_good =
              cx.event(rcv, {s, r, good_frame(c, n)});
          const bool fresh = !check_freshness || n.as_int() > last;
          if (fresh) {
            const EventId acc = cx.event(accept, {c, n});
            const Value next =
                check_freshness ? n : Value::integer(last);
            branches.push_back(cx.prefix(
                rx_good,
                cx.prefix(acc, cx.var(name, {check_freshness
                                                 ? next
                                                 : Value::integer(-1)}))));
          } else {
            branches.push_back(
                cx.prefix(rx_good, cx.var(name, {Value::integer(last)})));
          }
          // Bad tag: MAC verification fails, frame dropped.
          const EventId rx_bad = cx.event(
              rcv, {s, r, T.pair(T.pair(c, n), bad)});
          branches.push_back(
              cx.prefix(rx_bad, cx.var(name, {Value::integer(last)})));
        }
      }
      return cx.ext_choice(branches);
    };
  };
  ctx.define("SECOC_RCV_MAC", receiver(false, "SECOC_RCV_MAC"));
  ctx.define("SECOC_RCV_FRESH", receiver(true, "SECOC_RCV_FRESH"));

  // --- intruder: records bus frames, replays or forges ------------------------
  IntruderConfig cfg;
  cfg.universe = universe;
  cfg.messages = messages;
  cfg.initial_knowledge = {s, r, i, bad};
  for (const Value& c : cmds) cfg.initial_knowledge.insert(c);
  for (const Value& n : ctrs) cfg.initial_knowledge.insert(n);
  cfg.hear_channel = snd;
  cfg.say_channel = rcv;
  cfg.agents = agents;
  cfg.name = "SECOC_INTRUDER";
  const ProcessRef intruder = build_intruder(T, cfg);

  const EventSet network = ctx.events_of(snd).set_union(ctx.events_of(rcv));
  const ProcessRef sender = ctx.var("SECOC_SND", {Value::integer(0)});
  const auto compose = [&](const char* rcv_name) {
    const ProcessRef receiver_proc = ctx.var(rcv_name, {Value::integer(-1)});
    return ctx.par(ctx.interleave(sender, receiver_proc), network, intruder);
  };
  model->system_mac_only = compose("SECOC_RCV_MAC");
  model->system_secoc = compose("SECOC_RCV_FRESH");

  // Key events and sets for properties.
  model->send0 =
      ctx.event(snd, {s, r, good_frame(Value::integer(0), Value::integer(0))});
  model->accept0 = ctx.event(accept, {Value::integer(0), Value::integer(0)});
  {
    std::vector<EventId> send_events;
    for (const Value& c : cmds) {
      for (const Value& n : ctrs) {
        send_events.push_back(ctx.event(snd, {s, r, good_frame(c, n)}));
      }
    }
    model->sends = EventSet(std::move(send_events));
    model->accepts = ctx.events_of(accept);
  }
  return model;
}

CheckResult check_no_replay(SecOcModel& model, bool secoc_variant,
                            std::size_t max_states) {
  Context& ctx = model.ctx;
  // SPEC: one interleaved cell per (send, accept) instance — each genuine
  // transmission may be accepted at most once, and never before it is sent.
  std::vector<ProcessRef> cells;
  for (const EventId snd_e : model.sends) {
    // Matching accept event: same cmd/ctr as the frame payload.
    const auto& fields = ctx.event_fields(snd_e);
    const auto& frame = fields[2].as_tuple();       // pair(payload, tag)
    const auto& payload = frame[1].as_tuple();      // <"pair", cmd, ctr>
    const EventId acc_e = ctx.event("accept", {payload[1], payload[2]});
    cells.push_back(ctx.prefix(snd_e, ctx.prefix(acc_e, ctx.stop())));
  }
  ProcessRef spec = cells.front();
  for (std::size_t k = 1; k < cells.size(); ++k) {
    spec = ctx.interleave(spec, cells[k]);
  }
  const ProcessRef system =
      secoc_variant ? model.system_secoc : model.system_mac_only;
  const ProcessRef projected =
      security::project(ctx, system, model.sends.set_union(model.accepts));
  return check_refinement(ctx, spec, projected, Model::Traces, max_states);
}

}  // namespace ecucsp::security
