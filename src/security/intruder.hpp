// Dolev-Yao intruder process generation (paper Section IV-E).
//
// "A common approach is to define an additional intruder process in CSP,
// based on the Dolev-Yao model ... added, in parallel, to existing process
// models for various network components."
//
// The intruder overhears every transmission (learning its payload), and may
// inject any message it can derive, with any claimed sender/recipient. Its
// state is its (closed) knowledge set, encoded as a Value tuple so the core
// Context memoises one process per distinct knowledge set.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "security/terms.hpp"

namespace ecucsp::security {

struct IntruderConfig {
  /// Finite message universe bounding knowledge closure (includes payloads
  /// and sub-terms, not just whole network messages).
  std::vector<Value> universe;
  /// Messages that can actually appear on the network (the hear/say channel
  /// field domain). A subset of `universe`.
  std::vector<Value> messages;
  /// What the intruder knows at the start (its own keys, agent names, ...).
  std::set<Value> initial_knowledge;
  /// Channel the intruder overhears: fields (from, to, message).
  ChannelId hear_channel = 0;
  /// Channel the intruder injects on: fields (claimed-from, to, message).
  ChannelId say_channel = 0;
  /// Agent identities used for the from/to fields of injected messages.
  std::vector<Value> agents;
  /// Name of the generated family of definitions.
  std::string name = "INTRUDER";
};

/// Register the intruder definition in `ctx` and return its initial state.
/// Compose with the agents via par(system, {|hear, say|}, intruder).
ProcessRef build_intruder(const TermAlgebra& terms, const IntruderConfig& cfg);

}  // namespace ecucsp::security
