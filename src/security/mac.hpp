// Toy message authentication code for the simulation-level OTA case study.
//
// X.1373 (R05) assumes shared symmetric keys; in the CSP models a MAC is a
// symbolic term (see TermAlgebra::mac). At the CAN-simulation level we need
// concrete bytes, so this provides a keyed 32-bit tag based on FNV-1a.
//
// *** NOT cryptographically secure. *** It exists to exercise the same code
// paths a real MAC would (compute, attach, verify, reject-on-mismatch); the
// substitution is recorded in DESIGN.md.
#pragma once

#include <cstdint>
#include <span>

namespace ecucsp::security {

using MacKey = std::uint64_t;
using MacTag = std::uint32_t;

/// Keyed tag over `payload`.
MacTag compute_mac(MacKey key, std::span<const std::uint8_t> payload);

/// Constant-shape verification (always scans the full payload).
bool verify_mac(MacKey key, std::span<const std::uint8_t> payload, MacTag tag);

}  // namespace ecucsp::security
