#include "security/properties.hpp"

namespace ecucsp::security {

ProcessRef response_spec(Context& ctx, EventId request, EventId response) {
  const std::string name = "_RESPONSE_SPEC_" + ctx.event_name(request) + "_" +
                           ctx.event_name(response);
  const Symbol s = ctx.sym(name);
  ctx.define(name, [request, response, s](Context& cx, std::span<const Value>) {
    return cx.prefix(request, cx.prefix(response, cx.var(s)));
  });
  return ctx.var(s);
}

ProcessRef precedence_spec(Context& ctx, EventId pre, EventId post) {
  // Before `pre`: only pre is allowed. After: both run freely.
  return ctx.prefix(pre, ctx.run(EventSet{pre, post}));
}

ProcessRef never_spec(Context& ctx, EventId leak, const EventSet& alphabet) {
  return ctx.run(alphabet.set_difference(EventSet{leak}));
}

ProcessRef bounded_response_spec(Context& ctx, EventId tock, EventId request,
                                 EventId response, int within) {
  const std::string name = "_BRESP_" + ctx.event_name(request) + "_" +
                           ctx.event_name(response) + "_" +
                           std::to_string(within);
  const Symbol s = ctx.sym(name);
  // args[0] == -1: idle; args[0] == j >= 0: waiting, j tocks left.
  ctx.define(name, [tock, request, response, within, s](
                       Context& cx, std::span<const Value> args) {
    const std::int64_t j = args[0].as_int();
    if (j < 0) {
      return cx.ext_choice(
          cx.prefix(tock, cx.var(s, {Value::integer(-1)})),
          cx.prefix(request, cx.var(s, {Value::integer(within)})));
    }
    ProcessRef out =
        cx.prefix(response, cx.var(s, {Value::integer(-1)}));
    if (j > 0) {
      out = cx.ext_choice(
          out, cx.prefix(tock, cx.var(s, {Value::integer(j - 1)})));
    }
    return out;
  });
  return ctx.var(s, {Value::integer(-1)});
}

CheckResult check_bounded_response(Context& ctx, ProcessRef system,
                                   EventId tock, EventId request,
                                   EventId response, int within,
                                   std::size_t max_states,
                                   CancelToken* cancel) {
  const ProcessRef spec =
      bounded_response_spec(ctx, tock, request, response, within);
  const ProcessRef projected =
      project(ctx, system, EventSet{tock, request, response});
  return check_refinement(ctx, spec, projected, Model::Traces, max_states,
                          cancel);
}

ProcessRef project(Context& ctx, ProcessRef system, const EventSet& keep) {
  return ctx.hide(system, ctx.alphabet().set_difference(keep));
}

PropertyParts response_parts(Context& ctx, ProcessRef system, EventId request,
                             EventId response) {
  return {response_spec(ctx, request, response),
          project(ctx, system, EventSet{request, response})};
}

CheckResult check_response(Context& ctx, ProcessRef system, EventId request,
                           EventId response, std::size_t max_states,
                           CancelToken* cancel) {
  const PropertyParts p = response_parts(ctx, system, request, response);
  return check_refinement(ctx, p.spec, p.impl, Model::Traces, max_states,
                          cancel);
}

CheckResult check_precedence(Context& ctx, ProcessRef system, EventId pre,
                             EventId post, std::size_t max_states,
                             CancelToken* cancel) {
  const ProcessRef spec = precedence_spec(ctx, pre, post);
  const ProcessRef projected = project(ctx, system, EventSet{pre, post});
  return check_refinement(ctx, spec, projected, Model::Traces, max_states,
                          cancel);
}

PropertyParts precedence_witness_parts(Context& ctx, ProcessRef system,
                                       EventId pre, EventId post) {
  // SPEC: until `pre` happens, anything but `post` is allowed; afterwards
  // the process is unconstrained. Checked against the *unprojected* system.
  const EventSet sigma = ctx.alphabet();
  const std::string name = "_PRECEDENCE_FULL_" + ctx.event_name(pre) + "_" +
                           ctx.event_name(post);
  const Symbol s = ctx.sym(name);
  const ProcessRef anything = ctx.run(sigma);
  ctx.define(name, [pre, post, sigma, anything, s](Context& cx,
                                                   std::span<const Value>) {
    std::vector<ProcessRef> branches;
    branches.push_back(cx.prefix(pre, anything));
    for (const EventId e : sigma.set_difference(EventSet{pre, post})) {
      branches.push_back(cx.prefix(e, cx.var(s)));
    }
    return cx.ext_choice(branches);
  });
  return {ctx.var(s), system};
}

CheckResult check_precedence_witness(Context& ctx, ProcessRef system,
                                     EventId pre, EventId post,
                                     std::size_t max_states,
                                     CancelToken* cancel) {
  const PropertyParts p = precedence_witness_parts(ctx, system, pre, post);
  return check_refinement(ctx, p.spec, p.impl, Model::Traces, max_states,
                          cancel);
}

CheckResult check_never(Context& ctx, ProcessRef system, EventId leak,
                        std::size_t max_states, CancelToken* cancel) {
  const EventSet sigma = ctx.alphabet();
  return check_refinement(ctx, never_spec(ctx, leak, sigma), system,
                          Model::Traces, max_states, cancel);
}

}  // namespace ecucsp::security
