#include "security/nspk.hpp"

namespace ecucsp::security {

std::unique_ptr<NspkSystem> build_nspk(bool lowe_fix) {
  auto sys = std::make_unique<NspkSystem>();
  Context& ctx = sys->ctx;
  TermAlgebra& T = sys->terms;

  const Value a = T.atom("a");
  const Value b = T.atom("b");
  const Value i = T.atom("i");
  const Value na = T.atom("na");
  const Value nb = T.atom("nb");
  const Value ni = T.atom("ni");
  const std::vector<Value> agents{a, b, i};
  const std::vector<Value> nonces{na, nb, ni};

  // --- message space ---------------------------------------------------------
  std::vector<Value> payloads;      // everything that can sit under an aenc
  std::vector<Value> inner_pairs;   // NSL's <Nb, B> sub-terms
  for (const Value& n : nonces) {
    for (const Value& ag : agents) {
      payloads.push_back(T.pair(n, ag));  // Msg1 payloads <N, A>
    }
  }
  if (lowe_fix) {
    for (const Value& n1 : nonces) {
      for (const Value& n2 : nonces) {
        for (const Value& ag : agents) {
          inner_pairs.push_back(T.pair(n2, ag));
          payloads.push_back(T.pair(n1, T.pair(n2, ag)));  // <Na, <Nb, B>>
        }
      }
    }
  } else {
    for (const Value& n1 : nonces) {
      for (const Value& n2 : nonces) {
        payloads.push_back(T.pair(n1, n2));  // <Na, Nb>
      }
    }
  }
  for (const Value& n : nonces) payloads.push_back(n);  // Msg3 payloads

  std::vector<Value> messages;
  for (const Value& ag : agents) {
    for (const Value& p : payloads) {
      messages.push_back(T.aenc(T.pk(ag), p));
    }
  }

  std::vector<Value> universe = messages;
  universe.insert(universe.end(), payloads.begin(), payloads.end());
  universe.insert(universe.end(), inner_pairs.begin(), inner_pairs.end());
  universe.insert(universe.end(), nonces.begin(), nonces.end());
  universe.insert(universe.end(), agents.begin(), agents.end());
  for (const Value& ag : agents) universe.push_back(T.pk(ag));
  universe.push_back(T.sk(i));
  sys->universe_size = universe.size();
  sys->message_count = messages.size();

  // --- channels ----------------------------------------------------------------
  const ChannelId snd = ctx.channel("snd", {agents, agents, messages});
  const ChannelId rcv = ctx.channel("rcv", {agents, agents, messages});
  const ChannelId running = ctx.channel("running", {agents, agents});
  const ChannelId commit = ctx.channel("commit", {agents, agents});

  // --- initiator A (one session, peer chosen by the environment) -------------
  const auto msg2_for = [&](const Value& self, const Value& nonce,
                            const Value& peer_nonce, const Value& peer) {
    return lowe_fix ? T.aenc(T.pk(self), T.pair(nonce, T.pair(peer_nonce, peer)))
                    : T.aenc(T.pk(self), T.pair(nonce, peer_nonce));
  };

  std::vector<ProcessRef> init_branches;
  for (const Value& peer : {b, i}) {
    // Msg1 out, then accept any well-formed Msg2, then Msg3 out.
    std::vector<ProcessRef> replies;
    for (const Value& x : nonces) {
      const Value m2 = msg2_for(a, na, x, peer);
      const EventId recv_m2 = ctx.event(rcv, {peer, a, m2});
      const EventId send_m3 =
          ctx.event(snd, {a, peer, T.aenc(T.pk(peer), x)});
      replies.push_back(
          ctx.prefix(recv_m2, ctx.prefix(send_m3, ctx.skip())));
    }
    const EventId send_m1 =
        ctx.event(snd, {a, peer, T.aenc(T.pk(peer), T.pair(na, a))});
    const EventId run_ev = ctx.event(running, {a, peer});
    init_branches.push_back(ctx.prefix(
        run_ev, ctx.prefix(send_m1, ctx.ext_choice(replies))));
  }
  const ProcessRef initiator = ctx.ext_choice(init_branches);

  // --- responder B (one session, any claimed initiator) -----------------------
  std::vector<ProcessRef> resp_branches;
  for (const Value& claimed : agents) {
    for (const Value& n : nonces) {
      const EventId recv_m1 = ctx.event(
          rcv, {claimed, b, T.aenc(T.pk(b), T.pair(n, claimed))});
      const EventId send_m2 =
          ctx.event(snd, {b, claimed, msg2_for(claimed, n, nb, b)});
      const EventId recv_m3 =
          ctx.event(rcv, {claimed, b, T.aenc(T.pk(b), nb)});
      const EventId commit_ev = ctx.event(commit, {b, claimed});
      resp_branches.push_back(ctx.prefix(
          recv_m1,
          ctx.prefix(send_m2,
                     ctx.prefix(recv_m3,
                                ctx.prefix(commit_ev, ctx.skip())))));
    }
  }
  const ProcessRef responder = ctx.ext_choice(resp_branches);

  // --- intruder -----------------------------------------------------------------
  IntruderConfig cfg;
  cfg.universe = universe;
  cfg.messages = messages;
  cfg.initial_knowledge = {a,       b,       i,        ni,
                           T.pk(a), T.pk(b), T.pk(i), T.sk(i)};
  cfg.hear_channel = snd;
  cfg.say_channel = rcv;
  cfg.agents = agents;
  cfg.name = "NSPK_INTRUDER";
  const ProcessRef intruder = build_intruder(T, cfg);

  const EventSet network =
      ctx.events_of(snd).set_union(ctx.events_of(rcv));
  sys->system =
      ctx.par(ctx.interleave(initiator, responder), network, intruder);
  sys->running_ab = ctx.event(running, {a, b});
  sys->commit_ba = ctx.event(commit, {b, a});
  return sys;
}

}  // namespace ecucsp::security
