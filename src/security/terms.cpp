#include "security/terms.hpp"

namespace ecucsp::security {

std::set<Value> TermAlgebra::close(std::set<Value> knowledge,
                                   const std::vector<Value>& universe) const {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Value> to_add;

    // Decomposition rules.
    for (const Value& v : knowledge) {
      if (is_pair(v)) {
        if (!knowledge.contains(arg(v, 0))) to_add.push_back(arg(v, 0));
        if (!knowledge.contains(arg(v, 1))) to_add.push_back(arg(v, 1));
      } else if (is_senc(v)) {
        // senc(k, m) + k  |-  m
        if (knowledge.contains(arg(v, 0)) && !knowledge.contains(arg(v, 1))) {
          to_add.push_back(arg(v, 1));
        }
      } else if (is_aenc(v)) {
        // aenc(pk(a), m) + sk(a)  |-  m
        const Value& key = arg(v, 0);
        if (is_pk(key)) {
          const Value secret = sk(arg(key, 0));
          if (knowledge.contains(secret) && !knowledge.contains(arg(v, 1))) {
            to_add.push_back(arg(v, 1));
          }
        }
      }
      // MACs reveal nothing (one-way).
    }

    // Composition rules, bounded by the universe.
    for (const Value& target : universe) {
      if (knowledge.contains(target)) continue;
      bool can_build = false;
      if (is_pair(target)) {
        can_build = knowledge.contains(arg(target, 0)) &&
                    knowledge.contains(arg(target, 1));
      } else if (is_senc(target) || is_mac(target)) {
        can_build = knowledge.contains(arg(target, 0)) &&
                    knowledge.contains(arg(target, 1));
      } else if (is_aenc(target)) {
        // Encrypting needs the public key (public in most models, but we
        // still require it to be known) and the plaintext.
        can_build = knowledge.contains(arg(target, 0)) &&
                    knowledge.contains(arg(target, 1));
      }
      if (can_build) to_add.push_back(target);
    }

    for (const Value& v : to_add) {
      changed |= knowledge.insert(v).second;
    }
  }
  return knowledge;
}

}  // namespace ecucsp::security
