#include "security/mac.hpp"

namespace ecucsp::security {

MacTag compute_mac(MacKey key, std::span<const std::uint8_t> payload) {
  // FNV-1a over key bytes, payload, then key bytes again (sandwich), folded
  // to 32 bits. Toy construction — see header.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(key >> (8 * i)));
  for (const std::uint8_t b : payload) mix(b);
  for (int i = 7; i >= 0; --i) mix(static_cast<std::uint8_t>(key >> (8 * i)));
  return static_cast<MacTag>(h ^ (h >> 32));
}

bool verify_mac(MacKey key, std::span<const std::uint8_t> payload, MacTag tag) {
  // Branch-free comparison to keep the verify shape constant.
  const MacTag expect = compute_mac(key, payload);
  std::uint32_t diff = expect ^ tag;
  diff |= diff >> 16;
  diff |= diff >> 8;
  diff |= diff >> 4;
  diff |= diff >> 2;
  diff |= diff >> 1;
  return (diff & 1u) == 0;
}

}  // namespace ecucsp::security
