// Attack trees as series-parallel graphs, with the paper's Section IV-E
// semantics and the translation to semantically equivalent CSP processes
// (after Cheah et al., WISTP 2017, the paper's [17]).
//
// Semantics (paper's notation):
//   (a)           = { <a> }
//   (G1 || G2)    = { s in s1 ||| s2 }          (AND: interleave)
//   (G1 . G2)     = { s1 ^ s2 }                 (SEQ: concatenation)
//   ({G1..Gn})    = union of the (Gi)           (OR: alternatives)
// The CSP translation maps leaves to a -> SKIP, SEQ to ';', AND to '|||'
// and OR to internal choice; its *completed* traces (those ending in tick)
// coincide with the SP-graph semantics, which tests/security_test.cpp
// verifies as a property.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/context.hpp"

namespace ecucsp::security {

class AttackTree {
 public:
  enum class Kind : std::uint8_t { Leaf, Seq, And, Or };

  static AttackTree leaf(std::string action);
  static AttackTree seq(std::vector<AttackTree> steps);
  static AttackTree and_all(std::vector<AttackTree> branches);  // parallel
  static AttackTree or_any(std::vector<AttackTree> branches);   // alternatives

  Kind kind() const { return kind_; }
  const std::string& action() const { return action_; }
  const std::vector<AttackTree>& children() const { return children_; }

  /// All attack action names occurring in the tree.
  std::set<std::string> actions() const;

  /// The SP-graph semantics: the set of complete action sequences.
  std::set<std::vector<std::string>> sequences() const;

  /// Translate to a CSP process over `channel` (one event per action);
  /// declares the channel's domain from the tree's actions.
  ProcessRef to_csp(Context& ctx, const std::string& channel = "attack") const;

  /// Number of nodes (diagnostics / benches).
  std::size_t size() const;

 private:
  Kind kind_ = Kind::Leaf;
  std::string action_;
  std::vector<AttackTree> children_;
};

}  // namespace ecucsp::security
