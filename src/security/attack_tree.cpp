#include "security/attack_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecucsp::security {

AttackTree AttackTree::leaf(std::string action) {
  AttackTree t;
  t.kind_ = Kind::Leaf;
  t.action_ = std::move(action);
  return t;
}

AttackTree AttackTree::seq(std::vector<AttackTree> steps) {
  if (steps.empty()) throw std::invalid_argument("empty SEQ attack tree");
  AttackTree t;
  t.kind_ = Kind::Seq;
  t.children_ = std::move(steps);
  return t;
}

AttackTree AttackTree::and_all(std::vector<AttackTree> branches) {
  if (branches.empty()) throw std::invalid_argument("empty AND attack tree");
  AttackTree t;
  t.kind_ = Kind::And;
  t.children_ = std::move(branches);
  return t;
}

AttackTree AttackTree::or_any(std::vector<AttackTree> branches) {
  if (branches.empty()) throw std::invalid_argument("empty OR attack tree");
  AttackTree t;
  t.kind_ = Kind::Or;
  t.children_ = std::move(branches);
  return t;
}

std::set<std::string> AttackTree::actions() const {
  std::set<std::string> out;
  if (kind_ == Kind::Leaf) {
    out.insert(action_);
    return out;
  }
  for (const AttackTree& c : children_) {
    const auto sub = c.actions();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::size_t AttackTree::size() const {
  std::size_t n = 1;
  for (const AttackTree& c : children_) n += c.size();
  return n;
}

namespace {

using Seqs = std::set<std::vector<std::string>>;

/// All interleavings of two sequences (the paper's s1 ||| s2).
void interleavings(const std::vector<std::string>& a,
                   const std::vector<std::string>& b,
                   std::vector<std::string>& prefix, Seqs& out) {
  if (a.empty() && b.empty()) {
    out.insert(prefix);
    return;
  }
  if (!a.empty()) {
    prefix.push_back(a.front());
    interleavings({a.begin() + 1, a.end()}, b, prefix, out);
    prefix.pop_back();
  }
  if (!b.empty()) {
    prefix.push_back(b.front());
    interleavings(a, {b.begin() + 1, b.end()}, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

Seqs AttackTree::sequences() const {
  switch (kind_) {
    case Kind::Leaf:
      return {{action_}};
    case Kind::Or: {
      Seqs out;
      for (const AttackTree& c : children_) {
        const Seqs sub = c.sequences();
        out.insert(sub.begin(), sub.end());
      }
      return out;
    }
    case Kind::Seq: {
      Seqs out = {{}};
      for (const AttackTree& c : children_) {
        const Seqs sub = c.sequences();
        Seqs next;
        for (const auto& done : out) {
          for (const auto& s : sub) {
            std::vector<std::string> joined = done;
            joined.insert(joined.end(), s.begin(), s.end());
            next.insert(std::move(joined));
          }
        }
        out = std::move(next);
      }
      return out;
    }
    case Kind::And: {
      Seqs out = {{}};
      for (const AttackTree& c : children_) {
        const Seqs sub = c.sequences();
        Seqs next;
        for (const auto& done : out) {
          for (const auto& s : sub) {
            std::vector<std::string> prefix;
            interleavings(done, s, prefix, next);
          }
        }
        out = std::move(next);
      }
      return out;
    }
  }
  return {};
}

ProcessRef AttackTree::to_csp(Context& ctx, const std::string& channel) const {
  // Declare (or reuse) the attack channel with the tree's action domain.
  std::vector<Value> domain;
  for (const std::string& a : actions()) {
    domain.push_back(Value::symbol(ctx.sym(a)));
  }
  ChannelId chan;
  if (auto existing = ctx.find_channel(channel)) {
    chan = *existing;  // assume caller declared a superset domain
  } else {
    chan = ctx.channel(channel, {std::move(domain)});
  }

  // Recursive translation.
  const auto translate = [&](const auto& self,
                             const AttackTree& t) -> ProcessRef {
    switch (t.kind()) {
      case Kind::Leaf:
        return ctx.prefix(
            ctx.event(chan, {Value::symbol(ctx.sym(t.action()))}), ctx.skip());
      case Kind::Seq: {
        ProcessRef out = self(self, t.children().back());
        for (std::size_t i = t.children().size() - 1; i > 0; --i) {
          out = ctx.seq(self(self, t.children()[i - 1]), out);
        }
        return out;
      }
      case Kind::And: {
        ProcessRef out = self(self, t.children().back());
        for (std::size_t i = t.children().size() - 1; i > 0; --i) {
          out = ctx.interleave(self(self, t.children()[i - 1]), out);
        }
        return out;
      }
      case Kind::Or: {
        std::vector<ProcessRef> alts;
        alts.reserve(t.children().size());
        for (const AttackTree& c : t.children()) alts.push_back(self(self, c));
        return ctx.int_choice(alts);
      }
    }
    return ctx.stop();
  };
  return translate(translate, *this);
}

}  // namespace ecucsp::security
