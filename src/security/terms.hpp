// Symbolic cryptographic message terms and the Dolev-Yao deduction system.
//
// Messages are core Values: atoms (agent names, nonces, keys) are symbols;
// compound terms are tagged tuples:
//   <"pair", a, b>      pairing
//   <"senc", k, m>      symmetric encryption under key k
//   <"aenc", pk, m>     asymmetric encryption under public key pk
//   <"pk", a> / <"sk", a>  key pairs of agent a
//   <"mac", k, m>       message authentication code (X.1373's shared-key mode)
// The deduction closure implements the standard Dolev-Yao rules, bounded by
// a finite message universe (the closure only *composes* terms that appear
// in the universe, which keeps intruder state spaces finite — the classic
// Roscoe/Ryan-Schneider treatment the paper cites as [30]).
#pragma once

#include <set>
#include <string_view>
#include <vector>

#include "core/context.hpp"

namespace ecucsp::security {

class TermAlgebra {
 public:
  explicit TermAlgebra(Context& ctx)
      : ctx_(ctx),
        pair_tag_(ctx.sym("pair")),
        senc_tag_(ctx.sym("senc")),
        aenc_tag_(ctx.sym("aenc")),
        mac_tag_(ctx.sym("mac")),
        pk_tag_(ctx.sym("pk")),
        sk_tag_(ctx.sym("sk")) {}

  Value atom(std::string_view name) const {
    return Value::symbol(ctx_.sym(name));
  }
  Value pair(const Value& a, const Value& b) const {
    return Value::tuple({Value::symbol(pair_tag_), a, b});
  }
  Value senc(const Value& key, const Value& body) const {
    return Value::tuple({Value::symbol(senc_tag_), key, body});
  }
  Value aenc(const Value& pubkey, const Value& body) const {
    return Value::tuple({Value::symbol(aenc_tag_), pubkey, body});
  }
  Value mac(const Value& key, const Value& body) const {
    return Value::tuple({Value::symbol(mac_tag_), key, body});
  }
  Value pk(const Value& agent) const {
    return Value::tuple({Value::symbol(pk_tag_), agent});
  }
  Value sk(const Value& agent) const {
    return Value::tuple({Value::symbol(sk_tag_), agent});
  }

  bool is_pair(const Value& v) const { return tagged(v, pair_tag_, 3); }
  bool is_senc(const Value& v) const { return tagged(v, senc_tag_, 3); }
  bool is_aenc(const Value& v) const { return tagged(v, aenc_tag_, 3); }
  bool is_mac(const Value& v) const { return tagged(v, mac_tag_, 3); }
  bool is_pk(const Value& v) const { return tagged(v, pk_tag_, 2); }
  bool is_sk(const Value& v) const { return tagged(v, sk_tag_, 2); }

  /// First / second component of a tagged term.
  const Value& arg(const Value& v, std::size_t i) const {
    return v.as_tuple().at(i + 1);
  }

  /// Dolev-Yao closure of `knowledge`, composing only terms in `universe`.
  /// Decomposition (unpairing, decryption with known keys) is unrestricted;
  /// composition (pairing, encrypting, MACing) is bounded by the universe.
  std::set<Value> close(std::set<Value> knowledge,
                        const std::vector<Value>& universe) const;

  /// Can `goal` be derived from `knowledge` (within `universe`)?
  bool derivable(const std::set<Value>& knowledge,
                 const std::vector<Value>& universe, const Value& goal) const {
    return close({knowledge.begin(), knowledge.end()}, universe)
        .contains(goal);
  }

  Context& context() const { return ctx_; }

 private:
  bool tagged(const Value& v, Symbol tag, std::size_t arity) const {
    return v.is_tuple() && v.as_tuple().size() == arity &&
           v.as_tuple()[0].is_sym() && v.as_tuple()[0].as_sym() == tag;
  }

  Context& ctx_;
  Symbol pair_tag_;
  Symbol senc_tag_;
  Symbol aenc_tag_;
  Symbol mac_tag_;
  Symbol pk_tag_;
  Symbol sk_tag_;
};

}  // namespace ecucsp::security
