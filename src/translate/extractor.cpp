#include "translate/extractor.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "store/digest.hpp"

namespace ecucsp::translate {

using capl::CaplProgram;
using capl::CaplStmt;
using capl::CaplStmtPtr;
using capl::CaplType;
using capl::CExprKind;
using capl::CStmtKind;
using capl::EventHandler;

stencil::TemplateGroup default_templates() {
  stencil::TemplateGroup g;
  g.define("header",
           "-- $title$\n"
           "-- CSPm implementation model automatically generated from CAPL\n"
           "-- application code by the ecucsp model extractor.\n");
  g.define("datatype", "datatype $name$ = $ctors; separator=\" | \"$\n");
  g.define("msg_channels", "channel $channels; separator=\", \"$ : $type$\n");
  g.define("timer_channels",
           "channel setTimer, cancelTimer, timeout : $type$\n");
  g.define("key_channel", "channel key : $type$\n");
  g.define("definition", "$name$ = $body$\n");
  g.define("composition",
           "$name$ = $operands; separator=\" [| sharedEvents |] \"$\n");
  g.define("shared_events", "sharedEvents = {| $channels; separator=\", \"$ |}\n");
  return g;
}

namespace {

class Extractor {
 public:
  Extractor(const CaplProgram& program, const ExtractorOptions& options)
      : prog_(program), opt_(options), tpl_(default_templates()) {}

  ExtractionResult run() {
    collect_names();
    build_definitions();
    emit();
    return std::move(result_);
  }

  // Accessors used by extract_system for merged declarations.
  const std::vector<std::string>& messages() const { return result_.messages; }

 private:
  void warn(const std::string& w) {
    if (std::find(result_.warnings.begin(), result_.warnings.end(), w) ==
        result_.warnings.end()) {
      result_.warnings.push_back(w);
    }
  }

  void add_message(const std::string& ctor) {
    if (std::find(result_.messages.begin(), result_.messages.end(), ctor) ==
        result_.messages.end()) {
      result_.messages.push_back(ctor);
    }
  }

  /// MsgId constructor for a declared message variable.
  std::string ctor_for_var(const std::string& var_name) {
    if (auto it = var_ctor_.find(var_name); it != var_ctor_.end()) {
      return it->second;
    }
    return {};
  }

  std::string ctor_for_id(std::int64_t id) {
    if (opt_.db) {
      if (const can::DbcMessage* m =
              opt_.db->find_message(static_cast<can::CanId>(id))) {
        return m->name;
      }
    }
    if (opt_.shared_id_names) {
      if (auto it = opt_.shared_id_names->find(id);
          it != opt_.shared_id_names->end()) {
        return it->second;
      }
    }
    for (const auto& [var, ctor] : var_ctor_) {
      if (var_ids_.at(var) == id) return ctor;
    }
    char buf[24];
    std::snprintf(buf, sizeof buf, "msg0x%llX",
                  static_cast<unsigned long long>(id));
    return buf;
  }

  void collect_names() {
    for (const capl::VarDeclTop& v : prog_.variables) {
      switch (v.type) {
        case CaplType::Message: {
          std::string ctor = v.msg_name;
          if (ctor.empty() && opt_.db && v.msg_id >= 0) {
            if (const can::DbcMessage* m = opt_.db->find_message(
                    static_cast<can::CanId>(v.msg_id))) {
              ctor = m->name;
            }
          }
          if (ctor.empty() && opt_.shared_id_names && v.msg_id >= 0) {
            if (auto it = opt_.shared_id_names->find(v.msg_id);
                it != opt_.shared_id_names->end()) {
              ctor = it->second;
            }
          }
          if (ctor.empty()) ctor = v.name;
          var_ctor_[v.name] = ctor;
          var_ids_[v.name] = v.msg_id;
          add_message(ctor);
          break;
        }
        case CaplType::MsTimer:
        case CaplType::Timer: {
          const std::string ctor = opt_.node_name + "_" + v.name;
          timer_ctor_[v.name] = ctor;
          result_.timers.push_back(ctor);
          break;
        }
        default:
          break;
      }
    }
    for (const EventHandler& h : prog_.handlers) {
      if (h.kind == EventHandler::Kind::Message && !h.any_message) {
        add_message(h.msg_id >= 0 ? ctor_for_id(h.msg_id) : h.target);
      } else if (h.kind == EventHandler::Kind::Key && !h.target.empty()) {
        const std::string ctor = std::string("k_") + h.target[0];
        if (std::find(result_.keys.begin(), result_.keys.end(), ctor) ==
            result_.keys.end()) {
          result_.keys.push_back(ctor);
        }
      }
    }
  }

  /// Translate a statement list into a CSPm process expression that performs
  /// the statements' events and then behaves as `cont`.
  std::string chain(const std::vector<CaplStmtPtr>& stmts, std::string cont,
                    int depth) {
    std::string cur = std::move(cont);
    for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
      cur = one(**it, std::move(cur), depth);
    }
    return cur;
  }

  std::string one(const CaplStmt& s, std::string cont, int depth) {
    switch (s.kind) {
      case CStmtKind::Block:
        return chain(s.body, std::move(cont), depth);

      case CStmtKind::ExprStmt: {
        const capl::CaplExpr& e = *s.expr;
        if (e.kind != CExprKind::Call) return cont;
        if (e.text == "output") {
          std::string ctor;
          if (!e.args.empty() && e.args[0]->kind == CExprKind::Name) {
            ctor = ctor_for_var(e.args[0]->text);
          }
          if (ctor.empty()) {
            warn("output() of a non-variable message abstracted to an "
                 "unnamed transmission");
            return cont;
          }
          return opt_.tx_channel + "." + ctor + " -> (" + cont + ")";
        }
        if (e.text == "setTimer" || e.text == "cancelTimer") {
          if (e.args.empty() || e.args[0]->kind != CExprKind::Name) return cont;
          const auto it = timer_ctor_.find(e.args[0]->text);
          if (it == timer_ctor_.end()) return cont;
          const char* chan = e.text == "setTimer" ? "setTimer" : "cancelTimer";
          return std::string(chan) + "." + it->second + " -> (" + cont + ")";
        }
        if (e.text == "write" || e.text == "timeNow") {
          return cont;  // no observable network behaviour
        }
        if (const capl::FunctionDecl* fn = prog_.find_function(e.text)) {
          if (depth <= 0) {
            warn("recursive/deep call of '" + e.text +
                 "' truncated at the inlining bound");
            return cont;
          }
          std::string inner = chain(fn->body->body, "SKIP", depth - 1);
          if (inner == "SKIP") return cont;
          return "(" + inner + ") ; (" + cont + ")";
        }
        warn("call of unknown function '" + e.text + "' elided");
        return cont;
      }

      case CStmtKind::If: {
        std::string then_p = one(*s.then_branch, "SKIP", depth);
        std::string else_p =
            s.else_branch ? one(*s.else_branch, "SKIP", depth) : "SKIP";
        if (then_p == "SKIP" && else_p == "SKIP") return cont;
        warn("if-condition abstracted to internal choice");
        return "((" + then_p + ") |~| (" + else_p + ")) ; (" + cont + ")";
      }

      case CStmtKind::While:
      case CStmtKind::For: {
        std::string inner = one(*s.loop_body, "SKIP", depth);
        if (inner == "SKIP") return cont;
        warn("loop abstracted to zero-or-more iterations");
        const std::string name =
            opt_.node_name + "_LOOP" + std::to_string(loop_counter_++);
        aux_defs_.emplace_back(
            name, "SKIP |~| ((" + inner + ") ; " + name + ")");
        return name + " ; (" + cont + ")";
      }

      case CStmtKind::Switch: {
        // Condition abstracted: the model may take any arm (fall-through is
        // over-approximated by the suffix from each arm).
        std::vector<std::string> arms;
        for (std::size_t k = 0; k < s.body.size(); ++k) {
          std::string suffix = "SKIP";
          for (std::size_t j = s.body.size(); j > k; --j) {
            suffix = chain(s.body[j - 1]->body, std::move(suffix), depth);
          }
          if (suffix != "SKIP") arms.push_back(std::move(suffix));
        }
        if (arms.empty()) return cont;
        warn("switch abstracted to internal choice over its arms");
        std::string alt = "(" + arms[0] + ")";
        for (std::size_t k = 1; k < arms.size(); ++k) {
          alt += " |~| (" + arms[k] + ")";
        }
        // A switch with no default may also skip every arm.
        alt += " |~| SKIP";
        return "(" + alt + ") ; (" + cont + ")";
      }
      case CStmtKind::Case:
        return chain(s.body, std::move(cont), depth);

      case CStmtKind::Return:
      case CStmtKind::Break:
        if (s.kind == CStmtKind::Return && s.value) {
          warn("early return abstracted (continuation still modelled)");
        }
        return cont;

      case CStmtKind::VarDecl:
      case CStmtKind::Assign:
      case CStmtKind::IncDec:
        return cont;  // data abstraction
    }
    return cont;
  }

  void build_definitions() {
    const std::string run_name = opt_.node_name + "_RUN";
    std::vector<std::string> branches;
    std::set<std::string> handled;

    for (const EventHandler& h : prog_.handlers) {
      switch (h.kind) {
        case EventHandler::Kind::Message: {
          const std::string body = chain(h.body->body, run_name,
                                         opt_.max_inline_depth);
          if (h.any_message) {
            branches.push_back("([] m : MsgId @ " + opt_.rx_channel +
                               ".m -> (" + body + "))");
            for (const std::string& c : result_.messages) handled.insert(c);
          } else {
            const std::string ctor =
                h.msg_id >= 0 ? ctor_for_id(h.msg_id) : h.target;
            branches.push_back(opt_.rx_channel + "." + ctor + " -> (" + body +
                               ")");
            handled.insert(ctor);
          }
          break;
        }
        case EventHandler::Kind::Timer: {
          const auto it = timer_ctor_.find(h.target);
          const std::string ctor = it != timer_ctor_.end()
                                       ? it->second
                                       : opt_.node_name + "_" + h.target;
          const std::string body = chain(h.body->body, run_name,
                                         opt_.max_inline_depth);
          branches.push_back("timeout." + ctor + " -> (" + body + ")");
          warn("timer expiry modelled as an always-enabled timeout event "
               "(untimed CSP)");
          break;
        }
        case EventHandler::Kind::Key: {
          if (h.target.empty()) break;
          const std::string body = chain(h.body->body, run_name,
                                         opt_.max_inline_depth);
          branches.push_back("key.k_" + std::string(1, h.target[0]) + " -> (" +
                             body + ")");
          break;
        }
        case EventHandler::Kind::Start:
        case EventHandler::Kind::StopMeasurement:
          break;
      }
    }

    // Unhandled incoming messages are consumed silently, as a CAN node does.
    if (!result_.messages.empty()) {
      if (handled.empty()) {
        branches.push_back("([] m : MsgId @ " + opt_.rx_channel + ".m -> " +
                           run_name + ")");
      } else if (handled.size() < result_.messages.size()) {
        std::string set = "{";
        bool first = true;
        for (const std::string& c : handled) {
          if (!first) set += ", ";
          first = false;
          set += c;
        }
        set += "}";
        branches.push_back("([] m : diff(MsgId, " + set + ") @ " +
                           opt_.rx_channel + ".m -> " + run_name + ")");
      }
    }

    std::string run_body;
    if (branches.empty()) {
      run_body = "STOP";
    } else {
      for (std::size_t i = 0; i < branches.size(); ++i) {
        if (i) run_body += " [] ";
        run_body += branches[i];
      }
    }

    std::string entry_body = run_name;
    for (const EventHandler& h : prog_.handlers) {
      if (h.kind == EventHandler::Kind::Start) {
        entry_body = chain(h.body->body, run_name, opt_.max_inline_depth);
      }
    }

    defs_.emplace_back(opt_.node_name, entry_body);
    defs_.emplace_back(run_name, run_body);
    for (auto& d : aux_defs_) defs_.push_back(std::move(d));
    aux_defs_.clear();
  }

  void emit() {
    std::string& out = result_.cspm;
    out += tpl_.render("header",
                       {{"title", "Implementation model of node '" +
                                      opt_.node_name + "'"}});
    if (opt_.emit_declarations) {
      if (!result_.messages.empty()) {
        out += tpl_.render("datatype", {{"name", std::string("MsgId")},
                                        {"ctors", result_.messages}});
        std::vector<std::string> chans{opt_.tx_channel};
        if (opt_.rx_channel != opt_.tx_channel) {
          chans.push_back(opt_.rx_channel);
        }
        out += tpl_.render("msg_channels",
                           {{"channels", chans}, {"type", std::string("MsgId")}});
      }
      if (!result_.timers.empty()) {
        out += tpl_.render("datatype", {{"name", std::string("TimerId")},
                                        {"ctors", result_.timers}});
        out += tpl_.render("timer_channels", {{"type", std::string("TimerId")}});
      }
      if (!result_.keys.empty()) {
        out += tpl_.render("datatype",
                           {{"name", std::string("KeyId")}, {"ctors", result_.keys}});
        out += tpl_.render("key_channel", {{"type", std::string("KeyId")}});
      }
    }
    for (const auto& [name, body] : defs_) {
      out += tpl_.render("definition", {{"name", name}, {"body", body}});
    }
  }

  const CaplProgram& prog_;
  const ExtractorOptions& opt_;
  stencil::TemplateGroup tpl_;
  ExtractionResult result_;
  std::map<std::string, std::string> var_ctor_;   // message var -> constructor
  std::map<std::string, std::int64_t> var_ids_;   // message var -> CAN id
  std::map<std::string, std::string> timer_ctor_;  // timer var -> constructor
  std::vector<std::pair<std::string, std::string>> defs_;
  std::vector<std::pair<std::string, std::string>> aux_defs_;
  int loop_counter_ = 0;
};

}  // namespace

ExtractionResult extract_model(const CaplProgram& program,
                               const ExtractorOptions& options) {
  ExtractionResult result = Extractor(program, options).run();
  result.fingerprint = store::digest_bytes(result.cspm).hex();
  return result;
}

ExtractionResult extract_system(const std::vector<SystemNode>& nodes,
                                const std::vector<std::string>& extra_lines) {
  ExtractionResult merged;
  std::vector<ExtractionResult> parts;
  std::set<std::string> channels;

  // Unify CAN-id naming across nodes: a message variable declaration in any
  // node names that id for everyone, so 'on message 0x100' in a peer maps
  // to the same MsgId constructor (a CANdb, when given, still wins).
  std::map<std::int64_t, std::string> shared_ids;
  for (const SystemNode& n : nodes) {
    for (const capl::VarDeclTop& v : n.program->variables) {
      if (v.type == capl::CaplType::Message && v.msg_id >= 0 &&
          v.msg_name.empty()) {
        shared_ids.emplace(v.msg_id, v.name);
      }
    }
  }

  for (const SystemNode& n : nodes) {
    ExtractorOptions o = n.options;
    o.emit_declarations = false;
    o.shared_id_names = &shared_ids;
    parts.push_back(extract_model(*n.program, o));
    channels.insert(o.tx_channel);
    channels.insert(o.rx_channel);
    for (const std::string& m : parts.back().messages) {
      if (std::find(merged.messages.begin(), merged.messages.end(), m) ==
          merged.messages.end()) {
        merged.messages.push_back(m);
      }
    }
    merged.timers.insert(merged.timers.end(), parts.back().timers.begin(),
                         parts.back().timers.end());
    merged.keys.insert(merged.keys.end(), parts.back().keys.begin(),
                       parts.back().keys.end());
    merged.warnings.insert(merged.warnings.end(),
                           parts.back().warnings.begin(),
                           parts.back().warnings.end());
  }

  stencil::TemplateGroup tpl = default_templates();
  std::string& out = merged.cspm;
  out += tpl.render("header", {{"title", std::string("Composed system model")}});
  if (!merged.messages.empty()) {
    out += tpl.render("datatype", {{"name", std::string("MsgId")},
                                   {"ctors", merged.messages}});
    out += tpl.render(
        "msg_channels",
        {{"channels", std::vector<std::string>(channels.begin(), channels.end())},
         {"type", std::string("MsgId")}});
  }
  if (!merged.timers.empty()) {
    out += tpl.render("datatype", {{"name", std::string("TimerId")},
                                   {"ctors", merged.timers}});
    out += tpl.render("timer_channels", {{"type", std::string("TimerId")}});
  }
  if (!merged.keys.empty()) {
    out += tpl.render("datatype",
                      {{"name", std::string("KeyId")}, {"ctors", merged.keys}});
    out += tpl.render("key_channel", {{"type", std::string("KeyId")}});
  }
  for (const ExtractionResult& p : parts) {
    // Strip each part's header comment lines; keep the definitions.
    std::istringstream in(p.cspm);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("--", 0) == 0) continue;
      out += line + "\n";
    }
  }
  out += tpl.render("shared_events",
                    {{"channels", std::vector<std::string>(channels.begin(),
                                                           channels.end())}});
  std::vector<std::string> names;
  names.reserve(nodes.size());
  for (const SystemNode& n : nodes) names.push_back(n.options.node_name);
  out += tpl.render("composition",
                    {{"name", std::string("SYSTEM")}, {"operands", names}});
  for (const std::string& l : extra_lines) out += l + "\n";
  merged.fingerprint = store::digest_bytes(merged.cspm).hex();
  return merged;
}

}  // namespace ecucsp::translate
