#include "translate/dbc_to_cspm.hpp"

#include <algorithm>
#include <cstdint>

namespace ecucsp::translate {

std::string dbc_to_cspm(const can::DbcDatabase& db,
                        const DbcCspmOptions& options) {
  std::string out;
  out += "-- CSPm declarations extracted from CANdb database";
  if (!db.version.empty()) out += " (version \"" + db.version + "\")";
  out += "\n";

  if (db.messages.empty()) {
    out += "-- (database declares no messages)\n";
    return out;
  }

  out += "datatype MsgId = ";
  for (std::size_t i = 0; i < db.messages.size(); ++i) {
    if (i) out += " | ";
    out += db.messages[i].name;
  }
  out += "\n";

  for (const can::DbcMessage& m : db.messages) {
    for (const can::DbcSignal& s : m.signals) {
      // Prefer the declared [min|max] range; fall back to the bit width.
      std::int64_t lo = static_cast<std::int64_t>(s.spec.minimum);
      std::int64_t hi = static_cast<std::int64_t>(s.spec.maximum);
      if (hi <= lo) {
        lo = 0;
        hi = s.spec.length >= 63
                 ? static_cast<std::int64_t>(options.max_domain) - 1
                 : (1LL << s.spec.length) - 1;
      }
      bool clamped = false;
      if (static_cast<std::uint64_t>(hi - lo + 1) > options.max_domain) {
        hi = lo + static_cast<std::int64_t>(options.max_domain) - 1;
        clamped = true;
      }
      out += "nametype " + m.name + "_" + s.spec.name + " = {" +
             std::to_string(lo) + ".." + std::to_string(hi) + "}";
      if (clamped) {
        out += "  -- clamped from " + std::to_string(s.spec.length) +
               "-bit range for finite checking";
      }
      out += "\n";
    }
  }

  for (const can::DbcMessage& m : db.messages) {
    out += "channel " + options.channel_prefix + m.name;
    if (!m.signals.empty()) {
      out += " : ";
      for (std::size_t i = 0; i < m.signals.size(); ++i) {
        if (i) out += ".";
        out += m.name + "_" + m.signals[i].spec.name;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ecucsp::translate
