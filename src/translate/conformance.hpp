// Conformance testing: does a *real execution* of the CAPL nodes on the
// simulated CAN network stay within the behaviour of the extracted CSP
// model?
//
// The extraction (extractor.hpp) is an over-approximation, so every
// execution trace of the code should map to a trace of the model. This
// module maps a captured bus trace (CanFrames, or a Vector ASC log) to
// abstract CSP events and runs the membership check — turning the paper's
// one-way translation into a checkable round trip, and providing the
// execution-level "systematic security testing" hook of the title.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "can/frame.hpp"
#include "cspm/eval.hpp"
#include "refine/check.hpp"

namespace ecucsp::translate {

struct ConformanceOptions {
  /// Resolves a CAN id to a MsgId constructor name. Filled from the CANdb
  /// and/or explicit entries; ids without a mapping fail loudly.
  std::map<can::CanId, std::string> id_to_ctor;
  /// Channel carrying frames transmitted by the "tx side" ids listed below
  /// (default "send"); every other frame maps to `rx_channel`.
  std::string tx_channel = "send";
  std::string rx_channel = "rec";
  /// CAN ids whose frames travel on tx_channel (e.g. all VMG-sent ids).
  std::vector<can::CanId> tx_ids;
};

/// Populate id_to_ctor from a CANdb database (message names become MsgId
/// constructors, as the extractor does).
void map_ids_from_dbc(ConformanceOptions& options, const can::DbcDatabase& db);

/// Map a bus trace to abstract events in `ctx` (which must already hold the
/// extracted model's channels/datatype — load the generated CSPm first).
/// Throws ModelError for unmapped ids or unknown constructors.
std::vector<EventId> abstract_trace(Context& ctx,
                                    const std::vector<can::CanFrame>& frames,
                                    const ConformanceOptions& options);

struct ConformanceResult {
  bool conforms = false;
  std::vector<EventId> abstract_events;
  TraceMembership membership;

  std::string describe(const Context& ctx) const;
};

/// The full check: abstract the frames, test membership in `model`'s traces
/// with all non-network events (timers, keys, internal) hidden.
ConformanceResult check_conformance(Context& ctx, ProcessRef model,
                                    const std::vector<can::CanFrame>& frames,
                                    const ConformanceOptions& options);

}  // namespace ecucsp::translate
