// "stencil": a StringTemplate-flavoured text template engine.
//
// The paper's model extractor uses ANTLR's StringTemplate to "separate
// application logic from display format definitions" (Section IV-C); this
// is the same idea in C++. Templates contain $placeholders$; attributes are
// strings or lists of strings. A list placeholder may carry a separator:
//   $messages; separator=", "$
// "$$" renders a literal dollar sign. Missing attributes render empty.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ecucsp::stencil {

using Attribute = std::variant<std::string, std::vector<std::string>>;
using Attributes = std::map<std::string, Attribute>;

class TemplateError : public std::runtime_error {
 public:
  explicit TemplateError(const std::string& what) : std::runtime_error(what) {}
};

class Template {
 public:
  explicit Template(std::string text);

  std::string render(const Attributes& attrs) const;

  /// Placeholder names referenced by the template (for validation).
  std::vector<std::string> placeholders() const;

 private:
  struct Chunk {
    bool literal = true;
    std::string text;       // literal text, or attribute name
    std::string separator;  // list separator (default "")
  };
  std::vector<Chunk> chunks_;
};

/// A named collection of templates (StringTemplate's "group" concept).
class TemplateGroup {
 public:
  void define(std::string name, std::string text);
  bool contains(const std::string& name) const;
  std::string render(const std::string& name, const Attributes& attrs) const;

 private:
  std::map<std::string, Template> templates_;
};

}  // namespace ecucsp::stencil
