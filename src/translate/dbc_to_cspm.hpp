// CANdb -> CSPm declaration generator.
//
// The paper's Section VIII-A names this as the "second parser and model
// generator ... to handle CAN database files, extracting message formats as
// CSPm declarations for data types, name types, and data ranges".
//
// For a database with messages M1..Mn this emits:
//   datatype MsgId = M1 | ... | Mn
//   nametype <Msg>_<Signal> = {lo..hi}     (one per signal, range-clamped)
//   channel can_<Msg> : <Msg>_<Sig1>.<Msg>_<Sig2>...
// so that a CSPm model can speak about concrete payload values.
#pragma once

#include <string>

#include "can/dbc.hpp"

namespace ecucsp::translate {

struct DbcCspmOptions {
  /// Signals wider than this many values are clamped to {0..max_domain-1}
  /// (FDR-style models need small finite domains); a comment records it.
  std::size_t max_domain = 256;
  std::string channel_prefix = "can_";
};

std::string dbc_to_cspm(const can::DbcDatabase& db,
                        const DbcCspmOptions& options = {});

}  // namespace ecucsp::translate
