#include "translate/conformance.hpp"

#include <algorithm>

namespace ecucsp::translate {

void map_ids_from_dbc(ConformanceOptions& options, const can::DbcDatabase& db) {
  for (const can::DbcMessage& m : db.messages) {
    options.id_to_ctor.emplace(m.id, m.name);
  }
}

std::vector<EventId> abstract_trace(Context& ctx,
                                    const std::vector<can::CanFrame>& frames,
                                    const ConformanceOptions& options) {
  std::vector<EventId> out;
  out.reserve(frames.size());
  for (const can::CanFrame& f : frames) {
    const auto it = options.id_to_ctor.find(f.id);
    if (it == options.id_to_ctor.end()) {
      throw ModelError("no MsgId constructor mapped for CAN id " +
                       std::to_string(f.id));
    }
    const bool tx = std::find(options.tx_ids.begin(), options.tx_ids.end(),
                              f.id) != options.tx_ids.end();
    const std::string& channel = tx ? options.tx_channel : options.rx_channel;
    out.push_back(
        ctx.event(channel, {Value::symbol(ctx.sym(it->second))}));
  }
  return out;
}

std::string ConformanceResult::describe(const Context& ctx) const {
  if (conforms) {
    return "execution conforms: " + format_trace(ctx, abstract_events) +
           " is a trace of the extracted model";
  }
  std::string out = "execution DEVIATES from the model after " +
                    std::to_string(membership.accepted_prefix) + " event(s)";
  if (membership.accepted_prefix < abstract_events.size()) {
    out += "; observed '" +
           ctx.event_name(abstract_events[membership.accepted_prefix]) + "'";
  }
  out += "; the model offers {";
  bool first = true;
  for (const EventId e : membership.offered) {
    if (!first) out += ", ";
    first = false;
    out += ctx.event_name(e);
  }
  out += "}";
  return out;
}

ConformanceResult check_conformance(Context& ctx, ProcessRef model,
                                    const std::vector<can::CanFrame>& frames,
                                    const ConformanceOptions& options) {
  ConformanceResult result;
  result.abstract_events = abstract_trace(ctx, frames, options);
  // Hide everything that is not network traffic (timer bookkeeping, key
  // events, install markers, ...): the bus log only observes frames.
  EventSet network;
  for (const std::string& chan : {options.tx_channel, options.rx_channel}) {
    if (auto id = ctx.find_channel(chan)) {
      network = network.set_union(ctx.events_of(*id));
    }
  }
  const ProcessRef projected =
      ctx.hide(model, ctx.alphabet().set_difference(network));
  result.membership = is_trace_of(ctx, projected, result.abstract_events);
  result.conforms = result.membership.member;
  return result;
}

}  // namespace ecucsp::translate
