// The model extractor: CAPL application code -> CSPm implementation model.
//
// This is the paper's core contribution (Figure 1's "innovative model
// transformation component"): a pipeline of lexing, parsing, AST walking
// and template-driven generation that turns an ECU application written in
// CAPL into a machine-readable CSP process for the refinement checker.
//
// Translation scheme (an over-approximating abstraction — the extracted
// model can do every event sequence the code can, plus possibly more, so a
// spec that the model refines is also refined by the code):
//   * message declarations            -> a MsgId datatype + send/rec channels
//   * output(m)                       -> tx.<msg> -> ...
//   * 'on message X { body }'         -> rx.<X> -> BODY ; NODE
//   * 'on start { body }'             -> NODE_INIT = BODY ; NODE
//   * setTimer/cancelTimer/'on timer' -> setTimer/cancelTimer/timeout events
//   * 'on key'                        -> key.<char> events
//   * if/else                         -> internal choice (condition abstracted)
//   * while/for                       -> zero-or-more iterations (|~| loop)
//   * user function calls             -> inlined (bounded depth)
//   * assignments, write(), data      -> elided (data abstraction)
// Unhandled incoming messages are consumed and ignored, as on a real CAN
// node. Every abstraction taken is reported in `warnings`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "capl/ast.hpp"
#include "translate/stencil.hpp"

namespace ecucsp::translate {

struct ExtractorOptions {
  std::string node_name = "NODE";  // CSPm process name
  std::string tx_channel = "send";  // channel this node outputs on
  std::string rx_channel = "rec";   // channel this node receives on
  const can::DbcDatabase* db = nullptr;
  bool emit_declarations = true;  // datatype/channel decls (off when composing)
  int max_inline_depth = 4;       // user-function inlining bound
  /// Shared CAN-id -> constructor names. extract_system fills this from all
  /// nodes' message declarations so that one id gets one MsgId constructor
  /// across the composition even without a CANdb database.
  const std::map<std::int64_t, std::string>* shared_id_names = nullptr;
};

struct ExtractionResult {
  std::string cspm;                    // the generated script text
  std::vector<std::string> messages;   // MsgId constructors
  std::vector<std::string> timers;     // TimerId constructors
  std::vector<std::string> keys;       // KeyId constructors
  std::vector<std::string> warnings;   // abstractions taken
};

/// Extract one node's implementation model.
ExtractionResult extract_model(const capl::CaplProgram& program,
                               const ExtractorOptions& options);

/// Extract a composed system model from several CAPL nodes sharing one CAN
/// network: merged declarations, one process per node, and
///   SYSTEM = N1 [|shared|] N2 [|shared|] ...
/// `extra_lines` (e.g. assert declarations) are appended verbatim.
struct SystemNode {
  const capl::CaplProgram* program = nullptr;
  ExtractorOptions options;
};
ExtractionResult extract_system(const std::vector<SystemNode>& nodes,
                                const std::vector<std::string>& extra_lines = {});

/// The default template group used for generation; exposed so tools can
/// re-skin the output (the paper notes templates make the translator
/// re-targetable to other process algebras).
stencil::TemplateGroup default_templates();

}  // namespace ecucsp::translate
