#include "translate/stencil.hpp"

namespace ecucsp::stencil {

Template::Template(std::string text) {
  std::string literal;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '$') {
      literal += text[i++];
      continue;
    }
    // "$$" is an escaped dollar.
    if (i + 1 < text.size() && text[i + 1] == '$') {
      literal += '$';
      i += 2;
      continue;
    }
    const std::size_t close = text.find('$', i + 1);
    if (close == std::string::npos) {
      throw TemplateError("unterminated placeholder in template");
    }
    if (!literal.empty()) {
      chunks_.push_back({true, literal, ""});
      literal.clear();
    }
    std::string body = text.substr(i + 1, close - i - 1);
    Chunk chunk;
    chunk.literal = false;
    // Optional "; separator=\"...\"" suffix.
    if (const std::size_t semi = body.find(';'); semi != std::string::npos) {
      std::string opts = body.substr(semi + 1);
      body = body.substr(0, semi);
      const std::size_t eq = opts.find('=');
      if (eq == std::string::npos) {
        throw TemplateError("malformed placeholder option: " + opts);
      }
      std::string key = opts.substr(0, eq);
      std::string value = opts.substr(eq + 1);
      const auto trim = [](std::string& s) {
        while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
          s.erase(s.begin());
        }
        while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
          s.pop_back();
        }
      };
      trim(key);
      trim(value);
      if (key != "separator") {
        throw TemplateError("unknown placeholder option '" + key + "'");
      }
      if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
        throw TemplateError("separator value must be quoted");
      }
      chunk.separator = value.substr(1, value.size() - 2);
    }
    // Trim the attribute name.
    while (!body.empty() && (body.front() == ' ')) body.erase(body.begin());
    while (!body.empty() && (body.back() == ' ')) body.pop_back();
    if (body.empty()) throw TemplateError("empty placeholder");
    chunk.text = body;
    chunks_.push_back(std::move(chunk));
    i = close + 1;
  }
  if (!literal.empty()) chunks_.push_back({true, literal, ""});
}

std::string Template::render(const Attributes& attrs) const {
  std::string out;
  for (const Chunk& c : chunks_) {
    if (c.literal) {
      out += c.text;
      continue;
    }
    const auto it = attrs.find(c.text);
    if (it == attrs.end()) continue;  // missing attributes render empty
    if (const auto* s = std::get_if<std::string>(&it->second)) {
      out += *s;
    } else {
      const auto& list = std::get<std::vector<std::string>>(it->second);
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i) out += c.separator;
        out += list[i];
      }
    }
  }
  return out;
}

std::vector<std::string> Template::placeholders() const {
  std::vector<std::string> out;
  for (const Chunk& c : chunks_) {
    if (!c.literal) out.push_back(c.text);
  }
  return out;
}

void TemplateGroup::define(std::string name, std::string text) {
  templates_.insert_or_assign(std::move(name), Template(std::move(text)));
}

bool TemplateGroup::contains(const std::string& name) const {
  return templates_.contains(name);
}

std::string TemplateGroup::render(const std::string& name,
                                  const Attributes& attrs) const {
  const auto it = templates_.find(name);
  if (it == templates_.end()) {
    throw TemplateError("no template named '" + name + "'");
  }
  return it->second.render(attrs);
}

}  // namespace ecucsp::stencil
