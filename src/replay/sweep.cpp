#include "replay/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "verify/scheduler.hpp"

namespace ecucsp::replay {

DecodedTrace decode_trace(ParsedLog& log, const conform::FrameCodec& codec) {
  DecodedTrace out;

  // Pre-resolve every CAN id the codec knows to its interned event id(s)
  // once, so the per-record loop is a map probe plus (for the MAC id) one
  // byte compare — the decode matches FrameCodec::abstract_frame exactly
  // without per-frame string assembly.
  struct IdEvents {
    std::uint32_t good = 0;
    std::uint32_t bad = 0;  // == good unless the id carries the MAC tag
  };
  std::map<can::CanId, IdEvents> events_of;
  for (const auto& [id, ctor] : codec.ctor_of) {
    const bool tx = std::find(codec.tx_ids.begin(), codec.tx_ids.end(), id) !=
                    codec.tx_ids.end();
    const std::string& channel = tx ? codec.tx_channel : codec.rx_channel;
    IdEvents ev;
    ev.good = static_cast<std::uint32_t>(out.names.size());
    out.names.push_back(channel + "." + ctor);
    ev.bad = ev.good;
    if (codec.mac_id && id == *codec.mac_id) {
      ev.bad = static_cast<std::uint32_t>(out.names.size());
      out.names.push_back(channel + "." + ctor + "Bad");
    }
    events_of.emplace(id, ev);
  }

  out.events.reserve(log.records.size());
  out.record_of.reserve(log.records.size());
  for (std::size_t i = 0; i < log.records.size(); ++i) {
    const LogRecord& r = log.records[i];
    const auto it = events_of.find(r.frame.id);
    if (it == events_of.end()) {
      char idbuf[16];
      std::snprintf(idbuf, sizeof(idbuf), "%X", r.frame.id);
      log.add_diagnostic({r.file, r.line, r.byte_offset, DiagSeverity::Error,
                          std::string("unknown CAN id 0x") + idbuf});
      continue;
    }
    const IdEvents& ev = it->second;
    const bool bad_tag =
        codec.mac_id && r.frame.id == *codec.mac_id &&
        r.frame.byte(7) !=
            static_cast<std::uint8_t>(codec.mac_key ^ r.frame.byte(0));
    out.events.push_back(bad_tag ? ev.bad : ev.good);
    out.record_of.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

CompiledOracle compile_for_trace(const conform::TraceOracle& oracle,
                                 const std::vector<std::string>& names) {
  CompiledOracle out;
  out.source = &oracle;
  out.nodes = static_cast<std::uint32_t>(
      std::max<std::size_t>(oracle.automaton.succ.size(),
                            static_cast<std::size_t>(oracle.automaton.root) + 1));
  out.n_events = static_cast<std::uint32_t>(names.size());
  out.step.assign(static_cast<std::size_t>(out.nodes) * out.n_events, 0);
  for (std::uint32_t e = 0; e < out.n_events; ++e) {
    const std::string& name = names[e];
    std::uint32_t column;
    if (oracle.ignored.contains(name)) {
      column = CompiledOracle::kSkip;
    } else if (!oracle.alphabet.contains(name)) {
      column = oracle.strict ? CompiledOracle::kRejectAlphabet
                             : CompiledOracle::kSkip;
    } else {
      column = 0;  // per-node edge lookup below
    }
    for (std::uint32_t n = 0; n < out.nodes; ++n) {
      std::uint32_t v = column;
      if (column == 0) {
        const conform::SymEdge* edge =
            n < oracle.automaton.succ.size() ? oracle.automaton.edge(n, name)
                                             : nullptr;
        v = edge != nullptr ? edge->target : CompiledOracle::kRejectStuck;
      }
      out.step[static_cast<std::size_t>(n) * out.n_events + e] = v;
    }
  }
  return out;
}

namespace {

/// Outcome of walking one chunk from one start node: the end node plus the
/// divergences encountered (global event indices), capped at the sweep's
/// max_diverge with a non-silent overflow flag.
struct StartOutcome {
  std::uint32_t end = 0;
  bool more = false;
  std::vector<SweepDivergence> divergences;
};

StartOutcome walk_chunk(const CompiledOracle& o, const std::uint32_t* events,
                        std::size_t count, std::size_t base,
                        std::uint32_t from, std::size_t cap) {
  StartOutcome so;
  so.end = from;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t v = o.at(so.end, events[i]);
    if (v == CompiledOracle::kSkip) continue;
    if (v >= CompiledOracle::kRejectStuck) {
      // Skip-and-continue: report, leave the node unchanged, move on.
      if (so.divergences.size() < cap) {
        so.divergences.push_back(
            {base + i, so.end, v == CompiledOracle::kRejectAlphabet});
      } else {
        so.more = true;
      }
      continue;
    }
    so.end = v;
  }
  return so;
}

}  // namespace

std::vector<OracleSweep> sweep_trace(const std::vector<CompiledOracle>& oracles,
                                     const std::vector<std::uint32_t>& events,
                                     const SweepOptions& opt,
                                     verify::VerifyScheduler& sched) {
  std::vector<OracleSweep> sweeps(oracles.size());
  if (events.empty() || oracles.empty()) return sweeps;

  const std::size_t chunk =
      opt.chunk == 0 ? events.size() : std::max<std::size_t>(1, opt.chunk);
  const std::size_t n_chunks = (events.size() + chunk - 1) / chunk;
  const std::size_t cap = std::max<std::size_t>(1, opt.max_diverge);

  // chunk_maps[c][oi][node] — the chunk's start-node -> outcome map. Chunk 0
  // only ever starts at the root, so only that slot is computed there.
  std::vector<std::vector<std::vector<StartOutcome>>> chunk_maps(n_chunks);

  const auto eval_chunk = [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, events.size());
    auto& per_oracle = chunk_maps[c];
    per_oracle.resize(oracles.size());
    for (std::size_t oi = 0; oi < oracles.size(); ++oi) {
      const CompiledOracle& o = oracles[oi];
      per_oracle[oi].resize(o.nodes);
      if (c == 0) {
        const std::uint32_t root = o.source->automaton.root;
        per_oracle[oi][root] =
            walk_chunk(o, events.data() + lo, hi - lo, lo, root, cap);
      } else {
        for (std::uint32_t n = 0; n < o.nodes; ++n) {
          per_oracle[oi][n] =
              walk_chunk(o, events.data() + lo, hi - lo, lo, n, cap);
        }
      }
    }
  };

  if (sched.jobs() <= 1 || n_chunks <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) eval_chunk(c);
  } else {
    std::vector<verify::CheckTask> tasks(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      tasks[c].name = "sweep-chunk-" + std::to_string(c);
      tasks[c].custom = [&eval_chunk, c](CancelToken&) -> verify::RenderedCheck {
        eval_chunk(c);
        verify::RenderedCheck ok;
        ok.result.passed = true;
        return ok;
      };
    }
    sched.run(tasks);
  }

  // Sequential fold: thread the real oracle state through the per-chunk
  // maps in chunk order. Chunk results depend only on the chunk contents
  // and the (fixed) chunk size, and this fold is sequential, so the sweep
  // output is independent of worker count and of how many workers the
  // chunks landed on.
  for (std::size_t oi = 0; oi < oracles.size(); ++oi) {
    OracleSweep& sw = sweeps[oi];
    std::uint32_t node = oracles[oi].source->automaton.root;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const StartOutcome& so = chunk_maps[c][oi][node];
      for (const SweepDivergence& d : so.divergences) {
        if (sw.divergences.size() < cap) {
          sw.divergences.push_back(d);
        } else {
          sw.truncated = true;
        }
      }
      if (so.more) sw.truncated = true;
      node = so.end;
    }
  }
  return sweeps;
}

}  // namespace ecucsp::replay
