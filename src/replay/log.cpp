#include "replay/log.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <system_error>

#include "can/candump.hpp"
#include "verify/scheduler.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ECUCSP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ECUCSP_HAVE_MMAP 0
#endif

#include <fstream>

namespace ecucsp::replay {

std::string_view to_string(DiagSeverity s) {
  return s == DiagSeverity::Error ? "error" : "warning";
}

void ParsedLog::add_diagnostic(LogDiagnostic d) {
  ++diagnostic_count;
  if (diagnostics.size() < kMaxStoredDiagnostics) {
    diagnostics.push_back(std::move(d));
  }
}

// --- MappedFile --------------------------------------------------------------

MappedFile::MappedFile(const std::filesystem::path& path) {
#if ECUCSP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open log file '" + path.string() + "'");
  }
  struct stat st{};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      mapped_ = p;
      mapped_size_ = static_cast<std::size_t>(st.st_size);
      view_ = std::string_view(static_cast<const char*>(p), mapped_size_);
      ::close(fd);
      return;
    }
  }
  // Bounded-read fallback: not a regular file, empty, or mmap refused.
  if (st.st_size == 0 && S_ISREG(st.st_mode)) {
    ::close(fd);
    view_ = std::string_view();
    return;
  }
  constexpr std::size_t kChunk = 1u << 20;
  std::string buf(kChunk, '\0');
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("cannot read log file '" + path.string() + "'");
    }
    if (n == 0) break;
    fallback_.append(buf.data(), static_cast<std::size_t>(n));
  }
  ::close(fd);
  view_ = fallback_;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open log file '" + path.string() + "'");
  }
  constexpr std::size_t kChunk = 1u << 20;
  std::string buf(kChunk, '\0');
  while (in.read(buf.data(), static_cast<std::streamsize>(buf.size())) ||
         in.gcount() > 0) {
    fallback_.append(buf.data(), static_cast<std::size_t>(in.gcount()));
  }
  view_ = fallback_;
#endif
}

MappedFile::~MappedFile() {
#if ECUCSP_HAVE_MMAP
  if (mapped_ != nullptr) ::munmap(mapped_, mapped_size_);
#endif
}

// --- scanning ----------------------------------------------------------------

namespace {

/// Output of one byte-range scan; line numbers and channel indices are
/// chunk-local until the merge step rebases them.
struct ChunkScan {
  std::vector<LogRecord> records;
  std::vector<std::string> channels;
  std::vector<LogDiagnostic> diagnostics;
  std::size_t lines = 0;
};

ChunkScan scan_chunk(std::string_view text, std::uint32_t file,
                     std::uint64_t base_offset) {
  ChunkScan out;
  std::map<std::string, std::uint16_t> channel_of;
  std::size_t pos = 0;
  std::string error;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    const std::uint64_t offset = base_offset + pos;
    ++out.lines;
    const std::uint32_t lineno = static_cast<std::uint32_t>(out.lines);
    pos = eol + 1;

    // Blank lines and '#' comments are structure, not evidence.
    std::string_view body = line;
    while (!body.empty() && (body.front() == ' ' || body.front() == '\t')) {
      body.remove_prefix(1);
    }
    if (body.empty() || body == "\r" || body.front() == '#') continue;

    const auto rec = can::parse_candump_line(line, &error);
    if (!rec) {
      out.diagnostics.push_back(
          {file, lineno, offset, DiagSeverity::Error, error});
      continue;
    }
    LogRecord r;
    r.frame = rec->frame;
    r.file = file;
    r.line = lineno;
    r.byte_offset = offset;
    auto [it, inserted] = channel_of.try_emplace(
        rec->channel, static_cast<std::uint16_t>(out.channels.size()));
    if (inserted) out.channels.push_back(rec->channel);
    r.channel = it->second;
    out.records.push_back(r);
  }
  return out;
}

/// Rebase one chunk's records/diagnostics into the shared log: global line
/// numbers, global channel indices.
void absorb_chunk(ChunkScan&& chunk, std::size_t line_base, ParsedLog& out) {
  std::vector<std::uint16_t> channel_map(chunk.channels.size());
  for (std::size_t i = 0; i < chunk.channels.size(); ++i) {
    const auto it = std::find(out.channels.begin(), out.channels.end(),
                              chunk.channels[i]);
    if (it != out.channels.end()) {
      channel_map[i] = static_cast<std::uint16_t>(it - out.channels.begin());
    } else {
      channel_map[i] = static_cast<std::uint16_t>(out.channels.size());
      out.channels.push_back(chunk.channels[i]);
    }
  }
  for (LogRecord& r : chunk.records) {
    r.line += static_cast<std::uint32_t>(line_base);
    r.channel = channel_map[r.channel];
    out.records.push_back(r);
  }
  for (LogDiagnostic& d : chunk.diagnostics) {
    d.line += static_cast<std::uint32_t>(line_base);
    out.add_diagnostic(std::move(d));
  }
  out.lines += chunk.lines;
}

}  // namespace

void scan_candump(std::string_view text, std::uint32_t file, ParsedLog& out,
                  verify::VerifyScheduler* sched) {
  if (text.empty()) {
    out.add_diagnostic({file, 0, 0, DiagSeverity::Error, "empty log file"});
    return;
  }

  // Cut into byte ranges at newline boundaries. The split is purely a
  // parallelism decision: per-line parsing is split-invariant, so any
  // chunking yields identical output once the chunks are absorbed in order.
  constexpr std::size_t kMinChunkBytes = 1u << 20;
  const unsigned workers = sched != nullptr ? sched->jobs() : 1;
  const std::size_t chunks =
      std::min<std::size_t>(workers * 4, text.size() / kMinChunkBytes + 1);
  if (sched == nullptr || workers <= 1 || chunks <= 1) {
    absorb_chunk(scan_chunk(text, file, 0), /*line_base=*/0, out);
    return;
  }

  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // [lo, hi)
  std::size_t lo = 0;
  for (std::size_t c = 0; c < chunks && lo < text.size(); ++c) {
    std::size_t hi = (c + 1 == chunks)
                         ? text.size()
                         : lo + std::max<std::size_t>(
                                    1, (text.size() - lo) / (chunks - c));
    if (hi < text.size()) {
      const std::size_t nl = text.find('\n', hi);
      hi = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    ranges.emplace_back(lo, hi);
    lo = hi;
  }

  std::vector<ChunkScan> results(ranges.size());
  std::vector<verify::CheckTask> tasks(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    tasks[i].name = "scan-chunk-" + std::to_string(i);
    tasks[i].custom = [&, i](CancelToken&) -> verify::RenderedCheck {
      const auto [clo, chi] = ranges[i];
      results[i] = scan_chunk(text.substr(clo, chi - clo), file, clo);
      verify::RenderedCheck ok;
      ok.result.passed = true;
      return ok;
    };
  }
  sched->run(tasks);

  // Absorb in range order; rebase each chunk's local line numbers onto the
  // lines already absorbed *of this file*, so numbering matches a
  // sequential scan exactly.
  std::size_t file_lines = 0;
  for (ChunkScan& chunk : results) {
    const std::size_t chunk_lines = chunk.lines;
    absorb_chunk(std::move(chunk), file_lines, out);
    file_lines += chunk_lines;
  }
}

void finalize_merge(ParsedLog& log) {
  // Timestamp regressions within one file: the recorder's clock stepped
  // back (or the log was concatenated out of order). The record is kept —
  // the merge sort below puts it where its timestamp says — but the
  // regression itself is evidence worth surfacing.
  std::uint32_t prev_file = 0xffffffffu;
  std::uint64_t prev_ts = 0;
  for (const LogRecord& r : log.records) {
    if (r.file != prev_file) {
      prev_file = r.file;
      prev_ts = r.frame.timestamp_us;
      continue;
    }
    if (r.frame.timestamp_us < prev_ts) {
      log.add_diagnostic({r.file, r.line, r.byte_offset, DiagSeverity::Warning,
                          "timestamp out of order within this file"});
    }
    prev_ts = std::max(prev_ts, r.frame.timestamp_us);
  }

  std::stable_sort(log.records.begin(), log.records.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.frame.timestamp_us < b.frame.timestamp_us;
                   });
}

}  // namespace ecucsp::replay
