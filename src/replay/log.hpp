// Candump log ingestion: mmap'd input, tolerant parallel parsing, and the
// multi-file timestamp-ordered merge.
//
// A fleet log is evidence, so the ingester never aborts on a bad line: every
// malformed record becomes a LogDiagnostic carrying the file, line number
// and byte offset, and the scan continues. Well-formed records from any
// number of log files are merged into one timestamp-ordered record stream
// (stable: ties keep file-then-line order), which is what the decode and
// sweep layers consume.
//
// Parsing is split-invariant: each line is a pure function of its own
// bytes, so the ingester can cut a file into byte ranges at newline
// boundaries and parse the ranges on scheduler workers — records,
// diagnostics and line numbers come out byte-identical at any worker count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "can/frame.hpp"

namespace ecucsp::verify {
class VerifyScheduler;
}

namespace ecucsp::replay {

enum class DiagSeverity {
  Error,    // record dropped (malformed line, unknown CAN id, ...)
  Warning,  // record kept (out-of-order timestamp, ...)
};

std::string_view to_string(DiagSeverity s);

struct LogDiagnostic {
  std::uint32_t file = 0;  // index into the ingested file list
  std::uint32_t line = 0;  // 1-based; 0 = whole-file diagnostic
  std::uint64_t byte_offset = 0;
  DiagSeverity severity = DiagSeverity::Error;
  std::string message;
};

struct LogRecord {
  can::CanFrame frame;  // frame.timestamp_us carries the log timestamp
  std::uint32_t file = 0;
  std::uint32_t line = 0;  // 1-based line in its source file
  std::uint16_t channel = 0;  // index into ParsedLog::channels
  std::uint64_t byte_offset = 0;  // offset of the record's line in its file
};

struct ParsedLog {
  /// Merged records, ordered by (timestamp, file, line).
  std::vector<LogRecord> records;
  std::vector<std::string> channels;  // interned interface names
  /// Stored diagnostics, capped at kMaxStoredDiagnostics; diagnostic_count
  /// is the uncapped total so truncation is never silent.
  std::vector<LogDiagnostic> diagnostics;
  std::size_t diagnostic_count = 0;
  std::size_t lines = 0;  // total lines scanned across all files

  static constexpr std::size_t kMaxStoredDiagnostics = 4096;

  void add_diagnostic(LogDiagnostic d);
};

/// Read-only view of a log file: mmap(2) when the platform and the file
/// cooperate, a bounded-chunk read fallback otherwise (pipes, empty files,
/// filesystems without mmap). Throws std::runtime_error when the file
/// cannot be opened at all — a missing log is a usage error, not a
/// diagnostic.
class MappedFile {
 public:
  explicit MappedFile(const std::filesystem::path& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view view() const { return view_; }
  bool is_mapped() const { return mapped_ != nullptr; }

 private:
  std::string_view view_;
  void* mapped_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::string fallback_;
};

/// Scan one candump log held in memory as file index `file`, appending its
/// records (channel indices interned into `out.channels`), diagnostics and
/// line count to `out`. Blank lines and '#' comment lines are skipped
/// silently; an entirely empty file yields a whole-file diagnostic. When
/// `sched` is non-null the byte range is parsed in parallel chunks on its
/// workers; output is byte-identical either way.
void scan_candump(std::string_view text, std::uint32_t file, ParsedLog& out,
                  verify::VerifyScheduler* sched = nullptr);

/// Finish ingestion after every file has been scanned: emit a Warning
/// diagnostic for each timestamp regression within a file, then stable-sort
/// the merged records by timestamp (ties keep file-then-line order).
void finalize_merge(ParsedLog& log);

}  // namespace ecucsp::replay
