#include "replay/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "can/candump.hpp"
#include "can/dbc.hpp"
#include "conform/harness.hpp"
#include "conform/requirements.hpp"
#include "ota/ota.hpp"
#include "replay/sweep.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::replay {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The id#data token of candump notation — provenance a user can grep for
/// in the original log.
std::string raw_token(const can::CanFrame& f) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), f.extended ? "%08X" : "%03X", f.id);
  std::string out = buf;
  out += '#';
  static constexpr char kHex[] = "0123456789ABCDEF";
  for (std::size_t i = 0; i < f.dlc && i < 8; ++i) {
    out += kHex[f.data[i] >> 4];
    out += kHex[f.data[i] & 0xF];
  }
  return out;
}

std::vector<conform::TraceOracle> resolve_specs(
    const std::vector<std::string>& specs, std::size_t max_states) {
  std::vector<std::string> names = specs;
  if (names.empty()) names = {"R01", "R02", "R03", "R04", "R05"};
  std::vector<conform::TraceOracle> out;
  for (const std::string& s : names) {
    if (s == "all") {
      for (auto& o : conform::ota_requirement_oracles()) {
        out.push_back(std::move(o));
      }
      out.push_back(conform::ota_model_oracle(max_states));
    } else if (s == "model") {
      out.push_back(conform::ota_model_oracle(max_states));
    } else {
      out.push_back(conform::requirement_oracle(s));  // throws on junk
    }
  }
  return out;
}

}  // namespace

bool ReplayReport::ok() const {
  for (const OracleReport& o : oracles) {
    if (!o.accepted) return false;
  }
  return !strict || diagnostic_count == 0;
}

ReplayReport run_replay(const ReplayOptions& opt) {
  if (opt.logs.empty()) {
    throw std::runtime_error("no log files to replay");
  }
  const auto t0 = std::chrono::steady_clock::now();

  verify::VerifyScheduler sched{{.jobs = opt.jobs}};

  // DBC + codec. The codec is the same frame<->event bridge the live
  // harness uses, so offline and online verdicts share one abstraction.
  can::DbcDatabase db;
  if (opt.dbc) {
    const MappedFile dbc_file(*opt.dbc);
    db = can::parse_dbc(dbc_file.view());
  } else {
    db = can::parse_dbc(ota::ota_dbc_text());
  }
  const conform::FrameCodec codec = conform::ota_codec(db);

  ReplayReport report;
  report.strict = opt.strict;
  report.jobs_used = sched.jobs();
  report.chunk = opt.chunk;
  for (const auto& p : opt.logs) {
    report.logs.push_back(p.string());
    report.diagnostic_files.push_back(p.string());
  }

  // Ingest + merge.
  ParsedLog log;
  for (std::size_t i = 0; i < opt.logs.size(); ++i) {
    const MappedFile mf(opt.logs[i]);
    scan_candump(mf.view(), static_cast<std::uint32_t>(i), log, &sched);
  }
  finalize_merge(log);

  // Decode to the abstract event trace (unknown ids become diagnostics).
  const DecodedTrace trace = decode_trace(log, codec);

  report.lines = log.lines;
  report.frames = log.records.size();
  report.events = trace.events.size();
  report.channels = log.channels.size();

  // Oracles: compile against this trace's interned events, then sweep.
  const std::vector<conform::TraceOracle> oracles =
      resolve_specs(opt.specs, opt.max_states);
  std::vector<CompiledOracle> compiled;
  compiled.reserve(oracles.size());
  for (const conform::TraceOracle& o : oracles) {
    compiled.push_back(compile_for_trace(o, trace.names));
  }
  SweepOptions sweep_opt;
  sweep_opt.chunk = opt.chunk;
  sweep_opt.max_diverge = opt.max_diverge;
  const std::vector<OracleSweep> sweeps =
      sweep_trace(compiled, trace.events, sweep_opt, sched);

  for (std::size_t oi = 0; oi < oracles.size(); ++oi) {
    OracleReport rep;
    rep.name = oracles[oi].name;
    rep.truncated = sweeps[oi].truncated;
    rep.accepted = sweeps[oi].accepted();
    for (const SweepDivergence& d : sweeps[oi].divergences) {
      ReplayDivergence out;
      out.event_index = d.event_index;
      out.event = trace.names[trace.events[d.event_index]];
      out.offered = oracles[oi].automaton.offered(d.node);
      out.reason = d.outside_alphabet ? "event outside the oracle alphabet"
                                      : "spec offers no such event here";
      const LogRecord& r = log.records[trace.record_of[d.event_index]];
      out.frame.file = report.logs[r.file];
      out.frame.channel =
          r.channel < log.channels.size() ? log.channels[r.channel] : "";
      out.frame.timestamp_us = r.frame.timestamp_us;
      out.frame.line = r.line;
      out.frame.byte_offset = r.byte_offset;
      out.frame.raw = raw_token(r.frame);
      rep.divergences.push_back(std::move(out));
    }
    report.oracles.push_back(std::move(rep));
  }

  report.diagnostic_count = log.diagnostic_count;
  report.diagnostics = std::move(log.diagnostics);

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

// --- rendering ---------------------------------------------------------------

std::string ReplayReport::render_text() const {
  std::ostringstream out;
  out << "replay: " << frames << " frames / " << events << " events from "
      << logs.size() << (logs.size() == 1 ? " log (" : " logs (") << lines
      << " lines, " << channels << (channels == 1 ? " channel)" : " channels)")
      << "\n";
  out << "  jobs " << jobs_used << ", chunk ";
  if (chunk == 0) {
    out << "whole-log";
  } else {
    out << chunk;
  }
  out << ", wall " << static_cast<long long>(wall_ms) << " ms\n";
  if (diagnostic_count > 0) {
    out << "  " << diagnostic_count << " ingest diagnostic"
        << (diagnostic_count == 1 ? "" : "s")
        << (strict ? " (strict: run fails)" : "") << "\n";
    const std::size_t show = std::min<std::size_t>(diagnostics.size(), 10);
    for (std::size_t i = 0; i < show; ++i) {
      const LogDiagnostic& d = diagnostics[i];
      out << "    [" << to_string(d.severity) << "] "
          << (d.file < diagnostic_files.size() ? diagnostic_files[d.file]
                                               : "<log>")
          << ":" << d.line << ": " << d.message << "\n";
    }
    if (diagnostic_count > show) {
      out << "    ... " << (diagnostic_count - show) << " more\n";
    }
  }
  for (const OracleReport& o : oracles) {
    out << "  " << o.name << ": " << (o.accepted ? "PASS" : "FAIL");
    if (!o.divergences.empty()) {
      out << " (" << o.divergences.size() << (o.truncated ? "+" : "")
          << " divergence" << (o.divergences.size() == 1 && !o.truncated ? "" : "s")
          << ")";
    }
    out << "\n";
    for (const ReplayDivergence& d : o.divergences) {
      out << "    event " << d.event_index << " '" << d.event << "': "
          << d.reason << "\n";
      out << "      at " << d.frame.file << ":" << d.frame.line << " ("
          << d.frame.channel << ", t=" << d.frame.timestamp_us << " us, "
          << d.frame.raw << ", offset " << d.frame.byte_offset << ")\n";
      if (!d.offered.empty()) {
        out << "      spec offered:";
        for (const std::string& e : d.offered) out << " " << e;
        out << "\n";
      }
    }
  }
  out << (ok() ? "OK" : "VIOLATION") << "\n";
  return out.str();
}

std::string ReplayReport::render_json() const {
  std::string out = "{\"replay_format\":1";
  out += ",\"logs\":[";
  for (std::size_t i = 0; i < logs.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(logs[i]) + '"';
  }
  out += "],\"strict\":";
  out += strict ? "true" : "false";
  out += ",\"ok\":";
  out += ok() ? "true" : "false";
  out += ",\n\"log\":{\"lines\":" + std::to_string(lines);
  out += ",\"frames\":" + std::to_string(frames);
  out += ",\"events\":" + std::to_string(events);
  out += ",\"channels\":" + std::to_string(channels);
  out += ",\"diagnostics\":" + std::to_string(diagnostic_count) + "}";
  out += ",\n\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const LogDiagnostic& d = diagnostics[i];
    if (i > 0) out += ',';
    out += "\n{\"file\":\"";
    out += json_escape(d.file < diagnostic_files.size()
                           ? diagnostic_files[d.file]
                           : "<log>");
    out += "\",\"line\":" + std::to_string(d.line);
    out += ",\"offset\":" + std::to_string(d.byte_offset);
    out += ",\"severity\":\"";
    out += to_string(d.severity);
    out += "\",\"message\":\"" + json_escape(d.message) + "\"}";
  }
  out += "],\n\"oracles\":[";
  for (std::size_t i = 0; i < oracles.size(); ++i) {
    const OracleReport& o = oracles[i];
    if (i > 0) out += ',';
    out += "\n{\"name\":\"" + json_escape(o.name) + "\"";
    out += ",\"accepted\":";
    out += o.accepted ? "true" : "false";
    out += ",\"truncated\":";
    out += o.truncated ? "true" : "false";
    out += ",\"divergences\":[";
    for (std::size_t j = 0; j < o.divergences.size(); ++j) {
      const ReplayDivergence& d = o.divergences[j];
      if (j > 0) out += ',';
      out += "\n {\"index\":" + std::to_string(d.event_index);
      out += ",\"event\":\"" + json_escape(d.event) + "\"";
      out += ",\"reason\":\"" + json_escape(d.reason) + "\"";
      out += ",\"offered\":[";
      for (std::size_t k = 0; k < d.offered.size(); ++k) {
        if (k > 0) out += ',';
        out += '"' + json_escape(d.offered[k]) + '"';
      }
      out += "],\"frame\":{\"file\":\"" + json_escape(d.frame.file) + "\"";
      out += ",\"channel\":\"" + json_escape(d.frame.channel) + "\"";
      out += ",\"timestamp_us\":" + std::to_string(d.frame.timestamp_us);
      out += ",\"line\":" + std::to_string(d.frame.line);
      out += ",\"offset\":" + std::to_string(d.frame.byte_offset);
      out += ",\"raw\":\"" + json_escape(d.frame.raw) + "\"}}";
    }
    out += "]}";
  }
  std::size_t accepted = 0;
  for (const OracleReport& o : oracles) accepted += o.accepted ? 1 : 0;
  out += "],\n\"summary\":{\"accepted\":" + std::to_string(accepted);
  out += ",\"rejected\":" + std::to_string(oracles.size() - accepted) + "}}\n";
  return out;
}

}  // namespace ecucsp::replay
