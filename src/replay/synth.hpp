// Seeded synthetic candump logs: honest OTA dialogues plus optional
// injected attacks with a known ground-truth divergence index.
//
// One generator feeds both the replay tests and bench_replay, so "the
// injected frame is exactly the reported first divergence" is checkable at
// any log size. Honest logs satisfy R01–R05 by construction (request/report
// pairs, inventory first); the two attacks are the paper's bus-level
// threats: Replay re-transmits a byte-identical copy of an earlier genuine
// UpdReport, Masquerade fabricates a fresh one. Both abstract to a spurious
// rec.UpdReport that R04's counting oracle rejects at exactly the injected
// event index, because injection happens at a pair boundary where no
// UpdApplyReq is outstanding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "can/frame.hpp"
#include "conform/harness.hpp"

namespace ecucsp::replay {

enum class Attack {
  None,
  Replay,      // byte-copy of an earlier genuine UpdReport
  Masquerade,  // fabricated UpdReport the ECU never sent
};

struct SynthOptions {
  std::uint64_t seed = 1;
  /// Target event/frame count (every synthesized frame decodes to exactly
  /// one event). The generator emits whole request/report pairs, so the
  /// actual count can exceed this by one.
  std::size_t frames = 1000;
  std::string channel = "can0";
  Attack attack = Attack::None;
  /// Preferred injection point; the generator uses the first pair boundary
  /// at or after this index (boundaries are where R04's outstanding count
  /// is zero, which pins the divergence to the injected frame itself).
  std::size_t attack_at = 0;
  std::uint64_t start_us = 1'700'000'000ull * 1'000'000ull;
  std::uint64_t step_us = 250;
};

struct SynthLog {
  std::string text;                 // candump -L log text
  std::vector<std::string> events;  // the abstract trace the log decodes to
  std::size_t frames = 0;
  /// Event index of the injected attack frame; npos when attack == None.
  std::size_t injected_index = npos;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Inverse of FrameCodec::abstract_frame for producible events: a canonical
/// frame whose abstraction is exactly `event`. Handles the "Bad" MAC twin
/// (forged tag). Returns nullopt for names the codec cannot realise
/// (unknown constructor, channel inconsistent with the id's direction).
std::optional<can::CanFrame> frame_for_event(const conform::FrameCodec& codec,
                                             const std::string& event);

/// Render an abstract event trace as candump text using canonical frames,
/// timestamps start_us + i * step_us. Throws std::invalid_argument on an
/// event frame_for_event cannot realise.
std::string render_candump(const conform::FrameCodec& codec,
                           const std::vector<std::string>& events,
                           std::string_view channel, std::uint64_t start_us,
                           std::uint64_t step_us = 250);

/// Generate a seeded honest dialogue (plus the injected attack when
/// requested) against `codec`. Deterministic in SynthOptions.
SynthLog synthesize_log(const conform::FrameCodec& codec,
                        const SynthOptions& opt);

}  // namespace ecucsp::replay
