// Chunked parallel oracle sweeps over a decoded event trace.
//
// A trace oracle is sequential by nature: the automaton node after event i
// depends on every event before it. The sweep still parallelises by the
// classic function-composition trick — each chunk is evaluated as a *total
// map* from every possible oracle start node to (end node, divergences),
// and a cheap sequential fold then threads the real start node through the
// per-chunk maps. Because each chunk map is a pure function of the chunk's
// events and the walk itself is deterministic, verdicts and divergence
// indices are byte-identical at any chunk size and any worker count; the
// state-sets carried across chunk boundaries are exactly the OracleCursor
// nodes of conform/oracle.hpp (tests/replay_diff_test.cpp pins the
// equivalence against one-shot TraceOracle::judge).
//
// Divergence semantics are skip-and-continue: a rejected event is reported
// and then skipped (the oracle node is unchanged), so a single sweep can
// surface up to max_diverge violations per oracle instead of stopping at
// the first — truncation is flagged, never silent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conform/harness.hpp"
#include "conform/oracle.hpp"
#include "replay/log.hpp"

namespace ecucsp::replay {

/// The event trace decoded from a merged record stream. Events are interned
/// ids (names[id] is the CSP event name); record_of maps each event back to
/// the originating LogRecord for provenance reporting. Records whose CAN id
/// the codec does not know produce a diagnostic and no event.
struct DecodedTrace {
  std::vector<std::uint32_t> events;
  std::vector<std::uint32_t> record_of;
  std::vector<std::string> names;
};

/// Decode the merged records of `log` through `codec` (direction from the
/// codec's tx_ids, MAC split from its mac_id). Unknown-id diagnostics are
/// appended to `log`.
DecodedTrace decode_trace(ParsedLog& log, const conform::FrameCodec& codec);

/// A TraceOracle compiled against one trace's interned event ids: a dense
/// node × event step table, so the per-chunk walks are branch-light array
/// lookups instead of string set probes.
struct CompiledOracle {
  static constexpr std::uint32_t kSkip = 0xffffffffu;
  static constexpr std::uint32_t kRejectAlphabet = 0xfffffffeu;
  static constexpr std::uint32_t kRejectStuck = 0xfffffffdu;

  const conform::TraceOracle* source = nullptr;  // offered() at divergences
  std::uint32_t nodes = 0;
  std::uint32_t n_events = 0;
  std::vector<std::uint32_t> step;  // nodes × n_events

  std::uint32_t at(std::uint32_t node, std::uint32_t event) const {
    return step[static_cast<std::size_t>(node) * n_events + event];
  }
};

CompiledOracle compile_for_trace(const conform::TraceOracle& oracle,
                                 const std::vector<std::string>& names);

struct SweepDivergence {
  std::size_t event_index = 0;  // into DecodedTrace::events
  std::uint32_t node = 0;       // oracle node at the divergence point
  bool outside_alphabet = false;  // vs "spec offers no such event here"
};

struct OracleSweep {
  std::vector<SweepDivergence> divergences;
  bool truncated = false;  // more divergences exist beyond max_diverge

  bool accepted() const { return divergences.empty() && !truncated; }
};

struct SweepOptions {
  std::size_t chunk = 1u << 16;  // events per chunk; 0 = whole trace
  std::size_t max_diverge = 1;   // reported divergences per oracle
};

/// Sweep every oracle over the trace, chunk tasks on `sched`. Returns one
/// OracleSweep per input oracle, in order.
std::vector<OracleSweep> sweep_trace(const std::vector<CompiledOracle>& oracles,
                                     const std::vector<std::uint32_t>& events,
                                     const SweepOptions& opt,
                                     verify::VerifyScheduler& sched);

}  // namespace ecucsp::replay
