#include "replay/synth.hpp"

#include <algorithm>
#include <stdexcept>

#include "can/candump.hpp"
#include "conform/generate.hpp"

namespace ecucsp::replay {

std::optional<can::CanFrame> frame_for_event(const conform::FrameCodec& codec,
                                             const std::string& event) {
  const std::size_t dot = event.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const std::string channel = event.substr(0, dot);
  std::string ctor = event.substr(dot + 1);

  // The "Bad" twin only exists for the MAC-protected id.
  bool bad = false;
  if (ctor.size() > 3 && ctor.ends_with("Bad")) {
    const std::string base = ctor.substr(0, ctor.size() - 3);
    // Only strip the suffix when the base name is a real constructor —
    // a message legitimately named "...Bad" must stay intact.
    for (const auto& [id, name] : codec.ctor_of) {
      if (name == base && codec.mac_id && id == *codec.mac_id) {
        bad = true;
        ctor = base;
        break;
      }
    }
  }

  for (const auto& [id, name] : codec.ctor_of) {
    if (name != ctor) continue;
    const bool tx = std::find(codec.tx_ids.begin(), codec.tx_ids.end(), id) !=
                    codec.tx_ids.end();
    if (channel != (tx ? codec.tx_channel : codec.rx_channel)) return std::nullopt;
    if (bad && (!codec.mac_id || id != *codec.mac_id)) return std::nullopt;
    can::CanFrame f;
    f.id = id;
    if (codec.mac_id && id == *codec.mac_id) {
      f.set_byte(0, 1);  // module 1
      const auto tag = static_cast<std::uint8_t>(codec.mac_key ^ f.byte(0));
      f.set_byte(7, bad ? static_cast<std::uint8_t>(tag ^ 0xFF) : tag);
    }
    return f;
  }
  return std::nullopt;
}

std::string render_candump(const conform::FrameCodec& codec,
                           const std::vector<std::string>& events,
                           std::string_view channel, std::uint64_t start_us,
                           std::uint64_t step_us) {
  std::string out;
  out.reserve(events.size() * 48);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto frame = frame_for_event(codec, events[i]);
    if (!frame) {
      throw std::invalid_argument("render_candump: no frame realises event '" +
                                  events[i] + "'");
    }
    out += can::format_candump_line(start_us + i * step_us, channel, *frame);
    out += '\n';
  }
  return out;
}

SynthLog synthesize_log(const conform::FrameCodec& codec,
                        const SynthOptions& opt) {
  SynthLog out;
  std::uint64_t rng = opt.seed;

  const auto inventory_req = frame_for_event(codec, "send.SwInventoryReq");
  const auto sw_report = frame_for_event(codec, "rec.SwReport");
  const auto apply_req = frame_for_event(codec, "send.UpdApplyReq");
  const auto apply_bad = frame_for_event(codec, "send.UpdApplyReqBad");
  const auto upd_report = frame_for_event(codec, "rec.UpdReport");
  if (!inventory_req || !sw_report || !apply_req || !apply_bad || !upd_report) {
    throw std::invalid_argument(
        "synthesize_log: codec cannot realise the OTA dialogue events");
  }

  std::vector<can::CanFrame> frames;
  frames.reserve(opt.frames + 2);
  const auto emit = [&](std::string event, can::CanFrame f) {
    out.events.push_back(std::move(event));
    frames.push_back(f);
  };

  can::CanFrame last_upd_report;  // replay source, valid once one was sent
  bool have_upd_report = false;

  // Pair boundaries are the only places R04's outstanding count is zero, so
  // the attack lands between pairs.
  const std::size_t inject_at =
      opt.attack == Attack::None ? SynthLog::npos : opt.attack_at;

  // Pair 0: inventory first (R01/R02). Pair 1: one update exchange, so a
  // Replay attack always has a genuine UpdReport to copy.
  std::size_t pair = 0;
  while (out.events.size() < opt.frames || pair < 2) {
    // Attack injection at this boundary?
    if (opt.attack != Attack::None && out.injected_index == SynthLog::npos &&
        pair >= 2 && out.events.size() >= inject_at) {
      out.injected_index = out.events.size();
      can::CanFrame f;
      if (opt.attack == Attack::Replay) {
        f = last_upd_report;  // byte-identical to a genuine report
      } else {
        f = *upd_report;  // fabricated: a payload the ECU never produced
        f.set_byte(1, 0xDE);
        f.set_byte(2, 0xAD);
      }
      emit("rec.UpdReport", f);
      continue;
    }

    const std::uint64_t r = conform::splitmix64(rng);
    if (pair == 0 || (pair != 1 && r % 4 == 0)) {
      // Inventory pair; the report carries a varying software version.
      emit("send.SwInventoryReq", *inventory_req);
      can::CanFrame rep = *sw_report;
      rep.set_byte(1, static_cast<std::uint8_t>(r >> 8));
      rep.set_byte(2, static_cast<std::uint8_t>(r >> 16));
      emit("rec.SwReport", rep);
    } else if (pair >= 2 && r % 7 == 0) {
      // A forged apply the ECU must ignore: no report follows. R04/R01
      // skip it (ignored), R05 allows it anywhere.
      emit("send.UpdApplyReqBad", *apply_bad);
    } else {
      // Update pair; reports vary in result/payload so a Replay copy is a
      // specific frame, not a coincidence.
      emit("send.UpdApplyReq", *apply_req);
      can::CanFrame rep = *upd_report;
      rep.set_byte(0, static_cast<std::uint8_t>(r % 2));
      rep.set_byte(3, static_cast<std::uint8_t>(r >> 24));
      emit("rec.UpdReport", rep);
      last_upd_report = rep;
      have_upd_report = true;
    }
    ++pair;
  }

  // A requested attack that never fired (attack_at beyond the log) is
  // injected at the very end — the caller asked for a violation, it gets
  // one.
  if (opt.attack != Attack::None && out.injected_index == SynthLog::npos) {
    out.injected_index = out.events.size();
    can::CanFrame f = opt.attack == Attack::Replay && have_upd_report
                          ? last_upd_report
                          : *upd_report;
    if (opt.attack == Attack::Masquerade) {
      f.set_byte(1, 0xDE);
      f.set_byte(2, 0xAD);
    }
    emit("rec.UpdReport", f);
  }

  out.frames = frames.size();
  out.text.reserve(frames.size() * 48);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out.text += can::format_candump_line(opt.start_us + i * opt.step_us,
                                         opt.channel, frames[i]);
    out.text += '\n';
  }
  return out;
}

}  // namespace ecucsp::replay
