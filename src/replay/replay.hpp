// Offline runtime verification of logged CAN traffic: ingest candump logs,
// decode through the DBC-backed FrameCodec, sweep the spec oracles, report
// the divergences with full frame provenance.
//
// This is the "check the fleet's evidence after the fact" counterpart of
// the live conformance harness: the same R01–R05 requirement oracles (and
// optionally the CAPL-extracted model oracle) judge a recorded bus trace
// instead of a simulated one. The report is reproducible evidence — the
// JSON rendering (replay_format 1) deliberately carries no timing and no
// worker-count echo, so two runs over the same logs are byte-identical at
// any --jobs/--chunk setting (CI diffs them).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "replay/log.hpp"

namespace ecucsp::replay {

struct ReplayOptions {
  std::vector<std::filesystem::path> logs;
  /// DBC file describing the logged traffic; nullopt = the built-in X.1373
  /// OTA database (src/ota).
  std::optional<std::filesystem::path> dbc;
  /// Spec oracles: "R01".."R05", "model" (CAPL-extracted ECU model),
  /// "all". Empty = R01..R05.
  std::vector<std::string> specs;
  unsigned jobs = 0;             // scheduler workers; 0 = hardware
  std::size_t chunk = 1u << 16;  // events per sweep chunk; 0 = whole log
  bool strict = false;           // any ingest diagnostic fails the run
  std::size_t max_diverge = 1;   // divergences reported per oracle
  std::size_t max_states = 1u << 20;  // model-oracle compile budget
};

/// Where a divergent event came from, down to the log line.
struct FrameProvenance {
  std::string file;     // log path as given
  std::string channel;  // interface name from the log
  std::uint64_t timestamp_us = 0;
  std::uint32_t line = 0;  // 1-based line in `file`
  std::uint64_t byte_offset = 0;
  std::string raw;  // the frame's id#data token, candump notation
};

struct ReplayDivergence {
  std::size_t event_index = 0;  // into the decoded event trace
  std::string event;
  std::vector<std::string> offered;  // what the spec allowed instead
  std::string reason;
  FrameProvenance frame;
};

struct OracleReport {
  std::string name;
  bool accepted = true;
  bool truncated = false;  // more divergences exist beyond max_diverge
  std::vector<ReplayDivergence> divergences;
};

struct ReplayReport {
  std::vector<std::string> logs;
  bool strict = false;
  std::size_t lines = 0;
  std::size_t frames = 0;  // well-formed records ingested
  std::size_t events = 0;  // decoded trace length
  std::size_t channels = 0;
  std::size_t diagnostic_count = 0;       // uncapped total
  std::vector<LogDiagnostic> diagnostics; // stored subset (see ParsedLog)
  std::vector<std::string> diagnostic_files;  // file index -> path
  std::vector<OracleReport> oracles;

  // Run facts that must NOT leak into render_json(): they vary run-to-run
  // or with the parallelism settings, and the JSON is diffed across both.
  unsigned jobs_used = 1;
  std::size_t chunk = 0;
  double wall_ms = 0.0;

  /// Every oracle accepted, and (under strict) the ingest was clean.
  bool ok() const;

  std::string render_text() const;
  /// Deterministic "replay_format":1 document — byte-identical for the
  /// same logs and spec set at any jobs/chunk configuration.
  std::string render_json() const;
};

/// Run the whole offline check. Throws std::runtime_error on unusable
/// inputs (unreadable log/DBC file, unknown spec name).
ReplayReport run_replay(const ReplayOptions& opt);

}  // namespace ecucsp::replay
