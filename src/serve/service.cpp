#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <future>

namespace ecucsp::serve {

namespace {

ServeStatus status_of(verify::TaskStatus s) {
  switch (s) {
    case verify::TaskStatus::Passed:
      return ServeStatus::Passed;
    case verify::TaskStatus::Failed:
      return ServeStatus::Failed;
    case verify::TaskStatus::TimedOut:
      return ServeStatus::TimedOut;
    case verify::TaskStatus::Cancelled:
      return ServeStatus::Cancelled;
    case verify::TaskStatus::StateLimit:
      return ServeStatus::StateLimit;
    case verify::TaskStatus::Error:
      return ServeStatus::Error;
  }
  return ServeStatus::Error;
}

/// Deadline- and lifecycle-independent outcomes may be memoised; a
/// TimedOut or Cancelled verdict would poison identical requests with
/// longer budgets.
bool memoisable(ServeStatus s) {
  return s == ServeStatus::Passed || s == ServeStatus::Failed ||
         s == ServeStatus::StateLimit || s == ServeStatus::Error;
}

}  // namespace

VerifyService::VerifyService(ServiceOptions options)
    : options_(options),
      cache_(std::make_unique<store::VerificationCache>(
          options.cache_dir, std::max(1u, options.cache_shards))) {
  cache_install_.emplace(cache_.get());
  verify::SchedulerOptions sched;
  sched.jobs = options.jobs;
  sched.threads = options.threads;
  sched.compression = options.compression;
  scheduler_ = std::make_unique<verify::VerifyScheduler>(sched);
  const std::size_t queue =
      options.max_queue != 0 ? options.max_queue : 8u * scheduler_->jobs();
  capacity_ = scheduler_->jobs() + queue;
  // The scheduler's workers read the ambient thread/compression globals;
  // install them for the service's lifetime (restored on destruction,
  // after the workers have joined).
  ambient_threads_.emplace(scheduler_->threads());
  ambient_compression_.emplace(options.compression);
}

VerifyService::~VerifyService() {
  begin_drain();
  drain(std::chrono::milliseconds(0));
  // scheduler_ (last member) now drains its queue and joins the workers;
  // cancelled flights complete with Cancelled and fan out before anything
  // else of the service is destroyed.
}

void VerifyService::submit(CheckRequest req, Callback done) {
  if (req.sources.empty()) {
    stats_.received.fetch_add(1, std::memory_order_relaxed);
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    CheckResponse r;
    r.id = req.id;
    r.status = ServeStatus::BadRequest;
    r.error = "request carries no CSPm sources";
    done(std::move(r));
    return;
  }
  // Clamp the state budget *before* digesting so over-limit requests
  // coalesce on what will actually run.
  req.max_states = std::min(req.max_states, options_.max_states_limit);
  const store::Digest key = request_digest(req);

  verify::CheckTask task;
  task.name = "assert #" + std::to_string(req.assertion_index + 1);
  task.sources = std::move(req.sources);
  task.assertion_index = req.assertion_index;
  task.max_states = static_cast<std::size_t>(req.max_states);
  if (req.timeout_ms != 0) {
    task.timeout = std::chrono::milliseconds(req.timeout_ms);
  } else if (options_.default_timeout_ms != 0) {
    task.timeout = std::chrono::milliseconds(options_.default_timeout_ms);
  }
  submit_keyed(key, std::move(task), req.id, std::move(done));
}

void VerifyService::submit_keyed(const store::Digest& key,
                                 verify::CheckTask task,
                                 std::uint64_t request_id, Callback done) {
  stats_.received.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point now = Clock::now();

  if (draining_.load(std::memory_order_relaxed)) {
    stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    CheckResponse r;
    r.id = request_id;
    r.status = ServeStatus::ShuttingDown;
    r.digest_hex = key.hex();
    r.error = "daemon is draining";
    done(std::move(r));
    return;
  }

  if (auto hit = memo_lookup(key)) {
    stats_.memo_hits.fetch_add(1, std::memory_order_relaxed);
    hit->id = request_id;
    hit->wall_ns =
        static_cast<std::uint64_t>((Clock::now() - now).count());
    stats_.latency.record(hit->wall_ns);
    done(std::move(*hit));
    return;
  }

  SingleFlight::Waiter waiter;
  waiter.request_id = request_id;
  waiter.enqueued = now;
  waiter.done = std::move(done);

  auto [flight, leader] = flights_.join(key, waiter, [this] {
    // Under the table lock: at most capacity_ flights in the system.
    std::size_t cur = admitted_.load(std::memory_order_relaxed);
    if (cur >= capacity_) return false;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  });

  if (!flight) {
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    CheckResponse r;
    r.id = request_id;
    r.status = ServeStatus::Overloaded;
    r.digest_hex = key.hex();
    r.retry_after_ms = retry_after_ms();
    r.error = "admission control: " + std::to_string(capacity_) +
              " checks already queued or running";
    waiter.done(std::move(r));  // join() leaves the waiter intact on refusal
    return;
  }

  if (!leader) {
    stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
    return;  // the flight's completion fans out to us
  }

  stats_.engine_runs.fetch_add(1, std::memory_order_relaxed);
  const auto self = flight;  // keep alive through the scheduler callback
  scheduler_->submit(
      std::move(task), &self->token,
      [this, self](verify::TaskOutcome outcome) {
        CheckResponse r;
        r.status = status_of(outcome.status);
        r.vacuous = outcome.vacuous;
        r.from_cache = outcome.cached;
        r.states = outcome.stats.impl_states;
        r.transitions = outcome.stats.impl_transitions;
        r.counterexample = std::move(outcome.counterexample);
        r.error = std::move(outcome.error);
        r.digest_hex = self->key.hex();
        finish_flight(self, std::move(r));
      });
}

void VerifyService::finish_flight(
    const std::shared_ptr<SingleFlight::Flight>& flight,
    CheckResponse response) {
  if (memoisable(response.status)) memo_insert(flight->key, response);

  std::vector<SingleFlight::Waiter> waiters = flights_.complete(flight);
  response.coalesced = waiters.size() > 1;

  stats_.completed.fetch_add(1, std::memory_order_relaxed);
  switch (response.status) {
    case ServeStatus::Passed:
      stats_.passed.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::Failed:
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::TimedOut:
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::Cancelled:
      stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::StateLimit:
      stats_.state_limit.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }

  const Clock::time_point done_at = Clock::now();
  if (!waiters.empty()) {
    const std::uint64_t leader_ns = static_cast<std::uint64_t>(
        (done_at - waiters.front().enqueued).count());
    // EWMA of flight wall time feeds the Retry-After hint.
    const std::uint64_t prev = avg_check_ns_.load(std::memory_order_relaxed);
    avg_check_ns_.store(prev - prev / 8 + leader_ns / 8,
                        std::memory_order_relaxed);
  }

  for (SingleFlight::Waiter& w : waiters) {
    CheckResponse copy = response;
    copy.id = w.request_id;
    copy.wall_ns =
        static_cast<std::uint64_t>((done_at - w.enqueued).count());
    stats_.latency.record(copy.wall_ns);
    w.done(std::move(copy));
  }

  {
    std::lock_guard lk(drain_mu_);
    admitted_.fetch_sub(1, std::memory_order_relaxed);
  }
  drain_cv_.notify_all();
}

std::optional<CheckResponse> VerifyService::memo_lookup(
    const store::Digest& key) {
  std::lock_guard lk(memo_mu_);
  auto it = memo_.find(key);
  if (it == memo_.end()) return std::nullopt;
  memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second.lru);
  CheckResponse r = it->second.response;
  r.from_cache = true;
  r.memo_hit = true;
  return r;
}

void VerifyService::memo_insert(const store::Digest& key,
                                const CheckResponse& response) {
  if (options_.memo_capacity == 0) return;
  CheckResponse stored = response;
  stored.id = 0;
  stored.wall_ns = 0;
  stored.coalesced = false;
  std::lock_guard lk(memo_mu_);
  if (auto it = memo_.find(key); it != memo_.end()) {
    it->second.response = std::move(stored);
    memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second.lru);
    return;
  }
  memo_lru_.push_front(key);
  memo_.emplace(key, MemoEntry{std::move(stored), memo_lru_.begin()});
  while (memo_.size() > options_.memo_capacity) {
    memo_.erase(memo_lru_.back());
    memo_lru_.pop_back();
  }
}

std::uint32_t VerifyService::retry_after_ms() const {
  // Expected time for one scheduler slot to free up: the average check
  // duration spread over the workers, scaled by how deep the queue is.
  const std::uint64_t avg = avg_check_ns_.load(std::memory_order_relaxed);
  const std::size_t depth =
      std::max<std::size_t>(admitted_.load(std::memory_order_relaxed),
                            scheduler_->jobs());
  const double ms = static_cast<double>(avg) / 1e6 *
                    (static_cast<double>(depth) /
                     static_cast<double>(scheduler_->jobs()));
  return static_cast<std::uint32_t>(std::clamp(ms, 50.0, 30'000.0));
}

CheckResponse VerifyService::serve(CheckRequest req) {
  std::promise<CheckResponse> promise;
  std::future<CheckResponse> future = promise.get_future();
  submit(std::move(req),
         [&promise](CheckResponse r) { promise.set_value(std::move(r)); });
  return future.get();
}

std::size_t VerifyService::in_flight() const {
  return admitted_.load(std::memory_order_relaxed);
}

void VerifyService::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
}

bool VerifyService::drain(std::chrono::milliseconds timeout) {
  std::unique_lock lk(drain_mu_);
  const bool clean = drain_cv_.wait_for(lk, timeout, [this] {
    return admitted_.load(std::memory_order_relaxed) == 0;
  });
  if (clean) return true;
  lk.unlock();
  flights_.cancel_all();
  lk.lock();
  // Cancellation is cooperative and the engine polls densely; this
  // converges as fast as the slowest poll interval.
  drain_cv_.wait(lk, [this] {
    return admitted_.load(std::memory_order_relaxed) == 0;
  });
  return false;
}

std::string VerifyService::stats_json() const {
  const store::CacheStats& c = cache_->stats();
  const std::uint64_t vh = c.verdict_hits.load(std::memory_order_relaxed);
  const std::uint64_t vm = c.verdict_misses.load(std::memory_order_relaxed);
  const double hit_ratio =
      vh + vm == 0 ? 0.0
                   : static_cast<double>(vh) / static_cast<double>(vh + vm);
  const std::size_t inflight = admitted_.load(std::memory_order_relaxed);
  const std::size_t running = std::min<std::size_t>(inflight, jobs());

  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\"serve_format\":1,"
      "\"jobs\":%u,\"threads\":%u,\"shards\":%u,\"capacity\":%zu,"
      "\"draining\":%s,"
      "\"received\":%llu,\"engine_runs\":%llu,\"coalesced\":%llu,"
      "\"memo_hits\":%llu,\"shed\":%llu,\"rejected_draining\":%llu,"
      "\"bad_requests\":%llu,\"completed\":%llu,"
      "\"in_flight\":%zu,\"queue_depth\":%zu,"
      "\"status\":{\"passed\":%llu,\"failed\":%llu,\"timed_out\":%llu,"
      "\"cancelled\":%llu,\"state_limit\":%llu,\"errors\":%llu},"
      "\"latency_ms\":{\"count\":%llu,\"p50\":%.3f,\"p90\":%.3f,"
      "\"p99\":%.3f,\"max\":%.3f},"
      "\"cache\":{\"verdict_hits\":%llu,\"verdict_misses\":%llu,"
      "\"lts_hits\":%llu,\"lts_misses\":%llu,\"hit_ratio\":%.4f,"
      "\"memory_hits\":%llu,\"disk_hits\":%llu,\"stores\":%llu}}",
      jobs(), threads(), cache_->shard_count(), capacity_,
      draining() ? "true" : "false",
      static_cast<unsigned long long>(stats_.received.load()),
      static_cast<unsigned long long>(stats_.engine_runs.load()),
      static_cast<unsigned long long>(stats_.coalesced.load()),
      static_cast<unsigned long long>(stats_.memo_hits.load()),
      static_cast<unsigned long long>(stats_.shed.load()),
      static_cast<unsigned long long>(stats_.rejected_draining.load()),
      static_cast<unsigned long long>(stats_.bad_requests.load()),
      static_cast<unsigned long long>(stats_.completed.load()),
      inflight, inflight - running,
      static_cast<unsigned long long>(stats_.passed.load()),
      static_cast<unsigned long long>(stats_.failed.load()),
      static_cast<unsigned long long>(stats_.timed_out.load()),
      static_cast<unsigned long long>(stats_.cancelled.load()),
      static_cast<unsigned long long>(stats_.state_limit.load()),
      static_cast<unsigned long long>(stats_.errors.load()),
      static_cast<unsigned long long>(stats_.latency.count()),
      stats_.latency.quantile_ms(0.50), stats_.latency.quantile_ms(0.90),
      stats_.latency.quantile_ms(0.99), stats_.latency.max_ms(),
      static_cast<unsigned long long>(vh), static_cast<unsigned long long>(vm),
      static_cast<unsigned long long>(c.lts_hits.load()),
      static_cast<unsigned long long>(c.lts_misses.load()), hit_ratio,
      static_cast<unsigned long long>(c.memory_hits.load()),
      static_cast<unsigned long long>(c.disk_hits.load()),
      static_cast<unsigned long long>(c.stores.load()));
  return buf;
}

}  // namespace ecucsp::serve
