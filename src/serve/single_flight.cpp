#include "serve/single_flight.hpp"

namespace ecucsp::serve {

SingleFlight::JoinResult SingleFlight::join(
    const store::Digest& key, Waiter& waiter,
    const std::function<bool()>& leader_gate) {
  std::lock_guard lk(mu_);
  if (auto it = table_.find(key); it != table_.end()) {
    it->second->waiters.push_back(std::move(waiter));
    return {it->second, false};
  }
  if (leader_gate && !leader_gate()) return {nullptr, false};
  auto flight = std::make_shared<Flight>();
  flight->key = key;
  flight->waiters.push_back(std::move(waiter));
  table_.emplace(key, flight);
  return {flight, true};
}

std::vector<SingleFlight::Waiter> SingleFlight::complete(
    const std::shared_ptr<Flight>& flight) {
  std::lock_guard lk(mu_);
  table_.erase(flight->key);
  return std::move(flight->waiters);
}

void SingleFlight::cancel_all() {
  std::lock_guard lk(mu_);
  for (auto& [key, flight] : table_) flight->token.request_cancel();
}

std::size_t SingleFlight::in_flight() const {
  std::lock_guard lk(mu_);
  return table_.size();
}

}  // namespace ecucsp::serve
