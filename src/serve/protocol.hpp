// Wire protocol of the verification service.
//
// Two self-describing framings share every connection, distinguished by the
// first byte of each message:
//
//   * binary (first byte 0xEC):  [0xEC][type:u8][len:u32 LE][payload]
//     where payload is the ByteWriter encoding (varints, length-framed
//     strings) of the message struct — compact, fast, the default for
//     fleet traffic;
//   * JSON lines (first byte '{'): one JSON object per '\n'-terminated
//     line — the debugging / curl / scripting fallback. A reply always uses
//     the framing its request arrived in.
//
// The frame length is bounded (ServerOptions::max_frame); an oversized or
// malformed frame is a protocol error and closes the connection — the
// daemon never allocates attacker-controlled amounts of memory.
//
// A CheckRequest carries CSPm source text plus one assertion index — the
// same inputs `ecucsp_check --jobs` turns into a CheckTask — and the
// response carries the complete verdict: status, counterexample text,
// vacuity, exploration stats and the request digest. Everything
// deterministic is isolated in CheckResponse::verdict_block(), the
// byte-identity surface that coalesced, memoised, cache-served and
// freshly-explored answers to the same request must agree on.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "store/digest.hpp"

namespace ecucsp::serve {

/// Bump on any wire-format change. Participates in request digests, so
/// coalescing and response memoisation never cross protocol versions.
inline constexpr std::uint32_t kServeFormatVersion = 1;

inline constexpr std::uint8_t kFrameMagic = 0xEC;

enum class MsgType : std::uint8_t {
  CheckRequest = 1,
  CheckResponse = 2,
  StatsRequest = 3,
  StatsResponse = 4,
  Ping = 5,
  Pong = 6,
};

/// TaskStatus plus the service-level outcomes a client must distinguish.
enum class ServeStatus : std::uint8_t {
  Passed = 0,
  Failed = 1,        // check completed, property does not hold
  TimedOut = 2,      // the request's own deadline fired mid-check
  Cancelled = 3,     // daemon drained / shut down under the check
  StateLimit = 4,    // max_states budget exceeded
  Error = 5,         // model construction or evaluation error
  Overloaded = 6,    // admission control shed the request; retry later
  ShuttingDown = 7,  // daemon is draining and admits nothing new
  BadRequest = 8,    // malformed request (no sources, ...)
};

std::string_view to_string(ServeStatus s);

/// True for the service-level rejections that carry no verdict.
inline bool is_rejection(ServeStatus s) {
  return s == ServeStatus::Overloaded || s == ServeStatus::ShuttingDown ||
         s == ServeStatus::BadRequest;
}

struct CheckRequest {
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::uint64_t id = 0;
  /// Which 'assert' of the loaded scripts to run (0-based).
  std::uint32_t assertion_index = 0;
  std::uint64_t max_states = 1ull << 22;
  /// Per-request wall-clock deadline, honoured via the engine CancelToken;
  /// 0 means no deadline (the daemon may still apply its own default).
  std::uint32_t timeout_ms = 0;
  /// CSPm scripts, loaded in order into one fresh Context on a worker.
  std::vector<std::string> sources;
};

struct CheckResponse {
  std::uint64_t id = 0;
  ServeStatus status = ServeStatus::Error;
  /// CheckResult::vacuous — the pass never touched a constrained event.
  bool vacuous = false;
  /// The verdict came out of the verification store (engine-level cache)
  /// or the serve-level response memo rather than a fresh exploration.
  bool from_cache = false;
  /// This verdict was shared by a single-flight: at least two concurrent
  /// requests were answered by one engine sweep (set on every sharer).
  bool coalesced = false;
  /// Served from the response memo without touching the engine at all.
  bool memo_hit = false;
  /// Overloaded only: suggested client back-off.
  std::uint32_t retry_after_ms = 0;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  /// Queue + engine time as observed by the service for this request.
  std::uint64_t wall_ns = 0;
  /// Hex request digest (the coalescing / memo key); empty on BadRequest.
  std::string digest_hex;
  /// Rendered counterexample ("<description>: <trace...>"), empty on pass.
  std::string counterexample;
  /// Diagnostic for Error / StateLimit / rejection statuses.
  std::string error;

  /// Canonical text of every deterministic field — excludes id, wall_ns
  /// and the transport flags (from_cache/coalesced/memo_hit), which vary
  /// by serving path. Two requests with equal digests must produce
  /// byte-identical blocks whatever path served them, cold or warm.
  std::string verdict_block() const;
};

/// One decoded message of either framing.
struct Msg {
  MsgType type = MsgType::Ping;
  /// Arrived as a JSON line; the reply must use JSON framing too.
  bool json = false;
  CheckRequest check;
  CheckResponse response;
  /// StatsResponse: the stats object, verbatim JSON.
  std::string stats_json;
};

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

std::vector<std::uint8_t> encode(const CheckRequest& req, bool json);
std::vector<std::uint8_t> encode(const CheckResponse& resp, bool json);
std::vector<std::uint8_t> encode_stats_request(bool json);
std::vector<std::uint8_t> encode_stats_response(const std::string& stats_json,
                                                bool json);
std::vector<std::uint8_t> encode_ping(bool json);
std::vector<std::uint8_t> encode_pong(bool json);

/// Incremental frame reassembly over a byte stream: feed() whatever the
/// socket produced, then drain next() until it returns nullopt (more bytes
/// needed). Malformed input throws ProtocolError — the caller closes the
/// connection. One FrameBuffer per connection; both framings may interleave
/// message by message.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::size_t max_frame = 64u << 20)
      : max_frame_(max_frame) {}

  void feed(const void* data, std::size_t n);
  std::optional<Msg> next();

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  std::size_t max_frame_;
};

/// The coalescing / memo key: a digest over the request's *semantic* inputs
/// (sources, assertion index, max_states, protocol version). The deadline
/// is deliberately excluded — requests differing only in patience share one
/// engine sweep. Textually different but structurally identical models get
/// different request digests and coalesce one layer down instead, in the
/// verification store, which keys on PR 2 structural term digests.
store::Digest request_digest(const CheckRequest& req);

/// Minimal JSON string escape/unescape used by the JSON-lines framing
/// (exposed for the stats renderer and tests).
std::string json_escape(std::string_view s);

/// Thread-safe strerror: the server and client format errno from worker
/// and poll-loop threads, where std::strerror's shared static buffer is a
/// data race (clang-tidy concurrency-mt-unsafe).
std::string errno_text(int err);

}  // namespace ecucsp::serve
