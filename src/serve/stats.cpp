#include "serve/stats.hpp"

#include <algorithm>
#include <bit>

namespace ecucsp::serve {

void LatencyHistogram::record(std::uint64_t ns) {
  const std::size_t bucket =
      ns == 0 ? 0
              : std::min<std::size_t>(kBuckets - 1,
                                      static_cast<std::size_t>(
                                          63 - std::countl_zero(ns)));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (ns > prev &&
         !max_ns_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::quantile_ms(double q) const {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric midpoint of [2^i, 2^(i+1)) ns.
      const double lo = static_cast<double>(1ull << i);
      return lo * 1.4142135623730951 / 1e6;
    }
  }
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
}

double LatencyHistogram::max_ms() const {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
}

}  // namespace ecucsp::serve
