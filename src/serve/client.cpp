#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ecucsp::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("client: " + what + ": " +
                           errno_text(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("client: socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("client: bad IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect " + host + ":" + std::to_string(port));
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), frames_(std::move(other.frames_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    frames_ = std::move(other.frames_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::send(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write");
    }
    off += static_cast<std::size_t>(n);
  }
}

Msg Client::recv() {
  while (true) {
    if (auto msg = frames_.next()) return std::move(*msg);
    std::uint8_t buf[1 << 16];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read");
    }
    if (n == 0) {
      throw std::runtime_error("client: connection closed by daemon");
    }
    frames_.feed(buf, static_cast<std::size_t>(n));
  }
}

CheckResponse Client::check(const CheckRequest& req, bool json) {
  send(encode(req, json));
  while (true) {
    Msg msg = recv();
    if (msg.type == MsgType::CheckResponse && msg.response.id == req.id) {
      return std::move(msg.response);
    }
  }
}

std::string Client::stats(bool json) {
  send(encode_stats_request(json));
  while (true) {
    Msg msg = recv();
    if (msg.type == MsgType::StatsResponse) return std::move(msg.stats_json);
  }
}

bool Client::ping(bool json) {
  send(encode_ping(json));
  Msg msg = recv();
  return msg.type == MsgType::Pong;
}

}  // namespace ecucsp::serve
