// The verification service: everything between a decoded CheckRequest and
// its CheckResponse, independent of any socket.
//
// Request lifecycle:
//
//   submit(req) ── bad request? ──► BadRequest
//        │
//        ├─ draining? ───────────► ShuttingDown
//        │
//        ├─ response memo hit ───► previous verdict, memo_hit=true
//        │
//        └─ single-flight join
//             ├─ flight exists ──► attach as waiter (always admitted —
//             │                    a waiter costs nothing)
//             └─ would lead ─────► admission control:
//                  ├─ in-flight ≥ jobs + max_queue ──► Overloaded
//                  │                                   (+ retry_after_ms)
//                  └─ admitted ──► CheckTask onto the PR 1 scheduler;
//                                  completion fans the one verdict out to
//                                  every waiter and feeds the memo
//
// Backpressure is tied to the scheduler's jobs×threads clamp: at most
// `jobs` flights explore concurrently and at most `max_queue` more may
// wait, so offered load beyond the machine's capacity is shed with a
// Retry-After hint instead of growing an unbounded queue. Coalesced
// waiters bypass admission entirely — absorbing a coordinated burst of
// identical requests is the service's whole point.
//
// The response memo is a bounded LRU of encoded verdicts keyed by request
// digest: after a flight completes, identical requests are answered
// without touching the scheduler or even building a Context. Only
// deterministic outcomes (Passed/Failed/StateLimit/Error) are memoised —
// TimedOut and Cancelled depend on deadlines and daemon lifecycle, and
// rejections are never cached. The engine-level verification store
// (structural term digests, sharded on disk) sits below and catches
// textually-different-but-structurally-equal models the memo cannot.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "refine/compact.hpp"
#include "serve/protocol.hpp"
#include "serve/single_flight.hpp"
#include "serve/stats.hpp"
#include "store/cache.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::serve {

struct ServiceOptions {
  /// Scheduler workers (0 = hardware) and in-check threads per flight;
  /// jobs × threads is clamped to the machine exactly as in PR 5.
  unsigned jobs = 0;
  unsigned threads = 1;
  Compression compression = Compression::None;

  /// Persistent verification store; memory-only when unset.
  std::optional<std::filesystem::path> cache_dir;
  /// Disk/memory shards of the store (1 = the PR 2 single-directory layout).
  unsigned cache_shards = 1;

  /// Flights allowed to wait behind the `jobs` running ones before
  /// admission control sheds; 0 means 8 × effective jobs.
  std::size_t max_queue = 0;
  /// Response-memo entries (encoded verdicts); 0 disables the memo.
  std::size_t memo_capacity = 4096;
  /// Applied to requests that carry no deadline of their own; 0 = none.
  std::uint32_t default_timeout_ms = 0;
  /// Server-side ceiling on a request's max_states budget.
  std::uint64_t max_states_limit = 1ull << 26;
};

class VerifyService {
 public:
  using Callback = std::function<void(CheckResponse)>;
  using Clock = std::chrono::steady_clock;

  explicit VerifyService(ServiceOptions options = {});
  ~VerifyService();

  VerifyService(const VerifyService&) = delete;
  VerifyService& operator=(const VerifyService&) = delete;

  /// Asynchronous entry point: `done` runs exactly once, on the calling
  /// thread for memoised/rejected requests or on a scheduler worker for
  /// fresh and coalesced ones. `done` must be safe to call from any thread
  /// and must not block for long (it sits on the verdict fan-out path).
  void submit(CheckRequest req, Callback done);

  /// Lower-level intake used by submit() and by tests that need a custom
  /// CheckTask under a controlled digest: same single-flight, admission,
  /// memo and fan-out machinery, caller-supplied task.
  void submit_keyed(const store::Digest& key, verify::CheckTask task,
                    std::uint64_t request_id, Callback done);

  /// Blocking convenience for in-process callers (tests, benches).
  CheckResponse serve(CheckRequest req);

  /// The /stats surface, rendered as one JSON object.
  std::string stats_json() const;

  /// Stop admitting new flights; waiters may still attach to nothing (all
  /// new requests get ShuttingDown) and in-flight checks keep running.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Wait up to `timeout` for in-flight checks to finish on their own,
  /// then cancel the stragglers and wait for their unwinding. Returns true
  /// when everything completed within the budget (nothing was cancelled).
  bool drain(std::chrono::milliseconds timeout);

  std::size_t in_flight() const;

  const ServiceStats& stats() const { return stats_; }
  unsigned jobs() const { return scheduler_->jobs(); }
  unsigned threads() const { return scheduler_->threads(); }
  std::size_t capacity() const { return capacity_; }
  store::VerificationCache& cache() { return *cache_; }

 private:
  struct MemoEntry {
    CheckResponse response;            // id/wall_ns overwritten per hit
    std::list<store::Digest>::iterator lru;
  };

  std::optional<CheckResponse> memo_lookup(const store::Digest& key);
  void memo_insert(const store::Digest& key, const CheckResponse& response);
  void finish_flight(const std::shared_ptr<SingleFlight::Flight>& flight,
                     CheckResponse response);
  std::uint32_t retry_after_ms() const;
  void record_done(const CheckResponse& r, Clock::time_point enqueued);

  ServiceOptions options_;
  std::size_t capacity_ = 0;  // jobs + max_queue

  std::unique_ptr<store::VerificationCache> cache_;
  std::optional<ScopedCheckCache> cache_install_;

  ServiceStats stats_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> avg_check_ns_{50'000'000};  // EWMA, retry hints

  mutable std::mutex memo_mu_;
  std::unordered_map<store::Digest, MemoEntry, store::DigestHash> memo_;
  std::list<store::Digest> memo_lru_;  // front = most recent

  SingleFlight flights_;
  std::atomic<std::size_t> admitted_{0};  // flights admitted, not completed
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  // Ambient install for the daemon's lifetime (workers read the globals);
  // declared before the scheduler so workers are joined before restore.
  std::optional<ScopedCheckThreads> ambient_threads_;
  std::optional<ScopedCheckCompression> ambient_compression_;

  // Last member: its destructor drains the queue and joins the workers,
  // so every completion callback has returned before anything above dies.
  std::unique_ptr<verify::VerifyScheduler> scheduler_;
};

}  // namespace ecucsp::serve
