// The daemon's socket front end: a poll(2) readiness loop feeding
// VerifyService and fanning completed verdicts back out.
//
// Single-threaded I/O: one loop owns every connection (accept, frame
// reassembly, write-side flushing). Verification itself happens on the
// scheduler's workers; their completion callbacks never touch a socket —
// they encode the response bytes, append them to a mutex-guarded
// completion queue tagged with the connection's id, and poke the loop's
// self-pipe. The loop drains the queue on its next wakeup and routes each
// buffer to its connection's outbox — or drops it when the client has
// disconnected, which is precisely the waiter-departs semantics: the
// shared flight finished for everyone else, only this delivery is lost.
//
// Shutdown: request_stop() (async-signal-safe: an atomic store plus one
// self-pipe write) makes the loop stop accepting, puts the service into
// drain, and keeps pumping completions so in-flight checks can land.
// When the drain timeout expires the stragglers are cancelled
// cooperatively; every queued response is flushed best-effort before
// run() returns whether the drain was clean.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace ecucsp::serve {

struct ServerOptions {
  /// Unix-domain listening socket path; unlinked on bind and on close.
  std::optional<std::string> unix_path;
  /// TCP listening port on 127.0.0.1 (fleet front ends terminate TLS
  /// elsewhere; the daemon itself trusts its host).
  std::optional<std::uint16_t> tcp_port;
  int backlog = 128;
  /// Per-message frame ceiling (see protocol.hpp).
  std::size_t max_frame = 64u << 20;
  /// How long run() lets in-flight checks finish after request_stop()
  /// before cancelling them.
  std::chrono::milliseconds drain_timeout{10'000};
};

class Server {
 public:
  Server(VerifyService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the configured listeners. Throws std::runtime_error on failure.
  void listen();

  /// Run the readiness loop until request_stop(); returns true when the
  /// drain completed without cancelling any in-flight check.
  bool run();

  /// Async-signal-safe stop trigger (atomic store + pipe write); callable
  /// from a signal handler or any thread.
  void request_stop();

  /// Bound addresses, for logs. Empty until listen().
  const std::string& bound_description() const { return bound_; }

 private:
  struct Connection {
    int fd = -1;
    FrameBuffer frames;
    /// Encoded, unflushed response bytes; front may be partially written.
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t front_written = 0;
    explicit Connection(std::size_t max_frame) : frames(max_frame) {}
  };

  void accept_on(int listen_fd);
  /// Returns false when the connection must close.
  bool read_from(std::uint64_t conn_id, Connection& conn);
  bool flush(Connection& conn);
  void handle(std::uint64_t conn_id, Connection& conn, Msg msg);
  void close_conn(std::uint64_t conn_id);
  void drain_completions();
  void enqueue(std::uint64_t conn_id, std::vector<std::uint8_t> bytes);
  void wake();

  VerifyService& service_;
  ServerOptions options_;
  std::string bound_;

  std::vector<int> listeners_;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::atomic<bool> stop_{false};

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Connection> conns_;

  /// Worker → loop handoff: response bytes tagged with their connection.
  std::mutex done_mu_;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> done_;
};

}  // namespace ecucsp::serve
