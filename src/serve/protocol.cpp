#include "serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <span>

#include "store/serialize.hpp"

namespace ecucsp::serve {

std::string_view to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::Passed:
      return "passed";
    case ServeStatus::Failed:
      return "FAILED";
    case ServeStatus::TimedOut:
      return "timed out";
    case ServeStatus::Cancelled:
      return "cancelled";
    case ServeStatus::StateLimit:
      return "state limit";
    case ServeStatus::Error:
      return "error";
    case ServeStatus::Overloaded:
      return "overloaded";
    case ServeStatus::ShuttingDown:
      return "shutting down";
    case ServeStatus::BadRequest:
      return "bad request";
  }
  return "?";
}

std::string CheckResponse::verdict_block() const {
  std::string out;
  out += "status: ";
  out += to_string(status);
  out += "\nvacuous: ";
  out += vacuous ? "true" : "false";
  out += "\nstates: " + std::to_string(states);
  out += "\ntransitions: " + std::to_string(transitions);
  out += "\ndigest: " + digest_hex;
  out += "\ncounterexample: " + counterexample;
  out += "\nerror: " + error;
  out += "\n";
  return out;
}

store::Digest request_digest(const CheckRequest& req) {
  store::Hasher h;
  h.str("ecucsp.serve.request");
  h.u32(kServeFormatVersion);
  h.u32(req.assertion_index);
  h.u64(req.max_states);
  h.u32(static_cast<std::uint32_t>(req.sources.size()));
  for (const std::string& s : req.sources) h.str(s);
  return h.finish();
}

// --- binary framing ----------------------------------------------------------

namespace {

std::vector<std::uint8_t> frame(MsgType type, store::ByteWriter payload) {
  std::vector<std::uint8_t> body = payload.take();
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 6);
  out.push_back(kFrameMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void write_check_request(store::ByteWriter& w, const CheckRequest& req) {
  w.uv(req.id);
  w.uv(req.assertion_index);
  w.uv(req.max_states);
  w.uv(req.timeout_ms);
  w.uv(req.sources.size());
  for (const std::string& s : req.sources) w.str(s);
}

void write_check_response(store::ByteWriter& w, const CheckResponse& r) {
  w.uv(r.id);
  w.u8(static_cast<std::uint8_t>(r.status));
  w.u8(static_cast<std::uint8_t>((r.vacuous ? 1 : 0) |
                                 (r.from_cache ? 2 : 0) |
                                 (r.coalesced ? 4 : 0) |
                                 (r.memo_hit ? 8 : 0)));
  w.uv(r.retry_after_ms);
  w.uv(r.states);
  w.uv(r.transitions);
  w.uv(r.wall_ns);
  w.str(r.digest_hex);
  w.str(r.counterexample);
  w.str(r.error);
}

CheckRequest read_check_request(store::ByteReader& r) {
  CheckRequest req;
  req.id = r.uv();
  req.assertion_index = static_cast<std::uint32_t>(r.uv());
  req.max_states = r.uv();
  req.timeout_ms = static_cast<std::uint32_t>(r.uv());
  const std::uint64_t n = r.uv();
  if (n > 1024) throw ProtocolError("too many sources");
  req.sources.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) req.sources.push_back(r.str());
  return req;
}

CheckResponse read_check_response(store::ByteReader& r) {
  CheckResponse resp;
  resp.id = r.uv();
  resp.status = static_cast<ServeStatus>(r.u8());
  const std::uint8_t flags = r.u8();
  resp.vacuous = (flags & 1) != 0;
  resp.from_cache = (flags & 2) != 0;
  resp.coalesced = (flags & 4) != 0;
  resp.memo_hit = (flags & 8) != 0;
  resp.retry_after_ms = static_cast<std::uint32_t>(r.uv());
  resp.states = r.uv();
  resp.transitions = r.uv();
  resp.wall_ns = r.uv();
  resp.digest_hex = r.str();
  resp.counterexample = r.str();
  resp.error = r.str();
  return resp;
}

// --- JSON framing ------------------------------------------------------------

// A deliberately small, strict JSON reader: objects, arrays, strings
// (with \uXXXX), numbers, booleans, null. Enough for the fallback framing;
// anything it cannot parse is a ProtocolError and closes the connection.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  // Parses one value and requires only whitespace after it.
  void parse_line();

  // Extracted top-level object fields (nested values are kept raw).
  bool has(const std::string& k) const { return fields_.count(k) != 0; }
  std::string_view raw(const std::string& k) const {
    auto it = fields_.find(k);
    if (it == fields_.end()) throw ProtocolError("missing field '" + k + "'");
    return it->second;
  }
  std::string string_field(const std::string& k) const;
  std::uint64_t uint_field(const std::string& k) const;
  std::vector<std::string> string_array_field(const std::string& k) const;
  bool bool_field(const std::string& k) const;

 private:
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\r' || s_[i_] == '\n'))
      ++i_;
  }
  char peek() {
    if (i_ >= s_.size()) throw ProtocolError("truncated JSON");
    return s_[i_];
  }
  void expect(char c) {
    if (i_ >= s_.size() || s_[i_] != c) {
      throw ProtocolError(std::string("expected '") + c + "' in JSON");
    }
    ++i_;
  }
  /// Skips one value, returning its raw extent.
  std::string_view skip_value();
  std::string parse_string();

  std::string_view s_;
  std::size_t i_ = 0;
  std::map<std::string, std::string_view> fields_;
};

std::string JsonParser::parse_string() {
  expect('"');
  std::string out;
  while (true) {
    if (i_ >= s_.size()) throw ProtocolError("unterminated JSON string");
    const char c = s_[i_++];
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i_ >= s_.size()) throw ProtocolError("truncated escape");
    const char e = s_[i_++];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i_ + 4 > s_.size()) throw ProtocolError("truncated \\u escape");
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s_[i_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else throw ProtocolError("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs unsupported —
        // the binary framing carries arbitrary bytes, JSON is the fallback).
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        throw ProtocolError("bad escape in JSON string");
    }
  }
}

std::string_view JsonParser::skip_value() {
  ws();
  const std::size_t start = i_;
  const char c = peek();
  if (c == '"') {
    parse_string();
  } else if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i_;
    int depth = 1;
    while (depth > 0) {
      if (i_ >= s_.size()) throw ProtocolError("unbalanced JSON");
      const char d = s_[i_];
      if (d == '"') {
        parse_string();
        continue;
      }
      if (d == '{' || d == '[') ++depth;
      if (d == '}' || d == ']') --depth;
      ++i_;
    }
    (void)close;
  } else if (c == 't') {
    if (s_.substr(i_, 4) != "true") throw ProtocolError("bad JSON literal");
    i_ += 4;
  } else if (c == 'f') {
    if (s_.substr(i_, 5) != "false") throw ProtocolError("bad JSON literal");
    i_ += 5;
  } else if (c == 'n') {
    if (s_.substr(i_, 4) != "null") throw ProtocolError("bad JSON literal");
    i_ += 4;
  } else if (c == '-' || (c >= '0' && c <= '9')) {
    ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
  } else {
    throw ProtocolError("unexpected character in JSON");
  }
  return s_.substr(start, i_ - start);
}

void JsonParser::parse_line() {
  ws();
  expect('{');
  ws();
  if (peek() == '}') {
    ++i_;
  } else {
    while (true) {
      ws();
      std::string key = parse_string();
      ws();
      expect(':');
      fields_[key] = skip_value();
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      break;
    }
  }
  ws();
  if (i_ != s_.size()) throw ProtocolError("trailing bytes after JSON object");
}

std::string JsonParser::string_field(const std::string& k) const {
  JsonParser sub(raw(k));
  sub.ws();
  return sub.parse_string();
}

std::uint64_t JsonParser::uint_field(const std::string& k) const {
  const std::string_view v = raw(k);
  std::uint64_t out = 0;
  bool any = false;
  for (char c : v) {
    if (c < '0' || c > '9') throw ProtocolError("field '" + k + "' not a uint");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  if (!any) throw ProtocolError("field '" + k + "' empty");
  return out;
}

bool JsonParser::bool_field(const std::string& k) const {
  const std::string_view v = raw(k);
  if (v == "true") return true;
  if (v == "false") return false;
  throw ProtocolError("field '" + k + "' not a bool");
}

std::vector<std::string> JsonParser::string_array_field(
    const std::string& k) const {
  JsonParser sub(raw(k));
  sub.ws();
  sub.expect('[');
  std::vector<std::string> out;
  sub.ws();
  if (sub.peek() == ']') return out;
  while (true) {
    sub.ws();
    out.push_back(sub.parse_string());
    sub.ws();
    if (sub.peek() == ',') {
      ++sub.i_;
      continue;
    }
    sub.expect(']');
    return out;
  }
}

ServeStatus status_from_string(std::string_view s) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(ServeStatus::BadRequest);
       ++i) {
    if (to_string(static_cast<ServeStatus>(i)) == s) {
      return static_cast<ServeStatus>(i);
    }
  }
  throw ProtocolError("unknown status '" + std::string(s) + "'");
}

std::vector<std::uint8_t> json_line(std::string line) {
  line.push_back('\n');
  return std::vector<std::uint8_t>(line.begin(), line.end());
}

Msg decode_json_line(std::string_view line) {
  JsonParser p(line);
  p.parse_line();
  if (!p.has("op")) throw ProtocolError("JSON message without \"op\"");
  const std::string op = p.string_field("op");
  Msg m;
  m.json = true;
  if (op == "check") {
    m.type = MsgType::CheckRequest;
    if (p.has("id")) m.check.id = p.uint_field("id");
    if (p.has("assertion"))
      m.check.assertion_index = static_cast<std::uint32_t>(p.uint_field("assertion"));
    if (p.has("max_states")) m.check.max_states = p.uint_field("max_states");
    if (p.has("timeout_ms"))
      m.check.timeout_ms = static_cast<std::uint32_t>(p.uint_field("timeout_ms"));
    m.check.sources = p.string_array_field("sources");
  } else if (op == "check_result") {
    m.type = MsgType::CheckResponse;
    CheckResponse& r = m.response;
    if (p.has("id")) r.id = p.uint_field("id");
    r.status = status_from_string(p.string_field("status"));
    if (p.has("vacuous")) r.vacuous = p.bool_field("vacuous");
    if (p.has("from_cache")) r.from_cache = p.bool_field("from_cache");
    if (p.has("coalesced")) r.coalesced = p.bool_field("coalesced");
    if (p.has("memo_hit")) r.memo_hit = p.bool_field("memo_hit");
    if (p.has("retry_after_ms"))
      r.retry_after_ms = static_cast<std::uint32_t>(p.uint_field("retry_after_ms"));
    if (p.has("states")) r.states = p.uint_field("states");
    if (p.has("transitions")) r.transitions = p.uint_field("transitions");
    if (p.has("wall_ns")) r.wall_ns = p.uint_field("wall_ns");
    if (p.has("digest")) r.digest_hex = p.string_field("digest");
    if (p.has("counterexample")) r.counterexample = p.string_field("counterexample");
    if (p.has("error")) r.error = p.string_field("error");
  } else if (op == "stats") {
    m.type = MsgType::StatsRequest;
  } else if (op == "stats_result") {
    m.type = MsgType::StatsResponse;
    m.stats_json = std::string(p.raw("stats"));
  } else if (op == "ping") {
    m.type = MsgType::Ping;
  } else if (op == "pong") {
    m.type = MsgType::Pong;
  } else {
    throw ProtocolError("unknown op '" + op + "'");
  }
  return m;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::vector<std::uint8_t> encode(const CheckRequest& req, bool json) {
  if (!json) {
    store::ByteWriter w;
    write_check_request(w, req);
    return frame(MsgType::CheckRequest, std::move(w));
  }
  std::string line = "{\"op\":\"check\",\"id\":" + std::to_string(req.id) +
                     ",\"assertion\":" + std::to_string(req.assertion_index) +
                     ",\"max_states\":" + std::to_string(req.max_states) +
                     ",\"timeout_ms\":" + std::to_string(req.timeout_ms) +
                     ",\"sources\":[";
  for (std::size_t i = 0; i < req.sources.size(); ++i) {
    if (i) line += ',';
    line += '"' + json_escape(req.sources[i]) + '"';
  }
  line += "]}";
  return json_line(std::move(line));
}

std::vector<std::uint8_t> encode(const CheckResponse& r, bool json) {
  if (!json) {
    store::ByteWriter w;
    write_check_response(w, r);
    return frame(MsgType::CheckResponse, std::move(w));
  }
  std::string line =
      "{\"op\":\"check_result\",\"id\":" + std::to_string(r.id) +
      ",\"status\":\"" + std::string(to_string(r.status)) + "\"" +
      ",\"vacuous\":" + (r.vacuous ? "true" : "false") +
      ",\"from_cache\":" + (r.from_cache ? "true" : "false") +
      ",\"coalesced\":" + (r.coalesced ? "true" : "false") +
      ",\"memo_hit\":" + (r.memo_hit ? "true" : "false") +
      ",\"retry_after_ms\":" + std::to_string(r.retry_after_ms) +
      ",\"states\":" + std::to_string(r.states) +
      ",\"transitions\":" + std::to_string(r.transitions) +
      ",\"wall_ns\":" + std::to_string(r.wall_ns) +
      ",\"digest\":\"" + json_escape(r.digest_hex) + "\"" +
      ",\"counterexample\":\"" + json_escape(r.counterexample) + "\"" +
      ",\"error\":\"" + json_escape(r.error) + "\"}";
  return json_line(std::move(line));
}

std::vector<std::uint8_t> encode_stats_request(bool json) {
  if (json) return json_line("{\"op\":\"stats\"}");
  return frame(MsgType::StatsRequest, store::ByteWriter{});
}

std::vector<std::uint8_t> encode_stats_response(const std::string& stats_json,
                                                bool json) {
  if (json) {
    return json_line("{\"op\":\"stats_result\",\"stats\":" + stats_json + "}");
  }
  store::ByteWriter w;
  w.str(stats_json);
  return frame(MsgType::StatsResponse, std::move(w));
}

std::vector<std::uint8_t> encode_ping(bool json) {
  if (json) return json_line("{\"op\":\"ping\"}");
  return frame(MsgType::Ping, store::ByteWriter{});
}

std::vector<std::uint8_t> encode_pong(bool json) {
  if (json) return json_line("{\"op\":\"pong\"}");
  return frame(MsgType::Pong, store::ByteWriter{});
}

void FrameBuffer::feed(const void* data, std::size_t n) {
  // Compact consumed bytes before growing; keeps the buffer proportional
  // to one frame, not the whole connection history.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
  if (buf_.size() - pos_ > max_frame_ + 6) {
    throw ProtocolError("frame exceeds maximum size");
  }
}

std::optional<Msg> FrameBuffer::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail == 0) return std::nullopt;
  const std::uint8_t first = buf_[pos_];

  if (first == kFrameMagic) {
    if (avail < 6) return std::nullopt;
    const std::uint8_t type = buf_[pos_ + 1];
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[pos_ + 2]) |
                              (static_cast<std::uint32_t>(buf_[pos_ + 3]) << 8) |
                              (static_cast<std::uint32_t>(buf_[pos_ + 4]) << 16) |
                              (static_cast<std::uint32_t>(buf_[pos_ + 5]) << 24);
    if (len > max_frame_) throw ProtocolError("frame exceeds maximum size");
    if (avail < 6u + len) return std::nullopt;
    const std::span<const std::uint8_t> payload(buf_.data() + pos_ + 6, len);
    pos_ += 6u + len;
    Msg m;
    m.json = false;
    store::ByteReader r(payload);
    try {
      switch (static_cast<MsgType>(type)) {
        case MsgType::CheckRequest:
          m.type = MsgType::CheckRequest;
          m.check = read_check_request(r);
          break;
        case MsgType::CheckResponse:
          m.type = MsgType::CheckResponse;
          m.response = read_check_response(r);
          break;
        case MsgType::StatsRequest:
          m.type = MsgType::StatsRequest;
          break;
        case MsgType::StatsResponse:
          m.type = MsgType::StatsResponse;
          m.stats_json = r.str();
          break;
        case MsgType::Ping:
          m.type = MsgType::Ping;
          break;
        case MsgType::Pong:
          m.type = MsgType::Pong;
          break;
        default:
          throw ProtocolError("unknown frame type " + std::to_string(type));
      }
    } catch (const store::SerializeError& e) {
      throw ProtocolError(e.what());
    }
    return m;
  }

  if (first == '{') {
    // JSON-lines: wait for the newline terminator.
    for (std::size_t i = pos_; i < buf_.size(); ++i) {
      if (buf_[i] == '\n') {
        const std::string_view line(
            reinterpret_cast<const char*>(buf_.data() + pos_), i - pos_);
        Msg m = decode_json_line(line);
        pos_ = i + 1;
        return m;
      }
    }
    return std::nullopt;
  }

  // Tolerate blank lines between JSON messages; anything else is garbage.
  if (first == '\n' || first == '\r' || first == ' ' || first == '\t') {
    ++pos_;
    return next();
  }
  throw ProtocolError("unrecognised framing byte");
}

namespace {

// strerror_r comes in two flavours — GNU returns char* (possibly a static
// string, ignoring the buffer), POSIX returns int and fills the buffer.
// Overload resolution picks the right reading without feature-test macros.
const char* strerror_result(const char* returned, const char*) {
  return returned;
}
const char* strerror_result(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}

}  // namespace

std::string errno_text(int err) {
  char buf[256] = {};
  return strerror_result(::strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace ecucsp::serve
