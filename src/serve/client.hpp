// Blocking client for the verification daemon.
//
// A thin synchronous wrapper over one connected socket: encode → write →
// read → decode, one FrameBuffer for reassembly. Request/response helpers
// (check(), stats(), ping()) are what tests and the CLI use for one-at-a-
// time traffic; pipelined fan-out (send many, then collect) uses the raw
// send()/recv() pair — the daemon replies in completion order, so callers
// correlate by CheckRequest::id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace ecucsp::serve {

class Client {
 public:
  /// Both throw std::runtime_error when the daemon is not reachable.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Write raw encoded bytes (one or more frames) to the socket.
  void send(const std::vector<std::uint8_t>& bytes);

  /// Block until one complete message arrives. Throws on EOF or a
  /// malformed stream.
  Msg recv();

  // One-shot request/response helpers. `json` selects the framing.
  CheckResponse check(const CheckRequest& req, bool json = false);
  std::string stats(bool json = false);
  bool ping(bool json = false);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameBuffer frames_;
};

}  // namespace ecucsp::serve
