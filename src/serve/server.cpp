#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ecucsp::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_retry(int fd) {
  while (::close(fd) != 0 && errno == EINTR) {
  }
}

}  // namespace

Server::Server(VerifyService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("serve: pipe() failed: " +
                             errno_text(errno));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
}

Server::~Server() {
  for (int fd : listeners_) close_retry(fd);
  for (auto& [id, conn] : conns_) close_retry(conn.fd);
  if (options_.unix_path) ::unlink(options_.unix_path->c_str());
  close_retry(wake_rd_);
  close_retry(wake_wr_);
}

void Server::listen() {
  if (options_.unix_path) {
    const std::string& path = *options_.unix_path;
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("serve: socket path too long: " + path);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error("serve: socket(AF_UNIX) failed: " +
                               errno_text(errno));
    }
    ::unlink(path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, options_.backlog) != 0) {
      const std::string err = errno_text(errno);
      close_retry(fd);
      throw std::runtime_error("serve: bind/listen " + path + ": " + err);
    }
    set_nonblocking(fd);
    listeners_.push_back(fd);
    bound_ += (bound_.empty() ? "" : ", ") + ("unix:" + path);
  }
  if (options_.tcp_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error("serve: socket(AF_INET) failed: " +
                               errno_text(errno));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(*options_.tcp_port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, options_.backlog) != 0) {
      const std::string err = errno_text(errno);
      close_retry(fd);
      throw std::runtime_error("serve: bind/listen tcp:" +
                               std::to_string(*options_.tcp_port) + ": " + err);
    }
    set_nonblocking(fd);
    listeners_.push_back(fd);
    bound_ += (bound_.empty() ? "" : ", ") +
              ("tcp:127.0.0.1:" + std::to_string(*options_.tcp_port));
  }
  if (listeners_.empty()) {
    throw std::runtime_error("serve: no listener configured (--sock/--tcp)");
  }
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Async-signal-safe wakeup; a full pipe already guarantees a wakeup.
  const char b = 's';
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
}

void Server::wake() {
  const char b = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
}

void Server::enqueue(std::uint64_t conn_id, std::vector<std::uint8_t> bytes) {
  {
    std::lock_guard lk(done_mu_);
    done_.emplace_back(conn_id, std::move(bytes));
  }
  wake();
}

void Server::drain_completions() {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> batch;
  {
    std::lock_guard lk(done_mu_);
    batch.swap(done_);
  }
  for (auto& [conn_id, bytes] : batch) {
    auto it = conns_.find(conn_id);
    // A vanished connection simply drops its copy of the verdict — the
    // flight completed for every other waiter regardless.
    if (it == conns_.end()) continue;
    it->second.outbox.push_back(std::move(bytes));
  }
}

void Server::accept_on(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error; poll again
    }
    set_nonblocking(fd);
    const std::uint64_t id = next_conn_id_++;
    auto [it, inserted] = conns_.emplace(id, Connection(options_.max_frame));
    it->second.fd = fd;
  }
}

bool Server::read_from(std::uint64_t conn_id, Connection& conn) {
  std::uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) return false;  // peer closed
    try {
      conn.frames.feed(buf, static_cast<std::size_t>(n));
      while (auto msg = conn.frames.next()) {
        handle(conn_id, conn, std::move(*msg));
      }
    } catch (const ProtocolError&) {
      return false;  // malformed stream: close, never guess
    }
    if (static_cast<std::size_t>(n) < sizeof buf) break;
  }
  return true;
}

void Server::handle(std::uint64_t conn_id, Connection& conn, Msg msg) {
  const bool json = msg.json;
  switch (msg.type) {
    case MsgType::Ping:
      conn.outbox.push_back(encode_pong(json));
      return;
    case MsgType::StatsRequest:
      conn.outbox.push_back(encode_stats_response(service_.stats_json(), json));
      return;
    case MsgType::CheckRequest: {
      // The callback may run on this thread (memo hit, rejection) or a
      // scheduler worker; both paths go through the completion queue so
      // the loop alone touches connection state.
      service_.submit(std::move(msg.check),
                      [this, conn_id, json](CheckResponse resp) {
                        enqueue(conn_id, encode(resp, json));
                      });
      return;
    }
    default:
      // Server-to-client message types arriving here are a client bug;
      // ignore rather than kill a connection that may carry real work.
      return;
  }
}

bool Server::flush(Connection& conn) {
  while (!conn.outbox.empty()) {
    const std::vector<std::uint8_t>& front = conn.outbox.front();
    while (conn.front_written < front.size()) {
      const ssize_t n = ::write(conn.fd, front.data() + conn.front_written,
                                front.size() - conn.front_written);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;  // EPIPE etc.: peer is gone
      }
      conn.front_written += static_cast<std::size_t>(n);
    }
    conn.outbox.pop_front();
    conn.front_written = 0;
  }
  return true;
}

void Server::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  close_retry(it->second.fd);
  conns_.erase(it);
}

bool Server::run() {
  using Clock = std::chrono::steady_clock;
  bool draining = false;
  bool clean = true;
  bool cancelled_stragglers = false;
  Clock::time_point drain_deadline{};

  while (true) {
    if (stop_.load(std::memory_order_relaxed) && !draining) {
      draining = true;
      drain_deadline = Clock::now() + options_.drain_timeout;
      service_.begin_drain();
      for (int fd : listeners_) close_retry(fd);
      listeners_.clear();
    }

    if (draining && !cancelled_stragglers && service_.in_flight() > 0 &&
        Clock::now() >= drain_deadline) {
      // Timeout expired: cancel cooperatively and wait for the unwinding.
      // Completion callbacks only append to the queue, so blocking here
      // cannot deadlock; their bytes are flushed below.
      clean = false;
      cancelled_stragglers = true;
      service_.drain(std::chrono::milliseconds(0));
    }

    drain_completions();

    if (draining && service_.in_flight() == 0) {
      bool pending_out = false;
      {
        std::lock_guard lk(done_mu_);
        pending_out = !done_.empty();
      }
      for (auto& [id, conn] : conns_) {
        if (!conn.outbox.empty()) pending_out = true;
      }
      if (!pending_out) break;
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_rd_, POLLIN, 0});
    for (int fd : listeners_) fds.push_back({fd, POLLIN, 0});
    std::vector<std::uint64_t> ids;  // parallel to fds from this index on
    const std::size_t conn_base = fds.size();
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }

    // Bounded poll while draining so the deadline fires without traffic.
    const int timeout_ms = draining ? 50 : 1000;
    int ready;
    do {
      ready = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) break;  // unrecoverable

    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (::read(wake_rd_, sink, sizeof sink) > 0) {
      }
    }
    for (std::size_t i = 1; i < conn_base; ++i) {
      if (fds[i].revents & POLLIN) accept_on(fds[i].fd);
    }
    std::vector<std::uint64_t> to_close;
    for (std::size_t i = conn_base; i < fds.size(); ++i) {
      const std::uint64_t id = ids[i - conn_base];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      bool ok = true;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) ok = false;
      if (ok && (fds[i].revents & POLLIN)) ok = read_from(id, conn);
      if (ok && !conn.outbox.empty()) ok = flush(conn);
      if (!ok) to_close.push_back(id);
    }
    for (std::uint64_t id : to_close) close_conn(id);
  }

  // Final best-effort flush of everything still queued (bounded).
  drain_completions();
  const Clock::time_point flush_deadline =
      Clock::now() + std::chrono::seconds(2);
  while (Clock::now() < flush_deadline) {
    bool pending = false;
    std::vector<std::uint64_t> to_close;
    for (auto& [id, conn] : conns_) {
      if (conn.outbox.empty()) continue;
      if (!flush(conn)) {
        to_close.push_back(id);
      } else if (!conn.outbox.empty()) {
        pending = true;
      }
    }
    for (std::uint64_t id : to_close) close_conn(id);
    if (!pending) break;
    ::poll(nullptr, 0, 10);
  }
  return clean;
}

}  // namespace ecucsp::serve
