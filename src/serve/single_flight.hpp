// Request coalescing by digest — the single-flight table.
//
// A *flight* is one in-progress engine check keyed by the request digest.
// The first request for a key creates the flight and becomes its leader
// (it alone is charged against admission control and runs on the
// scheduler); every concurrent request with the same key attaches as a
// waiter for free. When the leader's check completes, the one result is
// fanned out to every attached waiter — a million vehicles submitting the
// same ECU configuration cost one state-space sweep.
//
// Waiters are completion callbacks, not blocked threads: a disconnected
// client's callback simply finds its connection gone and drops the bytes —
// the shared check is never aborted by one waiter leaving (the flight's
// CancelToken belongs to the flight, not to any client).
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/cancel.hpp"
#include "serve/protocol.hpp"
#include "store/digest.hpp"

namespace ecucsp::serve {

class SingleFlight {
 public:
  using Clock = std::chrono::steady_clock;

  struct Waiter {
    std::uint64_t request_id = 0;
    Clock::time_point enqueued{};
    std::function<void(CheckResponse)> done;
  };

  struct Flight {
    store::Digest key;
    /// Armed with the leader's deadline; request_cancel()ed only by the
    /// daemon's drain path, never by a departing waiter.
    CancelToken token;
    std::vector<Waiter> waiters;  // waiters[0] is the leader
  };

  /// Attach to the flight for `key`, creating it if absent. Returns the
  /// flight and whether the caller is its leader (and must run the check).
  /// `leader_gate`: invoked under the table lock *before* the new flight is
  /// published when the caller would become leader; returning false refuses
  /// the flight (admission control) and nothing is inserted or attached —
  /// `waiter` is moved from only on success, so a refused caller still owns
  /// its callback and can answer with a rejection.
  struct JoinResult {
    std::shared_ptr<Flight> flight;  // null when refused
    bool leader = false;
  };
  JoinResult join(const store::Digest& key, Waiter& waiter,
                  const std::function<bool()>& leader_gate);

  /// Remove the flight and return its waiters for fan-out. The caller
  /// invokes the callbacks outside any lock.
  std::vector<Waiter> complete(const std::shared_ptr<Flight>& flight);

  /// Cancel every in-progress flight's token (drain/shutdown path).
  void cancel_all();

  std::size_t in_flight() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<store::Digest, std::shared_ptr<Flight>, store::DigestHash>
      table_;
};

}  // namespace ecucsp::serve
