// Observability surface of the verification service.
//
// All counters are relaxed atomics bumped on the request path — a /stats
// request snapshots them without stopping the world, so two concurrent
// snapshots may disagree by in-flight increments but never tear. Latency
// is tracked in a fixed log2-bucketed histogram (one bucket per power of
// two nanoseconds): p50/p90/p99 are read as the geometric midpoint of the
// bucket holding that quantile, which is exact to within a factor of √2 —
// plenty for a load-shedding signal and entirely lock-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ecucsp::serve {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;  // 2^0 .. 2^47 ns (~1.6 days)

  void record(std::uint64_t ns);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Approximate quantile in milliseconds; q in (0, 1]. 0 when empty.
  double quantile_ms(double q) const;
  double max_ms() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

struct ServiceStats {
  // Request accounting.
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> engine_runs{0};   // flights admitted to the pool
  std::atomic<std::uint64_t> coalesced{0};     // waiters attached to a flight
  std::atomic<std::uint64_t> memo_hits{0};     // served from the response memo
  std::atomic<std::uint64_t> shed{0};          // Overloaded rejections
  std::atomic<std::uint64_t> rejected_draining{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> completed{0};     // flights completed

  // Verdict breakdown over completed flights.
  std::atomic<std::uint64_t> passed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> state_limit{0};
  std::atomic<std::uint64_t> errors{0};

  LatencyHistogram latency;
};

}  // namespace ecucsp::serve
