// CAPL lexer. C-style comments (// and /* */), decimal/hex integers,
// character and string literals.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "capl/token.hpp"

namespace ecucsp::capl {

class CaplError : public std::runtime_error {
 public:
  CaplError(const std::string& what, int line, int column)
      : std::runtime_error("CAPL error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
        line(line),
        column(column) {}
  int line;
  int column;
};

std::vector<Token> lex(std::string_view source);

}  // namespace ecucsp::capl
