// Token stream for the CAPL subset (Vector's Communication Access
// Programming Language, a C dialect with event procedures).
#pragma once

#include <cstdint>
#include <string>

namespace ecucsp::capl {

enum class Tok : std::uint8_t {
  End,
  Ident,
  Number,     // integer (decimal or 0x hex)
  CharLit,    // 'a'
  StringLit,  // "text"
  // keywords
  KwIncludes,
  KwVariables,
  KwOn,
  KwMessage,
  KwTimer,    // both the 'timer' type and 'on timer'
  KwMsTimer,
  KwKey,
  KwStart,
  KwStopM,    // stopMeasurement
  KwInt,
  KwLong,
  KwByte,
  KwWord,
  KwDword,
  KwChar,
  KwFloat,
  KwDouble,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwReturn,
  KwThis,
  // punctuation
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Colon,
  // operators
  Assign,     // =
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Less, Greater, LessEq, GreaterEq,
  AndAnd, OrOr, Not,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
  PlusPlus, MinusMinus,
  PlusAssign, MinusAssign,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  std::int64_t number = 0;
  int line = 0;
  int column = 0;
};

std::string to_string(Tok k);

}  // namespace ecucsp::capl
