// CAPL interpreter: runs a parsed CAPL program as a simulation node.
//
// This is the execution half of the CANoe substitute: event procedures are
// dispatched by the simulation environment ('on start', bus frames, timer
// expiry, key presses), and the CAPL intrinsics output()/setTimer()/
// cancelTimer()/write() are wired to the bus, the scheduler and the log.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "capl/ast.hpp"
#include "capl/lexer.hpp"
#include "sim/environment.hpp"

namespace ecucsp::capl {

/// A CAPL runtime value: integer scalar or CAN message object.
struct RtValue {
  enum class Kind : std::uint8_t { Int, Frame };
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  can::CanFrame frame;

  static RtValue of_int(std::int64_t v) {
    RtValue out;
    out.i = v;
    return out;
  }
  static RtValue of_frame(can::CanFrame f) {
    RtValue out;
    out.kind = Kind::Frame;
    out.frame = f;
    return out;
  }
};

class CaplNode : public sim::Node {
 public:
  /// `db` (optional) resolves DBC message names and signal accesses; it
  /// must outlive the node.
  CaplNode(std::string name, const CaplProgram& program,
           const can::DbcDatabase* db = nullptr);

  void on_start() override;
  void on_message(const can::CanFrame& frame) override;
  void on_stop() override;

  /// Simulate a key press (drives 'on key' procedures).
  void press_key(char c);

  /// Read a global variable (tests & assertions).
  std::optional<RtValue> global(const std::string& name) const;

  /// Call a CAPL function directly (tests).
  RtValue call_function(const std::string& name, std::vector<RtValue> args);

 private:
  enum class Flow : std::uint8_t { Normal, Break, Return };
  struct Frame;  // local scope stack

  using Scope = std::map<std::string, RtValue>;

  void run_handler(const EventHandler& h, const can::CanFrame* trigger);
  Flow exec(const CaplStmt& s, std::vector<Scope>& scopes,
            const can::CanFrame* trigger, RtValue& ret);
  RtValue eval(const CaplExpr& e, std::vector<Scope>& scopes,
               const can::CanFrame* trigger);
  void assign(const CaplExpr& lvalue, RtValue value, std::vector<Scope>& scopes,
              const can::CanFrame* trigger);
  RtValue* find_var(const std::string& name, std::vector<Scope>& scopes);

  RtValue builtin_call(const CaplExpr& call, std::vector<RtValue> args,
                       std::vector<Scope>& scopes, const can::CanFrame* trigger);
  RtValue make_message_value(std::int64_t msg_id, const std::string& msg_name,
                             int line) const;

  const can::SignalSpec& signal_spec(const can::CanFrame& frame,
                                     const std::string& name, int line) const;

  const CaplProgram& program_;
  const can::DbcDatabase* db_;
  Scope globals_;
  std::map<std::string, CaplType> timer_types_;
  std::map<std::string, sim::Scheduler::TaskId> active_timers_;
};

/// Minimal CAPL write() formatting: %d, %x, %s, %%.
std::string capl_format(const std::string& fmt,
                        const std::vector<RtValue>& args);

}  // namespace ecucsp::capl
