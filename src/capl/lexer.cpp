#include "capl/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace ecucsp::capl {

std::string to_string(Tok k) {
  switch (k) {
    case Tok::End: return "<end>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::CharLit: return "character literal";
    case Tok::StringLit: return "string literal";
    case Tok::KwIncludes: return "'includes'";
    case Tok::KwVariables: return "'variables'";
    case Tok::KwOn: return "'on'";
    case Tok::KwMessage: return "'message'";
    case Tok::KwTimer: return "'timer'";
    case Tok::KwMsTimer: return "'msTimer'";
    case Tok::KwKey: return "'key'";
    case Tok::KwStart: return "'start'";
    case Tok::KwStopM: return "'stopMeasurement'";
    case Tok::KwInt: return "'int'";
    case Tok::KwLong: return "'long'";
    case Tok::KwByte: return "'byte'";
    case Tok::KwWord: return "'word'";
    case Tok::KwDword: return "'dword'";
    case Tok::KwChar: return "'char'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwDouble: return "'double'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwSwitch: return "'switch'";
    case Tok::KwCase: return "'case'";
    case Tok::KwDefault: return "'default'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwThis: return "'this'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::Colon: return "':'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Less: return "'<'";
    case Tok::Greater: return "'>'";
    case Tok::LessEq: return "'<='";
    case Tok::GreaterEq: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"includes", Tok::KwIncludes},
    {"variables", Tok::KwVariables},
    {"on", Tok::KwOn},
    {"message", Tok::KwMessage},
    {"timer", Tok::KwTimer},
    {"msTimer", Tok::KwMsTimer},
    {"key", Tok::KwKey},
    {"start", Tok::KwStart},
    {"stopMeasurement", Tok::KwStopM},
    {"int", Tok::KwInt},
    {"long", Tok::KwLong},
    {"byte", Tok::KwByte},
    {"word", Tok::KwWord},
    {"dword", Tok::KwDword},
    {"char", Tok::KwChar},
    {"float", Tok::KwFloat},
    {"double", Tok::KwDouble},
    {"void", Tok::KwVoid},
    {"if", Tok::KwIf},
    {"else", Tok::KwElse},
    {"while", Tok::KwWhile},
    {"for", Tok::KwFor},
    {"switch", Tok::KwSwitch},
    {"case", Tok::KwCase},
    {"default", Tok::KwDefault},
    {"break", Tok::KwBreak},
    {"return", Tok::KwReturn},
    {"this", Tok::KwThis},
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  const auto starts = [&](std::string_view s) {
    return src.substr(i).starts_with(s);
  };
  const auto push = [&](Tok k, std::size_t len, std::string text = {}) {
    out.push_back({k, std::move(text), 0, line, col});
    advance(len);
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (starts("//")) {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (starts("/*")) {
      const int start_line = line;
      advance(2);
      while (i < src.size() && !starts("*/")) advance(1);
      if (i >= src.size()) throw CaplError("unterminated comment", start_line, 1);
      advance(2);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      int base = 10;
      if (starts("0x") || starts("0X")) {
        base = 16;
        j += 2;
        while (j < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[j]))) {
          ++j;
        }
      } else {
        while (j < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[j]))) {
          ++j;
        }
      }
      Token t{Tok::Number, std::string(src.substr(i, j - i)), 0, line, col};
      t.number = std::stoll(t.text, nullptr, base);
      out.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_')) {
        ++j;
      }
      const std::string_view word = src.substr(i, j - i);
      if (auto it = kKeywords.find(word); it != kKeywords.end()) {
        push(it->second, word.size());
      } else {
        push(Tok::Ident, word.size(), std::string(word));
      }
      continue;
    }
    if (c == '\'') {
      if (i + 2 >= src.size() || src[i + 2] != '\'') {
        throw CaplError("malformed character literal", line, col);
      }
      Token t{Tok::CharLit, std::string(1, src[i + 1]), src[i + 1], line, col};
      out.push_back(std::move(t));
      advance(3);
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      std::string text;
      while (j < src.size() && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < src.size()) {
          ++j;
          switch (src[j]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += src[j]; break;
          }
        } else {
          text += src[j];
        }
        ++j;
      }
      if (j >= src.size()) throw CaplError("unterminated string", line, col);
      push(Tok::StringLit, j - i + 1, std::move(text));
      continue;
    }
    if (starts("==")) { push(Tok::EqEq, 2); continue; }
    if (starts("!=")) { push(Tok::NotEq, 2); continue; }
    if (starts("<=")) { push(Tok::LessEq, 2); continue; }
    if (starts(">=")) { push(Tok::GreaterEq, 2); continue; }
    if (starts("&&")) { push(Tok::AndAnd, 2); continue; }
    if (starts("||")) { push(Tok::OrOr, 2); continue; }
    if (starts("<<")) { push(Tok::Shl, 2); continue; }
    if (starts(">>")) { push(Tok::Shr, 2); continue; }
    if (starts("++")) { push(Tok::PlusPlus, 2); continue; }
    if (starts("--")) { push(Tok::MinusMinus, 2); continue; }
    if (starts("+=")) { push(Tok::PlusAssign, 2); continue; }
    if (starts("-=")) { push(Tok::MinusAssign, 2); continue; }
    switch (c) {
      case '{': push(Tok::LBrace, 1); continue;
      case '}': push(Tok::RBrace, 1); continue;
      case '(': push(Tok::LParen, 1); continue;
      case ')': push(Tok::RParen, 1); continue;
      case '[': push(Tok::LBracket, 1); continue;
      case ']': push(Tok::RBracket, 1); continue;
      case ';': push(Tok::Semi, 1); continue;
      case ',': push(Tok::Comma, 1); continue;
      case '.': push(Tok::Dot, 1); continue;
      case ':': push(Tok::Colon, 1); continue;
      case '=': push(Tok::Assign, 1); continue;
      case '+': push(Tok::Plus, 1); continue;
      case '-': push(Tok::Minus, 1); continue;
      case '*': push(Tok::Star, 1); continue;
      case '/': push(Tok::Slash, 1); continue;
      case '%': push(Tok::Percent, 1); continue;
      case '<': push(Tok::Less, 1); continue;
      case '>': push(Tok::Greater, 1); continue;
      case '!': push(Tok::Not, 1); continue;
      case '&': push(Tok::Amp, 1); continue;
      case '|': push(Tok::Pipe, 1); continue;
      case '^': push(Tok::Caret, 1); continue;
      case '~': push(Tok::Tilde, 1); continue;
      default:
        throw CaplError(std::string("unexpected character '") + c + "'", line,
                        col);
    }
  }
  out.push_back({Tok::End, {}, 0, line, col});
  return out;
}

}  // namespace ecucsp::capl
