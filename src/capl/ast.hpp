// Abstract syntax for the CAPL subset.
//
// A CAPL program has four block kinds (paper, Section IV-B-1): optional
// 'includes' and 'variables' sections, event procedures ('on start',
// 'on message', 'on timer', 'on key', 'on stopMeasurement') and free
// functions. There is no main(); the runtime dispatches events.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ecucsp::capl {

enum class CaplType : std::uint8_t {
  Int, Long, Byte, Word, Dword, Char, Float, Double, Void,
  Message,  // CAN message object
  MsTimer,  // millisecond timer
  Timer,    // second timer
};

std::string to_string(CaplType t);

// --- expressions -------------------------------------------------------------

struct CaplExpr;
using CaplExprPtr = std::unique_ptr<CaplExpr>;

enum class CExprKind : std::uint8_t {
  Number,
  CharLit,
  StringLit,
  Name,
  This,        // the triggering message inside 'on message'
  Call,        // name(args...)
  Member,      // object.member  (dlc, id, or a DBC signal name)
  ByteAccess,  // object.byte(i) / .word(i) / .dword(i)
  Binary,
  Unary,
};

enum class CBinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Gt, Le, Ge,
  LAnd, LOr,
  BAnd, BOr, BXor, Shl, Shr,
};

enum class CUnOp : std::uint8_t { Neg, Not, BNot };

struct CaplExpr {
  CExprKind kind = CExprKind::Number;
  int line = 0;
  int column = 0;
  /// Stable pre-order id assigned by the parser (0 until numbered). Flow
  /// analyses key CFG nodes and taint facts on these rather than on node
  /// addresses, so results are reproducible across runs and mutations
  /// applied to a re-parsed copy line up with the original ids.
  std::uint32_t node_id = 0;

  std::int64_t number = 0;   // Number / CharLit (code point)
  std::string text;          // StringLit / Name / Call head / Member name
  std::vector<CaplExprPtr> args;  // Call args; Binary/Unary operands
  CaplExprPtr object;        // Member / ByteAccess base
  int access_width = 1;      // ByteAccess: 1 = byte, 2 = word, 4 = dword
  CBinOp bin = CBinOp::Add;
  CUnOp un = CUnOp::Neg;
};

// --- statements --------------------------------------------------------------

struct CaplStmt;
using CaplStmtPtr = std::unique_ptr<CaplStmt>;

enum class CStmtKind : std::uint8_t {
  Block,
  VarDecl,
  ExprStmt,
  Assign,   // lvalue (=, +=, -=) value
  IncDec,   // lvalue++ / lvalue--
  If,
  While,
  For,
  Switch,   // value = scrutinee; body = Case statements
  Case,     // msg_id = label value; delta = 1 for 'default'; body = stmts
  Break,
  Return,
};

struct CaplStmt {
  CStmtKind kind = CStmtKind::Block;
  int line = 0;
  int column = 0;
  std::uint32_t node_id = 0;  // see CaplExpr::node_id

  std::vector<CaplStmtPtr> body;  // Block
  // VarDecl:
  CaplType var_type = CaplType::Int;
  std::string var_name;
  std::int64_t msg_id = -1;       // message declared by numeric id
  std::string msg_name;           // message declared by DBC name
  CaplExprPtr init;
  // Assign / IncDec:
  CaplExprPtr lvalue;
  CaplExprPtr value;              // Assign rhs; If/While condition; Return value
  int assign_op = 0;              // 0: '=', +1: '+=', -1: '-='
  int delta = 0;                  // IncDec: +1 / -1
  // If:
  CaplStmtPtr then_branch;
  CaplStmtPtr else_branch;        // may be null
  // While / For:
  CaplStmtPtr loop_body;
  CaplStmtPtr for_init;           // may be null
  CaplStmtPtr for_step;           // may be null
  // ExprStmt:
  CaplExprPtr expr;
};

// --- top level ----------------------------------------------------------------

struct EventHandler {
  enum class Kind : std::uint8_t { Start, StopMeasurement, Message, Timer, Key };
  Kind kind = Kind::Start;
  std::string target;      // message/timer name; key character
  std::int64_t msg_id = -1;  // 'on message 0x100'
  bool any_message = false;  // 'on message *'
  CaplStmtPtr body;
  int line = 0;
  int column = 0;
};

struct FunctionDecl {
  CaplType return_type = CaplType::Void;
  std::string name;
  std::vector<std::pair<CaplType, std::string>> params;
  CaplStmtPtr body;
  int line = 0;
  int column = 0;
};

struct VarDeclTop {
  CaplType type = CaplType::Int;
  std::string name;
  std::int64_t msg_id = -1;
  std::string msg_name;
  CaplExprPtr init;  // scalar initialiser
  int line = 0;
  int column = 0;
};

struct CaplProgram {
  std::vector<std::string> includes;
  std::vector<VarDeclTop> variables;
  std::vector<EventHandler> handlers;
  std::vector<FunctionDecl> functions;

  const EventHandler* find_handler(EventHandler::Kind kind,
                                   const std::string& target = {}) const;
  const FunctionDecl* find_function(const std::string& name) const;
};

/// Assign pre-order node ids (1-based; 0 stays "unnumbered") to every
/// statement and expression in the program. parse_capl() calls this before
/// returning; re-run it after structural mutation to renumber.
void number_nodes(CaplProgram& prog);

}  // namespace ecucsp::capl
