#include "capl/interp.hpp"

#include <cstdio>

namespace ecucsp::capl {

std::string capl_format(const std::string& fmt,
                        const std::vector<RtValue>& args) {
  std::string out;
  std::size_t arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%' || i + 1 >= fmt.size()) {
      out += fmt[i];
      continue;
    }
    const char spec = fmt[++i];
    if (spec == '%') {
      out += '%';
      continue;
    }
    if (arg >= args.size()) {
      out += '%';
      out += spec;
      continue;
    }
    const RtValue& v = args[arg++];
    char buf[32];
    switch (spec) {
      case 'd':
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v.i));
        out += buf;
        break;
      case 'x':
        std::snprintf(buf, sizeof buf, "%llx",
                      static_cast<unsigned long long>(v.i));
        out += buf;
        break;
      case 's':
        if (v.kind == RtValue::Kind::Frame) {
          out += v.frame.to_string();
        } else {
          std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v.i));
          out += buf;
        }
        break;
      default:
        out += '%';
        out += spec;
        break;
    }
  }
  return out;
}

CaplNode::CaplNode(std::string name, const CaplProgram& program,
                   const can::DbcDatabase* db)
    : sim::Node(std::move(name)), program_(program), db_(db) {
  std::vector<Scope> boot;
  boot.emplace_back();
  for (const VarDeclTop& v : program_.variables) {
    switch (v.type) {
      case CaplType::Message:
        globals_[v.name] = make_message_value(v.msg_id, v.msg_name, v.line);
        break;
      case CaplType::MsTimer:
      case CaplType::Timer:
        timer_types_[v.name] = v.type;
        break;
      default: {
        RtValue init = RtValue::of_int(0);
        if (v.init) init = eval(*v.init, boot, nullptr);
        globals_[v.name] = init;
        break;
      }
    }
  }
}

RtValue CaplNode::make_message_value(std::int64_t msg_id,
                                     const std::string& msg_name,
                                     int line) const {
  can::CanFrame f;
  if (msg_id >= 0) {
    f.id = static_cast<can::CanId>(msg_id);
    f.extended = f.id > can::MAX_STANDARD_ID;
  } else {
    if (!db_) {
      throw CaplError("message '" + msg_name +
                          "' needs a CANdb database to resolve",
                      line, 1);
    }
    const can::DbcMessage* m = db_->find_message(msg_name);
    if (!m) {
      throw CaplError("message '" + msg_name + "' not found in the database",
                      line, 1);
    }
    f.id = m->id;
    f.dlc = m->dlc;
    f.extended = m->id > can::MAX_STANDARD_ID;
  }
  return RtValue::of_frame(f);
}

std::optional<RtValue> CaplNode::global(const std::string& name) const {
  if (auto it = globals_.find(name); it != globals_.end()) return it->second;
  return std::nullopt;
}

void CaplNode::on_start() {
  for (const EventHandler& h : program_.handlers) {
    if (h.kind == EventHandler::Kind::Start) run_handler(h, nullptr);
  }
}

void CaplNode::on_stop() {
  for (const EventHandler& h : program_.handlers) {
    if (h.kind == EventHandler::Kind::StopMeasurement) run_handler(h, nullptr);
  }
}

void CaplNode::on_message(const can::CanFrame& frame) {
  for (const EventHandler& h : program_.handlers) {
    if (h.kind != EventHandler::Kind::Message) continue;
    bool match = h.any_message;
    if (!match && h.msg_id >= 0) {
      match = frame.id == static_cast<can::CanId>(h.msg_id);
    }
    if (!match && !h.target.empty()) {
      // Match by DBC message name, or by the name of a declared message
      // variable with the same id.
      if (db_) {
        if (const can::DbcMessage* m = db_->find_message(h.target)) {
          match = frame.id == m->id;
        }
      }
      if (!match) {
        if (auto it = globals_.find(h.target);
            it != globals_.end() && it->second.kind == RtValue::Kind::Frame) {
          match = frame.id == it->second.frame.id;
        }
      }
    }
    if (match) run_handler(h, &frame);
  }
}

void CaplNode::press_key(char c) {
  for (const EventHandler& h : program_.handlers) {
    if (h.kind == EventHandler::Kind::Key && !h.target.empty() &&
        h.target[0] == c) {
      run_handler(h, nullptr);
    }
  }
}

void CaplNode::run_handler(const EventHandler& h, const can::CanFrame* trigger) {
  std::vector<Scope> scopes;
  scopes.emplace_back();
  RtValue ret;
  exec(*h.body, scopes, trigger, ret);
}

RtValue CaplNode::call_function(const std::string& name,
                                std::vector<RtValue> args) {
  const FunctionDecl* fn = program_.find_function(name);
  if (!fn) throw CaplError("no function named '" + name + "'", 0, 0);
  if (args.size() != fn->params.size()) {
    throw CaplError("function '" + name + "' expects " +
                        std::to_string(fn->params.size()) + " arguments",
                    fn->line, 1);
  }
  std::vector<Scope> scopes;
  scopes.emplace_back();
  for (std::size_t i = 0; i < args.size(); ++i) {
    scopes.back()[fn->params[i].second] = std::move(args[i]);
  }
  RtValue ret;
  exec(*fn->body, scopes, nullptr, ret);
  return ret;
}

RtValue* CaplNode::find_var(const std::string& name,
                            std::vector<Scope>& scopes) {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    if (auto f = it->find(name); f != it->end()) return &f->second;
  }
  if (auto f = globals_.find(name); f != globals_.end()) return &f->second;
  return nullptr;
}

const can::SignalSpec& CaplNode::signal_spec(const can::CanFrame& frame,
                                             const std::string& name,
                                             int line) const {
  if (!db_) {
    throw CaplError("signal access '" + name + "' needs a CANdb database",
                    line, 1);
  }
  const can::DbcMessage* m = db_->find_message(frame.id);
  if (!m) {
    throw CaplError("no database message with id " + std::to_string(frame.id),
                    line, 1);
  }
  const can::DbcSignal* s = m->find_signal(name);
  if (!s) {
    throw CaplError("message '" + m->name + "' has no signal '" + name + "'",
                    line, 1);
  }
  return s->spec;
}

CaplNode::Flow CaplNode::exec(const CaplStmt& s, std::vector<Scope>& scopes,
                              const can::CanFrame* trigger, RtValue& ret) {
  switch (s.kind) {
    case CStmtKind::Block: {
      scopes.emplace_back();
      for (const CaplStmtPtr& inner : s.body) {
        const Flow f = exec(*inner, scopes, trigger, ret);
        if (f != Flow::Normal) {
          scopes.pop_back();
          return f;
        }
      }
      scopes.pop_back();
      return Flow::Normal;
    }
    case CStmtKind::VarDecl: {
      if (s.var_type == CaplType::Message) {
        scopes.back()[s.var_name] =
            make_message_value(s.msg_id, s.msg_name, s.line);
      } else if (s.var_type == CaplType::MsTimer ||
                 s.var_type == CaplType::Timer) {
        timer_types_[s.var_name] = s.var_type;
      } else {
        scopes.back()[s.var_name] =
            s.init ? eval(*s.init, scopes, trigger) : RtValue::of_int(0);
      }
      return Flow::Normal;
    }
    case CStmtKind::ExprStmt:
      eval(*s.expr, scopes, trigger);
      return Flow::Normal;
    case CStmtKind::Assign: {
      RtValue v = eval(*s.value, scopes, trigger);
      if (s.assign_op != 0) {
        const RtValue old = eval(*s.lvalue, scopes, trigger);
        v = RtValue::of_int(old.i + s.assign_op * v.i);
      }
      assign(*s.lvalue, std::move(v), scopes, trigger);
      return Flow::Normal;
    }
    case CStmtKind::IncDec: {
      const RtValue old = eval(*s.lvalue, scopes, trigger);
      assign(*s.lvalue, RtValue::of_int(old.i + s.delta), scopes, trigger);
      return Flow::Normal;
    }
    case CStmtKind::If: {
      if (eval(*s.value, scopes, trigger).i != 0) {
        return exec(*s.then_branch, scopes, trigger, ret);
      }
      if (s.else_branch) return exec(*s.else_branch, scopes, trigger, ret);
      return Flow::Normal;
    }
    case CStmtKind::While: {
      std::size_t guard = 0;
      while (eval(*s.value, scopes, trigger).i != 0) {
        const Flow f = exec(*s.loop_body, scopes, trigger, ret);
        if (f == Flow::Break) break;
        if (f == Flow::Return) return f;
        if (++guard > 1'000'000) {
          throw CaplError("runaway while loop", s.line, 1);
        }
      }
      return Flow::Normal;
    }
    case CStmtKind::For: {
      scopes.emplace_back();
      RtValue ignored;
      if (s.for_init) exec(*s.for_init, scopes, trigger, ignored);
      std::size_t guard = 0;
      while (!s.value || eval(*s.value, scopes, trigger).i != 0) {
        const Flow f = exec(*s.loop_body, scopes, trigger, ret);
        if (f == Flow::Break) break;
        if (f == Flow::Return) {
          scopes.pop_back();
          return f;
        }
        if (s.for_step) exec(*s.for_step, scopes, trigger, ignored);
        if (++guard > 1'000'000) {
          throw CaplError("runaway for loop", s.line, 1);
        }
      }
      scopes.pop_back();
      return Flow::Normal;
    }
    case CStmtKind::Switch: {
      const std::int64_t scrutinee = eval(*s.value, scopes, trigger).i;
      // Find the matching case (or default), then execute with C-style
      // fall-through until a break.
      std::size_t start = s.body.size();
      for (std::size_t k = 0; k < s.body.size(); ++k) {
        if (s.body[k]->delta == 0 && s.body[k]->msg_id == scrutinee) {
          start = k;
          break;
        }
      }
      if (start == s.body.size()) {
        for (std::size_t k = 0; k < s.body.size(); ++k) {
          if (s.body[k]->delta == 1) {
            start = k;
            break;
          }
        }
      }
      scopes.emplace_back();
      for (std::size_t k = start; k < s.body.size(); ++k) {
        for (const CaplStmtPtr& inner : s.body[k]->body) {
          const Flow f = exec(*inner, scopes, trigger, ret);
          if (f == Flow::Break) {
            scopes.pop_back();
            return Flow::Normal;
          }
          if (f == Flow::Return) {
            scopes.pop_back();
            return f;
          }
        }
      }
      scopes.pop_back();
      return Flow::Normal;
    }
    case CStmtKind::Case:
      // Only reachable through Switch; treated as a no-op otherwise.
      return Flow::Normal;
    case CStmtKind::Break:
      return Flow::Break;
    case CStmtKind::Return:
      if (s.value) ret = eval(*s.value, scopes, trigger);
      return Flow::Return;
  }
  return Flow::Normal;
}

void CaplNode::assign(const CaplExpr& lvalue, RtValue value,
                      std::vector<Scope>& scopes,
                      const can::CanFrame* trigger) {
  switch (lvalue.kind) {
    case CExprKind::Name: {
      RtValue* slot = find_var(lvalue.text, scopes);
      if (!slot) {
        throw CaplError("assignment to undeclared variable '" + lvalue.text +
                            "'",
                        lvalue.line, lvalue.column);
      }
      *slot = std::move(value);
      return;
    }
    case CExprKind::ByteAccess: {
      if (lvalue.object->kind != CExprKind::Name) {
        throw CaplError("byte access assignment needs a message variable",
                        lvalue.line, lvalue.column);
      }
      RtValue* slot = find_var(lvalue.object->text, scopes);
      if (!slot || slot->kind != RtValue::Kind::Frame) {
        throw CaplError("'" + lvalue.object->text + "' is not a message",
                        lvalue.line, lvalue.column);
      }
      const std::int64_t idx = eval(*lvalue.args[0], scopes, trigger).i;
      for (int b = 0; b < lvalue.access_width; ++b) {
        slot->frame.set_byte(static_cast<std::size_t>(idx) + b,
                             static_cast<std::uint8_t>(value.i >> (8 * b)));
      }
      return;
    }
    case CExprKind::Member: {
      if (lvalue.object->kind != CExprKind::Name) {
        throw CaplError("member assignment needs a message variable",
                        lvalue.line, lvalue.column);
      }
      RtValue* slot = find_var(lvalue.object->text, scopes);
      if (!slot || slot->kind != RtValue::Kind::Frame) {
        throw CaplError("'" + lvalue.object->text + "' is not a message",
                        lvalue.line, lvalue.column);
      }
      if (lvalue.text == "dlc") {
        slot->frame.dlc = static_cast<std::uint8_t>(value.i);
        return;
      }
      if (lvalue.text == "id") {
        slot->frame.id = static_cast<can::CanId>(value.i);
        return;
      }
      const can::SignalSpec& spec =
          signal_spec(slot->frame, lvalue.text, lvalue.line);
      can::encode_physical(slot->frame.data, spec,
                           static_cast<double>(value.i));
      return;
    }
    default:
      throw CaplError("invalid assignment target", lvalue.line, lvalue.column);
  }
}

RtValue CaplNode::eval(const CaplExpr& e, std::vector<Scope>& scopes,
                       const can::CanFrame* trigger) {
  switch (e.kind) {
    case CExprKind::Number:
    case CExprKind::CharLit:
      return RtValue::of_int(e.number);
    case CExprKind::StringLit:
      // Strings only flow into write(); represent as an opaque int handle of
      // 0 when used numerically.
      return RtValue::of_int(0);
    case CExprKind::This: {
      if (!trigger) {
        throw CaplError("'this' outside an 'on message' procedure", e.line,
                        e.column);
      }
      return RtValue::of_frame(*trigger);
    }
    case CExprKind::Name: {
      if (RtValue* v = find_var(e.text, scopes)) return *v;
      throw CaplError("unknown variable '" + e.text + "'", e.line, e.column);
    }
    case CExprKind::Member: {
      const RtValue base = eval(*e.object, scopes, trigger);
      if (base.kind != RtValue::Kind::Frame) {
        throw CaplError("member access on a non-message value", e.line,
                        e.column);
      }
      if (e.text == "dlc") return RtValue::of_int(base.frame.dlc);
      if (e.text == "id") return RtValue::of_int(base.frame.id);
      const can::SignalSpec& spec = signal_spec(base.frame, e.text, e.line);
      return RtValue::of_int(static_cast<std::int64_t>(
          can::decode_physical(base.frame.data, spec)));
    }
    case CExprKind::ByteAccess: {
      const RtValue base = eval(*e.object, scopes, trigger);
      if (base.kind != RtValue::Kind::Frame) {
        throw CaplError("byte access on a non-message value", e.line, e.column);
      }
      const std::int64_t idx = eval(*e.args[0], scopes, trigger).i;
      std::int64_t out = 0;
      for (int b = 0; b < e.access_width; ++b) {
        out |= static_cast<std::int64_t>(
                   base.frame.byte(static_cast<std::size_t>(idx) + b))
               << (8 * b);
      }
      return RtValue::of_int(out);
    }
    case CExprKind::Unary: {
      const RtValue v = eval(*e.args[0], scopes, trigger);
      switch (e.un) {
        case CUnOp::Neg: return RtValue::of_int(-v.i);
        case CUnOp::Not: return RtValue::of_int(v.i == 0 ? 1 : 0);
        case CUnOp::BNot: return RtValue::of_int(~v.i);
      }
      return RtValue::of_int(0);
    }
    case CExprKind::Binary: {
      // Short-circuit logical operators.
      if (e.bin == CBinOp::LAnd) {
        if (eval(*e.args[0], scopes, trigger).i == 0) return RtValue::of_int(0);
        return RtValue::of_int(eval(*e.args[1], scopes, trigger).i != 0);
      }
      if (e.bin == CBinOp::LOr) {
        if (eval(*e.args[0], scopes, trigger).i != 0) return RtValue::of_int(1);
        return RtValue::of_int(eval(*e.args[1], scopes, trigger).i != 0);
      }
      const std::int64_t a = eval(*e.args[0], scopes, trigger).i;
      const std::int64_t b = eval(*e.args[1], scopes, trigger).i;
      switch (e.bin) {
        case CBinOp::Add: return RtValue::of_int(a + b);
        case CBinOp::Sub: return RtValue::of_int(a - b);
        case CBinOp::Mul: return RtValue::of_int(a * b);
        case CBinOp::Div:
          if (b == 0) throw CaplError("division by zero", e.line, e.column);
          return RtValue::of_int(a / b);
        case CBinOp::Mod:
          if (b == 0) throw CaplError("modulo by zero", e.line, e.column);
          return RtValue::of_int(a % b);
        case CBinOp::Eq: return RtValue::of_int(a == b);
        case CBinOp::Ne: return RtValue::of_int(a != b);
        case CBinOp::Lt: return RtValue::of_int(a < b);
        case CBinOp::Gt: return RtValue::of_int(a > b);
        case CBinOp::Le: return RtValue::of_int(a <= b);
        case CBinOp::Ge: return RtValue::of_int(a >= b);
        case CBinOp::BAnd: return RtValue::of_int(a & b);
        case CBinOp::BOr: return RtValue::of_int(a | b);
        case CBinOp::BXor: return RtValue::of_int(a ^ b);
        case CBinOp::Shl: return RtValue::of_int(a << b);
        case CBinOp::Shr: return RtValue::of_int(a >> b);
        default: return RtValue::of_int(0);
      }
    }
    case CExprKind::Call: {
      std::vector<RtValue> args;
      args.reserve(e.args.size());
      // setTimer/cancelTimer take a timer *name* and write() a format
      // string as their first argument; those are consumed syntactically by
      // builtin_call, not evaluated.
      const bool lazy_first =
          e.text == "setTimer" || e.text == "cancelTimer" || e.text == "write";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i == 0 && lazy_first && !program_.find_function(e.text)) {
          args.push_back(RtValue::of_int(0));
        } else {
          args.push_back(eval(*e.args[i], scopes, trigger));
        }
      }
      if (const FunctionDecl* fn = program_.find_function(e.text)) {
        if (args.size() != fn->params.size()) {
          throw CaplError("function '" + e.text + "' expects " +
                              std::to_string(fn->params.size()) + " arguments",
                          e.line, e.column);
        }
        std::vector<Scope> inner;
        inner.emplace_back();
        for (std::size_t i = 0; i < args.size(); ++i) {
          inner.back()[fn->params[i].second] = std::move(args[i]);
        }
        RtValue ret;
        exec(*fn->body, inner, trigger, ret);
        return ret;
      }
      return builtin_call(e, std::move(args), scopes, trigger);
    }
  }
  return RtValue::of_int(0);
}

RtValue CaplNode::builtin_call(const CaplExpr& call, std::vector<RtValue> args,
                               std::vector<Scope>& scopes,
                               const can::CanFrame* trigger) {
  const std::string& name = call.text;
  if (name == "output") {
    if (args.size() != 1 || args[0].kind != RtValue::Kind::Frame) {
      throw CaplError("output() expects one message argument", call.line,
                      call.column);
    }
    output(args[0].frame);
    return RtValue::of_int(0);
  }
  if (name == "setTimer") {
    if (call.args.empty() || call.args[0]->kind != CExprKind::Name) {
      throw CaplError("setTimer() expects a timer name", call.line,
                      call.column);
    }
    const std::string timer = call.args[0]->text;
    auto type_it = timer_types_.find(timer);
    if (type_it == timer_types_.end()) {
      throw CaplError("'" + timer + "' is not a declared timer", call.line,
                      call.column);
    }
    if (args.size() != 2) {
      throw CaplError("setTimer() expects (timer, duration)", call.line,
                      call.column);
    }
    const std::uint64_t factor =
        type_it->second == CaplType::MsTimer ? 1'000ULL : 1'000'000ULL;
    // Re-setting an active timer restarts it, as in CAPL.
    if (auto active = active_timers_.find(timer);
        active != active_timers_.end()) {
      cancel_timer(active->second);
    }
    const auto id = set_timer(
        static_cast<std::uint64_t>(args[1].i) * factor, [this, timer] {
          active_timers_.erase(timer);
          for (const EventHandler& h : program_.handlers) {
            if (h.kind == EventHandler::Kind::Timer && h.target == timer) {
              run_handler(h, nullptr);
            }
          }
        });
    active_timers_[timer] = id;
    return RtValue::of_int(0);
  }
  if (name == "cancelTimer") {
    if (call.args.empty() || call.args[0]->kind != CExprKind::Name) {
      throw CaplError("cancelTimer() expects a timer name", call.line,
                      call.column);
    }
    const std::string timer = call.args[0]->text;
    if (auto it = active_timers_.find(timer); it != active_timers_.end()) {
      cancel_timer(it->second);
      active_timers_.erase(it);
    }
    return RtValue::of_int(0);
  }
  if (name == "write") {
    if (call.args.empty() || call.args[0]->kind != CExprKind::StringLit) {
      throw CaplError("write() expects a format string", call.line,
                      call.column);
    }
    write(capl_format(call.args[0]->text,
                      {args.begin() + 1, args.end()}));
    return RtValue::of_int(0);
  }
  if (name == "timeNow") {
    // CAPL's timeNow() reports time in 10-microsecond units.
    return RtValue::of_int(static_cast<std::int64_t>(now() / 10));
  }
  (void)scopes;
  (void)trigger;
  throw CaplError("unknown function '" + name + "'", call.line, call.column);
}

}  // namespace ecucsp::capl
