#include "capl/parser.hpp"

namespace ecucsp::capl {

std::string to_string(CaplType t) {
  switch (t) {
    case CaplType::Int: return "int";
    case CaplType::Long: return "long";
    case CaplType::Byte: return "byte";
    case CaplType::Word: return "word";
    case CaplType::Dword: return "dword";
    case CaplType::Char: return "char";
    case CaplType::Float: return "float";
    case CaplType::Double: return "double";
    case CaplType::Void: return "void";
    case CaplType::Message: return "message";
    case CaplType::MsTimer: return "msTimer";
    case CaplType::Timer: return "timer";
  }
  return "?";
}

const EventHandler* CaplProgram::find_handler(EventHandler::Kind kind,
                                              const std::string& target) const {
  for (const EventHandler& h : handlers) {
    if (h.kind != kind) continue;
    if (target.empty() || h.target == target) return &h;
  }
  return nullptr;
}

const FunctionDecl* CaplProgram::find_function(const std::string& name) const {
  for (const FunctionDecl& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  CaplProgram program() {
    CaplProgram out;
    while (!at(Tok::End)) {
      if (at(Tok::KwIncludes)) {
        take();
        expect(Tok::LBrace, "includes block");
        // Include directives are '#include "file"'-ish in real CAPL; our
        // subset records string literals found in the block.
        while (!accept(Tok::RBrace)) {
          if (at(Tok::StringLit)) {
            out.includes.push_back(take().text);
          } else {
            take();  // tolerate preprocessor-ish tokens
          }
          if (at(Tok::End)) fail("unterminated includes block");
        }
      } else if (at(Tok::KwVariables)) {
        take();
        expect(Tok::LBrace, "variables block");
        while (!accept(Tok::RBrace)) out.variables.push_back(top_var_decl());
      } else if (at(Tok::KwOn)) {
        out.handlers.push_back(event_handler());
      } else if (is_type(peek().kind)) {
        out.functions.push_back(function_decl());
      } else {
        fail("expected 'includes', 'variables', 'on' or a function");
      }
    }
    return out;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  bool at(Tok k, std::size_t ahead = 0) const { return peek(ahead).kind == k; }
  Token take() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok k, const std::string& what) {
    if (!at(k)) {
      fail("expected " + to_string(k) + " (" + what + "), found " +
           to_string(peek().kind));
    }
    return take();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw CaplError(msg, peek().line, peek().column);
  }

  static bool is_type(Tok k) {
    switch (k) {
      case Tok::KwInt:
      case Tok::KwLong:
      case Tok::KwByte:
      case Tok::KwWord:
      case Tok::KwDword:
      case Tok::KwChar:
      case Tok::KwFloat:
      case Tok::KwDouble:
      case Tok::KwVoid:
      case Tok::KwMessage:
      case Tok::KwMsTimer:
      case Tok::KwTimer:
        return true;
      default:
        return false;
    }
  }

  CaplType type() {
    switch (take().kind) {
      case Tok::KwInt: return CaplType::Int;
      case Tok::KwLong: return CaplType::Long;
      case Tok::KwByte: return CaplType::Byte;
      case Tok::KwWord: return CaplType::Word;
      case Tok::KwDword: return CaplType::Dword;
      case Tok::KwChar: return CaplType::Char;
      case Tok::KwFloat: return CaplType::Float;
      case Tok::KwDouble: return CaplType::Double;
      case Tok::KwVoid: return CaplType::Void;
      case Tok::KwMessage: return CaplType::Message;
      case Tok::KwMsTimer: return CaplType::MsTimer;
      case Tok::KwTimer: return CaplType::Timer;
      default:
        fail("expected a type");
    }
  }

  VarDeclTop top_var_decl() {
    VarDeclTop out;
    out.line = peek().line;
    out.column = peek().column;
    out.type = type();
    if (out.type == CaplType::Message) {
      // message <id-or-name> <var>;
      if (at(Tok::Number)) {
        out.msg_id = take().number;
      } else {
        out.msg_name = expect(Tok::Ident, "message type").text;
      }
    }
    out.name = expect(Tok::Ident, "variable name").text;
    if (accept(Tok::Assign)) out.init = expression();
    expect(Tok::Semi, "variable declaration");
    return out;
  }

  EventHandler event_handler() {
    EventHandler out;
    out.line = peek().line;
    out.column = peek().column;
    expect(Tok::KwOn, "event procedure");
    if (accept(Tok::KwStart)) {
      out.kind = EventHandler::Kind::Start;
    } else if (accept(Tok::KwStopM)) {
      out.kind = EventHandler::Kind::StopMeasurement;
    } else if (accept(Tok::KwMessage)) {
      out.kind = EventHandler::Kind::Message;
      if (at(Tok::Number)) {
        out.msg_id = take().number;
      } else if (accept(Tok::Star)) {
        out.any_message = true;
      } else {
        out.target = expect(Tok::Ident, "message name").text;
      }
    } else if (accept(Tok::KwTimer) || accept(Tok::KwMsTimer)) {
      out.kind = EventHandler::Kind::Timer;
      out.target = expect(Tok::Ident, "timer name").text;
    } else if (accept(Tok::KwKey)) {
      out.kind = EventHandler::Kind::Key;
      out.target = expect(Tok::CharLit, "key literal").text;
    } else {
      fail("unknown event procedure");
    }
    out.body = block();
    return out;
  }

  FunctionDecl function_decl() {
    FunctionDecl out;
    out.line = peek().line;
    out.column = peek().column;
    out.return_type = type();
    out.name = expect(Tok::Ident, "function name").text;
    expect(Tok::LParen, "parameter list");
    if (!at(Tok::RParen)) {
      do {
        const CaplType pt = type();
        const std::string pn = expect(Tok::Ident, "parameter name").text;
        out.params.emplace_back(pt, pn);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "parameter list");
    out.body = block();
    return out;
  }

  CaplStmtPtr block() {
    auto out = std::make_unique<CaplStmt>();
    out->kind = CStmtKind::Block;
    out->line = peek().line;
    out->column = peek().column;
    expect(Tok::LBrace, "block");
    while (!accept(Tok::RBrace)) {
      if (at(Tok::End)) fail("unterminated block");
      out->body.push_back(statement());
    }
    return out;
  }

  CaplStmtPtr statement() {
    if (at(Tok::LBrace)) return block();

    auto out = std::make_unique<CaplStmt>();
    out->line = peek().line;
    out->column = peek().column;

    if (is_type(peek().kind)) {
      // Local declaration (mirrors the top-level form).
      out->kind = CStmtKind::VarDecl;
      out->var_type = type();
      if (out->var_type == CaplType::Message) {
        if (at(Tok::Number)) {
          out->msg_id = take().number;
        } else {
          out->msg_name = expect(Tok::Ident, "message type").text;
        }
      }
      out->var_name = expect(Tok::Ident, "variable name").text;
      if (accept(Tok::Assign)) out->init = expression();
      expect(Tok::Semi, "declaration");
      return out;
    }
    if (accept(Tok::KwIf)) {
      out->kind = CStmtKind::If;
      expect(Tok::LParen, "if condition");
      out->value = expression();
      expect(Tok::RParen, "if condition");
      out->then_branch = statement();
      if (accept(Tok::KwElse)) out->else_branch = statement();
      return out;
    }
    if (accept(Tok::KwWhile)) {
      out->kind = CStmtKind::While;
      expect(Tok::LParen, "while condition");
      out->value = expression();
      expect(Tok::RParen, "while condition");
      out->loop_body = statement();
      return out;
    }
    if (accept(Tok::KwFor)) {
      out->kind = CStmtKind::For;
      expect(Tok::LParen, "for header");
      if (!at(Tok::Semi)) out->for_init = simple_statement();
      expect(Tok::Semi, "for header");
      if (!at(Tok::Semi)) out->value = expression();
      expect(Tok::Semi, "for header");
      if (!at(Tok::RParen)) out->for_step = simple_statement();
      expect(Tok::RParen, "for header");
      out->loop_body = statement();
      return out;
    }
    if (accept(Tok::KwSwitch)) {
      out->kind = CStmtKind::Switch;
      expect(Tok::LParen, "switch scrutinee");
      out->value = expression();
      expect(Tok::RParen, "switch scrutinee");
      expect(Tok::LBrace, "switch body");
      while (!accept(Tok::RBrace)) {
        if (at(Tok::End)) fail("unterminated switch");
        auto arm = std::make_unique<CaplStmt>();
        arm->kind = CStmtKind::Case;
        arm->line = peek().line;
        arm->column = peek().column;
        if (accept(Tok::KwCase)) {
          if (at(Tok::Number)) {
            arm->msg_id = take().number;
          } else if (at(Tok::CharLit)) {
            arm->msg_id = take().number;
          } else if (at(Tok::Minus) && at(Tok::Number, 1)) {
            take();
            arm->msg_id = -take().number;
          } else {
            fail("case label must be an integer or character literal");
          }
        } else if (accept(Tok::KwDefault)) {
          arm->delta = 1;
        } else {
          fail("expected 'case' or 'default'");
        }
        expect(Tok::Colon, "case label");
        while (!at(Tok::KwCase) && !at(Tok::KwDefault) && !at(Tok::RBrace)) {
          if (at(Tok::End)) fail("unterminated switch");
          arm->body.push_back(statement());
        }
        out->body.push_back(std::move(arm));
      }
      return out;
    }
    if (accept(Tok::KwBreak)) {
      out->kind = CStmtKind::Break;
      expect(Tok::Semi, "break");
      return out;
    }
    if (accept(Tok::KwReturn)) {
      out->kind = CStmtKind::Return;
      if (!at(Tok::Semi)) out->value = expression();
      expect(Tok::Semi, "return");
      return out;
    }
    out = simple_statement();
    expect(Tok::Semi, "statement");
    return out;
  }

  /// Declaration, assignment, increment/decrement, or expression statement —
  /// without the trailing semicolon (shared by for-headers).
  CaplStmtPtr simple_statement() {
    auto out = std::make_unique<CaplStmt>();
    out->line = peek().line;
    out->column = peek().column;
    if (is_type(peek().kind)) {
      out->kind = CStmtKind::VarDecl;
      out->var_type = type();
      if (out->var_type == CaplType::Message) {
        if (at(Tok::Number)) {
          out->msg_id = take().number;
        } else {
          out->msg_name = expect(Tok::Ident, "message type").text;
        }
      }
      out->var_name = expect(Tok::Ident, "variable name").text;
      if (accept(Tok::Assign)) out->init = expression();
      return out;
    }
    CaplExprPtr e = expression();
    if (at(Tok::Assign) || at(Tok::PlusAssign) || at(Tok::MinusAssign)) {
      out->kind = CStmtKind::Assign;
      out->assign_op = at(Tok::PlusAssign) ? 1 : at(Tok::MinusAssign) ? -1 : 0;
      take();
      out->lvalue = std::move(e);
      out->value = expression();
      return out;
    }
    if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
      out->kind = CStmtKind::IncDec;
      out->delta = at(Tok::PlusPlus) ? 1 : -1;
      take();
      out->lvalue = std::move(e);
      return out;
    }
    out->kind = CStmtKind::ExprStmt;
    out->expr = std::move(e);
    return out;
  }

  // Expression precedence, C-like.
  CaplExprPtr expression() { return logical_or(); }

  CaplExprPtr make_bin(CBinOp op, CaplExprPtr l, CaplExprPtr r) {
    auto e = std::make_unique<CaplExpr>();
    e->kind = CExprKind::Binary;
    e->bin = op;
    e->line = l->line;
    e->column = l->column;
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
  }

  CaplExprPtr logical_or() {
    CaplExprPtr lhs = logical_and();
    while (accept(Tok::OrOr)) {
      lhs = make_bin(CBinOp::LOr, std::move(lhs), logical_and());
    }
    return lhs;
  }
  CaplExprPtr logical_and() {
    CaplExprPtr lhs = bit_or();
    while (accept(Tok::AndAnd)) {
      lhs = make_bin(CBinOp::LAnd, std::move(lhs), bit_or());
    }
    return lhs;
  }
  CaplExprPtr bit_or() {
    CaplExprPtr lhs = bit_xor();
    while (accept(Tok::Pipe)) {
      lhs = make_bin(CBinOp::BOr, std::move(lhs), bit_xor());
    }
    return lhs;
  }
  CaplExprPtr bit_xor() {
    CaplExprPtr lhs = bit_and();
    while (accept(Tok::Caret)) {
      lhs = make_bin(CBinOp::BXor, std::move(lhs), bit_and());
    }
    return lhs;
  }
  CaplExprPtr bit_and() {
    CaplExprPtr lhs = equality();
    while (accept(Tok::Amp)) {
      lhs = make_bin(CBinOp::BAnd, std::move(lhs), equality());
    }
    return lhs;
  }
  CaplExprPtr equality() {
    CaplExprPtr lhs = relational();
    for (;;) {
      if (accept(Tok::EqEq)) {
        lhs = make_bin(CBinOp::Eq, std::move(lhs), relational());
      } else if (accept(Tok::NotEq)) {
        lhs = make_bin(CBinOp::Ne, std::move(lhs), relational());
      } else {
        return lhs;
      }
    }
  }
  CaplExprPtr relational() {
    CaplExprPtr lhs = shift();
    for (;;) {
      if (accept(Tok::Less)) {
        lhs = make_bin(CBinOp::Lt, std::move(lhs), shift());
      } else if (accept(Tok::Greater)) {
        lhs = make_bin(CBinOp::Gt, std::move(lhs), shift());
      } else if (accept(Tok::LessEq)) {
        lhs = make_bin(CBinOp::Le, std::move(lhs), shift());
      } else if (accept(Tok::GreaterEq)) {
        lhs = make_bin(CBinOp::Ge, std::move(lhs), shift());
      } else {
        return lhs;
      }
    }
  }
  CaplExprPtr shift() {
    CaplExprPtr lhs = additive();
    for (;;) {
      if (accept(Tok::Shl)) {
        lhs = make_bin(CBinOp::Shl, std::move(lhs), additive());
      } else if (accept(Tok::Shr)) {
        lhs = make_bin(CBinOp::Shr, std::move(lhs), additive());
      } else {
        return lhs;
      }
    }
  }
  CaplExprPtr additive() {
    CaplExprPtr lhs = multiplicative();
    for (;;) {
      if (accept(Tok::Plus)) {
        lhs = make_bin(CBinOp::Add, std::move(lhs), multiplicative());
      } else if (accept(Tok::Minus)) {
        lhs = make_bin(CBinOp::Sub, std::move(lhs), multiplicative());
      } else {
        return lhs;
      }
    }
  }
  CaplExprPtr multiplicative() {
    CaplExprPtr lhs = unary();
    for (;;) {
      if (accept(Tok::Star)) {
        lhs = make_bin(CBinOp::Mul, std::move(lhs), unary());
      } else if (accept(Tok::Slash)) {
        lhs = make_bin(CBinOp::Div, std::move(lhs), unary());
      } else if (accept(Tok::Percent)) {
        lhs = make_bin(CBinOp::Mod, std::move(lhs), unary());
      } else {
        return lhs;
      }
    }
  }
  CaplExprPtr unary() {
    const auto un = [&](CUnOp op) {
      take();
      auto e = std::make_unique<CaplExpr>();
      e->kind = CExprKind::Unary;
      e->un = op;
      e->args.push_back(unary());
      return e;
    };
    if (at(Tok::Minus)) return un(CUnOp::Neg);
    if (at(Tok::Not)) return un(CUnOp::Not);
    if (at(Tok::Tilde)) return un(CUnOp::BNot);
    return postfix();
  }

  CaplExprPtr postfix() {
    CaplExprPtr e = primary();
    while (accept(Tok::Dot)) {
      // Accessor keywords double as member names after '.'.
      int width = 0;
      std::string member;
      if (accept(Tok::KwByte)) {
        width = 1;
        member = "byte";
      } else if (accept(Tok::KwWord)) {
        width = 2;
        member = "word";
      } else if (accept(Tok::KwDword)) {
        width = 4;
        member = "dword";
      } else {
        member = expect(Tok::Ident, "member name").text;
      }
      if (width > 0 && at(Tok::LParen)) {
        take();
        auto acc = std::make_unique<CaplExpr>();
        acc->kind = CExprKind::ByteAccess;
        acc->access_width = width;
        acc->line = e->line;
        acc->column = e->column;
        acc->object = std::move(e);
        acc->args.push_back(expression());
        expect(Tok::RParen, "byte accessor");
        e = std::move(acc);
      } else {
        auto mem = std::make_unique<CaplExpr>();
        mem->kind = CExprKind::Member;
        mem->text = member;
        mem->line = e->line;
        mem->column = e->column;
        mem->object = std::move(e);
        e = std::move(mem);
      }
    }
    return e;
  }

  CaplExprPtr primary() {
    auto e = std::make_unique<CaplExpr>();
    e->line = peek().line;
    e->column = peek().column;
    switch (peek().kind) {
      case Tok::Number:
        e->kind = CExprKind::Number;
        e->number = take().number;
        return e;
      case Tok::CharLit:
        e->kind = CExprKind::CharLit;
        e->number = take().number;
        return e;
      case Tok::StringLit:
        e->kind = CExprKind::StringLit;
        e->text = take().text;
        return e;
      case Tok::KwThis:
        e->kind = CExprKind::This;
        take();
        return e;
      case Tok::Ident: {
        e->text = take().text;
        if (accept(Tok::LParen)) {
          e->kind = CExprKind::Call;
          if (!at(Tok::RParen)) {
            do {
              e->args.push_back(expression());
            } while (accept(Tok::Comma));
          }
          expect(Tok::RParen, "call arguments");
        } else {
          e->kind = CExprKind::Name;
        }
        return e;
      }
      case Tok::LParen: {
        take();
        CaplExprPtr inner = expression();
        expect(Tok::RParen, "parenthesised expression");
        return inner;
      }
      default:
        fail("expected an expression, found " + to_string(peek().kind));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

/// Deterministic pre-order numbering over the whole program: statements and
/// expressions share one counter, so any two distinct nodes have distinct
/// ids regardless of kind.
class Numberer {
 public:
  void run(CaplProgram& prog) {
    for (auto& v : prog.variables) visit(v.init.get());
    for (auto& h : prog.handlers) visit(h.body.get());
    for (auto& f : prog.functions) visit(f.body.get());
  }

 private:
  void visit(CaplStmt* s) {
    if (!s) return;
    s->node_id = ++next_;
    for (auto& kid : s->body) visit(kid.get());
    visit(s->init.get());
    visit(s->lvalue.get());
    visit(s->value.get());
    visit(s->then_branch.get());
    visit(s->else_branch.get());
    visit(s->for_init.get());
    visit(s->loop_body.get());
    visit(s->for_step.get());
    visit(s->expr.get());
  }

  void visit(CaplExpr* e) {
    if (!e) return;
    e->node_id = ++next_;
    for (auto& arg : e->args) visit(arg.get());
    visit(e->object.get());
  }

  std::uint32_t next_ = 0;
};

}  // namespace

void number_nodes(CaplProgram& prog) { Numberer().run(prog); }

CaplProgram parse_capl(std::string_view source) {
  CaplProgram prog = Parser(source).program();
  number_nodes(prog);
  return prog;
}

}  // namespace ecucsp::capl
