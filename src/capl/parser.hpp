// Recursive-descent parser for the CAPL subset.
#pragma once

#include <string_view>

#include "capl/ast.hpp"
#include "capl/lexer.hpp"

namespace ecucsp::capl {

CaplProgram parse_capl(std::string_view source);

}  // namespace ecucsp::capl
