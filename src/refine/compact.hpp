// Compact arena-backed LTS core and FDR-style state-space reduction.
//
// CompactLts is the struct-of-arrays twin of Lts: one flat CSR transition
// arena (offsets / events / targets) instead of a vector-of-vectors, with
// event ids interned into a per-machine alphabet table so the hot product
// sweep compares dense 32-bit local ids and walks contiguous successor
// ranges with no pointer chasing. compact_from_lts preserves per-state
// transition order exactly, so a sweep over the compact form visits states
// in the same sequential BFS insertion order as one over the source Lts —
// which is what keeps --compress=none byte-identical to the historical
// engine (verdicts, counterexamples, vacuity, stats and hence every cache
// digest).
//
// On top of the representation sit the classic FDR compressions, applied to
// component machines *before* the spec×impl product walk:
//
//   bisim    strong-bisimulation quotienting (partition refinement seeded by
//            terminal class, so Omega / post-tick / deadlock states never
//            merge across semantic lines);
//   diamond  τ-structure elimination: τ-SCC contraction (cyclic SCCs keep a
//            single τ self-loop so divergence survives), inert single-τ
//            chain collapse (guarded against incoming TICK edges so
//            post-tick termination states keep their identity), and
//            τ-priorisation of strongly confluent internal moves — a state
//            whose visible options all commute with one of its τ steps is
//            replaced by that τ step alone (partial-order reduction);
//   full     diamond followed by bisim.
//
// Every reduction preserves divergence-sensitive weak equivalence of the
// root, hence verdicts in T, F and FD as well as deadlock / divergence /
// determinism — see DESIGN.md §12 for the per-pass argument. Counterexample
// bytes are preserved one level up (refine/check.cpp): a violating verdict
// found on a compressed machine is replayed on the uncompressed one, FDR's
// "debug the uncompressed process" move, so failing runs are byte-identical
// at every --compress level too.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/cancel.hpp"
#include "refine/lts.hpp"

namespace ecucsp {

// --- compression-mode plumbing -----------------------------------------------

/// Which reductions the check entry points apply to component LTSes before
/// the product sweep. `Ambient` is the entry-point default: defer to the
/// process-wide check_compression() setting (installed by the verify
/// scheduler or a CLI's --compress), itself defaulting to None.
enum class Compression : std::uint8_t {
  None = 0,
  Bisim = 1,
  Diamond = 2,
  Full = 3,
  Ambient = 255,
};

std::string_view to_string(Compression c);

/// Parse a --compress operand ("none" | "bisim" | "diamond" | "full").
std::optional<Compression> parse_compression(std::string_view s);

/// Process-wide default consumed by every check entry point whose explicit
/// `compress` argument is Compression::Ambient — the same idiom as
/// set_check_threads in parallel.hpp. Returns the previous value.
Compression set_check_compression(Compression c);
Compression check_compression();

/// Map a caller's `compress` argument to an effective mode:
/// Ambient -> the ambient check_compression() setting.
Compression resolve_check_compression(Compression requested);

/// RAII installer (scheduler batches, CLI main, tests).
class ScopedCheckCompression {
 public:
  explicit ScopedCheckCompression(Compression c)
      : prev_(set_check_compression(c)) {}
  ~ScopedCheckCompression() { set_check_compression(prev_); }
  ScopedCheckCompression(const ScopedCheckCompression&) = delete;
  ScopedCheckCompression& operator=(const ScopedCheckCompression&) = delete;

 private:
  Compression prev_;
};

// --- the compact representation ----------------------------------------------

/// Index into CompactLts::alphabet — a machine-local interned event id.
/// Local ids follow the global EventId order (the alphabet is sorted), so
/// TAU, when present, is always local id 0.
using LocalEvent = std::uint32_t;
inline constexpr LocalEvent NO_LOCAL_EVENT = 0xffffffffu;

struct CompactLts {
  /// Per-state semantic flags, the information DeadlockGraph used to pull
  /// from Lts::term_of / a side post_tick vector.
  static constexpr std::uint8_t kOmega = 1u;     // successful termination
  static constexpr std::uint8_t kPostTick = 2u;  // entered by a TICK edge

  StateId root = 0;
  /// CSR row index: state s's transitions are [offsets[s], offsets[s+1]).
  std::vector<std::uint32_t> offsets{0};
  std::vector<LocalEvent> events;  // interned labels, parallel to targets
  std::vector<StateId> targets;
  /// Sorted unique global event ids occurring in the machine (TAU/TICK
  /// included when present). events[k] indexes into this table.
  std::vector<EventId> alphabet;
  std::vector<std::uint8_t> flags;  // one per state

  /// Local ids of TAU / TICK, or NO_LOCAL_EVENT when absent.
  LocalEvent tau = NO_LOCAL_EVENT;
  LocalEvent tick = NO_LOCAL_EVENT;

  std::size_t state_count() const { return flags.size(); }
  std::size_t transition_count() const { return events.size(); }
  std::uint32_t begin(StateId s) const { return offsets[s]; }
  std::uint32_t end(StateId s) const { return offsets[s + 1]; }
  std::size_t degree(StateId s) const { return end(s) - begin(s); }

  EventId global_event(LocalEvent le) const { return alphabet[le]; }
  /// Binary search the alphabet; NO_LOCAL_EVENT when `e` never occurs.
  LocalEvent local_event(EventId e) const;

  bool is_omega(StateId s) const { return (flags[s] & kOmega) != 0; }
  bool is_post_tick(StateId s) const { return (flags[s] & kPostTick) != 0; }
  /// Stuck without having terminated — the deadlock-check predicate.
  bool is_deadlock(StateId s) const {
    return degree(s) == 0 && !is_post_tick(s) && !is_omega(s);
  }

  /// For each state, whether an infinite τ-path starts there. Same contract
  /// as Lts::divergent_states (which delegates here — one SCC
  /// implementation).
  std::vector<bool> divergent_states() const;
};

/// Lossless conversion, preserving state numbering and per-state transition
/// order exactly. Omega states are recognised from term_of when present;
/// post-tick flags are derived from the TICK edges.
CompactLts compact_from_lts(const Lts& lts);

/// Inverse of compact_from_lts up to diagnostics: the transition structure,
/// root and state numbering round-trip exactly; term_of (a compile-time
/// artefact) comes back empty. Intended for tests and export paths.
Lts compact_to_lts(const CompactLts& c);

// --- reductions --------------------------------------------------------------

/// How much a compress_compact call shrank the machine.
struct ReductionStats {
  std::size_t states_in = 0;
  std::size_t states_out = 0;
  std::size_t transitions_in = 0;
  std::size_t transitions_out = 0;

  double state_factor() const {
    return states_out == 0 ? 1.0
                           : static_cast<double>(states_in) /
                                 static_cast<double>(states_out);
  }
};

/// Apply `mode`'s reductions to `in` and return the reduced machine
/// (restricted to its reachable part, states renumbered preserving relative
/// order). Mode None (and Ambient) returns a verbatim copy. The alphabet
/// table is carried over unchanged so local event ids remain stable across
/// compression — interned ids survive any insertion/elimination order.
/// Polls `cancel` between passes.
CompactLts compress_compact(const CompactLts& in, Compression mode,
                            ReductionStats* stats = nullptr,
                            CancelToken* cancel = nullptr);

}  // namespace ecucsp
