// Parallel in-check state-space exploration: a wave-synchronous BFS over an
// abstract search graph (the normalized-spec x implementation product, or a
// single LTS for the unary checks), shared by every refine check entry point.
//
// Determinism is the design constraint: a check must produce byte-identical
// verdicts, counterexamples and stats at any --threads value, because the
// verify scheduler's reports, the PR 2 verification store and the PR 3
// vacuity flags all hash or pin those bytes. The engine achieves it by
// reconstructing the *sequential* BFS insertion order at every wave barrier:
//
//   * The search proceeds in waves: wave d is the contiguous range of the
//     global state array assigned at the previous barrier (wave 0 = {root}).
//   * Workers split the wave into chunks held in per-worker pending deques;
//     an idle worker steals a chunk from the back of a victim's deque.
//   * Discovered successors go through a sharded visited set (a fixed
//     kShardCount array of mutex-protected hash maps keyed by the state
//     hash). A state discovered several times within one wave keeps the
//     *minimum* proposal (parent wave position, successor ordinal) — which
//     is exactly the proposal a sequential scan would have committed first,
//     whatever order racing workers arrive in. Results are therefore
//     invariant in both the shard count and the thread count; the count is
//     fixed anyway so the memory layout is reproducible.
//   * At the barrier one thread sorts the new states by their winning
//     proposal and appends them to the global array — reproducing the
//     sequential insertion order — then deals out the next wave's chunks.
//   * Violations found while expanding wave d are collected per worker and
//     resolved at the barrier: the canonical counterexample is the minimum
//     by (trace length, lexicographic trace, kind, event, acceptance), so
//     ties between same-wave violations break identically everywhere.
//
// The graph callbacks run concurrently and must therefore be const and
// Context-free: they may only read the pre-compiled Lts/NormLts structures
// (plain vectors) — never touch a Context, which is single-threaded by
// contract (core/context.hpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cancel.hpp"
#include "core/event.hpp"

namespace ecucsp {

// --- thread-count plumbing ---------------------------------------------------

/// Process-wide default for in-check exploration threads, consumed by every
/// check entry point whose explicit `threads` argument is 0. The verify
/// scheduler installs its per-task budget here for the duration of a batch
/// (so custom-mode tasks and the CSPm evaluator inherit it without signature
/// changes); CLI drivers install their --threads value. Defaults to 1.
unsigned set_check_threads(unsigned n);
unsigned check_threads();

/// Map a caller's `threads` argument to an effective worker count:
/// 0 -> the ambient check_threads() setting, then 0/1 -> 1 (sequential).
unsigned resolve_check_threads(unsigned requested);

/// RAII installer (scheduler batches, CLI main, tests).
class ScopedCheckThreads {
 public:
  explicit ScopedCheckThreads(unsigned n) : prev_(set_check_threads(n)) {}
  ~ScopedCheckThreads() { set_check_threads(prev_); }
  ScopedCheckThreads(const ScopedCheckThreads&) = delete;
  ScopedCheckThreads& operator=(const ScopedCheckThreads&) = delete;

 private:
  unsigned prev_;
};

// --- shared counterexample reconstruction ------------------------------------

/// Per-state BFS bookkeeping: the edge this state was first reached by.
/// Shared by the wave engine and by anything that rebuilds a trace from
/// parent pointers (the one canonical implementation — the per-check copies
/// this file replaced each re-derived it inline).
struct SearchEdge {
  std::int64_t parent = -1;
  EventId event = TAU;
};

/// Walk parent pointers from `at` back to the root, collecting the visible
/// (non-tau) events in root-to-violation order.
std::vector<EventId> rebuild_trace(const std::vector<SearchEdge>& edges,
                                   std::int64_t at);

// --- the wave engine ---------------------------------------------------------

/// A violation reported by a graph callback. `kind` is the numeric rank of
/// refine::Counterexample::Kind (kept as an integer here so this header does
/// not depend on check.hpp); it doubles as the tie-break rank.
struct WaveViolation {
  std::uint8_t kind = 0;
  EventId event = 0;
  EventSet acceptance;
};

/// Result of an edge expansion: either a successor state or a violation
/// sitting on the edge itself (a trace violation).
template <typename NodeT>
struct WaveEdge {
  bool is_violation = false;
  EventId event = TAU;  // trace label of the edge (TAU for silent steps)
  NodeT next{};
  WaveViolation violation{};
};

/// What the search produced. On a violation, `trace`/`event`/`acceptance`
/// describe the canonical counterexample; `visited` is the number of states
/// assigned ids when the search stopped (deterministic in both cases: the
/// full reachable set on a pass, everything up to and including the
/// violating wave on a failure).
struct WaveOutcome {
  bool violated = false;
  std::uint8_t kind = 0;
  std::vector<EventId> trace;
  EventId event = 0;
  EventSet acceptance;
  std::size_t visited = 0;
};

namespace wave_detail {

inline constexpr std::uint32_t kUnassigned = 0xffffffffu;

/// Half-open range of wave positions owned by one unit of work.
struct Chunk {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// A per-worker pending deque. The owner pops from the front; thieves take
/// from the back. A mutex per deque is plenty here: chunks are coarse, so
/// the queue is touched a few hundred times per wave at most.
class ChunkQueue {
 public:
  void push(Chunk c) {
    std::lock_guard lk(mu_);
    q_.push_back(c);
  }
  bool pop_front(Chunk& out) {
    std::lock_guard lk(mu_);
    if (q_.empty()) return false;
    out = q_.front();
    q_.pop_front();
    return true;
  }
  bool steal_back(Chunk& out) {
    std::lock_guard lk(mu_);
    if (q_.empty()) return false;
    out = q_.back();
    q_.pop_back();
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<Chunk> q_;
};

}  // namespace wave_detail

template <typename G>
class WaveSearch {
  using Node = typename G::Node;

 public:
  WaveSearch(const G& g, unsigned threads, CancelToken* cancel)
      : g_(g), threads_(std::max(1u, threads)), cancel_(cancel) {}

  WaveOutcome run() {
    shards_ = std::vector<Shard>(kShardCount);
    queues_ = std::vector<wave_detail::ChunkQueue>(threads_);
    created_.assign(threads_, {});
    candidates_.assign(threads_, {});
    lanes_ = std::vector<Lane>(threads_);

    const Node root = g_.root();
    keys_.push_back(root);
    edges_.push_back({-1, TAU});
    shard_for(root).map.emplace(root, Slot{0, 0});
    wave_begin_ = 0;
    wave_end_ = 1;
    deal_chunks();

    if (threads_ == 1) {
      for (;;) {
        expand_wave(0);
        if (merge()) break;
        deal_chunks();
      }
    } else {
      std::barrier<> sync(static_cast<std::ptrdiff_t>(threads_));
      {
        std::vector<std::jthread> team;
        team.reserve(threads_ - 1);
        for (unsigned w = 1; w < threads_; ++w) {
          team.emplace_back([this, w, &sync] { worker(w, sync); });
        }
        worker(0, sync);
      }  // jthreads join here; merge() runs only between barriers
    }

    if (const int a = abort_.load(std::memory_order_relaxed)) {
      if (a == kAbortError) std::rethrow_exception(error_);
      throw CheckCancelled(a == kAbortDeadline
                               ? CheckCancelled::Reason::DeadlineExceeded
                               : CheckCancelled::Reason::Cancelled);
    }
    return std::move(outcome_);
  }

 private:
  // Fixed shard count: results are shard-count invariant by construction
  // (ordering comes from winning proposals, never from shard layout), but a
  // fixed count keeps allocation behaviour reproducible and sizes the lock
  // striping independently of --threads.
  static constexpr std::size_t kShardCount = 64;

  static constexpr int kAbortCancel = 1;
  static constexpr int kAbortDeadline = 2;
  static constexpr int kAbortError = 3;

  /// Visited-set entry. `proposal` packs (parent global index << 32 |
  /// successor ordinal); the minimum proposal is the edge a sequential scan
  /// would have committed, because wave positions and ordinals are scanned
  /// in ascending order there. `index` stays kUnassigned until the barrier
  /// assigns the state its global id.
  struct Slot {
    std::uint32_t index = wave_detail::kUnassigned;
    std::uint64_t proposal = ~0ull;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Node, Slot, typename G::NodeHash> map;
  };
  struct Created {
    Node node;
    std::uint32_t shard = 0;
  };
  struct Candidate {
    std::uint32_t parent = 0;  // global index the violation's trace ends at
    WaveViolation v;
  };
  struct alignas(64) Lane {  // per-worker hot counters, padded
    std::uint32_t polls = 0;
  };

  Shard& shard_for(const Node& n) {
    return shards_[typename G::NodeHash{}(n) % kShardCount];
  }

  void worker(unsigned w, std::barrier<>& sync) {
    for (;;) {
      expand_wave(w);
      sync.arrive_and_wait();  // everyone finished expanding this wave
      if (w == 0) {
        // merge() must not escape: helpers are parked at the next barrier
        // and an unwinding coordinator would leave them there forever.
        bool finished = true;
        try {
          finished = merge();
          if (!finished) deal_chunks();
        } catch (...) {
          {
            std::lock_guard lk(error_mu_);
            if (!error_) error_ = std::current_exception();
          }
          set_abort(kAbortError);
          finished = true;
        }
        if (finished) done_.store(true, std::memory_order_relaxed);
      }
      sync.arrive_and_wait();  // barrier publishes merge results / done flag
      if (done_.load(std::memory_order_relaxed)) return;
    }
  }

  void expand_wave(unsigned w) {
    try {
      wave_detail::Chunk c;
      while (next_chunk(w, c)) {
        for (std::uint32_t idx = c.lo; idx < c.hi; ++idx) {
          if (abort_.load(std::memory_order_relaxed)) return;
          if (cancel_ && (++lanes_[w].polls & 0x3Fu) == 0) poll(w);
          expand_index(w, idx);
        }
      }
    } catch (const CheckCancelled& c) {
      set_abort(c.reason() == CheckCancelled::Reason::DeadlineExceeded
                    ? kAbortDeadline
                    : kAbortCancel);
    } catch (...) {
      {
        std::lock_guard lk(error_mu_);
        if (!error_) error_ = std::current_exception();
      }
      set_abort(kAbortError);
    }
  }

  void poll(unsigned) {
    // poll_now only reads the deadline fields (set before the search began)
    // and the cancel flag — unlike CancelToken::poll it keeps no per-thread
    // counter, so it is safe from every worker.
    cancel_->poll_now();
  }

  void set_abort(int why) {
    int expected = 0;
    abort_.compare_exchange_strong(expected, why, std::memory_order_relaxed);
  }

  bool next_chunk(unsigned w, wave_detail::Chunk& c) {
    if (queues_[w].pop_front(c)) return true;
    for (unsigned i = 1; i < threads_; ++i) {
      if (queues_[(w + i) % threads_].steal_back(c)) return true;
    }
    return false;
  }

  void expand_index(unsigned w, std::uint32_t idx) {
    const Node node = keys_[idx];
    if (g_.prune(node)) return;
    if (std::optional<WaveViolation> v = g_.inspect(node)) {
      candidates_[w].push_back({idx, std::move(*v)});
      found_.store(true, std::memory_order_relaxed);
      return;
    }
    const std::size_t deg = g_.degree(node);
    for (std::size_t i = 0; i < deg; ++i) {
      WaveEdge<Node> e = g_.edge(node, i);
      if (e.is_violation) {
        candidates_[w].push_back({idx, std::move(e.violation)});
        found_.store(true, std::memory_order_relaxed);
        continue;  // keep scanning: the canonical pick needs every same-wave
                   // candidate, whichever worker reaches it first
      }
      // Once any violation exists this wave is the last one, so new states
      // can no longer matter; skipping the insert is pure optimisation (the
      // merge discards `created_` on a violation) and cannot affect results.
      if (found_.load(std::memory_order_relaxed)) continue;
      propose(w, e.next,
              (static_cast<std::uint64_t>(idx) << 32) |
                  static_cast<std::uint64_t>(i));
    }
  }

  void propose(unsigned w, const Node& node, std::uint64_t proposal) {
    const std::size_t si = typename G::NodeHash{}(node) % kShardCount;
    Shard& s = shards_[si];
    // Uncontended at threads_ == 1; the lock_guard is kept unconditionally
    // so the sequential and parallel paths are literally the same code.
    std::lock_guard lk(s.mu);
    auto [it, fresh] = s.map.try_emplace(
        node, Slot{wave_detail::kUnassigned, proposal});
    if (fresh) {
      created_[w].push_back({node, static_cast<std::uint32_t>(si)});
    } else if (it->second.index == wave_detail::kUnassigned &&
               proposal < it->second.proposal) {
      it->second.proposal = proposal;  // a sequential scan would have seen
                                       // this edge first: keep the minimum
    }
  }

  /// Runs single-threaded between barriers (workers are parked), so it may
  /// touch shards and per-worker buffers without locks. Returns true when
  /// the search is finished (violation selected, frontier exhausted, or an
  /// abort was requested).
  bool merge() {
    if (abort_.load(std::memory_order_relaxed)) return true;

    std::vector<Candidate> cands;
    for (auto& c : candidates_) {
      cands.insert(cands.end(), std::make_move_iterator(c.begin()),
                   std::make_move_iterator(c.end()));
      c.clear();
    }
    if (!cands.empty()) {
      select_canonical(cands);
      outcome_.visited = keys_.size();
      return true;
    }

    std::vector<Created> fresh;
    for (auto& c : created_) {
      fresh.insert(fresh.end(), std::make_move_iterator(c.begin()),
                   std::make_move_iterator(c.end()));
      c.clear();
    }
    if (fresh.empty()) {
      outcome_.visited = keys_.size();
      return true;  // full pass: the reachable space is exhausted
    }

    // Sort by winning proposal: (parent wave position, successor ordinal)
    // ascending — exactly the order a sequential scan inserts new states.
    // Proposals are unique per state (each edge targets one state), so the
    // order is total and thread-count independent.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
    order.reserve(fresh.size());
    for (std::uint32_t i = 0; i < fresh.size(); ++i) {
      order.emplace_back(shards_[fresh[i].shard].map.at(fresh[i].node).proposal,
                         i);
    }
    std::sort(order.begin(), order.end());

    wave_begin_ = keys_.size();
    keys_.reserve(keys_.size() + fresh.size());
    edges_.reserve(edges_.size() + fresh.size());
    for (const auto& [proposal, fi] : order) {
      const std::uint32_t parent = static_cast<std::uint32_t>(proposal >> 32);
      const std::size_t ordinal =
          static_cast<std::size_t>(proposal & 0xffffffffu);
      const Node pnode = keys_[parent];  // copy before push_back reallocates
      const WaveEdge<Node> e = g_.edge(pnode, ordinal);
      const std::uint32_t id = static_cast<std::uint32_t>(keys_.size());
      shards_[fresh[fi].shard].map.at(fresh[fi].node).index = id;
      keys_.push_back(fresh[fi].node);
      edges_.push_back({static_cast<std::int64_t>(parent), e.event});
    }
    wave_end_ = keys_.size();
    return false;
  }

  /// Canonical counterexample: minimum by (trace length, lexicographic
  /// trace, kind rank, event, acceptance). Every candidate of the violating
  /// wave is compared, so ties between violations discovered by different
  /// workers (or in a different scan order) resolve identically at any
  /// thread count.
  void select_canonical(std::vector<Candidate>& cands) {
    std::vector<EventId> best_trace;
    const Candidate* best = nullptr;
    for (const Candidate& c : cands) {
      std::vector<EventId> trace =
          rebuild_trace(edges_, static_cast<std::int64_t>(c.parent));
      if (!best || wins(trace, c, best_trace, *best)) {
        best = &c;
        best_trace = std::move(trace);
      }
    }
    outcome_.violated = true;
    outcome_.kind = best->v.kind;
    outcome_.trace = std::move(best_trace);
    outcome_.event = best->v.event;
    outcome_.acceptance = best->v.acceptance;
  }

  static bool wins(const std::vector<EventId>& t, const Candidate& c,
                   const std::vector<EventId>& bt, const Candidate& b) {
    if (t.size() != bt.size()) return t.size() < bt.size();
    if (t != bt) {
      return std::lexicographical_compare(t.begin(), t.end(), bt.begin(),
                                          bt.end());
    }
    if (c.v.kind != b.v.kind) return c.v.kind < b.v.kind;
    if (c.v.event != b.v.event) return c.v.event < b.v.event;
    return std::lexicographical_compare(
        c.v.acceptance.items().begin(), c.v.acceptance.items().end(),
        b.v.acceptance.items().begin(), b.v.acceptance.items().end());
  }

  void deal_chunks() {
    const std::size_t n = wave_end_ - wave_begin_;
    if (n == 0) return;
    // Coarse chunks bound queue traffic; several chunks per worker leave
    // room for stealing when per-state work is skewed.
    const std::size_t chunk =
        std::max<std::size_t>(64, n / (static_cast<std::size_t>(threads_) * 8));
    unsigned q = 0;
    for (std::size_t lo = wave_begin_; lo < wave_end_; lo += chunk) {
      const std::size_t hi = std::min(wave_end_, lo + chunk);
      queues_[q % threads_].push(
          {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)});
      ++q;
    }
  }

  const G& g_;
  unsigned threads_;
  CancelToken* cancel_;

  std::vector<Node> keys_;
  std::vector<SearchEdge> edges_;
  std::size_t wave_begin_ = 0;
  std::size_t wave_end_ = 0;

  std::vector<Shard> shards_;
  std::vector<wave_detail::ChunkQueue> queues_;
  std::vector<std::vector<Created>> created_;
  std::vector<std::vector<Candidate>> candidates_;
  std::vector<Lane> lanes_;

  std::atomic<bool> found_{false};
  std::atomic<bool> done_{false};
  std::atomic<int> abort_{0};
  std::mutex error_mu_;
  std::exception_ptr error_;

  WaveOutcome outcome_;
};

/// Explore `g` from its root with `threads` workers (callers normally pass
/// resolve_check_threads(requested)). Throws CheckCancelled when the token
/// fires mid-search; rethrows any exception a graph callback raised.
template <typename G>
WaveOutcome wave_search(const G& g, unsigned threads, CancelToken* cancel) {
  return WaveSearch<G>(g, threads, cancel).run();
}

}  // namespace ecucsp
