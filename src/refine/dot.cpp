#include "refine/dot.hpp"

#include <stdexcept>

namespace ecucsp {

namespace {

/// Escape for a double-quoted DOT string.
std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string lts_to_dot(const Context& ctx, const Lts& lts,
                       const DotOptions& options) {
  if (lts.state_count() > options.max_states) {
    throw std::length_error("LTS too large to render (" +
                            std::to_string(lts.state_count()) + " states)");
  }
  std::string out = "digraph " + options.graph_name + " {\n";
  if (options.rankdir_lr) out += "  rankdir=LR;\n";
  out += "  node [shape=circle, fontsize=10];\n";
  out += "  s" + std::to_string(lts.root) +
         " [shape=doublecircle, label=\"" + std::to_string(lts.root) +
         "\"];\n";
  for (StateId s = 0; s < lts.state_count(); ++s) {
    for (const LtsTransition& t : lts.succ[s]) {
      if (!options.show_tau && t.event == TAU) continue;
      out += "  s" + std::to_string(s) + " -> s" + std::to_string(t.target) +
             " [label=\"" + escape(ctx.event_name(t.event)) + "\"";
      if (t.event == TAU) out += ", style=dashed, color=gray";
      out += "];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string counterexample_to_dot(const Context& ctx,
                                  const Counterexample& cex,
                                  const DotOptions& options) {
  std::string out = "digraph " + options.graph_name + " {\n";
  out += "  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  std::size_t n = 0;
  out += "  s0 [shape=doublecircle];\n";
  for (const EventId e : cex.trace) {
    out += "  s" + std::to_string(n) + " -> s" + std::to_string(n + 1) +
           " [label=\"" + escape(ctx.event_name(e)) + "\"];\n";
    ++n;
  }
  const std::string verdict = cex.describe(ctx);
  switch (cex.kind) {
    case Counterexample::Kind::TraceViolation:
    case Counterexample::Kind::Nondeterminism:
      out += "  s" + std::to_string(n) + " -> bad [label=\"" +
             escape(ctx.event_name(cex.event)) + "\", color=red];\n";
      out += "  bad [shape=octagon, color=red, label=\"violation\"];\n";
      break;
    default:
      out += "  s" + std::to_string(n) +
             " [shape=octagon, color=red, xlabel=\"violation\"];\n";
      break;
  }
  out += "  label=\"" + escape(verdict) + "\";\n  fontsize=10;\n}\n";
  return out;
}

}  // namespace ecucsp
