// Strong-bisimulation minimisation of explicit LTSs — the library's
// counterpart of FDR's compression functions ("sbisim"). Minimising a
// component before composing or checking it preserves every refinement
// verdict in all three semantic models (strong bisimilarity implies
// equality in T, F and FD), while often shrinking the state count
// dramatically; bench_refinement_scaling quantifies the trade-off.
#pragma once

#include "core/cancel.hpp"
#include "refine/lts.hpp"

namespace ecucsp {

struct MinimizeResult {
  Lts lts;                         // the quotient LTS
  std::vector<StateId> block_of;   // original state -> quotient state
  std::size_t original_states = 0;
};

/// Partition-refinement (Kanellakis–Smolka style) quotient of `lts` by
/// strong bisimilarity. Transition labels (including tau and tick) are
/// respected exactly. O(n^2 log n) worst case, so `cancel` (when given) is
/// polled per state inside every refinement pass — a long minimisation
/// honours batch deadlines the same way check.cpp's explorations do.
MinimizeResult minimize_strong(const Lts& lts, CancelToken* cancel = nullptr);

/// Wrap an explicit LTS back into a process term (one Var definition per
/// state), so minimised components can be recomposed with other processes.
/// Visible moves become prefixes, tick becomes SKIP, and tau moves are
/// encoded with the sliding operator; the result is weakly equivalent to
/// the input (identical traces, stable failures and divergences).
/// `name` must be fresh in the Context.
ProcessRef lts_to_process(Context& ctx, const Lts& lts,
                          const std::string& name);

/// Convenience: compile, minimise, wrap. The CSP analogue of FDR's
/// 'sbisim(P)' compression. `cancel` reaches both the LTS compilation and
/// the partition refinement.
ProcessRef compress(Context& ctx, ProcessRef p, const std::string& name,
                    std::size_t max_states = 1u << 22,
                    CancelToken* cancel = nullptr);

}  // namespace ecucsp
