// Graphviz export of labelled transition systems and counterexample traces.
//
// FDR "incorporates visualisation tools to display process transition
// models and traces" (paper Section IV-D); this renders the same artifacts
// as DOT digraphs for `dot -Tsvg`.
#pragma once

#include <string>

#include "refine/check.hpp"
#include "refine/lts.hpp"

namespace ecucsp {

struct DotOptions {
  std::string graph_name = "lts";
  bool show_tau = true;        // include internal transitions
  bool rankdir_lr = true;      // left-to-right layout
  std::size_t max_states = 512;  // refuse to render monsters
};

/// Render the LTS. States are numbered; the root is marked. Throws
/// std::length_error when the LTS exceeds options.max_states.
std::string lts_to_dot(const Context& ctx, const Lts& lts,
                       const DotOptions& options = {});

/// Render a counterexample as a linear event chain, annotated with the
/// violation kind — the designer-facing feedback artifact of Figure 1.
std::string counterexample_to_dot(const Context& ctx, const Counterexample& cex,
                                  const DotOptions& options = {});

}  // namespace ecucsp
