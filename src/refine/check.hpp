// Refinement and property checks — the FDR-style assertion engine.
//
// Supported assertions (Section IV-D of the paper uses FDR for exactly
// these):
//   SPEC [T= IMPL      trace refinement
//   SPEC [F= IMPL      stable-failures refinement
//   SPEC [FD= IMPL     failures-divergences refinement
//   IMPL :[deadlock free]
//   IMPL :[divergence free]
//   IMPL :[deterministic]
//
// Every failed check carries a counterexample: the visible trace leading to
// the violation, plus the violation-specific payload. This is the
// "counterexample ... fed back to software designers" loop of Figure 1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/context.hpp"
#include "refine/compact.hpp"
#include "refine/lts.hpp"
#include "refine/normalize.hpp"
#include "refine/parallel.hpp"

namespace ecucsp {

enum class Model { Traces, Failures, FailuresDivergences };

std::string to_string(Model m);

struct Counterexample {
  enum class Kind {
    TraceViolation,       // impl performed an event the spec cannot
    AcceptanceViolation,  // impl refuses more than the spec allows
    DivergenceViolation,  // impl diverges where the spec does not
    Deadlock,
    Divergence,
    Nondeterminism,
  };
  Kind kind = Kind::TraceViolation;
  /// Visible events (taus elided) from the root to the violating state.
  std::vector<EventId> trace;
  /// TraceViolation / Nondeterminism: the offending event.
  EventId event = 0;
  /// AcceptanceViolation / Deadlock: what the impl state accepts there.
  EventSet impl_acceptance;

  std::string describe(const Context& ctx) const;
};

struct CheckStats {
  std::size_t impl_states = 0;
  std::size_t impl_transitions = 0;
  std::size_t spec_states = 0;
  std::size_t spec_norm_nodes = 0;
  std::size_t product_states = 0;
};

struct CheckResult {
  bool passed = false;
  std::optional<Counterexample> counterexample;
  CheckStats stats;
  /// Refinement checks only: the check passed but the implementation's
  /// reachable alphabet never touches any event the specification actually
  /// constrains (an event the spec allows in some states but not others).
  /// Such a PASS says nothing about the property — typically the sign of an
  /// extraction/renaming bug upstream. Always false for failed or unary
  /// checks.
  bool vacuous = false;
  /// True when this verdict was *predicted* by the static pruner
  /// (verify/prune.hpp) instead of explored: the check was statically shown
  /// to be a guaranteed vacuous PASS, so the engine never ran. The engine
  /// itself never sets this; it is provenance recorded by the verify layer
  /// and preserved by the store so reports can tell predicted cells from
  /// swept ones. Only ever true together with passed && vacuous.
  bool pruned = false;
  /// True when this verdict was served by the installed CheckCache instead
  /// of a fresh exploration. Transient — never serialized into the store.
  bool from_cache = false;

  explicit operator bool() const { return passed; }
};

// --- verification cache hook -------------------------------------------------

/// Which entry point a cached verdict belongs to (part of the cache key:
/// "deadlock free" and "deterministic" on the same term are different
/// questions).
enum class CheckOp : std::uint8_t {
  Refinement = 0,
  DeadlockFree = 1,
  DivergenceFree = 2,
  Deterministic = 3,
};

/// Interface consumed by the check entry points below. A cache implementation
/// (src/store provides the persistent one) keys on content digests of the
/// terms plus (op, model, max_states); any lookup is free to miss. All
/// methods may be called concurrently from independent worker threads, each
/// with its own Context — implementations must be thread-safe and must not
/// retain anything Context-bound across calls.
class CheckCache {
 public:
  virtual ~CheckCache() = default;

  /// `spec` is nullptr for the unary checks (op != Refinement).
  virtual std::optional<CheckResult> lookup_check(Context& ctx, ProcessRef spec,
                                                  ProcessRef impl, CheckOp op,
                                                  Model model,
                                                  std::size_t max_states) = 0;
  virtual void store_check(Context& ctx, ProcessRef spec, ProcessRef impl,
                           CheckOp op, Model model, std::size_t max_states,
                           const CheckResult& result) = 0;

  /// LTS tier: lets a check that misses the verdict tier still skip the
  /// exploration when the same term was compiled before (possibly under a
  /// different spec, or by a different worker).
  virtual std::optional<Lts> lookup_lts(Context& ctx, ProcessRef root,
                                        std::size_t max_states) = 0;
  virtual void store_lts(Context& ctx, ProcessRef root, std::size_t max_states,
                         const Lts& lts) = 0;
};

/// Install a process-wide cache consulted by every check entry point and by
/// their internal LTS compilations; nullptr uninstalls. Returns the previous
/// cache. The engine itself stays lock-free — the cache serialises internally.
CheckCache* set_check_cache(CheckCache* cache);
CheckCache* check_cache();

/// RAII installer (tests, CLI main, bench drivers).
class ScopedCheckCache {
 public:
  explicit ScopedCheckCache(CheckCache* cache)
      : prev_(set_check_cache(cache)) {}
  ~ScopedCheckCache() { set_check_cache(prev_); }
  ScopedCheckCache(const ScopedCheckCache&) = delete;
  ScopedCheckCache& operator=(const ScopedCheckCache&) = delete;

 private:
  CheckCache* prev_;
};

/// Does `impl` refine `spec` in the given semantic model?
///
/// All check entry points take an optional CancelToken. When given it is
/// polled periodically inside every exploration loop (LTS compilation and
/// the product-space BFS); a fired token aborts the check by throwing
/// CheckCancelled. This is the hook the src/verify batch scheduler uses to
/// impose per-check wall-clock deadlines without pre-empting threads.
///
/// `threads` selects how many workers explore the product space (the wave
/// engine in parallel.hpp): 0 defers to the ambient check_threads() setting
/// (installed by the verify scheduler or a CLI's --threads), which defaults
/// to 1. Results — verdict, counterexample, vacuity flag, stats, and hence
/// every cache digest — are byte-identical at any thread count; only the
/// wall clock changes. LTS compilation and spec normalization stay on the
/// calling thread (they need the Context, which is single-threaded by
/// contract).
///
/// `compress` selects the FDR-style reductions (refine/compact.hpp) applied
/// to the component LTSes before normalization and the product sweep;
/// Compression::Ambient defers to check_compression() (installed by the
/// scheduler or a CLI's --compress), defaulting to None. Reductions are
/// verdict-, counterexample- and vacuity-preserving: a check that fails on
/// the compressed machines is replayed on the uncompressed ones, so the
/// counterexample bytes match --compress=none exactly. Like `threads`,
/// `compress` is therefore deliberately NOT part of the cache key. Only the
/// exploration *stats* may differ across compression levels on a PASS
/// (fewer states swept is the point); refine_compress_diff_test pins the
/// invariants.
CheckResult check_refinement(Context& ctx, ProcessRef spec, ProcessRef impl,
                             Model model, std::size_t max_states = 1u << 22,
                             CancelToken* cancel = nullptr,
                             unsigned threads = 0,
                             Compression compress = Compression::Ambient);

CheckResult check_deadlock_free(Context& ctx, ProcessRef p,
                                std::size_t max_states = 1u << 22,
                                CancelToken* cancel = nullptr,
                                unsigned threads = 0,
                                Compression compress = Compression::Ambient);
CheckResult check_divergence_free(Context& ctx, ProcessRef p,
                                  std::size_t max_states = 1u << 22,
                                  CancelToken* cancel = nullptr,
                                  unsigned threads = 0,
                                  Compression compress = Compression::Ambient);
CheckResult check_deterministic(Context& ctx, ProcessRef p,
                                std::size_t max_states = 1u << 22,
                                CancelToken* cancel = nullptr,
                                unsigned threads = 0,
                                Compression compress = Compression::Ambient);

/// Refinement between pre-compiled structures: no Context, no cache, no
/// compilation — just the product-space sweep over the compact form. This
/// is what the bench layer times when measuring the parallel engine in
/// isolation, and what refinement_uncached delegates to internally.
/// stats.spec_states is left 0 (the spec's un-normalized LTS is not visible
/// here). `compress` (default None — explicit control at this layer, no
/// ambient lookup) reduces the already-compiled impl before the sweep, with
/// the same fail-replay guarantee as the Context entry points; the spec
/// arrives normalized, so spec-side reduction happens upstream.
CheckResult check_refinement_compiled(const NormLts& norm,
                                      const CompactLts& impl, Model model,
                                      unsigned threads = 0,
                                      CancelToken* cancel = nullptr,
                                      Compression compress = Compression::None);

/// Lts convenience overload: converts (order-preserving) and delegates.
CheckResult check_refinement_compiled(const NormLts& norm, const Lts& impl,
                                      Model model, unsigned threads = 0,
                                      CancelToken* cancel = nullptr);

/// All finite traces of `p` up to the given length, visible events only.
/// Exponential; intended for tests and the attack-tree semantics checks.
std::vector<std::vector<EventId>> enumerate_traces(Context& ctx, ProcessRef p,
                                                   std::size_t max_length,
                                                   std::size_t max_states = 1u << 20);

/// Pretty-print a trace as "<send.reqSw, rec.rptSw>".
std::string format_trace(const Context& ctx, const std::vector<EventId>& trace);

/// Trace membership: is `trace` (visible events) a trace of `p`?
/// Walks the tau-closed LTS; used by conformance testing of executions
/// captured from the simulated network against extracted models.
struct TraceMembership {
  bool member = false;
  /// If not a member: how many events were consumable before the failure,
  /// and what the model offered at that point.
  std::size_t accepted_prefix = 0;
  EventSet offered;
};
TraceMembership is_trace_of(Context& ctx, ProcessRef p,
                            const std::vector<EventId>& trace,
                            std::size_t max_states = 1u << 22);

}  // namespace ecucsp
