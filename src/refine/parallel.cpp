#include "refine/parallel.hpp"

namespace ecucsp {

namespace {

// Same idiom as the global CheckCache hook in check.cpp: a process-wide
// atomic consulted by every check entry point whose explicit `threads`
// argument is 0. Installed by ScopedCheckThreads for the duration of a
// scheduler batch or a CLI run.
std::atomic<unsigned> g_check_threads{1};

}  // namespace

unsigned set_check_threads(unsigned n) {
  return g_check_threads.exchange(n, std::memory_order_acq_rel);
}

unsigned check_threads() {
  return g_check_threads.load(std::memory_order_acquire);
}

unsigned resolve_check_threads(unsigned requested) {
  const unsigned n = requested != 0 ? requested : check_threads();
  return n == 0 ? 1 : n;
}

std::vector<EventId> rebuild_trace(const std::vector<SearchEdge>& edges,
                                   std::int64_t at) {
  std::vector<EventId> trace;
  for (std::int64_t cur = at; cur >= 0; cur = edges[cur].parent) {
    if (edges[cur].parent >= 0 && edges[cur].event != TAU) {
      trace.push_back(edges[cur].event);
    }
  }
  std::reverse(trace.begin(), trace.end());
  return trace;
}

}  // namespace ecucsp
