// Labelled transition system compilation.
//
// Compiles a process term to an explicit LTS by exhaustive exploration of
// the operational semantics. States are canonicalised (Var indirection
// chased) hash-consed process terms, so state identity is pointer identity.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/cancel.hpp"
#include "core/context.hpp"

namespace ecucsp {

using StateId = std::uint32_t;

struct LtsTransition {
  EventId event = 0;
  StateId target = 0;
};

/// An explicit finite LTS. succ[s] lists s's outgoing transitions.
struct Lts {
  StateId root = 0;
  std::vector<std::vector<LtsTransition>> succ;
  std::vector<ProcessRef> term_of;  // originating term, for diagnostics
  // Successful-termination (Omega) states, recorded at compile time while
  // the owning Context is alive. term_of pointers dangle once the Context
  // dies, but compiled Lts structures must stay usable as plain data (the
  // check_refinement_compiled contract) — so anything the engines need
  // from the terms is captured here instead. Empty on hand-built machines
  // (consumers then fall back to term_of, which those keep alive).
  std::vector<bool> omega;

  std::size_t state_count() const { return succ.size(); }
  std::size_t transition_count() const {
    std::size_t n = 0;
    for (const auto& ts : succ) n += ts.size();
    return n;
  }

  /// True if state s has no outgoing transitions at all (deadlock or Omega).
  bool is_terminal(StateId s) const { return succ[s].empty(); }

  /// For each state, whether an infinite tau-path starts there
  /// (i.e. the state can reach a tau-cycle via tau steps only).
  /// Delegates to CompactLts::divergent_states (refine/compact.hpp) — the
  /// one SCC implementation shared with the reduction passes.
  std::vector<bool> divergent_states() const;
};

class StateLimitExceeded : public std::runtime_error {
 public:
  explicit StateLimitExceeded(std::size_t limit)
      : std::runtime_error("state limit exceeded (" + std::to_string(limit) +
                           " states); the model may be infinite-state") {}
};

/// Explore `root` breadth-first. Throws StateLimitExceeded beyond max_states.
/// If `cancel` is given it is polled periodically during exploration and the
/// search aborts with CheckCancelled when the token fires — compilation is
/// the dominant cost of a check, so this is where deadlines mostly trip.
Lts compile_lts(Context& ctx, ProcessRef root,
                std::size_t max_states = 1u << 22,
                CancelToken* cancel = nullptr);

}  // namespace ecucsp
