#include "refine/check.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <set>
#include <unordered_map>

namespace ecucsp {

namespace {

std::atomic<CheckCache*> g_check_cache{nullptr};

/// compile_lts through the installed cache's LTS tier: a hit skips the
/// exploration entirely (the dominant cost of every check below).
Lts compile_or_load(Context& ctx, ProcessRef root, std::size_t max_states,
                    CancelToken* cancel) {
  CheckCache* const cache = g_check_cache.load(std::memory_order_acquire);
  if (cache) {
    if (auto lts = cache->lookup_lts(ctx, root, max_states)) {
      return std::move(*lts);
    }
  }
  Lts lts = compile_lts(ctx, root, max_states, cancel);
  if (cache) cache->store_lts(ctx, root, max_states, lts);
  return lts;
}

}  // namespace

CheckCache* set_check_cache(CheckCache* cache) {
  return g_check_cache.exchange(cache, std::memory_order_acq_rel);
}

CheckCache* check_cache() {
  return g_check_cache.load(std::memory_order_acquire);
}

std::string to_string(Model m) {
  switch (m) {
    case Model::Traces:
      return "T";
    case Model::Failures:
      return "F";
    case Model::FailuresDivergences:
      return "FD";
  }
  return "?";
}

std::string format_trace(const Context& ctx, const std::vector<EventId>& trace) {
  std::string out = "<";
  bool first = true;
  for (EventId e : trace) {
    if (!first) out += ", ";
    first = false;
    out += ctx.event_name(e);
  }
  out += ">";
  return out;
}

std::string Counterexample::describe(const Context& ctx) const {
  std::string out;
  switch (kind) {
    case Kind::TraceViolation:
      out = "trace violation: after " + format_trace(ctx, trace) +
            " the implementation performs '" + ctx.event_name(event) +
            "', which the specification forbids";
      break;
    case Kind::AcceptanceViolation: {
      out = "acceptance violation: after " + format_trace(ctx, trace) +
            " the implementation stabilises accepting only {";
      bool first = true;
      for (EventId e : impl_acceptance) {
        if (!first) out += ", ";
        first = false;
        out += ctx.event_name(e);
      }
      out += "}, refusing more than the specification allows";
      break;
    }
    case Kind::DivergenceViolation:
      out = "divergence violation: after " + format_trace(ctx, trace) +
            " the implementation can diverge but the specification cannot";
      break;
    case Kind::Deadlock:
      out = "deadlock: after " + format_trace(ctx, trace) +
            " the process can neither engage in any event nor terminate";
      break;
    case Kind::Divergence:
      out = "divergence: after " + format_trace(ctx, trace) +
            " the process can perform internal activity forever";
      break;
    case Kind::Nondeterminism:
      out = "nondeterminism: after " + format_trace(ctx, trace) +
            " the process may either accept or refuse '" +
            ctx.event_name(event) + "'";
      break;
  }
  return out;
}

namespace {

// Counterexample reconstruction (SearchEdge / rebuild_trace) lives in
// parallel.hpp now — one canonical implementation shared by the wave engine
// and everything below, instead of the per-check inline re-walk each of the
// four uncached functions used to carry.

EventSet visible_initials(const CompactLts& lts, StateId s) {
  std::vector<EventId> out;
  for (std::uint32_t k = lts.begin(s); k < lts.end(s); ++k) {
    if (lts.events[k] != lts.tau) out.push_back(lts.global_event(lts.events[k]));
  }
  return EventSet(std::move(out));
}

bool is_stable(const CompactLts& lts, StateId s) {
  for (std::uint32_t k = lts.begin(s); k < lts.end(s); ++k) {
    if (lts.events[k] == lts.tau) return false;
  }
  return true;
}

/// Does the spec node allow a stable implementation state that accepts
/// exactly `acceptance`? True iff some minimal spec acceptance is a subset.
bool acceptance_allowed(const NormNode& spec, const EventSet& acceptance) {
  for (const EventSet& m : spec.min_acceptances) {
    if (m.subset_of(acceptance)) return true;
  }
  return false;
}

constexpr std::uint8_t rank(Counterexample::Kind k) {
  return static_cast<std::uint8_t>(k);
}

Counterexample to_counterexample(WaveOutcome&& out) {
  Counterexample ce;
  ce.kind = static_cast<Counterexample::Kind>(out.kind);
  ce.trace = std::move(out.trace);
  ce.event = out.event;
  ce.impl_acceptance = std::move(out.acceptance);
  return ce;
}

// --- wave-engine graph adapters ---------------------------------------------
//
// Each check is a search over some graph; the adapters below give the wave
// engine (parallel.hpp) its view of each. Their callbacks run concurrently,
// so they read only the pre-compiled CompactLts/NormLts structures — never a
// Context. The hot loops index the compact CSR arrays directly: one pointer
// chase per state row instead of the vector-of-vectors walk the engine used
// to pay per edge.

/// The normalized-spec × implementation product for SPEC [T=/[F=/[FD= IMPL.
struct RefinementGraph {
  const NormLts& norm;
  const CompactLts& impl;
  const std::vector<bool>* impl_diverges;  // non-null iff FD model
  bool failures;                           // model != Traces
  bool with_div;                           // model == FailuresDivergences

  /// Dense (norm node × interned impl event) successor table. The impl's
  /// alphabet is small and contiguous after interning, so when the table
  /// fits (~16M entries) every spec step in edge() is a single indexed load
  /// instead of NormNode::successor's binary search. Falls back to the
  /// search when it would be too large.
  std::vector<NormId> spec_succ;
  std::size_t width = 0;

  RefinementGraph(const NormLts& n, const CompactLts& i,
                  const std::vector<bool>* div, bool fail, bool wd)
      : norm(n), impl(i), impl_diverges(div), failures(fail), with_div(wd) {
    width = impl.alphabet.size();
    if (width > 0 && norm.nodes.size() <= (std::size_t{1} << 24) / width) {
      spec_succ.assign(norm.nodes.size() * width, NORM_NONE);
      for (std::size_t id = 0; id < norm.nodes.size(); ++id) {
        for (const auto& [event, target] : norm.nodes[id].succ) {
          const LocalEvent le = impl.local_event(event);
          if (le != NO_LOCAL_EVENT) spec_succ[id * width + le] = target;
        }
      }
    }
  }

  struct Node {
    NormId spec = 0;
    StateId impl = 0;
    bool operator==(const Node&) const = default;
  };
  struct NodeHash {
    std::size_t operator()(const Node& n) const {
      return hash_combine(n.spec, n.impl);
    }
  };

  Node root() const { return {norm.root, impl.root}; }

  // In the FD model a divergent specification node permits every behaviour
  // below it; prune the branch.
  bool prune(const Node& n) const {
    return with_div && norm.nodes[n.spec].divergent;
  }

  std::optional<WaveViolation> inspect(const Node& n) const {
    if (with_div && (*impl_diverges)[n.impl]) {
      return WaveViolation{rank(Counterexample::Kind::DivergenceViolation), 0,
                           EventSet{}};
    }
    if (failures && is_stable(impl, n.impl)) {
      EventSet acceptance = visible_initials(impl, n.impl);
      if (!acceptance_allowed(norm.nodes[n.spec], acceptance)) {
        return WaveViolation{rank(Counterexample::Kind::AcceptanceViolation), 0,
                             std::move(acceptance)};
      }
    }
    return std::nullopt;
  }

  std::size_t degree(const Node& n) const { return impl.degree(n.impl); }

  WaveEdge<Node> edge(const Node& n, std::size_t i) const {
    const std::uint32_t k = impl.begin(n.impl) + static_cast<std::uint32_t>(i);
    const LocalEvent le = impl.events[k];
    const StateId target = impl.targets[k];
    if (le == impl.tau) return {false, TAU, Node{n.spec, target}, {}};
    const EventId event = impl.global_event(le);
    const NormId next_spec =
        spec_succ.empty() ? norm.nodes[n.spec].successor(event)
                          : spec_succ[n.spec * width + le];
    if (next_spec == NORM_NONE) {
      return {true, event, Node{},
              WaveViolation{rank(Counterexample::Kind::TraceViolation), event,
                            EventSet{}}};
    }
    return {false, event, Node{next_spec, target}, {}};
  }
};

struct LtsStateHash {
  std::size_t operator()(StateId s) const { return std::hash<StateId>{}(s); }
};

/// IMPL :[deadlock free] — a reachability search for stuck non-terminated
/// states. Post-tick and Omega classification was baked into the compact
/// flags at conversion time, so inspect() is a flag test.
struct DeadlockGraph {
  const CompactLts& lts;

  using Node = StateId;
  using NodeHash = LtsStateHash;

  Node root() const { return lts.root; }
  bool prune(Node) const { return false; }

  std::optional<WaveViolation> inspect(Node s) const {
    // States entered by a tick are successful termination, not deadlock.
    if (lts.is_deadlock(s)) {
      return WaveViolation{rank(Counterexample::Kind::Deadlock), 0, EventSet{}};
    }
    return std::nullopt;
  }

  std::size_t degree(Node s) const { return lts.degree(s); }
  WaveEdge<Node> edge(Node s, std::size_t i) const {
    const std::uint32_t k = lts.begin(s) + static_cast<std::uint32_t>(i);
    // global_event maps the interned tau back to TAU, so rebuild_trace's
    // tau elision behaves exactly as before.
    return {false, lts.global_event(lts.events[k]), lts.targets[k], {}};
  }
};

/// IMPL :[divergence free] — reachability of a state on a tau cycle.
struct DivergenceGraph {
  const CompactLts& lts;
  const std::vector<bool>& diverges;

  using Node = StateId;
  using NodeHash = LtsStateHash;

  Node root() const { return lts.root; }
  bool prune(Node) const { return false; }
  std::optional<WaveViolation> inspect(Node s) const {
    if (diverges[s]) {
      return WaveViolation{rank(Counterexample::Kind::Divergence), 0,
                           EventSet{}};
    }
    return std::nullopt;
  }
  std::size_t degree(Node s) const { return lts.degree(s); }
  WaveEdge<Node> edge(Node s, std::size_t i) const {
    const std::uint32_t k = lts.begin(s) + static_cast<std::uint32_t>(i);
    return {false, lts.global_event(lts.events[k]), lts.targets[k], {}};
  }
};

/// IMPL :[deterministic] — BFS over the (deterministic) normal form. Its
/// edges carry visible events only, so the shared rebuild_trace's tau
/// elision never fires — every non-root edge contributes to the trace.
struct DeterminismGraph {
  const NormLts& norm;

  using Node = NormId;
  using NodeHash = LtsStateHash;

  Node root() const { return norm.root; }
  bool prune(Node) const { return false; }

  std::optional<WaveViolation> inspect(Node n) const {
    const NormNode& node = norm.nodes[n];
    if (node.divergent) {
      return WaveViolation{rank(Counterexample::Kind::Divergence), 0,
                           EventSet{}};
    }
    // Deterministic iff after every trace the process accepts exactly its
    // initials: a minimal acceptance missing some initial event means the
    // same trace can lead to both acceptance and refusal of that event.
    for (const EventSet& m : node.min_acceptances) {
      if (m == node.initials) continue;
      const EventSet missing = node.initials.set_difference(m);
      if (!missing.empty()) {
        return WaveViolation{rank(Counterexample::Kind::Nondeterminism),
                             *missing.begin(), m};
      }
    }
    return std::nullopt;
  }

  std::size_t degree(Node n) const { return norm.nodes[n].succ.size(); }
  WaveEdge<Node> edge(Node n, std::size_t i) const {
    const auto& [event, target] = norm.nodes[n].succ[i];
    return {false, event, target, {}};
  }
};

}  // namespace

namespace {

/// Consult the installed cache around `run`, which computes the verdict
/// fresh. Cancellation/state-limit exceptions propagate before anything is
/// stored, so only completed verdicts ever enter the cache.
template <typename Run>
CheckResult with_check_cache(Context& ctx, ProcessRef spec, ProcessRef impl,
                             CheckOp op, Model model, std::size_t max_states,
                             Run run) {
  CheckCache* const cache = check_cache();
  if (cache) {
    if (auto hit = cache->lookup_check(ctx, spec, impl, op, model, max_states)) {
      hit->from_cache = true;
      return std::move(*hit);
    }
  }
  CheckResult result = run();
  if (cache) cache->store_check(ctx, spec, impl, op, model, max_states, result);
  return result;
}

/// The refinement product sweep over pre-normalized spec and compact impl —
/// the single code path every refinement entry point bottoms out in,
/// whatever the compression mode (the mode only decides *which* machines
/// are handed in).
CheckResult refinement_sweep(const NormLts& norm, const CompactLts& impl,
                             Model model, unsigned threads,
                             CancelToken* cancel) {
  CheckResult result;
  const bool with_div = model == Model::FailuresDivergences;
  std::vector<bool> impl_diverges;
  if (with_div) impl_diverges = impl.divergent_states();

  result.stats.spec_norm_nodes = norm.nodes.size();
  result.stats.impl_states = impl.state_count();
  result.stats.impl_transitions = impl.transition_count();

  const RefinementGraph g{norm, impl, with_div ? &impl_diverges : nullptr,
                          model != Model::Traces, with_div};
  WaveOutcome out = wave_search(g, resolve_check_threads(threads), cancel);
  result.stats.product_states = out.visited;
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;

  // Vacuity: which events does the spec actually *constrain*? An event
  // allowed in every normal node (e.g. everything under RUN(Sigma)) is
  // never restricted, so it cannot witness the property; the constrained
  // set is the union-minus-intersection of per-node initials. If the
  // implementation's reachable alphabet misses all of them, the pass is
  // trivially true — flag it rather than let a broken extraction "verify".
  // Both inputs are invariant under the reductions: the constrained set is
  // a function of the spec's weak semantics (which normalization of a
  // compressed spec preserves), and compression never removes an event
  // from the impl's reachable alphabet without removing it everywhere.
  {
    EventSet allowed_union;
    EventSet allowed_inter;
    bool first = true;
    for (const NormNode& n : norm.nodes) {
      allowed_union = allowed_union.set_union(n.initials);
      allowed_inter = first ? n.initials : allowed_inter.set_intersection(n.initials);
      first = false;
    }
    EventSet constrained = allowed_union.set_difference(allowed_inter);
    constrained = constrained.set_difference(EventSet{TAU, TICK});
    if (!constrained.empty()) {
      bool touched = false;
      for (std::size_t k = 0; k < impl.events.size() && !touched; ++k) {
        const EventId e = impl.global_event(impl.events[k]);
        if (e != TAU && e != TICK && constrained.contains(e)) touched = true;
      }
      result.vacuous = !touched;
    }
  }
  return result;
}

CheckResult refinement_uncached(Context& ctx, ProcessRef spec, ProcessRef impl,
                                Model model, std::size_t max_states,
                                CancelToken* cancel, unsigned threads,
                                Compression mode) {
  // Compilation and normalization need the Context, so they stay on the
  // calling thread; the product sweep below is Context-free and parallel.
  const Lts spec_lts = compile_or_load(ctx, spec, max_states, cancel);
  const bool with_div = model == Model::FailuresDivergences;

  CheckResult result;
  if (mode == Compression::None) {
    const NormLts norm = normalize(spec_lts, with_div, cancel);
    const Lts impl_lts = compile_or_load(ctx, impl, max_states, cancel);
    result = refinement_sweep(norm, compact_from_lts(impl_lts), model, threads,
                              cancel);
  } else {
    // Compressed path: reduce both component machines before normalization
    // and the product walk. The sweep over the reduced machines decides the
    // verdict; a violation is replayed on the uncompressed machines so the
    // counterexample (and its canonical minimal-trace tie-break) is byte
    // for byte the one --compress=none reports — FDR's "debug the
    // uncompressed process" discipline.
    const CompactLts spec_c = compact_from_lts(spec_lts);
    const NormLts norm_z =
        normalize(compress_compact(spec_c, mode, nullptr, cancel), with_div,
                  cancel);
    const Lts impl_lts = compile_or_load(ctx, impl, max_states, cancel);
    const CompactLts impl_c = compact_from_lts(impl_lts);
    result = refinement_sweep(
        norm_z, compress_compact(impl_c, mode, nullptr, cancel), model,
        threads, cancel);
    if (!result.passed) {
      const NormLts norm = normalize(spec_c, with_div, cancel);
      result = refinement_sweep(norm, impl_c, model, threads, cancel);
    }
  }
  result.stats.spec_states = spec_lts.state_count();
  return result;
}

CheckResult deadlock_free_uncached(Context& ctx, ProcessRef p,
                                   std::size_t max_states, CancelToken* cancel,
                                   unsigned threads, Compression mode) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const CompactLts compact = compact_from_lts(lts);

  const auto sweep = [&](const CompactLts& machine) {
    const DeadlockGraph g{machine};
    return wave_search(g, resolve_check_threads(threads), cancel);
  };
  WaveOutcome out;
  if (mode == Compression::None) {
    out = sweep(compact);
  } else {
    out = sweep(compress_compact(compact, mode, nullptr, cancel));
    // Verdict from the reduced machine, counterexample from the original.
    if (out.violated) out = sweep(compact);
  }
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;
  return result;
}

CheckResult divergence_free_uncached(Context& ctx, ProcessRef p,
                                     std::size_t max_states,
                                     CancelToken* cancel, unsigned threads,
                                     Compression mode) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const CompactLts compact = compact_from_lts(lts);

  const auto sweep = [&](const CompactLts& machine) {
    const std::vector<bool> diverges = machine.divergent_states();
    const DivergenceGraph g{machine, diverges};
    return wave_search(g, resolve_check_threads(threads), cancel);
  };
  WaveOutcome out;
  if (mode == Compression::None) {
    out = sweep(compact);
  } else {
    out = sweep(compress_compact(compact, mode, nullptr, cancel));
    if (out.violated) out = sweep(compact);
  }
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;
  return result;
}

CheckResult deterministic_uncached(Context& ctx, ProcessRef p,
                                   std::size_t max_states, CancelToken* cancel,
                                   unsigned threads, Compression mode) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const CompactLts compact = compact_from_lts(lts);

  const auto sweep = [&](const NormLts& norm) {
    result.stats.spec_norm_nodes = norm.nodes.size();
    const DeterminismGraph g{norm};
    return wave_search(g, resolve_check_threads(threads), cancel);
  };
  WaveOutcome out;
  if (mode == Compression::None) {
    out = sweep(normalize(compact, /*with_divergence=*/true, cancel));
  } else {
    out = sweep(normalize(compress_compact(compact, mode, nullptr, cancel),
                          /*with_divergence=*/true, cancel));
    // Normalizing the reduced machine yields an equivalent normal form, but
    // node discovery order can differ — replay on the original so a
    // nondeterminism witness matches --compress=none byte for byte.
    if (out.violated) {
      out = sweep(normalize(compact, /*with_divergence=*/true, cancel));
    }
  }
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;
  return result;
}

}  // namespace

CheckResult check_refinement_compiled(const NormLts& norm,
                                      const CompactLts& impl, Model model,
                                      unsigned threads, CancelToken* cancel,
                                      Compression compress) {
  const Compression mode = resolve_check_compression(compress);
  if (mode == Compression::None) {
    return refinement_sweep(norm, impl, model, threads, cancel);
  }
  CheckResult result =
      refinement_sweep(norm, compress_compact(impl, mode, nullptr, cancel),
                       model, threads, cancel);
  if (!result.passed) {
    result = refinement_sweep(norm, impl, model, threads, cancel);
  }
  return result;
}

CheckResult check_refinement_compiled(const NormLts& norm, const Lts& impl,
                                      Model model, unsigned threads,
                                      CancelToken* cancel) {
  return check_refinement_compiled(norm, compact_from_lts(impl), model,
                                   threads, cancel, Compression::None);
}

// Note: neither `threads` nor `compress` is part of the cache key (they
// never reach the CheckCache) — the engine produces identical verdicts,
// counterexamples and vacuity flags at every thread count and compression
// level (the fail-replay above guarantees the latter), so a verdict cached
// under one configuration is valid under all of them.
CheckResult check_refinement(Context& ctx, ProcessRef spec, ProcessRef impl,
                             Model model, std::size_t max_states,
                             CancelToken* cancel, unsigned threads,
                             Compression compress) {
  const Compression mode = resolve_check_compression(compress);
  return with_check_cache(
      ctx, spec, impl, CheckOp::Refinement, model, max_states, [&] {
        return refinement_uncached(ctx, spec, impl, model, max_states, cancel,
                                   threads, mode);
      });
}

CheckResult check_deadlock_free(Context& ctx, ProcessRef p,
                                std::size_t max_states, CancelToken* cancel,
                                unsigned threads, Compression compress) {
  const Compression mode = resolve_check_compression(compress);
  return with_check_cache(
      ctx, nullptr, p, CheckOp::DeadlockFree, Model::Traces, max_states, [&] {
        return deadlock_free_uncached(ctx, p, max_states, cancel, threads,
                                      mode);
      });
}

CheckResult check_divergence_free(Context& ctx, ProcessRef p,
                                  std::size_t max_states, CancelToken* cancel,
                                  unsigned threads, Compression compress) {
  const Compression mode = resolve_check_compression(compress);
  return with_check_cache(
      ctx, nullptr, p, CheckOp::DivergenceFree, Model::Traces, max_states, [&] {
        return divergence_free_uncached(ctx, p, max_states, cancel, threads,
                                        mode);
      });
}

CheckResult check_deterministic(Context& ctx, ProcessRef p,
                                std::size_t max_states, CancelToken* cancel,
                                unsigned threads, Compression compress) {
  const Compression mode = resolve_check_compression(compress);
  return with_check_cache(
      ctx, nullptr, p, CheckOp::Deterministic, Model::Traces, max_states, [&] {
        return deterministic_uncached(ctx, p, max_states, cancel, threads,
                                      mode);
      });
}

TraceMembership is_trace_of(Context& ctx, ProcessRef p,
                            const std::vector<EventId>& trace,
                            std::size_t max_states) {
  const Lts lts = compile_or_load(ctx, p, max_states, nullptr);
  // Frontier of LTS states reachable on the consumed prefix, tau-closed.
  std::set<StateId> frontier{lts.root};
  const auto tau_close = [&](std::set<StateId>& states) {
    std::vector<StateId> work(states.begin(), states.end());
    while (!work.empty()) {
      const StateId s = work.back();
      work.pop_back();
      for (const LtsTransition& t : lts.succ[s]) {
        if (t.event == TAU && states.insert(t.target).second) {
          work.push_back(t.target);
        }
      }
    }
  };
  tau_close(frontier);

  TraceMembership result;
  for (const EventId e : trace) {
    std::set<StateId> next;
    for (const StateId s : frontier) {
      for (const LtsTransition& t : lts.succ[s]) {
        if (t.event == e) next.insert(t.target);
      }
    }
    if (next.empty()) {
      std::vector<EventId> offered;
      for (const StateId s : frontier) {
        for (const LtsTransition& t : lts.succ[s]) {
          if (t.event != TAU) offered.push_back(t.event);
        }
      }
      result.offered = EventSet(std::move(offered));
      return result;
    }
    tau_close(next);
    frontier = std::move(next);
    ++result.accepted_prefix;
  }
  result.member = true;
  return result;
}

std::vector<std::vector<EventId>> enumerate_traces(Context& ctx, ProcessRef p,
                                                   std::size_t max_length,
                                                   std::size_t max_states) {
  const Lts lts = compile_or_load(ctx, p, max_states, nullptr);
  std::set<std::vector<EventId>> traces;
  // BFS over (state, trace) pairs, pruned by max_length; the visited set is
  // on pairs to keep this terminating on cyclic LTSs.
  std::set<std::pair<StateId, std::vector<EventId>>> seen;
  std::deque<std::pair<StateId, std::vector<EventId>>> frontier;
  frontier.emplace_back(lts.root, std::vector<EventId>{});
  seen.insert(frontier.front());
  traces.insert(std::vector<EventId>{});  // the empty trace
  while (!frontier.empty()) {
    auto [s, trace] = std::move(frontier.front());
    frontier.pop_front();
    for (const LtsTransition& t : lts.succ[s]) {
      std::vector<EventId> next = trace;
      if (t.event != TAU) {
        if (trace.size() >= max_length) continue;
        next.push_back(t.event);
        traces.insert(next);
      }
      auto key = std::make_pair(t.target, next);
      if (seen.insert(key).second) frontier.push_back(std::move(key));
    }
  }
  return {traces.begin(), traces.end()};
}

}  // namespace ecucsp
