#include "refine/check.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <set>
#include <unordered_map>

namespace ecucsp {

namespace {

std::atomic<CheckCache*> g_check_cache{nullptr};

/// compile_lts through the installed cache's LTS tier: a hit skips the
/// exploration entirely (the dominant cost of every check below).
Lts compile_or_load(Context& ctx, ProcessRef root, std::size_t max_states,
                    CancelToken* cancel) {
  CheckCache* const cache = g_check_cache.load(std::memory_order_acquire);
  if (cache) {
    if (auto lts = cache->lookup_lts(ctx, root, max_states)) {
      return std::move(*lts);
    }
  }
  Lts lts = compile_lts(ctx, root, max_states, cancel);
  if (cache) cache->store_lts(ctx, root, max_states, lts);
  return lts;
}

}  // namespace

CheckCache* set_check_cache(CheckCache* cache) {
  return g_check_cache.exchange(cache, std::memory_order_acq_rel);
}

CheckCache* check_cache() {
  return g_check_cache.load(std::memory_order_acquire);
}

std::string to_string(Model m) {
  switch (m) {
    case Model::Traces:
      return "T";
    case Model::Failures:
      return "F";
    case Model::FailuresDivergences:
      return "FD";
  }
  return "?";
}

std::string format_trace(const Context& ctx, const std::vector<EventId>& trace) {
  std::string out = "<";
  bool first = true;
  for (EventId e : trace) {
    if (!first) out += ", ";
    first = false;
    out += ctx.event_name(e);
  }
  out += ">";
  return out;
}

std::string Counterexample::describe(const Context& ctx) const {
  std::string out;
  switch (kind) {
    case Kind::TraceViolation:
      out = "trace violation: after " + format_trace(ctx, trace) +
            " the implementation performs '" + ctx.event_name(event) +
            "', which the specification forbids";
      break;
    case Kind::AcceptanceViolation: {
      out = "acceptance violation: after " + format_trace(ctx, trace) +
            " the implementation stabilises accepting only {";
      bool first = true;
      for (EventId e : impl_acceptance) {
        if (!first) out += ", ";
        first = false;
        out += ctx.event_name(e);
      }
      out += "}, refusing more than the specification allows";
      break;
    }
    case Kind::DivergenceViolation:
      out = "divergence violation: after " + format_trace(ctx, trace) +
            " the implementation can diverge but the specification cannot";
      break;
    case Kind::Deadlock:
      out = "deadlock: after " + format_trace(ctx, trace) +
            " the process can neither engage in any event nor terminate";
      break;
    case Kind::Divergence:
      out = "divergence: after " + format_trace(ctx, trace) +
            " the process can perform internal activity forever";
      break;
    case Kind::Nondeterminism:
      out = "nondeterminism: after " + format_trace(ctx, trace) +
            " the process may either accept or refuse '" +
            ctx.event_name(event) + "'";
      break;
  }
  return out;
}

namespace {

// Counterexample reconstruction (SearchEdge / rebuild_trace) lives in
// parallel.hpp now — one canonical implementation shared by the wave engine
// and everything below, instead of the per-check inline re-walk each of the
// four uncached functions used to carry.

EventSet visible_initials(const Lts& lts, StateId s) {
  std::vector<EventId> out;
  for (const LtsTransition& t : lts.succ[s]) {
    if (t.event != TAU) out.push_back(t.event);
  }
  return EventSet(std::move(out));
}

bool is_stable(const Lts& lts, StateId s) {
  for (const LtsTransition& t : lts.succ[s]) {
    if (t.event == TAU) return false;
  }
  return true;
}

/// Does the spec node allow a stable implementation state that accepts
/// exactly `acceptance`? True iff some minimal spec acceptance is a subset.
bool acceptance_allowed(const NormNode& spec, const EventSet& acceptance) {
  for (const EventSet& m : spec.min_acceptances) {
    if (m.subset_of(acceptance)) return true;
  }
  return false;
}

constexpr std::uint8_t rank(Counterexample::Kind k) {
  return static_cast<std::uint8_t>(k);
}

Counterexample to_counterexample(WaveOutcome&& out) {
  Counterexample ce;
  ce.kind = static_cast<Counterexample::Kind>(out.kind);
  ce.trace = std::move(out.trace);
  ce.event = out.event;
  ce.impl_acceptance = std::move(out.acceptance);
  return ce;
}

// --- wave-engine graph adapters ---------------------------------------------
//
// Each check is a search over some graph; the adapters below give the wave
// engine (parallel.hpp) its view of each. Their callbacks run concurrently,
// so they read only the pre-compiled Lts/NormLts structures — never a
// Context.

/// The normalized-spec × implementation product for SPEC [T=/[F=/[FD= IMPL.
struct RefinementGraph {
  const NormLts& norm;
  const Lts& impl;
  const std::vector<bool>* impl_diverges;  // non-null iff FD model
  bool failures;                           // model != Traces
  bool with_div;                           // model == FailuresDivergences

  struct Node {
    NormId spec = 0;
    StateId impl = 0;
    bool operator==(const Node&) const = default;
  };
  struct NodeHash {
    std::size_t operator()(const Node& n) const {
      return hash_combine(n.spec, n.impl);
    }
  };

  Node root() const { return {norm.root, impl.root}; }

  // In the FD model a divergent specification node permits every behaviour
  // below it; prune the branch.
  bool prune(const Node& n) const {
    return with_div && norm.nodes[n.spec].divergent;
  }

  std::optional<WaveViolation> inspect(const Node& n) const {
    if (with_div && (*impl_diverges)[n.impl]) {
      return WaveViolation{rank(Counterexample::Kind::DivergenceViolation), 0,
                           EventSet{}};
    }
    if (failures && is_stable(impl, n.impl)) {
      EventSet acceptance = visible_initials(impl, n.impl);
      if (!acceptance_allowed(norm.nodes[n.spec], acceptance)) {
        return WaveViolation{rank(Counterexample::Kind::AcceptanceViolation), 0,
                             std::move(acceptance)};
      }
    }
    return std::nullopt;
  }

  std::size_t degree(const Node& n) const { return impl.succ[n.impl].size(); }

  WaveEdge<Node> edge(const Node& n, std::size_t i) const {
    const LtsTransition& t = impl.succ[n.impl][i];
    if (t.event == TAU) return {false, TAU, Node{n.spec, t.target}, {}};
    const NormId next_spec = norm.nodes[n.spec].successor(t.event);
    if (next_spec == NORM_NONE) {
      return {true, t.event, Node{},
              WaveViolation{rank(Counterexample::Kind::TraceViolation), t.event,
                            EventSet{}}};
    }
    return {false, t.event, Node{next_spec, t.target}, {}};
  }
};

struct LtsStateHash {
  std::size_t operator()(StateId s) const { return std::hash<StateId>{}(s); }
};

/// IMPL :[deadlock free] — a reachability search for stuck non-terminated
/// states.
struct DeadlockGraph {
  const Lts& lts;
  const std::vector<bool>& post_tick;

  using Node = StateId;
  using NodeHash = LtsStateHash;

  Node root() const { return lts.root; }
  bool prune(Node) const { return false; }

  std::optional<WaveViolation> inspect(Node s) const {
    // States entered by a tick are successful termination, not deadlock.
    if (lts.succ[s].empty() && !post_tick[s] &&
        lts.term_of[s]->op() != Op::Omega) {
      return WaveViolation{rank(Counterexample::Kind::Deadlock), 0, EventSet{}};
    }
    return std::nullopt;
  }

  std::size_t degree(Node s) const { return lts.succ[s].size(); }
  WaveEdge<Node> edge(Node s, std::size_t i) const {
    const LtsTransition& t = lts.succ[s][i];
    return {false, t.event, t.target, {}};
  }
};

/// IMPL :[divergence free] — reachability of a state on a tau cycle.
struct DivergenceGraph {
  const Lts& lts;
  const std::vector<bool>& diverges;

  using Node = StateId;
  using NodeHash = LtsStateHash;

  Node root() const { return lts.root; }
  bool prune(Node) const { return false; }
  std::optional<WaveViolation> inspect(Node s) const {
    if (diverges[s]) {
      return WaveViolation{rank(Counterexample::Kind::Divergence), 0,
                           EventSet{}};
    }
    return std::nullopt;
  }
  std::size_t degree(Node s) const { return lts.succ[s].size(); }
  WaveEdge<Node> edge(Node s, std::size_t i) const {
    const LtsTransition& t = lts.succ[s][i];
    return {false, t.event, t.target, {}};
  }
};

/// IMPL :[deterministic] — BFS over the (deterministic) normal form. Its
/// edges carry visible events only, so the shared rebuild_trace's tau
/// elision never fires — every non-root edge contributes to the trace.
struct DeterminismGraph {
  const NormLts& norm;

  using Node = NormId;
  using NodeHash = LtsStateHash;

  Node root() const { return norm.root; }
  bool prune(Node) const { return false; }

  std::optional<WaveViolation> inspect(Node n) const {
    const NormNode& node = norm.nodes[n];
    if (node.divergent) {
      return WaveViolation{rank(Counterexample::Kind::Divergence), 0,
                           EventSet{}};
    }
    // Deterministic iff after every trace the process accepts exactly its
    // initials: a minimal acceptance missing some initial event means the
    // same trace can lead to both acceptance and refusal of that event.
    for (const EventSet& m : node.min_acceptances) {
      if (m == node.initials) continue;
      const EventSet missing = node.initials.set_difference(m);
      if (!missing.empty()) {
        return WaveViolation{rank(Counterexample::Kind::Nondeterminism),
                             *missing.begin(), m};
      }
    }
    return std::nullopt;
  }

  std::size_t degree(Node n) const { return norm.nodes[n].succ.size(); }
  WaveEdge<Node> edge(Node n, std::size_t i) const {
    const auto& [event, target] = norm.nodes[n].succ[i];
    return {false, event, target, {}};
  }
};

}  // namespace

namespace {

/// Consult the installed cache around `run`, which computes the verdict
/// fresh. Cancellation/state-limit exceptions propagate before anything is
/// stored, so only completed verdicts ever enter the cache.
template <typename Run>
CheckResult with_check_cache(Context& ctx, ProcessRef spec, ProcessRef impl,
                             CheckOp op, Model model, std::size_t max_states,
                             Run run) {
  CheckCache* const cache = check_cache();
  if (cache) {
    if (auto hit = cache->lookup_check(ctx, spec, impl, op, model, max_states)) {
      hit->from_cache = true;
      return std::move(*hit);
    }
  }
  CheckResult result = run();
  if (cache) cache->store_check(ctx, spec, impl, op, model, max_states, result);
  return result;
}

CheckResult refinement_uncached(Context& ctx, ProcessRef spec, ProcessRef impl,
                                Model model, std::size_t max_states,
                                CancelToken* cancel, unsigned threads) {
  // Compilation and normalization need the Context, so they stay on the
  // calling thread; the product sweep below is Context-free and parallel.
  const Lts spec_lts = compile_or_load(ctx, spec, max_states, cancel);
  const bool with_div = model == Model::FailuresDivergences;
  const NormLts norm = normalize(spec_lts, with_div, cancel);
  const Lts impl_lts = compile_or_load(ctx, impl, max_states, cancel);

  CheckResult result =
      check_refinement_compiled(norm, impl_lts, model, threads, cancel);
  result.stats.spec_states = spec_lts.state_count();
  return result;
}

CheckResult deadlock_free_uncached(Context& ctx, ProcessRef p,
                                   std::size_t max_states, CancelToken* cancel,
                                   unsigned threads) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();

  std::vector<bool> post_tick(lts.state_count(), false);
  for (StateId s = 0; s < lts.state_count(); ++s) {
    for (const LtsTransition& t : lts.succ[s]) {
      if (t.event == TICK) post_tick[t.target] = true;
    }
  }

  const DeadlockGraph g{lts, post_tick};
  WaveOutcome out = wave_search(g, resolve_check_threads(threads), cancel);
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;
  return result;
}

CheckResult divergence_free_uncached(Context& ctx, ProcessRef p,
                                     std::size_t max_states,
                                     CancelToken* cancel, unsigned threads) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const std::vector<bool> diverges = lts.divergent_states();

  const DivergenceGraph g{lts, diverges};
  WaveOutcome out = wave_search(g, resolve_check_threads(threads), cancel);
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;
  return result;
}

CheckResult deterministic_uncached(Context& ctx, ProcessRef p,
                                   std::size_t max_states, CancelToken* cancel,
                                   unsigned threads) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const NormLts norm = normalize(lts, /*with_divergence=*/true, cancel);
  result.stats.spec_norm_nodes = norm.nodes.size();

  const DeterminismGraph g{norm};
  WaveOutcome out = wave_search(g, resolve_check_threads(threads), cancel);
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;
  return result;
}

}  // namespace

CheckResult check_refinement_compiled(const NormLts& norm, const Lts& impl,
                                      Model model, unsigned threads,
                                      CancelToken* cancel) {
  CheckResult result;
  const bool with_div = model == Model::FailuresDivergences;
  std::vector<bool> impl_diverges;
  if (with_div) impl_diverges = impl.divergent_states();

  result.stats.spec_norm_nodes = norm.nodes.size();
  result.stats.impl_states = impl.state_count();
  result.stats.impl_transitions = impl.transition_count();

  const RefinementGraph g{norm, impl, with_div ? &impl_diverges : nullptr,
                          model != Model::Traces, with_div};
  WaveOutcome out = wave_search(g, resolve_check_threads(threads), cancel);
  result.stats.product_states = out.visited;
  if (out.violated) {
    result.counterexample = to_counterexample(std::move(out));
    return result;
  }
  result.passed = true;

  // Vacuity: which events does the spec actually *constrain*? An event
  // allowed in every normal node (e.g. everything under RUN(Sigma)) is
  // never restricted, so it cannot witness the property; the constrained
  // set is the union-minus-intersection of per-node initials. If the
  // implementation's reachable alphabet misses all of them, the pass is
  // trivially true — flag it rather than let a broken extraction "verify".
  {
    EventSet allowed_union;
    EventSet allowed_inter;
    bool first = true;
    for (const NormNode& n : norm.nodes) {
      allowed_union = allowed_union.set_union(n.initials);
      allowed_inter = first ? n.initials : allowed_inter.set_intersection(n.initials);
      first = false;
    }
    EventSet constrained = allowed_union.set_difference(allowed_inter);
    constrained = constrained.set_difference(EventSet{TAU, TICK});
    if (!constrained.empty()) {
      bool touched = false;
      for (StateId s = 0; s < impl.state_count() && !touched; ++s) {
        for (const LtsTransition& t : impl.succ[s]) {
          if (t.event != TAU && t.event != TICK && constrained.contains(t.event)) {
            touched = true;
            break;
          }
        }
      }
      result.vacuous = !touched;
    }
  }
  return result;
}

// Note: `threads` is deliberately NOT part of the cache key (and never
// reaches the CheckCache) — the engine produces identical results at every
// thread count, so a verdict cached at one count is valid at all of them.
CheckResult check_refinement(Context& ctx, ProcessRef spec, ProcessRef impl,
                             Model model, std::size_t max_states,
                             CancelToken* cancel, unsigned threads) {
  return with_check_cache(
      ctx, spec, impl, CheckOp::Refinement, model, max_states, [&] {
        return refinement_uncached(ctx, spec, impl, model, max_states, cancel,
                                   threads);
      });
}

CheckResult check_deadlock_free(Context& ctx, ProcessRef p,
                                std::size_t max_states, CancelToken* cancel,
                                unsigned threads) {
  return with_check_cache(
      ctx, nullptr, p, CheckOp::DeadlockFree, Model::Traces, max_states, [&] {
        return deadlock_free_uncached(ctx, p, max_states, cancel, threads);
      });
}

CheckResult check_divergence_free(Context& ctx, ProcessRef p,
                                  std::size_t max_states, CancelToken* cancel,
                                  unsigned threads) {
  return with_check_cache(
      ctx, nullptr, p, CheckOp::DivergenceFree, Model::Traces, max_states, [&] {
        return divergence_free_uncached(ctx, p, max_states, cancel, threads);
      });
}

CheckResult check_deterministic(Context& ctx, ProcessRef p,
                                std::size_t max_states, CancelToken* cancel,
                                unsigned threads) {
  return with_check_cache(
      ctx, nullptr, p, CheckOp::Deterministic, Model::Traces, max_states, [&] {
        return deterministic_uncached(ctx, p, max_states, cancel, threads);
      });
}

TraceMembership is_trace_of(Context& ctx, ProcessRef p,
                            const std::vector<EventId>& trace,
                            std::size_t max_states) {
  const Lts lts = compile_or_load(ctx, p, max_states, nullptr);
  // Frontier of LTS states reachable on the consumed prefix, tau-closed.
  std::set<StateId> frontier{lts.root};
  const auto tau_close = [&](std::set<StateId>& states) {
    std::vector<StateId> work(states.begin(), states.end());
    while (!work.empty()) {
      const StateId s = work.back();
      work.pop_back();
      for (const LtsTransition& t : lts.succ[s]) {
        if (t.event == TAU && states.insert(t.target).second) {
          work.push_back(t.target);
        }
      }
    }
  };
  tau_close(frontier);

  TraceMembership result;
  for (const EventId e : trace) {
    std::set<StateId> next;
    for (const StateId s : frontier) {
      for (const LtsTransition& t : lts.succ[s]) {
        if (t.event == e) next.insert(t.target);
      }
    }
    if (next.empty()) {
      std::vector<EventId> offered;
      for (const StateId s : frontier) {
        for (const LtsTransition& t : lts.succ[s]) {
          if (t.event != TAU) offered.push_back(t.event);
        }
      }
      result.offered = EventSet(std::move(offered));
      return result;
    }
    tau_close(next);
    frontier = std::move(next);
    ++result.accepted_prefix;
  }
  result.member = true;
  return result;
}

std::vector<std::vector<EventId>> enumerate_traces(Context& ctx, ProcessRef p,
                                                   std::size_t max_length,
                                                   std::size_t max_states) {
  const Lts lts = compile_or_load(ctx, p, max_states, nullptr);
  std::set<std::vector<EventId>> traces;
  // BFS over (state, trace) pairs, pruned by max_length; the visited set is
  // on pairs to keep this terminating on cyclic LTSs.
  std::set<std::pair<StateId, std::vector<EventId>>> seen;
  std::deque<std::pair<StateId, std::vector<EventId>>> frontier;
  frontier.emplace_back(lts.root, std::vector<EventId>{});
  seen.insert(frontier.front());
  traces.insert(std::vector<EventId>{});  // the empty trace
  while (!frontier.empty()) {
    auto [s, trace] = std::move(frontier.front());
    frontier.pop_front();
    for (const LtsTransition& t : lts.succ[s]) {
      std::vector<EventId> next = trace;
      if (t.event != TAU) {
        if (trace.size() >= max_length) continue;
        next.push_back(t.event);
        traces.insert(next);
      }
      auto key = std::make_pair(t.target, next);
      if (seen.insert(key).second) frontier.push_back(std::move(key));
    }
  }
  return {traces.begin(), traces.end()};
}

}  // namespace ecucsp
